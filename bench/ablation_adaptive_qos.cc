// Ablation (paper §1 + §7): adaptive-QoS degradation and CDMA soft
// capacity as complements to predictive reservation.
//
//   * §1: "a connection's QoS can be downgraded when there is an
//     insufficient bandwidth available in the new cell ... when both are
//     used together, bandwidth reservation is made on the basis of the
//     minimum QoS of each connection."
//   * §7: "The modification of the proposed scheme to be used in the CDMA
//     systems is also planned, where hand-off drops can be reduced due to
//     (1) soft capacity notion and (2) soft hand-off support."
//
// Four configurations on the same heavy video-rich workload: baseline
// AC3, AC3 + adaptive QoS, AC3 + 5% soft capacity, and both.
#include "bench_common.h"

#include "core/system.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double load = 300.0;
  double voice_ratio = 0.5;  // video-rich: degradation has room to act
  cli::Parser cli("ablation_adaptive_qos",
                  "adaptive QoS + soft capacity on top of AC3 (§1, §7)");
  bench::add_common_flags(cli, opts);
  cli.add_double("load", &load, "offered load per cell");
  cli.add_double("voice-ratio", &voice_ratio, "fraction of voice traffic");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Ablation — adaptive QoS and soft capacity (§1, §7)");
  csv::Writer csv(opts.csv_path);
  csv.header({"variant", "pcb", "phd", "degrades_per_1k_handoffs",
              "overload_frac"});

  struct Variant {
    const char* name;
    bool adaptive;
    double soft_margin;
    double soft_zone_km;
  };
  const Variant variants[] = {
      {"AC3 baseline", false, 0.0, 0.0},
      {"+ adaptive QoS", true, 0.0, 0.0},
      {"+ 5% soft capacity", false, 0.05, 0.0},
      {"+ soft hand-off", false, 0.0, 0.1},
      {"+ all three", true, 0.05, 0.1},
  };

  core::TablePrinter table({"variant", "P_CB", "P_HD", "degr/1k HO",
                            "overload%", "soft-alloc%"},
                           {19, 10, 10, 11, 10, 11});
  table.print_header();
  for (const auto& v : variants) {
    core::StationaryParams p;
    p.offered_load = load;
    p.voice_ratio = voice_ratio;
    p.mobility = core::Mobility::kHigh;
    p.policy = admission::PolicyKind::kAc3;
    p.seed = opts.seed;
    core::SystemConfig cfg = core::stationary_config(p);
    cfg.adaptive_qos = v.adaptive;
    cfg.soft_capacity_margin = v.soft_margin;
    cfg.soft_handoff_zone_km = v.soft_zone_km;
    const auto r = core::run_system(cfg, opts.plan());
    const double degr_rate =
        r.status.handoffs == 0
            ? 0.0
            : 1000.0 * static_cast<double>(r.status.degrades) /
                  static_cast<double>(r.status.handoffs);
    const std::uint64_t zone_entries =
        r.status.soft_allocations + r.status.soft_fallbacks;
    const double soft_rate =
        zone_entries == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.status.soft_allocations) /
                  static_cast<double>(zone_entries);
    table.print_row({v.name, core::TablePrinter::prob(r.status.pcb),
                     core::TablePrinter::prob(r.status.phd),
                     core::TablePrinter::fixed(degr_rate, 1),
                     core::TablePrinter::fixed(
                         100.0 * r.status.overload_frac, 2),
                     core::TablePrinter::fixed(soft_rate, 1)});
    csv.row_values(v.name, r.status.pcb, r.status.phd, degr_rate,
                   r.status.overload_frac);
  }
  table.print_rule();
  std::cout << "\nExpected shape: both mechanisms cut hand-off drops below "
               "the baseline —\nadaptive QoS by shrinking demand at the "
               "congested cell (counted as\ndegradations instead), soft "
               "capacity by absorbing the overflow as temporary\n"
               "interference-budget overload. The reservation layer keeps "
               "P_HD at target in\nall variants; the extensions mainly buy "
               "lower P_CB (less reservation needed).\n";
  return 0;
}
