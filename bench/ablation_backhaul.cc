// Ablation (paper §2, Fig. 1): the BS interconnect. In the star topology
// every B_r exchange crosses the MSC (2 wired hops); fully-connected BSs
// exchange directly (1 hop). The paper's N_calc metric is topology-
// independent — this bench adds the wire-level view: signalling messages
// and hop counts per admission test for each scheme on each interconnect.
#include "bench_common.h"

#include "core/system.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double load = 200.0;
  cli::Parser cli("ablation_backhaul",
                  "star-MSC vs fully-connected BS interconnect (Fig. 1)");
  bench::add_common_flags(cli, opts);
  cli.add_double("load", &load, "offered load per cell");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Ablation — BS interconnect topologies (Fig. 1)");
  csv::Writer csv(opts.csv_path);
  csv.header({"interconnect", "policy", "n_calc", "msgs_per_admission",
              "hops_per_admission"});

  core::TablePrinter table({"interconnect", "policy", "N_calc", "msgs/adm",
                            "hops/adm"},
                           {16, 7, 8, 9, 9});
  table.print_header();
  for (const auto net : {backhaul::InterconnectKind::kStarMsc,
                         backhaul::InterconnectKind::kFullyConnected}) {
    for (const auto kind :
         {admission::PolicyKind::kAc1, admission::PolicyKind::kAc2,
          admission::PolicyKind::kAc3}) {
      core::StationaryParams p;
      p.offered_load = load;
      p.voice_ratio = 1.0;
      p.mobility = core::Mobility::kHigh;
      p.policy = kind;
      p.seed = opts.seed;
      core::SystemConfig cfg = core::stationary_config(p);
      cfg.interconnect = net;

      const auto plan = opts.plan();
      core::CellularSystem sys(cfg);
      sys.run_for(plan.warmup_s);
      sys.reset_metrics();
      sys.run_for(plan.measure_s);

      const auto s = sys.system_status();
      const double adm = static_cast<double>(s.requests);
      const double msgs =
          adm == 0.0 ? 0.0
                     : static_cast<double>(s.backhaul_messages - s.handoffs) /
                           adm;
      const double hops =
          adm == 0.0
              ? 0.0
              : static_cast<double>(sys.interconnect().total_hops()) / adm;
      const char* net_name = net == backhaul::InterconnectKind::kStarMsc
                                 ? "star (via MSC)"
                                 : "fully-connected";
      table.print_row({net_name, admission::policy_kind_name(kind),
                       core::TablePrinter::fixed(s.n_calc, 3),
                       core::TablePrinter::fixed(msgs, 2),
                       core::TablePrinter::fixed(hops, 2)});
      csv.row_values(net_name, admission::policy_kind_name(kind), s.n_calc,
                     msgs, hops);
    }
    table.print_rule();
  }
  std::cout << "\nExpected shape: N_calc is identical across interconnects "
               "(it counts\ncalculations, not wires); the star topology "
               "pays ~2x the hops of the\nfull mesh for the same scheme.\n";
  return 0;
}
