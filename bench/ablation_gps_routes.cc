// Ablation (paper §7 future work): route knowledge from ITS/GPS. "Then,
// the mobility estimation function is used to estimate the sojourn time
// of a mobile only because the next cell of the mobile is known already."
//
// For a fraction f of mobiles the network knows the travel direction, so
// the expected hand-in bandwidth concentrates on the true next cell
// instead of being split by the estimated direction distribution. This
// bench sweeps f and reports P_CB / P_HD / average reservation: with
// perfect route knowledge the same P_HD target is met with LESS reserved
// bandwidth (no reservation wasted on cells the mobile will never enter),
// which shows up as equal-or-lower P_CB.
#include "bench_common.h"

#include "core/system.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double load = 300.0;
  cli::Parser cli("ablation_gps_routes",
                  "fraction of route-known (ITS/GPS) mobiles (paper §7)");
  bench::add_common_flags(cli, opts);
  cli.add_double("load", &load, "offered load per cell");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Ablation — ITS/GPS route knowledge (§7 extension)");
  csv::Writer csv(opts.csv_path);
  csv.header({"known_fraction", "pcb", "phd", "br_avg", "bu_avg"});

  core::TablePrinter table(
      {"known routes", "P_CB", "P_HD", "avg B_r", "avg B_u"},
      {12, 10, 10, 8, 8});
  table.print_header();
  for (const double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    core::StationaryParams p;
    p.offered_load = load;
    p.voice_ratio = 1.0;
    p.mobility = core::Mobility::kHigh;
    p.policy = admission::PolicyKind::kAc3;
    p.seed = opts.seed;
    core::SystemConfig cfg = core::stationary_config(p);
    cfg.known_route_fraction = f;
    const auto r = core::run_system(cfg, opts.plan());
    table.print_row({core::TablePrinter::fixed(f * 100.0, 0) + "%",
                     core::TablePrinter::prob(r.status.pcb),
                     core::TablePrinter::prob(r.status.phd),
                     core::TablePrinter::fixed(r.status.br_avg, 2),
                     core::TablePrinter::fixed(r.status.bu_avg, 2)});
    csv.row_values(f, r.status.pcb, r.status.phd, r.status.br_avg,
                   r.status.bu_avg);
  }
  table.print_rule();
  std::cout << "\nExpected shape: P_HD stays bounded at every fraction; as "
               "route knowledge\ngrows the reservation targets the true "
               "next cell, so B_r (and with it P_CB)\ndrifts down.\n";
  return 0;
}
