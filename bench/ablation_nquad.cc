// Ablation (paper §3.1): the maximum hand-off estimation function size
// N_quad — the number of cached quadruplets used per (prev, next) pair.
// The paper fixes N_quad = 100 "to reduce the memory and computation
// complexity" without studying sensitivity; this bench fills that gap.
//
// Tiny histories produce noisy estimates of the sojourn distribution
// (quantized p_h values), which destabilizes B_r; very large histories
// cost memory/CPU but change little once the distribution is resolved.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double load = 300.0;
  cli::Parser cli("ablation_nquad",
                  "sensitivity to the history size N_quad (paper §3.1)");
  bench::add_common_flags(cli, opts);
  cli.add_double("load", &load, "offered load per cell");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Ablation — hand-off history size N_quad (§3.1)");
  csv::Writer csv(opts.csv_path);
  csv.header({"n_quad", "pcb", "phd", "br_avg"});

  core::TablePrinter table({"N_quad", "P_CB", "P_HD", "avg B_r"},
                           {7, 10, 10, 8});
  table.print_header();
  for (const int n_quad : {1, 5, 25, 100, 400}) {
    core::StationaryParams p;
    p.offered_load = load;
    p.voice_ratio = 1.0;
    p.mobility = core::Mobility::kHigh;
    p.policy = admission::PolicyKind::kAc3;
    p.seed = opts.seed;
    core::SystemConfig cfg = core::stationary_config(p);
    cfg.hoef.n_quad = n_quad;
    const auto r = core::run_system(cfg, opts.plan());
    table.print_row({core::TablePrinter::integer(
                         static_cast<std::uint64_t>(n_quad)),
                     core::TablePrinter::prob(r.status.pcb),
                     core::TablePrinter::prob(r.status.phd),
                     core::TablePrinter::fixed(r.status.br_avg, 2)});
    csv.row_values(n_quad, r.status.pcb, r.status.phd, r.status.br_avg);
  }
  table.print_rule();
  std::cout << "\nExpected shape: the adaptive T_est controller compensates "
               "for small\nhistories (P_HD stays near target), but the "
               "estimates get coarser; results\nstabilize from N_quad of a "
               "few tens — the paper's 100 sits on the plateau.\n";
  return 0;
}
