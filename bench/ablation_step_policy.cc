// Ablation (paper §4.2): step-size rules for the T_est controller. The
// paper experimented with additive (1,2,3,...) and multiplicative
// (1,2,4,...) step growth for consecutive increments/decrements and
// reports they "cause over-reactions, and make the reserved bandwidth
// fluctuate severely between over-reservation and under-reservation";
// fixed 1-s steps were kept. This bench quantifies that claim: same
// workload, three step policies, reporting P_CB / P_HD and the
// fluctuation (mean |step|, std dev) of the traced T_est and B_r signals.
#include <cmath>

#include "bench_common.h"

#include "core/system.h"

namespace {

struct Fluctuation {
  double mean = 0.0;
  double stddev = 0.0;
  double max = 0.0;
};

Fluctuation fluctuation(const pabr::sim::Series& s) {
  Fluctuation f;
  const auto& pts = s.points();
  if (pts.empty()) return f;
  double sum = 0.0, sum2 = 0.0;
  for (const auto& p : pts) {
    sum += p.v;
    sum2 += p.v * p.v;
    f.max = std::max(f.max, p.v);
  }
  const double n = static_cast<double>(pts.size());
  f.mean = sum / n;
  f.stddev = std::sqrt(std::max(0.0, sum2 / n - f.mean * f.mean));
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double load = 300.0;
  cli::Parser cli("ablation_step_policy",
                  "T_est step-size rules: fixed vs additive vs "
                  "multiplicative (paper §4.2)");
  bench::add_common_flags(cli, opts);
  cli.add_double("load", &load, "offered load per cell");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Ablation — T_est adjustment step sizes (§4.2)");
  csv::Writer csv(opts.csv_path);
  csv.header({"policy", "pcb", "phd", "t_est_mean", "t_est_std", "t_est_max",
              "br_std"});

  core::TablePrinter table({"step rule", "P_CB", "P_HD", "T_est avg",
                            "T_est sd", "T_est max", "B_r sd"},
                           {15, 10, 10, 10, 9, 10, 8});
  table.print_header();
  for (const auto policy :
       {reservation::StepPolicy::kFixed, reservation::StepPolicy::kAdditive,
        reservation::StepPolicy::kMultiplicative}) {
    core::StationaryParams p;
    p.offered_load = load;
    p.voice_ratio = 1.0;
    p.mobility = core::Mobility::kHigh;
    p.policy = admission::PolicyKind::kAc3;
    p.seed = opts.seed;
    core::SystemConfig cfg = core::stationary_config(p);
    cfg.t_est_step = policy;
    cfg.traced_cells = {4};

    core::CellularSystem sys(cfg);
    const auto plan = opts.plan();
    sys.run_for(plan.warmup_s);
    sys.reset_metrics();
    sys.run_for(plan.measure_s);

    const auto s = sys.system_status();
    const auto t_est_f = fluctuation(sys.trace(4)->t_est);
    const auto br_f = fluctuation(sys.trace(4)->br);
    table.print_row({reservation::step_policy_name(policy),
                     core::TablePrinter::prob(s.pcb),
                     core::TablePrinter::prob(s.phd),
                     core::TablePrinter::fixed(t_est_f.mean, 1),
                     core::TablePrinter::fixed(t_est_f.stddev, 1),
                     core::TablePrinter::fixed(t_est_f.max, 0),
                     core::TablePrinter::fixed(br_f.stddev, 1)});
    csv.row_values(reservation::step_policy_name(policy), s.pcb, s.phd,
                   t_est_f.mean, t_est_f.stddev, t_est_f.max, br_f.stddev);
  }
  table.print_rule();
  std::cout << "\nExpected shape (paper §4.2): additive/multiplicative react "
               "faster but\noscillate with much larger T_est/B_r swings — "
               "over-reservation that costs P_CB\nwithout improving P_HD; "
               "the fixed 1-s step is the steadiest.\n";
  return 0;
}
