// Ablation (§2/§7): wired backbone provisioning. The paper reserves only
// wireless bandwidth and notes the scheme "can be extended easily to
// include wired link bandwidth reservation"; this bench provisions the
// BS-to-MSC access links at different fractions of the air-interface
// capacity and shows (a) where the backbone becomes the bottleneck and
// (b) that mirroring B_r onto the access links keeps P_HD bounded even
// then.
#include "bench_common.h"

#include "core/system.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double load = 300.0;
  cli::Parser cli("ablation_wired_backbone",
                  "wired access-link provisioning (§2/§7 extension)");
  bench::add_common_flags(cli, opts);
  cli.add_double("load", &load, "offered load per cell");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Ablation — wired backbone provisioning (§2/§7)");
  csv::Writer csv(opts.csv_path);
  csv.header({"access_capacity", "pcb", "phd", "wired_blocks",
              "wired_drops"});

  core::TablePrinter table({"access C_w", "P_CB", "P_HD", "wired blocks",
                            "wired drops", "target"},
                           {10, 10, 10, 13, 12, 7});
  table.print_header();
  for (const double cw : {1e9, 100.0, 90.0, 80.0, 70.0}) {
    core::StationaryParams p;
    p.offered_load = load;
    p.voice_ratio = 1.0;
    p.mobility = core::Mobility::kHigh;
    p.policy = admission::PolicyKind::kAc3;
    p.seed = opts.seed;
    core::SystemConfig cfg = core::stationary_config(p);
    cfg.wired = wired::BackboneConfig{cw, 1e9};

    const auto plan = opts.plan();
    core::CellularSystem sys(cfg);
    sys.run_for(plan.warmup_s);
    sys.reset_metrics();
    sys.run_for(plan.measure_s);
    const auto s = sys.system_status();

    const std::string label = cw >= 1e9 ? "inf" : core::TablePrinter::fixed(cw, 0);
    table.print_row({label, core::TablePrinter::prob(s.pcb),
                     core::TablePrinter::prob(s.phd),
                     core::TablePrinter::integer(sys.wired_blocks()),
                     core::TablePrinter::integer(sys.wired_drops()),
                     s.phd <= 0.0125 ? "ok" : "MISS"});
    csv.row_values(cw, s.pcb, s.phd,
                   static_cast<unsigned long long>(sys.wired_blocks()),
                   static_cast<unsigned long long>(sys.wired_drops()));
  }
  table.print_rule();
  std::cout << "\nExpected shape: with C_w >= C the backbone is invisible; "
               "as C_w shrinks the\naccess links start blocking new calls "
               "(wired blocks grow, P_CB rises), while\nthe mirrored "
               "wired-side reservation keeps hand-off drops near the "
               "target until\nthe links are severely under-provisioned.\n";
  return 0;
}
