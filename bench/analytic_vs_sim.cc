// Cross-validation: the simulator's static-reservation results vs the
// Hong & Rappaport guard-channel Markov model (the paper's ref. [5],
// implemented in src/analysis). Voice-only traffic so both sides model
// identical bandwidth units.
//
// The analytic chain assumes exponential cell-residence times; the road
// simulator's residences are distance/speed (deterministic per mobile) —
// exactly the assumption the paper §6 criticizes in [10]. Expect the
// curves to agree on P_CB (dominated by load, insensitive to the
// residence shape) and to diverge on P_HD where the exponential
// approximation bends.
#include "bench_common.h"

#include "analysis/guard_channel.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double g = 10.0;
  cli::Parser cli("analytic_vs_sim",
                  "static reservation: simulator vs guard-channel theory");
  bench::add_common_flags(cli, opts);
  cli.add_double("g", &g, "guard bandwidth (BUs)");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Cross-validation — simulator vs Hong/Rappaport "
                      "guard-channel model (ref. [5])");
  csv::Writer csv(opts.csv_path);
  csv.header({"load", "sim_pcb", "analytic_pcb", "sim_phd", "analytic_phd",
              "analytic_lambda_h"});

  core::TablePrinter table({"load", "P_CB sim", "P_CB theory", "P_HD sim",
                            "P_HD theory", "lam_h/s"},
                           {6, 10, 11, 10, 11, 8});
  table.print_header();
  for (const double load : core::paper_load_grid()) {
    core::StationaryParams sp;
    sp.offered_load = load;
    sp.voice_ratio = 1.0;
    sp.mobility = core::Mobility::kHigh;
    sp.policy = admission::PolicyKind::kStatic;
    sp.static_g = g;
    sp.seed = opts.seed;
    const auto sim = core::run_system(core::stationary_config(sp),
                                      opts.plan());

    analysis::GuardChannelParams ap;
    ap.guard_bu = g;
    ap.lambda_new = load / 120.0;
    const auto theory = analysis::evaluate(ap);

    table.print_row({core::TablePrinter::fixed(load, 0),
                     core::TablePrinter::prob(sim.status.pcb),
                     core::TablePrinter::prob(theory.pcb),
                     core::TablePrinter::prob(sim.status.phd),
                     core::TablePrinter::prob(theory.phd),
                     core::TablePrinter::fixed(theory.lambda_h, 2)});
    csv.row_values(load, sim.status.pcb, theory.pcb, sim.status.phd,
                   theory.phd, theory.lambda_h);
  }
  table.print_rule();
  return 0;
}
