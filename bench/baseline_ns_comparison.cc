// Baseline comparison (paper §6 / companion paper [4]): PABR's AC3
// against the Naghshineh-Schwartz distributed call admission control
// (ref. [10]), the scheme the paper positions itself against.
//
// The paper's criticisms of [10] that this bench makes measurable:
//   (1) "they assumed the sojourn time of each mobile is exponentially-
//       distributed, which is impractical" — on the road, sojourns are
//       distance/speed, so NS-DCA's arithmetic is mis-specified; tuning
//       its interval T trades P_HD violations against extra blocking.
//   (2) "there is no specified mechanism to predict which cells mobiles
//       will move to" — NS splits hand-off mass uniformly over
//       neighbours, while PABR's estimation functions learn directions.
//
// Output: P_CB / P_HD vs load for AC3 and NS-DCA at two estimation
// intervals (a permissive and a conservative one).
#include "bench_common.h"

#include "core/system.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli("baseline_ns_comparison",
                  "AC3 vs Naghshineh-Schwartz DCA (paper ref. [10])");
  bench::add_common_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Baseline — AC3 vs NS-DCA [10] (high mobility, "
                      "R_vo = 1.0)");
  csv::Writer csv(opts.csv_path);
  csv.header({"scheme", "load", "pcb", "phd"});

  struct Scheme {
    std::string label;
    admission::PolicyKind kind;
    double ns_interval;
  };
  const Scheme schemes[] = {
      {"AC3", admission::PolicyKind::kAc3, 0.0},
      {"NS-DCA T=5s", admission::PolicyKind::kNsDca, 5.0},
      {"NS-DCA T=15s", admission::PolicyKind::kNsDca, 15.0},
  };

  core::TablePrinter table({"scheme", "load", "P_CB", "P_HD", "target"},
                           {13, 6, 10, 10, 7});
  table.print_header();
  for (const auto& scheme : schemes) {
    for (const double load : core::paper_load_grid()) {
      core::StationaryParams p;
      p.offered_load = load;
      p.voice_ratio = 1.0;
      p.mobility = core::Mobility::kHigh;
      p.policy = scheme.kind;
      p.seed = opts.seed;
      core::SystemConfig cfg = core::stationary_config(p);
      if (scheme.kind == admission::PolicyKind::kNsDca) {
        cfg.ns.estimation_interval_s = scheme.ns_interval;
        cfg.ns.overload_target = 0.01;
        // Mean transit of a 1 km cell at E[1/V] for [80,120] km/h.
        cfg.ns.mean_sojourn_s = 36.5;
      }
      const auto r = core::run_system(cfg, opts.plan());
      table.print_row({scheme.label, core::TablePrinter::fixed(load, 0),
                       core::TablePrinter::prob(r.status.pcb),
                       core::TablePrinter::prob(r.status.phd),
                       r.status.phd <= 0.0125 ? "ok" : "MISS"});
      csv.row_values(scheme.label, load, r.status.pcb, r.status.phd);
    }
    table.print_rule();
  }

  // Part 2 — robustness: the same NS parameters (tuned for the high-
  // mobility road) applied to low-mobility traffic, vs AC3 which carries
  // no mobility parameters at all.
  std::cout << "\n-- robustness under LOW mobility (NS parameters left "
               "tuned for high) --\n";
  core::TablePrinter table2({"scheme", "load", "P_CB", "P_HD", "target"},
                            {13, 6, 10, 10, 7});
  table2.print_header();
  for (const auto& scheme : schemes) {
    for (const double load : {180.0, 300.0}) {
      core::StationaryParams p;
      p.offered_load = load;
      p.voice_ratio = 1.0;
      p.mobility = core::Mobility::kLow;  // actual sojourn ~73 s
      p.policy = scheme.kind;
      p.seed = opts.seed;
      core::SystemConfig cfg = core::stationary_config(p);
      if (scheme.kind == admission::PolicyKind::kNsDca) {
        cfg.ns.estimation_interval_s = scheme.ns_interval;
        cfg.ns.overload_target = 0.01;
        cfg.ns.mean_sojourn_s = 36.5;  // stale: assumes high mobility
      }
      const auto r = core::run_system(cfg, opts.plan());
      table2.print_row({scheme.label, core::TablePrinter::fixed(load, 0),
                        core::TablePrinter::prob(r.status.pcb),
                        core::TablePrinter::prob(r.status.phd),
                        r.status.phd <= 0.0125 ? "ok" : "MISS"});
      csv.row_values(scheme.label + " (low)", load, r.status.pcb,
                     r.status.phd);
    }
    table2.print_rule();
  }

  std::cout << "\nReading the comparison: NS-DCA can match AC3 when its "
               "interval T and sojourn\nparameters are hand-tuned to the "
               "scenario, but it has no adaptation — a\nmis-chosen T (or "
               "stale mobility parameters) silently violates the target,\n"
               "exactly the paper's §6 criticism. AC3 carries no such "
               "parameters: the\nhistory-driven estimators and the T_est "
               "controller re-tune themselves.\n";
  return 0;
}
