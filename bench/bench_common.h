// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --full        paper-scale run lengths (defaults are shape-preserving
//                 but shorter so the whole suite finishes in minutes)
//   --seed N      simulation seed
//   --csv PATH    mirror the printed rows into a CSV file
//   --json PATH   mirror rows + run counters into a JSON report
//
// Benches whose runs are independent (replications / sweep points) also
// take --threads N (see sim/parallel.h: results are byte-identical to
// --threads 1).
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"
#include "util/cli.h"
#include "util/csv.h"

namespace pabr::bench {

struct CommonOptions {
  bool full = false;
  unsigned long long seed = 1;
  std::string csv_path;
  std::string json_path;
  int threads = 1;

  core::RunPlan plan() const {
    core::RunPlan p;
    if (full) {
      p.warmup_s = 4000.0;
      p.measure_s = 20000.0;
    } else {
      p.warmup_s = 1000.0;
      p.measure_s = 3000.0;
    }
    return p;
  }
};

/// Registers the common flags on `cli`.
inline void add_common_flags(cli::Parser& cli, CommonOptions& opts) {
  cli.add_bool("full", &opts.full, "paper-scale run lengths");
  cli.add_uint64("seed", &opts.seed, "simulation seed");
  cli.add_string("csv", &opts.csv_path, "also write rows to this CSV file");
  cli.add_string("json", &opts.json_path,
                 "also write rows and run counters to this JSON file");
}

/// Registers --threads (only for benches whose runs fan out in parallel).
inline void add_threads_flag(cli::Parser& cli, CommonOptions& opts) {
  cli.add_int("threads", &opts.threads,
              "worker threads for independent runs (results are identical "
              "to --threads 1)");
}

/// Machine-readable mirror of a bench's output: the printed table rows
/// plus named run counters (wall-clock seconds, B_r calculations, ...).
/// Construct with the path from --json (empty = inert) and call write()
/// once at the end:
///
///   {"bench": "...", "seed": 3, "full": false,
///    "columns": [...], "rows": [[...], ...],
///    "counters": {"wall_seconds": 12.3, ...}}
class JsonReport {
 public:
  JsonReport(std::string bench, const CommonOptions& opts)
      : bench_(std::move(bench)),
        path_(opts.json_path),
        seed_(opts.seed),
        full_(opts.full) {}

  bool active() const { return !path_.empty(); }

  void columns(std::vector<std::string> names) { columns_ = std::move(names); }
  void row(std::vector<std::string> fields) {
    rows_.push_back(std::move(fields));
  }
  void counter(const std::string& name, double value) {
    counters_.emplace_back(name, value);
  }

  /// Serializes the report; best-effort like csv::Writer (an unwritable
  /// path only prints a warning).
  void write() const {
    if (!active()) return;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "warning: cannot write JSON report to " << path_ << '\n';
      return;
    }
    out << "{\n  \"bench\": " << quote(bench_) << ",\n  \"seed\": " << seed_
        << ",\n  \"full\": " << (full_ ? "true" : "false")
        << ",\n  \"columns\": ";
    string_array(out, columns_);
    out << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << (i == 0 ? "\n    " : ",\n    ");
      string_array(out, rows_[i]);
    }
    out << (rows_.empty() ? "]" : "\n  ]") << ",\n  \"counters\": {";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      out << (i == 0 ? "\n    " : ",\n    ") << quote(counters_[i].first)
          << ": " << number(counters_[i].second);
    }
    out << (counters_.empty() ? "}" : "\n  }") << "\n}\n";
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    out += '"';
    return out;
  }

  static std::string number(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  static void string_array(std::ofstream& out,
                           const std::vector<std::string>& xs) {
    out << '[';
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i > 0) out << ", ";
      out << quote(xs[i]);
    }
    out << ']';
  }

  std::string bench_;
  std::string path_;
  unsigned long long seed_;
  bool full_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::pair<std::string, double>> counters_;
};

inline void print_banner(const std::string& what) {
  std::cout << "==============================================================="
               "=\n"
            << what << "\n"
            << "(reproduction of Choi & Shin, SIGCOMM'98 — shapes, not exact "
               "samples)\n"
            << "==============================================================="
               "=\n";
}

inline const char* policy_flag_name(admission::PolicyKind k) {
  return admission::policy_kind_name(k);
}

}  // namespace pabr::bench
