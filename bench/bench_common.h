// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --full        paper-scale run lengths (defaults are shape-preserving
//                 but shorter so the whole suite finishes in minutes)
//   --seed N      simulation seed
//   --csv PATH    mirror the printed rows into a CSV file
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"
#include "util/cli.h"
#include "util/csv.h"

namespace pabr::bench {

struct CommonOptions {
  bool full = false;
  unsigned long long seed = 1;
  std::string csv_path;

  core::RunPlan plan() const {
    core::RunPlan p;
    if (full) {
      p.warmup_s = 4000.0;
      p.measure_s = 20000.0;
    } else {
      p.warmup_s = 1000.0;
      p.measure_s = 3000.0;
    }
    return p;
  }
};

/// Registers the common flags on `cli`.
inline void add_common_flags(cli::Parser& cli, CommonOptions& opts) {
  cli.add_bool("full", &opts.full, "paper-scale run lengths");
  cli.add_uint64("seed", &opts.seed, "simulation seed");
  cli.add_string("csv", &opts.csv_path, "also write rows to this CSV file");
}

inline void print_banner(const std::string& what) {
  std::cout << "==============================================================="
               "=\n"
            << what << "\n"
            << "(reproduction of Choi & Shin, SIGCOMM'98 — shapes, not exact "
               "samples)\n"
            << "==============================================================="
               "=\n";
}

inline const char* policy_flag_name(admission::PolicyKind k) {
  return admission::policy_kind_name(k);
}

}  // namespace pabr::bench
