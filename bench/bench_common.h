// Shared plumbing for the figure/table reproduction binaries.
//
// Every bench accepts:
//   --full        paper-scale run lengths (defaults are shape-preserving
//                 but shorter so the whole suite finishes in minutes)
//   --seed N      simulation seed
//   --csv PATH    mirror the printed rows into a CSV file
//   --json PATH   mirror rows + run counters into a JSON report
//
// Benches whose runs are independent (replications / sweep points) also
// take --threads N (see sim/parallel.h: results are byte-identical to
// --threads 1).
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/buildinfo.h"
#include "util/cli.h"
#include "util/csv.h"

namespace pabr::bench {

struct CommonOptions {
  bool full = false;
  unsigned long long seed = 1;
  std::string csv_path;
  std::string json_path;
  int threads = 1;
  /// --telemetry: collect counters/histograms (no-op when PABR_TELEMETRY
  /// is compiled out; the flag then just warns).
  bool telemetry = false;
  /// --trace-out PATH: write a binary event trace; implies --telemetry.
  std::string trace_out;

  bool telemetry_requested() const {
    return telemetry || !trace_out.empty();
  }

  /// The TelemetryConfig the bench's systems should run with.
  telemetry::TelemetryConfig telemetry_config() const {
    telemetry::TelemetryConfig cfg;
    cfg.enabled = telemetry_requested();
    cfg.trace = !trace_out.empty();
    return cfg;
  }

  core::RunPlan plan() const {
    core::RunPlan p;
    if (full) {
      p.warmup_s = 4000.0;
      p.measure_s = 20000.0;
    } else {
      p.warmup_s = 1000.0;
      p.measure_s = 3000.0;
    }
    return p;
  }
};

/// Registers the common flags on `cli`.
inline void add_common_flags(cli::Parser& cli, CommonOptions& opts) {
  cli.add_bool("full", &opts.full, "paper-scale run lengths");
  cli.add_uint64("seed", &opts.seed, "simulation seed");
  cli.add_string("csv", &opts.csv_path, "also write rows to this CSV file");
  cli.add_string("json", &opts.json_path,
                 "also write rows and run counters to this JSON file");
}

/// Registers --threads (only for benches whose runs fan out in parallel).
inline void add_threads_flag(cli::Parser& cli, CommonOptions& opts) {
  cli.add_int("threads", &opts.threads,
              "worker threads for independent runs (results are identical "
              "to --threads 1)");
}

/// Registers --telemetry / --trace-out (benches that build SystemConfigs
/// through CommonOptions::telemetry_config()). Purely observational:
/// simulation trajectories are byte-identical whatever these are set to.
inline void add_telemetry_flags(cli::Parser& cli, CommonOptions& opts) {
  cli.add_bool("telemetry", &opts.telemetry,
               "collect run counters/histograms (needs a PABR_TELEMETRY "
               "build; reported under \"metrics\" in --json)");
  cli.add_string("trace-out", &opts.trace_out,
                 "write a binary event trace (.pabrtrace) to this path; "
                 "implies --telemetry (inspect with pabr-trace)");
}

/// Warns once when telemetry was requested but compiled out.
inline void warn_if_telemetry_unavailable(const CommonOptions& opts) {
  if (opts.telemetry_requested() && !buildinfo::telemetry_enabled()) {
    std::cerr << "warning: --telemetry/--trace-out requested but this "
                 "build has PABR_TELEMETRY=OFF; collecting nothing\n";
  }
}

/// Writes the merged .pabrtrace for a bench run: one stream per
/// replication/sweep slot, stamped in slot order so the file bytes are
/// independent of --threads. No-op when --trace-out was not given.
inline void write_bench_trace(
    const std::string& bench, const CommonOptions& opts,
    const std::vector<std::vector<telemetry::TraceRecord>>& streams,
    std::uint64_t rotated_out) {
  if (opts.trace_out.empty()) return;
  telemetry::TraceMeta meta;
  meta.set("bench", bench);
  meta.set("seed", std::to_string(opts.seed));
  meta.set("threads", std::to_string(opts.threads));
  meta.set("full", opts.full ? "1" : "0");
  meta.set("git_sha", buildinfo::git_sha());
  meta.set("build_type", buildinfo::build_type());
  std::size_t n = 0;
  for (const auto& s : streams) n += s.size();
  if (telemetry::write_merged_trace(opts.trace_out, meta, streams,
                                    rotated_out)) {
    std::cout << "Wrote " << n << " trace records ("
              << streams.size() << " streams) to " << opts.trace_out
              << "\n";
  }
}

/// Convenience overload: pulls the trace streams out of RunResults.
inline void write_bench_trace(const std::string& bench,
                              const CommonOptions& opts,
                              const std::vector<core::RunResult>& runs) {
  if (opts.trace_out.empty()) return;
  std::vector<std::vector<telemetry::TraceRecord>> streams;
  std::uint64_t rotated = 0;
  streams.reserve(runs.size());
  for (const core::RunResult& r : runs) {
    streams.push_back(r.trace);
    rotated += r.trace_rotated_out;
  }
  write_bench_trace(bench, opts, streams, rotated);
}

/// Machine-readable mirror of a bench's output: the printed table rows
/// plus named run counters (wall-clock seconds, B_r calculations, ...).
/// Construct with the path from --json (empty = inert) and call write()
/// once at the end:
///
///   {"bench": "...", "seed": 3, "full": false,
///    "meta": {"git_sha": "...", "build_type": "...", "threads": 1,
///             "audit_enabled": false, "telemetry_compiled": true,
///             "telemetry": false, "fault_compiled": true},
///    "columns": [...], "rows": [[...], ...],
///    "counters": {"wall_seconds": 12.3, ...},
///    "metrics": {"counters": {...}, "gauges": {...},
///                "histograms": {"admission.ns": {"count": ..., ...}}}}
///
/// "meta" (run provenance) is always present; "metrics" only when a
/// telemetry snapshot was attached via metrics().
class JsonReport {
 public:
  JsonReport(std::string bench, const CommonOptions& opts)
      : bench_(std::move(bench)),
        path_(opts.json_path),
        seed_(opts.seed),
        full_(opts.full) {
    meta_.emplace_back("git_sha", quote(buildinfo::git_sha()));
    meta_.emplace_back("build_type", quote(buildinfo::build_type()));
    meta_.emplace_back("threads", number(opts.threads));
    meta_.emplace_back("audit_enabled",
                       buildinfo::audit_enabled() ? "true" : "false");
    meta_.emplace_back("telemetry_compiled",
                       buildinfo::telemetry_enabled() ? "true" : "false");
    meta_.emplace_back("telemetry",
                       opts.telemetry_requested() ? "true" : "false");
    meta_.emplace_back("fault_compiled",
                       buildinfo::fault_enabled() ? "true" : "false");
  }

  bool active() const { return !path_.empty(); }

  void columns(std::vector<std::string> names) { columns_ = std::move(names); }
  void row(std::vector<std::string> fields) {
    rows_.push_back(std::move(fields));
  }
  void counter(const std::string& name, double value) {
    counters_.emplace_back(name, value);
  }
  /// Extra provenance entry (pre-encoded booleans/numbers use meta_raw).
  void meta(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, quote(value));
  }
  void meta_raw(const std::string& key, std::string json_value) {
    meta_.emplace_back(key, std::move(json_value));
  }
  /// Attaches a telemetry snapshot, serialized under "metrics".
  void metrics(telemetry::MetricsSnapshot snapshot) {
    metrics_ = std::move(snapshot);
  }

  /// Serializes the report; best-effort like csv::Writer (an unwritable
  /// path only prints a warning).
  void write() const {
    if (!active()) return;
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "warning: cannot write JSON report to " << path_ << '\n';
      return;
    }
    out << "{\n  \"bench\": " << quote(bench_) << ",\n  \"seed\": " << seed_
        << ",\n  \"full\": " << (full_ ? "true" : "false")
        << ",\n  \"meta\": {";
    for (std::size_t i = 0; i < meta_.size(); ++i) {
      out << (i == 0 ? "\n    " : ",\n    ") << quote(meta_[i].first) << ": "
          << meta_[i].second;
    }
    out << (meta_.empty() ? "}" : "\n  }") << ",\n  \"columns\": ";
    string_array(out, columns_);
    out << ",\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << (i == 0 ? "\n    " : ",\n    ");
      string_array(out, rows_[i]);
    }
    out << (rows_.empty() ? "]" : "\n  ]") << ",\n  \"counters\": {";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
      out << (i == 0 ? "\n    " : ",\n    ") << quote(counters_[i].first)
          << ": " << number(counters_[i].second);
    }
    out << (counters_.empty() ? "}" : "\n  }");
    if (!metrics_.empty()) {
      out << ",\n  \"metrics\": {\n    \"counters\": {";
      for (std::size_t i = 0; i < metrics_.counters.size(); ++i) {
        out << (i == 0 ? "\n      " : ",\n      ")
            << quote(metrics_.counters[i].first) << ": "
            << metrics_.counters[i].second;
      }
      out << (metrics_.counters.empty() ? "}" : "\n    }")
          << ",\n    \"gauges\": {";
      for (std::size_t i = 0; i < metrics_.gauges.size(); ++i) {
        out << (i == 0 ? "\n      " : ",\n      ")
            << quote(metrics_.gauges[i].first) << ": "
            << number(metrics_.gauges[i].second);
      }
      out << (metrics_.gauges.empty() ? "}" : "\n    }")
          << ",\n    \"histograms\": {";
      for (std::size_t i = 0; i < metrics_.histograms.size(); ++i) {
        const auto& h = metrics_.histograms[i];
        out << (i == 0 ? "\n      " : ",\n      ") << quote(h.name)
            << ": {\"count\": " << h.count << ", \"sum\": " << number(h.sum)
            << ", \"min\": " << number(h.min)
            << ", \"max\": " << number(h.max)
            << ", \"p50\": " << number(h.p50)
            << ", \"p99\": " << number(h.p99)
            << ", \"underflow\": " << h.underflow
            << ", \"overflow\": " << h.overflow << "}";
      }
      out << (metrics_.histograms.empty() ? "}" : "\n    }") << "\n  }";
    }
    out << "\n}\n";
  }

 private:
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default: out += c;
      }
    }
    out += '"';
    return out;
  }

  static std::string number(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  static void string_array(std::ofstream& out,
                           const std::vector<std::string>& xs) {
    out << '[';
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i > 0) out << ", ";
      out << quote(xs[i]);
    }
    out << ']';
  }

  std::string bench_;
  std::string path_;
  unsigned long long seed_;
  bool full_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::pair<std::string, double>> counters_;
  /// Provenance key → pre-encoded JSON value, emission order.
  std::vector<std::pair<std::string, std::string>> meta_;
  telemetry::MetricsSnapshot metrics_;
};

inline void print_banner(const std::string& what) {
  std::cout << "==============================================================="
               "=\n"
            << what << "\n"
            << "(reproduction of Choi & Shin, SIGCOMM'98 — shapes, not exact "
               "samples)\n"
            << "==============================================================="
               "=\n";
}

inline const char* policy_flag_name(admission::PolicyKind k) {
  return admission::policy_kind_name(k);
}

}  // namespace pabr::bench
