// Extension experiment (§7 future work): the Fig. 8/12/13 sweeps
// transplanted to a two-dimensional hexagonal system (4x6 torus).
//
// Questions the paper leaves open, answered here:
//   * does AC3 still bound P_HD at the target when each cell has SIX
//     hand-in neighbours instead of two?
//   * §5.2.3's warning — "the complexity increase could be larger for
//     two-dimensional cellular structures" — how much larger? (AC2 now
//     costs 7 B_r computations per admission; AC3's selective
//     participation is where the savings compound.)
//
// Each (policy, load) point is one independent HexCellularSystem, so
// --threads N fans the 12 points over a pool; rows are printed in the
// original order afterwards, byte-identical to the sequential run.
#include <chrono>

#include "bench_common.h"
#include "core/hex_system.h"
#include "core/metrics.h"
#include "sim/parallel.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli("ext_2d_load_sweep",
                  "2-D hex-grid load sweep: AC1/AC2/AC3/static (§7)");
  bench::add_common_flags(cli, opts);
  bench::add_threads_flag(cli, opts);
  bench::add_telemetry_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;
  bench::warn_if_telemetry_unavailable(opts);

  bench::print_banner("Extension — 2-D hexagonal system (4x6 torus, "
                      "R_vo = 1.0, vehicular mobility)");
  csv::Writer csv(opts.csv_path);
  csv.header({"policy", "load", "pcb", "phd", "n_calc"});
  bench::JsonReport json("ext_2d_load_sweep", opts);
  json.columns({"policy", "load", "pcb", "phd", "n_calc"});

  const admission::PolicyKind kinds[] = {
      admission::PolicyKind::kStatic, admission::PolicyKind::kAc1,
      admission::PolicyKind::kAc2, admission::PolicyKind::kAc3};
  const double loads[] = {100.0, 180.0, 260.0};

  struct Job {
    admission::PolicyKind kind;
    double load;
  };
  std::vector<Job> jobs;
  for (const auto kind : kinds) {
    for (const double load : loads) jobs.push_back({kind, load});
  }

  struct JobResult {
    core::SystemStatus status;
    telemetry::MetricsSnapshot telemetry;
    std::vector<telemetry::TraceRecord> trace;
    std::uint64_t trace_rotated_out = 0;
  };

  const auto t0 = std::chrono::steady_clock::now();
  const auto results = sim::parallel_map<JobResult>(
      opts.threads, jobs.size(), [&](std::size_t i) {
        core::HexSystemConfig cfg;
        cfg.policy = jobs[i].kind;
        cfg.static_g = 10.0;
        cfg.voice_ratio = 1.0;
        cfg.set_offered_load(jobs[i].load);
        cfg.seed = opts.seed;
        cfg.telemetry = opts.telemetry_config();

        // 24 cells yield ~2.4x the per-second samples of the 1-D ring, so
        // shorter runs reach the same confidence.
        core::HexCellularSystem sys(cfg);
        sys.run_for(opts.full ? 2000.0 : 600.0);
        sys.reset_metrics();
        sys.run_for(opts.full ? 8000.0 : 1500.0);
        JobResult out;
        out.status = sys.system_status();
        if (sys.telemetry().enabled()) {
          out.telemetry = sys.telemetry_snapshot();
          out.trace_rotated_out = sys.telemetry().buffer().rotated_out();
          out.trace = sys.telemetry().drain_trace();
        }
        return out;
      });
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::uint64_t br_calculations = 0;
  std::vector<telemetry::MetricsSnapshot> snapshots;
  std::vector<std::vector<telemetry::TraceRecord>> trace_streams;
  std::uint64_t trace_rotated = 0;
  core::TablePrinter table(
      {"policy", "load", "P_CB", "P_HD", "N_calc", "target"},
      {7, 6, 10, 10, 7, 7});
  table.print_header();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& s = results[i].status;
    if (opts.telemetry_requested()) {
      snapshots.push_back(results[i].telemetry);
      trace_streams.push_back(results[i].trace);
      trace_rotated += results[i].trace_rotated_out;
    }
    const char* name = admission::policy_kind_name(jobs[i].kind);
    table.print_row({name, core::TablePrinter::fixed(jobs[i].load, 0),
                     core::TablePrinter::prob(s.pcb),
                     core::TablePrinter::prob(s.phd),
                     core::TablePrinter::fixed(s.n_calc, 2),
                     s.phd <= 0.0125 ? "ok" : "MISS"});
    csv.row_values(name, jobs[i].load, s.pcb, s.phd, s.n_calc);
    json.row({name, csv::Writer::format(jobs[i].load),
              csv::Writer::format(s.pcb), csv::Writer::format(s.phd),
              csv::Writer::format(s.n_calc)});
    br_calculations += s.br_calculations;
    if (i % 3 == 2) table.print_rule();
  }

  json.counter("wall_seconds", wall);
  json.counter("br_calculations", static_cast<double>(br_calculations));
  json.counter("threads", opts.threads);
  if (!snapshots.empty()) {
    json.metrics(telemetry::merge_snapshots(snapshots));
  }
  json.write();
  bench::write_bench_trace("ext_2d_load_sweep", opts, trace_streams,
                           trace_rotated);

  std::cout << "\nExpected shape: the predictive/adaptive machinery carries "
               "to 2-D unchanged\n(AC3 keeps P_HD at target); AC2's cost "
               "grows from 3 to 7 calculations per\nadmission while AC3 "
               "stays a fraction of that — §5.2.3's prediction, "
               "quantified.\n";
  return 0;
}
