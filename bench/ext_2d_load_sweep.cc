// Extension experiment (§7 future work): the Fig. 8/12/13 sweeps
// transplanted to a two-dimensional hexagonal system (4x6 torus).
//
// Questions the paper leaves open, answered here:
//   * does AC3 still bound P_HD at the target when each cell has SIX
//     hand-in neighbours instead of two?
//   * §5.2.3's warning — "the complexity increase could be larger for
//     two-dimensional cellular structures" — how much larger? (AC2 now
//     costs 7 B_r computations per admission; AC3's selective
//     participation is where the savings compound.)
#include "bench_common.h"

#include "core/hex_system.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli("ext_2d_load_sweep",
                  "2-D hex-grid load sweep: AC1/AC2/AC3/static (§7)");
  bench::add_common_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Extension — 2-D hexagonal system (4x6 torus, "
                      "R_vo = 1.0, vehicular mobility)");
  csv::Writer csv(opts.csv_path);
  csv.header({"policy", "load", "pcb", "phd", "n_calc"});

  const admission::PolicyKind kinds[] = {
      admission::PolicyKind::kStatic, admission::PolicyKind::kAc1,
      admission::PolicyKind::kAc2, admission::PolicyKind::kAc3};

  core::TablePrinter table(
      {"policy", "load", "P_CB", "P_HD", "N_calc", "target"},
      {7, 6, 10, 10, 7, 7});
  table.print_header();
  for (const auto kind : kinds) {
    for (const double load : {100.0, 180.0, 260.0}) {
      core::HexSystemConfig cfg;
      cfg.policy = kind;
      cfg.static_g = 10.0;
      cfg.voice_ratio = 1.0;
      cfg.set_offered_load(load);
      cfg.seed = opts.seed;

      // 24 cells yield ~2.4x the per-second samples of the 1-D ring, so
      // shorter runs reach the same confidence.
      core::HexCellularSystem sys(cfg);
      sys.run_for(opts.full ? 2000.0 : 600.0);
      sys.reset_metrics();
      sys.run_for(opts.full ? 8000.0 : 1500.0);
      const auto s = sys.system_status();

      table.print_row({admission::policy_kind_name(kind),
                       core::TablePrinter::fixed(load, 0),
                       core::TablePrinter::prob(s.pcb),
                       core::TablePrinter::prob(s.phd),
                       core::TablePrinter::fixed(s.n_calc, 2),
                       s.phd <= 0.0125 ? "ok" : "MISS"});
      csv.row_values(admission::policy_kind_name(kind), load, s.pcb, s.phd,
                     s.n_calc);
    }
    table.print_rule();
  }
  std::cout << "\nExpected shape: the predictive/adaptive machinery carries "
               "to 2-D unchanged\n(AC3 keeps P_HD at target); AC2's cost "
               "grows from 3 to 7 calculations per\nadmission while AC3 "
               "stays a fraction of that — §5.2.3's prediction, "
               "quantified.\n";
  return 0;
}
