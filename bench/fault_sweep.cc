// Degraded-mode sweep: P_CB and P_HD vs backhaul fault rate under AC3 at
// a fixed offered load. One knob — the "fault rate" r — scales every
// fault process at once: per-message loss probability r, delay-loss r/2,
// and link/station MTBFs inversely proportional to r (fixed repair
// times), so r = 0 is the pristine baseline and r = 0.2 a heavily
// degraded backhaul.
//
// The question the sweep answers: how gracefully does the predictive
// scheme shed accuracy when signaling fails? Retries recover most
// message loss; sustained outages push the affected p_h terms onto the
// static degraded floor, so P_HD should degrade smoothly toward
// static-reservation behavior rather than collapse.
//
// Needs a PABR_FAULT build to be meaningful — with the hooks compiled
// out every row reproduces the r = 0 baseline (a warning is printed).
// Each rate point is an independent run; --threads N fans the sweep over
// a pool with byte-identical output.
#include <chrono>

#include "bench_common.h"
#include "sim/parallel.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double load = 180.0;
  cli::Parser cli("fault_sweep",
                  "P_CB/P_HD vs backhaul fault rate under AC3 "
                  "(degraded-mode reservation)");
  bench::add_common_flags(cli, opts);
  bench::add_threads_flag(cli, opts);
  bench::add_telemetry_flags(cli, opts);
  cli.add_double("load", &load, "offered load per cell (BU)");
  if (!cli.parse(argc, argv)) return 1;
  bench::warn_if_telemetry_unavailable(opts);
  if (!buildinfo::fault_enabled()) {
    std::cerr << "warning: fault-injection hooks compiled out "
                 "(PABR_FAULT=OFF); every row is the fault-free baseline\n";
  }

  bench::print_banner("Degraded mode — P_CB/P_HD vs fault rate, AC3, load " +
                      csv::Writer::format(load));
  csv::Writer csv(opts.csv_path);
  csv.header({"fault_rate", "pcb", "phd"});
  bench::JsonReport json("fault_sweep", opts);
  json.columns({"fault_rate", "pcb", "phd"});

  const std::vector<double> rates = {0.0, 0.01, 0.02, 0.05, 0.1, 0.2};
  const auto config_for = [&](double rate) {
    core::StationaryParams p;
    p.offered_load = load;
    p.policy = admission::PolicyKind::kAc3;
    p.seed = opts.seed;
    core::SystemConfig cfg = core::stationary_config(p);
    cfg.telemetry = opts.telemetry_config();
    if (rate > 0.0) {
      cfg.fault.enabled = true;
      cfg.fault.seed = sim::derive_seed(opts.seed, "fault-injector");
      cfg.fault.message_loss = rate;
      cfg.fault.message_delay = rate / 2.0;
      cfg.fault.link_mtbf_s = 500.0 / rate;
      cfg.fault.link_mttr_s = 30.0;
      cfg.fault.station_mtbf_s = 2000.0 / rate;
      cfg.fault.station_mttr_s = 60.0;
    }
    return cfg;
  };

  const auto t0 = std::chrono::steady_clock::now();
  const auto runs = sim::parallel_map<core::RunResult>(
      opts.threads, rates.size(), [&](std::size_t i) {
        return core::run_system(config_for(rates[i]), opts.plan());
      });

  std::uint64_t br_calculations = 0;
  std::vector<telemetry::MetricsSnapshot> snapshots;
  std::vector<std::vector<telemetry::TraceRecord>> trace_streams;
  std::uint64_t trace_rotated = 0;

  core::TablePrinter table({"fault rate", "P_CB", "P_HD", "target met"},
                           {10, 10, 10, 11});
  table.print_header();
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& s = runs[i].status;
    if (opts.telemetry_requested()) {
      snapshots.push_back(runs[i].telemetry);
      trace_streams.push_back(runs[i].trace);
      trace_rotated += runs[i].trace_rotated_out;
    }
    table.print_row({core::TablePrinter::fixed(rates[i], 2),
                     core::TablePrinter::prob(s.pcb),
                     core::TablePrinter::prob(s.phd),
                     s.phd <= 0.0125 ? "yes" : "NO"});
    csv.row_values(rates[i], s.pcb, s.phd);
    json.row({csv::Writer::format(rates[i]), csv::Writer::format(s.pcb),
              csv::Writer::format(s.phd)});
    br_calculations += s.br_calculations;
  }
  table.print_rule();

  json.counter("wall_seconds",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count());
  json.counter("br_calculations", static_cast<double>(br_calculations));
  json.counter("threads", opts.threads);
  if (!snapshots.empty()) {
    json.metrics(telemetry::merge_snapshots(snapshots));
  }
  json.write();
  bench::write_bench_trace("fault_sweep", opts, trace_streams, trace_rotated);
  return 0;
}
