// Figure 4 (illustrative in the paper, regenerated here from live data):
// the footprint of a cell's hand-off estimation function — for mobiles
// that entered from a given previous cell, the scatter of (sojourn time,
// next cell) over the cached quadruplets.
//
// On the 1-D ring with bidirectional traffic the expected footprint for
// prev = left neighbour has two bands: "continue right" events clustered
// at the full-cell transit time and "turned around" events spread at
// shorter sojourns (here mobiles never turn, so the second band collapses
// — runs with --low-mobility show the transit-time band shifting right,
// the paper's "farthest cell has the largest sojourns" observation).
#include "bench_common.h"

#include "core/system.h"
#include "util/ascii_plot.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  bool low_mobility = false;
  double duration = 1500.0;
  cli::Parser cli("fig04_footprint",
                  "hand-off estimation function footprint (paper Fig. 4)");
  bench::add_common_flags(cli, opts);
  cli.add_bool("low-mobility", &low_mobility, "use the 40-60 km/h range");
  cli.add_double("duration", &duration, "seconds of history to collect");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Figure 4 — footprint of F_HOE at cell <5>, "
                      "prev = cell <4>");

  core::StationaryParams p;
  p.offered_load = 200.0;
  p.voice_ratio = 1.0;
  p.mobility = low_mobility ? core::Mobility::kLow : core::Mobility::kHigh;
  p.policy = admission::PolicyKind::kAc3;
  p.seed = opts.seed;
  core::CellularSystem sys(core::stationary_config(p));
  sys.run_for(duration);

  // Cell <5> is index 4; its left neighbour <4> is index 3.
  const auto& est = sys.base_station(4).estimator();
  csv::Writer csv(opts.csv_path);
  csv.header({"prev", "next", "sojourn_s", "weight"});

  for (const geom::CellId prev : {3, 5, 4}) {  // left, right, started-here
    const auto fp = est.footprint(sys.now(), prev);
    const char* kind = prev == 4 ? "started in cell <5>"
                      : prev == 3 ? "entered from cell <4>"
                                  : "entered from cell <6>";
    std::cout << "\nprev = " << kind << ": " << fp.size()
              << " cached quadruplets\n";
    if (fp.empty()) continue;

    std::vector<plot::Point> pts;
    for (const auto& q : fp) {
      // y = next cell id (1-based), x = sojourn; glyph encodes direction.
      pts.push_back(plot::Point{q.sojourn, static_cast<double>(q.next + 1),
                                q.next == 5 ? '>' : '<'});
      csv.row_values(prev + 1, q.next + 1, q.sojourn, q.weight);
    }
    plot::Canvas canvas;
    canvas.height = 7;
    canvas.x_label = "sojourn time T_soj (s)";
    canvas.y_label = "next cell index ('>' = cell <6>, '<' = cell <4>)";
    std::cout << plot::scatter(pts, canvas);
  }
  std::cout << "\nReading the footprint (paper §3.1): for through-traffic "
               "the sojourn\nclusters at cell-transit time; started-here "
               "mobiles show sojourns spread\nfrom 0 to the transit time "
               "(uniform starting position).\n";
  return 0;
}
