// Figure 7: P_CB and P_HD vs offered load under STATIC reservation
// (G = 10 BUs permanently set aside), for R_vo in {1.0, 0.8, 0.5} and
// (a) high / (b) low user mobility.
//
// Paper's observations this should reproduce:
//   * G = 10 suffices (P_HD < 0.01) for R_vo = 1.0 but NOT for R_vo = 0.5;
//   * for R_vo = 0.8 it suffices only under low mobility / low load;
//   * for R_vo = 1.0 at light load it over-reserves (P_HD << target).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double g = 10.0;
  cli::Parser cli("fig07_static_reservation",
                  "P_CB/P_HD vs load, static reservation (paper Fig. 7)");
  bench::add_common_flags(cli, opts);
  cli.add_double("g", &g, "statically reserved BUs per cell");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Figure 7 — static reservation, G = " +
                      core::TablePrinter::fixed(g, 0) + " BU");
  csv::Writer csv(opts.csv_path);
  csv.header({"mobility", "voice_ratio", "load", "pcb", "phd"});

  core::TablePrinter table({"mobility", "R_vo", "load", "P_CB", "P_HD"},
                           {8, 6, 6, 10, 10});
  for (const core::Mobility mob :
       {core::Mobility::kHigh, core::Mobility::kLow}) {
    std::cout << "\n-- " << core::mobility_name(mob) << " user mobility ("
              << (mob == core::Mobility::kHigh ? "[80,120]" : "[40,60]")
              << " km/h) --\n";
    table.print_header();
    for (const double rvo : {1.0, 0.8, 0.5}) {
      for (const double load : core::paper_load_grid()) {
        core::StationaryParams p;
        p.offered_load = load;
        p.voice_ratio = rvo;
        p.mobility = mob;
        p.policy = admission::PolicyKind::kStatic;
        p.static_g = g;
        p.seed = opts.seed;
        const auto r = core::run_system(core::stationary_config(p),
                                        opts.plan());
        table.print_row({core::mobility_name(mob),
                         core::TablePrinter::fixed(rvo, 1),
                         core::TablePrinter::fixed(load, 0),
                         core::TablePrinter::prob(r.status.pcb),
                         core::TablePrinter::prob(r.status.phd)});
        csv.row_values(core::mobility_name(mob), rvo, load, r.status.pcb,
                       r.status.phd);
      }
      table.print_rule();
    }
  }
  return 0;
}
