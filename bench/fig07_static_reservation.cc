// Figure 7: P_CB and P_HD vs offered load under STATIC reservation
// (G = 10 BUs permanently set aside), for R_vo in {1.0, 0.8, 0.5} and
// (a) high / (b) low user mobility.
//
// Paper's observations this should reproduce:
//   * G = 10 suffices (P_HD < 0.01) for R_vo = 1.0 but NOT for R_vo = 0.5;
//   * for R_vo = 0.8 it suffices only under low mobility / low load;
//   * for R_vo = 1.0 at light load it over-reserves (P_HD << target).
//
// Each load point is an independent run; --threads N fans each sweep
// over a pool with byte-identical output (core::sweep_loads).
#include <chrono>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double g = 10.0;
  cli::Parser cli("fig07_static_reservation",
                  "P_CB/P_HD vs load, static reservation (paper Fig. 7)");
  bench::add_common_flags(cli, opts);
  bench::add_threads_flag(cli, opts);
  bench::add_telemetry_flags(cli, opts);
  cli.add_double("g", &g, "statically reserved BUs per cell");
  if (!cli.parse(argc, argv)) return 1;
  bench::warn_if_telemetry_unavailable(opts);

  bench::print_banner("Figure 7 — static reservation, G = " +
                      core::TablePrinter::fixed(g, 0) + " BU");
  csv::Writer csv(opts.csv_path);
  csv.header({"mobility", "voice_ratio", "load", "pcb", "phd"});
  bench::JsonReport json("fig07_static_reservation", opts);
  json.columns({"mobility", "voice_ratio", "load", "pcb", "phd"});

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t br_calculations = 0;
  std::vector<telemetry::MetricsSnapshot> snapshots;
  std::vector<std::vector<telemetry::TraceRecord>> trace_streams;
  std::uint64_t trace_rotated = 0;

  core::TablePrinter table({"mobility", "R_vo", "load", "P_CB", "P_HD"},
                           {8, 6, 6, 10, 10});
  for (const core::Mobility mob :
       {core::Mobility::kHigh, core::Mobility::kLow}) {
    std::cout << "\n-- " << core::mobility_name(mob) << " user mobility ("
              << (mob == core::Mobility::kHigh ? "[80,120]" : "[40,60]")
              << " km/h) --\n";
    table.print_header();
    for (const double rvo : {1.0, 0.8, 0.5}) {
      const auto points = core::sweep_loads(
          core::paper_load_grid(),
          [&](double load) {
            core::StationaryParams p;
            p.offered_load = load;
            p.voice_ratio = rvo;
            p.mobility = mob;
            p.policy = admission::PolicyKind::kStatic;
            p.static_g = g;
            p.seed = opts.seed;
            core::SystemConfig cfg = core::stationary_config(p);
            cfg.telemetry = opts.telemetry_config();
            return cfg;
          },
          opts.plan(), opts.threads);
      for (const auto& pt : points) {
        const auto& s = pt.result.status;
        if (opts.telemetry_requested()) {
          snapshots.push_back(pt.result.telemetry);
          trace_streams.push_back(pt.result.trace);
          trace_rotated += pt.result.trace_rotated_out;
        }
        table.print_row({core::mobility_name(mob),
                         core::TablePrinter::fixed(rvo, 1),
                         core::TablePrinter::fixed(pt.offered_load, 0),
                         core::TablePrinter::prob(s.pcb),
                         core::TablePrinter::prob(s.phd)});
        csv.row_values(core::mobility_name(mob), rvo, pt.offered_load,
                       s.pcb, s.phd);
        json.row({core::mobility_name(mob), csv::Writer::format(rvo),
                  csv::Writer::format(pt.offered_load),
                  csv::Writer::format(s.pcb), csv::Writer::format(s.phd)});
        br_calculations += s.br_calculations;
      }
      table.print_rule();
    }
  }

  json.counter("wall_seconds",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count());
  json.counter("br_calculations", static_cast<double>(br_calculations));
  json.counter("threads", opts.threads);
  if (!snapshots.empty()) {
    json.metrics(telemetry::merge_snapshots(snapshots));
  }
  json.write();
  bench::write_bench_trace("fig07_static_reservation", opts, trace_streams,
                           trace_rotated);
  return 0;
}
