// Figure 8: P_CB and P_HD vs offered load under AC3 for R_vo in
// {1.0, 0.8, 0.5} and (a) high / (b) low user mobility.
//
// Paper's headline result: P_HD <= P_HD,target (= 0.01) across the ENTIRE
// load range 60..300 irrespective of voice ratio and mobility, with the
// P_CB/P_HD gap narrowing as load decreases (less bandwidth reserved).
//
// Each load point is an independent run; --threads N fans each sweep
// over a pool with byte-identical output (core::sweep_loads).
#include <chrono>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli("fig08_ac3_load_sweep",
                  "P_CB/P_HD vs load under AC3 (paper Fig. 8)");
  bench::add_common_flags(cli, opts);
  bench::add_threads_flag(cli, opts);
  bench::add_telemetry_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;
  bench::warn_if_telemetry_unavailable(opts);

  bench::print_banner("Figure 8 — predictive/adaptive reservation, AC3");
  csv::Writer csv(opts.csv_path);
  csv.header({"mobility", "voice_ratio", "load", "pcb", "phd"});
  bench::JsonReport json("fig08_ac3_load_sweep", opts);
  json.columns({"mobility", "voice_ratio", "load", "pcb", "phd"});

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t br_calculations = 0;
  std::vector<telemetry::MetricsSnapshot> snapshots;
  std::vector<std::vector<telemetry::TraceRecord>> trace_streams;
  std::uint64_t trace_rotated = 0;

  core::TablePrinter table(
      {"mobility", "R_vo", "load", "P_CB", "P_HD", "target met"},
      {8, 6, 6, 10, 10, 11});
  for (const core::Mobility mob :
       {core::Mobility::kHigh, core::Mobility::kLow}) {
    std::cout << "\n-- " << core::mobility_name(mob)
              << " user mobility --\n";
    table.print_header();
    for (const double rvo : {1.0, 0.8, 0.5}) {
      const auto points = core::sweep_loads(
          core::paper_load_grid(),
          [&](double load) {
            core::StationaryParams p;
            p.offered_load = load;
            p.voice_ratio = rvo;
            p.mobility = mob;
            p.policy = admission::PolicyKind::kAc3;
            p.seed = opts.seed;
            core::SystemConfig cfg = core::stationary_config(p);
            cfg.telemetry = opts.telemetry_config();
            return cfg;
          },
          opts.plan(), opts.threads);
      for (const auto& pt : points) {
        const auto& s = pt.result.status;
        if (opts.telemetry_requested()) {
          snapshots.push_back(pt.result.telemetry);
          trace_streams.push_back(pt.result.trace);
          trace_rotated += pt.result.trace_rotated_out;
        }
        table.print_row({core::mobility_name(mob),
                         core::TablePrinter::fixed(rvo, 1),
                         core::TablePrinter::fixed(pt.offered_load, 0),
                         core::TablePrinter::prob(s.pcb),
                         core::TablePrinter::prob(s.phd),
                         s.phd <= 0.0125 ? "yes" : "NO"});
        csv.row_values(core::mobility_name(mob), rvo, pt.offered_load,
                       s.pcb, s.phd);
        json.row({core::mobility_name(mob), csv::Writer::format(rvo),
                  csv::Writer::format(pt.offered_load),
                  csv::Writer::format(s.pcb), csv::Writer::format(s.phd)});
        br_calculations += s.br_calculations;
      }
      table.print_rule();
    }
  }

  json.counter("wall_seconds",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count());
  json.counter("br_calculations", static_cast<double>(br_calculations));
  json.counter("threads", opts.threads);
  if (!snapshots.empty()) {
    json.metrics(telemetry::merge_snapshots(snapshots));
  }
  json.write();
  bench::write_bench_trace("fig08_ac3_load_sweep", opts, trace_streams,
                           trace_rotated);
  return 0;
}
