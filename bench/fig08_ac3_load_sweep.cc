// Figure 8: P_CB and P_HD vs offered load under AC3 for R_vo in
// {1.0, 0.8, 0.5} and (a) high / (b) low user mobility.
//
// Paper's headline result: P_HD <= P_HD,target (= 0.01) across the ENTIRE
// load range 60..300 irrespective of voice ratio and mobility, with the
// P_CB/P_HD gap narrowing as load decreases (less bandwidth reserved).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli("fig08_ac3_load_sweep",
                  "P_CB/P_HD vs load under AC3 (paper Fig. 8)");
  bench::add_common_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Figure 8 — predictive/adaptive reservation, AC3");
  csv::Writer csv(opts.csv_path);
  csv.header({"mobility", "voice_ratio", "load", "pcb", "phd"});

  core::TablePrinter table(
      {"mobility", "R_vo", "load", "P_CB", "P_HD", "target met"},
      {8, 6, 6, 10, 10, 11});
  for (const core::Mobility mob :
       {core::Mobility::kHigh, core::Mobility::kLow}) {
    std::cout << "\n-- " << core::mobility_name(mob)
              << " user mobility --\n";
    table.print_header();
    for (const double rvo : {1.0, 0.8, 0.5}) {
      for (const double load : core::paper_load_grid()) {
        core::StationaryParams p;
        p.offered_load = load;
        p.voice_ratio = rvo;
        p.mobility = mob;
        p.policy = admission::PolicyKind::kAc3;
        p.seed = opts.seed;
        const auto r = core::run_system(core::stationary_config(p),
                                        opts.plan());
        table.print_row({core::mobility_name(mob),
                         core::TablePrinter::fixed(rvo, 1),
                         core::TablePrinter::fixed(load, 0),
                         core::TablePrinter::prob(r.status.pcb),
                         core::TablePrinter::prob(r.status.phd),
                         r.status.phd <= 0.0125 ? "yes" : "NO"});
        csv.row_values(core::mobility_name(mob), rvo, load, r.status.pcb,
                       r.status.phd);
      }
      table.print_rule();
    }
  }
  return 0;
}
