// Figure 9: average target reservation bandwidth B_r and average used
// bandwidth B_u vs offered load under AC3, for (a) high / (b) low user
// mobility and R_vo in {1.0, 0.8, 0.5}.
//
// Paper's observations this should reproduce:
//   * B_r increases monotonically with load and saturates once the cell is
//     over-loaded;
//   * more video (smaller R_vo) -> larger B_r;
//   * high mobility reserves more than low mobility;
//   * B_u moves inversely to B_r and B_r + B_u stays below the capacity.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli("fig09_reservation_pattern",
                  "average B_r / B_u vs load under AC3 (paper Fig. 9)");
  bench::add_common_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Figure 9 — adaptive reservation pattern, AC3");
  csv::Writer csv(opts.csv_path);
  csv.header({"mobility", "voice_ratio", "load", "br_avg", "bu_avg"});

  core::TablePrinter table(
      {"mobility", "R_vo", "load", "avg B_r", "avg B_u", "B_r+B_u"},
      {8, 6, 6, 9, 9, 9});
  for (const core::Mobility mob :
       {core::Mobility::kHigh, core::Mobility::kLow}) {
    std::cout << "\n-- " << core::mobility_name(mob)
              << " user mobility --\n";
    table.print_header();
    for (const double rvo : {1.0, 0.8, 0.5}) {
      for (const double load : core::paper_load_grid()) {
        core::StationaryParams p;
        p.offered_load = load;
        p.voice_ratio = rvo;
        p.mobility = mob;
        p.policy = admission::PolicyKind::kAc3;
        p.seed = opts.seed;
        const auto r = core::run_system(core::stationary_config(p),
                                        opts.plan());
        table.print_row(
            {core::mobility_name(mob), core::TablePrinter::fixed(rvo, 1),
             core::TablePrinter::fixed(load, 0),
             core::TablePrinter::fixed(r.status.br_avg, 2),
             core::TablePrinter::fixed(r.status.bu_avg, 2),
             core::TablePrinter::fixed(r.status.br_avg + r.status.bu_avg,
                                       2)});
        csv.row_values(core::mobility_name(mob), rvo, load, r.status.br_avg,
                       r.status.bu_avg);
      }
      table.print_rule();
    }
  }
  return 0;
}
