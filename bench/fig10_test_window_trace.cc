// Figure 10: T_est and B_r vs time in cells <5> and <6>, from a cold start
// (t = 0) with offered load 300, R_vo = 1.0, high mobility, AC3.
//
// Paper's observations this should reproduce: T_est climbs from T_start =
// 1 s as drops occur and then oscillates (each +1 s step corresponds to a
// hand-off drop); B_r fluctuates between over- and under-reservation,
// tracking T_est and the neighbours' traffic.
#include "bench_common.h"

#include "core/system.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double duration = 2000.0;
  double load = 300.0;
  cli::Parser cli("fig10_test_window_trace",
                  "T_est and B_r vs time, cells <5>/<6> (paper Fig. 10)");
  bench::add_common_flags(cli, opts);
  cli.add_double("duration", &duration, "simulated seconds from cold start");
  cli.add_double("load", &load, "offered load per cell");
  if (!cli.parse(argc, argv)) return 1;
  if (opts.full) duration = std::max(duration, 2000.0);

  bench::print_banner(
      "Figure 10 — T_est / B_r traces from cold start (AC3, L = " +
      core::TablePrinter::fixed(load, 0) + ", R_vo = 1.0, high mobility)");

  core::StationaryParams p;
  p.offered_load = load;
  p.voice_ratio = 1.0;
  p.mobility = core::Mobility::kHigh;
  p.policy = admission::PolicyKind::kAc3;
  p.seed = opts.seed;
  core::SystemConfig cfg = core::stationary_config(p);
  cfg.traced_cells = {4, 5};  // the paper's cells <5> and <6>

  core::CellularSystem sys(cfg);
  sys.run_for(duration);

  csv::Writer csv(opts.csv_path);
  csv.header({"cell", "series", "t", "value"});

  for (const geom::CellId c : {4, 5}) {
    const core::CellTrace* tr = sys.trace(c);
    std::cout << "\n-- cell <" << (c + 1) << "> --\n";
    core::TablePrinter table({"t (s)", "T_est (s)", "B_r (BU)"},
                             {9, 10, 9});
    table.print_header();
    // Sample both staircases on a common, thinned grid.
    const int samples = 40;
    for (int i = 1; i <= samples; ++i) {
      const double t =
          duration * static_cast<double>(i) / static_cast<double>(samples);
      const double t_est = tr->t_est.value_at(t, cfg.t_start);
      const double br = tr->br.value_at(t, 0.0);
      table.print_row({core::TablePrinter::fixed(t, 0),
                       core::TablePrinter::fixed(t_est, 0),
                       core::TablePrinter::fixed(br, 2)});
      csv.row_values(c + 1, "t_est", t, t_est);
      csv.row_values(c + 1, "br", t, br);
    }
    table.print_rule();
    std::cout << "T_est samples recorded: " << tr->t_est.points().size()
              << ", B_r updates: " << tr->br.points().size() << "\n";
  }
  return 0;
}
