// Figure 11: cumulative P_HD vs time at cells <5> and <6> from a cold
// start (same run configuration as Fig. 10).
//
// Paper's observations this should reproduce: P_HD may peak above the
// 0.01 target early (no cached quadruplets, T_est still adapting from
// T_start = 1 s) but settles to/below the target as history accumulates.
#include "bench_common.h"

#include "core/system.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double duration = 2000.0;
  cli::Parser cli("fig11_phd_convergence",
                  "P_HD vs time at cells <5>/<6> (paper Fig. 11)");
  bench::add_common_flags(cli, opts);
  cli.add_double("duration", &duration, "simulated seconds from cold start");
  if (!cli.parse(argc, argv)) return 1;
  if (opts.full) duration = std::max(duration, 4000.0);

  bench::print_banner(
      "Figure 11 — P_HD convergence from cold start (AC3, L = 300, "
      "R_vo = 1.0, high mobility)");

  core::StationaryParams p;
  p.offered_load = 300.0;
  p.voice_ratio = 1.0;
  p.mobility = core::Mobility::kHigh;
  p.policy = admission::PolicyKind::kAc3;
  p.seed = opts.seed;
  core::SystemConfig cfg = core::stationary_config(p);
  cfg.traced_cells = {4, 5};

  core::CellularSystem sys(cfg);
  sys.run_for(duration);

  csv::Writer csv(opts.csv_path);
  csv.header({"cell", "t", "phd"});

  core::TablePrinter table({"t (s)", "P_HD cell<5>", "P_HD cell<6>"},
                           {9, 13, 13});
  table.print_header();
  const core::CellTrace* c5 = sys.trace(4);
  const core::CellTrace* c6 = sys.trace(5);
  const int samples = 40;
  for (int i = 1; i <= samples; ++i) {
    const double t =
        duration * static_cast<double>(i) / static_cast<double>(samples);
    const double p5 = c5->phd.value_at(t, 0.0);
    const double p6 = c6->phd.value_at(t, 0.0);
    table.print_row({core::TablePrinter::fixed(t, 0),
                     core::TablePrinter::prob(p5),
                     core::TablePrinter::prob(p6)});
    csv.row_values(5, t, p5);
    csv.row_values(6, t, p6);
  }
  table.print_rule();
  std::cout << "final cumulative P_HD: cell<5> = "
            << core::TablePrinter::prob(sys.cell_metrics(4).phd.value())
            << ", cell<6> = "
            << core::TablePrinter::prob(sys.cell_metrics(5).phd.value())
            << "  (target 0.01)\n";
  return 0;
}
