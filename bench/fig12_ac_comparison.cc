// Figure 12: P_CB and P_HD vs offered load for AC1 / AC2 / AC3 under high
// user mobility, (a) R_vo = 1.0 and (b) R_vo = 0.5.
//
// Paper's observations this should reproduce:
//   * the three schemes have nearly identical P_CB (AC1 slightly lowest);
//   * AC2 and AC3 bound P_HD at the target; AC1 exceeds it when
//     over-loaded (L > ~150) but stays below ~0.02 even at L = 300.
//
// Each load point is an independent run; --threads N fans each sweep
// over a pool with byte-identical output (core::sweep_loads).
#include <chrono>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli("fig12_ac_comparison",
                  "P_CB/P_HD vs load for AC1/AC2/AC3 (paper Fig. 12)");
  bench::add_common_flags(cli, opts);
  bench::add_threads_flag(cli, opts);
  bench::add_telemetry_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;
  bench::warn_if_telemetry_unavailable(opts);

  bench::print_banner("Figure 12 — admission-control comparison "
                      "(high mobility)");
  csv::Writer csv(opts.csv_path);
  csv.header({"voice_ratio", "policy", "load", "pcb", "phd"});
  bench::JsonReport json("fig12_ac_comparison", opts);
  json.columns({"voice_ratio", "policy", "load", "pcb", "phd"});

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t br_calculations = 0;
  std::vector<telemetry::MetricsSnapshot> snapshots;
  std::vector<std::vector<telemetry::TraceRecord>> trace_streams;
  std::uint64_t trace_rotated = 0;

  const admission::PolicyKind kinds[] = {admission::PolicyKind::kAc1,
                                         admission::PolicyKind::kAc2,
                                         admission::PolicyKind::kAc3};
  for (const double rvo : {1.0, 0.5}) {
    std::cout << "\n-- R_vo = " << core::TablePrinter::fixed(rvo, 1)
              << " --\n";
    core::TablePrinter table({"policy", "load", "P_CB", "P_HD"},
                             {7, 6, 10, 10});
    table.print_header();
    for (const auto kind : kinds) {
      const auto points = core::sweep_loads(
          core::paper_load_grid(),
          [&](double load) {
            core::StationaryParams p;
            p.offered_load = load;
            p.voice_ratio = rvo;
            p.mobility = core::Mobility::kHigh;
            p.policy = kind;
            p.seed = opts.seed;
            core::SystemConfig cfg = core::stationary_config(p);
            cfg.telemetry = opts.telemetry_config();
            return cfg;
          },
          opts.plan(), opts.threads);
      for (const auto& pt : points) {
        const auto& s = pt.result.status;
        if (opts.telemetry_requested()) {
          snapshots.push_back(pt.result.telemetry);
          trace_streams.push_back(pt.result.trace);
          trace_rotated += pt.result.trace_rotated_out;
        }
        table.print_row({admission::policy_kind_name(kind),
                         core::TablePrinter::fixed(pt.offered_load, 0),
                         core::TablePrinter::prob(s.pcb),
                         core::TablePrinter::prob(s.phd)});
        csv.row_values(rvo, admission::policy_kind_name(kind),
                       pt.offered_load, s.pcb, s.phd);
        json.row({csv::Writer::format(rvo),
                  admission::policy_kind_name(kind),
                  csv::Writer::format(pt.offered_load),
                  csv::Writer::format(s.pcb), csv::Writer::format(s.phd)});
        br_calculations += s.br_calculations;
      }
      table.print_rule();
    }
  }

  json.counter("wall_seconds",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count());
  json.counter("br_calculations", static_cast<double>(br_calculations));
  json.counter("threads", opts.threads);
  if (!snapshots.empty()) {
    json.metrics(telemetry::merge_snapshots(snapshots));
  }
  json.write();
  bench::write_bench_trace("fig12_ac_comparison", opts, trace_streams,
                           trace_rotated);
  return 0;
}
