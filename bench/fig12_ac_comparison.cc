// Figure 12: P_CB and P_HD vs offered load for AC1 / AC2 / AC3 under high
// user mobility, (a) R_vo = 1.0 and (b) R_vo = 0.5.
//
// Paper's observations this should reproduce:
//   * the three schemes have nearly identical P_CB (AC1 slightly lowest);
//   * AC2 and AC3 bound P_HD at the target; AC1 exceeds it when
//     over-loaded (L > ~150) but stays below ~0.02 even at L = 300.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli("fig12_ac_comparison",
                  "P_CB/P_HD vs load for AC1/AC2/AC3 (paper Fig. 12)");
  bench::add_common_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Figure 12 — admission-control comparison "
                      "(high mobility)");
  csv::Writer csv(opts.csv_path);
  csv.header({"voice_ratio", "policy", "load", "pcb", "phd"});

  const admission::PolicyKind kinds[] = {admission::PolicyKind::kAc1,
                                         admission::PolicyKind::kAc2,
                                         admission::PolicyKind::kAc3};
  for (const double rvo : {1.0, 0.5}) {
    std::cout << "\n-- R_vo = " << core::TablePrinter::fixed(rvo, 1)
              << " --\n";
    core::TablePrinter table({"policy", "load", "P_CB", "P_HD"},
                             {7, 6, 10, 10});
    table.print_header();
    for (const auto kind : kinds) {
      for (const double load : core::paper_load_grid()) {
        core::StationaryParams p;
        p.offered_load = load;
        p.voice_ratio = rvo;
        p.mobility = core::Mobility::kHigh;
        p.policy = kind;
        p.seed = opts.seed;
        const auto r = core::run_system(core::stationary_config(p),
                                        opts.plan());
        table.print_row({admission::policy_kind_name(kind),
                         core::TablePrinter::fixed(load, 0),
                         core::TablePrinter::prob(r.status.pcb),
                         core::TablePrinter::prob(r.status.phd)});
        csv.row_values(rvo, admission::policy_kind_name(kind), load,
                       r.status.pcb, r.status.phd);
      }
      table.print_rule();
    }
  }
  return 0;
}
