// Figure 13: N_calc — the average number of B_r calculations per
// admission test — vs offered load for AC1 / AC2 / AC3 under (a) high and
// (b) low user mobility.
//
// Paper's observations this should reproduce: N_calc = 1 flat for AC1,
// = 3 flat for AC2 (both neighbours + the cell itself on the 1-D road),
// and for AC3 = 1 at light load, rising from about L = 80 but staying
// below 1.5 everywhere. Backhaul message counts per admission are also
// reported for both interconnect layouts of Fig. 1.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli("fig13_ncalc_complexity",
                  "N_calc vs load for AC1/AC2/AC3 (paper Fig. 13)");
  bench::add_common_flags(cli, opts);
  bench::add_telemetry_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;
  bench::warn_if_telemetry_unavailable(opts);

  bench::print_banner("Figure 13 — admission-test complexity (N_calc)");
  csv::Writer csv(opts.csv_path);
  csv.header({"mobility", "policy", "load", "n_calc", "msgs_per_admission"});
  std::vector<std::vector<telemetry::TraceRecord>> trace_streams;
  std::uint64_t trace_rotated = 0;

  const admission::PolicyKind kinds[] = {admission::PolicyKind::kAc1,
                                         admission::PolicyKind::kAc2,
                                         admission::PolicyKind::kAc3};
  for (const core::Mobility mob :
       {core::Mobility::kHigh, core::Mobility::kLow}) {
    std::cout << "\n-- " << core::mobility_name(mob)
              << " user mobility --\n";
    core::TablePrinter table(
        {"policy", "load", "N_calc", "msgs/adm"},
        {7, 6, 8, 9});
    table.print_header();
    for (const auto kind : kinds) {
      for (const double load : core::paper_load_grid()) {
        core::StationaryParams p;
        p.offered_load = load;
        p.voice_ratio = 1.0;
        p.mobility = mob;
        p.policy = kind;
        p.seed = opts.seed;
        core::SystemConfig cfg = core::stationary_config(p);
        cfg.telemetry = opts.telemetry_config();
        const auto plan = opts.plan();
        core::CellularSystem sys(cfg);
        sys.run_for(plan.warmup_s);
        sys.reset_metrics();
        sys.run_for(plan.measure_s);
        const auto s = sys.system_status();
        if (sys.telemetry().enabled()) {
          trace_rotated += sys.telemetry().buffer().rotated_out();
          trace_streams.push_back(sys.telemetry().drain_trace());
        }
        const double msgs =
            s.requests == 0
                ? 0.0
                : static_cast<double>(s.backhaul_messages -
                                      s.handoffs) /  // exclude hand-off sigs
                      static_cast<double>(s.requests);
        table.print_row({admission::policy_kind_name(kind),
                         core::TablePrinter::fixed(load, 0),
                         core::TablePrinter::fixed(s.n_calc, 3),
                         core::TablePrinter::fixed(msgs, 2)});
        csv.row_values(core::mobility_name(mob),
                       admission::policy_kind_name(kind), load, s.n_calc,
                       msgs);
      }
      table.print_rule();
    }
  }
  bench::write_bench_trace("fig13_ncalc_complexity", opts, trace_streams,
                           trace_rotated);
  return 0;
}
