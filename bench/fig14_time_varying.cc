// Figure 14: the time-varying traffic/mobility case (§5.3). Two simulated
// days with daily load/speed profiles, blocked-call retries (re-request
// with probability 1 - 0.1*N_ret after 5 s), T_int = 1 h, N_win-days = 1.
//
//   (a) mobiles' average speed, original offered load L_o and measured
//       actual offered load L_a per hour;
//   (b) hourly P_CB and P_HD per admission scheme.
//
// Paper's observations this should reproduce: outside peak hours both
// probabilities are negligible; during peaks P_HD stays bounded by the
// 0.01 target for all schemes while P_CB spikes; AC1's P_CB is lowest and
// the actual load L_a exceeds L_o when blocking triggers retries.
#include "bench_common.h"

#include "core/metrics.h"
#include "core/system.h"
#include "traffic/profiles.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double days = 0.0;  // 0 = auto: 1 day by default, 2 with --full
  std::string policies = "ac1,ac3";
  cli::Parser cli("fig14_time_varying",
                  "two-day time-varying case (paper Fig. 14)");
  bench::add_common_flags(cli, opts);
  cli.add_double("days", &days, "simulated days (0 = 1, or 2 with --full)");
  cli.add_string("policies", &policies,
                 "comma-separated subset of ac1,ac2,ac3");
  if (!cli.parse(argc, argv)) return 1;
  if (days <= 0.0) days = opts.full ? 2.0 : 1.0;
  if (opts.full) policies = "ac1,ac2,ac3";

  bench::print_banner("Figure 14 — time-varying traffic/mobility (" +
                      core::TablePrinter::fixed(days, 0) + " day(s), " +
                      policies + ")");
  csv::Writer csv(opts.csv_path);
  csv.header({"policy", "hour", "speed", "load_original", "load_actual",
              "pcb", "phd"});

  const auto load_profile = traffic::paper_load_profile();
  const auto speed_profile = traffic::paper_speed_profile();

  std::vector<admission::PolicyKind> kinds;
  if (policies.find("ac1") != std::string::npos)
    kinds.push_back(admission::PolicyKind::kAc1);
  if (policies.find("ac2") != std::string::npos)
    kinds.push_back(admission::PolicyKind::kAc2);
  if (policies.find("ac3") != std::string::npos)
    kinds.push_back(admission::PolicyKind::kAc3);

  for (const auto kind : kinds) {
    core::TimeVaryingParams p;
    p.policy = kind;
    p.seed = opts.seed;
    core::CellularSystem sys(core::time_varying_config(p));

    // Collect hourly P_CB / P_HD by differencing cumulative counters at
    // hour boundaries (the paper plots per-hour averages).
    struct HourRow {
      double pcb, phd, la;
    };
    std::vector<HourRow> rows;
    std::uint64_t req0 = 0, blk0 = 0, ho0 = 0, dr0 = 0;
    const int total_hours = static_cast<int>(days * 24.0);
    for (int h = 0; h < total_hours; ++h) {
      sys.run_for(sim::kHour);
      const auto s = sys.system_status();
      const std::uint64_t req = s.requests - req0;
      const std::uint64_t blk = s.blocks - blk0;
      const std::uint64_t ho = s.handoffs - ho0;
      const std::uint64_t dr = s.drops - dr0;
      req0 = s.requests;
      blk0 = s.blocks;
      ho0 = s.handoffs;
      dr0 = s.drops;
      HourRow row;
      row.pcb = req == 0 ? 0.0
                         : static_cast<double>(blk) /
                               static_cast<double>(req);
      row.phd =
          ho == 0 ? 0.0 : static_cast<double>(dr) / static_cast<double>(ho);
      const auto hourly = sys.offered_load().hourly();
      row.la = static_cast<std::size_t>(h) < hourly.size()
                   ? hourly[static_cast<std::size_t>(h)].load
                   : 0.0;
      rows.push_back(row);
    }

    std::cout << "\n-- " << admission::policy_kind_name(kind) << " --\n";
    core::TablePrinter table({"hour", "speed", "L_o", "L_a", "P_CB",
                              "P_HD"},
                             {5, 7, 6, 7, 10, 10});
    table.print_header();
    for (int h = 0; h < total_hours; ++h) {
      const double mid = (static_cast<double>(h) + 0.5);
      const double spd = speed_profile.at_hour(std::fmod(mid, 24.0));
      const double lo = load_profile.at_hour(std::fmod(mid, 24.0));
      const auto& row = rows[static_cast<std::size_t>(h)];
      table.print_row({core::TablePrinter::fixed(mid, 1),
                       core::TablePrinter::fixed(spd, 0),
                       core::TablePrinter::fixed(lo, 0),
                       core::TablePrinter::fixed(row.la, 1),
                       core::TablePrinter::prob(row.pcb),
                       core::TablePrinter::prob(row.phd)});
      csv.row_values(admission::policy_kind_name(kind), mid, spd, lo,
                     row.la, row.pcb, row.phd);
    }
    table.print_rule();
    const auto s = sys.system_status();
    std::cout << "whole-run P_CB = " << core::TablePrinter::prob(s.pcb)
              << ", P_HD = " << core::TablePrinter::prob(s.phd)
              << " (target 0.01)\n";
  }
  return 0;
}
