// Differential scenario fuzzer — the hundreds-of-seeds version of
// tests/fuzz_scenario_test.cc.
//
// Each seed expands deterministically into a randomized short simulation
// (core/random_scenario.h) which is run three times: with the
// reservation served incrementally, recomputed from scratch, and
// incrementally again but snapshotted to memory and reloaded mid-run at
// a seed-derived random point (invariant I10, DESIGN.md §13 —
// --checkpoint-every replaces the random point with a fixed cadence of
// chained snapshots). All three trajectory digests must match bitwise.
// The whole batch is then re-run across the thread pool (--threads N)
// and every digest must match the sequential batch byte for byte. Every
// run carries the per-event invariant audit (PABR_AUDIT builds honor
// --audit-every; every build gets the explicit end-of-run sweep).
//
// --resume-from FILE switches to a one-shot branch mode instead: the
// snapshot is loaded (linear or hex, auto-detected), run for
// --resume-for further simulated seconds, swept by audit_invariants()
// and its trajectory digest printed — the command-line way to extend or
// branch a checkpointed run.
//
// --guided switches to the coverage-guided genome fuzzer (DESIGN.md
// §15): scenarios are explicit mutable genomes, a run's coverage is the
// regime-feature signature harvested from its end-of-run counters, and
// a genome joins the --corpus-dir corpus exactly when it reaches a
// feature no earlier run reached. On any oracle violation the genome is
// printed in full, --minimize shrinks it to a 1-minimal reproducer
// (written to --repro-dir, default the corpus dir), and the driver
// exits 1. --inject-bug (self-check only) arms the planted off-by-one
// in src/fuzz/runner.cc; without --guided it runs the same genome
// oracle stack over blind random genomes — the unguided baseline the
// mutation-testing smoke compares against.
//
// Exit status: 0 = all seeds/genomes clean, 1 = at least one divergence
// or invariant violation (the offending seed or genome is printed in a
// form that alone reproduces the failure).
#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "audit/differential.h"
#include "bench_common.h"
#include "core/random_scenario.h"
#include "fuzz/corpus.h"
#include "fuzz/minimize.h"
#include "fuzz/mutate.h"
#include "fuzz/runner.h"
#include "sim/parallel.h"
#include "sim/random.h"
#include "snapshot/format.h"

namespace {

struct SeedResult {
  std::uint64_t incremental = 0;
  std::uint64_t scratch = 0;
  std::uint64_t resumed = 0;
  bool failed = false;
  std::string failed_stage;  ///< which of the three runs threw
  std::string error;
};

// Branch mode for --resume-from: load, extend, audit, report.
int resume_from_file(const std::string& path, double resume_for) {
  using namespace pabr;
  std::optional<snapshot::SystemKind> kind;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) {
      std::cerr << "fuzz_driver: cannot open " << path << "\n";
      return 1;
    }
    try {
      kind = snapshot::Reader(is).header().kind;
    } catch (const snapshot::FormatError& e) {
      std::cerr << "fuzz_driver: " << path << ": " << e.what() << "\n";
      return 1;
    }
  }
  std::ifstream is(path, std::ios::binary);
  try {
    std::uint64_t digest = 0;
    double t_end = 0.0;
    if (*kind == snapshot::SystemKind::kHex) {
      const auto sys = core::HexCellularSystem::load(is);
      sys->run_for(resume_for);
      sys->audit_invariants();
      digest = audit::trajectory_digest(*sys);
      t_end = sys->now();
    } else if (*kind == snapshot::SystemKind::kLinear) {
      const auto sys = core::CellularSystem::load(is);
      sys->run_for(resume_for);
      sys->audit_invariants();
      digest = audit::trajectory_digest(*sys);
      t_end = sys->now();
    } else {
      std::cerr << "fuzz_driver: " << path
                << ": sharded snapshots resume via scale_sweep "
                   "--resume-from\n";
      return 1;
    }
    std::printf("resumed %s to t=%.17g, digest %016llx, audits clean\n",
                path.c_str(), t_end,
                static_cast<unsigned long long>(digest));
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fuzz_driver: " << path << ": " << e.what() << "\n";
    return 1;
  }
}

// Shared settings of the genome-based modes (--guided / --inject-bug).
struct GenomeModeOptions {
  std::uint64_t base_seed = 1;
  int audit_every = 8;
  int max_execs = 400;
  int threads = 1;
  bool faults = false;
  bool minimize = false;
  std::string corpus_dir;
  std::string repro_dir;
  pabr::fuzz::BugConfig bug;
};

// Prints the violating genome in full (the .pabrfuzz text alone
// reproduces the failure), optionally minimizes it, and writes the
// reproducer next to the corpus. Always the exit-1 path.
int report_violation(const pabr::fuzz::Genome& genome,
                     const pabr::fuzz::OracleResult& result,
                     const GenomeModeOptions& opt) {
  using namespace pabr;
  std::cout << "VIOLATION [" << result.stage << "] " << result.violation
            << "\n  " << genome.summary() << "\n--- genome ---\n"
            << genome.serialize() << "--------------\n";
  fuzz::Genome repro = genome;
  if (opt.minimize) {
    const std::string stage = result.stage;
    fuzz::MinimizeStats stats;
    repro = fuzz::minimize(
        genome,
        [&](const fuzz::Genome& cand) {
          const fuzz::OracleResult r =
              fuzz::run_oracles(cand, opt.audit_every, opt.bug);
          return !r.ok && r.stage == stage;
        },
        /*max_evals=*/500, &stats);
    const fuzz::OracleResult after =
        fuzz::run_oracles(repro, opt.audit_every, opt.bug);
    std::cout << "minimized in " << stats.evaluations << " evals ("
              << stats.accepted << " reductions): cells="
              << repro.num_cells() << " requests=" << after.requests
              << "\n  " << repro.summary() << "\n--- minimized genome ---\n"
              << repro.serialize() << "------------------------\n";
  }
  const std::string dir =
      !opt.repro_dir.empty() ? opt.repro_dir : opt.corpus_dir;
  if (!dir.empty()) {
    const std::string path = fuzz::save_to_corpus(dir, repro);
    std::cout << "reproducer written to " << path << "\n";
  }
  return 1;
}

// Unguided baseline for the mutation-testing self-check: blind random
// genomes through the same oracle stack, no coverage feedback.
int blind_genome_mode(const GenomeModeOptions& opt) {
  using namespace pabr;
  bench::print_banner("Blind genome fuzzer — " +
                      std::to_string(opt.max_execs) + " random genomes from " +
                      std::to_string(opt.base_seed) +
                      (opt.bug.resumed_off_by_one ? ", planted bug armed" : ""));
  const auto n = static_cast<std::size_t>(opt.max_execs);
  std::vector<fuzz::Genome> genomes;
  genomes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    genomes.push_back(fuzz::random_genome(
        opt.base_seed + static_cast<std::uint64_t>(i), opt.faults));
  }
  const std::vector<fuzz::OracleResult> results =
      sim::parallel_map<fuzz::OracleResult>(opt.threads, n, [&](std::size_t i) {
        return fuzz::run_oracles(genomes[i], opt.audit_every, opt.bug);
      });
  for (std::size_t i = 0; i < n; ++i) {
    if (!results[i].ok) return report_violation(genomes[i], results[i], opt);
  }
  std::cout << opt.max_execs << " execs, 0 violations\n";
  return 0;
}

// The coverage-guided loop. Each round generates a fixed-size candidate
// batch sequentially from the current corpus (one RNG stream), runs the
// batch through the oracle stack via parallel_map, and merges coverage
// in index order — so the corpus evolution, and therefore the whole
// fuzzing trajectory, is identical at any --threads value.
int guided_mode(const GenomeModeOptions& opt) {
  using namespace pabr;
  bench::print_banner(
      "Coverage-guided genome fuzzer — budget " +
      std::to_string(opt.max_execs) + " execs, corpus '" +
      (opt.corpus_dir.empty() ? std::string("<memory>") : opt.corpus_dir) +
      "'" + (opt.bug.resumed_off_by_one ? ", planted bug armed" : ""));

  fuzz::CoverageMap coverage;
  std::vector<fuzz::Genome> corpus = fuzz::load_corpus(opt.corpus_dir);
  const std::size_t replayed = corpus.size();
  // Bootstrap an empty corpus from blind random genomes.
  if (corpus.empty()) {
    const int boot = std::min(8, std::max(1, opt.max_execs));
    for (int i = 0; i < boot; ++i) {
      corpus.push_back(fuzz::random_genome(
          opt.base_seed + static_cast<std::uint64_t>(i), opt.faults));
    }
  }

  int execs = 0;
  // Replay phase: every corpus entry re-runs under all oracles (checked-in
  // reproducers act as regression tests) and seeds the coverage map.
  {
    const std::size_t n = corpus.size();
    const std::vector<fuzz::OracleResult> results =
        sim::parallel_map<fuzz::OracleResult>(
            opt.threads, n, [&](std::size_t i) {
              return fuzz::run_oracles(corpus[i], opt.audit_every, opt.bug);
            });
    for (std::size_t i = 0; i < n; ++i) {
      ++execs;
      if (!results[i].ok) return report_violation(corpus[i], results[i], opt);
      coverage.merge(results[i].signature);
    }
    std::cout << "replayed " << replayed << " corpus entries, bootstrapped "
              << (n - replayed) << ", features=" << coverage.size() << "\n";
  }

  sim::Rng rng(sim::derive_seed(opt.base_seed, "guided-fuzz"));
  constexpr std::size_t kBatch = 16;  // fixed: independent of --threads
  int round = 0;
  while (execs < opt.max_execs) {
    const std::size_t batch = std::min<std::size_t>(
        kBatch, static_cast<std::size_t>(opt.max_execs - execs));
    std::vector<fuzz::Genome> candidates;
    candidates.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      const auto pick = [&]() -> const fuzz::Genome& {
        return corpus[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(corpus.size()) - 1))];
      };
      if (corpus.size() >= 2 && rng.bernoulli(0.35)) {
        candidates.push_back(
            fuzz::mutate(fuzz::crossover(pick(), pick(), rng), rng));
      } else {
        candidates.push_back(fuzz::mutate(pick(), rng));
      }
    }
    const std::vector<fuzz::OracleResult> results =
        sim::parallel_map<fuzz::OracleResult>(
            opt.threads, batch, [&](std::size_t i) {
              return fuzz::run_oracles(candidates[i], opt.audit_every, opt.bug);
            });
    std::size_t kept = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      ++execs;
      if (!results[i].ok) {
        return report_violation(candidates[i], results[i], opt);
      }
      if (coverage.merge(results[i].signature) > 0) {
        corpus.push_back(candidates[i]);
        ++kept;
        if (!opt.corpus_dir.empty()) {
          fuzz::save_to_corpus(opt.corpus_dir, candidates[i]);
        }
      }
    }
    ++round;
    if (round % 8 == 0 || execs >= opt.max_execs) {
      std::cout << "round " << round << ": execs=" << execs
                << " corpus=" << corpus.size()
                << " features=" << coverage.size() << " (+" << kept
                << " kept this round)\n";
    }
  }
  std::cout << execs << " execs, 0 violations, corpus=" << corpus.size()
            << ", features=" << coverage.size() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  int seeds = 100;
  unsigned long long base_seed = 1;
  int audit_every = 8;
  bool faults = false;
  cli::Parser cli("fuzz_driver",
                  "differential scenario fuzzer (incremental vs scratch "
                  "reservation, 1 vs N threads, invariant audits)");
  bench::add_common_flags(cli, opts);
  bench::add_threads_flag(cli, opts);
  cli.add_int("seeds", &seeds, "number of scenarios to fuzz");
  cli.add_uint64("base-seed", &base_seed, "first scenario seed");
  cli.add_int("audit-every", &audit_every,
              "run the invariant sweep every Nth event (0 = end-of-run "
              "checkpoint only; needs a PABR_AUDIT build to matter)");
  cli.add_bool("faults", &faults,
               "draw a random fault schedule per seed (link/station "
               "outages, message loss) — needs a PABR_FAULT build");
  double checkpoint_every = 0.0;
  std::string resume_from;
  double resume_for = 0.0;
  cli.add_double("checkpoint-every", &checkpoint_every,
                 "I10 snapshot cadence in simulated seconds (0 = one "
                 "random seed-derived snapshot point per scenario)");
  cli.add_string("resume-from", &resume_from,
                 "branch mode: load this snapshot file, extend and audit "
                 "it instead of fuzzing");
  cli.add_double("resume-for", &resume_for,
                 "extra simulated seconds to run in --resume-from mode");
  bool guided = false;
  std::string corpus_dir;
  std::string repro_dir;
  int max_execs = 400;
  bool minimize = false;
  bool inject_bug = false;
  cli.add_bool("guided", &guided,
               "coverage-guided genome fuzzing instead of blind seeds");
  cli.add_string("corpus-dir", &corpus_dir,
                 "corpus directory of *.pabrfuzz genomes (replayed first; "
                 "coverage-novel genomes are added)");
  cli.add_string("repro-dir", &repro_dir,
                 "where minimized reproducers are written (default: the "
                 "corpus dir)");
  cli.add_int("max-execs", &max_execs,
              "genome execution budget for --guided / --inject-bug modes");
  cli.add_bool("minimize", &minimize,
               "delta-debug any violating genome down to a 1-minimal "
               "reproducer before writing it out");
  cli.add_bool("inject-bug", &inject_bug,
               "self-check only: arm the planted resumed-digest off-by-one "
               "(with --guided: guided hunt; without: blind genome baseline)");
  if (!cli.parse(argc, argv)) return 1;
  if (!resume_from.empty()) return resume_from_file(resume_from, resume_for);
  if (guided || inject_bug) {
    GenomeModeOptions gopt;
    gopt.base_seed = base_seed;
    gopt.audit_every = audit_every;
    gopt.max_execs = max_execs;
    gopt.threads = opts.threads > 0 ? opts.threads : sim::hardware_threads();
    gopt.faults = faults;
    gopt.minimize = minimize;
    gopt.corpus_dir = corpus_dir;
    gopt.repro_dir = repro_dir;
    gopt.bug.resumed_off_by_one = inject_bug;
    return guided ? guided_mode(gopt) : blind_genome_mode(gopt);
  }
  if (faults && !buildinfo::fault_enabled()) {
    std::cout << "warning: --faults requested but fault-injection hooks were "
                 "compiled out (PABR_FAULT=OFF); schedules are generated but "
                 "inert\n";
  }
  if (opts.full) seeds = std::max(seeds, 500);
  if (opts.threads <= 0) opts.threads = sim::hardware_threads();

  bench::print_banner("Differential scenario fuzzer — " +
                      std::to_string(seeds) + " seeds from " +
                      std::to_string(base_seed) + ", audit every " +
                      std::to_string(audit_every) + " events" +
                      (faults ? ", fault schedules on" : "") +
                      ", I10 snapshot/resume probes on");

  const auto n = static_cast<std::size_t>(seeds);
  const auto run_seed = [&](std::size_t i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const core::ScenarioSpec spec = core::random_scenario(seed, faults);
    // I10 snapshot points: a fixed cadence when requested, otherwise one
    // seed-derived random point — a pure function of (seed, flags), so
    // the sequential and threaded phases probe identical points.
    std::vector<double> fractions;
    if (checkpoint_every > 0.0) {
      for (double t = checkpoint_every; t < spec.duration;
           t += checkpoint_every) {
        fractions.push_back(t / spec.duration);
      }
    } else {
      fractions.push_back(audit::snapshot_fraction_for_seed(seed));
    }
    // One try block per run so a failure names the stage that threw —
    // an audit violation inside the resumed third run used to be
    // indistinguishable from one in the first.
    SeedResult r;
    try {
      r.incremental = audit::run_scenario_digest(spec, true, audit_every);
    } catch (const std::exception& e) {
      r.failed = true;
      r.failed_stage = "incremental";
      r.error = e.what();
      return r;
    }
    try {
      r.scratch = audit::run_scenario_digest(spec, false, audit_every);
    } catch (const std::exception& e) {
      r.failed = true;
      r.failed_stage = "scratch";
      r.error = e.what();
      return r;
    }
    try {
      r.resumed =
          audit::run_scenario_resume_digest(spec, true, audit_every, fractions);
    } catch (const std::exception& e) {
      r.failed = true;
      r.failed_stage = "resumed";
      r.error = e.what();
    }
    return r;
  };

  const auto t0 = std::chrono::steady_clock::now();

  // Phase 1: sequential reference batch.
  const std::vector<SeedResult> sequential =
      sim::parallel_map<SeedResult>(1, n, run_seed);
  // Phase 2: the same batch across the pool — digests must be identical.
  const std::vector<SeedResult> threaded =
      sim::parallel_map<SeedResult>(opts.threads, n, run_seed);

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  int violations = 0;
  csv::Writer csv(opts.csv_path);
  csv.header({"seed", "digest", "status"});
  bench::JsonReport json("fuzz_driver", opts);
  json.columns({"seed", "digest", "status"});
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const core::ScenarioSpec spec = core::random_scenario(seed, faults);
    std::string status = "ok";
    if (sequential[i].failed) {
      status = "audit during " + sequential[i].failed_stage +
               " run: " + sequential[i].error;
    } else if (threaded[i].failed) {
      status = "audit during " + threaded[i].failed_stage +
               " run (threaded): " + threaded[i].error;
    } else if (sequential[i].incremental != sequential[i].scratch) {
      status = "incremental != scratch";
    } else if (sequential[i].resumed != sequential[i].incremental) {
      status = "resumed != uninterrupted (I10)";
    } else if (sequential[i].incremental != threaded[i].incremental ||
               sequential[i].scratch != threaded[i].scratch ||
               sequential[i].resumed != threaded[i].resumed) {
      status = "threads=1 != threads=N";
    }
    if (status != "ok") {
      ++violations;
      std::cout << "FAIL " << spec.summary() << "\n     " << status << '\n';
    }
    const std::string digest =
        sequential[i].failed ? "-"
                             : std::to_string(sequential[i].incremental);
    csv.row({std::to_string(seed), digest, status});
    json.row({std::to_string(seed), digest, status});
  }

  std::cout << seeds << " seeds, " << violations << " violation"
            << (violations == 1 ? "" : "s") << ", " << opts.threads
            << " threads, " << wall << " s\n";
  json.counter("seeds", static_cast<double>(seeds));
  json.counter("violations", static_cast<double>(violations));
  json.counter("wall_seconds", wall);
  json.write();
  return violations == 0 ? 0 : 1;
}
