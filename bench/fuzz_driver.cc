// Differential scenario fuzzer — the hundreds-of-seeds version of
// tests/fuzz_scenario_test.cc.
//
// Each seed expands deterministically into a randomized short simulation
// (core/random_scenario.h) which is run three times: with the
// reservation served incrementally, recomputed from scratch, and
// incrementally again but snapshotted to memory and reloaded mid-run at
// a seed-derived random point (invariant I10, DESIGN.md §13 —
// --checkpoint-every replaces the random point with a fixed cadence of
// chained snapshots). All three trajectory digests must match bitwise.
// The whole batch is then re-run across the thread pool (--threads N)
// and every digest must match the sequential batch byte for byte. Every
// run carries the per-event invariant audit (PABR_AUDIT builds honor
// --audit-every; every build gets the explicit end-of-run sweep).
//
// --resume-from FILE switches to a one-shot branch mode instead: the
// snapshot is loaded (linear or hex, auto-detected), run for
// --resume-for further simulated seconds, swept by audit_invariants()
// and its trajectory digest printed — the command-line way to extend or
// branch a checkpointed run.
//
// Exit status: 0 = all seeds clean, 1 = at least one divergence or
// invariant violation (the offending seeds and scenario summaries are
// printed — the seed alone reproduces the failure).
#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "audit/differential.h"
#include "bench_common.h"
#include "core/random_scenario.h"
#include "sim/parallel.h"
#include "snapshot/format.h"

namespace {

struct SeedResult {
  std::uint64_t incremental = 0;
  std::uint64_t scratch = 0;
  std::uint64_t resumed = 0;
  bool failed = false;
  std::string error;
};

// Branch mode for --resume-from: load, extend, audit, report.
int resume_from_file(const std::string& path, double resume_for) {
  using namespace pabr;
  std::optional<snapshot::SystemKind> kind;
  {
    std::ifstream is(path, std::ios::binary);
    if (!is.good()) {
      std::cerr << "fuzz_driver: cannot open " << path << "\n";
      return 1;
    }
    try {
      kind = snapshot::Reader(is).header().kind;
    } catch (const snapshot::FormatError& e) {
      std::cerr << "fuzz_driver: " << path << ": " << e.what() << "\n";
      return 1;
    }
  }
  std::ifstream is(path, std::ios::binary);
  try {
    std::uint64_t digest = 0;
    double t_end = 0.0;
    if (*kind == snapshot::SystemKind::kHex) {
      const auto sys = core::HexCellularSystem::load(is);
      sys->run_for(resume_for);
      sys->audit_invariants();
      digest = audit::trajectory_digest(*sys);
      t_end = sys->now();
    } else if (*kind == snapshot::SystemKind::kLinear) {
      const auto sys = core::CellularSystem::load(is);
      sys->run_for(resume_for);
      sys->audit_invariants();
      digest = audit::trajectory_digest(*sys);
      t_end = sys->now();
    } else {
      std::cerr << "fuzz_driver: " << path
                << ": sharded snapshots resume via scale_sweep "
                   "--resume-from\n";
      return 1;
    }
    std::printf("resumed %s to t=%.17g, digest %016llx, audits clean\n",
                path.c_str(), t_end,
                static_cast<unsigned long long>(digest));
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fuzz_driver: " << path << ": " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  int seeds = 100;
  unsigned long long base_seed = 1;
  int audit_every = 8;
  bool faults = false;
  cli::Parser cli("fuzz_driver",
                  "differential scenario fuzzer (incremental vs scratch "
                  "reservation, 1 vs N threads, invariant audits)");
  bench::add_common_flags(cli, opts);
  bench::add_threads_flag(cli, opts);
  cli.add_int("seeds", &seeds, "number of scenarios to fuzz");
  cli.add_uint64("base-seed", &base_seed, "first scenario seed");
  cli.add_int("audit-every", &audit_every,
              "run the invariant sweep every Nth event (0 = end-of-run "
              "checkpoint only; needs a PABR_AUDIT build to matter)");
  cli.add_bool("faults", &faults,
               "draw a random fault schedule per seed (link/station "
               "outages, message loss) — needs a PABR_FAULT build");
  double checkpoint_every = 0.0;
  std::string resume_from;
  double resume_for = 0.0;
  cli.add_double("checkpoint-every", &checkpoint_every,
                 "I10 snapshot cadence in simulated seconds (0 = one "
                 "random seed-derived snapshot point per scenario)");
  cli.add_string("resume-from", &resume_from,
                 "branch mode: load this snapshot file, extend and audit "
                 "it instead of fuzzing");
  cli.add_double("resume-for", &resume_for,
                 "extra simulated seconds to run in --resume-from mode");
  if (!cli.parse(argc, argv)) return 1;
  if (!resume_from.empty()) return resume_from_file(resume_from, resume_for);
  if (faults && !buildinfo::fault_enabled()) {
    std::cout << "warning: --faults requested but fault-injection hooks were "
                 "compiled out (PABR_FAULT=OFF); schedules are generated but "
                 "inert\n";
  }
  if (opts.full) seeds = std::max(seeds, 500);
  if (opts.threads <= 0) opts.threads = sim::hardware_threads();

  bench::print_banner("Differential scenario fuzzer — " +
                      std::to_string(seeds) + " seeds from " +
                      std::to_string(base_seed) + ", audit every " +
                      std::to_string(audit_every) + " events" +
                      (faults ? ", fault schedules on" : "") +
                      ", I10 snapshot/resume probes on");

  const auto n = static_cast<std::size_t>(seeds);
  const auto run_seed = [&](std::size_t i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const core::ScenarioSpec spec = core::random_scenario(seed, faults);
    // I10 snapshot points: a fixed cadence when requested, otherwise one
    // seed-derived random point — a pure function of (seed, flags), so
    // the sequential and threaded phases probe identical points.
    std::vector<double> fractions;
    if (checkpoint_every > 0.0) {
      for (double t = checkpoint_every; t < spec.duration;
           t += checkpoint_every) {
        fractions.push_back(t / spec.duration);
      }
    } else {
      fractions.push_back(audit::snapshot_fraction_for_seed(seed));
    }
    SeedResult r;
    try {
      r.incremental = audit::run_scenario_digest(spec, true, audit_every);
      r.scratch = audit::run_scenario_digest(spec, false, audit_every);
      r.resumed =
          audit::run_scenario_resume_digest(spec, true, audit_every, fractions);
    } catch (const std::exception& e) {
      r.failed = true;
      r.error = e.what();
    }
    return r;
  };

  const auto t0 = std::chrono::steady_clock::now();

  // Phase 1: sequential reference batch.
  const std::vector<SeedResult> sequential =
      sim::parallel_map<SeedResult>(1, n, run_seed);
  // Phase 2: the same batch across the pool — digests must be identical.
  const std::vector<SeedResult> threaded =
      sim::parallel_map<SeedResult>(opts.threads, n, run_seed);

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  int violations = 0;
  csv::Writer csv(opts.csv_path);
  csv.header({"seed", "digest", "status"});
  bench::JsonReport json("fuzz_driver", opts);
  json.columns({"seed", "digest", "status"});
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const core::ScenarioSpec spec = core::random_scenario(seed, faults);
    std::string status = "ok";
    if (sequential[i].failed) {
      status = "audit: " + sequential[i].error;
    } else if (threaded[i].failed) {
      status = "audit (threaded): " + threaded[i].error;
    } else if (sequential[i].incremental != sequential[i].scratch) {
      status = "incremental != scratch";
    } else if (sequential[i].resumed != sequential[i].incremental) {
      status = "resumed != uninterrupted (I10)";
    } else if (sequential[i].incremental != threaded[i].incremental ||
               sequential[i].scratch != threaded[i].scratch ||
               sequential[i].resumed != threaded[i].resumed) {
      status = "threads=1 != threads=N";
    }
    if (status != "ok") {
      ++violations;
      std::cout << "FAIL " << spec.summary() << "\n     " << status << '\n';
    }
    const std::string digest =
        sequential[i].failed ? "-"
                             : std::to_string(sequential[i].incremental);
    csv.row({std::to_string(seed), digest, status});
    json.row({std::to_string(seed), digest, status});
  }

  std::cout << seeds << " seeds, " << violations << " violation"
            << (violations == 1 ? "" : "s") << ", " << opts.threads
            << " threads, " << wall << " s\n";
  json.counter("seeds", static_cast<double>(seeds));
  json.counter("violations", static_cast<double>(violations));
  json.counter("wall_seconds", wall);
  json.write();
  return violations == 0 ? 0 : 1;
}
