// Metamorphic-equivalence driver (DESIGN.md §14) — the hundreds-of-seeds
// version of tests/metamorphic_equivalence_test.cc.
//
// Each seed expands deterministically into a scripted scenario
// (audit/metamorphic/scripted.h): explicit arrival list, dyadic times/
// positions/speeds, optional scripted outage windows. The scenario is
// run once as the base reference, then once per catalogue transform
// (M1 ring rotation, M2 direction mirroring, M3 time-origin shift, M4
// bandwidth-unit rescaling, M5 id relabelling, plus the M1 x M2
// composition). Each transformed observation is mapped back into the
// base frame with the transform's exact inverse mapping and compared
// field by field — bitwise except for the sums the transform provably
// reassociates, which get a 1e-12 relative bound (observation.h).
//
// The whole batch then re-runs across the thread pool (--threads N) and
// every digest and verdict must match the sequential batch exactly.
//
// Exit status: 0 = all seeds clean, 1 = at least one divergence (the
// seed, transform name and first mismatching field are printed — the
// seed alone reproduces the failure).
#include <chrono>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "audit/metamorphic/observation.h"
#include "audit/metamorphic/scripted.h"
#include "audit/metamorphic/transforms.h"
#include "bench_common.h"
#include "sim/parallel.h"

namespace {

struct TransformOutcome {
  std::string name;
  std::uint64_t mapped_digest = 0;
  bool ok = false;
  std::string mismatch;
};

struct SeedResult {
  std::uint64_t base_digest = 0;
  std::vector<TransformOutcome> transforms;
  bool failed = false;
  std::string error;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pabr;
  namespace meta = pabr::audit::metamorphic;

  bench::CommonOptions opts;
  int seeds = 40;
  unsigned long long base_seed = 1;
  bool faults = false;
  cli::Parser cli("metamorphic_driver",
                  "metamorphic-equivalence harness (scenario transforms "
                  "M1-M5 with exact observation mappings)");
  bench::add_common_flags(cli, opts);
  bench::add_threads_flag(cli, opts);
  cli.add_int("seeds", &seeds, "number of scripted scenarios to check");
  cli.add_uint64("base-seed", &base_seed, "first scenario seed");
  cli.add_bool("faults", &faults,
               "add scripted outage windows per seed — needs a PABR_FAULT "
               "build to matter");
  if (!cli.parse(argc, argv)) return 1;
  if (faults && !buildinfo::fault_enabled()) {
    std::cout << "warning: --faults requested but fault-injection hooks "
                 "were compiled out (PABR_FAULT=OFF); outage windows are "
                 "generated but inert\n";
  }
  if (opts.full) seeds = std::max(seeds, 120);
  if (opts.threads <= 0) opts.threads = sim::hardware_threads();

  bench::print_banner("Metamorphic-equivalence harness — " +
                      std::to_string(seeds) + " seeds from " +
                      std::to_string(base_seed) +
                      (faults ? ", scripted outages on" : ""));

  const auto n = static_cast<std::size_t>(seeds);
  const auto run_seed = [&](std::size_t i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    SeedResult r;
    try {
      const meta::ScriptedScenario scenario =
          meta::random_scripted_scenario(seed, faults);
      const meta::Observation base = meta::run_scripted(scenario);
      r.base_digest = meta::digest(base);
      for (const meta::Transform& t : meta::catalogue(scenario, seed)) {
        TransformOutcome out;
        out.name = t.name;
        const meta::Observation mapped =
            t.unmap(meta::run_scripted(t.apply(scenario)));
        out.mapped_digest = meta::digest(mapped);
        const auto diff = meta::compare(base, mapped, t.tolerance);
        out.ok = !diff.has_value();
        if (diff.has_value()) out.mismatch = *diff;
        r.transforms.push_back(std::move(out));
      }
    } catch (const std::exception& e) {
      r.failed = true;
      r.error = e.what();
    }
    return r;
  };

  const auto t0 = std::chrono::steady_clock::now();

  // Phase 1: sequential reference batch.
  const std::vector<SeedResult> sequential =
      sim::parallel_map<SeedResult>(1, n, run_seed);
  // Phase 2: the same batch across the pool — results must be identical.
  const std::vector<SeedResult> threaded =
      sim::parallel_map<SeedResult>(opts.threads, n, run_seed);

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  int violations = 0;
  int threaded_mismatches = 0;
  std::uint64_t transforms_checked = 0;
  csv::Writer csv(opts.csv_path);
  csv.header({"seed", "transform", "base_digest", "mapped_digest",
              "status"});
  bench::JsonReport json("metamorphic_driver", opts);
  json.columns({"seed", "transform", "base_digest", "mapped_digest",
                "status"});
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    const SeedResult& seq = sequential[i];
    const SeedResult& thr = threaded[i];
    if (seq.failed || thr.failed) {
      ++violations;
      const meta::ScriptedScenario scenario =
          meta::random_scripted_scenario(seed, faults);
      std::cout << "FAIL " << scenario.summary() << "\n     "
                << (seq.failed ? seq.error : thr.error + " (threaded)")
                << '\n';
      csv.row({std::to_string(seed), "-", "-", "-", "error"});
      json.row({std::to_string(seed), "-", "-", "-", "error"});
      continue;
    }
    const bool phases_agree =
        seq.base_digest == thr.base_digest &&
        seq.transforms.size() == thr.transforms.size();
    for (std::size_t t = 0; t < seq.transforms.size(); ++t) {
      const TransformOutcome& out = seq.transforms[t];
      ++transforms_checked;
      std::string status = "ok";
      if (!out.ok) {
        status = out.mismatch;
      } else if (phases_agree &&
                 (out.mapped_digest != thr.transforms[t].mapped_digest ||
                  out.ok != thr.transforms[t].ok)) {
        status = "threads=1 != threads=N";
        ++threaded_mismatches;
      }
      if (status != "ok") {
        ++violations;
        const meta::ScriptedScenario scenario =
            meta::random_scripted_scenario(seed, faults);
        std::cout << "FAIL " << scenario.summary() << "\n     " << out.name
                  << ": " << status << '\n';
      }
      csv.row({std::to_string(seed), out.name,
               std::to_string(seq.base_digest),
               std::to_string(out.mapped_digest), status});
      json.row({std::to_string(seed), out.name,
                std::to_string(seq.base_digest),
                std::to_string(out.mapped_digest), status});
    }
    if (!phases_agree) {
      ++violations;
      ++threaded_mismatches;
      std::cout << "FAIL seed=" << seed
                << " sequential/threaded phases disagree on the base "
                   "digest\n";
    }
  }

  std::cout << seeds << " seeds, " << transforms_checked << " transform "
            << "checks, " << violations << " violation"
            << (violations == 1 ? "" : "s") << ", " << opts.threads
            << " threads, " << wall << " s\n";
  json.counter("seeds", static_cast<double>(seeds));
  json.counter("transforms_checked",
               static_cast<double>(transforms_checked));
  json.counter("violations", static_cast<double>(violations));
  json.counter("threaded_mismatches",
               static_cast<double>(threaded_mismatches));
  json.counter("wall_seconds", wall);
  json.write();
  return violations == 0 ? 0 : 1;
}
