// Micro-benchmark of the admission hot path: how many nanoseconds one
// AC1/AC2/AC3 admission test costs with the incremental reservation
// engine (reservation/engine.h) vs the from-scratch rescan, on the
// stationary L = 300 high-mobility scenario (the paper's worst case:
// every cell is crowded, so Eq. 6 sums hundreds of terms).
//
// Both modes run the SAME simulation trajectory — the engine is bitwise
// exact, so admissions decide identically — and the bench cross-checks
// recompute_reservation against scratch_reservation on every cell after
// each measured round (max |diff| is printed and must be 0).
#include <chrono>
#include <cmath>

#include "bench_common.h"
#include "traffic/connection.h"

namespace {

struct ModeResult {
  double ns_per_admission = 0.0;
  std::uint64_t admissions = 0;
  std::uint64_t br_calculations = 0;
  double max_abs_diff = 0.0;
  pabr::telemetry::MetricsSnapshot telemetry;
  std::vector<pabr::telemetry::TraceRecord> trace;
  std::uint64_t trace_rotated_out = 0;
};

ModeResult run_mode(pabr::admission::PolicyKind kind, bool incremental,
                    double load, const pabr::bench::CommonOptions& opts) {
  using namespace pabr;
  const bool full = opts.full;
  core::StationaryParams p;
  p.offered_load = load;
  p.voice_ratio = 1.0;
  p.mobility = core::Mobility::kHigh;
  p.policy = kind;
  p.seed = opts.seed;
  core::SystemConfig cfg = core::stationary_config(p);
  cfg.incremental_reservation = incremental;
  cfg.telemetry = opts.telemetry_config();

  core::CellularSystem sys(cfg);
  sys.run_for(full ? 2000.0 : 800.0);

  const auto probe_policy = admission::make_policy(kind, cfg.static_g);
  const int rounds = full ? 50 : 20;
  const int reps = 10;

  ModeResult out;
  std::chrono::steady_clock::duration busy{0};
  for (int round = 0; round < rounds; ++round) {
    // Let the simulation mutate state (hand-offs, arrivals, departures)
    // between measured bursts so the engine's caches face real churn.
    sys.run_for(5.0);
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < reps; ++rep) {
      for (geom::CellId c = 0; c < cfg.num_cells; ++c) {
        probe_policy->admit(sys, c, traffic::kVoiceBandwidth);
        ++out.admissions;
      }
    }
    busy += std::chrono::steady_clock::now() - t0;
    for (geom::CellId c = 0; c < cfg.num_cells; ++c) {
      const double fast = sys.recompute_reservation(c);
      const double reference = sys.scratch_reservation(c);
      out.max_abs_diff =
          std::max(out.max_abs_diff, std::abs(fast - reference));
    }
  }
  out.ns_per_admission =
      std::chrono::duration<double, std::nano>(busy).count() /
      static_cast<double>(out.admissions);
  out.br_calculations = sys.system_status().br_calculations;
  if (sys.telemetry().enabled()) {
    out.telemetry = sys.telemetry_snapshot();
    out.trace_rotated_out = sys.telemetry().buffer().rotated_out();
    out.trace = sys.telemetry().drain_trace();
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  double load = 300.0;
  cli::Parser cli("micro_admission",
                  "ns per admission test: incremental engine vs scratch "
                  "rescan");
  bench::add_common_flags(cli, opts);
  bench::add_telemetry_flags(cli, opts);
  cli.add_double("load", &load, "offered load per cell");
  if (!cli.parse(argc, argv)) return 1;
  bench::warn_if_telemetry_unavailable(opts);

  bench::print_banner("Micro — admission cost, incremental vs scratch "
                      "(L = " + core::TablePrinter::fixed(load, 0) +
                      ", R_vo = 1.0, high mobility)");
  csv::Writer csv(opts.csv_path);
  csv.header({"policy", "incremental_ns", "scratch_ns", "speedup",
              "max_abs_diff"});
  bench::JsonReport json("micro_admission", opts);
  json.columns({"policy", "incremental_ns", "scratch_ns", "speedup",
                "max_abs_diff"});

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t br_calculations = 0;
  std::vector<telemetry::MetricsSnapshot> snapshots;
  std::vector<std::vector<telemetry::TraceRecord>> trace_streams;
  std::uint64_t trace_rotated = 0;

  core::TablePrinter table(
      {"policy", "incr ns/adm", "scratch ns/adm", "speedup", "max|diff|"},
      {7, 12, 15, 8, 10});
  table.print_header();
  for (const auto kind :
       {admission::PolicyKind::kAc1, admission::PolicyKind::kAc2,
        admission::PolicyKind::kAc3}) {
    ModeResult fast = run_mode(kind, true, load, opts);
    ModeResult slow = run_mode(kind, false, load, opts);
    const double speedup = fast.ns_per_admission > 0.0
                               ? slow.ns_per_admission / fast.ns_per_admission
                               : 0.0;
    const double diff = std::max(fast.max_abs_diff, slow.max_abs_diff);
    br_calculations += fast.br_calculations + slow.br_calculations;
    if (opts.telemetry_requested()) {
      snapshots.push_back(std::move(fast.telemetry));
      snapshots.push_back(std::move(slow.telemetry));
      trace_streams.push_back(std::move(fast.trace));
      trace_streams.push_back(std::move(slow.trace));
      trace_rotated += fast.trace_rotated_out + slow.trace_rotated_out;
    }
    table.print_row({admission::policy_kind_name(kind),
                     core::TablePrinter::fixed(fast.ns_per_admission, 1),
                     core::TablePrinter::fixed(slow.ns_per_admission, 1),
                     core::TablePrinter::fixed(speedup, 2) + "x",
                     core::TablePrinter::prob(diff)});
    csv.row_values(admission::policy_kind_name(kind), fast.ns_per_admission,
                   slow.ns_per_admission, speedup, diff);
    json.row({admission::policy_kind_name(kind),
              csv::Writer::format(fast.ns_per_admission),
              csv::Writer::format(slow.ns_per_admission),
              csv::Writer::format(speedup), csv::Writer::format(diff)});
  }
  table.print_rule();

  json.counter("wall_seconds",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count());
  json.counter("br_calculations", static_cast<double>(br_calculations));
  if (!snapshots.empty()) {
    json.metrics(telemetry::merge_snapshots(snapshots));
  }
  json.write();
  bench::write_bench_trace("micro_admission", opts, trace_streams,
                           trace_rotated);

  std::cout << "\nReading: between admissions only a handful of connections "
               "change state, so\nthe engine reuses almost every cached "
               "term; AC2 — which recomputes B_r in\nthe cell AND all its "
               "neighbours per admission — gains the most. max|diff|\nmust "
               "be 0: the fast path is bitwise-identical, not approximate.\n";
  return 0;
}
