// Micro-benchmark of the estimator hot paths behind every B_r term:
// quadruplet ingestion (record), warm-snapshot probability lookups and
// probes, snapshot rebuilds (the arena-backed build_snapshot), the
// finite-T_int select path (periodic windows, priority rule), and the
// footprint export. Partner bench to micro_admission: where that one
// times whole admission tests, this one times the estimator primitives
// they decompose into, so the CI bench gate (scripts/bench_compare.py
// against BENCH_micro_estimator.json) can pin down WHICH layer regressed.
//
// The workload is seed-fixed and iteration counts are constant, so two
// runs execute identical operation sequences — only the ns/op varies.
#include <chrono>
#include <functional>

#include "bench_common.h"
#include "hoef/estimator.h"
#include "sim/random.h"

namespace {

using namespace pabr;

constexpr geom::CellId kSelf = 0;
constexpr geom::CellId kPrevs[] = {0, 1, 2};
constexpr geom::CellId kNexts[] = {1, 2};

hoef::HandoffEstimator seeded_estimator(int events, sim::Duration t_int,
                                        unsigned long long seed) {
  hoef::EstimatorConfig cfg;
  cfg.t_int = t_int;
  hoef::HandoffEstimator e(kSelf, cfg);
  sim::Rng rng(seed);
  sim::Time t = 0.0;
  for (int i = 0; i < events; ++i) {
    t += 0.5;
    e.record({t, kPrevs[rng.uniform_int(0, 2)], kNexts[rng.uniform_int(0, 1)],
              rng.uniform(1.0, 120.0)});
  }
  return e;
}

struct PathResult {
  double ns_per_op = 0.0;
  std::uint64_t ops = 0;
};

/// Times `op` over `ops` iterations (already warmed by the caller).
PathResult timed(std::uint64_t ops, const std::function<void()>& op) {
  PathResult r;
  r.ops = ops;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < ops; ++i) op();
  const auto busy = std::chrono::steady_clock::now() - t0;
  r.ns_per_op = std::chrono::duration<double, std::nano>(busy).count() /
                static_cast<double>(ops);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  int events = 600;  // ~100 per (prev, next) pair: N_quad-full rings
  cli::Parser cli("micro_estimator",
                  "ns per estimator hot-path operation: record, probe, "
                  "snapshot rebuild, select, footprint");
  bench::add_common_flags(cli, opts);
  cli.add_int("events", &events, "quadruplets pre-recorded per estimator");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Micro — estimator hot paths (record / probe / "
                      "snapshot / select / footprint)");
  const std::uint64_t warm_ops = opts.full ? 2000000 : 400000;
  const std::uint64_t build_ops = opts.full ? 50000 : 10000;

  csv::Writer csv(opts.csv_path);
  csv.header({"path", "ns_per_op", "ops"});
  bench::JsonReport json("micro_estimator", opts);
  json.columns({"path", "ns_per_op", "ops"});
  core::TablePrinter table({"path", "ns/op", "ops"}, {24, 10, 9});
  table.print_header();

  const auto t0_wall = std::chrono::steady_clock::now();
  std::vector<std::pair<std::string, PathResult>> rows;

  {  // Quadruplet ingestion into N_quad-capped rings.
    auto e = seeded_estimator(events, sim::kInfiniteDuration, opts.seed);
    sim::Time t = 1e6;
    rows.emplace_back("record", timed(warm_ops, [&] {
      t += 0.5;
      e.record({t, 1, 2, 30.0});
    }));
  }
  {  // Warm-snapshot Eq. (4) lookup (two prefix-sum binary searches).
    auto e = seeded_estimator(events, sim::kInfiniteDuration, opts.seed);
    double ext = 0.0;
    double sink = 0.0;
    rows.emplace_back("probability_warm", timed(warm_ops, [&] {
      ext = ext > 100.0 ? 0.0 : ext + 0.37;
      sink += e.handoff_probability(1e6, 1, 2, ext, 30.0);
    }));
    if (sink < 0.0) std::cout << sink;  // defeat dead-code elimination
  }
  {  // Probe: the lookup plus its validity horizon (engine cache feed).
    auto e = seeded_estimator(events, sim::kInfiniteDuration, opts.seed);
    double ext = 0.0;
    double sink = 0.0;
    rows.emplace_back("probe_warm", timed(warm_ops, [&] {
      ext = ext > 100.0 ? 0.0 : ext + 0.37;
      sink += e.handoff_probability_probe(1e6, 1, 2, ext, 30.0).probability;
    }));
    if (sink < 0.0) std::cout << sink;
  }
  {  // Record + lookup: every iteration invalidates and rebuilds the
     // prev's snapshot (arena reset + select + sort + prefix sums).
    auto e = seeded_estimator(events, sim::kInfiniteDuration, opts.seed);
    sim::Time t = 1e6;
    double sink = 0.0;
    rows.emplace_back("snapshot_rebuild", timed(build_ops, [&] {
      t += 0.5;
      e.record({t, 1, 2, 30.0});
      sink += e.handoff_probability(t, 1, 2, 10.0, 30.0);
    }));
    if (sink < 0.0) std::cout << sink;
  }
  {  // Finite T_int with zero tolerance: every query at a new t0 reruns
     // the periodic-window select (claimed-range walk + priority rule).
    hoef::EstimatorConfig cfg;
    cfg.t_int = 2.0 * sim::kHour;
    cfg.snapshot_tolerance = 0.0;
    hoef::HandoffEstimator e(kSelf, cfg);
    sim::Rng rng(opts.seed);
    sim::Time t = 0.0;
    for (int i = 0; i < events; ++i) {
      t += 30.0;
      e.record({t, kPrevs[rng.uniform_int(0, 2)],
                kNexts[rng.uniform_int(0, 1)], rng.uniform(1.0, 120.0)});
    }
    sim::Time q = t;
    double sink = 0.0;
    rows.emplace_back("select_finite_tint", timed(build_ops, [&] {
      q += 0.25;
      sink += e.handoff_probability(q, 1, 2, 10.0, 30.0);
    }));
    if (sink < 0.0) std::cout << sink;
  }
  {  // Footprint export (paper Fig. 4) off a warm snapshot.
    auto e = seeded_estimator(events, sim::kInfiniteDuration, opts.seed);
    std::size_t sink = 0;
    rows.emplace_back("footprint_warm", timed(build_ops, [&] {
      sink += e.footprint(1e6, 1).size();
    }));
    if (sink == 0) std::cout << "";
  }

  for (const auto& [path, r] : rows) {
    table.print_row({path, core::TablePrinter::fixed(r.ns_per_op, 1),
                     std::to_string(r.ops)});
    csv.row_values(path, r.ns_per_op, static_cast<double>(r.ops));
    json.row({path, csv::Writer::format(r.ns_per_op),
              std::to_string(r.ops)});
  }
  table.print_rule();

  json.counter("wall_seconds",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0_wall)
                   .count());
  json.write();

  std::cout << "\nReading: probability/probe run on warm snapshots (pure "
               "binary searches over\nflat prefix-sum arrays); "
               "snapshot_rebuild and select_finite_tint pay the\n"
               "arena-backed rebuild, which is the cost every estimator "
               "state change imposes\non the next B_r recomputation.\n";
  return 0;
}
