// Microbenchmarks (google-benchmark) of the algorithmic primitives: the
// cost that each B_r calculation, quadruplet insertion and controller
// update adds to a base station. These are not paper figures; they back
// DESIGN.md's claim that the scheme is "not complex" (paper §7) with
// concrete per-operation costs.
// The flat_map/ring/arena sections race the hot-path containers of
// DESIGN.md §11 head-to-head against the std containers they replaced;
// `--json PATH` is translated to google-benchmark's
// --benchmark_out=PATH --benchmark_out_format=json for parity with the
// other benches' machine-readable reports.
#include <benchmark/benchmark.h>

#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/system.h"
#include "hoef/estimator.h"
#include "reservation/test_window.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "util/arena.h"
#include "util/flat_map.h"
#include "util/ring.h"

namespace {

using namespace pabr;

hoef::HandoffEstimator seeded_estimator(int events) {
  hoef::EstimatorConfig cfg;
  cfg.t_int = sim::kInfiniteDuration;
  hoef::HandoffEstimator e(0, cfg);
  sim::Rng rng(7);
  sim::Time t = 0.0;
  const geom::CellId prevs[] = {0, 1, 2};
  const geom::CellId nexts[] = {1, 2};
  for (int i = 0; i < events; ++i) {
    t += 0.5;
    e.record({t, prevs[rng.uniform_int(0, 2)], nexts[rng.uniform_int(0, 1)],
              rng.uniform(1.0, 120.0)});
  }
  return e;
}

void BM_HoefRecord(benchmark::State& state) {
  hoef::EstimatorConfig cfg;
  cfg.t_int = sim::kInfiniteDuration;
  hoef::HandoffEstimator e(0, cfg);
  sim::Time t = 0.0;
  for (auto _ : state) {
    t += 0.5;
    e.record({t, 1, 2, 30.0});
  }
}
BENCHMARK(BM_HoefRecord);

void BM_HoefProbabilityWarmSnapshot(benchmark::State& state) {
  auto e = seeded_estimator(static_cast<int>(state.range(0)));
  const sim::Time t0 = 1e6;
  double ext = 0.0;
  for (auto _ : state) {
    ext = ext > 100.0 ? 0.0 : ext + 0.37;
    benchmark::DoNotOptimize(e.handoff_probability(t0, 1, 2, ext, 30.0));
  }
}
BENCHMARK(BM_HoefProbabilityWarmSnapshot)->Arg(100)->Arg(1000);

void BM_HoefSnapshotRebuild(benchmark::State& state) {
  auto e = seeded_estimator(static_cast<int>(state.range(0)));
  sim::Time t = 1e6;
  for (auto _ : state) {
    // Each record invalidates the snapshot; the probability rebuilds it.
    t += 0.5;
    e.record({t, 1, 2, 30.0});
    benchmark::DoNotOptimize(e.handoff_probability(t, 1, 2, 10.0, 30.0));
  }
}
BENCHMARK(BM_HoefSnapshotRebuild)->Arg(100)->Arg(1000);

void BM_TestWindowUpdate(benchmark::State& state) {
  reservation::TestWindowController c({});
  int i = 0;
  for (auto _ : state) {
    c.on_handoff((++i % 97) == 0, 120.0);
  }
  benchmark::DoNotOptimize(c.t_est());
}
BENCHMARK(BM_TestWindowUpdate);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Time t = 0.0;
  sim::Rng rng(3);
  // Keep a steady backlog of range(0) pending events.
  for (int i = 0; i < state.range(0); ++i) {
    q.schedule(t + rng.uniform(0.0, 100.0), [] {});
  }
  for (auto _ : state) {
    t += 0.01;
    q.schedule(t + rng.uniform(0.0, 100.0), [] {});
    q.pop();
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_ReservationRecompute(benchmark::State& state) {
  // A loaded live system: measure one full B_r computation (Eqs. 4-6)
  // over the real neighbour occupancy.
  core::StationaryParams p;
  p.offered_load = static_cast<double>(state.range(0));
  p.policy = admission::PolicyKind::kAc3;
  core::CellularSystem sys(core::stationary_config(p));
  sys.run_for(500.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.recompute_reservation(4));
  }
}
BENCHMARK(BM_ReservationRecompute)->Arg(100)->Arg(300);

// --- Hot-path containers vs the std structures they replaced ---------
//
// Workloads mirror the estimator/engine access patterns: a handful of
// keys probed constantly (flat_map vs std::map), FIFO event histories
// pushed/evicted and binary-searched (ring vs std::deque), and
// per-rebuild array churn (arena reuse vs fresh vectors).

void BM_FlatMapFind(benchmark::State& state) {
  util::FlatMap<geom::CellId, int> m;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) m.find_or_insert(i * 3) = i;
  geom::CellId probe = 0;
  for (auto _ : state) {
    probe = (probe + 7) % (n * 3);
    benchmark::DoNotOptimize(m.find(probe));
  }
}
BENCHMARK(BM_FlatMapFind)->Arg(4)->Arg(16);

void BM_StdMapFind(benchmark::State& state) {
  std::map<geom::CellId, int> m;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) m[i * 3] = i;
  geom::CellId probe = 0;
  for (auto _ : state) {
    probe = (probe + 7) % (n * 3);
    benchmark::DoNotOptimize(m.find(probe));
  }
}
BENCHMARK(BM_StdMapFind)->Arg(4)->Arg(16);

void BM_RingPushEvict(benchmark::State& state) {
  util::Ring<hoef::Quadruplet> ring;
  ring.reserve(101);
  sim::Time t = 0.0;
  for (auto _ : state) {
    t += 0.5;
    ring.push_back({t, 1, 2, 30.0});
    while (ring.size() > 100) ring.pop_front();
  }
  benchmark::DoNotOptimize(ring.size());
}
BENCHMARK(BM_RingPushEvict);

void BM_DequePushEvict(benchmark::State& state) {
  std::deque<hoef::Quadruplet> dq;
  sim::Time t = 0.0;
  for (auto _ : state) {
    t += 0.5;
    dq.push_back({t, 1, 2, 30.0});
    while (dq.size() > 100) dq.pop_front();
  }
  benchmark::DoNotOptimize(dq.size());
}
BENCHMARK(BM_DequePushEvict);

void BM_RingLowerBound(benchmark::State& state) {
  util::Ring<hoef::Quadruplet> ring;
  for (int i = 0; i < 100; ++i) {
    ring.push_back({static_cast<double>(i), 1, 2, 30.0});
  }
  double probe = 0.0;
  for (auto _ : state) {
    probe = probe > 99.0 ? 0.0 : probe + 1.7;
    benchmark::DoNotOptimize(std::lower_bound(
        ring.begin(), ring.end(), probe,
        [](const hoef::Quadruplet& q, double v) { return q.event_time < v; }));
  }
}
BENCHMARK(BM_RingLowerBound);

void BM_DequeLowerBound(benchmark::State& state) {
  std::deque<hoef::Quadruplet> dq;
  for (int i = 0; i < 100; ++i) {
    dq.push_back({static_cast<double>(i), 1, 2, 30.0});
  }
  double probe = 0.0;
  for (auto _ : state) {
    probe = probe > 99.0 ? 0.0 : probe + 1.7;
    benchmark::DoNotOptimize(std::lower_bound(
        dq.begin(), dq.end(), probe,
        [](const hoef::Quadruplet& q, double v) { return q.event_time < v; }));
  }
}
BENCHMARK(BM_DequeLowerBound);

void BM_ArenaSnapshotRefill(benchmark::State& state) {
  // A snapshot rebuild's storage pattern: 3 runs of range(0) doubles each
  // refilled per iteration. The arena resets and reuses its capacity.
  util::Arena<double> arena;
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    arena.reset();
    for (int run = 0; run < 3; ++run) {
      const auto mark = arena.mark();
      for (int i = 0; i < n; ++i) arena.push_back(static_cast<double>(i));
      benchmark::DoNotOptimize(arena.span_from(mark));
    }
  }
}
BENCHMARK(BM_ArenaSnapshotRefill)->Arg(100);

void BM_FreshVectorSnapshotRefill(benchmark::State& state) {
  // What the pre-§11 snapshot did: allocate fresh vectors per rebuild.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::vector<std::vector<double>> runs;
    for (int run = 0; run < 3; ++run) {
      std::vector<double> v;
      v.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) v.push_back(static_cast<double>(i));
      runs.push_back(std::move(v));
    }
    benchmark::DoNotOptimize(runs.size());
  }
}
BENCHMARK(BM_FreshVectorSnapshotRefill)->Arg(100);

void BM_FullSimulationSecond(benchmark::State& state) {
  // Wall cost of one simulated second of the paper's stationary scenario.
  core::StationaryParams p;
  p.offered_load = static_cast<double>(state.range(0));
  p.policy = admission::PolicyKind::kAc3;
  core::CellularSystem sys(core::stationary_config(p));
  sys.run_for(200.0);  // warm the system
  for (auto _ : state) {
    sys.run_for(1.0);
  }
}
BENCHMARK(BM_FullSimulationSecond)->Arg(100)->Arg(300);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): rewrites `--json PATH` (the
// repo-wide report flag) into google-benchmark's native JSON output
// arguments before initialization.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> rewritten;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    std::string path;
    if (a == "--json" && i + 1 < args.size()) {
      path = args[++i];
    } else if (a.rfind("--json=", 0) == 0) {
      path = a.substr(std::strlen("--json="));
    } else {
      rewritten.push_back(a);
      continue;
    }
    rewritten.push_back("--benchmark_out=" + path);
    rewritten.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> cargs;
  cargs.reserve(rewritten.size());
  for (std::string& s : rewritten) cargs.push_back(s.data());
  int cargc = static_cast<int>(cargs.size());
  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
