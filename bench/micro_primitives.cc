// Microbenchmarks (google-benchmark) of the algorithmic primitives: the
// cost that each B_r calculation, quadruplet insertion and controller
// update adds to a base station. These are not paper figures; they back
// DESIGN.md's claim that the scheme is "not complex" (paper §7) with
// concrete per-operation costs.
#include <benchmark/benchmark.h>

#include "core/scenario.h"
#include "core/system.h"
#include "hoef/estimator.h"
#include "reservation/test_window.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace {

using namespace pabr;

hoef::HandoffEstimator seeded_estimator(int events) {
  hoef::EstimatorConfig cfg;
  cfg.t_int = sim::kInfiniteDuration;
  hoef::HandoffEstimator e(0, cfg);
  sim::Rng rng(7);
  sim::Time t = 0.0;
  const geom::CellId prevs[] = {0, 1, 2};
  const geom::CellId nexts[] = {1, 2};
  for (int i = 0; i < events; ++i) {
    t += 0.5;
    e.record({t, prevs[rng.uniform_int(0, 2)], nexts[rng.uniform_int(0, 1)],
              rng.uniform(1.0, 120.0)});
  }
  return e;
}

void BM_HoefRecord(benchmark::State& state) {
  hoef::EstimatorConfig cfg;
  cfg.t_int = sim::kInfiniteDuration;
  hoef::HandoffEstimator e(0, cfg);
  sim::Time t = 0.0;
  for (auto _ : state) {
    t += 0.5;
    e.record({t, 1, 2, 30.0});
  }
}
BENCHMARK(BM_HoefRecord);

void BM_HoefProbabilityWarmSnapshot(benchmark::State& state) {
  auto e = seeded_estimator(static_cast<int>(state.range(0)));
  const sim::Time t0 = 1e6;
  double ext = 0.0;
  for (auto _ : state) {
    ext = ext > 100.0 ? 0.0 : ext + 0.37;
    benchmark::DoNotOptimize(e.handoff_probability(t0, 1, 2, ext, 30.0));
  }
}
BENCHMARK(BM_HoefProbabilityWarmSnapshot)->Arg(100)->Arg(1000);

void BM_HoefSnapshotRebuild(benchmark::State& state) {
  auto e = seeded_estimator(static_cast<int>(state.range(0)));
  sim::Time t = 1e6;
  for (auto _ : state) {
    // Each record invalidates the snapshot; the probability rebuilds it.
    t += 0.5;
    e.record({t, 1, 2, 30.0});
    benchmark::DoNotOptimize(e.handoff_probability(t, 1, 2, 10.0, 30.0));
  }
}
BENCHMARK(BM_HoefSnapshotRebuild)->Arg(100)->Arg(1000);

void BM_TestWindowUpdate(benchmark::State& state) {
  reservation::TestWindowController c({});
  int i = 0;
  for (auto _ : state) {
    c.on_handoff((++i % 97) == 0, 120.0);
  }
  benchmark::DoNotOptimize(c.t_est());
}
BENCHMARK(BM_TestWindowUpdate);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  sim::EventQueue q;
  sim::Time t = 0.0;
  sim::Rng rng(3);
  // Keep a steady backlog of range(0) pending events.
  for (int i = 0; i < state.range(0); ++i) {
    q.schedule(t + rng.uniform(0.0, 100.0), [] {});
  }
  for (auto _ : state) {
    t += 0.01;
    q.schedule(t + rng.uniform(0.0, 100.0), [] {});
    q.pop();
  }
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_ReservationRecompute(benchmark::State& state) {
  // A loaded live system: measure one full B_r computation (Eqs. 4-6)
  // over the real neighbour occupancy.
  core::StationaryParams p;
  p.offered_load = static_cast<double>(state.range(0));
  p.policy = admission::PolicyKind::kAc3;
  core::CellularSystem sys(core::stationary_config(p));
  sys.run_for(500.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.recompute_reservation(4));
  }
}
BENCHMARK(BM_ReservationRecompute)->Arg(100)->Arg(300);

void BM_FullSimulationSecond(benchmark::State& state) {
  // Wall cost of one simulated second of the paper's stationary scenario.
  core::StationaryParams p;
  p.offered_load = static_cast<double>(state.range(0));
  p.policy = admission::PolicyKind::kAc3;
  core::CellularSystem sys(core::stationary_config(p));
  sys.run_for(200.0);  // warm the system
  for (auto _ : state) {
    sys.run_for(1.0);
  }
}
BENCHMARK(BM_FullSimulationSecond)->Arg(100)->Arg(300);

}  // namespace

BENCHMARK_MAIN();
