// pabr-snapshot — inspection tool for simulator snapshot files written
// by the --checkpoint-every flags and the save() APIs (DESIGN.md §13).
//
//   pabr_snapshot STATE.pabrsnap              # header meta + section table
//   pabr_snapshot STATE.pabrsnap --validate   # parse + checksum check only
//   pabr_snapshot A.pabrsnap --diff B.pabrsnap
//                                             # compare headers + sections
//
// Validation is the Reader's own strictness: bad magic, an unknown
// format version, a checksum mismatch or a truncated section all fail.
// The exit code is 0 for a valid file (or an identical pair under
// --diff) and 1 otherwise, so CI jobs can gate on it directly.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "snapshot/format.h"
#include "util/cli.h"

namespace {

using pabr::snapshot::FormatError;
using pabr::snapshot::Reader;
using pabr::snapshot::SystemKind;

const char* kind_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kLinear:
      return "linear";
    case SystemKind::kHex:
      return "hex";
    case SystemKind::kSharded:
      return "sharded";
  }
  return "unknown";
}

std::optional<Reader> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) {
    std::cerr << "pabr_snapshot: cannot open " << path << "\n";
    return std::nullopt;
  }
  try {
    return Reader(is);
  } catch (const FormatError& e) {
    std::cerr << "pabr_snapshot: " << path << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

void print_inspect(const std::string& path, const Reader& r) {
  const auto& h = r.header();
  std::printf("file           %s\n", path.c_str());
  std::printf("format_version %u\n", h.format_version);
  std::printf("kind           %s\n", kind_name(h.kind));
  std::printf("git_sha        %s\n",
              h.git_sha.empty() ? "(unknown)" : h.git_sha.c_str());
  std::printf("build_type     %s\n",
              h.build_type.empty() ? "(unknown)" : h.build_type.c_str());
  std::printf("config_digest  %016llx\n",
              static_cast<unsigned long long>(h.config_digest));
  std::printf("sim_time       %.17g\n", h.sim_time);
  std::printf("run_seed       %llu\n",
              static_cast<unsigned long long>(h.run_seed));
  std::printf("sections       %zu\n", r.sections().size());
  std::printf("%-14s %12s  %s\n", "section", "bytes", "checksum");
  for (const auto& s : r.sections()) {
    std::printf("%-14s %12zu  %016llx\n", s.name.c_str(), s.payload.size(),
                static_cast<unsigned long long>(s.checksum));
  }
}

int diff(const std::string& path_a, const Reader& a, const std::string& path_b,
         const Reader& b) {
  int differences = 0;
  const auto& ha = a.header();
  const auto& hb = b.header();
  const auto field = [&](const char* name, const std::string& va,
                         const std::string& vb) {
    if (va != vb) {
      std::printf("header %-14s %s != %s\n", name, va.c_str(), vb.c_str());
      ++differences;
    }
  };
  char buf[64];
  const auto hex = [&buf](std::uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  field("kind", kind_name(ha.kind), kind_name(hb.kind));
  field("config_digest", hex(ha.config_digest), hex(hb.config_digest));
  field("sim_time", num(ha.sim_time), num(hb.sim_time));
  field("run_seed", std::to_string(ha.run_seed), std::to_string(hb.run_seed));

  // Section-by-section in A's order, then B-only extras.
  for (const auto& sa : a.sections()) {
    if (!b.has_section(sa.name)) {
      std::printf("section %-14s only in %s\n", sa.name.c_str(),
                  path_a.c_str());
      ++differences;
      continue;
    }
    for (const auto& sb : b.sections()) {
      if (sb.name != sa.name) continue;
      if (sa.payload.size() != sb.payload.size() ||
          sa.checksum != sb.checksum) {
        std::printf("section %-14s %zu bytes / %s != %zu bytes / %s\n",
                    sa.name.c_str(), sa.payload.size(), hex(sa.checksum).c_str(),
                    sb.payload.size(), hex(sb.checksum).c_str());
        ++differences;
      }
      break;
    }
  }
  for (const auto& sb : b.sections()) {
    if (!a.has_section(sb.name)) {
      std::printf("section %-14s only in %s\n", sb.name.c_str(),
                  path_b.c_str());
      ++differences;
    }
  }

  if (differences == 0) {
    std::printf("identical: %s == %s\n", path_a.c_str(), path_b.c_str());
    return 0;
  }
  std::printf("%d difference(s)\n", differences);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  pabr::cli::Parser parser(
      "pabr_snapshot",
      "inspect, validate and diff simulator snapshot files");
  bool validate = false;
  std::string diff_path;
  parser.add_bool("validate", &validate,
                  "parse + checksum check only; print one verdict line");
  parser.add_string("diff", &diff_path,
                    "compare against this second snapshot file");
  if (!parser.parse(argc, argv)) return 1;
  if (parser.positional().size() != 1) {
    std::cerr << parser.usage();
    std::cerr << "pabr_snapshot: exactly one snapshot file expected\n";
    return 1;
  }
  const std::string path = parser.positional().front();

  const auto reader = read_file(path);
  if (!reader.has_value()) {
    if (validate) std::printf("invalid %s\n", path.c_str());
    return 1;
  }

  if (!diff_path.empty()) {
    const auto other = read_file(diff_path);
    if (!other.has_value()) return 1;
    return diff(path, *reader, diff_path, *other);
  }

  if (validate) {
    std::printf("valid %s (%s, %zu sections, t=%.17g)\n", path.c_str(),
                kind_name(reader->header().kind), reader->sections().size(),
                reader->header().sim_time);
    return 0;
  }

  print_inspect(path, *reader);
  return 0;
}
