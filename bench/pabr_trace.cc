// pabr-trace — inspection tool for binary event traces (.pabrtrace)
// written by the bench binaries' --trace-out flag.
//
//   pabr_trace RUN.pabrtrace                  # header + per-kind summary
//   pabr_trace RUN.pabrtrace --summary-csv S  # the summary as CSV
//   pabr_trace RUN.pabrtrace --cells-csv C --bucket 100
//                                             # per-cell time series (events
//                                             # per kind per time bucket)
//   pabr_trace RUN.pabrtrace --dump-csv D     # every record as CSV
//   pabr_trace RUN.pabrtrace --chrome T.json  # chrome://tracing / Perfetto
//                                             # trace_event JSON
//
// All outputs are deterministic functions of the input file, which is
// itself byte-identical whatever --threads produced it (records are
// merged in replication-slot order, not thread order).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "telemetry/trace.h"
#include "util/cli.h"
#include "util/csv.h"

namespace {

using pabr::telemetry::EventKind;
using pabr::telemetry::TraceFile;
using pabr::telemetry::TraceRecord;
using pabr::telemetry::event_kind_name;

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

struct KindStats {
  std::uint64_t count = 0;
  double payload_sum = 0.0;
  double t_first = 0.0;
  double t_last = 0.0;
};

/// Per-kind aggregation in EventKind order (deterministic output).
std::map<std::uint16_t, KindStats> kind_stats(
    const std::vector<TraceRecord>& records) {
  std::map<std::uint16_t, KindStats> stats;
  for (const TraceRecord& r : records) {
    KindStats& s = stats[r.kind];
    if (s.count == 0) s.t_first = r.t;
    ++s.count;
    s.payload_sum += r.payload;
    s.t_last = std::max(s.t_last, r.t);
  }
  return stats;
}

void print_summary(const TraceFile& file) {
  std::cout << "meta:\n";
  for (const auto& [k, v] : file.meta.entries) {
    std::cout << "  " << k << " = " << v << "\n";
  }
  double t_lo = 0.0, t_hi = 0.0;
  std::uint16_t max_stream = 0;
  if (!file.records.empty()) {
    t_lo = file.records.front().t;
    t_hi = t_lo;
    for (const TraceRecord& r : file.records) {
      t_lo = std::min(t_lo, r.t);
      t_hi = std::max(t_hi, r.t);
      max_stream = std::max(max_stream, r.stream);
    }
  }
  std::cout << "records: " << file.records.size()
            << "  (rotated out: " << file.rotated_out << ")\n"
            << "streams: " << (file.records.empty() ? 0 : max_stream + 1)
            << "\n"
            << "time span: [" << fmt(t_lo) << ", " << fmt(t_hi) << "] s\n\n";

  std::printf("%-14s %12s %16s %12s %12s\n", "kind", "count", "payload_sum",
              "t_first", "t_last");
  for (const auto& [kind, s] : kind_stats(file.records)) {
    std::printf("%-14s %12llu %16.6g %12.2f %12.2f\n",
                event_kind_name(static_cast<EventKind>(kind)),
                static_cast<unsigned long long>(s.count), s.payload_sum,
                s.t_first, s.t_last);
  }
}

void write_summary_csv(const TraceFile& file, const std::string& path) {
  pabr::csv::Writer out(path);
  out.header({"kind", "count", "payload_sum", "payload_mean", "t_first",
              "t_last"});
  for (const auto& [kind, s] : kind_stats(file.records)) {
    const double mean =
        s.count == 0 ? 0.0 : s.payload_sum / static_cast<double>(s.count);
    out.row({event_kind_name(static_cast<EventKind>(kind)),
             std::to_string(s.count), fmt(s.payload_sum), fmt(mean),
             fmt(s.t_first), fmt(s.t_last)});
  }
}

/// Per-cell, per-kind event counts over fixed time buckets — the input
/// for load/drop heat-maps (cells as rows, time as columns).
void write_cells_csv(const TraceFile& file, const std::string& path,
                     double bucket_s) {
  pabr::csv::Writer out(path);
  out.header({"bucket_start_s", "cell", "kind", "count", "payload_sum"});
  struct Key {
    std::int64_t bucket;
    std::int32_t cell;
    std::uint16_t kind;
    bool operator<(const Key& o) const {
      if (bucket != o.bucket) return bucket < o.bucket;
      if (cell != o.cell) return cell < o.cell;
      return kind < o.kind;
    }
  };
  std::map<Key, std::pair<std::uint64_t, double>> cells;
  for (const TraceRecord& r : file.records) {
    const auto b = static_cast<std::int64_t>(r.t / bucket_s);
    auto& slot = cells[Key{b, r.cell, r.kind}];
    ++slot.first;
    slot.second += r.payload;
  }
  for (const auto& [key, v] : cells) {
    out.row({fmt(static_cast<double>(key.bucket) * bucket_s),
             std::to_string(key.cell),
             event_kind_name(static_cast<EventKind>(key.kind)),
             std::to_string(v.first), fmt(v.second)});
  }
}

void write_dump_csv(const TraceFile& file, const std::string& path) {
  pabr::csv::Writer out(path);
  out.header({"t", "stream", "cell", "kind", "mobile", "payload"});
  for (const TraceRecord& r : file.records) {
    out.row({fmt(r.t), std::to_string(r.stream), std::to_string(r.cell),
             event_kind_name(static_cast<EventKind>(r.kind)),
             std::to_string(r.mobile), fmt(r.payload)});
  }
}

/// Chrome trace_event JSON (load in chrome://tracing or Perfetto):
/// instant events, ts in microseconds of simulation time, one process per
/// replication stream, one thread row per cell.
bool write_chrome_json(const TraceFile& file, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << path << "\n";
    return false;
  }
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceRecord& r : file.records) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  {\"name\": \""
        << event_kind_name(static_cast<EventKind>(r.kind))
        << "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << fmt(r.t * 1e6)
        << ", \"pid\": " << r.stream << ", \"tid\": " << r.cell
        << ", \"args\": {\"mobile\": " << r.mobile
        << ", \"payload\": " << fmt(r.payload) << "}}";
  }
  out << (first ? "]" : "\n]") << "}\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pabr::cli::Parser cli("pabr_trace",
                        "inspect .pabrtrace binary event traces");
  std::string summary_csv, cells_csv, dump_csv, chrome_json;
  double bucket_s = 100.0;
  cli.add_string("summary-csv", &summary_csv,
                 "write the per-kind summary to this CSV");
  cli.add_string("cells-csv", &cells_csv,
                 "write per-cell per-bucket event counts to this CSV");
  cli.add_double("bucket", &bucket_s,
                 "time bucket (s) for --cells-csv");
  cli.add_string("dump-csv", &dump_csv, "dump every record to this CSV");
  cli.add_string("chrome", &chrome_json,
                 "write chrome://tracing trace_event JSON to this path");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().size() != 1) {
    std::cerr << "usage: pabr_trace RUN.pabrtrace [options]\n"
              << cli.usage();
    return 1;
  }
  if (bucket_s <= 0.0) {
    std::cerr << "error: --bucket must be positive\n";
    return 1;
  }

  const auto file = pabr::telemetry::read_trace(cli.positional()[0]);
  if (!file.has_value()) return 1;

  print_summary(*file);
  if (!summary_csv.empty()) write_summary_csv(*file, summary_csv);
  if (!cells_csv.empty()) write_cells_csv(*file, cells_csv, bucket_s);
  if (!dump_csv.empty()) write_dump_csv(*file, dump_csv);
  if (!chrome_json.empty() && !write_chrome_json(*file, chrome_json)) {
    return 1;
  }
  return 0;
}
