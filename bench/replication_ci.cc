// Statistical confidence for the headline comparison: the paper reports
// single simulation runs; this bench replicates the L = 300 stationary
// scenario over independent seeds and reports mean ± 95% CI for each
// scheme, showing that the AC1-vs-AC2/AC3 P_HD separation and the N_calc
// ordering are far outside sampling noise.
//
// Replications are independent (one CellularSystem per seed), so
// --threads N fans them over a pool; every per-seed sample and every
// printed row is byte-identical to the sequential run (sim/parallel.h).
//
// Checkpoint/resume (DESIGN.md §13): --checkpoint-every S writes each
// replication's state to <--checkpoint-path>-<policy>-s<i> every S
// simulated seconds; --resume-from FILE skips the table and instead
// finishes the plan from that one snapshot, printing its digest — the
// resumed digest must equal the matching fresh replication's bitwise
// (invariant I10).
#include <chrono>
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  int seeds = 5;
  double load = 300.0;
  cli::Parser cli("replication_ci",
                  "multi-seed confidence intervals for the L=300 comparison");
  bench::add_common_flags(cli, opts);
  bench::add_threads_flag(cli, opts);
  bench::add_telemetry_flags(cli, opts);
  cli.add_int("seeds", &seeds, "independent replications per scheme");
  cli.add_double("load", &load, "offered load per cell");
  double checkpoint_every = 0.0;
  std::string checkpoint_path = "replication_ci.pabrsnap";
  std::string resume_from;
  cli.add_double("checkpoint-every", &checkpoint_every,
                 "write a checkpoint every N simulated seconds (0 = off)");
  cli.add_string("checkpoint-path", &checkpoint_path,
                 "checkpoint file prefix (suffixed -<policy>-s<i> per "
                 "replication)");
  cli.add_string("resume-from", &resume_from,
                 "finish the plan from this snapshot instead of running "
                 "the replication table");
  if (!cli.parse(argc, argv)) return 1;
  if (opts.full) seeds = std::max(seeds, 10);
  bench::warn_if_telemetry_unavailable(opts);

  if (!resume_from.empty()) {
    core::RunPlan plan = opts.plan();
    plan.resume_from = resume_from;
    plan.checkpoint_every_s = checkpoint_every;
    if (checkpoint_every > 0.0) {
      plan.checkpoint_path = checkpoint_path + "-resumed";
    }
    const core::RunResult r = core::run_system(core::SystemConfig{}, plan);
    std::printf(
        "resumed %s: %llu events, P_CB %.6f, P_HD %.6f, digest %016llx\n",
        resume_from.c_str(), static_cast<unsigned long long>(r.events),
        r.status.pcb, r.status.phd,
        static_cast<unsigned long long>(r.digest));
    return 0;
  }

  bench::print_banner("Replication — mean ± 95% CI over " +
                      std::to_string(seeds) + " seeds (L = " +
                      core::TablePrinter::fixed(load, 0) +
                      ", R_vo = 1.0, high mobility)");
  csv::Writer csv(opts.csv_path);
  csv.header({"policy", "pcb_mean", "pcb_ci", "phd_mean", "phd_ci",
              "ncalc_mean"});
  bench::JsonReport json("replication_ci", opts);
  json.columns({"policy", "seed_index", "pcb", "phd", "n_calc"});

  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t br_calculations = 0;
  std::vector<telemetry::MetricsSnapshot> snapshots;
  std::vector<std::vector<telemetry::TraceRecord>> trace_streams;
  std::uint64_t trace_rotated = 0;

  core::TablePrinter table(
      {"policy", "P_CB mean±CI", "P_HD mean±CI", "N_calc"},
      {7, 22, 22, 7});
  table.print_header();
  for (const auto kind :
       {admission::PolicyKind::kAc1, admission::PolicyKind::kAc2,
        admission::PolicyKind::kAc3, admission::PolicyKind::kStatic}) {
    core::StationaryParams p;
    p.offered_load = load;
    p.voice_ratio = 1.0;
    p.mobility = core::Mobility::kHigh;
    p.policy = kind;
    p.seed = opts.seed;
    core::SystemConfig cfg = core::stationary_config(p);
    cfg.telemetry = opts.telemetry_config();
    core::RunPlan plan = opts.plan();
    if (checkpoint_every > 0.0) {
      plan.checkpoint_every_s = checkpoint_every;
      plan.checkpoint_path =
          checkpoint_path + "-" + admission::policy_kind_name(kind);
    }
    const auto rep = core::run_replicated(cfg, plan, seeds, opts.threads);
    const auto pm = [](const core::Replicated& r) {
      return core::TablePrinter::prob(r.mean) + " ± " +
             core::TablePrinter::prob(r.ci95);
    };
    table.print_row({admission::policy_kind_name(kind), pm(rep.pcb),
                     pm(rep.phd),
                     core::TablePrinter::fixed(rep.n_calc.mean, 2)});
    csv.row_values(admission::policy_kind_name(kind), rep.pcb.mean,
                   rep.pcb.ci95, rep.phd.mean, rep.phd.ci95,
                   rep.n_calc.mean);
    for (std::size_t i = 0; i < rep.runs.size(); ++i) {
      br_calculations += rep.runs[i].status.br_calculations;
      json.row({admission::policy_kind_name(kind), std::to_string(i),
                csv::Writer::format(rep.pcb.samples[i]),
                csv::Writer::format(rep.phd.samples[i]),
                csv::Writer::format(rep.n_calc.samples[i])});
      if (opts.telemetry_requested()) {
        snapshots.push_back(rep.runs[i].telemetry);
        trace_streams.push_back(rep.runs[i].trace);
        trace_rotated += rep.runs[i].trace_rotated_out;
      }
    }
  }
  table.print_rule();

  json.counter("wall_seconds",
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count());
  json.counter("br_calculations", static_cast<double>(br_calculations));
  json.counter("threads", opts.threads);
  if (!snapshots.empty()) {
    json.metrics(telemetry::merge_snapshots(snapshots));
  }
  json.write();
  bench::write_bench_trace("replication_ci", opts, trace_streams,
                           trace_rotated);

  std::cout << "\nReading: AC1's P_HD sits above the 0.01 target by more "
               "than its CI while\nAC2/AC3 sit below by more than theirs — "
               "the paper's Fig. 12 separation is\nstatistically solid, "
               "not a lucky seed.\n";
  return 0;
}
