// Scale sweep for the sharded executor (DESIGN.md §12): how far does
// intra-run cell partitioning take one simulation?
//
// For each (grid, shard-count) point the SAME configuration is executed
// under the sharded executor and three things are recorded:
//   * throughput — simulation events per wall second ("events_per_s"),
//     the column scripts/bench_compare.py gates must-not-fall;
//   * the end-state digest — every shard count of a grid must print the
//     SAME digest (the "match" column), the bitwise-equivalence contract
//     checked continuously by tests/sharded_equivalence_test.cc;
//   * speedup over the single-shard run of the same grid.
//
// Default: two reduced grids (8x8, 16x16) at shards {1, 2, 4}. --full
// runs the acceptance configuration: a 32x32 torus (1024 cells) at
// 0.5 conn/s/cell for 2000 s simulated — over a million generated
// connections — at shards {1, 2, 4}.
//
// Speedup is bounded by the host: "hw_concurrency" in the JSON meta
// records how many hardware threads were actually available. On a
// single-core host every multi-shard run time-slices one CPU and
// speedup <= 1 is expected; the digests still must match.
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "sim/sharded/executor.h"

namespace {

std::string hex_digest(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt(const char* spec, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), spec, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  int only_shards = 0;
  int rows_override = 0;
  int cols_override = 0;
  double duration_override = 0.0;
  cli::Parser cli("scale_sweep",
                  "sharded-executor scale sweep: events/s and digest "
                  "equivalence across shard counts");
  bench::add_common_flags(cli, opts);
  bench::add_telemetry_flags(cli, opts);
  cli.add_int("shards", &only_shards,
              "run only this shard count (0 = sweep 1, 2, 4)");
  cli.add_int("rows", &rows_override, "override grid rows (0 = sweep)");
  cli.add_int("cols", &cols_override, "override grid cols (0 = sweep)");
  cli.add_double("duration", &duration_override,
                 "override simulated seconds (0 = per-grid default)");
  double checkpoint_every = 0.0;
  std::string checkpoint_path = "scale_sweep.pabrsnap";
  std::string resume_from;
  cli.add_double("checkpoint-every", &checkpoint_every,
                 "write a barrier-slot checkpoint every N simulated "
                 "seconds (0 = off; cadence snaps up to the slot grid)");
  cli.add_string("checkpoint-path", &checkpoint_path,
                 "checkpoint file prefix (suffixed -<cells>c<shards>s per "
                 "sweep point)");
  cli.add_string("resume-from", &resume_from,
                 "resume every sweep point from this snapshot (pin one "
                 "point with --rows/--cols/--shards; the file is "
                 "digest-checked against the point's config)");
  if (!cli.parse(argc, argv)) return 1;
  bench::warn_if_telemetry_unavailable(opts);
  if (!resume_from.empty() &&
      (rows_override <= 0 || cols_override <= 0 || only_shards <= 0)) {
    std::cerr << "scale_sweep: --resume-from needs --rows, --cols and "
                 "--shards to pin a single sweep point\n";
    return 1;
  }

  bench::print_banner(
      "Scale sweep — deterministic cell-partitioned execution");
  std::cout << "hardware threads available: "
            << std::thread::hardware_concurrency() << "\n\n";

  struct GridPoint {
    int rows;
    int cols;
    double duration_s;
  };
  std::vector<GridPoint> grids;
  if (rows_override > 0 && cols_override > 0) {
    grids.push_back({rows_override, cols_override,
                     duration_override > 0.0 ? duration_override : 200.0});
  } else if (opts.full) {
    // Acceptance point: 1024 cells x 0.5 conn/s/cell x 2000 s
    // ~= 1.02M generated connections.
    grids.push_back({32, 32, 2000.0});
  } else {
    grids.push_back({8, 8, 300.0});
    grids.push_back({16, 16, 200.0});
  }
  std::vector<int> shard_counts;
  if (only_shards > 0) {
    shard_counts.push_back(only_shards);
  } else {
    shard_counts = {1, 2, 4};
  }

  // First column is the row key scripts/bench_compare.py matches on, so
  // it must be unique per (grid, shard-count) point.
  const std::vector<std::string> cols = {
      "point",  "cells",   "shards", "sim_s",   "events", "requests",
      "handoffs", "events_per_s", "speedup", "digest", "match", "pcb",
      "phd"};
  csv::Writer csv(opts.csv_path);
  csv.header(cols);
  bench::JsonReport json("scale_sweep", opts);
  json.columns(cols);
  json.meta_raw("hw_concurrency",
                std::to_string(std::thread::hardware_concurrency()));

  std::printf("%7s %7s %7s %10s %10s %9s %12s %8s %17s %6s\n", "cells",
              "shards", "sim_s", "events", "requests", "handoffs",
              "events_per_s", "speedup", "digest", "match");
  double total_wall = 0.0;
  std::uint64_t total_events = 0;
  bool all_match = true;
  for (const GridPoint& g : grids) {
    double base_eps = 0.0;
    std::uint64_t base_digest = 0;
    for (const int shards : shard_counts) {
      sim::sharded::ShardedConfig cfg;
      cfg.system.rows = g.rows;
      cfg.system.cols = g.cols;
      cfg.system.wrap = true;
      cfg.system.policy = admission::PolicyKind::kAc2;
      cfg.system.arrival_rate_per_cell = 0.5;
      cfg.system.seed = opts.seed;
      cfg.system.telemetry = opts.telemetry_config();
      cfg.shards = shards;
      cfg.duration_s = g.duration_s;
      if (checkpoint_every > 0.0) {
        cfg.checkpoint_every_s = checkpoint_every;
        cfg.checkpoint_path = checkpoint_path + "-" +
                              std::to_string(g.rows * g.cols) + "c" +
                              std::to_string(shards) + "s";
      }
      cfg.resume_from = resume_from;
      sim::sharded::ShardedExecutor exec(cfg);
      const sim::sharded::ShardedResult r = exec.run();
      total_wall += r.wall_seconds;
      total_events += r.events;

      if (base_digest == 0) {
        base_digest = r.digest;
        base_eps = r.events_per_second;
      }
      const bool match = r.digest == base_digest;
      all_match = all_match && match;
      const double speedup =
          base_eps > 0.0 ? r.events_per_second / base_eps : 0.0;
      const int cells = g.rows * g.cols;

      std::printf("%7d %7d %7.0f %10llu %10llu %9llu %12.0f %8.2f %17s %6s\n",
                  cells, shards, g.duration_s,
                  static_cast<unsigned long long>(r.events),
                  static_cast<unsigned long long>(r.status.requests),
                  static_cast<unsigned long long>(r.status.handoffs),
                  r.events_per_second, speedup,
                  hex_digest(r.digest).c_str(), match ? "yes" : "NO");

      const std::vector<std::string> row = {
          std::to_string(cells) + "c" + std::to_string(shards) + "s",
          std::to_string(cells),
          std::to_string(shards),
          fmt("%.0f", g.duration_s),
          std::to_string(r.events),
          std::to_string(r.status.requests),
          std::to_string(r.status.handoffs),
          fmt("%.1f", r.events_per_second),
          fmt("%.4f", speedup),
          hex_digest(r.digest),
          match ? "yes" : "no",
          fmt("%.6f", r.status.pcb),
          fmt("%.6f", r.status.phd)};
      csv.row(row);
      json.row(row);
    }
  }
  std::printf("\ntotal: %llu events in %.2f s wall\n",
              static_cast<unsigned long long>(total_events), total_wall);
  if (!all_match) {
    std::printf("DIGEST MISMATCH: shard counts disagree — this is a bug\n");
  }
  json.counter("wall_seconds", total_wall);
  json.counter("events_total", static_cast<double>(total_events));
  json.counter("events_per_s",
               total_wall > 0.0
                   ? static_cast<double>(total_events) / total_wall
                   : 0.0);
  json.counter("digests_match", all_match ? 1.0 : 0.0);
  json.write();
  return all_match ? 0 : 1;
}
