// Table 2: per-cell status at the end of a simulation with offered load
// 300, R_vo = 1.0, high user mobility, on the 10-cell ring — (a) AC1 and
// (b) AC3.
//
// Paper's observations this should reproduce:
//   * AC1: wildly unbalanced cells — alternating very high/low P_CB,
//     several cells with P_HD above the 0.01 target, T_est and B_r
//     exploding in the starved cells;
//   * AC3: balanced P_CB across cells and P_HD < 0.01 everywhere.
#include "bench_common.h"

namespace {

void run_one(pabr::admission::PolicyKind kind,
             const pabr::bench::CommonOptions& opts, pabr::csv::Writer& csv,
             std::vector<std::vector<pabr::telemetry::TraceRecord>>& streams,
             std::uint64_t& trace_rotated) {
  using namespace pabr;
  core::StationaryParams p;
  p.offered_load = 300.0;
  p.voice_ratio = 1.0;
  p.mobility = core::Mobility::kHigh;
  p.policy = kind;
  p.seed = opts.seed;

  // The paper reports end-of-run cumulative values (no warm-up reset).
  core::RunPlan plan;
  plan.warmup_s = 0.0;
  plan.measure_s = opts.full ? 20000.0 : 6000.0;
  plan.reset_after_warmup = false;

  core::SystemConfig cfg = core::stationary_config(p);
  cfg.telemetry = opts.telemetry_config();
  auto r = core::run_system(cfg, plan);
  if (opts.telemetry_requested()) {
    streams.push_back(std::move(r.trace));
    trace_rotated += r.trace_rotated_out;
  }

  std::cout << "\n(" << (kind == admission::PolicyKind::kAc1 ? "a" : "b")
            << ") " << admission::policy_kind_name(kind) << "\n";
  core::TablePrinter table(
      {"Cell", "P_CB", "P_HD", "T_est", "B_r", "B_u"},
      {5, 10, 10, 7, 8, 6});
  table.print_header();
  for (const auto& c : r.cells) {
    table.print_row({core::TablePrinter::integer(
                         static_cast<std::uint64_t>(c.cell)),
                     core::TablePrinter::prob(c.pcb),
                     core::TablePrinter::prob(c.phd),
                     core::TablePrinter::fixed(c.t_est, 0),
                     core::TablePrinter::fixed(c.br, 2),
                     core::TablePrinter::fixed(c.bu, 0)});
    csv.row_values(admission::policy_kind_name(kind), c.cell, c.pcb, c.phd,
                   c.t_est, c.br, c.bu);
  }
  table.print_rule();
  std::cout << "system: P_CB = " << core::TablePrinter::prob(r.status.pcb)
            << ", P_HD = " << core::TablePrinter::prob(r.status.phd)
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli("table2_cell_status",
                  "per-cell status, L = 300, AC1 vs AC3 (paper Table 2)");
  bench::add_common_flags(cli, opts);
  bench::add_telemetry_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;
  bench::warn_if_telemetry_unavailable(opts);

  bench::print_banner("Table 2 — per-cell status at end of run "
                      "(L = 300, R_vo = 1.0, high mobility, ring)");
  csv::Writer csv(opts.csv_path);
  csv.header({"policy", "cell", "pcb", "phd", "t_est", "br", "bu"});
  std::vector<std::vector<telemetry::TraceRecord>> trace_streams;
  std::uint64_t trace_rotated = 0;
  run_one(admission::PolicyKind::kAc1, opts, csv, trace_streams,
          trace_rotated);
  run_one(admission::PolicyKind::kAc3, opts, csv, trace_streams,
          trace_rotated);
  bench::write_bench_trace("table2_cell_status", opts, trace_streams,
                           trace_rotated);
  return 0;
}
