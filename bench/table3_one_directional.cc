// Table 3: per-cell status when ALL mobiles travel from cell <1> toward
// cell <10> on an OPEN road (borders disconnected), offered load 300,
// R_vo = 1.0, high mobility — AC1 vs AC3.
//
// Paper's observations this should reproduce:
//   * cell <1> has no incoming mobiles: P_HD = 0 there; under AC1 it
//     accepts everything (P_CB = 0) and floods cell <2>/<3>;
//   * AC1 shows the every-other-cell starvation pattern with some cells'
//     P_HD above target;
//   * AC3 blocks some new connections in cell <1> (it "cares about" cell
//     <2>) and bounds P_HD everywhere.
#include "bench_common.h"

namespace {

void run_one(pabr::admission::PolicyKind kind,
             const pabr::bench::CommonOptions& opts, pabr::csv::Writer& csv) {
  using namespace pabr;
  core::DirectionalParams p;
  p.offered_load = 300.0;
  p.voice_ratio = 1.0;
  p.policy = kind;
  p.seed = opts.seed;

  core::RunPlan plan;
  plan.warmup_s = 0.0;
  plan.measure_s = opts.full ? 20000.0 : 6000.0;
  plan.reset_after_warmup = false;

  const auto r = core::run_system(core::directional_config(p), plan);

  std::cout << "\n-- " << admission::policy_kind_name(kind) << " --\n";
  core::TablePrinter table({"Cell", "P_CB", "P_HD", "handoffs"},
                           {5, 10, 10, 9});
  table.print_header();
  for (const auto& c : r.cells) {
    table.print_row({core::TablePrinter::integer(
                         static_cast<std::uint64_t>(c.cell)),
                     core::TablePrinter::prob(c.pcb),
                     core::TablePrinter::prob(c.phd),
                     core::TablePrinter::integer(c.handoffs)});
    csv.row_values(admission::policy_kind_name(kind), c.cell, c.pcb, c.phd,
                   c.handoffs);
  }
  table.print_rule();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pabr;
  bench::CommonOptions opts;
  cli::Parser cli(
      "table3_one_directional",
      "per-cell status, one-directional open road (paper Table 3)");
  bench::add_common_flags(cli, opts);
  if (!cli.parse(argc, argv)) return 1;

  bench::print_banner("Table 3 — one-directional mobiles <1> -> <10>, "
                      "open road (L = 300, R_vo = 1.0, high mobility)");
  csv::Writer csv(opts.csv_path);
  csv.header({"policy", "cell", "pcb", "phd", "handoffs"});
  run_one(admission::PolicyKind::kAc1, opts, csv);
  run_one(admission::PolicyKind::kAc3, opts, csv);
  return 0;
}
