file(REMOVE_RECURSE
  "CMakeFiles/ablation_adaptive_qos.dir/ablation_adaptive_qos.cc.o"
  "CMakeFiles/ablation_adaptive_qos.dir/ablation_adaptive_qos.cc.o.d"
  "ablation_adaptive_qos"
  "ablation_adaptive_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_adaptive_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
