# Empty dependencies file for ablation_adaptive_qos.
# This may be replaced when dependencies are built.
