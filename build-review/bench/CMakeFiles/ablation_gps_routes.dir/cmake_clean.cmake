file(REMOVE_RECURSE
  "CMakeFiles/ablation_gps_routes.dir/ablation_gps_routes.cc.o"
  "CMakeFiles/ablation_gps_routes.dir/ablation_gps_routes.cc.o.d"
  "ablation_gps_routes"
  "ablation_gps_routes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gps_routes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
