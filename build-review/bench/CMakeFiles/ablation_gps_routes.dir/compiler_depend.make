# Empty compiler generated dependencies file for ablation_gps_routes.
# This may be replaced when dependencies are built.
