file(REMOVE_RECURSE
  "CMakeFiles/ablation_nquad.dir/ablation_nquad.cc.o"
  "CMakeFiles/ablation_nquad.dir/ablation_nquad.cc.o.d"
  "ablation_nquad"
  "ablation_nquad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nquad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
