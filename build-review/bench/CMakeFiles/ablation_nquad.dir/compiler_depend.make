# Empty compiler generated dependencies file for ablation_nquad.
# This may be replaced when dependencies are built.
