file(REMOVE_RECURSE
  "CMakeFiles/ablation_step_policy.dir/ablation_step_policy.cc.o"
  "CMakeFiles/ablation_step_policy.dir/ablation_step_policy.cc.o.d"
  "ablation_step_policy"
  "ablation_step_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_step_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
