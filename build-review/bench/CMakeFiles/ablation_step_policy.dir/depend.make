# Empty dependencies file for ablation_step_policy.
# This may be replaced when dependencies are built.
