file(REMOVE_RECURSE
  "CMakeFiles/ablation_wired_backbone.dir/ablation_wired_backbone.cc.o"
  "CMakeFiles/ablation_wired_backbone.dir/ablation_wired_backbone.cc.o.d"
  "ablation_wired_backbone"
  "ablation_wired_backbone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wired_backbone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
