# Empty compiler generated dependencies file for ablation_wired_backbone.
# This may be replaced when dependencies are built.
