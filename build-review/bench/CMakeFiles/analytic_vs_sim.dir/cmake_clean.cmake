file(REMOVE_RECURSE
  "CMakeFiles/analytic_vs_sim.dir/analytic_vs_sim.cc.o"
  "CMakeFiles/analytic_vs_sim.dir/analytic_vs_sim.cc.o.d"
  "analytic_vs_sim"
  "analytic_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytic_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
