# Empty compiler generated dependencies file for analytic_vs_sim.
# This may be replaced when dependencies are built.
