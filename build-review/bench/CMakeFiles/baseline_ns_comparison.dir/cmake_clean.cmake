file(REMOVE_RECURSE
  "CMakeFiles/baseline_ns_comparison.dir/baseline_ns_comparison.cc.o"
  "CMakeFiles/baseline_ns_comparison.dir/baseline_ns_comparison.cc.o.d"
  "baseline_ns_comparison"
  "baseline_ns_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_ns_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
