# Empty dependencies file for baseline_ns_comparison.
# This may be replaced when dependencies are built.
