file(REMOVE_RECURSE
  "CMakeFiles/ext_2d_load_sweep.dir/ext_2d_load_sweep.cc.o"
  "CMakeFiles/ext_2d_load_sweep.dir/ext_2d_load_sweep.cc.o.d"
  "ext_2d_load_sweep"
  "ext_2d_load_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_2d_load_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
