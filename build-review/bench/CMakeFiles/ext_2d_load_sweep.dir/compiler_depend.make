# Empty compiler generated dependencies file for ext_2d_load_sweep.
# This may be replaced when dependencies are built.
