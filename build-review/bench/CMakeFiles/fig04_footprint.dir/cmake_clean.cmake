file(REMOVE_RECURSE
  "CMakeFiles/fig04_footprint.dir/fig04_footprint.cc.o"
  "CMakeFiles/fig04_footprint.dir/fig04_footprint.cc.o.d"
  "fig04_footprint"
  "fig04_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
