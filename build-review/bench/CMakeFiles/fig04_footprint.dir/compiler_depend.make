# Empty compiler generated dependencies file for fig04_footprint.
# This may be replaced when dependencies are built.
