file(REMOVE_RECURSE
  "CMakeFiles/fig07_static_reservation.dir/fig07_static_reservation.cc.o"
  "CMakeFiles/fig07_static_reservation.dir/fig07_static_reservation.cc.o.d"
  "fig07_static_reservation"
  "fig07_static_reservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_static_reservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
