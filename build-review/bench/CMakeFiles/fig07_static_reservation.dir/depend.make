# Empty dependencies file for fig07_static_reservation.
# This may be replaced when dependencies are built.
