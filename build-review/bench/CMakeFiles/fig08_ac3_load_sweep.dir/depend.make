# Empty dependencies file for fig08_ac3_load_sweep.
# This may be replaced when dependencies are built.
