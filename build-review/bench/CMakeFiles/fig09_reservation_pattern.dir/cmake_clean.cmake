file(REMOVE_RECURSE
  "CMakeFiles/fig09_reservation_pattern.dir/fig09_reservation_pattern.cc.o"
  "CMakeFiles/fig09_reservation_pattern.dir/fig09_reservation_pattern.cc.o.d"
  "fig09_reservation_pattern"
  "fig09_reservation_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_reservation_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
