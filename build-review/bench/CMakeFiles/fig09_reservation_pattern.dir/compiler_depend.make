# Empty compiler generated dependencies file for fig09_reservation_pattern.
# This may be replaced when dependencies are built.
