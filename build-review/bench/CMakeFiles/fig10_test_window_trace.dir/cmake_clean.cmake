file(REMOVE_RECURSE
  "CMakeFiles/fig10_test_window_trace.dir/fig10_test_window_trace.cc.o"
  "CMakeFiles/fig10_test_window_trace.dir/fig10_test_window_trace.cc.o.d"
  "fig10_test_window_trace"
  "fig10_test_window_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_test_window_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
