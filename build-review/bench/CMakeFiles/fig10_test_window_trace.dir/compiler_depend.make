# Empty compiler generated dependencies file for fig10_test_window_trace.
# This may be replaced when dependencies are built.
