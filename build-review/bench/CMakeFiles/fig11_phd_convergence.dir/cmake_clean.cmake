file(REMOVE_RECURSE
  "CMakeFiles/fig11_phd_convergence.dir/fig11_phd_convergence.cc.o"
  "CMakeFiles/fig11_phd_convergence.dir/fig11_phd_convergence.cc.o.d"
  "fig11_phd_convergence"
  "fig11_phd_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_phd_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
