# Empty compiler generated dependencies file for fig11_phd_convergence.
# This may be replaced when dependencies are built.
