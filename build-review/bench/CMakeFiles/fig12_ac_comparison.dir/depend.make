# Empty dependencies file for fig12_ac_comparison.
# This may be replaced when dependencies are built.
