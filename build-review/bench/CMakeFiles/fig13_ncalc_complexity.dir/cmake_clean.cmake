file(REMOVE_RECURSE
  "CMakeFiles/fig13_ncalc_complexity.dir/fig13_ncalc_complexity.cc.o"
  "CMakeFiles/fig13_ncalc_complexity.dir/fig13_ncalc_complexity.cc.o.d"
  "fig13_ncalc_complexity"
  "fig13_ncalc_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ncalc_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
