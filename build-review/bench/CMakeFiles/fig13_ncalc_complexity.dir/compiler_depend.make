# Empty compiler generated dependencies file for fig13_ncalc_complexity.
# This may be replaced when dependencies are built.
