file(REMOVE_RECURSE
  "CMakeFiles/fig14_time_varying.dir/fig14_time_varying.cc.o"
  "CMakeFiles/fig14_time_varying.dir/fig14_time_varying.cc.o.d"
  "fig14_time_varying"
  "fig14_time_varying.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_time_varying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
