# Empty compiler generated dependencies file for fig14_time_varying.
# This may be replaced when dependencies are built.
