file(REMOVE_RECURSE
  "CMakeFiles/fuzz_driver.dir/fuzz_driver.cc.o"
  "CMakeFiles/fuzz_driver.dir/fuzz_driver.cc.o.d"
  "fuzz_driver"
  "fuzz_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
