# Empty dependencies file for fuzz_driver.
# This may be replaced when dependencies are built.
