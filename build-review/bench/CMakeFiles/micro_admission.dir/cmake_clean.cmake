file(REMOVE_RECURSE
  "CMakeFiles/micro_admission.dir/micro_admission.cc.o"
  "CMakeFiles/micro_admission.dir/micro_admission.cc.o.d"
  "micro_admission"
  "micro_admission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_admission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
