# Empty dependencies file for micro_admission.
# This may be replaced when dependencies are built.
