file(REMOVE_RECURSE
  "CMakeFiles/replication_ci.dir/replication_ci.cc.o"
  "CMakeFiles/replication_ci.dir/replication_ci.cc.o.d"
  "replication_ci"
  "replication_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
