# Empty dependencies file for replication_ci.
# This may be replaced when dependencies are built.
