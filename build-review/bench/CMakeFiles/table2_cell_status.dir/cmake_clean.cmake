file(REMOVE_RECURSE
  "CMakeFiles/table2_cell_status.dir/table2_cell_status.cc.o"
  "CMakeFiles/table2_cell_status.dir/table2_cell_status.cc.o.d"
  "table2_cell_status"
  "table2_cell_status.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_cell_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
