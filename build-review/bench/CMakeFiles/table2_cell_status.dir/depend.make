# Empty dependencies file for table2_cell_status.
# This may be replaced when dependencies are built.
