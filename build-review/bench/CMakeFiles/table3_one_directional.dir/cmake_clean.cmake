file(REMOVE_RECURSE
  "CMakeFiles/table3_one_directional.dir/table3_one_directional.cc.o"
  "CMakeFiles/table3_one_directional.dir/table3_one_directional.cc.o.d"
  "table3_one_directional"
  "table3_one_directional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_one_directional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
