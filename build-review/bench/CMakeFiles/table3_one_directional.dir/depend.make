# Empty dependencies file for table3_one_directional.
# This may be replaced when dependencies are built.
