file(REMOVE_RECURSE
  "CMakeFiles/campus_2d.dir/campus_2d.cpp.o"
  "CMakeFiles/campus_2d.dir/campus_2d.cpp.o.d"
  "campus_2d"
  "campus_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
