# Empty compiler generated dependencies file for campus_2d.
# This may be replaced when dependencies are built.
