file(REMOVE_RECURSE
  "CMakeFiles/highway_qos.dir/highway_qos.cpp.o"
  "CMakeFiles/highway_qos.dir/highway_qos.cpp.o.d"
  "highway_qos"
  "highway_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/highway_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
