# Empty dependencies file for highway_qos.
# This may be replaced when dependencies are built.
