file(REMOVE_RECURSE
  "CMakeFiles/rush_hour.dir/rush_hour.cpp.o"
  "CMakeFiles/rush_hour.dir/rush_hour.cpp.o.d"
  "rush_hour"
  "rush_hour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rush_hour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
