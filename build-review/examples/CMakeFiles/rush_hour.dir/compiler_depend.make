# Empty compiler generated dependencies file for rush_hour.
# This may be replaced when dependencies are built.
