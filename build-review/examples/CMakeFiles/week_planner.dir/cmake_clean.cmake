file(REMOVE_RECURSE
  "CMakeFiles/week_planner.dir/week_planner.cpp.o"
  "CMakeFiles/week_planner.dir/week_planner.cpp.o.d"
  "week_planner"
  "week_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/week_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
