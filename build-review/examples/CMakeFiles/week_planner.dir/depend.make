# Empty dependencies file for week_planner.
# This may be replaced when dependencies are built.
