
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/admission/ac1.cc" "src/CMakeFiles/pabr.dir/admission/ac1.cc.o" "gcc" "src/CMakeFiles/pabr.dir/admission/ac1.cc.o.d"
  "/root/repo/src/admission/ac2.cc" "src/CMakeFiles/pabr.dir/admission/ac2.cc.o" "gcc" "src/CMakeFiles/pabr.dir/admission/ac2.cc.o.d"
  "/root/repo/src/admission/ac3.cc" "src/CMakeFiles/pabr.dir/admission/ac3.cc.o" "gcc" "src/CMakeFiles/pabr.dir/admission/ac3.cc.o.d"
  "/root/repo/src/admission/ns_policy.cc" "src/CMakeFiles/pabr.dir/admission/ns_policy.cc.o" "gcc" "src/CMakeFiles/pabr.dir/admission/ns_policy.cc.o.d"
  "/root/repo/src/admission/policy.cc" "src/CMakeFiles/pabr.dir/admission/policy.cc.o" "gcc" "src/CMakeFiles/pabr.dir/admission/policy.cc.o.d"
  "/root/repo/src/admission/static_policy.cc" "src/CMakeFiles/pabr.dir/admission/static_policy.cc.o" "gcc" "src/CMakeFiles/pabr.dir/admission/static_policy.cc.o.d"
  "/root/repo/src/analysis/guard_channel.cc" "src/CMakeFiles/pabr.dir/analysis/guard_channel.cc.o" "gcc" "src/CMakeFiles/pabr.dir/analysis/guard_channel.cc.o.d"
  "/root/repo/src/audit/differential.cc" "src/CMakeFiles/pabr.dir/audit/differential.cc.o" "gcc" "src/CMakeFiles/pabr.dir/audit/differential.cc.o.d"
  "/root/repo/src/audit/invariants.cc" "src/CMakeFiles/pabr.dir/audit/invariants.cc.o" "gcc" "src/CMakeFiles/pabr.dir/audit/invariants.cc.o.d"
  "/root/repo/src/audit/system_audit.cc" "src/CMakeFiles/pabr.dir/audit/system_audit.cc.o" "gcc" "src/CMakeFiles/pabr.dir/audit/system_audit.cc.o.d"
  "/root/repo/src/backhaul/network.cc" "src/CMakeFiles/pabr.dir/backhaul/network.cc.o" "gcc" "src/CMakeFiles/pabr.dir/backhaul/network.cc.o.d"
  "/root/repo/src/backhaul/signaling.cc" "src/CMakeFiles/pabr.dir/backhaul/signaling.cc.o" "gcc" "src/CMakeFiles/pabr.dir/backhaul/signaling.cc.o.d"
  "/root/repo/src/core/base_station.cc" "src/CMakeFiles/pabr.dir/core/base_station.cc.o" "gcc" "src/CMakeFiles/pabr.dir/core/base_station.cc.o.d"
  "/root/repo/src/core/cell.cc" "src/CMakeFiles/pabr.dir/core/cell.cc.o" "gcc" "src/CMakeFiles/pabr.dir/core/cell.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/pabr.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/pabr.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/hex_system.cc" "src/CMakeFiles/pabr.dir/core/hex_system.cc.o" "gcc" "src/CMakeFiles/pabr.dir/core/hex_system.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/pabr.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/pabr.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/random_scenario.cc" "src/CMakeFiles/pabr.dir/core/random_scenario.cc.o" "gcc" "src/CMakeFiles/pabr.dir/core/random_scenario.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/CMakeFiles/pabr.dir/core/scenario.cc.o" "gcc" "src/CMakeFiles/pabr.dir/core/scenario.cc.o.d"
  "/root/repo/src/core/system.cc" "src/CMakeFiles/pabr.dir/core/system.cc.o" "gcc" "src/CMakeFiles/pabr.dir/core/system.cc.o.d"
  "/root/repo/src/geom/hex_topology.cc" "src/CMakeFiles/pabr.dir/geom/hex_topology.cc.o" "gcc" "src/CMakeFiles/pabr.dir/geom/hex_topology.cc.o.d"
  "/root/repo/src/geom/linear_topology.cc" "src/CMakeFiles/pabr.dir/geom/linear_topology.cc.o" "gcc" "src/CMakeFiles/pabr.dir/geom/linear_topology.cc.o.d"
  "/root/repo/src/geom/topology.cc" "src/CMakeFiles/pabr.dir/geom/topology.cc.o" "gcc" "src/CMakeFiles/pabr.dir/geom/topology.cc.o.d"
  "/root/repo/src/hoef/calendar.cc" "src/CMakeFiles/pabr.dir/hoef/calendar.cc.o" "gcc" "src/CMakeFiles/pabr.dir/hoef/calendar.cc.o.d"
  "/root/repo/src/hoef/estimator.cc" "src/CMakeFiles/pabr.dir/hoef/estimator.cc.o" "gcc" "src/CMakeFiles/pabr.dir/hoef/estimator.cc.o.d"
  "/root/repo/src/mobility/hex_motion.cc" "src/CMakeFiles/pabr.dir/mobility/hex_motion.cc.o" "gcc" "src/CMakeFiles/pabr.dir/mobility/hex_motion.cc.o.d"
  "/root/repo/src/mobility/linear_motion.cc" "src/CMakeFiles/pabr.dir/mobility/linear_motion.cc.o" "gcc" "src/CMakeFiles/pabr.dir/mobility/linear_motion.cc.o.d"
  "/root/repo/src/mobility/speed_model.cc" "src/CMakeFiles/pabr.dir/mobility/speed_model.cc.o" "gcc" "src/CMakeFiles/pabr.dir/mobility/speed_model.cc.o.d"
  "/root/repo/src/reservation/engine.cc" "src/CMakeFiles/pabr.dir/reservation/engine.cc.o" "gcc" "src/CMakeFiles/pabr.dir/reservation/engine.cc.o.d"
  "/root/repo/src/reservation/reservation.cc" "src/CMakeFiles/pabr.dir/reservation/reservation.cc.o" "gcc" "src/CMakeFiles/pabr.dir/reservation/reservation.cc.o.d"
  "/root/repo/src/reservation/test_window.cc" "src/CMakeFiles/pabr.dir/reservation/test_window.cc.o" "gcc" "src/CMakeFiles/pabr.dir/reservation/test_window.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/pabr.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/pabr.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/parallel.cc" "src/CMakeFiles/pabr.dir/sim/parallel.cc.o" "gcc" "src/CMakeFiles/pabr.dir/sim/parallel.cc.o.d"
  "/root/repo/src/sim/random.cc" "src/CMakeFiles/pabr.dir/sim/random.cc.o" "gcc" "src/CMakeFiles/pabr.dir/sim/random.cc.o.d"
  "/root/repo/src/sim/series.cc" "src/CMakeFiles/pabr.dir/sim/series.cc.o" "gcc" "src/CMakeFiles/pabr.dir/sim/series.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/pabr.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/pabr.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/pabr.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/pabr.dir/sim/stats.cc.o.d"
  "/root/repo/src/traffic/profiles.cc" "src/CMakeFiles/pabr.dir/traffic/profiles.cc.o" "gcc" "src/CMakeFiles/pabr.dir/traffic/profiles.cc.o.d"
  "/root/repo/src/traffic/retry.cc" "src/CMakeFiles/pabr.dir/traffic/retry.cc.o" "gcc" "src/CMakeFiles/pabr.dir/traffic/retry.cc.o.d"
  "/root/repo/src/traffic/workload.cc" "src/CMakeFiles/pabr.dir/traffic/workload.cc.o" "gcc" "src/CMakeFiles/pabr.dir/traffic/workload.cc.o.d"
  "/root/repo/src/util/ascii_plot.cc" "src/CMakeFiles/pabr.dir/util/ascii_plot.cc.o" "gcc" "src/CMakeFiles/pabr.dir/util/ascii_plot.cc.o.d"
  "/root/repo/src/util/cli.cc" "src/CMakeFiles/pabr.dir/util/cli.cc.o" "gcc" "src/CMakeFiles/pabr.dir/util/cli.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/pabr.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/pabr.dir/util/csv.cc.o.d"
  "/root/repo/src/util/log.cc" "src/CMakeFiles/pabr.dir/util/log.cc.o" "gcc" "src/CMakeFiles/pabr.dir/util/log.cc.o.d"
  "/root/repo/src/util/mathx.cc" "src/CMakeFiles/pabr.dir/util/mathx.cc.o" "gcc" "src/CMakeFiles/pabr.dir/util/mathx.cc.o.d"
  "/root/repo/src/wired/backbone.cc" "src/CMakeFiles/pabr.dir/wired/backbone.cc.o" "gcc" "src/CMakeFiles/pabr.dir/wired/backbone.cc.o.d"
  "/root/repo/src/wired/link.cc" "src/CMakeFiles/pabr.dir/wired/link.cc.o" "gcc" "src/CMakeFiles/pabr.dir/wired/link.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
