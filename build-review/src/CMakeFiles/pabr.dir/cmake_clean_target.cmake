file(REMOVE_RECURSE
  "libpabr.a"
)
