# Empty compiler generated dependencies file for pabr.
# This may be replaced when dependencies are built.
