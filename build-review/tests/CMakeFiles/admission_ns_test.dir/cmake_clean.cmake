file(REMOVE_RECURSE
  "CMakeFiles/admission_ns_test.dir/admission_ns_test.cc.o"
  "CMakeFiles/admission_ns_test.dir/admission_ns_test.cc.o.d"
  "admission_ns_test"
  "admission_ns_test.pdb"
  "admission_ns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_ns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
