# Empty dependencies file for admission_ns_test.
# This may be replaced when dependencies are built.
