file(REMOVE_RECURSE
  "CMakeFiles/analysis_guard_channel_test.dir/analysis_guard_channel_test.cc.o"
  "CMakeFiles/analysis_guard_channel_test.dir/analysis_guard_channel_test.cc.o.d"
  "analysis_guard_channel_test"
  "analysis_guard_channel_test.pdb"
  "analysis_guard_channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_guard_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
