# Empty dependencies file for analysis_guard_channel_test.
# This may be replaced when dependencies are built.
