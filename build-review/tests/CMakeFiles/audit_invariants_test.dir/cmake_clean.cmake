file(REMOVE_RECURSE
  "CMakeFiles/audit_invariants_test.dir/audit_invariants_test.cc.o"
  "CMakeFiles/audit_invariants_test.dir/audit_invariants_test.cc.o.d"
  "audit_invariants_test"
  "audit_invariants_test.pdb"
  "audit_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
