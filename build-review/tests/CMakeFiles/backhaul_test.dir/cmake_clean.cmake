file(REMOVE_RECURSE
  "CMakeFiles/backhaul_test.dir/backhaul_test.cc.o"
  "CMakeFiles/backhaul_test.dir/backhaul_test.cc.o.d"
  "backhaul_test"
  "backhaul_test.pdb"
  "backhaul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backhaul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
