# Empty dependencies file for backhaul_test.
# This may be replaced when dependencies are built.
