file(REMOVE_RECURSE
  "CMakeFiles/core_adaptive_qos_test.dir/core_adaptive_qos_test.cc.o"
  "CMakeFiles/core_adaptive_qos_test.dir/core_adaptive_qos_test.cc.o.d"
  "core_adaptive_qos_test"
  "core_adaptive_qos_test.pdb"
  "core_adaptive_qos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_adaptive_qos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
