file(REMOVE_RECURSE
  "CMakeFiles/core_cell_test.dir/core_cell_test.cc.o"
  "CMakeFiles/core_cell_test.dir/core_cell_test.cc.o.d"
  "core_cell_test"
  "core_cell_test.pdb"
  "core_cell_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
