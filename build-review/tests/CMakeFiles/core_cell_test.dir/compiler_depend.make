# Empty compiler generated dependencies file for core_cell_test.
# This may be replaced when dependencies are built.
