file(REMOVE_RECURSE
  "CMakeFiles/core_hex_system_test.dir/core_hex_system_test.cc.o"
  "CMakeFiles/core_hex_system_test.dir/core_hex_system_test.cc.o.d"
  "core_hex_system_test"
  "core_hex_system_test.pdb"
  "core_hex_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hex_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
