# Empty compiler generated dependencies file for core_hex_system_test.
# This may be replaced when dependencies are built.
