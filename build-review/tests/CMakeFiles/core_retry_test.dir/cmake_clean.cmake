file(REMOVE_RECURSE
  "CMakeFiles/core_retry_test.dir/core_retry_test.cc.o"
  "CMakeFiles/core_retry_test.dir/core_retry_test.cc.o.d"
  "core_retry_test"
  "core_retry_test.pdb"
  "core_retry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_retry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
