# Empty dependencies file for core_retry_test.
# This may be replaced when dependencies are built.
