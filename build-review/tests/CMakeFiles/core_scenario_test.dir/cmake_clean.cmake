file(REMOVE_RECURSE
  "CMakeFiles/core_scenario_test.dir/core_scenario_test.cc.o"
  "CMakeFiles/core_scenario_test.dir/core_scenario_test.cc.o.d"
  "core_scenario_test"
  "core_scenario_test.pdb"
  "core_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
