# Empty compiler generated dependencies file for core_scenario_test.
# This may be replaced when dependencies are built.
