file(REMOVE_RECURSE
  "CMakeFiles/core_soft_handoff_test.dir/core_soft_handoff_test.cc.o"
  "CMakeFiles/core_soft_handoff_test.dir/core_soft_handoff_test.cc.o.d"
  "core_soft_handoff_test"
  "core_soft_handoff_test.pdb"
  "core_soft_handoff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_soft_handoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
