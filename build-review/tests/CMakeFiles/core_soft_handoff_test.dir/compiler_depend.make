# Empty compiler generated dependencies file for core_soft_handoff_test.
# This may be replaced when dependencies are built.
