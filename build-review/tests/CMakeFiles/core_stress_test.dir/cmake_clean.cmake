file(REMOVE_RECURSE
  "CMakeFiles/core_stress_test.dir/core_stress_test.cc.o"
  "CMakeFiles/core_stress_test.dir/core_stress_test.cc.o.d"
  "core_stress_test"
  "core_stress_test.pdb"
  "core_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
