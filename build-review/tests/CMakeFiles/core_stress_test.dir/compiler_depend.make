# Empty compiler generated dependencies file for core_stress_test.
# This may be replaced when dependencies are built.
