file(REMOVE_RECURSE
  "CMakeFiles/core_wired_test.dir/core_wired_test.cc.o"
  "CMakeFiles/core_wired_test.dir/core_wired_test.cc.o.d"
  "core_wired_test"
  "core_wired_test.pdb"
  "core_wired_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_wired_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
