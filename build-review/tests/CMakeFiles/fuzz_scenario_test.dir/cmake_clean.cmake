file(REMOVE_RECURSE
  "CMakeFiles/fuzz_scenario_test.dir/fuzz_scenario_test.cc.o"
  "CMakeFiles/fuzz_scenario_test.dir/fuzz_scenario_test.cc.o.d"
  "fuzz_scenario_test"
  "fuzz_scenario_test.pdb"
  "fuzz_scenario_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
