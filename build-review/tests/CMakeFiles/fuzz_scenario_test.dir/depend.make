# Empty dependencies file for fuzz_scenario_test.
# This may be replaced when dependencies are built.
