file(REMOVE_RECURSE
  "CMakeFiles/geom_hex_test.dir/geom_hex_test.cc.o"
  "CMakeFiles/geom_hex_test.dir/geom_hex_test.cc.o.d"
  "geom_hex_test"
  "geom_hex_test.pdb"
  "geom_hex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_hex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
