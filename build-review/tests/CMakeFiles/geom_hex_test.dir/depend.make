# Empty dependencies file for geom_hex_test.
# This may be replaced when dependencies are built.
