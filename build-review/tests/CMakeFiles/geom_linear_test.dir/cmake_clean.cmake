file(REMOVE_RECURSE
  "CMakeFiles/geom_linear_test.dir/geom_linear_test.cc.o"
  "CMakeFiles/geom_linear_test.dir/geom_linear_test.cc.o.d"
  "geom_linear_test"
  "geom_linear_test.pdb"
  "geom_linear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
