file(REMOVE_RECURSE
  "CMakeFiles/hoef_calendar_test.dir/hoef_calendar_test.cc.o"
  "CMakeFiles/hoef_calendar_test.dir/hoef_calendar_test.cc.o.d"
  "hoef_calendar_test"
  "hoef_calendar_test.pdb"
  "hoef_calendar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoef_calendar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
