# Empty compiler generated dependencies file for hoef_calendar_test.
# This may be replaced when dependencies are built.
