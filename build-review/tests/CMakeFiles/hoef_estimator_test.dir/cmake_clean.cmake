file(REMOVE_RECURSE
  "CMakeFiles/hoef_estimator_test.dir/hoef_estimator_test.cc.o"
  "CMakeFiles/hoef_estimator_test.dir/hoef_estimator_test.cc.o.d"
  "hoef_estimator_test"
  "hoef_estimator_test.pdb"
  "hoef_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoef_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
