# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hoef_estimator_test.
