# Empty dependencies file for hoef_estimator_test.
# This may be replaced when dependencies are built.
