file(REMOVE_RECURSE
  "CMakeFiles/hoef_property_test.dir/hoef_property_test.cc.o"
  "CMakeFiles/hoef_property_test.dir/hoef_property_test.cc.o.d"
  "hoef_property_test"
  "hoef_property_test.pdb"
  "hoef_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoef_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
