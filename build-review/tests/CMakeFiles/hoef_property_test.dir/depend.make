# Empty dependencies file for hoef_property_test.
# This may be replaced when dependencies are built.
