file(REMOVE_RECURSE
  "CMakeFiles/mobility_hex_test.dir/mobility_hex_test.cc.o"
  "CMakeFiles/mobility_hex_test.dir/mobility_hex_test.cc.o.d"
  "mobility_hex_test"
  "mobility_hex_test.pdb"
  "mobility_hex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_hex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
