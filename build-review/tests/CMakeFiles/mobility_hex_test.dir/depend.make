# Empty dependencies file for mobility_hex_test.
# This may be replaced when dependencies are built.
