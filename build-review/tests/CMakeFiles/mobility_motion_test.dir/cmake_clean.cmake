file(REMOVE_RECURSE
  "CMakeFiles/mobility_motion_test.dir/mobility_motion_test.cc.o"
  "CMakeFiles/mobility_motion_test.dir/mobility_motion_test.cc.o.d"
  "mobility_motion_test"
  "mobility_motion_test.pdb"
  "mobility_motion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_motion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
