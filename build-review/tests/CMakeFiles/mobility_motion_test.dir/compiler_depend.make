# Empty compiler generated dependencies file for mobility_motion_test.
# This may be replaced when dependencies are built.
