file(REMOVE_RECURSE
  "CMakeFiles/mobility_speed_test.dir/mobility_speed_test.cc.o"
  "CMakeFiles/mobility_speed_test.dir/mobility_speed_test.cc.o.d"
  "mobility_speed_test"
  "mobility_speed_test.pdb"
  "mobility_speed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_speed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
