file(REMOVE_RECURSE
  "CMakeFiles/reservation_incremental_test.dir/reservation_incremental_test.cc.o"
  "CMakeFiles/reservation_incremental_test.dir/reservation_incremental_test.cc.o.d"
  "reservation_incremental_test"
  "reservation_incremental_test.pdb"
  "reservation_incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reservation_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
