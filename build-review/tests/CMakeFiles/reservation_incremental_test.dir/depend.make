# Empty dependencies file for reservation_incremental_test.
# This may be replaced when dependencies are built.
