file(REMOVE_RECURSE
  "CMakeFiles/sim_series_test.dir/sim_series_test.cc.o"
  "CMakeFiles/sim_series_test.dir/sim_series_test.cc.o.d"
  "sim_series_test"
  "sim_series_test.pdb"
  "sim_series_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_series_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
