# Empty dependencies file for sim_series_test.
# This may be replaced when dependencies are built.
