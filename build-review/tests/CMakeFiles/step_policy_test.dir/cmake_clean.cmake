file(REMOVE_RECURSE
  "CMakeFiles/step_policy_test.dir/step_policy_test.cc.o"
  "CMakeFiles/step_policy_test.dir/step_policy_test.cc.o.d"
  "step_policy_test"
  "step_policy_test.pdb"
  "step_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/step_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
