# Empty dependencies file for step_policy_test.
# This may be replaced when dependencies are built.
