file(REMOVE_RECURSE
  "CMakeFiles/test_window_test.dir/test_window_test.cc.o"
  "CMakeFiles/test_window_test.dir/test_window_test.cc.o.d"
  "test_window_test"
  "test_window_test.pdb"
  "test_window_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
