# Empty dependencies file for test_window_test.
# This may be replaced when dependencies are built.
