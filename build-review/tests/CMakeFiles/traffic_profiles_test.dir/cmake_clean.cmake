file(REMOVE_RECURSE
  "CMakeFiles/traffic_profiles_test.dir/traffic_profiles_test.cc.o"
  "CMakeFiles/traffic_profiles_test.dir/traffic_profiles_test.cc.o.d"
  "traffic_profiles_test"
  "traffic_profiles_test.pdb"
  "traffic_profiles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_profiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
