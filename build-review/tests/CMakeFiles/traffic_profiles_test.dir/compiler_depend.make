# Empty compiler generated dependencies file for traffic_profiles_test.
# This may be replaced when dependencies are built.
