file(REMOVE_RECURSE
  "CMakeFiles/traffic_retry_test.dir/traffic_retry_test.cc.o"
  "CMakeFiles/traffic_retry_test.dir/traffic_retry_test.cc.o.d"
  "traffic_retry_test"
  "traffic_retry_test.pdb"
  "traffic_retry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_retry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
