# Empty dependencies file for traffic_retry_test.
# This may be replaced when dependencies are built.
