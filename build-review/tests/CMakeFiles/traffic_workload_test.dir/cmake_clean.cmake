file(REMOVE_RECURSE
  "CMakeFiles/traffic_workload_test.dir/traffic_workload_test.cc.o"
  "CMakeFiles/traffic_workload_test.dir/traffic_workload_test.cc.o.d"
  "traffic_workload_test"
  "traffic_workload_test.pdb"
  "traffic_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
