# Empty dependencies file for traffic_workload_test.
# This may be replaced when dependencies are built.
