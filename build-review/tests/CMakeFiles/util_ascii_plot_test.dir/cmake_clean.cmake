file(REMOVE_RECURSE
  "CMakeFiles/util_ascii_plot_test.dir/util_ascii_plot_test.cc.o"
  "CMakeFiles/util_ascii_plot_test.dir/util_ascii_plot_test.cc.o.d"
  "util_ascii_plot_test"
  "util_ascii_plot_test.pdb"
  "util_ascii_plot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_ascii_plot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
