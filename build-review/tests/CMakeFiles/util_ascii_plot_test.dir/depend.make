# Empty dependencies file for util_ascii_plot_test.
# This may be replaced when dependencies are built.
