file(REMOVE_RECURSE
  "CMakeFiles/util_mathx_test.dir/util_mathx_test.cc.o"
  "CMakeFiles/util_mathx_test.dir/util_mathx_test.cc.o.d"
  "util_mathx_test"
  "util_mathx_test.pdb"
  "util_mathx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_mathx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
