file(REMOVE_RECURSE
  "CMakeFiles/wired_backbone_test.dir/wired_backbone_test.cc.o"
  "CMakeFiles/wired_backbone_test.dir/wired_backbone_test.cc.o.d"
  "wired_backbone_test"
  "wired_backbone_test.pdb"
  "wired_backbone_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wired_backbone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
