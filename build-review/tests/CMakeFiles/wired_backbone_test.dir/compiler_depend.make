# Empty compiler generated dependencies file for wired_backbone_test.
# This may be replaced when dependencies are built.
