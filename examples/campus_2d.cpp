// campus_2d — the paper's stated future work ("evaluate our scheme in
// more realistic and general environments with two-dimensional cellular
// structures", §7) on a pedestrian campus: a hexagonal micro-cell grid
// (core::HexCellularSystem) where slow walkers meander between cells
// with direction persistence, and the same estimation/reservation/
// admission machinery as the 1-D highway keeps hand-off drops at the
// 0.01 target.
//
//   $ ./campus_2d [--rows 4] [--cols 6] [--load 40] [--minutes 180]
#include <iostream>

#include "core/experiment.h"
#include "core/hex_system.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace pabr;

  int rows = 4;
  int cols = 6;
  double load = 40.0;
  int minutes = 180;
  unsigned long long seed = 1;
  cli::Parser cli("campus_2d",
                  "2-D hexagonal campus (the paper's future-work case)");
  cli.add_int("rows", &rows, "hex grid rows");
  cli.add_int("cols", &cols, "hex grid columns (even, torus)");
  cli.add_double("load", &load, "offered load per cell (BU, Eq. 7)");
  cli.add_int("minutes", &minutes, "simulated minutes (1/3 warm-up)");
  cli.add_uint64("seed", &seed, "simulation seed");
  if (!cli.parse(argc, argv)) return 1;

  std::cout << "campus_2d — " << rows << "x" << cols << " hex torus, "
            << load << " BU/cell offered, pedestrians 3-6 km/h on 100 m "
            << "micro-cells\n\n";

  core::TablePrinter table({"scheme", "P_CB", "P_HD", "hand-offs",
                            "N_calc"},
                           {13, 10, 10, 10, 7});
  table.print_header();
  for (const auto kind :
       {admission::PolicyKind::kStatic, admission::PolicyKind::kAc3}) {
    core::HexSystemConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.capacity_bu = 50.0;  // micro-cells carry less than highway macros
    cfg.policy = kind;
    cfg.static_g = 5.0;
    cfg.voice_ratio = 0.8;
    cfg.set_offered_load(load);
    // Pedestrians: 3-6 km/h over 100 m cells, meandering.
    cfg.speed_min_kmh = 3.0;
    cfg.speed_max_kmh = 6.0;
    cfg.motion.cell_diameter_km = 0.1;
    cfg.motion.persistence = 0.7;
    cfg.motion.jitter = 0.25;
    cfg.seed = seed;

    core::HexCellularSystem sys(cfg);
    // Warm up a third of the run (cold estimators over-drop, exactly like
    // the paper's Fig. 11 start-up transient), then measure.
    sys.run_for(minutes * 20.0);
    sys.reset_metrics();
    sys.run_for(minutes * 40.0);

    const auto s = sys.system_status();
    table.print_row(
        {kind == admission::PolicyKind::kStatic ? "Static(G=5)" : "AC3",
         core::TablePrinter::prob(s.pcb), core::TablePrinter::prob(s.phd),
         core::TablePrinter::integer(s.handoffs),
         core::TablePrinter::fixed(s.n_calc, 2)});
  }
  table.print_rule();
  std::cout << "\nThe predictive/adaptive scheme transfers to 2-D: the "
               "estimators learn the\nhex-grid hand-off footprints and AC3 "
               "keeps P_HD at/below the 0.01 target.\n";
  return 0;
}
