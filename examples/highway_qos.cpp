// highway_qos — the paper's motivating scenario as an application: a
// 10-cell highway segment where an operator must pick an admission scheme
// and verify the hand-off QoS contract (P_HD <= 0.01) before deployment.
//
// The example runs the SAME traffic through all four schemes (static G=10,
// AC1, AC2, AC3), prints a side-by-side QoS/complexity report, and renders
// a small per-cell bandwidth picture for the chosen winner.
//
//   $ ./highway_qos [--load 260] [--voice-ratio 0.8] [--low-mobility]
#include <iostream>

#include "core/experiment.h"
#include "core/scenario.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace pabr;

  double load = 260.0;
  double voice_ratio = 0.8;
  bool low_mobility = false;
  unsigned long long seed = 1;
  cli::Parser cli("highway_qos",
                  "compare all admission schemes on one highway workload");
  cli.add_double("load", &load, "offered load per cell (BU, Eq. 7)");
  cli.add_double("voice-ratio", &voice_ratio, "fraction of voice traffic");
  cli.add_bool("low-mobility", &low_mobility, "40-60 km/h instead of 80-120");
  cli.add_uint64("seed", &seed, "simulation seed");
  if (!cli.parse(argc, argv)) return 1;

  std::cout << "highway_qos — offered load " << load << " BU/cell, R_vo "
            << voice_ratio << ", "
            << (low_mobility ? "low" : "high") << " mobility\n"
            << "QoS contract: P_HD <= 0.01\n\n";

  core::RunPlan plan;
  plan.warmup_s = 1500.0;
  plan.measure_s = 6000.0;

  struct Row {
    const char* name;
    admission::PolicyKind kind;
    core::RunResult result;
  };
  Row rows[] = {
      {"Static(G=10)", admission::PolicyKind::kStatic, {}},
      {"AC1", admission::PolicyKind::kAc1, {}},
      {"AC2", admission::PolicyKind::kAc2, {}},
      {"AC3", admission::PolicyKind::kAc3, {}},
  };

  for (Row& row : rows) {
    core::StationaryParams p;
    p.offered_load = load;
    p.voice_ratio = voice_ratio;
    p.mobility = low_mobility ? core::Mobility::kLow : core::Mobility::kHigh;
    p.policy = row.kind;
    p.static_g = 10.0;
    p.seed = seed;
    row.result = core::run_system(core::stationary_config(p), plan);
  }

  core::TablePrinter table(
      {"scheme", "P_CB", "P_HD", "QoS met", "N_calc", "avg B_r"},
      {13, 10, 10, 8, 7, 8});
  table.print_header();
  const Row* best = nullptr;
  for (const Row& row : rows) {
    const auto& s = row.result.status;
    const bool met = s.phd <= 0.0125;  // contract + short-run slack
    table.print_row({row.name, core::TablePrinter::prob(s.pcb),
                     core::TablePrinter::prob(s.phd), met ? "yes" : "NO",
                     core::TablePrinter::fixed(s.n_calc, 2),
                     core::TablePrinter::fixed(s.br_avg, 2)});
    // Winner: meets the contract with the lowest blocking, then the lowest
    // signalling complexity.
    if (met && (best == nullptr || s.pcb < best->result.status.pcb - 1e-3 ||
                (s.pcb < best->result.status.pcb + 1e-3 &&
                 s.n_calc < best->result.status.n_calc))) {
      best = &row;
    }
  }
  table.print_rule();

  if (best == nullptr) {
    std::cout << "\nNo scheme met the hand-off QoS contract at this load — "
                 "the cell layer needs more capacity (cell splitting).\n";
    return 0;
  }

  std::cout << "\nRecommended scheme: " << best->name << "\n\n"
            << "Per-cell bandwidth picture (" << best->name << "):\n";
  core::TablePrinter cells({"cell", "P_CB", "P_HD", "avg B_u", "avg B_r"},
                           {5, 10, 10, 8, 8});
  cells.print_header();
  for (const auto& c : best->result.cells) {
    cells.print_row({core::TablePrinter::integer(
                         static_cast<std::uint64_t>(c.cell)),
                     core::TablePrinter::prob(c.pcb),
                     core::TablePrinter::prob(c.phd),
                     core::TablePrinter::fixed(c.bu_avg, 1),
                     core::TablePrinter::fixed(c.br_avg, 1)});
  }
  cells.print_rule();
  return 0;
}
