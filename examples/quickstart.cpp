// Quickstart: build the paper's 10-cell ring, run AC3 under a moderate
// load, and print the headline QoS metrics.
//
//   $ ./quickstart [--load 200] [--voice-ratio 1.0] [--policy ac3]
//
// The interesting outcome: P_HD stays at or below the 0.01 target even
// when the cell is heavily over-loaded, while new-connection blocking
// (P_CB) absorbs the pressure.
#include <iostream>

#include "core/experiment.h"
#include "core/scenario.h"
#include "util/cli.h"

namespace {

pabr::admission::PolicyKind parse_policy(const std::string& name) {
  if (name == "ac1") return pabr::admission::PolicyKind::kAc1;
  if (name == "ac2") return pabr::admission::PolicyKind::kAc2;
  if (name == "ac3") return pabr::admission::PolicyKind::kAc3;
  if (name == "static") return pabr::admission::PolicyKind::kStatic;
  std::cerr << "unknown policy '" << name << "', using ac3\n";
  return pabr::admission::PolicyKind::kAc3;
}

}  // namespace

int main(int argc, char** argv) {
  double load = 200.0;
  double voice_ratio = 1.0;
  std::string policy = "ac3";
  unsigned long long seed = 1;

  pabr::cli::Parser cli("quickstart",
                        "minimal PABR simulation on the 10-cell ring");
  cli.add_double("load", &load, "offered load per cell in BUs (Eq. 7)");
  cli.add_double("voice-ratio", &voice_ratio,
                 "fraction of 1-BU voice connections (rest are 4-BU video)");
  cli.add_string("policy", &policy, "ac1 | ac2 | ac3 | static");
  cli.add_uint64("seed", &seed, "simulation seed");
  if (!cli.parse(argc, argv)) return 1;

  pabr::core::StationaryParams params;
  params.offered_load = load;
  params.voice_ratio = voice_ratio;
  params.mobility = pabr::core::Mobility::kHigh;
  params.policy = parse_policy(policy);
  params.seed = seed;

  pabr::core::RunPlan plan;
  plan.warmup_s = 1000.0;
  plan.measure_s = 4000.0;

  std::cout << "PABR quickstart — " << policy << ", offered load " << load
            << " BU/cell, R_vo " << voice_ratio << "\n";
  const auto result =
      pabr::core::run_system(pabr::core::stationary_config(params), plan);

  const auto& s = result.status;
  std::cout << "  new-connection requests : " << s.requests << "\n"
            << "  P_CB (blocking prob.)   : " << s.pcb << "\n"
            << "  hand-off attempts       : " << s.handoffs << "\n"
            << "  P_HD (dropping prob.)   : " << s.phd
            << "   (target 0.01)\n"
            << "  avg target reservation  : " << s.br_avg << " BU\n"
            << "  avg bandwidth in use    : " << s.bu_avg << " BU\n"
            << "  N_calc per admission    : " << s.n_calc << "\n"
            << "  events simulated        : " << result.events << " in "
            << result.wall_seconds << " s\n";
  return 0;
}
