// rush_hour — the §5.3 time-varying scenario as an application: a day on
// the highway with morning/lunch/evening rush hours, blocked users who
// keep redialling (probability 1 - 0.1*N_ret after 5 s), and hand-off
// estimation windows (T_int = 1 h) that learn the daily pattern.
//
// The example prints an hour-by-hour operations log: traffic conditions,
// the positive-feedback inflation of the actual offered load, and whether
// the hand-off QoS target held through each peak.
//
//   $ ./rush_hour [--policy ac3] [--hours 24] [--seed 1]
#include <cmath>
#include <iostream>

#include "core/experiment.h"
#include "core/scenario.h"
#include "core/system.h"
#include "traffic/profiles.h"
#include "util/cli.h"

namespace {

pabr::admission::PolicyKind parse_policy(const std::string& name) {
  using pabr::admission::PolicyKind;
  if (name == "ac1") return PolicyKind::kAc1;
  if (name == "ac2") return PolicyKind::kAc2;
  if (name == "static") return PolicyKind::kStatic;
  return PolicyKind::kAc3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pabr;

  std::string policy = "ac3";
  int hours = 24;
  unsigned long long seed = 1;
  cli::Parser cli("rush_hour", "a day of time-varying traffic (§5.3)");
  cli.add_string("policy", &policy, "ac1 | ac2 | ac3 | static");
  cli.add_int("hours", &hours, "simulated hours (24 = one day)");
  cli.add_uint64("seed", &seed, "simulation seed");
  if (!cli.parse(argc, argv)) return 1;

  core::TimeVaryingParams p;
  p.policy = parse_policy(policy);
  p.seed = seed;
  core::CellularSystem sys(core::time_varying_config(p));

  const auto load_profile = traffic::paper_load_profile();
  const auto speed_profile = traffic::paper_speed_profile();

  std::cout << "rush_hour — " << policy << ", " << hours
            << " h of the paper's daily profile, retries enabled\n\n";
  core::TablePrinter table(
      {"hour", "speed", "L_o", "L_a", "P_CB", "P_HD", "note"},
      {5, 7, 6, 7, 10, 10, 22});
  table.print_header();

  std::uint64_t req0 = 0, blk0 = 0, ho0 = 0, dr0 = 0;
  for (int h = 0; h < hours; ++h) {
    sys.run_for(sim::kHour);
    const auto s = sys.system_status();
    const std::uint64_t req = s.requests - req0;
    const std::uint64_t blk = s.blocks - blk0;
    const std::uint64_t ho = s.handoffs - ho0;
    const std::uint64_t dr = s.drops - dr0;
    req0 = s.requests;
    blk0 = s.blocks;
    ho0 = s.handoffs;
    dr0 = s.drops;

    const double pcb =
        req == 0 ? 0.0 : static_cast<double>(blk) / static_cast<double>(req);
    const double phd =
        ho == 0 ? 0.0 : static_cast<double>(dr) / static_cast<double>(ho);
    const double mid_hour = std::fmod(static_cast<double>(h) + 0.5, 24.0);
    const double lo = load_profile.at_hour(mid_hour);
    const auto hourly = sys.offered_load().hourly();
    const double la = static_cast<std::size_t>(h) < hourly.size()
                          ? hourly[static_cast<std::size_t>(h)].load
                          : 0.0;

    std::string note;
    if (lo >= 120.0) {
      note = "RUSH HOUR";
      if (la > lo * 1.05) note += " (+retry feedback)";
    }
    if (phd > 0.01) note += " P_HD over target!";

    table.print_row({core::TablePrinter::fixed(static_cast<double>(h), 0),
                     core::TablePrinter::fixed(speed_profile.at_hour(mid_hour), 0),
                     core::TablePrinter::fixed(lo, 0),
                     core::TablePrinter::fixed(la, 1),
                     core::TablePrinter::prob(pcb),
                     core::TablePrinter::prob(phd), note});
  }
  table.print_rule();

  const auto s = sys.system_status();
  std::cout << "\nwhole-run P_CB = " << core::TablePrinter::prob(s.pcb)
            << ", P_HD = " << core::TablePrinter::prob(s.phd)
            << " (target 0.01), N_calc = "
            << core::TablePrinter::fixed(s.n_calc, 2) << "\n";
  return 0;
}
