// week_planner — showcases the §3.1 calendar extension: weekday and
// weekend hand-off behaviour live in separate quadruplet sets (weekday
// windows repeat every T_day, weekend windows every T_week), so the same
// wall-clock hour yields different predictions on a Tuesday and a
// Saturday.
//
// The example synthesizes two weeks of observations for one cell of a
// commuter corridor:
//   * weekdays: a morning rush of eastbound commuters crossing fast;
//   * weekends: sparse strollers in both directions, lingering longer;
// then asks the estimator the operational question a BS faces: "a mobile
// just arrived from the west and has been here 20 s — how much bandwidth
// will it demand from my eastern neighbour within T_est?"
//
//   $ ./week_planner [--weeks 2]
#include <iostream>

#include "core/experiment.h"
#include "hoef/calendar.h"
#include "sim/random.h"
#include "util/cli.h"

namespace {

using namespace pabr;

constexpr geom::CellId kCell = 1;   // the observed cell
constexpr geom::CellId kWest = 0;   // previous cell of commuters
constexpr geom::CellId kEast = 2;   // rush-hour destination

/// Synthesizes one day of hand-off event quadruplets, pre-sorted by event
/// time (the estimator requires simulation order).
std::vector<hoef::Quadruplet> synthesize_day(
    const hoef::CalendarEstimator& est, int day, std::uint64_t seed) {
  std::vector<hoef::Quadruplet> events;
  sim::Rng rng(seed ^ (0x9E37ULL * static_cast<unsigned>(day + 1)));
  const double day_start = day * sim::kDay;
  const bool weekend = est.is_weekend(day_start + sim::kHour);

  if (!weekend) {
    // Weekday: a 7:30-9:30 rush of eastbound commuters, ~35 s transits,
    // plus a light evening counter-flow westward.
    for (int i = 0; i < 60; ++i) {
      events.push_back({day_start + rng.uniform(7.5, 9.5) * sim::kHour,
                        kWest, kEast, rng.uniform(30.0, 40.0)});
    }
    for (int i = 0; i < 20; ++i) {
      events.push_back({day_start + rng.uniform(17.0, 19.0) * sim::kHour,
                        kEast, kWest, rng.uniform(30.0, 40.0)});
    }
  } else {
    // Weekend: sparse strollers, undecided direction, 2-6 min sojourns.
    for (int i = 0; i < 15; ++i) {
      events.push_back({day_start + rng.uniform(8.0, 20.0) * sim::kHour,
                        kWest, rng.bernoulli(0.5) ? kEast : kWest,
                        rng.uniform(120.0, 360.0)});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const hoef::Quadruplet& a, const hoef::Quadruplet& b) {
              return a.event_time < b.event_time;
            });
  return events;
}

}  // namespace

int main(int argc, char** argv) {
  int weeks = 2;
  unsigned long long seed = 1;
  cli::Parser cli("week_planner",
                  "weekday vs weekend hand-off estimation (§3.1 calendar)");
  cli.add_int("weeks", &weeks, "weeks of history to synthesize");
  cli.add_uint64("seed", &seed, "random seed");
  if (!cli.parse(argc, argv)) return 1;

  hoef::CalendarConfig cfg;
  cfg.t_int = 1.5 * sim::kHour;  // +/- 90 min around the same time of day
  cfg.n_win_days = 5;            // look back a work week
  cfg.weekday_weights = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  cfg.n_win_weeks = 3;
  cfg.weekend_weights = {1.0, 1.0, 1.0, 1.0};
  hoef::CalendarEstimator est(kCell, cfg);

  for (int day = 0; day < weeks * 7; ++day) {
    for (const auto& q : synthesize_day(est, day, seed)) est.record(q);
  }

  std::cout << "week_planner — " << weeks << " weeks of history, "
            << est.cached_events() << " quadruplets cached ("
            << est.weekday_set().cached_events() << " weekday / "
            << est.weekend_set().cached_events() << " weekend)\n\n";

  // The operational question at various (day, hour) points: probability
  // that a mobile from the west, extant sojourn 20 s, hands off east
  // within T_est = 30 s.
  struct Query {
    const char* label;
    int day;     // since start of a Monday
    double hour;
  };
  const Query queries[] = {
      {"Mon 08:30 (rush)", 14, 8.5},
      {"Mon 13:00 (midday)", 14, 13.0},
      {"Wed 08:30 (rush)", 16, 8.5},
      {"Sat 08:30", 19, 8.5},
      {"Sat 14:00", 19, 14.0},
      {"Sun 14:00", 20, 14.0},
  };

  core::TablePrinter table(
      {"when", "day class", "p_h(east, 30s)", "T_soj,max"},
      {20, 10, 15, 10});
  table.print_header();
  for (const auto& q : queries) {
    const sim::Time t = q.day * sim::kDay + q.hour * sim::kHour;
    const double ph = est.handoff_probability(t, kWest, kEast, 20.0, 30.0);
    table.print_row({q.label, est.is_weekend(t) ? "weekend" : "weekday",
                     core::TablePrinter::fixed(ph, 3),
                     core::TablePrinter::fixed(est.max_sojourn(t), 0)});
  }
  table.print_rule();

  std::cout << "\nWeekday rush hours predict a near-certain fast eastbound "
               "hand-off (reserve\nahead!); the same wall-clock hour on a "
               "weekend predicts a slow, undecided\nmobile — the BS "
               "reserves far less. One estimator, two learned calendars.\n";
  return 0;
}
