#!/usr/bin/env python3
"""Compare a fresh bench --json report against a checked-in baseline.

Guards the DESIGN.md §11 hot-path optimizations against silent
regression: rows are matched by their first column (the path/policy
label) and every timing column — a name ending in ``_ns`` or
``ns_per_op`` — must not exceed baseline * (1 + threshold). Throughput
columns — a name ending in ``_per_s``, e.g. the sharded scale sweep's
``events_per_s`` — gate in the opposite direction: they must not fall
below baseline * (1 - threshold). All other columns are reported but
never gate unless named with ``--exact``.

Beyond the per-row cells, the report-level ``counters`` block gates
too: counters ending in ``_per_s`` / ``_ns`` gate with the threshold
like their column counterparts, counters ending in ``_seconds`` are
host wall time and only informational, and every OTHER counter (e.g.
``events_total``, ``digests_match``) is a determinism counter that
must match the baseline EXACTLY — the sharded scale sweep is bitwise
reproducible, so any drift in its event count or a digest mismatch is
a bug, not noise. ``--exact COL`` (repeatable) applies the same
exact-equality rule to a named row column such as ``digest`` or
``match``.

Usage:
    scripts/bench_compare.py BASELINE.json FRESH.json [--threshold 0.15]
        [--exact COL ...]

Exit status: 0 when every timing cell is within the threshold (faster is
always fine), 1 on any regression or structural mismatch (missing row,
missing timing column, exact-counter drift), 2 on unreadable input.

CI runs reduced-length benches on shared runners, so the default 15%
threshold is deliberately loose: it catches an accidentally-restored
O(n) rescan or per-call allocation, not scheduler jitter.
"""

import argparse
import json
import sys


def is_timing_column(name: str) -> bool:
    return name.endswith("_ns") or name.endswith("ns_per_op")


def is_throughput_column(name: str) -> bool:
    return name.endswith("_per_s")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    for key in ("columns", "rows"):
        if key not in report:
            sys.exit(f"bench_compare: {path} has no '{key}' field")
    return report


def rows_by_label(report: dict) -> dict:
    return {row[0]: row for row in report["rows"]}


def compare_counters(base: dict, fresh: dict, threshold: float) -> int:
    """Gate the report-level counters block; returns failure count."""
    base_counters = base.get("counters", {})
    if not base_counters:
        return 0
    fresh_counters = fresh.get("counters", {})
    failures = 0
    for name, old in base_counters.items():
        if name not in fresh_counters:
            print(f"  FAIL counters.{name}: missing from fresh report")
            failures += 1
            continue
        new = fresh_counters[name]
        if name.endswith("_seconds"):
            print(f"  info counters.{name:18} {old:12.1f} -> {new:12.1f} s"
                  f"  (host wall time, not gated)")
            continue
        if is_throughput_column(name) or is_timing_column(name):
            if float(old) <= 0.0:
                continue
            ratio = float(new) / float(old)
            if is_timing_column(name):
                bad = ratio > 1.0 + threshold
            else:
                bad = ratio < 1.0 - threshold
            verdict = "FAIL" if bad else "ok"
            print(f"  {verdict:4} counters.{name:18} "
                  f"{old:12.1f} -> {new:12.1f}  ({ratio - 1.0:+.1%})")
            failures += 1 if bad else 0
            continue
        # Determinism counter: exact equality, no tolerance.
        bad = float(new) != float(old)
        verdict = "FAIL" if bad else "ok"
        print(f"  {verdict:4} counters.{name:18} "
              f"{old:12g} == {new:12g}  (exact)")
        failures += 1 if bad else 0
    return failures


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="checked-in BENCH_*.json")
    ap.add_argument("fresh", help="freshly generated report")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional slowdown per timing cell "
                         "(default 0.15 = +15%%)")
    ap.add_argument("--exact", action="append", default=[], metavar="COL",
                    help="row column that must equal the baseline exactly "
                         "(repeatable; e.g. --exact digest --exact match)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    base_cols = base["columns"]
    fresh_cols = fresh["columns"]
    timing = [c for c in base_cols if is_timing_column(c)]
    throughput = [c for c in base_cols if is_throughput_column(c)]
    exact = list(args.exact)
    if not timing and not throughput:
        sys.exit(f"bench_compare: no timing or throughput columns in "
                 f"{args.baseline}")
    unknown_exact = [c for c in exact if c not in base_cols]
    if unknown_exact:
        sys.exit(f"bench_compare: --exact column(s) not in baseline: "
                 f"{unknown_exact}")
    missing_cols = [c for c in timing + throughput + exact
                    if c not in fresh_cols]
    if missing_cols:
        print(f"FAIL: fresh report lacks timing columns: {missing_cols}")
        return 1

    fresh_rows = rows_by_label(fresh)
    bench = base.get("bench", "?")
    failures = 0
    print(f"bench_compare: {bench}  (threshold +{args.threshold:.0%})")
    for row in base["rows"]:
        label = row[0]
        if label not in fresh_rows:
            print(f"  FAIL {label}: row missing from fresh report")
            failures += 1
            continue
        for col in timing + throughput:
            old = float(row[base_cols.index(col)])
            new = float(fresh_rows[label][fresh_cols.index(col)])
            if old <= 0.0:
                continue  # degenerate baseline cell: nothing to gate on
            ratio = new / old
            if col in timing:  # lower is better
                bad = ratio > 1.0 + args.threshold
                unit = "ns"
            else:  # throughput: higher is better
                bad = ratio < 1.0 - args.threshold
                unit = "/s"
            verdict = "FAIL" if bad else "ok"
            print(f"  {verdict:4} {label:24} {col:16} "
                  f"{old:12.1f} -> {new:12.1f} {unit}  ({ratio - 1.0:+.1%})")
            if bad:
                failures += 1
        for col in exact:
            old = row[base_cols.index(col)]
            new = fresh_rows[label][fresh_cols.index(col)]
            bad = str(new) != str(old)
            verdict = "FAIL" if bad else "ok"
            print(f"  {verdict:4} {label:24} {col:16} "
                  f"{old:>12} == {new:>12}  (exact)")
            if bad:
                failures += 1
    extra = set(fresh_rows) - {r[0] for r in base["rows"]}
    if extra:
        print(f"  note: rows only in fresh report (not gated): "
              f"{sorted(extra)}")
    failures += compare_counters(base, fresh, args.threshold)
    if failures:
        print(f"bench_compare: {failures} regression(s) beyond "
              f"+{args.threshold:.0%} — regenerate the baseline if the "
              f"slowdown is intended")
        return 1
    print("bench_compare: all timing cells within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
