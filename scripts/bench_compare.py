#!/usr/bin/env python3
"""Compare a fresh bench --json report against a checked-in baseline.

Guards the DESIGN.md §11 hot-path optimizations against silent
regression: rows are matched by their first column (the path/policy
label) and every timing column — a name ending in ``_ns`` or
``ns_per_op`` — must not exceed baseline * (1 + threshold). Throughput
columns — a name ending in ``_per_s``, e.g. the sharded scale sweep's
``events_per_s`` — gate in the opposite direction: they must not fall
below baseline * (1 - threshold). All other columns are reported but
never gate unless named with ``--exact``.

Beyond the per-row cells, the report-level ``counters`` block gates
too: counters ending in ``_per_s`` / ``_ns`` gate with the threshold
like their column counterparts, counters ending in ``_seconds`` are
host wall time and only informational, and every OTHER counter (e.g.
``events_total``, ``digests_match``) is a determinism counter that
must match the baseline EXACTLY — the sharded scale sweep is bitwise
reproducible, so any drift in its event count or a digest mismatch is
a bug, not noise. ``--exact COL`` (repeatable) applies the same
exact-equality rule to a named row column such as ``digest`` or
``match``.

A timing/throughput cell whose BASELINE value is <= 0 cannot express a
ratio, so it is not gated — but it is printed as an explicit ``skip``
line (a silently ignored cell once hid a whole mis-captured baseline
column of zeros). Determinism counters are never skipped: a 0 baseline
against a nonzero fresh value is a hard FAIL like any other drift.
Malformed (non-numeric) cells in either report are a FAIL, not a crash.

Usage:
    scripts/bench_compare.py BASELINE.json FRESH.json [--threshold 0.15]
        [--exact COL ...]
    scripts/bench_compare.py --self-test

Exit status: 0 when every timing cell is within the threshold (faster is
always fine), 1 on any regression or structural mismatch (missing row,
missing timing column, exact-counter drift, malformed cell), 2 on
unreadable input.

CI runs reduced-length benches on shared runners, so the default 15%
threshold is deliberately loose: it catches an accidentally-restored
O(n) rescan or per-call allocation, not scheduler jitter.
"""

import argparse
import contextlib
import io
import json
import sys


def is_timing_column(name: str) -> bool:
    return name.endswith("_ns") or name.endswith("ns_per_op")


def is_throughput_column(name: str) -> bool:
    return name.endswith("_per_s")


def to_float(value):
    """float(value), or None when the cell is not a number."""
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    for key in ("columns", "rows"):
        if key not in report:
            print(f"bench_compare: {path} has no '{key}' field",
                  file=sys.stderr)
            sys.exit(2)
    return report


def rows_by_label(report: dict) -> dict:
    return {row[0]: row for row in report["rows"]}


def compare_counters(base: dict, fresh: dict, threshold: float) -> int:
    """Gate the report-level counters block; returns failure count."""
    base_counters = base.get("counters", {})
    if not base_counters:
        return 0
    fresh_counters = fresh.get("counters", {})
    failures = 0
    for name, old in base_counters.items():
        if name not in fresh_counters:
            print(f"  FAIL counters.{name}: missing from fresh report")
            failures += 1
            continue
        new = fresh_counters[name]
        old_f = to_float(old)
        new_f = to_float(new)
        if old_f is None or new_f is None:
            print(f"  FAIL counters.{name}: malformed value "
                  f"({old!r} -> {new!r})")
            failures += 1
            continue
        if name.endswith("_seconds"):
            print(f"  info counters.{name:18} {old_f:12.1f} -> "
                  f"{new_f:12.1f} s  (host wall time, not gated)")
            continue
        if is_throughput_column(name) or is_timing_column(name):
            if old_f <= 0.0:
                print(f"  skip counters.{name:18} baseline {old_f:g} <= 0 "
                      f"— not gated (fresh {new_f:g})")
                continue
            ratio = new_f / old_f
            if is_timing_column(name):
                bad = ratio > 1.0 + threshold
            else:
                bad = ratio < 1.0 - threshold
            verdict = "FAIL" if bad else "ok"
            print(f"  {verdict:4} counters.{name:18} "
                  f"{old_f:12.1f} -> {new_f:12.1f}  ({ratio - 1.0:+.1%})")
            failures += 1 if bad else 0
            continue
        # Determinism counter: exact equality, no tolerance, no skip —
        # 0 -> nonzero (e.g. digests_mismatch) must fail loudly.
        bad = new_f != old_f
        verdict = "FAIL" if bad else "ok"
        print(f"  {verdict:4} counters.{name:18} "
              f"{old_f:12g} == {new_f:12g}  (exact)")
        failures += 1 if bad else 0
    return failures


def compare_reports(base: dict, fresh: dict, threshold: float,
                    exact: list, baseline_name: str = "baseline") -> int:
    """Full comparison of two loaded reports; returns the exit status."""
    base_cols = base["columns"]
    fresh_cols = fresh["columns"]
    timing = [c for c in base_cols if is_timing_column(c)]
    throughput = [c for c in base_cols if is_throughput_column(c)]
    if not timing and not throughput:
        print(f"bench_compare: no timing or throughput columns in "
              f"{baseline_name}", file=sys.stderr)
        return 2
    unknown_exact = [c for c in exact if c not in base_cols]
    if unknown_exact:
        print(f"bench_compare: --exact column(s) not in baseline: "
              f"{unknown_exact}", file=sys.stderr)
        return 2
    missing_cols = [c for c in timing + throughput + exact
                    if c not in fresh_cols]
    if missing_cols:
        print(f"FAIL: fresh report lacks timing columns: {missing_cols}")
        return 1

    fresh_rows = rows_by_label(fresh)
    bench = base.get("bench", "?")
    failures = 0
    print(f"bench_compare: {bench}  (threshold +{threshold:.0%})")
    for row in base["rows"]:
        label = row[0]
        if label not in fresh_rows:
            print(f"  FAIL {label}: row missing from fresh report")
            failures += 1
            continue
        for col in timing + throughput:
            old_raw = row[base_cols.index(col)]
            new_raw = fresh_rows[label][fresh_cols.index(col)]
            old = to_float(old_raw)
            new = to_float(new_raw)
            if old is None or new is None:
                print(f"  FAIL {label:24} {col:16} malformed numeric cell "
                      f"({old_raw!r} -> {new_raw!r})")
                failures += 1
                continue
            if old <= 0.0:
                # Degenerate baseline cell: no ratio to gate on, but say so
                # — a column of silent zeros once masked a broken capture.
                print(f"  skip {label:24} {col:16} baseline {old:g} <= 0 "
                      f"— not gated (fresh {new:g})")
                continue
            ratio = new / old
            if col in timing:  # lower is better
                bad = ratio > 1.0 + threshold
                unit = "ns"
            else:  # throughput: higher is better
                bad = ratio < 1.0 - threshold
                unit = "/s"
            verdict = "FAIL" if bad else "ok"
            print(f"  {verdict:4} {label:24} {col:16} "
                  f"{old:12.1f} -> {new:12.1f} {unit}  ({ratio - 1.0:+.1%})")
            if bad:
                failures += 1
        for col in exact:
            old = row[base_cols.index(col)]
            new = fresh_rows[label][fresh_cols.index(col)]
            bad = str(new) != str(old)
            verdict = "FAIL" if bad else "ok"
            print(f"  {verdict:4} {label:24} {col:16} "
                  f"{old:>12} == {new:>12}  (exact)")
            if bad:
                failures += 1
    extra = set(fresh_rows) - {r[0] for r in base["rows"]}
    if extra:
        print(f"  note: rows only in fresh report (not gated): "
              f"{sorted(extra)}")
    failures += compare_counters(base, fresh, threshold)
    if failures:
        print(f"bench_compare: {failures} regression(s) beyond "
              f"+{threshold:.0%} — regenerate the baseline if the "
              f"slowdown is intended")
        return 1
    print("bench_compare: all timing cells within threshold")
    return 0


# ---------------------------------------------------------------------------
# Self-test: synthetic reports exercising every verdict path. Run by CI
# (bench-gate job) before the real comparison so a broken gate cannot
# silently wave regressions through.
# ---------------------------------------------------------------------------

def _report(rows, counters=None, columns=("label", "mean_ns", "events_per_s",
                                          "digest")):
    return {"bench": "selftest", "columns": list(columns),
            "rows": [list(r) for r in rows], "counters": counters or {}}


def _run_case(name, base, fresh, threshold, exact, want_rc, want_substrings):
    out = io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(out):
        rc = compare_reports(base, fresh, threshold, exact)
    text = out.getvalue()
    problems = []
    if rc != want_rc:
        problems.append(f"exit {rc}, want {want_rc}")
    for s in want_substrings:
        if s not in text:
            problems.append(f"output lacks {s!r}")
    status = "ok" if not problems else "FAIL"
    print(f"  {status:4} self-test: {name}" +
          ("" if not problems else f"  [{'; '.join(problems)}]"))
    if problems:
        print("    --- captured output ---")
        for line in text.rstrip().splitlines():
            print(f"    {line}")
    return 0 if not problems else 1


def self_test() -> int:
    print("bench_compare: self-test")
    failures = 0
    ident = _report([["a", 100.0, 5000.0, "deadbeef"]],
                    {"events_total": 42, "elapsed_seconds": 1.0})

    failures += _run_case(
        "identical reports pass", ident, ident, 0.15, ["digest"],
        want_rc=0, want_substrings=["all timing cells within threshold"])
    failures += _run_case(
        "timing regression fails",
        _report([["a", 100.0, 5000.0, "d"]]),
        _report([["a", 200.0, 5000.0, "d"]]),
        0.15, [], want_rc=1, want_substrings=["FAIL", "mean_ns"])
    failures += _run_case(
        "timing improvement passes",
        _report([["a", 100.0, 5000.0, "d"]]),
        _report([["a", 10.0, 50000.0, "d"]]),
        0.15, [], want_rc=0, want_substrings=["ok"])
    failures += _run_case(
        "throughput drop fails",
        _report([["a", 100.0, 5000.0, "d"]]),
        _report([["a", 100.0, 1000.0, "d"]]),
        0.15, [], want_rc=1, want_substrings=["FAIL", "events_per_s"])
    failures += _run_case(
        "zero baseline cell prints skip, does not gate",
        _report([["a", 0.0, 5000.0, "d"]]),
        _report([["a", 9999.0, 5000.0, "d"]]),
        0.15, [], want_rc=0,
        want_substrings=["skip", "mean_ns", "not gated"])
    failures += _run_case(
        "zero baseline counter prints skip, does not gate",
        _report([["a", 100.0, 5000.0, "d"]], {"warm_ns": 0}),
        _report([["a", 100.0, 5000.0, "d"]], {"warm_ns": 123}),
        0.15, [], want_rc=0, want_substrings=["skip counters.warm_ns"])
    failures += _run_case(
        "determinism counter 0 -> nonzero fails",
        _report([["a", 100.0, 5000.0, "d"]], {"digests_mismatch": 0}),
        _report([["a", 100.0, 5000.0, "d"]], {"digests_mismatch": 3}),
        0.15, [], want_rc=1,
        want_substrings=["FAIL", "digests_mismatch"])
    failures += _run_case(
        "malformed row cell fails cleanly",
        _report([["a", 100.0, 5000.0, "d"]]),
        _report([["a", "oops", 5000.0, "d"]]),
        0.15, [], want_rc=1, want_substrings=["malformed numeric cell"])
    failures += _run_case(
        "malformed counter fails cleanly",
        _report([["a", 100.0, 5000.0, "d"]], {"events_total": 42}),
        _report([["a", 100.0, 5000.0, "d"]], {"events_total": "n/a"}),
        0.15, [], want_rc=1, want_substrings=["malformed value"])
    failures += _run_case(
        "exact column mismatch fails",
        _report([["a", 100.0, 5000.0, "cafe"]]),
        _report([["a", 100.0, 5000.0, "f00d"]]),
        0.15, ["digest"], want_rc=1, want_substrings=["FAIL", "digest"])
    failures += _run_case(
        "missing row fails",
        _report([["a", 100.0, 5000.0, "d"], ["b", 50.0, 9000.0, "e"]]),
        _report([["a", 100.0, 5000.0, "d"]]),
        0.15, [], want_rc=1, want_substrings=["row missing"])
    failures += _run_case(
        "missing column fails",
        _report([["a", 100.0, 5000.0, "d"]]),
        {"bench": "selftest", "columns": ["label", "digest"],
         "rows": [["a", "d"]], "counters": {}},
        0.15, [], want_rc=1, want_substrings=["lacks timing columns"])
    failures += _run_case(
        "no gateable columns is a usage error",
        _report([["a", "x"]], columns=("label", "note")),
        _report([["a", "x"]], columns=("label", "note")),
        0.15, [], want_rc=2,
        want_substrings=["no timing or throughput columns"])

    if failures:
        print(f"bench_compare: self-test FAILED ({failures} case(s))")
        return 1
    print("bench_compare: self-test passed")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", nargs="?", help="checked-in BENCH_*.json")
    ap.add_argument("fresh", nargs="?", help="freshly generated report")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional slowdown per timing cell "
                         "(default 0.15 = +15%%)")
    ap.add_argument("--exact", action="append", default=[], metavar="COL",
                    help="row column that must equal the baseline exactly "
                         "(repeatable; e.g. --exact digest --exact match)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the built-in synthetic-report test suite "
                         "and exit")
    args = ap.parse_args()

    if args.self_test:
        return self_test()
    if args.baseline is None or args.fresh is None:
        ap.error("BASELINE and FRESH are required unless --self-test")

    base = load(args.baseline)
    fresh = load(args.fresh)
    return compare_reports(base, fresh, args.threshold, list(args.exact),
                           baseline_name=args.baseline)


if __name__ == "__main__":
    sys.exit(main())
