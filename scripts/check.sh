#!/usr/bin/env bash
# Sanitized tier-1 check: configure a separate build tree with the
# requested sanitizer, build everything, and run the test suite. Any
# sanitizer report fails the run.
#
# Usage: scripts/check.sh [build-dir] [mode]
#   build-dir  default: build-asan
#   mode       address (default): ASan + UBSan, full test suite
#              thread:            TSan, concurrency-relevant suites only
#                                 (sharded executor, parallel drivers,
#                                 fuzz & metamorphic harnesses, snapshots)
#                                 plus a multi-shard scale_sweep point
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
MODE="${2:-address}"
JOBS="$(nproc 2>/dev/null || echo 2)"

case "$MODE" in
  address) SANITIZE=ON ;;
  thread)  SANITIZE=thread ;;
  *) echo "check.sh: unknown mode '$MODE' (want address or thread)" >&2
     exit 2 ;;
esac

cmake -B "$BUILD_DIR" -S . -DPABR_SANITIZE="$SANITIZE" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"

if [ "$MODE" = thread ]; then
  # halt_on_error turns any report into a nonzero exit from the owning
  # process; second_deadlock_stack makes lock-order reports actionable.
  export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
  # The single-threaded model suites add nothing under TSan; run the
  # suites that actually exercise the thread pool and cross-shard
  # hand-off plumbing, then the parallel harness drivers and a
  # multi-shard scale_sweep point for the executor's boundary-cell
  # exchange at scale.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
    -R 'Sharded|Parallel|Metamorphic|FuzzScenario|Snapshot'
  "$BUILD_DIR/bench/metamorphic_driver" --seeds 20 --threads 4 --faults=true
  "$BUILD_DIR/bench/fuzz_driver" --seeds 20 --threads 4
  "$BUILD_DIR/bench/scale_sweep" --shards 4
  echo "check.sh: TSan build + concurrency suites passed"
else
  # halt_on_error makes ASan reports fail the owning test instead of only
  # printing; detect_leaks catches forgotten event handles.
  export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
  export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
  echo "check.sh: sanitized build + full test suite passed"
fi
