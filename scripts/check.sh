#!/usr/bin/env bash
# Sanitized tier-1 check: configure a separate build tree with
# AddressSanitizer + UBSan (-DPABR_SANITIZE=ON), build everything, and
# run the full test suite. Any sanitizer report fails the ctest run.
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S . -DPABR_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"

# halt_on_error makes ASan reports fail the owning test instead of only
# printing; detect_leaks catches forgotten event handles.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
echo "check.sh: sanitized build + full test suite passed"
