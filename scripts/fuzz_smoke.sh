#!/usr/bin/env bash
# Differential fuzz smoke: run bench/fuzz_driver for a modest seed batch
# against an audit-enabled build. Every seed expands into a randomized
# scenario run under the per-event invariant sweep, with trajectories
# compared bitwise across incremental-vs-scratch reservation and
# 1-vs-N threads. Exit status is the driver's (0 = clean).
#
# Usage: scripts/fuzz_smoke.sh [--faults] [build-dir] [seeds]
#   --faults   additionally draw a random fault schedule per seed
#              (link/station outages, message loss; PABR_FAULT builds)
#   build-dir  existing configured build tree (default: build)
#   seeds      number of scenario seeds      (default: 200)
set -euo pipefail

cd "$(dirname "$0")/.."
FAULT_FLAGS=()
if [[ "${1:-}" == "--faults" ]]; then
  FAULT_FLAGS=(--faults)
  shift
fi
BUILD_DIR="${1:-build}"
SEEDS="${2:-200}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake --build "$BUILD_DIR" -j "$JOBS" --target fuzz_driver
"$BUILD_DIR/bench/fuzz_driver" --seeds "$SEEDS" --threads "$JOBS" \
  ${FAULT_FLAGS[@]+"${FAULT_FLAGS[@]}"}
echo "fuzz_smoke.sh: $SEEDS seeds clean${FAULT_FLAGS[0]:+ (fault schedules on)}"
