#!/usr/bin/env bash
# Guided-fuzz smoke: exercise the coverage-guided genome fuzzer end to
# end against an audit-enabled build.
#
#   1. replay the checked-in tests/corpus reproducers (oracles clean),
#      then continue a short guided hunt from them — exit 0 expected
#   2. mutation-testing self-check: with the planted off-by-one armed
#      (--inject-bug) the guided hunt must FIND the bug within the
#      budget and --minimize must shrink the reproducer to <= 3 cells
#      and <= 10 connection requests; a blind random-genome baseline
#      with the same budget must NOT find it
#   3. determinism: the same guided run at --threads 1 and --threads 4
#      must grow byte-identical corpora
#
# Usage: scripts/guided_fuzz_smoke.sh [build-dir] [execs]
#   build-dir  existing configured build tree (default: build)
#   execs      guided/blind execution budget  (default: 600)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
EXECS="${2:-600}"
JOBS="$(nproc 2>/dev/null || echo 2)"
DRIVER="$BUILD_DIR/bench/fuzz_driver"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/pabr_guided_smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

cmake --build "$BUILD_DIR" -j "$JOBS" --target fuzz_driver

echo "== 1/3 corpus replay + clean guided hunt ($EXECS execs) =="
mkdir -p "$WORK/corpus"
cp tests/corpus/*.pabrfuzz "$WORK/corpus/"
"$DRIVER" --guided --corpus-dir "$WORK/corpus" --max-execs "$EXECS" \
  --faults --threads "$JOBS"

echo "== 2/3 planted-bug self-check =="
LOG="$WORK/guided_bug.log"
if "$DRIVER" --guided --inject-bug --minimize --max-execs "$EXECS" \
     --corpus-dir "$WORK/bug_corpus" --repro-dir "$WORK/repro" \
     --threads "$JOBS" > "$LOG"; then
  echo "FAIL: guided hunt missed the planted bug in $EXECS execs" >&2
  exit 1
fi
tail -n +1 "$LOG" | grep "VIOLATION" | head -1
MIN_LINE="$(grep "minimized in" "$LOG" || true)"
if [[ -z "$MIN_LINE" ]]; then
  echo "FAIL: violation found but no minimized reproducer reported" >&2
  exit 1
fi
echo "$MIN_LINE"
CELLS="$(sed -n 's/.*cells=\([0-9]*\).*/\1/p' <<<"$MIN_LINE")"
REQS="$(sed -n 's/.*requests=\([0-9]*\).*/\1/p' <<<"$MIN_LINE")"
if (( CELLS > 3 || REQS > 10 )); then
  echo "FAIL: reproducer not minimal enough (cells=$CELLS requests=$REQS," \
       "want <=3 cells and <=10 requests)" >&2
  exit 1
fi
ls "$WORK/repro"/*.pabrfuzz > /dev/null  # reproducer artifact exists

if ! "$DRIVER" --inject-bug --max-execs "$EXECS" --threads "$JOBS" \
     > "$WORK/blind_bug.log"; then
  echo "FAIL: blind baseline found the planted bug — coverage guidance" \
       "is not earning its keep (or the bug got easier)" >&2
  exit 1
fi
echo "guided found+minimized (cells=$CELLS requests=$REQS); blind missed — OK"

echo "== 3/3 thread-count determinism =="
mkdir -p "$WORK/det1" "$WORK/det4"
"$DRIVER" --guided --corpus-dir "$WORK/det1" --max-execs 48 --threads 1 \
  > /dev/null
"$DRIVER" --guided --corpus-dir "$WORK/det4" --max-execs 48 --threads 4 \
  > /dev/null
diff -r "$WORK/det1" "$WORK/det4"
echo "corpora identical at --threads 1 and 4 — OK"

echo "guided fuzz smoke: all checks passed"
