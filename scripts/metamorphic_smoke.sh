#!/usr/bin/env bash
# Metamorphic-equivalence smoke: run bench/metamorphic_driver for a
# modest seed batch. Every seed expands into a dyadic scripted scenario
# that is re-run under each catalogue transform (ring rotation, direction
# mirror, time-origin shift, BU rescale, id relabelling, rotate∘mirror)
# and mapped back into the base frame; the whole batch repeats across the
# thread pool and must match the sequential pass digest-for-digest. Runs
# with scripted outages both off and on. Exit status is the driver's
# (0 = clean).
#
# Usage: scripts/metamorphic_smoke.sh [build-dir] [seeds]
#   build-dir  existing configured build tree (default: build)
#   seeds      number of scenario seeds per pass (default: 100)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SEEDS="${2:-100}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# Phase 2 of the driver re-runs the batch across a pool and compares it
# against the sequential pass, so keep the pool >1 even on small runners.
THREADS="$(( JOBS > 4 ? JOBS : 4 ))"

cmake --build "$BUILD_DIR" -j "$JOBS" --target metamorphic_driver
"$BUILD_DIR/bench/metamorphic_driver" --seeds "$SEEDS" --threads "$THREADS"
"$BUILD_DIR/bench/metamorphic_driver" --seeds "$SEEDS" --threads "$THREADS" \
  --faults=true
echo "metamorphic_smoke.sh: $SEEDS seeds x catalogue clean (faults off + on)"
