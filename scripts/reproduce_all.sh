#!/usr/bin/env bash
# Regenerates every paper table/figure plus the ablations, mirroring rows
# into CSVs under results/. Pass --full for paper-scale run lengths.
set -u
cd "$(dirname "$0")/.."
EXTRA="${1:-}"

cmake -B build -G Ninja
cmake --build build
mkdir -p results

for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  name="$(basename "$b")"
  echo "== $name =="
  "$b" $EXTRA --csv "results/$name.csv" | tee "results/$name.txt"
done
