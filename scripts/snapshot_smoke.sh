#!/usr/bin/env bash
# Snapshot checkpoint/resume smoke (invariant I10, DESIGN.md §13).
#
# Exercises the whole snapshot surface end to end:
#   1. run a pinned sharded torus uninterrupted for the reference digest;
#   2. run it again with a checkpoint cadence — writing checkpoints must
#      not perturb the trajectory;
#   3. pabr-snapshot --validate the emitted file, and require a
#      bit-flipped copy to be REJECTED;
#   4. resume the checkpoint under a DIFFERENT shard count and require
#      the end-state digest to equal the uninterrupted run's bitwise;
#   5. fuzz resume smoke: fuzz_driver replays every seed three ways
#      (incremental, scratch, snapshot-resumed) and exits non-zero on
#      any digest divergence — run with and without fault schedules.
#
# Usage: scripts/snapshot_smoke.sh [build-dir] [fuzz-seeds]
#   build-dir   existing configured build tree (default: build)
#   fuzz-seeds  seeds for the fuzz resume smoke (default: 50)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SEEDS="${2:-50}"
JOBS="$(nproc 2>/dev/null || echo 2)"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cmake --build "$BUILD_DIR" -j "$JOBS" \
  --target scale_sweep fuzz_driver pabr_snapshot

SWEEP=("$BUILD_DIR/bench/scale_sweep" --rows 8 --cols 8 --duration 120)

# 1. Uninterrupted reference run of the pinned 64-cell point.
"${SWEEP[@]}" --shards 2 --json "$TMP/straight.json"

# 2. Same point with a checkpoint cadence.
"${SWEEP[@]}" --shards 2 --checkpoint-every 40 \
  --checkpoint-path "$TMP/smoke.pabrsnap" --json "$TMP/ckpt.json"
SNAP="$TMP/smoke.pabrsnap-64c2s"
test -s "$SNAP"

# 3. Structural validation passes on the emitted file and fails on a
#    copy with one payload bit flipped.
"$BUILD_DIR/bench/pabr_snapshot" "$SNAP" --validate
python3 - "$SNAP" "$TMP/corrupt.pabrsnap" <<'EOF'
import sys
data = bytearray(open(sys.argv[1], 'rb').read())
data[len(data) // 2] ^= 0x01
open(sys.argv[2], 'wb').write(data)
EOF
if "$BUILD_DIR/bench/pabr_snapshot" "$TMP/corrupt.pabrsnap" --validate; then
  echo "snapshot_smoke.sh: FAIL — corrupted snapshot passed validation" >&2
  exit 1
fi
echo "snapshot_smoke.sh: corrupted snapshot rejected as expected"

# 4. Resume under a different shard count; every digest must agree.
"${SWEEP[@]}" --shards 4 --resume-from "$SNAP" --json "$TMP/resumed.json"
python3 - "$TMP/straight.json" "$TMP/ckpt.json" "$TMP/resumed.json" <<'EOF'
import json, sys

def digests(path):
    report = json.load(open(path))
    i = report["columns"].index("digest")
    return [row[i] for row in report["rows"]]

straight, ckpt, resumed = (digests(p) for p in sys.argv[1:4])
assert len(straight) == 1, straight
assert straight == ckpt == resumed, (
    f"digest mismatch: straight={straight} ckpt={ckpt} resumed={resumed}")
print(f"snapshot_smoke.sh: resumed digest matches uninterrupted "
      f"({straight[0]})")
EOF

# 5. Fuzz resume smoke: the I10 probe inside fuzz_driver snapshots each
#    scenario at a seed-derived fraction and replays to the end.
"$BUILD_DIR/bench/fuzz_driver" --seeds "$SEEDS" --threads "$JOBS"
"$BUILD_DIR/bench/fuzz_driver" --seeds "$SEEDS" --threads "$JOBS" --faults
echo "snapshot_smoke.sh: clean ($SEEDS fuzz seeds, faults on and off)"
