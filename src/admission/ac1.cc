#include "admission/ac1.h"

namespace pabr::admission {

bool Ac1Policy::admit(AdmissionContext& sys, geom::CellId cell,
                      traffic::Bandwidth b_new) {
  const double br = sys.recompute_reservation(cell);
  const bool ok =
      fits_budget(sys.used_bandwidth(cell), static_cast<double>(b_new),
                  sys.capacity(cell), br);
  telemetry::bump(ok ? tel_admits_ : tel_rejects_);
  return ok;
}

void Ac1Policy::bind_telemetry(telemetry::Registry& registry) {
  tel_admits_ = registry.counter("ac1.admits");
  tel_rejects_ = registry.counter("ac1.rejects");
}

}  // namespace pabr::admission
