#include "admission/ac1.h"

namespace pabr::admission {

bool Ac1Policy::admit(AdmissionContext& sys, geom::CellId cell,
                      traffic::Bandwidth b_new) {
  const double br = sys.recompute_reservation(cell);
  return fits_budget(sys.used_bandwidth(cell), static_cast<double>(b_new),
                     sys.capacity(cell), br);
}

}  // namespace pabr::admission
