// AC1 (§4.3): the simple admission test — recompute B_r,0 in the current
// cell only and admit iff  sum_j b(C_0,j) + b_new <= C(0) - B_r,0.
#pragma once

#include "admission/policy.h"

namespace pabr::admission {

class Ac1Policy final : public AdmissionPolicy {
 public:
  std::string name() const override { return "AC1"; }
  bool admit(AdmissionContext& sys, geom::CellId cell,
             traffic::Bandwidth b_new) override;
  void bind_telemetry(telemetry::Registry& registry) override;

 private:
  telemetry::Counter* tel_admits_ = nullptr;
  telemetry::Counter* tel_rejects_ = nullptr;
};

}  // namespace pabr::admission
