#include "admission/ac2.h"

namespace pabr::admission {

bool Ac2Policy::admit(AdmissionContext& sys, geom::CellId cell,
                      traffic::Bandwidth b_new) {
  bool ok = true;
  bool neighbor_failed = false;
  for (geom::CellId i : sys.adjacent(cell)) {
    // Degraded mode: an unreachable neighbour cannot run its reserve
    // check, so AC2 falls back to the AC1-local decision for that cell
    // rather than rejecting outright (the local test below still runs).
    if (!sys.neighbor_reachable(cell, i)) {
      telemetry::bump(tel_fallbacks_local_);
      continue;
    }
    const double br_i = sys.recompute_reservation(i);
    if (exceeds_budget(sys.used_bandwidth(i), 0.0, sys.capacity(i), br_i)) {
      ok = false;
      neighbor_failed = true;
    }
  }
  const double br = sys.recompute_reservation(cell);
  if (exceeds_budget(sys.used_bandwidth(cell), static_cast<double>(b_new),
                     sys.capacity(cell), br)) {
    ok = false;
    telemetry::bump(tel_rejects_local_);
  }
  if (neighbor_failed) telemetry::bump(tel_rejects_neighbor_);
  if (ok) telemetry::bump(tel_admits_);
  return ok;
}

void Ac2Policy::bind_telemetry(telemetry::Registry& registry) {
  tel_admits_ = registry.counter("ac2.admits");
  tel_rejects_local_ = registry.counter("ac2.rejects_local");
  tel_rejects_neighbor_ = registry.counter("ac2.rejects_neighbor");
  tel_fallbacks_local_ = registry.counter("ac2.fallback_local");
}

}  // namespace pabr::admission
