#include "admission/ac2.h"

namespace pabr::admission {

bool Ac2Policy::admit(AdmissionContext& sys, geom::CellId cell,
                      traffic::Bandwidth b_new) {
  bool ok = true;
  for (geom::CellId i : sys.adjacent(cell)) {
    const double br_i = sys.recompute_reservation(i);
    if (exceeds_budget(sys.used_bandwidth(i), 0.0, sys.capacity(i), br_i)) {
      ok = false;
    }
  }
  const double br = sys.recompute_reservation(cell);
  if (exceeds_budget(sys.used_bandwidth(cell), static_cast<double>(b_new),
                     sys.capacity(cell), br)) {
    ok = false;
  }
  return ok;
}

}  // namespace pabr::admission
