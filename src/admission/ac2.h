// AC2 (§4.3): every adjacent cell participates in every admission test —
//   1. for all i in A_0:  sum_j b(C_i,j) <= C(i) - B_r,i   (recomputed)
//   2. sum_j b(C_0,j) + b_new <= C(0) - B_r,0              (recomputed)
// All B_r recomputations are performed unconditionally (the paper reports
// a flat N_calc = 3 on the 1-D road), then the tests are evaluated.
#pragma once

#include "admission/policy.h"

namespace pabr::admission {

class Ac2Policy final : public AdmissionPolicy {
 public:
  std::string name() const override { return "AC2"; }
  bool admit(AdmissionContext& sys, geom::CellId cell,
             traffic::Bandwidth b_new) override;
  void bind_telemetry(telemetry::Registry& registry) override;

 private:
  telemetry::Counter* tel_admits_ = nullptr;
  telemetry::Counter* tel_rejects_local_ = nullptr;    ///< cell 0 test failed
  telemetry::Counter* tel_rejects_neighbor_ = nullptr; ///< some A_0 test failed
  telemetry::Counter* tel_fallbacks_local_ = nullptr;  ///< neighbour unreachable
};

}  // namespace pabr::admission
