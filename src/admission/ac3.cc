#include "admission/ac3.h"

namespace pabr::admission {

bool Ac3Policy::admit(AdmissionContext& sys, geom::CellId cell,
                      traffic::Bandwidth b_new) {
  bool ok = true;
  for (geom::CellId i : sys.adjacent(cell)) {
    // Participation test uses the *stale* target B_r^curr (paper: "which
    // was calculated for a previous admission test, is not reserved
    // fully").
    if (sys.used_bandwidth(i) + sys.current_reservation(i) >
        sys.capacity(i)) {
      const double br_i = sys.recompute_reservation(i);
      if (sys.used_bandwidth(i) > sys.capacity(i) - br_i) ok = false;
    }
  }
  const double br = sys.recompute_reservation(cell);
  if (sys.used_bandwidth(cell) + static_cast<double>(b_new) >
      sys.capacity(cell) - br) {
    ok = false;
  }
  return ok;
}

}  // namespace pabr::admission
