#include "admission/ac3.h"

namespace pabr::admission {

bool Ac3Policy::admit(AdmissionContext& sys, geom::CellId cell,
                      traffic::Bandwidth b_new) {
  bool ok = true;
  for (geom::CellId i : sys.adjacent(cell)) {
    // Degraded mode: an unreachable neighbour cannot be asked to
    // recompute, so AC3 degrades to the AC1-local decision for that
    // cell (the local test below still runs).
    if (!sys.neighbor_reachable(cell, i)) {
      telemetry::bump(tel_fallbacks_local_);
      continue;
    }
    // Participation test uses the *stale* target B_r^curr (paper: "which
    // was calculated for a previous admission test, is not reserved
    // fully"). It is phrased through the same budget form as the AC2
    // reserve check below, so a recomputed B_r that equals the cached one
    // bitwise reaches the identical verdict.
    if (exceeds_budget(sys.used_bandwidth(i), 0.0, sys.capacity(i),
                       sys.current_reservation(i))) {
      telemetry::bump(tel_participations_);
      const double br_i = sys.recompute_reservation(i);
      if (exceeds_budget(sys.used_bandwidth(i), 0.0, sys.capacity(i),
                         br_i)) {
        ok = false;
      }
    }
  }
  const double br = sys.recompute_reservation(cell);
  if (exceeds_budget(sys.used_bandwidth(cell), static_cast<double>(b_new),
                     sys.capacity(cell), br)) {
    ok = false;
  }
  telemetry::bump(ok ? tel_admits_ : tel_rejects_);
  return ok;
}

void Ac3Policy::bind_telemetry(telemetry::Registry& registry) {
  tel_admits_ = registry.counter("ac3.admits");
  tel_rejects_ = registry.counter("ac3.rejects");
  tel_participations_ = registry.counter("ac3.participations");
  tel_fallbacks_local_ = registry.counter("ac3.fallback_local");
}

}  // namespace pabr::admission
