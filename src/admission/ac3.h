// AC3 (§4.3): the hybrid scheme the paper recommends. An adjacent cell i
// participates only when it *appears* unable to reserve its
// previously-computed target:
//   1. for all i in A_0 with sum_j b(C_i,j) + B_r,i^curr > C(i):
//        recompute B_r,i, set B_r,i^curr := B_r,i,
//        and check sum_j b(C_i,j) <= C(i) - B_r,i
//   2. sum_j b(C_0,j) + b_new <= C(0) - B_r,0 (recomputed)
// This keeps N_calc near 1 at light load and below AC2's |A_0|+1 even
// when overloaded, while bounding P_HD like AC2 (paper §5.2.3).
#pragma once

#include "admission/policy.h"

namespace pabr::admission {

class Ac3Policy final : public AdmissionPolicy {
 public:
  std::string name() const override { return "AC3"; }
  bool admit(AdmissionContext& sys, geom::CellId cell,
             traffic::Bandwidth b_new) override;
  void bind_telemetry(telemetry::Registry& registry) override;

 private:
  telemetry::Counter* tel_admits_ = nullptr;
  telemetry::Counter* tel_rejects_ = nullptr;
  /// Adjacent cells whose participation test fired (the selective
  /// recomputations that keep N_calc below AC2's |A_0|+1).
  telemetry::Counter* tel_participations_ = nullptr;
  telemetry::Counter* tel_fallbacks_local_ = nullptr;  ///< neighbour unreachable
};

}  // namespace pabr::admission
