#include "admission/ns_policy.h"

#include <cmath>

#include "util/check.h"
#include "util/mathx.h"

namespace pabr::admission {

NsPolicy::NsPolicy(NsConfig config) : config_(config) {
  PABR_CHECK(config.estimation_interval_s > 0.0, "NS: bad interval");
  PABR_CHECK(config.overload_target > 0.0 && config.overload_target < 1.0,
             "NS: bad overload target");
  PABR_CHECK(config.mean_sojourn_s > 0.0, "NS: bad sojourn");
  PABR_CHECK(config.mean_lifetime_s > 0.0, "NS: bad lifetime");

  const double t = config.estimation_interval_s;
  const double survive_call = std::exp(-t / config.mean_lifetime_s);
  p_stay_ = std::exp(-t / config.mean_sojourn_s) * survive_call;
  p_move_ = (1.0 - std::exp(-t / config.mean_sojourn_s)) * survive_call;
  z_ = mathx::inverse_normal_cdf(1.0 - config.overload_target);
}

NsPolicy::OccupancyEstimate NsPolicy::estimate(const AdmissionContext& sys,
                                               geom::CellId cell) const {
  OccupancyEstimate e;
  // Resident bandwidth that is still here after T. Treating the resident
  // bandwidth as ~1-BU Bernoulli units keeps the variance bound simple
  // and errs conservative for video (which moves in 4-BU lumps).
  const double resident = sys.used_bandwidth(cell);
  e.mean += resident * p_stay_;
  e.variance += resident * p_stay_ * (1.0 - p_stay_);

  for (geom::CellId i : sys.adjacent(cell)) {
    const double neighbors =
        static_cast<double>(sys.adjacent(i).size());
    PABR_CHECK(neighbors > 0.0, "NS: isolated neighbour cell");
    const double p_in = p_move_ / neighbors;
    const double incoming = sys.used_bandwidth(i);
    e.mean += incoming * p_in;
    e.variance += incoming * p_in * (1.0 - p_in);
  }
  return e;
}

bool NsPolicy::admit(AdmissionContext& sys, geom::CellId cell,
                     traffic::Bandwidth b_new) {
  // Hard FCA constraint first: a channel must physically exist right now.
  if (exceeds_budget(sys.used_bandwidth(cell), static_cast<double>(b_new),
                     sys.capacity(cell), 0.0)) {
    return false;
  }
  // The scheme checks the target cell and every adjacent cell: admitting
  // here must not overload the neighbourhood once mobiles redistribute.
  const auto check = [&](geom::CellId j, double extra) {
    const OccupancyEstimate e = estimate(sys, j);
    const double bound = e.mean + z_ * std::sqrt(e.variance);
    return fits_budget(bound, extra, sys.capacity(j), 0.0);
  };

  // The new call contributes to its own cell now and may hand into each
  // neighbour within T.
  if (!check(cell, static_cast<double>(b_new))) return false;
  for (geom::CellId i : sys.adjacent(cell)) {
    const double spill = static_cast<double>(b_new) * p_move_ /
                         static_cast<double>(sys.adjacent(cell).size());
    if (!check(i, spill)) return false;
  }
  return true;
}

}  // namespace pabr::admission
