// Distributed call admission control after Naghshineh & Schwartz, "Dis-
// tributed call admission control in mobile/wireless networks", IEEE JSAC
// 1996 — the paper's reference [10] and its main point of comparison in
// §6 ("The authors of [10] advocated the connection hand-off dropping
// probability as an important connection-level QoS parameter ... their
// scheme was shown to be better than the static reservation scheme").
//
// The scheme, as §6 summarizes it: "the BS obtains the required bandwidth
// for both the existing and hand-off connections after a certain time
// interval, then performs admission control so that the required
// bandwidth may not exceed the cell capacity." Mobiles are assumed to
// have exponentially distributed sojourn times (the assumption the paper
// criticizes as "impractical"), and each neighbour's mobiles hand into
// the cell with a direction-agnostic uniform split.
//
// Concretely, for each checked cell j the policy estimates occupancy at
// t + T as a sum of independent survivals/arrivals:
//   * each call in j stays with    p_stay = exp(-T (1/T_soj + 1/T_life))
//   * each call in neighbour i of j arrives with
//       p_in = (1 - exp(-T/T_soj)) * exp(-T/T_life) / |A_i|
// and admits the new call only if
//   E[occupancy] + z * sigma + b_new <= C(j)
// where z = Phi^{-1}(1 - P_overload-target) (Gaussian tail bound on the
// sum of Bernoulli bandwidth contributions).
//
// Like AC2, the decision involves the target cell and all its neighbours.
// N_calc is reported as 1 + |A_0| estimate computations for comparability
// with the paper's Fig. 13 metric.
#pragma once

#include "admission/policy.h"
#include "sim/time.h"

namespace pabr::admission {

struct NsConfig {
  /// Estimation interval T of [10].
  sim::Duration estimation_interval_s = 10.0;
  /// Target overload probability (plays the role of P_HD,target).
  double overload_target = 0.01;
  /// Mean cell sojourn time assumed by the exponential mobility model.
  sim::Duration mean_sojourn_s = 36.0;
  /// Mean call lifetime (paper A5: 120 s).
  sim::Duration mean_lifetime_s = 120.0;
};

class NsPolicy final : public AdmissionPolicy {
 public:
  explicit NsPolicy(NsConfig config);

  std::string name() const override { return "NS-DCA"; }
  bool admit(AdmissionContext& sys, geom::CellId cell,
             traffic::Bandwidth b_new) override;

  // Exposed for tests.
  double p_stay() const { return p_stay_; }
  double p_move() const { return p_move_; }
  double z_score() const { return z_; }

  /// Mean/variance bound for cell j's occupancy at t + T, counting the
  /// bandwidth currently in j and its neighbours.
  struct OccupancyEstimate {
    double mean = 0.0;
    double variance = 0.0;
  };
  OccupancyEstimate estimate(const AdmissionContext& sys,
                             geom::CellId cell) const;

 private:
  NsConfig config_;
  double p_stay_;
  double p_move_;  ///< total hand-off probability before the neighbour split
  double z_;
};

}  // namespace pabr::admission
