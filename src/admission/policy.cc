#include "admission/policy.h"

#include "admission/ac1.h"
#include "admission/ac2.h"
#include "admission/ac3.h"
#include "admission/ns_policy.h"
#include "admission/static_policy.h"
#include "util/check.h"

namespace pabr::admission {

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kAc1:
      return "AC1";
    case PolicyKind::kAc2:
      return "AC2";
    case PolicyKind::kAc3:
      return "AC3";
    case PolicyKind::kStatic:
      return "Static";
    case PolicyKind::kNsDca:
      return "NS-DCA";
  }
  return "?";
}

std::unique_ptr<AdmissionPolicy> make_policy(PolicyKind kind,
                                             double static_g,
                                             const NsConfig* ns) {
  switch (kind) {
    case PolicyKind::kAc1:
      return std::make_unique<Ac1Policy>();
    case PolicyKind::kAc2:
      return std::make_unique<Ac2Policy>();
    case PolicyKind::kAc3:
      return std::make_unique<Ac3Policy>();
    case PolicyKind::kStatic:
      return std::make_unique<StaticPolicy>(static_g);
    case PolicyKind::kNsDca:
      return std::make_unique<NsPolicy>(ns != nullptr ? *ns : NsConfig{});
  }
  PABR_CHECK(false, "unknown policy kind");
}

}  // namespace pabr::admission
