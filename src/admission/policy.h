// Admission-control schemes of §4.3 (paper Table 1):
//
//   AC1    — recompute B_r in the current cell only, then Eq. (1):
//            sum b + b_new <= C(0) - B_r,0.
//   AC2    — additionally every adjacent cell recomputes B_r and checks
//            that it can actually reserve it: sum b <= C(i) - B_r,i.
//   AC3    — hybrid: only adjacent cells that *appear* unable to reserve
//            their previously-computed target (sum b + B_r^curr > C(i))
//            recompute and participate.
//   Static — fixed G BUs set aside in every cell (Hong & Rappaport 1986);
//            no B_r computation at all.
//
// Policies are stateless visitors over an AdmissionContext, which the core
// CellularSystem implements; every `recompute_reservation` call is the
// unit the paper's N_calc complexity metric counts.
#pragma once

#include <memory>
#include <string>

#include "geom/topology.h"
#include "telemetry/metrics.h"
#include "traffic/connection.h"

namespace pabr::admission {

/// Absolute slack of every admission-boundary comparison. Occupancy and
/// demands are integer-valued BUs (exactly representable), but B_r is a
/// sum of b * p_h products, so `capacity - B_r` carries rounding noise in
/// its last bits; the tolerance keeps a request sitting exactly on the
/// boundary from being decided by that noise.
inline constexpr double kAdmissionTolerance = 1e-9;

/// The single boundary test behind Eq. (1) and all of its relatives:
/// true when `demand` more BUs on top of `used` still fit `capacity` net
/// of `reserved`. Every threshold comparison — AC1/AC2/AC3's admit and
/// participation tests, the static scheme's guard bandwidth, NS-DCA's
/// hard FCA check, and the wired access/uplink fit tests — is phrased
/// through this one helper with one associativity and one tolerance, so
/// two B_r values that agree bitwise (incremental vs scratch, cached vs
/// recomputed) can never flip an admit/reject decision by being combined
/// in algebraically different ways.
inline bool fits_budget(double used, double demand, double capacity,
                        double reserved) {
  return used + demand <= (capacity - reserved) + kAdmissionTolerance;
}

/// Negated form for "cannot (fully) reserve its target" style tests.
inline bool exceeds_budget(double used, double demand, double capacity,
                           double reserved) {
  return !fits_budget(used, demand, capacity, reserved);
}

/// The system facade a policy needs: capacities, occupancy, neighbour
/// lists, and on-demand target-reservation computation.
class AdmissionContext {
 public:
  virtual ~AdmissionContext() = default;

  virtual double capacity(geom::CellId cell) const = 0;
  virtual double used_bandwidth(geom::CellId cell) const = 0;
  virtual const std::vector<geom::CellId>& adjacent(
      geom::CellId cell) const = 0;

  /// Recomputes the target reservation bandwidth B_r of `cell` from the
  /// current traffic in its adjacent cells (Eqs. 4-6), stores it as the
  /// cell's current target, and returns it. Counted once per call in
  /// N_calc.
  virtual double recompute_reservation(geom::CellId cell) = 0;

  /// The cell's most recently computed target B_r^curr (possibly stale;
  /// 0 before any computation). AC3's participation test uses this.
  virtual double current_reservation(geom::CellId cell) const = 0;

  /// True when the BS of `neighbor` can currently be consulted from
  /// `cell` over the signalling backhaul. Always true in the default
  /// (fault-free) system; under fault injection the core system probes
  /// the link/station state. AC2/AC3 skip unreachable neighbours and
  /// fall back to their AC1-local test for those cells.
  virtual bool neighbor_reachable(geom::CellId cell, geom::CellId neighbor) {
    (void)cell;
    (void)neighbor;
    return true;
  }

  /// Reference implementation of recompute_reservation: a full from-
  /// scratch rescan of all adjacent cells' connections with NO contribution
  /// caching, no stored side effects and no N_calc accounting. Systems with
  /// an incremental fast path override this so equivalence tests and the
  /// micro benchmarks can compare the two; the default forwards to
  /// recompute_reservation (for contexts with no cache there is nothing to
  /// compare against).
  virtual double scratch_reservation(geom::CellId cell) {
    return recompute_reservation(cell);
  }
};

class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;

  virtual std::string name() const = 0;

  /// Decides whether a new connection of `b_new` BUs may be admitted in
  /// `cell`. May call `recompute_reservation` on any cell it consults.
  virtual bool admit(AdmissionContext& sys, geom::CellId cell,
                     traffic::Bandwidth b_new) = 0;

  /// Registers this policy's decision counters ("<policy>.admits",
  /// "<policy>.rejects", plus scheme-specific extras such as AC3's
  /// participation tally) on `registry` and starts bumping them on every
  /// admit() call. The default keeps the policy uninstrumented; bumps are
  /// no-ops until bound and fold away when telemetry is compiled out.
  virtual void bind_telemetry(telemetry::Registry& registry) {
    (void)registry;
  }
};

/// kNsDca is the Naghshineh-Schwartz distributed admission baseline (the
/// paper's ref. [10], see ns_policy.h).
enum class PolicyKind { kAc1, kAc2, kAc3, kStatic, kNsDca };

const char* policy_kind_name(PolicyKind kind);

struct NsConfig;  // ns_policy.h

/// Factory. `static_g` is the permanently reserved bandwidth used only by
/// the static policy (the paper evaluates G = 10 BUs); `ns` configures
/// only the kNsDca baseline (defaults used when null).
std::unique_ptr<AdmissionPolicy> make_policy(PolicyKind kind,
                                             double static_g = 10.0,
                                             const NsConfig* ns = nullptr);

}  // namespace pabr::admission
