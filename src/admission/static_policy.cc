#include "admission/static_policy.h"

#include <sstream>

#include "util/check.h"

namespace pabr::admission {

StaticPolicy::StaticPolicy(double g) : g_(g) {
  PABR_CHECK(g >= 0.0, "negative static reservation");
}

std::string StaticPolicy::name() const {
  std::ostringstream os;
  os << "Static(G=" << g_ << ")";
  return os.str();
}

bool StaticPolicy::admit(AdmissionContext& sys, geom::CellId cell,
                         traffic::Bandwidth b_new) {
  return fits_budget(sys.used_bandwidth(cell), static_cast<double>(b_new),
                     sys.capacity(cell), g_);
}

}  // namespace pabr::admission
