// Static reservation (§1, §5.2.1): G BUs of every cell's capacity are
// permanently set aside for hand-offs; new connections are admitted iff
// sum b + b_new <= C - G. The paper's baseline, with G = 10.
#pragma once

#include "admission/policy.h"

namespace pabr::admission {

class StaticPolicy final : public AdmissionPolicy {
 public:
  explicit StaticPolicy(double g);

  std::string name() const override;
  bool admit(AdmissionContext& sys, geom::CellId cell,
             traffic::Bandwidth b_new) override;

  double g() const { return g_; }

 private:
  double g_;
};

}  // namespace pabr::admission
