#include "analysis/guard_channel.h"

#include <cmath>

#include "util/check.h"

namespace pabr::analysis {
namespace {

/// E[1/V] for V uniform on [lo, hi] km/h, in hours/km.
double mean_inverse_speed(double lo, double hi) {
  PABR_CHECK(lo > 0.0 && hi >= lo, "bad speed range");
  if (hi == lo) return 1.0 / lo;
  return std::log(hi / lo) / (hi - lo);
}

}  // namespace

double erlang_b(int servers, double erlangs) {
  PABR_CHECK(servers >= 0, "negative server count");
  PABR_CHECK(erlangs >= 0.0, "negative offered traffic");
  double b = 1.0;
  for (int k = 1; k <= servers; ++k) {
    b = erlangs * b / (static_cast<double>(k) + erlangs * b);
  }
  return b;
}

std::vector<double> birth_death_distribution(int servers, int threshold,
                                             double lambda_all,
                                             double lambda_ho, double mu) {
  PABR_CHECK(servers >= 1, "need at least one server");
  PABR_CHECK(threshold >= 0 && threshold <= servers,
             "threshold out of range");
  PABR_CHECK(lambda_all >= 0.0 && lambda_ho >= 0.0, "negative rates");
  PABR_CHECK(mu > 0.0, "non-positive service rate");

  std::vector<double> pi(static_cast<std::size_t>(servers) + 1);
  // Work with unnormalized log weights to dodge overflow at C = 100.
  std::vector<double> logw(pi.size(), 0.0);
  for (int n = 0; n < servers; ++n) {
    const double birth = n < threshold ? lambda_all : lambda_ho;
    const auto idx = static_cast<std::size_t>(n);
    if (birth <= 0.0) {
      // No flow upward: every higher state has probability zero.
      for (std::size_t k = idx + 1; k < logw.size(); ++k) {
        logw[k] = -1e300;
      }
      break;
    }
    logw[idx + 1] =
        logw[idx] + std::log(birth) -
        std::log(static_cast<double>(n + 1) * mu);
  }
  double max_log = logw[0];
  for (double lw : logw) max_log = std::max(max_log, lw);
  double total = 0.0;
  for (std::size_t i = 0; i < logw.size(); ++i) {
    pi[i] = std::exp(logw[i] - max_log);
    total += pi[i];
  }
  for (double& x : pi) x /= total;
  return pi;
}

double mean_residence_new_s(const GuardChannelParams& p) {
  // Uniform start position: mean distance to the exit boundary is D/2.
  return 0.5 * p.cell_diameter_km *
         mean_inverse_speed(p.speed_min_kmh, p.speed_max_kmh) * 3600.0;
}

double mean_residence_handoff_s(const GuardChannelParams& p) {
  return p.cell_diameter_km *
         mean_inverse_speed(p.speed_min_kmh, p.speed_max_kmh) * 3600.0;
}

GuardChannelResult evaluate(const GuardChannelParams& p, int max_iterations,
                            double tolerance) {
  PABR_CHECK(p.capacity_bu >= 1.0, "capacity too small");
  PABR_CHECK(p.guard_bu >= 0.0 && p.guard_bu <= p.capacity_bu,
             "guard out of range");
  PABR_CHECK(p.lambda_new >= 0.0, "negative arrival rate");
  PABR_CHECK(p.mean_lifetime_s > 0.0, "bad lifetime");
  PABR_CHECK(max_iterations >= 1, "evaluate: need at least one iteration");
  PABR_CHECK(tolerance > 0.0, "evaluate: non-positive tolerance");

  const int servers = static_cast<int>(p.capacity_bu);
  const int threshold = static_cast<int>(p.capacity_bu - p.guard_bu);
  const double eta = 1.0 / p.mean_lifetime_s;
  const double mu_res_new = 1.0 / mean_residence_new_s(p);
  const double mu_res_ho = 1.0 / mean_residence_handoff_s(p);
  // P(call crosses the boundary before completing), exponential
  // residence approximation.
  const double p_hn = mu_res_new / (mu_res_new + eta);
  const double p_hh = mu_res_ho / (mu_res_ho + eta);

  GuardChannelResult r;
  double lambda_h = 0.0;
  for (int it = 1; it <= max_iterations; ++it) {
    r.iterations = it;
    // Blend the residence rates by the admitted stream composition.
    const double w_new = p.lambda_new * (1.0 - r.pcb);
    const double w_ho = lambda_h * (1.0 - r.phd);
    const double mu_res =
        (w_new + w_ho) <= 0.0
            ? mu_res_new
            : (w_new * mu_res_new + w_ho * mu_res_ho) / (w_new + w_ho);
    const double mu = eta + mu_res;

    const auto pi = birth_death_distribution(
        servers, threshold, p.lambda_new + lambda_h, lambda_h, mu);
    double pcb = 0.0;
    for (int n = threshold; n <= servers; ++n) {
      pcb += pi[static_cast<std::size_t>(n)];
    }
    const double phd = pi[static_cast<std::size_t>(servers)];

    double busy = 0.0;
    for (int n = 0; n <= servers; ++n) {
      busy += static_cast<double>(n) * pi[static_cast<std::size_t>(n)];
    }

    const double next_lambda_h = p.lambda_new * (1.0 - pcb) * p_hn +
                                 lambda_h * (1.0 - phd) * p_hh;
    const double delta = next_lambda_h - lambda_h;
    r.pcb = pcb;
    r.phd = phd;
    r.mean_busy = busy;
    // Damped update keeps the heavy-load fixed point stable.
    lambda_h = 0.5 * lambda_h + 0.5 * next_lambda_h;
    r.lambda_h = lambda_h;
    // Magnitude test on the signed step: the fixed-point iteration can
    // approach from either side, so the raw delta may be negative.
    if (std::fabs(delta) < tolerance) {
      r.converged = true;
      break;
    }
  }
  PABR_CHECK(r.converged,
             "guard-channel fixed point did not converge within the "
             "iteration cap; raise max_iterations or loosen tolerance");
  return r;
}

}  // namespace pabr::analysis
