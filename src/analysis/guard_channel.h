// Analytical guard-channel model — Hong & Rappaport, "Traffic model and
// performance analysis for cellular mobile radio telephone systems with
// prioritized and nonprioritized hand-off procedures", IEEE Trans. Veh.
// Tech. 1986 (the paper's reference [5] and the origin of its static
// reservation baseline).
//
// The cell is an M/M/C/C birth-death chain over busy bandwidth units with
// G guard units: new calls are admitted while n < C - G, hand-offs while
// n < C. Per-call channel-holding time is approximated as exponential
// with rate (call-completion rate + cell-departure rate), and the
// hand-off arrival rate is obtained by a fixed-point iteration over the
// flow balance
//
//   lambda_h = (lambda_n (1 - P_CB) p_hn + lambda_h (1 - P_HD) p_hh)
//
// where p_hn / p_hh are the probabilities that a new / handed-off call
// leaves its cell before completing (computed from the paper's uniform
// speed range and 1-D cell geometry).
//
// The model is an *approximation* of the simulator (sojourn times on a
// road are not exponential — a point the paper §6 makes against [10]);
// it is used to sanity-check the simulator's static-reservation results
// and to show where the exponential assumption bends.
#pragma once

#include <vector>

namespace pabr::analysis {

struct GuardChannelParams {
  double capacity_bu = 100.0;  ///< C
  double guard_bu = 10.0;      ///< G (static reservation)
  /// New-call arrival rate per cell (calls/s); voice-only (1 BU each).
  double lambda_new = 1.0;
  double mean_lifetime_s = 120.0;      ///< 1/eta
  double cell_diameter_km = 1.0;       ///< D
  double speed_min_kmh = 80.0;         ///< SP_min
  double speed_max_kmh = 120.0;        ///< SP_max
};

struct GuardChannelResult {
  double pcb = 0.0;       ///< new-call blocking probability
  double phd = 0.0;       ///< hand-off dropping probability
  double lambda_h = 0.0;  ///< converged hand-off arrival rate (calls/s)
  double mean_busy = 0.0; ///< E[busy BUs]
  int iterations = 0;     ///< fixed-point iterations used
  bool converged = false;
};

/// Classic Erlang-B blocking probability for offered load `erlangs` on
/// `servers` servers (numerically stable recurrence).
double erlang_b(int servers, double erlangs);

/// Steady-state distribution of the two-rate birth-death chain:
/// birth rate lambda_all for n < threshold, lambda_ho for
/// threshold <= n < servers, death rate n * mu. Returns pi_0..pi_servers.
std::vector<double> birth_death_distribution(int servers, int threshold,
                                             double lambda_all,
                                             double lambda_ho, double mu);

/// Mean residence time in the cell for a call that starts uniformly
/// inside it (new call) — E[(distance to boundary)/speed] with speed
/// uniform in [min, max].
double mean_residence_new_s(const GuardChannelParams& p);

/// Mean residence time for a call that enters at the boundary (hand-off).
double mean_residence_handoff_s(const GuardChannelParams& p);

/// Solves the fixed point and evaluates the chain.
GuardChannelResult evaluate(const GuardChannelParams& p,
                            int max_iterations = 200,
                            double tolerance = 1e-9);

}  // namespace pabr::analysis
