#include "audit/differential.h"

#include <memory>
#include <sstream>

#include "util/check.h"

namespace pabr::audit {
namespace {

void add_system_status(DigestBuilder& d, const core::SystemStatus& s) {
  d.add_u64(s.requests);
  d.add_u64(s.blocks);
  d.add_u64(s.handoffs);
  d.add_u64(s.drops);
  d.add_u64(s.br_calculations);
  d.add_u64(s.backhaul_messages);
  d.add_u64(s.degrades);
  d.add_u64(s.upgrades);
  d.add_u64(s.soft_allocations);
  d.add_u64(s.soft_fallbacks);
  d.add_double(s.pcb);
  d.add_double(s.phd);
  d.add_double(s.n_calc);
  d.add_double(s.br_avg);
  d.add_double(s.bu_avg);
  d.add_double(s.overload_frac);
}

}  // namespace

std::uint64_t trajectory_digest(const core::CellularSystem& sys) {
  DigestBuilder d;
  for (geom::CellId c = 0; c < sys.config().num_cells; ++c) {
    const core::CellStatus s = sys.cell_status(c);
    d.add_u64(s.requests);
    d.add_u64(s.blocks);
    d.add_u64(s.handoffs);
    d.add_u64(s.drops);
    d.add_double(s.pcb);
    d.add_double(s.phd);
    d.add_double(s.t_est);
    d.add_double(s.br);
    d.add_double(s.bu);
    d.add_double(s.br_avg);
    d.add_double(s.bu_avg);
  }
  add_system_status(d, sys.system_status());
  d.add_u64(sys.events_executed());
  d.add_u64(sys.active_connections());
  d.add_u64(sys.wired_blocks());
  d.add_u64(sys.wired_drops());
  return d.value();
}

std::uint64_t trajectory_digest(const core::HexCellularSystem& sys) {
  DigestBuilder d;
  for (geom::CellId c = 0; c < sys.grid().num_cells(); ++c) {
    const core::CellMetrics& m = sys.cell_metrics(c);
    d.add_u64(m.pcb.trials());
    d.add_u64(m.pcb.hits());
    d.add_u64(m.phd.trials());
    d.add_u64(m.phd.hits());
    d.add_double(sys.used_bandwidth(c));
    d.add_double(sys.current_reservation(c));
  }
  add_system_status(d, sys.system_status());
  d.add_u64(sys.active_connections());
  return d.value();
}

std::uint64_t run_scenario_digest(const core::ScenarioSpec& spec,
                                  bool incremental, int audit_every) {
  if (spec.hex) {
    core::HexSystemConfig cfg = spec.grid;
    cfg.incremental_reservation = incremental;
    cfg.audit_every = audit_every;
    core::HexCellularSystem sys(cfg);
    sys.run_for(spec.duration);
    sys.audit_invariants();
    return trajectory_digest(sys);
  }
  core::SystemConfig cfg = spec.linear;
  cfg.incremental_reservation = incremental;
  cfg.audit_every = audit_every;
  core::CellularSystem sys(cfg);
  sys.run_for(spec.duration);
  sys.audit_invariants();
  return trajectory_digest(sys);
}

namespace {

// Runs to each snapshot point in turn, serializes into memory, throws
// the live system away and reloads from the bytes, then finishes the
// horizon on the final incarnation. run_until (absolute targets) keeps
// every incarnation on exactly the clock values of an uninterrupted run.
template <typename System, typename Config>
std::uint64_t run_with_resumes(const Config& cfg, double duration,
                               const std::vector<double>& fractions) {
  auto sys = std::make_unique<System>(cfg);
  for (const double f : fractions) {
    PABR_CHECK(f >= 0.0 && f <= 1.0, "snapshot fraction outside [0, 1]");
    sys->run_until(duration * f);
    std::stringstream buffer(std::ios::in | std::ios::out |
                             std::ios::binary);
    sys->save(buffer);
    sys = System::load(buffer);
  }
  sys->run_until(duration);
  sys->audit_invariants();
  return trajectory_digest(*sys);
}

}  // namespace

std::uint64_t run_scenario_resume_digest(
    const core::ScenarioSpec& spec, bool incremental, int audit_every,
    const std::vector<double>& snap_fractions) {
  if (spec.hex) {
    core::HexSystemConfig cfg = spec.grid;
    cfg.incremental_reservation = incremental;
    cfg.audit_every = audit_every;
    return run_with_resumes<core::HexCellularSystem>(cfg, spec.duration,
                                                     snap_fractions);
  }
  core::SystemConfig cfg = spec.linear;
  cfg.incremental_reservation = incremental;
  cfg.audit_every = audit_every;
  return run_with_resumes<core::CellularSystem>(cfg, spec.duration,
                                                snap_fractions);
}

std::uint64_t run_scenario_resume_digest(const core::ScenarioSpec& spec,
                                         bool incremental, int audit_every,
                                         double snap_fraction) {
  return run_scenario_resume_digest(spec, incremental, audit_every,
                                    std::vector<double>{snap_fraction});
}

double snapshot_fraction_for_seed(std::uint64_t seed) {
  DigestBuilder d;
  d.add_u64(seed);
  d.add_u64(0x534e4150u);  // "SNAP" — decorrelate from other seed uses.
  return 0.2 + 0.6 * static_cast<double>(d.value() % 4096) / 4096.0;
}

}  // namespace pabr::audit
