// Trajectory digests and differential scenario runners for the fuzzer.
//
// A digest folds every end-of-run observable of a simulation — per-cell
// counters, occupancy and reservation bit patterns, system totals — into
// one 64-bit value, hashing doubles by bit pattern. Two runs digest equal
// only if their trajectories are bitwise identical, which is exactly the
// repo's determinism contract: incremental vs from-scratch reservation
// and --threads 1 vs N must all produce the same bytes.
#pragma once

#include <cstdint>

#include "core/random_scenario.h"

namespace pabr::audit {

/// Order-sensitive FNV-1a over 64-bit words.
class DigestBuilder {
 public:
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (8 * i)) & 0xffu;
      h_ *= 1099511628211ull;
    }
  }
  void add_double(double v);
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ull;
};

/// Digest of a finished linear-road simulation.
std::uint64_t trajectory_digest(const core::CellularSystem& sys);

/// Digest of a finished hex-grid simulation.
std::uint64_t trajectory_digest(const core::HexCellularSystem& sys);

/// Builds the system described by `spec` (with the reservation mode
/// overridden to `incremental` and the per-event audit cadence set to
/// `audit_every`), runs it to completion, runs one final explicit
/// audit_invariants() checkpoint — which works in every build, audited or
/// not — and returns the trajectory digest.
std::uint64_t run_scenario_digest(const core::ScenarioSpec& spec,
                                  bool incremental, int audit_every);

}  // namespace pabr::audit
