// Trajectory digests and differential scenario runners for the fuzzer.
//
// A digest folds every end-of-run observable of a simulation — per-cell
// counters, occupancy and reservation bit patterns, system totals — into
// one 64-bit value, hashing doubles by bit pattern. Two runs digest equal
// only if their trajectories are bitwise identical, which is exactly the
// repo's determinism contract: incremental vs from-scratch reservation
// and --threads 1 vs N must all produce the same bytes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/random_scenario.h"
#include "util/digest.h"

namespace pabr::audit {

/// Order-sensitive FNV-1a over 64-bit words (util/digest.h — the same
/// primitive the sharded executor, the snapshot section checksums and
/// the trace checksum use).
using DigestBuilder = util::Fnv1a;

/// Digest of a finished linear-road simulation.
std::uint64_t trajectory_digest(const core::CellularSystem& sys);

/// Digest of a finished hex-grid simulation.
std::uint64_t trajectory_digest(const core::HexCellularSystem& sys);

/// Builds the system described by `spec` (with the reservation mode
/// overridden to `incremental` and the per-event audit cadence set to
/// `audit_every`), runs it to completion, runs one final explicit
/// audit_invariants() checkpoint — which works in every build, audited or
/// not — and returns the trajectory digest.
std::uint64_t run_scenario_digest(const core::ScenarioSpec& spec,
                                  bool incremental, int audit_every);

/// Invariant I10 probe: runs the scenario to `snap_fraction` of its
/// horizon, snapshots it into memory, discards the live system, loads
/// the snapshot and runs the remainder. The returned digest must equal
/// run_scenario_digest() bitwise for every scenario, snapshot point and
/// fault schedule — that equality IS invariant I10 (DESIGN.md §13).
/// `snap_fraction` must lie in [0, 1].
std::uint64_t run_scenario_resume_digest(const core::ScenarioSpec& spec,
                                         bool incremental, int audit_every,
                                         double snap_fraction);

/// Chained variant: snapshot + reload at EVERY fraction in
/// `snap_fractions` (ascending, each in [0, 1]), proving that repeated
/// checkpointing leaves the trajectory untouched — the property the
/// --checkpoint-every flags rely on.
std::uint64_t run_scenario_resume_digest(
    const core::ScenarioSpec& spec, bool incremental, int audit_every,
    const std::vector<double>& snap_fractions);

/// Deterministic per-seed snapshot fraction in [0.2, 0.8] used by the
/// fuzz harness to randomize I10 snapshot points (pure function of the
/// seed, so the sequential and threaded fuzz phases agree).
double snapshot_fraction_for_seed(std::uint64_t seed);

}  // namespace pabr::audit
