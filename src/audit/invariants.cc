#include "audit/invariants.h"

#include <algorithm>

#include "admission/policy.h"
#include "util/check.h"

namespace pabr::audit {

void audit_cell(const core::Cell& cell) {
  const auto& entries = cell.connections();
  double sum = 0.0;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const traffic::ConnectionEntry& e = entries[i];
    PABR_CHECK(i == 0 || entries[i - 1].id < e.id,
               "cell audit: table not strictly id-sorted");
    PABR_CHECK(e.bandwidth > 0, "cell audit: non-positive bandwidth");
    PABR_CHECK(e.view.reserve_bandwidth > 0,
               "cell audit: non-positive reserve bandwidth");
    sum += static_cast<double>(e.bandwidth);
  }
  // Bandwidths are integral BUs, so both sides are exactly representable:
  // any difference at all means an attach/detach/reassign lost track.
  PABR_CHECK(sum == cell.used(),
             "cell audit: B_u != sum of resident connection bandwidths");
  PABR_CHECK(cell.used() <=
                 cell.soft_capacity() + admission::kAdmissionTolerance,
             "cell audit: occupancy exceeds soft capacity");
}

void audit_link(const wired::Link& link) {
  PABR_CHECK(link.attached_sum() == link.used(),
             "link audit: used() != sum of attached bandwidths");
  PABR_CHECK(link.used() <= link.capacity() + admission::kAdmissionTolerance,
             "link audit: occupancy exceeds capacity");
}

traffic::Bandwidth held_bandwidth(const core::Cell& cell,
                                  traffic::ConnectionId id) {
  const auto& entries = cell.connections();
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), id,
      [](const traffic::ConnectionEntry& e, traffic::ConnectionId key) {
        return e.id < key;
      });
  if (it == entries.end() || it->id != id) return -1;
  return it->bandwidth;
}

}  // namespace pabr::audit
