// Invariant-audit primitives shared by the system-level sweeps
// (audit/system_audit.cc): structural checks over the data structures the
// simulators mutate on every event. Each check throws InvariantError with
// a message naming the violated invariant.
//
// The full catalogue audited at event boundaries (see DESIGN.md §8):
//
//   I1  Cell tables are strictly id-sorted with positive bandwidths.
//   I2  Per-cell B_u equals the sum of resident connection bandwidths
//       exactly (bandwidths are integral BUs, so double sums are exact).
//   I3  B_u never exceeds the soft capacity C * (1 + margin) beyond the
//       admission tolerance.
//   I4  Every mobile's cell-entry (and soft hand-off dual leg) exists and
//       carries exactly the mobile's current bandwidth; per-cell resident
//       counts match the mobile table.
//   I5  The incremental reservation engine reproduces the from-scratch
//       Eq. (6) rescan bitwise (0 ULPs) for every cell.
//   I6  The signaling accountant is closed at event boundaries (every
//       begin_admission was balanced by end_admission).
//   I7  Wired link occupancy equals the sum of attached per-connection
//       bandwidths, and matches the resident mobiles' wireless occupancy
//       (access link per cell; shared uplink over all mobiles).
//   I8  Estimator event stores are event-time-sorted, hold nothing newer
//       than the last recorded event, and respect the N_quad cap
//       (hoef::HandoffEstimator::audit).
//   I9  Degraded mode (fault injection): the I5 comparison runs per
//       (neighbour -> cell) pair over the reachable, non-stale pairs
//       only. Unreachable pairs have no comparable terms (both the
//       production and the replay path substitute the configured static
//       floor); stale pairs' caches were intentionally dropped and are
//       bitwise-audited against the from-scratch rescan by the production
//       path itself at the next successful exchange (the post-heal
//       re-sync in recompute_reservation). The sweep never accumulates a
//       stale pair — doing so would rebuild its cache and silently
//       discharge that production audit.
//   I10 Checkpoint/resume determinism (DESIGN.md §13): a run resumed
//       from a snapshot taken at any time t — save(ostream) mid-run,
//       load(istream), run the remainder — produces a trajectory digest
//       and end state bitwise identical to the uninterrupted run, under
//       every scenario, fault schedule, snapshot point (including chains
//       of snapshots) and thread/shard count. Enforced per-seed by
//       bench/fuzz_driver (audit::run_scenario_resume_digest) and by the
//       sharded checkpoint tests; unlike I1-I9 it is a whole-run
//       differential property, not an event-boundary sweep.
#pragma once

#include "core/cell.h"
#include "traffic/connection.h"
#include "wired/link.h"

namespace pabr::audit {

/// I1-I3 for one radio cell.
void audit_cell(const core::Cell& cell);

/// I7's conservation half for one wired link: used() == the sum of the
/// attached per-connection bandwidths, within capacity.
void audit_link(const wired::Link& link);

/// Bandwidth the cell's table holds for connection `id`, or -1 when the
/// connection is not attached (binary search over the sorted table).
traffic::Bandwidth held_bandwidth(const core::Cell& cell,
                                  traffic::ConnectionId id);

}  // namespace pabr::audit
