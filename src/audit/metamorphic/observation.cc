#include "audit/metamorphic/observation.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace pabr::audit::metamorphic {
namespace {

/// Bound on the relative reassociation error tolerated for the sums
/// named in Tolerance. The relaxed sums have at most a few hundred
/// non-negative terms, so their reassociation error is bounded by
/// n * eps ~ 1e-13 relative; 1e-12 leaves headroom without letting a
/// model-level bug (which shifts values by whole BUs or probabilities)
/// slip through.
constexpr double kRelTol = 1e-12;

bool nearly_equal(double a, double b) {
  if (a == b) return true;  // covers +-0 and exact hits
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= kRelTol * scale;
}

class Differ {
 public:
  explicit Differ(const Tolerance& tol) : tol_(tol) {}

  void exact_f(const char* name, double a, double b) {
    // Bitwise: NaN != NaN and -0 != +0 are real divergences here.
    if (mismatch_ || std::bit_cast<std::uint64_t>(a) ==
                         std::bit_cast<std::uint64_t>(b)) {
      return;
    }
    record(name, a, b, "bitwise");
  }

  void relaxed_f(const char* name, double a, double b, bool relaxed) {
    if (mismatch_) return;
    if (relaxed ? nearly_equal(a, b)
                : std::bit_cast<std::uint64_t>(a) ==
                      std::bit_cast<std::uint64_t>(b)) {
      return;
    }
    record(name, a, b, relaxed ? "relative 1e-12" : "bitwise");
  }

  void exact_u(const char* name, std::uint64_t a, std::uint64_t b) {
    if (mismatch_ || a == b) return;
    std::ostringstream os;
    os << where_ << name << ": " << a << " != " << b;
    mismatch_ = os.str();
  }

  void set_where(std::string where) { where_ = std::move(where); }
  const std::optional<std::string>& mismatch() const { return mismatch_; }
  const Tolerance& tol() const { return tol_; }

 private:
  void record(const char* name, double a, double b, const char* mode) {
    std::ostringstream os;
    os.precision(17);
    os << where_ << name << ": " << a << " != " << b << " (" << mode << ")";
    mismatch_ = os.str();
  }

  Tolerance tol_;
  std::string where_;
  std::optional<std::string> mismatch_;
};

}  // namespace

Observation observe(const core::CellularSystem& sys) {
  Observation obs;
  const int n = sys.config().num_cells;
  obs.cells.reserve(static_cast<std::size_t>(n));
  for (geom::CellId c = 0; c < n; ++c) {
    const core::CellStatus s = sys.cell_status(c);
    CellObservation co;
    co.pcb = s.pcb;
    co.phd = s.phd;
    co.t_est = s.t_est;
    co.br = s.br;
    co.bu = s.bu;
    co.br_avg = s.br_avg;
    co.bu_avg = s.bu_avg;
    co.requests = s.requests;
    co.blocks = s.blocks;
    co.handoffs = s.handoffs;
    co.drops = s.drops;
    obs.cells.push_back(co);
  }
  const core::SystemStatus s = sys.system_status();
  obs.sys_pcb = s.pcb;
  obs.sys_phd = s.phd;
  obs.n_calc = s.n_calc;
  obs.br_avg = s.br_avg;
  obs.bu_avg = s.bu_avg;
  obs.overload_frac = s.overload_frac;
  obs.requests = s.requests;
  obs.blocks = s.blocks;
  obs.handoffs = s.handoffs;
  obs.drops = s.drops;
  obs.br_calculations = s.br_calculations;
  obs.backhaul_messages = s.backhaul_messages;
  obs.degrades = s.degrades;
  obs.upgrades = s.upgrades;
  obs.soft_allocations = s.soft_allocations;
  obs.soft_fallbacks = s.soft_fallbacks;
  obs.events_executed = sys.events_executed();
  obs.active_connections = sys.active_connections();
  obs.wired_blocks = sys.wired_blocks();
  obs.wired_drops = sys.wired_drops();
  return obs;
}

std::uint64_t digest(const Observation& obs) {
  util::Fnv1a d;
  d.add_u64(obs.cells.size());
  for (const CellObservation& c : obs.cells) {
    d.add_double(c.pcb);
    d.add_double(c.phd);
    d.add_double(c.t_est);
    d.add_double(c.br);
    d.add_double(c.bu);
    d.add_double(c.br_avg);
    d.add_double(c.bu_avg);
    d.add_u64(c.requests);
    d.add_u64(c.blocks);
    d.add_u64(c.handoffs);
    d.add_u64(c.drops);
  }
  d.add_double(obs.sys_pcb);
  d.add_double(obs.sys_phd);
  d.add_double(obs.n_calc);
  d.add_double(obs.br_avg);
  d.add_double(obs.bu_avg);
  d.add_double(obs.overload_frac);
  d.add_u64(obs.requests);
  d.add_u64(obs.blocks);
  d.add_u64(obs.handoffs);
  d.add_u64(obs.drops);
  d.add_u64(obs.br_calculations);
  d.add_u64(obs.backhaul_messages);
  d.add_u64(obs.degrades);
  d.add_u64(obs.upgrades);
  d.add_u64(obs.soft_allocations);
  d.add_u64(obs.soft_fallbacks);
  d.add_u64(obs.events_executed);
  d.add_u64(obs.active_connections);
  d.add_u64(obs.wired_blocks);
  d.add_u64(obs.wired_drops);
  return d.value();
}

std::optional<std::string> compare(const Observation& base,
                                   const Observation& mapped,
                                   const Tolerance& tol) {
  Differ d(tol);
  if (base.cells.size() != mapped.cells.size()) {
    return "cell count: " + std::to_string(base.cells.size()) +
           " != " + std::to_string(mapped.cells.size());
  }
  for (std::size_t i = 0; i < base.cells.size(); ++i) {
    d.set_where("cell " + std::to_string(i) + " ");
    const CellObservation& a = base.cells[i];
    const CellObservation& b = mapped.cells[i];
    d.exact_f("pcb", a.pcb, b.pcb);
    d.exact_f("phd", a.phd, b.phd);
    d.exact_f("t_est", a.t_est, b.t_est);
    d.relaxed_f("br", a.br, b.br, tol.cell_reservation_ulp);
    d.exact_f("bu", a.bu, b.bu);
    d.relaxed_f("br_avg", a.br_avg, b.br_avg, tol.cell_reservation_ulp);
    d.exact_f("bu_avg", a.bu_avg, b.bu_avg);
    d.exact_u("requests", a.requests, b.requests);
    d.exact_u("blocks", a.blocks, b.blocks);
    d.exact_u("handoffs", a.handoffs, b.handoffs);
    d.exact_u("drops", a.drops, b.drops);
  }
  d.set_where("system ");
  d.exact_f("pcb", base.sys_pcb, mapped.sys_pcb);
  d.exact_f("phd", base.sys_phd, mapped.sys_phd);
  d.exact_f("n_calc", base.n_calc, mapped.n_calc);
  // br_avg additionally inherits the per-cell reservation relaxation:
  // relaxed per-cell inputs cannot reproduce a bitwise mean.
  d.relaxed_f("br_avg", base.br_avg, mapped.br_avg,
              tol.system_mean_ulp || tol.cell_reservation_ulp);
  d.relaxed_f("bu_avg", base.bu_avg, mapped.bu_avg, tol.system_mean_ulp);
  d.relaxed_f("overload_frac", base.overload_frac, mapped.overload_frac,
              tol.system_mean_ulp);
  d.exact_u("requests", base.requests, mapped.requests);
  d.exact_u("blocks", base.blocks, mapped.blocks);
  d.exact_u("handoffs", base.handoffs, mapped.handoffs);
  d.exact_u("drops", base.drops, mapped.drops);
  d.exact_u("br_calculations", base.br_calculations, mapped.br_calculations);
  d.exact_u("backhaul_messages", base.backhaul_messages,
            mapped.backhaul_messages);
  d.exact_u("degrades", base.degrades, mapped.degrades);
  d.exact_u("upgrades", base.upgrades, mapped.upgrades);
  d.exact_u("soft_allocations", base.soft_allocations,
            mapped.soft_allocations);
  d.exact_u("soft_fallbacks", base.soft_fallbacks, mapped.soft_fallbacks);
  d.exact_u("events_executed", base.events_executed, mapped.events_executed);
  d.exact_u("active_connections", base.active_connections,
            mapped.active_connections);
  d.exact_u("wired_blocks", base.wired_blocks, mapped.wired_blocks);
  d.exact_u("wired_drops", base.wired_drops, mapped.wired_drops);
  return d.mismatch();
}

}  // namespace pabr::audit::metamorphic
