// End-of-run observation vector for the metamorphic-equivalence harness
// (DESIGN.md §14).
//
// An Observation flattens every observable the harness compares across a
// behaviour-preserving scenario transformation: the per-cell Table-2
// metrics, the SystemStatus aggregates, and the executor-level totals
// (events executed, live connections, wired blocks/drops). Each transform
// in transforms.h ships the exact mapping that carries an observation of
// the TRANSFORMED run back into the original scenario's frame — cell
// permutation, bandwidth-unit division — after which the two vectors must
// agree field by field.
//
// Agreement is bitwise by default. The only exceptions are sums whose
// association the transform provably changes (reservation/engine.cc
// chains one running B_r sum across both neighbor groups, and
// system_status() folds per-cell means in cell-index order), which are
// compared under a bounded relative tolerance instead; Tolerance says
// which of those two classes a transform is allowed to relax.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/system.h"
#include "util/digest.h"

namespace pabr::audit::metamorphic {

/// Per-cell slice of the observation (core::CellStatus minus the
/// self-describing 1-based cell label — the position in
/// Observation::cells is the identity).
struct CellObservation {
  double pcb = 0.0;
  double phd = 0.0;
  double t_est = 0.0;
  double br = 0.0;
  double bu = 0.0;
  double br_avg = 0.0;
  double bu_avg = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t blocks = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t drops = 0;
};

struct Observation {
  std::vector<CellObservation> cells;

  // core::SystemStatus, flattened.
  double sys_pcb = 0.0;
  double sys_phd = 0.0;
  double n_calc = 0.0;
  double br_avg = 0.0;
  double bu_avg = 0.0;
  double overload_frac = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t blocks = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t drops = 0;
  std::uint64_t br_calculations = 0;
  std::uint64_t backhaul_messages = 0;
  std::uint64_t degrades = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t soft_allocations = 0;
  std::uint64_t soft_fallbacks = 0;

  // Executor-level totals.
  std::uint64_t events_executed = 0;
  std::uint64_t active_connections = 0;
  std::uint64_t wired_blocks = 0;
  std::uint64_t wired_drops = 0;
};

/// Snapshot every observable of a finished run.
Observation observe(const core::CellularSystem& sys);

/// Order-sensitive FNV-1a over the full observation, doubles hashed by
/// bit pattern — equal digests iff bitwise-equal observations.
std::uint64_t digest(const Observation& obs);

/// Which floating-point sums a transform is allowed to relax from
/// bitwise equality to a bounded relative error, because the transform
/// reassociates them (see header comment). Everything else — counters,
/// probabilities derived from integer tallies, occupancy — stays exact.
struct Tolerance {
  /// Per-cell br / br_avg: the direction-mirroring transform swaps the
  /// left/right neighbor groups of the engine's chained B_r sum.
  bool cell_reservation_ulp = false;
  /// System br_avg / bu_avg / overload_frac: any cell permutation
  /// reorders system_status()'s fold over cells.
  bool system_mean_ulp = false;
};

/// Field-by-field comparison of a base-run observation against a mapped
/// transformed-run observation. Returns a human-readable description of
/// the FIRST mismatching field ("cell 3 br_avg: 1.25 != 1.2500...01"),
/// or nullopt when the observations agree under `tol`.
std::optional<std::string> compare(const Observation& base,
                                   const Observation& mapped,
                                   const Tolerance& tol);

}  // namespace pabr::audit::metamorphic
