#include "audit/metamorphic/scripted.h"

#include <cmath>
#include <sstream>

#include "sim/random.h"
#include "util/check.h"

namespace pabr::audit::metamorphic {
namespace {

/// Speeds that are exactly 2^-j km/s in binary64: 3600 * 2^-j km/h.
constexpr double kSpeedCatalogueKmh[] = {225.0, 112.5, 56.25, 28.125,
                                         14.0625};

/// A position offset with an odd numerator over 2^20: adding any
/// multiple of 2^-12 (retry displacements, crossing distances) can never
/// produce an integer, so scripted mobiles never sit exactly on a cell
/// boundary.
double draw_offset(sim::Rng& rng) {
  const int odd = 2 * rng.uniform_int(0, (1 << 19) - 1) + 1;
  return static_cast<double>(odd) / static_cast<double>(1 << 20);
}

/// A strictly positive duration that is a multiple of 2^-10 s.
sim::Duration draw_q10(sim::Rng& rng, int max_units) {
  return static_cast<double>(1 + rng.uniform_int(0, max_units - 1)) / 1024.0;
}

const char* policy_name(admission::PolicyKind p) {
  switch (p) {
    case admission::PolicyKind::kAc1: return "AC1";
    case admission::PolicyKind::kAc2: return "AC2";
    case admission::PolicyKind::kAc3: return "AC3";
    case admission::PolicyKind::kStatic: return "static";
    case admission::PolicyKind::kNsDca: return "NS";
  }
  return "?";
}

}  // namespace

std::string ScriptedScenario::summary() const {
  std::ostringstream os;
  os << "seed=" << seed << " cells=" << config.num_cells
     << " policy=" << policy_name(config.policy)
     << " cap=" << config.capacity_bu << " arrivals=" << arrivals.size()
     << " horizon=" << horizon << " origin=" << config.time_origin
     << " scale=" << bu_scale;
  if (config.adaptive_qos) os << " adaptive";
  if (config.wired.has_value()) os << " wired";
  if (config.retry.enabled) os << " retry";
  if (config.soft_handoff_zone_km > 0.0) os << " softho";
  if (config.soft_capacity_margin > 0.0) os << " softcap";
  if (config.fault.enabled) {
    os << " outages=" << config.fault.outages.size();
  }
  return os.str();
}

ScriptedScenario random_scripted_scenario(std::uint64_t seed,
                                          bool with_faults) {
  const sim::RngFactory factory(seed);
  sim::Rng cfg_rng = factory.make("meta-config");
  sim::Rng arr_rng = factory.make("meta-arrivals");

  ScriptedScenario s;
  s.seed = seed;
  core::SystemConfig& c = s.config;

  const int n = cfg_rng.uniform_int(4, 12);
  c.num_cells = n;
  c.cell_diameter_km = 1.0;
  c.ring = true;  // the rotation transform needs the ring symmetry
  c.capacity_bu = static_cast<double>(cfg_rng.uniform_int(16, 48));

  switch (cfg_rng.uniform_int(0, 4)) {
    case 0: c.policy = admission::PolicyKind::kAc1; break;
    case 1: c.policy = admission::PolicyKind::kAc2; break;
    case 2: c.policy = admission::PolicyKind::kStatic; break;
    default: c.policy = admission::PolicyKind::kAc3; break;
  }
  c.static_g = static_cast<double>(cfg_rng.uniform_int(2, 12));

  c.adaptive_qos = cfg_rng.bernoulli(0.3);
  c.video_min_bu = 2;
  c.soft_capacity_margin = cfg_rng.bernoulli(0.25) ? 0.125 : 0.0;
  if (cfg_rng.bernoulli(0.3)) {
    wired::BackboneConfig w;
    w.access_capacity_bu =
        c.capacity_bu - static_cast<double>(cfg_rng.uniform_int(0, 8));
    w.uplink_capacity_bu = c.capacity_bu * static_cast<double>(n) / 2.0;
    c.wired = w;
  }
  c.soft_handoff_zone_km = cfg_rng.bernoulli(0.25) ? 0.25 : 0.0;

  const double phd_targets[] = {0.01, 0.02, 0.05};
  c.phd_target = phd_targets[cfg_rng.uniform_int(0, 2)];
  const double t_starts[] = {1.0, 2.0, 4.0};
  c.t_start = t_starts[cfg_rng.uniform_int(0, 2)];
  // kFixed only: adaptive step rules feed on continuous observables,
  // which the mirror transform is only ulp-equal on.
  c.t_est_step = reservation::StepPolicy::kFixed;
  // Default hoef config: infinite T_int selects the single-window
  // estimator path, whose event selection depends only on time
  // DIFFERENCES — required for time-shift invariance.

  const double route_fractions[] = {0.0, 0.5, 1.0};
  c.known_route_fraction = route_fractions[cfg_rng.uniform_int(0, 2)];

  c.workload.arrival_rate_per_cell = 0.0;  // scripted arrivals only

  c.retry.enabled = cfg_rng.bernoulli(0.5);
  // Multiples of 2^-4 s in [1, 8): speed * wait stays a multiple of
  // 2^-12 km for every catalogue speed.
  c.retry.wait_s =
      static_cast<double>(16 + cfg_rng.uniform_int(0, 111)) / 16.0;
  const double giveups[] = {0.0, 0.1, 0.25};
  c.retry.giveup_step = giveups[cfg_rng.uniform_int(0, 2)];

  c.incremental_reservation = cfg_rng.bernoulli(0.5);
  c.audit_every = cfg_rng.bernoulli(0.5) ? 0 : 7;
  c.seed = cfg_rng.engine()();
  c.time_origin = 0.0;

  s.horizon = static_cast<double>(96 + cfg_rng.uniform_int(0, 160));

  if (with_faults) {
    sim::Rng fault_rng = factory.make("meta-faults");
    c.fault.enabled = true;
    c.fault.seed = fault_rng.engine()();
    // All stochastic fault processes stay OFF: per-message fates are
    // hashed from cell ids and absolute times, so a cell permutation or
    // time shift would legitimately change them. Scripted windows are
    // the transformable subset.
    c.fault.link_mtbf_s = 0.0;
    c.fault.station_mtbf_s = 0.0;
    c.fault.message_loss = 0.0;
    c.fault.message_delay = 0.0;
    c.fault.degraded_floor_bu =
        static_cast<double>(fault_rng.uniform_int(4, 12));
    const int n_outages = 1 + fault_rng.uniform_int(0, 2);
    for (int i = 0; i < n_outages; ++i) {
      fault::ScriptedOutage o;
      if (fault_rng.bernoulli(0.5)) {
        o.kind = fault::ScriptedOutage::Kind::kLink;
        o.a = fault_rng.uniform_int(0, n - 1);
        o.b = (o.a + 1) % n;
      } else {
        o.kind = fault::ScriptedOutage::Kind::kStation;
        o.a = fault_rng.uniform_int(0, n - 1);
        o.b = geom::kNoCell;
      }
      o.from = draw_q10(fault_rng,
                        static_cast<int>(s.horizon * 0.7 * 1024.0));
      o.until = o.from +
                draw_q10(fault_rng,
                         static_cast<int>(s.horizon * 0.25 * 1024.0));
      c.fault.outages.push_back(o);
    }
  }

  const int n_arrivals = arr_rng.uniform_int(24, 96);
  sim::Time t = 0.0;
  traffic::ConnectionId id = 1;
  for (int i = 0; i < n_arrivals; ++i) {
    t += draw_q10(arr_rng, 2048);  // gaps in (0, 2] s, multiples of 2^-10
    if (t >= 0.75 * s.horizon) break;
    ScriptedArrival a;
    a.at = t;
    a.id = id++;
    a.cell = arr_rng.uniform_int(0, n - 1);
    a.offset = draw_offset(arr_rng);
    a.direction = arr_rng.bernoulli(0.5) ? +1 : -1;
    a.speed_kmh = kSpeedCatalogueKmh[arr_rng.uniform_int(0, 4)];
    a.service = arr_rng.bernoulli(0.75) ? traffic::ServiceClass::kVoice
                                        : traffic::ServiceClass::kVideo;
    a.lifetime_s = draw_q10(arr_rng, 120 * 1024);
    s.arrivals.push_back(a);
  }
  return s;
}

Observation run_scripted(const ScriptedScenario& scenario) {
  const traffic::ScopedBuScale scale(scenario.bu_scale);
  core::CellularSystem sys(scenario.config);
  const double diameter = scenario.config.cell_diameter_km;
  for (const ScriptedArrival& a : scenario.arrivals) {
    PABR_CHECK(a.at > scenario.config.time_origin,
               "scripted arrival before the time origin");
    sys.run_until(a.at);
    traffic::ConnectionRequest req;
    req.id = a.id;
    req.cell = a.cell;
    req.position_km = (static_cast<double>(a.cell) + a.offset) * diameter;
    req.direction = a.direction;
    req.speed_kmh = a.speed_kmh;
    req.service = a.service;
    req.lifetime_s = a.lifetime_s;
    req.requested_at = a.at;
    req.attempt = 1;
    sys.submit_request(req);
  }
  sys.run_until(scenario.config.time_origin + scenario.horizon);
  // Final invariant checkpoint; callable in every build (audited or not).
  sys.audit_invariants();
  return observe(sys);
}

}  // namespace pabr::audit::metamorphic
