// Scripted scenarios for the metamorphic-equivalence harness
// (DESIGN.md §14).
//
// A scripted scenario is a fully explicit simulation: the Poisson arrival
// process is off (arrival_rate_per_cell = 0) and every connection request
// — id, submission time, cell, in-cell offset, direction, speed, service,
// lifetime — is listed, with faults limited to scripted outage windows.
// Explicitness is what makes the catalogue's behaviour-preserving
// transformations (cell rotation, direction mirroring, time-origin
// shifts, bandwidth-unit rescaling, id relabelling) expressible as pure
// functions of the scenario, with an exactly known observation mapping.
//
// Every continuous quantity is a dyadic rational chosen so that all
// position/time arithmetic in the simulator is EXACT in binary64, which
// is what entitles the harness to demand bitwise-equal observations:
//   * in-cell offsets are odd/2^20 — an odd numerator plus any multiple
//     of 2^-12 (see speeds/waits below) can never be an integer, so no
//     mobile ever sits exactly on a cell boundary, where reflection
//     would resolve cell_at() asymmetrically;
//   * speeds are 3600 * 2^-j km/h, i.e. exactly 2^-j km/s, so distance
//     = speed * time and time = distance / speed are exact;
//   * submission times, lifetimes and outage window edges are multiples
//     of 2^-10 s; retry waits are multiples of 2^-4 s, making every
//     retry displacement a multiple of 2^-12 km.
//
// Config restrictions (documented per-field in random_scripted_scenario):
// ring topology (rotation needs it), policy in {AC1, AC2, AC3, static}
// (NS-DCA anchors its estimation interval at absolute time and is not
// time-shift invariant), T_est step fixed, default hoef windowing
// (infinite T_int), zero stochastic fault rates (per-message fates are
// keyed by cell ids, so a cell permutation would change them).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/metamorphic/observation.h"
#include "core/system.h"
#include "traffic/connection.h"

namespace pabr::audit::metamorphic {

/// One explicit new-connection request. `at` is the ABSOLUTE submission
/// time (strictly after config.time_origin; strictly increasing across
/// the list).
struct ScriptedArrival {
  sim::Time at = 0.0;
  traffic::ConnectionId id = 0;
  geom::CellId cell = 0;
  /// In-cell position offset in units of the cell diameter, in (0, 1).
  double offset = 0.5;
  int direction = +1;
  double speed_kmh = 0.0;
  traffic::ServiceClass service = traffic::ServiceClass::kVoice;
  sim::Duration lifetime_s = 0.0;
};

struct ScriptedScenario {
  std::uint64_t seed = 0;  ///< generator seed (identification only)
  core::SystemConfig config;
  std::vector<ScriptedArrival> arrivals;
  /// Run horizon: the run ends at config.time_origin + horizon.
  sim::Duration horizon = 0.0;
  /// Bandwidth-unit scale installed (via traffic::ScopedBuScale) for the
  /// duration of the run; 1 outside the M4 rescaling transform.
  traffic::Bandwidth bu_scale = 1;

  /// One-line description for failure messages.
  std::string summary() const;
};

/// Expands `seed` into a scenario within the restrictions above. The
/// same seed always yields the same scenario, so a failing seed IS the
/// repro. `with_faults` adds 1-3 scripted link/station outage windows
/// (all stochastic fault rates stay zero).
ScriptedScenario random_scripted_scenario(std::uint64_t seed,
                                          bool with_faults = false);

/// Builds the system, replays the arrival list (run_until + submit), runs
/// to the horizon, executes one explicit audit_invariants() checkpoint
/// and returns the observation.
Observation run_scripted(const ScriptedScenario& scenario);

}  // namespace pabr::audit::metamorphic
