#include "audit/metamorphic/transforms.h"

#include <algorithm>

#include "sim/random.h"
#include "util/check.h"

namespace pabr::audit::metamorphic {
namespace {

geom::CellId rotate_cell(geom::CellId c, int k, int n) {
  return (c + k) % n;
}

geom::CellId mirror_cell(geom::CellId c, int n) { return n - 1 - c; }

}  // namespace

ScriptedScenario rotate_cells(const ScriptedScenario& s, int k) {
  const int n = s.config.num_cells;
  PABR_CHECK(s.config.ring, "rotation requires the ring topology");
  PABR_CHECK(k > 0 && k < n, "rotation amount out of range");
  ScriptedScenario out = s;
  for (ScriptedArrival& a : out.arrivals) {
    a.cell = rotate_cell(a.cell, k, n);
  }
  for (fault::ScriptedOutage& o : out.config.fault.outages) {
    o.a = rotate_cell(o.a, k, n);
    if (o.kind == fault::ScriptedOutage::Kind::kLink) {
      o.b = rotate_cell(o.b, k, n);
    }
  }
  return out;
}

ScriptedScenario mirror_direction(const ScriptedScenario& s) {
  const int n = s.config.num_cells;
  ScriptedScenario out = s;
  for (ScriptedArrival& a : out.arrivals) {
    a.cell = mirror_cell(a.cell, n);
    // Position x = cell + offset maps to L - x = (n-1-cell) + (1-offset);
    // 1 - odd/2^20 keeps an odd numerator, so the no-integer-positions
    // guarantee survives reflection.
    a.offset = 1.0 - a.offset;
    a.direction = -a.direction;
  }
  for (fault::ScriptedOutage& o : out.config.fault.outages) {
    o.a = mirror_cell(o.a, n);
    if (o.kind == fault::ScriptedOutage::Kind::kLink) {
      o.b = mirror_cell(o.b, n);  // links are undirected; order is free
    }
  }
  return out;
}

ScriptedScenario shift_time(const ScriptedScenario& s, sim::Time delta) {
  PABR_CHECK(delta > 0.0, "time shift must move forward");
  ScriptedScenario out = s;
  out.config.time_origin += delta;
  for (ScriptedArrival& a : out.arrivals) a.at += delta;
  for (fault::ScriptedOutage& o : out.config.fault.outages) {
    o.from += delta;
    o.until += delta;
  }
  return out;
}

ScriptedScenario rescale_bu(const ScriptedScenario& s,
                            traffic::Bandwidth factor) {
  PABR_CHECK(factor >= 2 && (factor & (factor - 1)) == 0,
             "BU scale factor must be a power of two");
  ScriptedScenario out = s;
  out.bu_scale = s.bu_scale * factor;
  const double f = static_cast<double>(factor);
  core::SystemConfig& c = out.config;
  c.capacity_bu *= f;
  c.video_min_bu *= factor;
  c.static_g *= f;
  c.fault.degraded_floor_bu *= f;
  if (c.wired.has_value()) {
    c.wired->access_capacity_bu *= f;
    c.wired->uplink_capacity_bu *= f;
  }
  return out;
}

ScriptedScenario shift_ids(const ScriptedScenario& s, std::uint64_t delta) {
  ScriptedScenario out = s;
  for (ScriptedArrival& a : out.arrivals) a.id += delta;
  return out;
}

Observation unmap_rotation(const Observation& obs, int k) {
  Observation out = obs;
  const int n = static_cast<int>(obs.cells.size());
  for (int c = 0; c < n; ++c) {
    out.cells[static_cast<std::size_t>(c)] =
        obs.cells[static_cast<std::size_t>(rotate_cell(c, k, n))];
  }
  return out;
}

Observation unmap_mirror(const Observation& obs) {
  Observation out = obs;
  std::reverse(out.cells.begin(), out.cells.end());
  return out;
}

Observation unmap_rescale(const Observation& obs,
                          traffic::Bandwidth factor) {
  Observation out = obs;
  const double f = static_cast<double>(factor);
  for (CellObservation& c : out.cells) {
    c.br /= f;
    c.bu /= f;
    c.br_avg /= f;
    c.bu_avg /= f;
  }
  out.br_avg /= f;
  out.bu_avg /= f;
  return out;
}

std::vector<Transform> catalogue(const ScriptedScenario& s,
                                 std::uint64_t seed) {
  const sim::RngFactory factory(seed);
  sim::Rng rng = factory.make("meta-transforms");
  const int n = s.config.num_cells;
  const int k = rng.uniform_int(1, n - 1);
  // Dyadic forward shift: a multiple of 2^-10 s in (0, 512].
  const sim::Time delta =
      static_cast<double>(1 + rng.uniform_int(0, 512 * 1024 - 1)) / 1024.0;
  const traffic::Bandwidth scales[] = {2, 4, 8};
  const traffic::Bandwidth f = scales[rng.uniform_int(0, 2)];
  const std::uint64_t id_delta =
      1 + static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 20));

  std::vector<Transform> out;
  out.push_back(Transform{
      "M1-rotate(" + std::to_string(k) + ")",
      [k](const ScriptedScenario& in) { return rotate_cells(in, k); },
      [k](const Observation& o) { return unmap_rotation(o, k); },
      Tolerance{false, true}});
  out.push_back(Transform{
      "M2-mirror",
      [](const ScriptedScenario& in) { return mirror_direction(in); },
      [](const Observation& o) { return unmap_mirror(o); },
      Tolerance{true, true}});
  out.push_back(Transform{
      "M3-shift-time(" + std::to_string(delta) + ")",
      [delta](const ScriptedScenario& in) { return shift_time(in, delta); },
      [](const Observation& o) { return o; },
      Tolerance{false, false}});
  out.push_back(Transform{
      "M4-rescale-bu(" + std::to_string(f) + ")",
      [f](const ScriptedScenario& in) { return rescale_bu(in, f); },
      [f](const Observation& o) { return unmap_rescale(o, f); },
      Tolerance{false, false}});
  out.push_back(Transform{
      "M5-shift-ids(" + std::to_string(id_delta) + ")",
      [id_delta](const ScriptedScenario& in) {
        return shift_ids(in, id_delta);
      },
      [](const Observation& o) { return o; },
      Tolerance{false, false}});
  // Composition probe: rotation after mirroring exercises that the
  // catalogue composes (satellite test; also a stronger permutation than
  // either alone).
  out.push_back(Transform{
      "M1xM2-rotate(" + std::to_string(k) + ")-mirror",
      [k](const ScriptedScenario& in) {
        return rotate_cells(mirror_direction(in), k);
      },
      [k](const Observation& o) {
        return unmap_mirror(unmap_rotation(o, k));
      },
      Tolerance{true, true}});
  return out;
}

}  // namespace pabr::audit::metamorphic
