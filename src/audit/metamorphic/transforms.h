// The metamorphic transformation catalogue (DESIGN.md §14).
//
// Each transform is a pure function of a ScriptedScenario paired with
// the exact mapping that carries an observation of the transformed run
// back into the original scenario's frame, and with the tolerance class
// the comparison is entitled to (observation.h). The pairs are:
//
//   M1 rotate_cells(k)   — ring cell-index rotation c -> (c+k) mod n.
//                          Unmap: inverse cell permutation. Per-cell
//                          fields exact; system means over cells are
//                          reassociated (ulp class).
//   M2 mirror_direction  — spatial reflection x -> L - x: cells
//                          c -> n-1-c, offsets o -> 1-o, directions
//                          flip. Unmap: reverse the cell vector. The
//                          engine's chained left+right B_r sum is
//                          reassociated, so per-cell br/br_avg join the
//                          ulp class.
//   M3 shift_time(d)     — time-origin shift: every absolute time
//                          (origin, arrivals, outage windows) moves by
//                          the same dyadic d. Unmap: identity; fully
//                          bitwise.
//   M4 rescale_bu(f)     — uniform bandwidth-unit rescaling by a power
//                          of two: demands (via traffic::ScopedBuScale)
//                          and every BU-dimensioned config field scale
//                          by f. Unmap: divide the BU-dimensioned
//                          observables by f; fully bitwise (power-of-two
//                          scaling commutes with binary64 rounding).
//   M5 shift_ids(d)      — order-preserving connection-id relabelling
//                          id -> id + d. Unmap: identity; fully bitwise.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "audit/metamorphic/observation.h"
#include "audit/metamorphic/scripted.h"

namespace pabr::audit::metamorphic {

// ---- Scenario transforms (pure; also unit-tested in isolation) ----------

/// M1: rotate cell indices by k (0 < k < num_cells) on the ring.
ScriptedScenario rotate_cells(const ScriptedScenario& s, int k);

/// M2: reflect the road. Self-inverse.
ScriptedScenario mirror_direction(const ScriptedScenario& s);

/// M3: shift every absolute time by delta (> 0, dyadic).
ScriptedScenario shift_time(const ScriptedScenario& s, sim::Time delta);

/// M4: multiply every bandwidth by `factor` (a power of two >= 2).
ScriptedScenario rescale_bu(const ScriptedScenario& s,
                            traffic::Bandwidth factor);

/// M5: relabel connection ids by +delta (order-preserving).
ScriptedScenario shift_ids(const ScriptedScenario& s, std::uint64_t delta);

// ---- Observation unmaps --------------------------------------------------

/// Inverse of the M1 cell permutation: entry c of the result is entry
/// (c+k) mod n of `obs`.
Observation unmap_rotation(const Observation& obs, int k);

/// Inverse of the M2 reflection: reverses the cell vector.
Observation unmap_mirror(const Observation& obs);

/// Inverse of the M4 rescaling: divides the BU-dimensioned observables
/// (br, bu, br_avg, bu_avg per cell and system) by `factor`.
Observation unmap_rescale(const Observation& obs, traffic::Bandwidth factor);

// ---- Catalogue -----------------------------------------------------------

struct Transform {
  std::string name;
  std::function<ScriptedScenario(const ScriptedScenario&)> apply;
  /// Maps an observation of the transformed run back into the original
  /// scenario's frame.
  std::function<Observation(const Observation&)> unmap;
  Tolerance tolerance;
};

/// The M1-M5 instances for one scenario, with per-seed transform
/// parameters (rotation amount, time shift, scale factor, id shift)
/// drawn deterministically from `seed`.
std::vector<Transform> catalogue(const ScriptedScenario& s,
                                 std::uint64_t seed);

}  // namespace pabr::audit::metamorphic
