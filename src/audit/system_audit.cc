// The system-level invariant sweeps (catalogue in audit/invariants.h).
//
// Defined as members of the two simulators so the audit can see private
// state (the mobile tables, the reservation engine) without widening the
// public API; kept in src/audit/ because the sweeps ARE the audit
// subsystem — the systems only own the per-event trigger.
//
// Every check here is trajectory-transparent: the sweep reads occupancy
// and metrics, replays reservation maths through paths that are bitwise
// equal to the production ones (the incremental engine's caches may warm
// up, which by construction never changes a returned value), and draws
// from no RNG stream. Running with audit_every = 1 therefore produces the
// exact same simulation as running with the audit off.
#include <vector>

#include "audit/invariants.h"
#include "core/hex_system.h"
#include "core/system.h"
#include "util/check.h"

namespace pabr::core {

void CellularSystem::audit_invariants() {
  const sim::Time t = simulator_.now();

  // I1-I3: per-cell table ordering, B_u conservation, capacity ceiling.
  for (const Cell& c : cells_) audit::audit_cell(c);

  // I6: no admission bracket may leak past an event boundary.
  PABR_CHECK(!accountant_.admission_open(),
             "audit: admission left open at event boundary");

  // I4: mobile table <-> cell entries (primary + soft hand-off dual leg).
  std::vector<int> residents(cells_.size(), 0);
  std::vector<double> access_bu(cells_.size(), 0.0);
  double uplink_bu = 0.0;
  for (const auto& [id, rec] : mobiles_) {
    PABR_CHECK(rec.m.cell >= 0 &&
                   rec.m.cell < static_cast<geom::CellId>(cells_.size()),
               "audit: mobile resides in invalid cell");
    const auto cell = static_cast<std::size_t>(rec.m.cell);
    PABR_CHECK(rec.m.current_bandwidth > 0,
               "audit: mobile with non-positive bandwidth");
    PABR_CHECK(audit::held_bandwidth(cells_[cell], id) ==
                   rec.m.current_bandwidth,
               "audit: cell entry bandwidth != mobile's current bandwidth");
    ++residents[cell];
    access_bu[cell] += static_cast<double>(rec.m.current_bandwidth);
    uplink_bu += static_cast<double>(rec.m.current_bandwidth);
    if (rec.dual()) {
      PABR_CHECK(rec.dual_cell >= 0 &&
                     rec.dual_cell < static_cast<geom::CellId>(cells_.size()),
                 "audit: dual leg in invalid cell");
      PABR_CHECK(rec.dual_cell != rec.m.cell,
                 "audit: dual leg in the mobile's own cell");
      PABR_CHECK(rec.dual_bw > 0, "audit: dual leg without bandwidth");
      const auto dual = static_cast<std::size_t>(rec.dual_cell);
      PABR_CHECK(audit::held_bandwidth(cells_[dual], id) == rec.dual_bw,
                 "audit: dual-leg entry bandwidth != pre-allocated grant");
      ++residents[dual];
    }
  }
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    PABR_CHECK(residents[c] == cells_[c].connection_count(),
               "audit: resident count != cell connection count");
  }

  // I7: wired occupancy mirrors the wireless side. Soft hand-off dual
  // legs are radio-only — the wired re-route happens at the crossing —
  // so only primary residency is charged.
  if (backbone_ != nullptr) {
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      const wired::Link& acc = backbone_->access(static_cast<geom::CellId>(c));
      audit::audit_link(acc);
      PABR_CHECK(acc.used() == access_bu[c],
                 "audit: access link != resident wireless occupancy");
    }
    audit::audit_link(backbone_->uplink());
    PABR_CHECK(backbone_->uplink().used() == uplink_bu,
               "audit: MSC uplink != total wireless occupancy");
  }

  // I5: the incremental engine must reproduce the from-scratch Eq. (6)
  // rescan bitwise. Accumulating here only warms the engine's caches —
  // never changes a value it will return — so the check is silent.
  //
  // I9 (degraded mode): under fault injection the comparison runs per
  // (neighbour -> cell) pair and skips pairs that are currently
  // unreachable (both replay paths substitute the same static floor, so
  // there are no terms to compare) or stale (the cache was intentionally
  // dropped; it is re-synced and bitwise-audited by the production path
  // at the next successful exchange). Stale pairs must NOT be
  // accumulated here — that would rebuild their caches and silently
  // discharge the production re-sync audit, making the sweep
  // trajectory-visible.
  if (config_.incremental_reservation) {
    for (geom::CellId cell = 0; cell < config_.num_cells; ++cell) {
      const sim::Duration t_est =
          stations_[static_cast<std::size_t>(cell)].window().t_est();
      if (faults_on()) {
        for (geom::CellId i : road_.neighbors(cell)) {
          if (!fault_->exchange_outcome(cell, i, t).delivered) continue;
          if (reservation_engine_.is_stale(i, cell)) continue;
          const double incremental = reservation_engine_.accumulate(
              i, cell, cells_[static_cast<std::size_t>(i)].connections(),
              stations_[static_cast<std::size_t>(i)].estimator(), t, t_est,
              0.0);
          PABR_CHECK(incremental ==
                         rescan_contribution(i, cell, t, t_est, 0.0),
                     "audit: incremental pair diverged from scratch rescan");
        }
        continue;
      }
      double incremental = 0.0;
      for (geom::CellId i : road_.neighbors(cell)) {
        incremental = reservation_engine_.accumulate(
            i, cell, cells_[static_cast<std::size_t>(i)].connections(),
            stations_[static_cast<std::size_t>(i)].estimator(), t, t_est,
            incremental);
      }
      PABR_CHECK(incremental == reservation_rescan(cell, t, t_est),
                 "audit: incremental B_r diverged from scratch rescan");
    }
  }

  // I8: estimator event stores.
  for (const BaseStation& s : stations_) s.estimator().audit();
}

void HexCellularSystem::audit_invariants() {
  const sim::Time t = simulator_.now();

  for (const Cell& c : cells_) audit::audit_cell(c);

  PABR_CHECK(!accountant_.admission_open(),
             "audit: admission left open at event boundary");

  std::vector<int> residents(cells_.size(), 0);
  for (const auto& [id, m] : mobiles_) {
    PABR_CHECK(m.cell >= 0 && m.cell < grid_.num_cells(),
               "audit: mobile resides in invalid cell");
    PABR_CHECK(audit::held_bandwidth(cells_[static_cast<std::size_t>(m.cell)],
                                     id) == m.bandwidth(),
               "audit: cell entry bandwidth != mobile's bandwidth");
    ++residents[static_cast<std::size_t>(m.cell)];
  }
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    PABR_CHECK(residents[c] == cells_[c].connection_count(),
               "audit: resident count != cell connection count");
  }

  // I5 / I9 — same degraded-mode rules as the linear sweep above.
  if (config_.incremental_reservation) {
    for (geom::CellId cell = 0; cell < grid_.num_cells(); ++cell) {
      const sim::Duration t_est =
          stations_[static_cast<std::size_t>(cell)].window().t_est();
      if (faults_on()) {
        for (geom::CellId i : grid_.neighbors(cell)) {
          if (!fault_->exchange_outcome(cell, i, t).delivered) continue;
          if (reservation_engine_.is_stale(i, cell)) continue;
          const double incremental = reservation_engine_.accumulate(
              i, cell, cells_[static_cast<std::size_t>(i)].connections(),
              stations_[static_cast<std::size_t>(i)].estimator(), t, t_est,
              0.0);
          PABR_CHECK(incremental ==
                         rescan_contribution(i, cell, t, t_est, 0.0),
                     "audit: incremental pair diverged from scratch rescan");
        }
        continue;
      }
      double incremental = 0.0;
      for (geom::CellId i : grid_.neighbors(cell)) {
        incremental = reservation_engine_.accumulate(
            i, cell, cells_[static_cast<std::size_t>(i)].connections(),
            stations_[static_cast<std::size_t>(i)].estimator(), t, t_est,
            incremental);
      }
      PABR_CHECK(incremental == reservation_rescan(cell, t, t_est),
                 "audit: incremental B_r diverged from scratch rescan");
    }
  }

  for (const BaseStation& s : stations_) s.estimator().audit();
}

}  // namespace pabr::core
