#include "backhaul/network.h"

#include "util/check.h"

namespace pabr::backhaul {

const char* message_type_name(MessageType t) {
  switch (t) {
    case MessageType::kTestWindowAnnounce:
      return "test_window_announce";
    case MessageType::kBandwidthQuery:
      return "bandwidth_query";
    case MessageType::kBandwidthReply:
      return "bandwidth_reply";
    case MessageType::kReservationCheck:
      return "reservation_check";
    case MessageType::kHandoffSignal:
      return "handoff_signal";
    case MessageType::kCount:
      break;
  }
  return "?";
}

InterconnectModel::InterconnectModel(InterconnectKind kind,
                                     double per_hop_latency_s)
    : kind_(kind), per_hop_latency_s_(per_hop_latency_s) {
  PABR_CHECK(per_hop_latency_s >= 0.0, "negative backhaul latency");
}

int InterconnectModel::hops_between(geom::CellId from, geom::CellId to) const {
  if (from == to) return 0;
  return kind_ == InterconnectKind::kStarMsc ? 2 : 1;
}

double InterconnectModel::latency_between(geom::CellId from,
                                          geom::CellId to) const {
  return per_hop_latency_s_ * hops_between(from, to);
}

void InterconnectModel::record(geom::CellId from, geom::CellId to,
                               MessageType type) {
  PABR_CHECK(type != MessageType::kCount, "bad message type");
  ++by_type_[static_cast<std::size_t>(type)];
  total_hops_ += static_cast<std::uint64_t>(hops_between(from, to));
}

std::uint64_t InterconnectModel::messages(MessageType type) const {
  PABR_CHECK(type != MessageType::kCount, "bad message type");
  return by_type_[static_cast<std::size_t>(type)];
}

std::uint64_t InterconnectModel::total_messages() const {
  std::uint64_t total = 0;
  for (auto c : by_type_) total += c;
  return total;
}

std::uint64_t InterconnectModel::total_hops() const { return total_hops_; }

std::string InterconnectModel::describe() const {
  return kind_ == InterconnectKind::kStarMsc ? "star (via MSC)"
                                             : "fully-connected BSs";
}

void InterconnectModel::reset() {
  by_type_.fill(0);
  total_hops_ = 0;
}

}  // namespace pabr::backhaul
