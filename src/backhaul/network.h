// Inter-BS signalling network model (paper Fig. 1).
//
// Two interconnect configurations are modelled:
//   * kStarMsc        — BSs talk only through the Mobile Switching Center
//                        (2 wired hops per BS->BS exchange); the MSC is
//                        where B_r computation logically runs.
//   * kFullyConnected — BSs talk directly (1 hop).
//
// The paper's complexity study (Fig. 13) counts B_r *calculations*; this
// model additionally tallies signalling messages and hop counts so the
// backhaul cost of AC1/AC2/AC3 can be compared per topology.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "geom/topology.h"

namespace pabr::backhaul {

enum class InterconnectKind { kStarMsc, kFullyConnected };

enum class MessageType : std::size_t {
  kTestWindowAnnounce = 0,  ///< cell 0 informs neighbours of T_est,0
  kBandwidthQuery,          ///< request for B_{i,0} from neighbour i
  kBandwidthReply,          ///< B_{i,0} back to cell 0
  kReservationCheck,        ///< AC2/AC3 neighbour-side admission test
  kHandoffSignal,           ///< connection context transfer on hand-off
  kCount
};

const char* message_type_name(MessageType t);

class InterconnectModel {
 public:
  InterconnectModel(InterconnectKind kind, double per_hop_latency_s = 0.0);

  /// Records one BS-to-BS (or BS-to-MSC-to-BS) message.
  void record(geom::CellId from, geom::CellId to, MessageType type);

  /// Wired hops a message between two BSs traverses under this topology.
  int hops_between(geom::CellId from, geom::CellId to) const;

  /// One-way delivery latency between BSs.
  double latency_between(geom::CellId from, geom::CellId to) const;

  std::uint64_t messages(MessageType type) const;
  std::uint64_t total_messages() const;
  std::uint64_t total_hops() const;

  InterconnectKind kind() const { return kind_; }
  std::string describe() const;

  void reset();

  /// Snapshot restore of the message tallies.
  void restore(
      const std::array<std::uint64_t,
                       static_cast<std::size_t>(MessageType::kCount)>& by_type,
      std::uint64_t total_hops) {
    by_type_ = by_type;
    total_hops_ = total_hops;
  }

 private:
  InterconnectKind kind_;
  double per_hop_latency_s_;
  std::array<std::uint64_t, static_cast<std::size_t>(MessageType::kCount)>
      by_type_{};
  std::uint64_t total_hops_ = 0;
};

}  // namespace pabr::backhaul
