#include "backhaul/signaling.h"

#include "util/check.h"

namespace pabr::backhaul {

void SignalingAccountant::begin_admission() {
  PABR_CHECK(!open_, "begin_admission: previous admission still open");
  open_ = true;
  in_flight_ = 0;
}

void SignalingAccountant::record_br_calculation(geom::CellId cell) {
  // Outside an admission (periodic refresh, tests) the calculation still
  // counts toward totals but not toward the per-admission N_calc mean.
  if (open_) ++in_flight_;
  total_.add();
  telemetry::bump(tel_br_calculations_);
  if (interconnect_ != nullptr) {
    // Computing B_r for `cell` requires a T_est announcement plus a
    // query/reply pair with every adjacent BS.
    for (geom::CellId n : topology_.neighbors(cell)) {
      interconnect_->record(cell, n, MessageType::kTestWindowAnnounce);
      interconnect_->record(cell, n, MessageType::kBandwidthQuery);
      interconnect_->record(n, cell, MessageType::kBandwidthReply);
    }
  }
}

void SignalingAccountant::end_admission() {
  PABR_CHECK(open_, "end_admission without begin_admission");
  open_ = false;
  per_admission_.add(static_cast<double>(in_flight_));
}

void SignalingAccountant::reset() {
  per_admission_.reset();
  total_.reset();
  in_flight_ = 0;
  open_ = false;
}

}  // namespace pabr::backhaul
