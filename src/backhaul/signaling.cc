#include "backhaul/signaling.h"

#include "util/check.h"

namespace pabr::backhaul {

void SignalingAccountant::begin_admission() {
  PABR_CHECK(!open_, "begin_admission: previous admission still open");
  open_ = true;
  in_flight_ = 0;
}

void SignalingAccountant::record_br_calculation(geom::CellId cell) {
  // Outside an admission (periodic refresh, tests) the calculation still
  // counts toward totals but not toward the per-admission N_calc mean.
  if (open_) ++in_flight_;
  total_.add();
  telemetry::bump(tel_br_calculations_);
  if (interconnect_ != nullptr) {
    // Computing B_r for `cell` requires a T_est announcement plus a
    // query/reply pair with every adjacent BS.
    for (geom::CellId n : topology_.neighbors(cell)) {
      interconnect_->record(cell, n, MessageType::kTestWindowAnnounce);
      interconnect_->record(cell, n, MessageType::kBandwidthQuery);
      interconnect_->record(n, cell, MessageType::kBandwidthReply);
    }
  }
}

void SignalingAccountant::count_br_calculation() {
  if (open_) ++in_flight_;
  total_.add();
  telemetry::bump(tel_br_calculations_);
}

bool SignalingAccountant::exchange(geom::CellId from, geom::CellId to,
                                   sim::Time t,
                                   fault::FaultInjector& injector,
                                   MessageType request_type) {
  const fault::ExchangeOutcome out = injector.exchange_outcome(from, to, t);
  if (interconnect_ != nullptr) {
    // The T_est announce piggybacks on B_r queries only (reachability
    // probes carry no window). The request is re-sent on every retry,
    // and the reply exists only when the exchange ultimately got through.
    if (request_type == MessageType::kBandwidthQuery) {
      interconnect_->record(from, to, MessageType::kTestWindowAnnounce);
    }
    for (int k = 0; k < out.attempts; ++k) {
      interconnect_->record(from, to, request_type);
    }
    if (out.delivered) {
      interconnect_->record(to, from, MessageType::kBandwidthReply);
    }
  }
  if (out.attempts > 1) {
    telemetry::bump(tel_retries_,
                    static_cast<std::uint64_t>(out.attempts - 1));
  }
  if (!out.delivered) telemetry::bump(tel_timeouts_);
  return out.delivered;
}

void SignalingAccountant::end_admission() {
  PABR_CHECK(open_, "end_admission without begin_admission");
  open_ = false;
  per_admission_.add(static_cast<double>(in_flight_));
}

void SignalingAccountant::reset() {
  per_admission_.reset();
  total_.reset();
  in_flight_ = 0;
  open_ = false;
}

}  // namespace pabr::backhaul
