// Accounting for the paper's complexity metric N_calc — "the average
// number of B_r calculations for the admission test of a new connection
// request" (§5.2.3, Fig. 13) — plus the per-admission signalling messages
// implied by each calculation.
#pragma once

#include "backhaul/network.h"
#include "fault/fault.h"
#include "geom/topology.h"
#include "sim/stats.h"
#include "telemetry/metrics.h"

namespace pabr::backhaul {

/// Scoped per-admission accounting. Usage:
///
///   accountant.begin_admission();
///   ... policy runs, calling record_br_calculation(cell) ...
///   accountant.end_admission();
///
/// Admissions must not nest: begin while open and end while closed are
/// invariant violations (PABR_CHECK). Prefer AdmissionScope below, which
/// also closes the admission when the policy throws.
class SignalingAccountant {
 public:
  SignalingAccountant(const geom::Topology& topology,
                      InterconnectModel* interconnect)
      : topology_(topology), interconnect_(interconnect) {}

  void begin_admission();

  /// One full B_r computation performed by/for `cell`: the cell's BS asks
  /// each adjacent BS for its expected hand-in bandwidth B_{i,cell} and
  /// receives a reply (paper §4.1 last paragraph).
  void record_br_calculation(geom::CellId cell);

  /// Tallies one B_r computation toward N_calc and the telemetry counter
  /// without the all-neighbors message loop. Fault-mode callers use this
  /// and then account each per-neighbour exchange() individually, so
  /// retried or undelivered messages are billed per attempt instead of
  /// assuming the fixed announce/query/reply triple always succeeds.
  void count_br_calculation();

  /// One query/reply exchange between `from` and `to` under fault
  /// injection: asks `injector` for the outcome, records `request_type`
  /// once per attempt (plus the T_est announce on the first attempt) and
  /// the reply only on delivery, and mirrors retries/timeouts onto the
  /// bound fault telemetry counters. Returns true when the exchange
  /// eventually succeeded within the retry budget.
  bool exchange(geom::CellId from, geom::CellId to, sim::Time t,
                fault::FaultInjector& injector, MessageType request_type);

  void end_admission();

  /// True between begin_admission and end_admission. Event handlers are
  /// never inside an admission at event boundaries — the audit layer
  /// checks this.
  bool admission_open() const { return open_; }
  /// B_r calculations recorded in the currently open admission.
  int in_flight() const { return in_flight_; }

  /// Mean B_r calculations per admission test (the paper's N_calc).
  double n_calc() const { return per_admission_.mean(); }
  std::uint64_t admissions_observed() const {
    return per_admission_.samples();
  }
  /// Sum of per-admission B_r calculation counts (snapshot payload; the
  /// pair (sum, samples) reconstructs the accumulator exactly).
  double per_admission_sum() const { return per_admission_.sum(); }
  std::uint64_t total_br_calculations() const { return total_.count(); }

  void reset();

  /// Snapshot restore. Only legal between admissions (open_ == false at
  /// every event boundary, which is where snapshots are taken).
  void restore(double per_admission_sum, std::uint64_t admissions,
               std::uint64_t total) {
    per_admission_.restore(per_admission_sum, admissions);
    total_.restore(total);
    in_flight_ = 0;
    open_ = false;
  }

  /// Mirrors every recorded B_r calculation onto a telemetry counter
  /// (telemetry/metrics.h). No-op until bound; folds away when telemetry
  /// is compiled out.
  void bind_telemetry(telemetry::Counter* br_calculations) {
    tel_br_calculations_ = br_calculations;
  }

  /// Fault-path telemetry: retransmissions and exhausted retry budgets
  /// observed by exchange(). No-ops until bound.
  void bind_fault_telemetry(telemetry::Counter* retries,
                            telemetry::Counter* timeouts) {
    tel_retries_ = retries;
    tel_timeouts_ = timeouts;
  }

 private:
  const geom::Topology& topology_;
  InterconnectModel* interconnect_;  // may be null (no message accounting)
  sim::MeanAccumulator per_admission_;
  sim::Counter total_;
  int in_flight_ = 0;
  bool open_ = false;
  telemetry::Counter* tel_br_calculations_ = nullptr;
  telemetry::Counter* tel_retries_ = nullptr;
  telemetry::Counter* tel_timeouts_ = nullptr;
};

/// RAII admission bracket: begin on construction, end on destruction —
/// so the accountant is balanced even when the admission policy throws
/// (a leaked open admission would silently swallow every later
/// record_br_calculation into one giant N_calc sample).
class AdmissionScope {
 public:
  explicit AdmissionScope(SignalingAccountant& accountant)
      : accountant_(accountant) {
    accountant_.begin_admission();
  }
  ~AdmissionScope() { accountant_.end_admission(); }

  AdmissionScope(const AdmissionScope&) = delete;
  AdmissionScope& operator=(const AdmissionScope&) = delete;

 private:
  SignalingAccountant& accountant_;
};

}  // namespace pabr::backhaul
