#include "core/base_station.h"

// BaseStation is header-only today; this TU anchors the target so the
// module keeps a stable home for future out-of-line logic.
