// Control-plane state of one cell's base station: the hand-off estimation
// function built from this cell's departure history, the adaptive T_est
// controller, and the most recently computed target reservation B_r^curr
// (which AC3's participation test consults without recomputing).
#pragma once

#include "geom/topology.h"
#include "hoef/estimator.h"
#include "reservation/test_window.h"
#include "sim/time.h"

namespace pabr::core {

class BaseStation {
 public:
  BaseStation(geom::CellId id, hoef::EstimatorConfig estimator_config,
              reservation::TestWindowConfig window_config)
      : id_(id),
        estimator_(id, std::move(estimator_config)),
        window_(window_config) {}

  geom::CellId id() const { return id_; }

  hoef::HandoffEstimator& estimator() { return estimator_; }
  const hoef::HandoffEstimator& estimator() const { return estimator_; }

  reservation::TestWindowController& window() { return window_; }
  const reservation::TestWindowController& window() const { return window_; }

  double current_reservation() const { return br_current_; }
  void set_current_reservation(double br) { br_current_ = br; }

 private:
  geom::CellId id_;
  hoef::HandoffEstimator estimator_;
  reservation::TestWindowController window_;
  double br_current_ = 0.0;
};

}  // namespace pabr::core
