#include "core/cell.h"

#include <algorithm>

#include "util/check.h"

namespace pabr::core {

Cell::Cell(geom::CellId id, double capacity_bu, double soft_margin)
    : id_(id), capacity_(capacity_bu), soft_margin_(soft_margin) {
  PABR_CHECK(capacity_bu > 0.0, "Cell: non-positive capacity");
  PABR_CHECK(soft_margin >= 0.0, "Cell: negative soft margin");
  // The id-sorted table is mutated on every admission/hand-off and walked
  // on every B_r term; skip the first few growth reallocations outright.
  entries_.reserve(64);
}

std::vector<traffic::ConnectionEntry>::iterator Cell::find_slot(
    traffic::ConnectionId id) {
  return std::lower_bound(entries_.begin(), entries_.end(), id,
                          [](const traffic::ConnectionEntry& e,
                             traffic::ConnectionId v) { return e.id < v; });
}

void Cell::attach(traffic::ConnectionId id, traffic::Bandwidth b) {
  traffic::ReservationView view;
  view.reserve_bandwidth = b;
  view.prev_cell = id_;  // started here (the paper's prev = 0 convention)
  view.entered_cell_at = 0.0;
  attach(id, b, view);
}

void Cell::attach(traffic::ConnectionId id, traffic::Bandwidth b,
                  const traffic::ReservationView& view) {
  PABR_CHECK(b > 0, "Cell: non-positive bandwidth");
  PABR_CHECK(
      admission::fits_budget(used_, static_cast<double>(b), soft_capacity(),
                             0.0),
      "Cell: attach exceeds soft capacity");
  const auto it = find_slot(id);
  PABR_CHECK(it == entries_.end() || it->id != id,
             "Cell: connection already attached");
  entries_.insert(it, traffic::ConnectionEntry{id, b, view});
  used_ += static_cast<double>(b);
}

void Cell::detach(traffic::ConnectionId id) {
  const auto it = find_slot(id);
  PABR_CHECK(it != entries_.end() && it->id == id,
             "Cell: detaching unknown connection");
  used_ -= static_cast<double>(it->bandwidth);
  PABR_CHECK(used_ >= -1e-9, "Cell: negative used bandwidth");
  if (used_ < 0.0) used_ = 0.0;
  entries_.erase(it);
}

void Cell::set_view(traffic::ConnectionId id,
                    const traffic::ReservationView& view) {
  const auto it = find_slot(id);
  PABR_CHECK(it != entries_.end() && it->id == id,
             "Cell: setting view of unknown connection");
  it->view = view;
}

void Cell::reassign(traffic::ConnectionId id, traffic::Bandwidth new_b) {
  PABR_CHECK(new_b > 0, "Cell: non-positive bandwidth");
  const auto it = find_slot(id);
  PABR_CHECK(it != entries_.end() && it->id == id,
             "Cell: reassigning unknown connection");
  const double delta = static_cast<double>(new_b - it->bandwidth);
  PABR_CHECK(admission::fits_budget(used_, delta, soft_capacity(), 0.0),
             "Cell: reassign exceeds soft capacity");
  used_ += delta;
  it->bandwidth = new_b;
}

}  // namespace pabr::core
