#include "core/cell.h"

#include "util/check.h"

namespace pabr::core {

Cell::Cell(geom::CellId id, double capacity_bu, double soft_margin)
    : id_(id), capacity_(capacity_bu), soft_margin_(soft_margin) {
  PABR_CHECK(capacity_bu > 0.0, "Cell: non-positive capacity");
  PABR_CHECK(soft_margin >= 0.0, "Cell: negative soft margin");
}

void Cell::attach(traffic::ConnectionId id, traffic::Bandwidth b) {
  PABR_CHECK(b > 0, "Cell: non-positive bandwidth");
  PABR_CHECK(used_ + static_cast<double>(b) <= soft_capacity() + 1e-9,
             "Cell: attach exceeds soft capacity");
  const auto [it, inserted] = by_id_.emplace(id, b);
  PABR_CHECK(inserted, "Cell: connection already attached");
  (void)it;
  used_ += static_cast<double>(b);
}

void Cell::detach(traffic::ConnectionId id) {
  const auto it = by_id_.find(id);
  PABR_CHECK(it != by_id_.end(), "Cell: detaching unknown connection");
  used_ -= static_cast<double>(it->second);
  PABR_CHECK(used_ >= -1e-9, "Cell: negative used bandwidth");
  if (used_ < 0.0) used_ = 0.0;
  by_id_.erase(it);
}

void Cell::reassign(traffic::ConnectionId id, traffic::Bandwidth new_b) {
  PABR_CHECK(new_b > 0, "Cell: non-positive bandwidth");
  const auto it = by_id_.find(id);
  PABR_CHECK(it != by_id_.end(), "Cell: reassigning unknown connection");
  const double delta = static_cast<double>(new_b - it->second);
  PABR_CHECK(used_ + delta <= soft_capacity() + 1e-9,
             "Cell: reassign exceeds soft capacity");
  used_ += delta;
  it->second = new_b;
}

}  // namespace pabr::core
