// Radio resource state of one cell: the fixed wireless link capacity C(i)
// (FCA, §2) and the bandwidth of the connections currently camped here.
//
// Reserved bandwidth is *not* subtracted here: hand-offs may consume any
// free capacity (Eq. 1 constrains new admissions only), so the cell keeps
// only physical accounting and leaves policy to the admission layer.
#pragma once

#include <map>

#include "geom/topology.h"
#include "traffic/connection.h"

namespace pabr::core {

class Cell {
 public:
  /// `soft_margin` models CDMA-style soft capacity (§7): hand-offs may
  /// stretch occupancy to C * (1 + soft_margin) at the cost of raised
  /// interference, while new admissions always see the hard C.
  Cell(geom::CellId id, double capacity_bu, double soft_margin = 0.0);

  geom::CellId id() const { return id_; }
  double capacity() const { return capacity_; }
  /// C * (1 + soft_margin): the ceiling hand-offs may stretch to.
  double soft_capacity() const { return capacity_ * (1.0 + soft_margin_); }
  double used() const { return used_; }
  double free() const { return capacity_ - used_; }

  /// Fit test for a hand-off: reservation does not apply, and the soft
  /// margin (if any) is available.
  bool can_fit(traffic::Bandwidth b) const {
    return used_ + static_cast<double>(b) <= soft_capacity();
  }

  /// True while occupancy exceeds the hard capacity (soft-capacity
  /// overload: degraded interference budget).
  bool overloaded() const { return used_ > capacity_ + 1e-9; }

  void attach(traffic::ConnectionId id, traffic::Bandwidth b);
  void detach(traffic::ConnectionId id);

  int connection_count() const { return static_cast<int>(by_id_.size()); }

  /// Connections camped in this cell (id -> bandwidth), in id order so
  /// that reservation sums are reproducible.
  const std::map<traffic::ConnectionId, traffic::Bandwidth>& connections()
      const {
    return by_id_;
  }

  /// Changes the bandwidth held by an attached connection (adaptive-QoS
  /// degrade/upgrade, §1). The new total must fit the soft capacity.
  void reassign(traffic::ConnectionId id, traffic::Bandwidth new_b);

 private:
  geom::CellId id_;
  double capacity_;
  double soft_margin_;
  double used_ = 0.0;
  std::map<traffic::ConnectionId, traffic::Bandwidth> by_id_;
};

}  // namespace pabr::core
