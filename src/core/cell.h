// Radio resource state of one cell: the fixed wireless link capacity C(i)
// (FCA, §2) and the bandwidth of the connections currently camped here.
//
// Reserved bandwidth is *not* subtracted here: hand-offs may consume any
// free capacity (Eq. 1 constrains new admissions only), so the cell keeps
// only physical accounting and leaves policy to the admission layer.
//
// Connections are held in a dense vector sorted by connection id — the
// reservation hot loop (Eqs. 4-6) walks it linearly for every adjacent
// cell on every B_r computation, so each entry carries the mobility
// fields the loop needs (traffic::ReservationView) instead of forcing a
// per-connection hash lookup into the simulator's mobile table.
#pragma once

#include <vector>

#include "admission/policy.h"
#include "geom/topology.h"
#include "traffic/connection.h"

namespace pabr::core {

class Cell {
 public:
  /// `soft_margin` models CDMA-style soft capacity (§7): hand-offs may
  /// stretch occupancy to C * (1 + soft_margin) at the cost of raised
  /// interference, while new admissions always see the hard C.
  Cell(geom::CellId id, double capacity_bu, double soft_margin = 0.0);

  geom::CellId id() const { return id_; }
  double capacity() const { return capacity_; }
  /// C * (1 + soft_margin): the ceiling hand-offs may stretch to.
  double soft_capacity() const { return capacity_ * (1.0 + soft_margin_); }
  double used() const { return used_; }
  double free() const { return capacity_ - used_; }

  /// Fit test for a hand-off: reservation does not apply, and the soft
  /// margin (if any) is available. Phrased through the shared admission
  /// boundary helper so hand-off grants use the same comparison form and
  /// tolerance as new-call admission (admission/policy.h).
  bool can_fit(traffic::Bandwidth b) const {
    return admission::fits_budget(used_, static_cast<double>(b),
                                  soft_capacity(), 0.0);
  }

  /// True while occupancy exceeds the hard capacity (soft-capacity
  /// overload: degraded interference budget). Same boundary helper and
  /// tolerance as every other bandwidth comparison.
  bool overloaded() const {
    return admission::exceeds_budget(used_, 0.0, capacity_, 0.0);
  }

  void attach(traffic::ConnectionId id, traffic::Bandwidth b);
  /// Attach with the reservation-visible mobility state filled in (the
  /// plain overload leaves a neutral view: prev = this cell, sojourn from
  /// t = 0, route unknown).
  void attach(traffic::ConnectionId id, traffic::Bandwidth b,
              const traffic::ReservationView& view);
  void detach(traffic::ConnectionId id);

  int connection_count() const {
    return static_cast<int>(entries_.size());
  }

  /// Connections camped in this cell, in id order so that reservation
  /// sums are reproducible.
  const std::vector<traffic::ConnectionEntry>& connections() const {
    return entries_;
  }

  /// Changes the bandwidth held by an attached connection (adaptive-QoS
  /// degrade/upgrade, §1). The new total must fit the soft capacity; the
  /// reservation view (min-QoS bandwidth) is unchanged.
  void reassign(traffic::ConnectionId id, traffic::Bandwidth new_b);

  /// Refreshes the reservation-visible mobility state of an attached
  /// connection without touching occupancy (used when a soft hand-off's
  /// pre-allocated second leg becomes the primary: the mobile's cell-entry
  /// state changes but the attachment persists).
  void set_view(traffic::ConnectionId id,
                const traffic::ReservationView& view);

 private:
  /// First entry with entry.id >= id (lower bound in the sorted table).
  std::vector<traffic::ConnectionEntry>::iterator find_slot(
      traffic::ConnectionId id);

  geom::CellId id_;
  double capacity_;
  double soft_margin_;
  double used_ = 0.0;
  std::vector<traffic::ConnectionEntry> entries_;  // sorted by id
};

}  // namespace pabr::core
