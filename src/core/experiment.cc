#include "core/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "audit/differential.h"
#include "sim/parallel.h"
#include "util/check.h"
#include "util/mathx.h"

namespace pabr::core {

RunResult run_system(const SystemConfig& config, const RunPlan& plan) {
  const auto t0 = std::chrono::steady_clock::now();
  // A resumed system carries its own config inside the snapshot; the
  // `config` argument only describes fresh runs.
  std::unique_ptr<CellularSystem> owned;
  if (!plan.resume_from.empty()) {
    std::ifstream is(plan.resume_from, std::ios::binary);
    PABR_CHECK(is.good(), "cannot open the resume snapshot");
    owned = CellularSystem::load(is);
  } else {
    owned = std::make_unique<CellularSystem>(config);
  }
  CellularSystem& system = *owned;

  // The plan runs on absolute clock targets (run_until), never relative
  // durations, so a resumed run stops at exactly the clock values of the
  // uninterrupted one. A snapshot taken at the warm-up instant is always
  // post-reset (the reset fires before the save below), so the reset is
  // re-applied only when the snapshot strictly predates the warm-up end.
  const sim::Time end = plan.warmup_s + plan.measure_s;
  PABR_CHECK(system.now() <= end, "resume snapshot past the plan horizon");
  bool reset_pending =
      plan.reset_after_warmup &&
      (plan.resume_from.empty() ? system.now() <= plan.warmup_s
                                : system.now() < plan.warmup_s);
  const bool checkpointing = plan.checkpoint_every_s > 0.0;
  double next_ckpt = 0.0;
  if (checkpointing) {
    PABR_CHECK(!plan.checkpoint_path.empty(),
               "checkpoint cadence set without a checkpoint path");
    next_ckpt =
        plan.checkpoint_every_s *
        (std::floor(system.now() / plan.checkpoint_every_s) + 1.0);
  }
  while (true) {
    sim::Time target = end;
    if (reset_pending) target = std::min(target, plan.warmup_s);
    if (checkpointing) target = std::min(target, next_ckpt);
    system.run_until(std::max(target, system.now()));
    if (reset_pending && system.now() >= plan.warmup_s) {
      system.reset_metrics();
      reset_pending = false;
    }
    if (checkpointing && system.now() >= next_ckpt) {
      std::ofstream os(plan.checkpoint_path,
                       std::ios::binary | std::ios::trunc);
      PABR_CHECK(os.good(), "cannot open the checkpoint path");
      system.save(os);
      PABR_CHECK(os.good(), "checkpoint write failed");
      next_ckpt += plan.checkpoint_every_s;
    }
    if (!reset_pending && system.now() >= end) break;
  }

  RunResult result;
  result.status = system.system_status();
  const geom::CellId num_cells = system.config().num_cells;
  result.cells.reserve(static_cast<std::size_t>(num_cells));
  for (geom::CellId c = 0; c < num_cells; ++c) {
    result.cells.push_back(system.cell_status(c));
  }
  result.digest = audit::trajectory_digest(system);
  result.events = system.events_executed();
  if (system.telemetry().enabled()) {
    result.telemetry = system.telemetry_snapshot();
    result.trace_rotated_out = system.telemetry().buffer().rotated_out();
    result.trace = system.telemetry().drain_trace();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

std::vector<SweepPoint> sweep_loads(
    const std::vector<double>& loads,
    const std::function<SystemConfig(double)>& config_for_load,
    const RunPlan& plan, int threads) {
  std::vector<SweepPoint> out(loads.size());
  sim::parallel_for(threads, loads.size(), [&](std::size_t i) {
    out[i].offered_load = loads[i];
    out[i].result = run_system(config_for_load(loads[i]), plan);
  });
  return out;
}

namespace {

Replicated replicate(const std::vector<double>& xs) {
  Replicated r;
  r.samples = xs;
  r.mean = mathx::mean(xs);
  r.ci95 = mathx::ci95_halfwidth(xs);
  return r;
}

}  // namespace

ReplicatedResult run_replicated(const SystemConfig& config,
                                const RunPlan& plan, int n_seeds,
                                int threads) {
  PABR_CHECK(n_seeds >= 1, "run_replicated: need at least one seed");
  PABR_CHECK(plan.resume_from.empty(),
             "run_replicated cannot resume every replication from one "
             "snapshot — resume a single run_system instead");
  ReplicatedResult out;
  // Each replication owns its own CellularSystem; results land in their
  // seed-index slot, so the aggregation below sees the sequential order
  // regardless of which thread ran which seed.
  out.runs = sim::parallel_map<RunResult>(
      threads, static_cast<std::size_t>(n_seeds), [&](std::size_t i) {
        SystemConfig cfg = config;
        cfg.seed = config.seed + static_cast<std::uint64_t>(i);
        RunPlan seed_plan = plan;
        if (!seed_plan.checkpoint_path.empty()) {
          // One file per replication, or parallel seeds would overwrite
          // each other's checkpoints.
          seed_plan.checkpoint_path += "-s" + std::to_string(i);
        }
        return run_system(cfg, seed_plan);
      });
  std::vector<double> pcb, phd, br, ncalc;
  for (const RunResult& r : out.runs) {
    pcb.push_back(r.status.pcb);
    phd.push_back(r.status.phd);
    br.push_back(r.status.br_avg);
    ncalc.push_back(r.status.n_calc);
  }
  out.pcb = replicate(pcb);
  out.phd = replicate(phd);
  out.br_avg = replicate(br);
  out.n_calc = replicate(ncalc);
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {
  PABR_CHECK(headers_.size() == widths_.size(),
             "TablePrinter: header/width mismatch");
}

void TablePrinter::print_header() const {
  print_rule();
  std::ostringstream os;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    os << ' ';
    os.width(widths_[i]);
    os << headers_[i];
  }
  std::cout << os.str() << '\n';
  print_rule();
}

void TablePrinter::print_row(const std::vector<std::string>& cells) const {
  PABR_CHECK(cells.size() == headers_.size(), "TablePrinter: column count");
  std::ostringstream os;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    os << ' ';
    os.width(widths_[i]);
    os << cells[i];
  }
  std::cout << os.str() << '\n';
}

void TablePrinter::print_rule() const {
  std::size_t total = 0;
  for (int w : widths_) total += static_cast<std::size_t>(w) + 1;
  std::cout << std::string(total, '-') << '\n';
}

std::string TablePrinter::prob(double p) {
  if (p == 0.0) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", p);
  return buf;
}

std::string TablePrinter::fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TablePrinter::integer(std::uint64_t v) {
  return std::to_string(v);
}

std::vector<double> paper_load_grid() {
  return {60.0, 100.0, 140.0, 180.0, 220.0, 260.0, 300.0};
}

}  // namespace pabr::core
