// Experiment harness shared by the bench binaries: run scenarios with a
// warm-up + measurement phase, sweep offered loads, and print
// paper-formatted tables.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "core/system.h"

namespace pabr::core {

/// Run durations: the system warms up (filling estimation functions and
/// adapting T_est, as the paper's runs do from t = 0), metrics are then
/// reset and measured over the second phase.
struct RunPlan {
  sim::Duration warmup_s = 2000.0;
  sim::Duration measure_s = 8000.0;
  bool reset_after_warmup = true;
  /// Checkpoint/resume (DESIGN.md §13). When `checkpoint_every_s` > 0
  /// the run saves its complete state to `checkpoint_path` at every
  /// multiple of the cadence (overwriting, so the file always holds the
  /// newest checkpoint). When `resume_from` names a snapshot file the
  /// system is loaded from it instead of built fresh — the snapshot
  /// carries its own config — and the plan's phases continue from the
  /// saved clock: the warm-up reset still fires at `warmup_s` if the
  /// snapshot predates it, and is skipped if it was already applied.
  sim::Duration checkpoint_every_s = 0.0;
  std::string checkpoint_path;
  std::string resume_from;
};

struct RunResult {
  SystemStatus status;
  std::vector<CellStatus> cells;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  /// Telemetry collected over the measurement phase (empty when telemetry
  /// is disabled or compiled out). The trace is drained from the system's
  /// ring so replicated runs can be merged deterministically
  /// (telemetry::write_merged_trace keyed by seed index).
  telemetry::MetricsSnapshot telemetry;
  std::vector<telemetry::TraceRecord> trace;
  std::uint64_t trace_rotated_out = 0;
  /// End-of-run trajectory digest (audit/differential.h) — the value the
  /// I10 checkpoint/resume contract compares.
  std::uint64_t digest = 0;
};

/// Builds the system from `config`, executes the plan, and snapshots all
/// metrics.
RunResult run_system(const SystemConfig& config, const RunPlan& plan);

/// Convenience sweep: one run per offered load value. `threads > 1` fans
/// the points over a thread pool (each run owns its own CellularSystem);
/// results are collected by point index, so the sweep is byte-identical
/// to the sequential one whatever the thread count (sim/parallel.h).
struct SweepPoint {
  double offered_load = 0.0;
  RunResult result;
};
std::vector<SweepPoint> sweep_loads(
    const std::vector<double>& loads,
    const std::function<SystemConfig(double)>& config_for_load,
    const RunPlan& plan, int threads = 1);

/// A metric replicated over independent seeds: mean and the 95% normal-
/// approximation confidence half-width.
struct Replicated {
  double mean = 0.0;
  double ci95 = 0.0;
  std::vector<double> samples;
};

/// Aggregate of `n` independent replications of one scenario.
struct ReplicatedResult {
  Replicated pcb;
  Replicated phd;
  Replicated br_avg;
  Replicated n_calc;
  std::vector<RunResult> runs;
};

/// Runs the scenario under `n_seeds` different seeds (config.seed + i)
/// and aggregates the headline metrics — use when a single sample is too
/// noisy to compare schemes (the paper reports single runs; CIs make the
/// reproduction's comparisons defensible). `threads > 1` fans the
/// replications over a thread pool; per-seed samples and aggregates are
/// byte-identical to the sequential run (index-ordered collection).
ReplicatedResult run_replicated(const SystemConfig& config,
                                const RunPlan& plan, int n_seeds,
                                int threads = 1);

/// Fixed-width console table writer used by the bench binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths);

  void print_header() const;
  void print_row(const std::vector<std::string>& cells) const;
  void print_rule() const;

  /// Probability formatting like the paper's tables (e.g. "6.53e-3",
  /// or "0" for an exact zero).
  static std::string prob(double p);
  static std::string fixed(double v, int decimals);
  static std::string integer(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

/// The offered-load grid the paper's sweeps cover (60..300).
std::vector<double> paper_load_grid();

}  // namespace pabr::core
