#include "core/hex_system.h"

#include <algorithm>
#include <chrono>

#include "reservation/reservation.h"
#include "util/check.h"

namespace pabr::core {

void HexSystemConfig::set_offered_load(double load) {
  PABR_CHECK(load >= 0.0, "negative offered load");
  const double mean_bw = voice_ratio * traffic::kVoiceBandwidth +
                         (1.0 - voice_ratio) * traffic::kVideoBandwidth;
  arrival_rate_per_cell = load / (mean_bw * mean_lifetime_s);
}

HexCellularSystem::HexCellularSystem(HexSystemConfig config)
    : config_(std::move(config)),
      rng_factory_(config_.seed),
      grid_(config_.rows, config_.cols, config_.wrap),
      motion_(grid_, config_.motion),
      accountant_(grid_, nullptr),
      policy_(admission::make_policy(config_.policy, config_.static_g,
                                     &config_.ns)),
      arrival_rng_(rng_factory_.make("hex-arrivals")),
      movement_rng_(rng_factory_.make("hex-movement")) {
  PABR_CHECK(config_.capacity_bu > 0.0, "non-positive capacity");
  PABR_CHECK(config_.arrival_rate_per_cell >= 0.0, "negative arrival rate");
  PABR_CHECK(
      config_.voice_ratio >= 0.0 && config_.voice_ratio <= 1.0,
      "voice ratio out of [0,1]");
  PABR_CHECK(config_.speed_min_kmh > 0.0 &&
                 config_.speed_max_kmh >= config_.speed_min_kmh,
             "bad speed range");

  reservation::TestWindowConfig twc;
  twc.phd_target = config_.phd_target;
  twc.t_start = config_.t_start;

  const int n = grid_.num_cells();
  cells_.reserve(static_cast<std::size_t>(n));
  stations_.reserve(static_cast<std::size_t>(n));
  metrics_.resize(static_cast<std::size_t>(n));
  for (geom::CellId c = 0; c < n; ++c) {
    cells_.emplace_back(c, config_.capacity_bu);
    stations_.emplace_back(c, config_.hoef, twc);
    metrics_[static_cast<std::size_t>(c)].br_mean.update(0.0, 0.0);
    metrics_[static_cast<std::size_t>(c)].bu_mean.update(0.0, 0.0);
  }

#ifdef PABR_FAULT_ENABLED
  if (config_.fault.enabled) {
    fault_ = std::make_unique<fault::FaultInjector>(config_.fault);
  }
#endif

  telemetry_.configure(config_.telemetry);
  if (telemetry_.enabled()) {
    tel_ = telemetry::make_sim_counters(telemetry_.registry(),
                                        config_.capacity_bu);
    reservation_engine_.bind_telemetry(tel_.terms_recomputed,
                                       tel_.terms_reused);
    accountant_.bind_telemetry(tel_.br_calculations);
    policy_->bind_telemetry(telemetry_.registry());
    for (auto& station : stations_) {
      station.estimator().bind_telemetry(tel_.quads_recorded,
                                         tel_.quads_evicted);
    }
    if (faults_on()) {
      // Registered only under fault injection so fault-free snapshots
      // keep their exact historical key set.
      fault_tel_ = telemetry::make_fault_counters(telemetry_.registry());
      accountant_.bind_fault_telemetry(fault_tel_.retries,
                                       fault_tel_.timeouts);
    }
  }

  schedule_next_arrival();
}

void HexCellularSystem::check_cell_id(geom::CellId cell) const {
  PABR_CHECK(cell >= 0 && cell < grid_.num_cells(), "cell id out of range");
}

void HexCellularSystem::run_for(sim::Duration duration) {
  PABR_CHECK(duration >= 0.0, "negative run duration");
  simulator_.run_until(simulator_.now() + duration);
}

void HexCellularSystem::run_until(sim::Time t) {
  PABR_CHECK(t >= simulator_.now(), "run_until into the past");
  simulator_.run_until(t);
}

void HexCellularSystem::reset_metrics() {
  const sim::Time t = simulator_.now();
  for (geom::CellId c = 0; c < grid_.num_cells(); ++c) {
    auto& m = metrics_[static_cast<std::size_t>(c)];
    m.pcb.reset();
    m.phd.reset();
    m.br_mean.reset(t);
    m.br_mean.update(
        t, stations_[static_cast<std::size_t>(c)].current_reservation());
    m.bu_mean.reset(t);
    m.bu_mean.update(t, cells_[static_cast<std::size_t>(c)].used());
  }
  accountant_.reset();
  if (telemetry_.enabled()) {
    telemetry_.registry().reset();
    telemetry_.buffer().clear();
  }
}

// ---- AdmissionContext -------------------------------------------------------

double HexCellularSystem::capacity(geom::CellId cell) const {
  check_cell_id(cell);
  return cells_[static_cast<std::size_t>(cell)].capacity();
}

double HexCellularSystem::used_bandwidth(geom::CellId cell) const {
  check_cell_id(cell);
  return cells_[static_cast<std::size_t>(cell)].used();
}

const std::vector<geom::CellId>& HexCellularSystem::adjacent(
    geom::CellId cell) const {
  return grid_.neighbors(cell);
}

double HexCellularSystem::recompute_reservation(geom::CellId cell) {
  check_cell_id(cell);
  const sim::Time t = simulator_.now();
  const sim::Duration t_est =
      stations_[static_cast<std::size_t>(cell)].window().t_est();

  double br = 0.0;
#ifdef PABR_FAULT_ENABLED
  if (faults_on()) {
    // Degraded mode — see CellularSystem::recompute_reservation. The hex
    // accountant carries no interconnect, so exchange() only decides
    // reachability and bumps retry/timeout telemetry.
    accountant_.count_br_calculation();
    for (geom::CellId i : grid_.neighbors(cell)) {
      const bool reachable = accountant_.exchange(
          cell, i, t, *fault_, backhaul::MessageType::kBandwidthQuery);
      if (!reachable) {
        br += config_.fault.degraded_floor_bu;
        if (config_.incremental_reservation) {
          reservation_engine_.mark_stale(i, cell);
        }
        telemetry::bump(fault_tel_.floor_substitutions);
        continue;
      }
      if (config_.incremental_reservation) {
        const bool healing = reservation_engine_.is_stale(i, cell);
        const double before = br;
        br = reservation_engine_.accumulate(
            i, cell, cells_[static_cast<std::size_t>(i)].connections(),
            stations_[static_cast<std::size_t>(i)].estimator(), t, t_est,
            br);
        if (healing) {
          PABR_CHECK(br == rescan_contribution(i, cell, t, t_est, before),
                     "post-heal pair re-sync diverged from scratch rescan");
          telemetry::bump(fault_tel_.pair_resyncs);
        }
      } else {
        br = rescan_contribution(i, cell, t, t_est, br);
      }
    }
  } else {
#else
  {
#endif
    accountant_.record_br_calculation(cell);
    if (config_.incremental_reservation) {
      for (geom::CellId i : grid_.neighbors(cell)) {
        br = reservation_engine_.accumulate(
            i, cell, cells_[static_cast<std::size_t>(i)].connections(),
            stations_[static_cast<std::size_t>(i)].estimator(), t, t_est,
            br);
      }
    } else {
      br = reservation_rescan(cell, t, t_est);
    }
  }
  stations_[static_cast<std::size_t>(cell)].set_current_reservation(br);
  if (telemetry_.enabled()) {
    telemetry::bump(tel_.br_recomputes);
    tel_.br_value->add(br);
    telemetry_.emit(t, telemetry::EventKind::kBrRecompute, cell, 0, br);
  }
  metrics_[static_cast<std::size_t>(cell)].br_mean.update(t, br);
  return br;
}

double HexCellularSystem::reservation_rescan(geom::CellId cell, sim::Time t,
                                             sim::Duration t_est) const {
  double br = 0.0;
  for (geom::CellId i : grid_.neighbors(cell)) {
    br = rescan_contribution(i, cell, t, t_est, br);
  }
  return br;
}

double HexCellularSystem::rescan_contribution(geom::CellId source,
                                              geom::CellId target,
                                              sim::Time t,
                                              sim::Duration t_est,
                                              double running) const {
  const auto& estimator =
      stations_[static_cast<std::size_t>(source)].estimator();
  for (const auto& e :
       cells_[static_cast<std::size_t>(source)].connections()) {
    running += static_cast<double>(e.view.reserve_bandwidth) *
               estimator.handoff_probability(t, e.view.prev_cell, target,
                                             t - e.view.entered_cell_at,
                                             t_est);
  }
  return running;
}

double HexCellularSystem::scratch_reservation(geom::CellId cell) {
  check_cell_id(cell);
  const sim::Time t = simulator_.now();
  const sim::Duration t_est =
      stations_[static_cast<std::size_t>(cell)].window().t_est();
#ifdef PABR_FAULT_ENABLED
  if (faults_on()) {
    double br = 0.0;
    for (geom::CellId i : grid_.neighbors(cell)) {
      br = fault_->exchange_outcome(cell, i, t).delivered
               ? rescan_contribution(i, cell, t, t_est, br)
               : br + config_.fault.degraded_floor_bu;
    }
    return br;
  }
#endif
  return reservation_rescan(cell, t, t_est);
}

bool HexCellularSystem::neighbor_reachable(geom::CellId cell,
                                           geom::CellId neighbor) {
#ifdef PABR_FAULT_ENABLED
  if (faults_on()) {
    const bool ok =
        accountant_.exchange(cell, neighbor, simulator_.now(), *fault_,
                             backhaul::MessageType::kReservationCheck);
    if (!ok) telemetry::bump(fault_tel_.ac_local_fallbacks);
    return ok;
  }
#endif
  (void)cell;
  (void)neighbor;
  return true;
}

traffic::ReservationView HexCellularSystem::reservation_view(
    const HexMobile& m) const {
  traffic::ReservationView v;
  v.reserve_bandwidth = m.bandwidth();
  v.prev_cell = m.prev;
  v.entered_cell_at = m.entered_at;
  return v;
}

double HexCellularSystem::current_reservation(geom::CellId cell) const {
  check_cell_id(cell);
  return stations_[static_cast<std::size_t>(cell)].current_reservation();
}

// ---- Workload ----------------------------------------------------------------

void HexCellularSystem::schedule_next_arrival() {
  const double system_rate = config_.arrival_rate_per_cell *
                             static_cast<double>(grid_.num_cells());
  if (system_rate <= 0.0) return;
  schedule_arrival_at(simulator_.now() +
                      arrival_rng_.exponential(1.0 / system_rate));
}

void HexCellularSystem::schedule_arrival_at(sim::Time t) {
  next_arrival_ = simulator_.schedule_at(t, [this] {
    schedule_next_arrival();
    const geom::CellId cell =
        arrival_rng_.uniform_int(0, grid_.num_cells() - 1);
    const auto service = arrival_rng_.bernoulli(config_.voice_ratio)
                             ? traffic::ServiceClass::kVoice
                             : traffic::ServiceClass::kVideo;
    const double speed =
        arrival_rng_.uniform(config_.speed_min_kmh, config_.speed_max_kmh);
    const double lifetime = arrival_rng_.exponential(config_.mean_lifetime_s);
    handle_request(cell, service, speed, lifetime);
    maybe_audit();
  });
}

bool HexCellularSystem::submit_request(geom::CellId cell,
                                       traffic::ServiceClass service,
                                       double speed_kmh,
                                       sim::Duration lifetime_s) {
  check_cell_id(cell);
  const bool admitted = handle_request(cell, service, speed_kmh, lifetime_s);
  maybe_audit();
  return admitted;
}

bool HexCellularSystem::handle_request(geom::CellId cell,
                                       traffic::ServiceClass service,
                                       double speed_kmh,
                                       sim::Duration lifetime_s) {
  const traffic::Bandwidth bw = traffic::bandwidth_of(service);
#ifdef PABR_FAULT_ENABLED
  if (faults_on() && !fault_->station_up(cell, simulator_.now())) {
    // The serving BS is down: blocked without an admission test, so no
    // N_calc sample is taken (see CellularSystem::handle_arrival).
    telemetry::bump(fault_tel_.station_blocks);
    metrics_[static_cast<std::size_t>(cell)].pcb.trial(true);
    if (telemetry_.enabled()) {
      telemetry::bump(tel_.blocked);
      telemetry_.emit(simulator_.now(), telemetry::EventKind::kBlock, cell,
                      next_id_, static_cast<double>(bw));
    }
    return false;
  }
#endif
  bool admitted;
  {
    backhaul::AdmissionScope scope(accountant_);
    if (telemetry_.time_admissions()) {
      const auto t0 = std::chrono::steady_clock::now();
      admitted = policy_->admit(*this, cell, bw);
      const auto elapsed = std::chrono::steady_clock::now() - t0;
      tel_.admission_ns->add(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    } else {
      admitted = policy_->admit(*this, cell, bw);
    }
  }
  // The policies' probabilistic tests do not replace the hard FCA check.
  admitted = admitted && cells_[static_cast<std::size_t>(cell)].can_fit(bw);
  metrics_[static_cast<std::size_t>(cell)].pcb.trial(!admitted);
  if (telemetry_.enabled()) {
    telemetry::bump(admitted ? tel_.admitted : tel_.blocked);
    telemetry_.emit(simulator_.now(),
                    admitted ? telemetry::EventKind::kAdmit
                             : telemetry::EventKind::kBlock,
                    cell, next_id_, static_cast<double>(bw));
  }
  if (!admitted) return false;

  const traffic::ConnectionId id = next_id_++;
  HexMobile m;
  m.id = id;
  m.service = service;
  m.cell = cell;
  m.prev = cell;  // started here (the paper's prev = 0)
  m.entered_at = simulator_.now();
  m.speed_kmh = speed_kmh;

  cells_[static_cast<std::size_t>(cell)].attach(id, bw,
                                                reservation_view(m));
  record_bu(cell);

  const auto [it, inserted] = mobiles_.emplace(id, std::move(m));
  PABR_CHECK(inserted, "duplicate connection id");
  it->second.expiry = simulator_.schedule_in(lifetime_s, [this, id] {
    handle_expiry(id);
    maybe_audit();
  });
  schedule_crossing(it->second);
  return true;
}

// ---- Motion / hand-offs --------------------------------------------------------

void HexCellularSystem::schedule_crossing(HexMobile& m) {
  const sim::Duration stay = motion_.sojourn(m.speed_kmh, movement_rng_);
  m.crossing = simulator_.schedule_in(stay, [this, id = m.id] {
    handle_crossing(id);
    maybe_audit();
  });
}

void HexCellularSystem::handle_crossing(traffic::ConnectionId id) {
  const auto it = mobiles_.find(id);
  PABR_CHECK(it != mobiles_.end(), "crossing for unknown mobile");
  HexMobile& m = it->second;
  const sim::Time t = simulator_.now();

  const geom::CellId from = m.cell;
  const geom::CellId to = motion_.next_cell(m.prev, m.cell, movement_rng_);
  PABR_CHECK(grid_.adjacent(from, to), "hex motion left adjacency");

  stations_[static_cast<std::size_t>(from)].estimator().record(
      hoef::Quadruplet{t, m.prev, to, t - m.entered_at});
  if (telemetry_.enabled()) tel_.handoff_sojourn->add(t - m.entered_at);

  Cell& dst = cells_[static_cast<std::size_t>(to)];
  bool dropped = !dst.can_fit(m.bandwidth());
#ifdef PABR_FAULT_ENABLED
  if (!dropped && faults_on() && !fault_->station_up(to, t)) {
    // Destination BS down: the hand-off has no one to signal to.
    dropped = true;
    telemetry::bump(fault_tel_.station_drops);
  }
#endif
  const sim::Duration t_est_before =
      stations_[static_cast<std::size_t>(to)].window().t_est();
  stations_[static_cast<std::size_t>(to)].window().on_handoff(
      dropped, t_soj_max_for(to));
  metrics_[static_cast<std::size_t>(to)].phd.trial(dropped);
  if (telemetry_.enabled()) {
    const sim::Duration t_est_after =
        stations_[static_cast<std::size_t>(to)].window().t_est();
    if (t_est_after != t_est_before) {
      telemetry_.emit(t, telemetry::EventKind::kTEstStep, to, 0, t_est_after);
    }
    telemetry::bump(dropped ? tel_.handoff_dropped : tel_.handoff_completed);
    telemetry_.emit(t,
                    dropped ? telemetry::EventKind::kHandoffDrop
                            : telemetry::EventKind::kHandoff,
                    to, id, static_cast<double>(m.bandwidth()));
  }

  cells_[static_cast<std::size_t>(from)].detach(id);
  record_bu(from);
  if (dropped) {
    simulator_.cancel(m.expiry);
    mobiles_.erase(it);
    return;
  }
  m.prev = from;
  m.cell = to;
  m.entered_at = t;
  dst.attach(id, m.bandwidth(), reservation_view(m));
  record_bu(to);
  schedule_crossing(m);
}

void HexCellularSystem::handle_expiry(traffic::ConnectionId id) {
  const auto it = mobiles_.find(id);
  PABR_CHECK(it != mobiles_.end(), "expiry for unknown mobile");
  if (telemetry_.enabled()) {
    telemetry::bump(tel_.expiries);
    telemetry_.emit(simulator_.now(), telemetry::EventKind::kExpiry,
                    it->second.cell, id,
                    static_cast<double>(it->second.bandwidth()));
  }
  simulator_.cancel(it->second.crossing);
  cells_[static_cast<std::size_t>(it->second.cell)].detach(id);
  record_bu(it->second.cell);
  mobiles_.erase(it);
}

sim::Duration HexCellularSystem::t_soj_max_for(geom::CellId cell) const {
  sim::Duration m = 0.0;
  for (geom::CellId i : grid_.neighbors(cell)) {
    m = std::max(m, stations_[static_cast<std::size_t>(i)].estimator()
                        .max_sojourn(simulator_.now()));
  }
  return m;
}

void HexCellularSystem::record_bu(geom::CellId cell) {
  metrics_[static_cast<std::size_t>(cell)].bu_mean.update(
      simulator_.now(), cells_[static_cast<std::size_t>(cell)].used());
}

// ---- Metrics ----------------------------------------------------------------

const CellMetrics& HexCellularSystem::cell_metrics(geom::CellId cell) const {
  check_cell_id(cell);
  return metrics_[static_cast<std::size_t>(cell)];
}

SystemStatus HexCellularSystem::system_status() const {
  SystemStatus s;
  const sim::Time t = simulator_.now();
  double br_sum = 0.0;
  double bu_sum = 0.0;
  const int n = grid_.num_cells();
  for (geom::CellId c = 0; c < n; ++c) {
    const auto idx = static_cast<std::size_t>(c);
    s.requests += metrics_[idx].pcb.trials();
    s.blocks += metrics_[idx].pcb.hits();
    s.handoffs += metrics_[idx].phd.trials();
    s.drops += metrics_[idx].phd.hits();
    br_sum += metrics_[idx].br_mean.mean(t);
    bu_sum += metrics_[idx].bu_mean.mean(t);
  }
  s.pcb = s.requests == 0 ? 0.0
                          : static_cast<double>(s.blocks) /
                                static_cast<double>(s.requests);
  s.phd = s.handoffs == 0 ? 0.0
                          : static_cast<double>(s.drops) /
                                static_cast<double>(s.handoffs);
  s.n_calc = accountant_.n_calc();
  s.br_avg = br_sum / static_cast<double>(n);
  s.bu_avg = bu_sum / static_cast<double>(n);
  s.br_calculations = accountant_.total_br_calculations();
  return s;
}

telemetry::MetricsSnapshot HexCellularSystem::telemetry_snapshot() {
  if (telemetry_.enabled()) {
    auto& reg = telemetry_.registry();
    reg.gauge("signaling.n_calc")->set(accountant_.n_calc());
    reg.gauge("connections.active")
        ->set(static_cast<double>(mobiles_.size()));
    reg.gauge("trace.emitted")
        ->set(static_cast<double>(telemetry_.buffer().emitted()));
    reg.gauge("trace.rotated_out")
        ->set(static_cast<double>(telemetry_.buffer().rotated_out()));
    reg.gauge("trace.sampled_out")
        ->set(static_cast<double>(telemetry_.buffer().sampled_out()));
  }
  return telemetry_.snapshot();
}

Cell& HexCellularSystem::cell(geom::CellId id) {
  check_cell_id(id);
  return cells_[static_cast<std::size_t>(id)];
}

BaseStation& HexCellularSystem::base_station(geom::CellId id) {
  check_cell_id(id);
  return stations_[static_cast<std::size_t>(id)];
}

}  // namespace pabr::core
