// HexCellularSystem — the paper's §7 future work as a library feature:
// "We plan to evaluate our scheme in more realistic and general
// environments with two-dimensional cellular structures."
//
// A full admission/reservation/hand-off simulator over a hexagonal grid
// (paper Fig. 2(b)): Poisson arrivals per cell, direction-persistent
// random-walk mobility (mobility::HexMotion), per-cell hand-off
// estimation functions and T_est controllers, Eq. 5/6 reservation over
// the six neighbours, and the same AdmissionPolicy objects as the 1-D
// road — AC1/AC2/AC3/static/NS run unmodified.
//
// §5.2.3 predicts "the complexity increase could be larger for two-
// dimensional cellular structures": here AC2 costs |A_0|+1 = 7 B_r
// computations per admission, making AC3's selective participation far
// more valuable — bench/ext_2d_load_sweep quantifies it.
#pragma once

#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

#include "admission/ns_policy.h"
#include "admission/policy.h"
#include "backhaul/signaling.h"
#include "core/base_station.h"
#include "core/cell.h"
#include "core/metrics.h"
#include "fault/fault.h"
#include "geom/hex_topology.h"
#include "hoef/estimator.h"
#include "mobility/hex_motion.h"
#include "reservation/engine.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "traffic/workload.h"

namespace pabr::snapshot {
class Reader;
}  // namespace pabr::snapshot

namespace pabr::core {

struct HexSystemConfig {
  // Grid (Fig. 2(b)); wrap = torus to avoid border effects like the 1-D
  // ring of §5.1.
  int rows = 4;
  int cols = 6;
  bool wrap = true;
  double capacity_bu = 100.0;

  // Admission control (same policies as the road system).
  admission::PolicyKind policy = admission::PolicyKind::kAc3;
  double static_g = 10.0;
  admission::NsConfig ns;

  // Reservation / estimation.
  double phd_target = 0.01;
  sim::Duration t_start = 1.0;
  hoef::EstimatorConfig hoef;

  // Workload (A2/A3/A5 transplanted to 2-D).
  double arrival_rate_per_cell = 0.5;  ///< connections/s/cell
  double voice_ratio = 1.0;
  sim::Duration mean_lifetime_s = 120.0;
  double speed_min_kmh = 80.0;
  double speed_max_kmh = 120.0;

  // Mobility over the grid.
  mobility::HexMotionConfig motion;

  /// Serve recompute_reservation from the incremental contribution caches
  /// (bit-identical to the from-scratch rescan; see reservation/engine.h).
  bool incremental_reservation = true;

  /// Audit cadence: in builds with PABR_AUDIT on, run the full invariant
  /// sweep (audit_invariants) after every Nth handled simulation event.
  /// 0 disables the hook (see SystemConfig::audit_every).
  int audit_every = 0;

  /// Telemetry & trace collection (see SystemConfig::telemetry).
  telemetry::TelemetryConfig telemetry;

  /// Deterministic fault injection (see SystemConfig::fault; same
  /// byte-identical-when-disabled contract).
  fault::FaultConfig fault;

  std::uint64_t seed = 1;

  /// Offered load per cell, Eq. (7).
  double offered_load() const {
    const double mean_bw = voice_ratio * traffic::kVoiceBandwidth +
                           (1.0 - voice_ratio) * traffic::kVideoBandwidth;
    return arrival_rate_per_cell * mean_bw * mean_lifetime_s;
  }
  /// Sets the arrival rate from a target offered load.
  void set_offered_load(double load);
};

class HexCellularSystem final : public admission::AdmissionContext {
 public:
  explicit HexCellularSystem(HexSystemConfig config);

  void run_for(sim::Duration duration);
  /// Advances to the absolute sim time `t` (>= now()); resumed runs use
  /// this so they stop at exactly the clock value of the uninterrupted
  /// run (see CellularSystem::run_until).
  void run_until(sim::Time t);
  sim::Time now() const { return simulator_.now(); }
  void reset_metrics();

  // ---- AdmissionContext ---------------------------------------------------
  double capacity(geom::CellId cell) const override;
  double used_bandwidth(geom::CellId cell) const override;
  const std::vector<geom::CellId>& adjacent(geom::CellId cell) const override;
  double recompute_reservation(geom::CellId cell) override;
  double current_reservation(geom::CellId cell) const override;
  /// Reference from-scratch rescan (no caches, no side effects, not
  /// counted in N_calc) — must always equal recompute_reservation (also
  /// in degraded mode: same floors, same reachability verdicts).
  double scratch_reservation(geom::CellId cell) override;
  /// Fault-aware backhaul probe (AC2/AC3 degraded fallback); always true
  /// without fault injection.
  bool neighbor_reachable(geom::CellId cell, geom::CellId neighbor) override;

  // ---- Fault injection (src/fault/) --------------------------------------
  /// See CellularSystem::faults_on.
  bool faults_on() const {
#ifdef PABR_FAULT_ENABLED
    return fault_ != nullptr;
#else
    return false;
#endif
  }
  fault::FaultInjector* fault_injector() { return fault_.get(); }

  // ---- Metrics --------------------------------------------------------------
  const CellMetrics& cell_metrics(geom::CellId cell) const;
  SystemStatus system_status() const;

  // ---- Telemetry (src/telemetry/) ----------------------------------------
  telemetry::Collector& telemetry() { return telemetry_; }
  const telemetry::Collector& telemetry() const { return telemetry_; }
  /// Snapshot with polled gauges synced (see CellularSystem).
  telemetry::MetricsSnapshot telemetry_snapshot();

  // ---- Introspection ----------------------------------------------------------
  const geom::HexTopology& grid() const { return grid_; }
  const HexSystemConfig& config() const { return config_; }
  Cell& cell(geom::CellId id);
  BaseStation& base_station(geom::CellId id);
  std::size_t active_connections() const { return mobiles_.size(); }

  /// Test hook: injects one connection request now (cell, service,
  /// speed); returns whether it was admitted.
  bool submit_request(geom::CellId cell, traffic::ServiceClass service,
                      double speed_kmh, sim::Duration lifetime_s);

  // ---- Invariant audit (src/audit/system_audit.cc) ------------------------
  /// Full structural invariant sweep (see CellularSystem::audit_invariants
  /// — same I1-I8 catalogue minus the wired/soft-hand-off invariants the
  /// hex system has no state for). Throws InvariantError on violation.
  void audit_invariants();

  // ---- Snapshot (src/core/hex_system_snapshot.cc) -------------------------
  /// Serializes the complete simulation state so that load() +
  /// run_for(rest) is bitwise identical to the uninterrupted run
  /// (invariant I10). Only legal between events.
  void save(std::ostream& os);
  static std::unique_ptr<HexCellularSystem> load(std::istream& is);

 private:
  struct HexMobile {
    traffic::ConnectionId id = 0;
    traffic::ServiceClass service = traffic::ServiceClass::kVoice;
    geom::CellId cell = geom::kNoCell;
    geom::CellId prev = geom::kNoCell;  ///< == cell when started here
    sim::Time entered_at = 0.0;
    double speed_kmh = 0.0;
    sim::EventHandle expiry;
    sim::EventHandle crossing;

    traffic::Bandwidth bandwidth() const {
      return traffic::bandwidth_of(service);
    }
  };

  void schedule_next_arrival();
  /// Books the arrival event at absolute time `t`. The exponential gap is
  /// drawn at scheduling time but every request attribute is drawn when
  /// the event fires, so a snapshot load re-creates the pending arrival
  /// exactly by replaying the saved fire time.
  void schedule_arrival_at(sim::Time t);
  /// Applies a parsed snapshot onto the freshly constructed system.
  void restore_from(const snapshot::Reader& reader);
  bool handle_request(geom::CellId cell, traffic::ServiceClass service,
                      double speed_kmh, sim::Duration lifetime_s);
  void schedule_crossing(HexMobile& m);
  void handle_crossing(traffic::ConnectionId id);
  void handle_expiry(traffic::ConnectionId id);
  sim::Duration t_soj_max_for(geom::CellId cell) const;
  void record_bu(geom::CellId cell);
  void check_cell_id(geom::CellId cell) const;
  /// The dense per-connection record the reservation hot loop reads.
  traffic::ReservationView reservation_view(const HexMobile& m) const;
  /// Eq. (6) summed term-by-term from scratch over the dense connection
  /// tables (shared by the scratch path and the engine-off mode).
  double reservation_rescan(geom::CellId cell, sim::Time t,
                            sim::Duration t_est) const;
  /// One neighbour's Eq. (5) contribution (see
  /// CellularSystem::rescan_contribution).
  double rescan_contribution(geom::CellId source, geom::CellId target,
                             sim::Time t, sim::Duration t_est,
                             double running) const;

  /// Per-event audit hook (no-op unless built with PABR_AUDIT and enabled
  /// via config_.audit_every).
  void maybe_audit() {
#ifdef PABR_AUDIT_ENABLED
    if (config_.audit_every > 0 &&
        ++events_since_audit_ >= config_.audit_every) {
      events_since_audit_ = 0;
      audit_invariants();
    }
#endif
  }

  HexSystemConfig config_;
  sim::RngFactory rng_factory_;  ///< one factory, shared by all streams
  sim::Simulator simulator_;
  geom::HexTopology grid_;
  mobility::HexMotion motion_;
  backhaul::SignalingAccountant accountant_;
  std::unique_ptr<admission::AdmissionPolicy> policy_;
  reservation::IncrementalEngine reservation_engine_;
  sim::Rng arrival_rng_;
  sim::Rng movement_rng_;

  std::vector<Cell> cells_;
  std::vector<BaseStation> stations_;
  std::vector<CellMetrics> metrics_;
  std::unordered_map<traffic::ConnectionId, HexMobile> mobiles_;
  /// Handle of the one pending Poisson-arrival event (snapshot needs its
  /// fire time; inert when the arrival rate is zero).
  sim::EventHandle next_arrival_;
  traffic::ConnectionId next_id_ = 1;
  int events_since_audit_ = 0;
  telemetry::Collector telemetry_;
  telemetry::SimCounters tel_;  ///< null instruments unless telemetry is on
  std::unique_ptr<fault::FaultInjector> fault_;  // null unless faults on
  telemetry::FaultCounters fault_tel_;  ///< bound only when faults are on
};

}  // namespace pabr::core
