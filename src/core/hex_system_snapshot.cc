// HexCellularSystem::save/load — the 2-D simulator's snapshot pair (see
// core/system_snapshot.cc for the shared design; same section protocol,
// same re-schedule-by-original-seq restore rule, invariant I10).
#include <algorithm>
#include <functional>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/hex_system.h"
#include "snapshot/format.h"
#include "snapshot/parts.h"
#include "util/check.h"

namespace pabr::core {

namespace {

void put_pending(snapshot::Encoder& e,
                 const std::optional<sim::EventQueue::PendingInfo>& p) {
  e.b(p.has_value());
  if (p.has_value()) {
    e.f64(p->when);
    e.u64(p->seq);
  }
}

std::optional<sim::EventQueue::PendingInfo> get_pending(snapshot::Decoder& d) {
  if (!d.b()) return std::nullopt;
  sim::EventQueue::PendingInfo p;
  p.when = d.f64();
  p.seq = d.u64();
  return p;
}

}  // namespace

void HexCellularSystem::save(std::ostream& os) {
  snapshot::Writer w(snapshot::SystemKind::kHex,
                     snapshot::config_digest(config_), simulator_.now(),
                     config_.seed);

  {
    auto& e = w.begin_section("config");
    snapshot::put_config(e, config_);
  }
  {
    auto& e = w.begin_section("simulator");
    e.f64(simulator_.now());
    e.u64(simulator_.events_executed());
    e.u64(simulator_.queue_next_seq());
    e.u64(simulator_.queue_next_id());
    e.u64(static_cast<std::uint64_t>(events_since_audit_));
  }
  {
    auto& e = w.begin_section("rngs");
    e.str(arrival_rng_.save_state());
    e.str(movement_rng_.save_state());
  }
  {
    auto& e = w.begin_section("cells");
    for (const Cell& cell : cells_) snapshot::put_cell(e, cell);
  }
  {
    auto& e = w.begin_section("stations");
    for (const BaseStation& bs : stations_) snapshot::put_station(e, bs);
  }
  {
    auto& e = w.begin_section("metrics");
    for (const CellMetrics& m : metrics_) snapshot::put_cell_metrics(e, m);
  }
  {
    auto& e = w.begin_section("mobiles");
    std::vector<const HexMobile*> recs;
    recs.reserve(mobiles_.size());
    for (const auto& [id, m] : mobiles_) recs.push_back(&m);
    std::sort(recs.begin(), recs.end(),
              [](const HexMobile* a, const HexMobile* b) {
                return a->id < b->id;
              });
    e.u64(next_id_);
    e.u32(static_cast<std::uint32_t>(recs.size()));
    for (const HexMobile* m : recs) {
      e.u64(m->id);
      e.u32(static_cast<std::uint32_t>(m->service));
      e.i64(m->cell);
      e.i64(m->prev);
      e.f64(m->entered_at);
      e.f64(m->speed_kmh);
      put_pending(e, simulator_.pending(m->expiry));
      put_pending(e, simulator_.pending(m->crossing));
    }
  }
  {
    auto& e = w.begin_section("arrival");
    put_pending(e, simulator_.pending(next_arrival_));
  }
  {
    auto& e = w.begin_section("accountant");
    snapshot::put_accountant(e, accountant_);
  }
  {
    auto& e = w.begin_section("engine");
    snapshot::put_engine(e, reservation_engine_);
  }
  {
    auto& e = w.begin_section("telemetry");
    e.b(telemetry_.enabled());
    if (telemetry_.enabled()) {
      snapshot::put_metrics_snapshot(e, telemetry_.registry().snapshot());
      snapshot::put_trace_buffer(e, telemetry_.buffer());
    }
  }
  {
    auto& e = w.begin_section("fault");
    const bool present = fault_ != nullptr;
    e.b(present);
    if (present) fault_->save(e);
  }

  w.finish(os);
}

std::unique_ptr<HexCellularSystem> HexCellularSystem::load(std::istream& is) {
  snapshot::Reader reader(is);
  reader.require_kind(snapshot::SystemKind::kHex);

  auto cfg_dec = reader.open("config");
  HexSystemConfig cfg = snapshot::get_hex_config(cfg_dec);
  cfg_dec.finish();
  PABR_CHECK(snapshot::config_digest(cfg) == reader.header().config_digest,
             "snapshot config digest mismatch");

  auto system = std::make_unique<HexCellularSystem>(std::move(cfg));
  system->restore_from(reader);
  return system;
}

void HexCellularSystem::restore_from(const snapshot::Reader& reader) {
  simulator_.reset();
  next_arrival_ = sim::EventHandle{};
  PABR_CHECK(mobiles_.empty(), "restore_from on a used system");

  double now = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t saved_next_seq = 0;
  std::uint64_t saved_next_id = 0;
  {
    auto d = reader.open("simulator");
    now = d.f64();
    executed = d.u64();
    saved_next_seq = d.u64();
    saved_next_id = d.u64();
    events_since_audit_ = static_cast<int>(d.u64());
    d.finish();
  }
  {
    auto d = reader.open("rngs");
    arrival_rng_.load_state(d.str());
    movement_rng_.load_state(d.str());
    d.finish();
  }
  {
    auto d = reader.open("cells");
    for (Cell& cell : cells_) snapshot::restore_cell(d, cell);
    d.finish();
  }
  {
    auto d = reader.open("stations");
    for (BaseStation& bs : stations_) snapshot::restore_station(d, bs);
    d.finish();
  }
  {
    auto d = reader.open("metrics");
    for (CellMetrics& m : metrics_) snapshot::restore_cell_metrics(d, m);
    d.finish();
  }

  struct SavedEvent {
    std::uint64_t seq;
    std::function<void()> schedule;
  };
  std::vector<SavedEvent> events;

  {
    auto d = reader.open("mobiles");
    next_id_ = d.u64();
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      HexMobile m;
      m.id = d.u64();
      m.service = static_cast<traffic::ServiceClass>(d.u32());
      m.cell = static_cast<geom::CellId>(d.i64());
      m.prev = static_cast<geom::CellId>(d.i64());
      m.entered_at = d.f64();
      m.speed_kmh = d.f64();
      const auto expiry = get_pending(d);
      const auto crossing = get_pending(d);
      const traffic::ConnectionId id = m.id;
      auto [it, inserted] = mobiles_.emplace(id, std::move(m));
      PABR_CHECK(inserted, "duplicate mobile id in snapshot");
      HexMobile* rec = &it->second;
      if (expiry.has_value()) {
        events.push_back(
            {expiry->seq, [this, rec, when = expiry->when, id] {
               rec->expiry = simulator_.schedule_at(when, [this, id] {
                 handle_expiry(id);
                 maybe_audit();
               });
             }});
      }
      if (crossing.has_value()) {
        events.push_back(
            {crossing->seq, [this, rec, when = crossing->when, id] {
               rec->crossing = simulator_.schedule_at(when, [this, id] {
                 handle_crossing(id);
                 maybe_audit();
               });
             }});
      }
    }
    d.finish();
  }
  {
    auto d = reader.open("arrival");
    const auto arrival = get_pending(d);
    d.finish();
    if (arrival.has_value()) {
      events.push_back({arrival->seq, [this, when = arrival->when] {
                          schedule_arrival_at(when);
                        }});
    }
  }
  {
    auto d = reader.open("accountant");
    snapshot::restore_accountant(d, accountant_);
    d.finish();
  }
  {
    auto d = reader.open("engine");
    snapshot::restore_engine(d, reservation_engine_);
    d.finish();
  }
  {
    auto d = reader.open("telemetry");
    const bool enabled = d.b();
    PABR_CHECK(enabled == telemetry_.enabled(),
               "snapshot/build disagree on telemetry");
    if (enabled) {
      const telemetry::MetricsSnapshot snap =
          snapshot::get_metrics_snapshot(d);
      telemetry_.registry().restore(snap);
      snapshot::restore_trace_buffer(d, telemetry_.buffer());
    }
    d.finish();
  }
  {
    auto d = reader.open("fault");
    const bool present = d.b();
    PABR_CHECK(present == (fault_ != nullptr),
               "snapshot/build disagree on fault injection");
    if (present) fault_->load(d);
    d.finish();
  }

  std::sort(events.begin(), events.end(),
            [](const SavedEvent& a, const SavedEvent& b) {
              return a.seq < b.seq;
            });
  for (SavedEvent& ev : events) ev.schedule();

  simulator_.advance_queue_counters(
      std::max(saved_next_seq, simulator_.queue_next_seq()),
      std::max(saved_next_id, simulator_.queue_next_id()));
  simulator_.restore_clock(now, executed);
}

}  // namespace pabr::core
