#include "core/metrics.h"

#include <cmath>

#include "util/check.h"

namespace pabr::core {

OfferedLoadTracker::OfferedLoadTracker(int num_cells,
                                       sim::Duration mean_lifetime_s)
    : num_cells_(num_cells), mean_lifetime_s_(mean_lifetime_s) {
  PABR_CHECK(num_cells > 0, "OfferedLoadTracker: no cells");
  PABR_CHECK(mean_lifetime_s > 0.0, "OfferedLoadTracker: bad lifetime");
}

void OfferedLoadTracker::on_request(sim::Time t, double bandwidth_bu) {
  PABR_CHECK(t >= 0.0 && bandwidth_bu >= 0.0, "bad request sample");
  const auto hour = static_cast<std::size_t>(std::floor(t / sim::kHour));
  if (hour >= hourly_bandwidth_.size()) {
    hourly_bandwidth_.resize(hour + 1, 0.0);
  }
  hourly_bandwidth_[hour] += bandwidth_bu;
}

std::vector<OfferedLoadTracker::HourSample> OfferedLoadTracker::hourly()
    const {
  std::vector<HourSample> out;
  out.reserve(hourly_bandwidth_.size());
  for (std::size_t h = 0; h < hourly_bandwidth_.size(); ++h) {
    const double rate_bu_per_s =
        hourly_bandwidth_[h] / (sim::kHour * static_cast<double>(num_cells_));
    out.push_back(HourSample{static_cast<double>(h),
                             rate_bu_per_s * mean_lifetime_s_});
  }
  return out;
}

}  // namespace pabr::core
