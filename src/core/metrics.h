// Measurement plumbing for the paper's evaluation metrics (§5):
// per-cell and system-wide P_CB, P_HD, time-averaged B_r and B_u, and the
// actual offered load (with retries) of the time-varying experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.h"
#include "sim/time.h"

namespace pabr::core {

/// Live per-cell accumulators.
struct CellMetrics {
  sim::RatioEstimator pcb;        ///< blocked / requested new connections
  sim::RatioEstimator phd;        ///< dropped / attempted hand-offs (into)
  sim::TimeWeightedMean br_mean;  ///< target reservation bandwidth B_r
  sim::TimeWeightedMean bu_mean;  ///< bandwidth in use B_u
  sim::Counter degrades;          ///< adaptive-QoS hand-off degradations
  sim::Counter upgrades;          ///< restorations back to full QoS
  sim::TimeWeightedMean overload; ///< soft-capacity overload indicator
  sim::Counter soft_alloc;        ///< soft hand-off legs pre-allocated here
  sim::Counter soft_fallback;     ///< zone entries that found no room
};

/// End-of-run snapshot of one cell — the rows of the paper's Tables 2-3.
struct CellStatus {
  int cell = 0;  ///< 1-based, as the paper numbers cells
  double pcb = 0.0;
  double phd = 0.0;
  double t_est = 0.0;
  double br = 0.0;  ///< current target reservation at snapshot time
  double bu = 0.0;  ///< bandwidth in use at snapshot time
  double br_avg = 0.0;
  double bu_avg = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t blocks = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t drops = 0;
};

/// Aggregate snapshot across all cells.
struct SystemStatus {
  double pcb = 0.0;
  double phd = 0.0;
  double n_calc = 0.0;  ///< mean B_r calculations per admission test
  double br_avg = 0.0;  ///< mean over cells of time-averaged B_r
  double bu_avg = 0.0;  ///< mean over cells of time-averaged B_u
  std::uint64_t requests = 0;
  std::uint64_t blocks = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t drops = 0;
  std::uint64_t br_calculations = 0;
  std::uint64_t backhaul_messages = 0;
  /// Adaptive-QoS / soft-capacity / soft hand-off extensions (0 unless
  /// the corresponding mechanism is enabled).
  std::uint64_t degrades = 0;
  std::uint64_t upgrades = 0;
  double overload_frac = 0.0;  ///< mean fraction of time above hard C
  std::uint64_t soft_allocations = 0;
  std::uint64_t soft_fallbacks = 0;
};

/// Accumulates the *actual* offered load per cell, hour by hour — the
/// L_a(t) curve of Fig. 14(a). Each new-connection attempt (including
/// §5.3 retries) contributes its bandwidth; the hourly actual load is
///   L_a = (sum of attempted bandwidth) / (3600 * num_cells) * mean_lifetime
/// which reduces to Eq. (7)'s lambda_a * E[b] * T.
class OfferedLoadTracker {
 public:
  OfferedLoadTracker(int num_cells, sim::Duration mean_lifetime_s);

  void on_request(sim::Time t, double bandwidth_bu);

  struct HourSample {
    double hour_start;  ///< hours since simulation start
    double load;        ///< actual offered load per cell (BU)
  };
  std::vector<HourSample> hourly() const;

  // Snapshot save/restore of the hourly tallies.
  const std::vector<double>& hourly_bandwidth() const {
    return hourly_bandwidth_;
  }
  void restore(std::vector<double> hourly_bandwidth) {
    hourly_bandwidth_ = std::move(hourly_bandwidth);
  }

 private:
  int num_cells_;
  sim::Duration mean_lifetime_s_;
  std::vector<double> hourly_bandwidth_;  // indexed by hour
};

}  // namespace pabr::core
