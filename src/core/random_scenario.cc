#include "core/random_scenario.h"

#include <sstream>

#include "traffic/workload.h"

namespace pabr::core {
namespace {

admission::PolicyKind pick_policy(sim::Rng& rng) {
  // The reservation-driven policies get most of the weight — they are the
  // ones whose incremental/scratch and threading behavior the fuzzer
  // differentially checks — but the baselines ride along so their
  // comparison paths stay covered too.
  const int roll = rng.uniform_int(0, 9);
  switch (roll) {
    case 0: return admission::PolicyKind::kStatic;
    case 1: return admission::PolicyKind::kNsDca;
    case 2:
    case 3: return admission::PolicyKind::kAc1;
    case 4:
    case 5: return admission::PolicyKind::kAc2;
    default: return admission::PolicyKind::kAc3;
  }
}

hoef::EstimatorConfig pick_estimator(sim::Rng& rng) {
  hoef::EstimatorConfig hoef;
  // A finite T_int disables probe caching (supports_caching() == false),
  // which is exactly the regime where the incremental engine must fall
  // back to recomputation — keep it in the mix.
  if (rng.bernoulli(0.25)) hoef.t_int = 3600.0;
  hoef.n_quad = rng.uniform_int(20, 100);
  return hoef;
}

/// Fault schedules come from their own named stream so the default
/// (faults-off) expansion of every seed stays byte-identical to what this
/// generator produced before fault fuzzing existed.
fault::FaultConfig pick_faults(std::uint64_t seed, int num_cells,
                               sim::Duration duration) {
  sim::Rng rng(sim::derive_seed(seed, "fault-generator"));
  fault::FaultConfig f;
  f.enabled = true;
  f.seed = sim::derive_seed(seed, "fault-injector");
  f.message_loss = rng.bernoulli(0.7) ? rng.uniform(0.0, 0.3) : 0.0;
  f.message_delay = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.2) : 0.0;
  if (rng.bernoulli(0.6)) {
    f.link_mtbf_s = rng.uniform(60.0, 600.0);
    f.link_mttr_s = rng.uniform(5.0, 60.0);
  }
  if (rng.bernoulli(0.4)) {
    f.station_mtbf_s = rng.uniform(120.0, 1200.0);
    f.station_mttr_s = rng.uniform(5.0, 60.0);
  }
  f.max_retries = rng.uniform_int(0, 4);
  f.backoff_base_s = rng.uniform(0.01, 0.1);
  f.backoff_max_s = f.backoff_base_s * rng.uniform(1.0, 16.0);
  f.degraded_floor_bu = rng.uniform(0.0, 15.0);
  // A couple of scripted windows so deterministic heals (and the audited
  // post-heal re-syncs) occur even when the stochastic processes are off.
  const int n_outages = rng.uniform_int(0, 2);
  for (int k = 0; k < n_outages; ++k) {
    fault::ScriptedOutage o;
    o.kind = rng.bernoulli(0.5) ? fault::ScriptedOutage::Kind::kStation
                                : fault::ScriptedOutage::Kind::kLink;
    o.a = rng.uniform_int(0, num_cells - 1);
    if (o.kind == fault::ScriptedOutage::Kind::kLink) {
      o.b = rng.uniform_int(0, num_cells - 1);
    }
    o.from = rng.uniform(0.0, duration);
    o.until = o.from + rng.uniform(5.0, 60.0);
    f.outages.push_back(o);
  }
  return f;
}

}  // namespace

std::string ScenarioSpec::summary() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (hex) {
    os << " hex " << grid.rows << 'x' << grid.cols
       << (grid.wrap ? " torus" : " open")
       << " policy=" << admission::policy_kind_name(grid.policy)
       << " C=" << grid.capacity_bu << " load=" << grid.offered_load()
       << " rvo=" << grid.voice_ratio
       << (grid.incremental_reservation ? "" : " scratch");
    if (grid.fault.enabled) os << " faults";
  } else {
    os << " linear cells=" << linear.num_cells
       << (linear.ring ? " ring" : " open")
       << " policy=" << admission::policy_kind_name(linear.policy)
       << " C=" << linear.capacity_bu
       << " load=" << linear.workload.offered_load()
       << " rvo=" << linear.workload.voice_ratio;
    if (linear.adaptive_qos) os << " adaptive";
    if (linear.wired.has_value()) os << " wired";
    if (linear.soft_capacity_margin > 0.0) os << " softcap";
    if (linear.soft_handoff_zone_km > 0.0) os << " softho";
    if (linear.known_route_fraction > 0.0) os << " gps";
    if (linear.retry.enabled) os << " retry";
    if (!linear.incremental_reservation) os << " scratch";
    if (linear.fault.enabled) os << " faults";
  }
  os << " dur=" << duration;
  return os.str();
}

ScenarioSpec random_scenario(std::uint64_t seed, bool with_faults) {
  // Decorrelate the generator stream from the systems' own streams (which
  // derive from the same seed value via named-stream hashing).
  sim::Rng rng(sim::derive_seed(seed, "scenario-generator"));

  ScenarioSpec s;
  s.seed = seed;
  s.duration = rng.uniform(100.0, 250.0);
  s.hex = rng.bernoulli(0.25);

  const double load = rng.uniform(40.0, 150.0);
  const double voice_ratio = rng.uniform(0.3, 1.0);
  const double capacity = static_cast<double>(rng.uniform_int(20, 60));
  // Short lifetimes relative to the ~35 s cell sojourn at highway speeds:
  // most connections cross at least once, many expire mid-cell.
  const double lifetime = rng.uniform(40.0, 120.0);
  const double speed_min = rng.uniform(60.0, 100.0);
  const double speed_max = speed_min + rng.uniform(10.0, 60.0);

  if (s.hex) {
    HexSystemConfig& g = s.grid;
    g.rows = rng.uniform_int(2, 4);
    g.cols = rng.uniform_int(2, 4);
    g.wrap = rng.bernoulli(0.5);
    // The brick-wall torus embedding only closes with an even number of
    // columns (geom::HexTopology).
    if (g.wrap && g.cols % 2 != 0) ++g.cols;
    g.capacity_bu = capacity;
    g.policy = pick_policy(rng);
    g.static_g = rng.uniform(2.0, capacity * 0.4);
    g.phd_target = rng.uniform(0.005, 0.05);
    // TestWindowConfig enforces t_start >= t_min (default 1 s).
    g.t_start = rng.uniform(1.0, 2.0);
    g.hoef = pick_estimator(rng);
    g.voice_ratio = voice_ratio;
    g.mean_lifetime_s = lifetime;
    g.speed_min_kmh = speed_min;
    g.speed_max_kmh = speed_max;
    g.set_offered_load(load);
    g.seed = seed;
    if (with_faults) {
      g.fault = pick_faults(seed, g.rows * g.cols, s.duration);
    }
    return s;
  }

  SystemConfig& c = s.linear;
  c.num_cells = rng.uniform_int(3, 8);
  c.ring = rng.bernoulli(0.7);
  c.capacity_bu = capacity;
  c.soft_capacity_margin = rng.bernoulli(0.3) ? rng.uniform(0.05, 0.2) : 0.0;
  c.adaptive_qos = rng.bernoulli(0.5);
  if (rng.bernoulli(0.4)) {
    wired::BackboneConfig wb;
    wb.access_capacity_bu = rng.uniform(capacity * 0.8, capacity * 1.5);
    wb.uplink_capacity_bu =
        rng.uniform(capacity, capacity * static_cast<double>(c.num_cells));
    c.wired = wb;
  }
  c.soft_handoff_zone_km = rng.bernoulli(0.3) ? rng.uniform(0.05, 0.3) : 0.0;
  c.policy = pick_policy(rng);
  c.static_g = rng.uniform(2.0, capacity * 0.4);
  c.phd_target = rng.uniform(0.005, 0.05);
  c.t_start = rng.uniform(1.0, 2.0);  // TestWindowConfig: t_start >= t_min

  c.hoef = pick_estimator(rng);
  c.known_route_fraction = rng.bernoulli(0.3) ? rng.uniform01() : 0.0;

  c.workload.voice_ratio = voice_ratio;
  c.workload.mean_lifetime_s = lifetime;
  c.workload.speed_min_kmh = speed_min;
  c.workload.speed_max_kmh = speed_max;
  c.workload.bidirectional = rng.bernoulli(0.8);
  c.workload.arrival_rate_per_cell =
      traffic::arrival_rate_for_load(load, voice_ratio, lifetime);

  c.retry.enabled = rng.bernoulli(0.3);
  c.seed = seed;
  if (with_faults) {
    c.fault = pick_faults(seed, c.num_cells, s.duration);
  }
  return s;
}

}  // namespace pabr::core
