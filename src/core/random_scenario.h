// Seeded random-scenario generation for the differential fuzzer
// (tests/fuzz_scenario_test.cc, bench/fuzz_driver.cc): one seed
// deterministically expands into a short simulation — topology shape and
// size, admission policy, R_vo, offered load, mobility, and the feature
// toggles (adaptive QoS, wired backbone, soft capacity, soft hand-off,
// known routes, retries, finite T_int) are all drawn from it. The same
// seed always yields the same scenario, so a failing seed IS the repro.
#pragma once

#include <cstdint>
#include <string>

#include "core/hex_system.h"
#include "core/system.h"

namespace pabr::core {

/// One randomized short simulation: either a linear-road system or a hex
/// grid, plus how long to run it.
struct ScenarioSpec {
  std::uint64_t seed = 0;
  bool hex = false;
  SystemConfig linear;    ///< meaningful when !hex
  HexSystemConfig grid;   ///< meaningful when hex
  sim::Duration duration = 150.0;

  /// Human-readable one-liner for failure messages ("seed=7 linear
  /// cells=5 ring policy=AC3 load=88.1 ...").
  std::string summary() const;
};

/// Expands `seed` into a scenario. Loads are drawn in 40-150 BU over
/// 20-60 BU cells and lifetimes are kept short relative to cell sojourns,
/// so a 100-250 s run exercises admission, hand-offs, drops, expiries and
/// every enabled extension without needing a long warm-up.
///
/// `with_faults` additionally draws a random fault schedule (link and
/// station outages, message loss/delay, retry budgets, scripted outages)
/// from a SEPARATE named RNG stream ("fault-generator"), so for any seed
/// the with_faults=false scenario is byte-identical to what older
/// revisions generated — fault fuzzing extends the corpus without
/// invalidating historical digests.
ScenarioSpec random_scenario(std::uint64_t seed, bool with_faults = false);

}  // namespace pabr::core
