#include "core/scenario.h"

#include "util/check.h"

namespace pabr::core {
namespace {

void apply_mobility(traffic::WorkloadConfig& wl, Mobility m) {
  if (m == Mobility::kHigh) {
    wl.speed_min_kmh = 80.0;
    wl.speed_max_kmh = 120.0;
  } else {
    wl.speed_min_kmh = 40.0;
    wl.speed_max_kmh = 60.0;
  }
}

}  // namespace

const char* mobility_name(Mobility m) {
  return m == Mobility::kHigh ? "high" : "low";
}

SystemConfig stationary_config(const StationaryParams& p) {
  PABR_CHECK(p.offered_load >= 0.0, "negative offered load");
  SystemConfig cfg;
  cfg.policy = p.policy;
  cfg.static_g = p.static_g;
  cfg.seed = p.seed;

  cfg.workload.voice_ratio = p.voice_ratio;
  cfg.workload.arrival_rate_per_cell =
      traffic::arrival_rate_for_load(p.offered_load, p.voice_ratio);
  apply_mobility(cfg.workload, p.mobility);

  // §5.2: "For the stationary case, T_int = inf is used since the speed
  // range and the offered load do not vary during each simulation run."
  cfg.hoef.t_int = sim::kInfiniteDuration;
  return cfg;
}

SystemConfig time_varying_config(const TimeVaryingParams& p) {
  SystemConfig cfg;
  cfg.policy = p.policy;
  cfg.seed = p.seed;

  cfg.workload.voice_ratio = p.voice_ratio;
  cfg.load_profile = traffic::paper_load_profile();
  cfg.speed_profile = traffic::paper_speed_profile();
  cfg.speed_half_range_kmh = traffic::kPaperSpeedHalfRange;

  cfg.retry.enabled = true;  // §5.3 blocked-call re-requests

  cfg.hoef.t_int = sim::kHour;  // T_int = 1 hour (§5.1 parameters)
  cfg.hoef.n_win_periods = 1;   // N_win-days = 1
  cfg.hoef.weights = {1.0, 1.0};  // w_0 = w_1 = 1
  return cfg;
}

SystemConfig directional_config(const DirectionalParams& p) {
  SystemConfig cfg;
  cfg.policy = p.policy;
  cfg.seed = p.seed;
  cfg.ring = false;  // border cells <1> and <10> disconnected

  cfg.workload.voice_ratio = p.voice_ratio;
  cfg.workload.arrival_rate_per_cell =
      traffic::arrival_rate_for_load(p.offered_load, p.voice_ratio);
  cfg.workload.bidirectional = false;  // all mobiles travel <1> -> <10>
  apply_mobility(cfg.workload, Mobility::kHigh);

  cfg.hoef.t_int = sim::kInfiniteDuration;
  return cfg;
}

}  // namespace pabr::core
