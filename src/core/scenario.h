// Ready-made scenario builders matching the paper's three evaluation
// set-ups (§5.1-§5.3), so examples/benches construct systems declaratively.
#pragma once

#include <cstdint>

#include "core/system.h"

namespace pabr::core {

enum class Mobility {
  kHigh,  ///< [SP_min, SP_max] = [80, 120] km/h
  kLow,   ///< [SP_min, SP_max] = [40, 60] km/h
};

const char* mobility_name(Mobility m);

/// §5.2 stationary traffic/mobility on the 10-cell ring: constant lambda
/// and speed range, T_int = infinity.
struct StationaryParams {
  double offered_load = 100.0;  ///< L of Eq. (7), BU per cell
  double voice_ratio = 1.0;     ///< R_vo
  Mobility mobility = Mobility::kHigh;
  admission::PolicyKind policy = admission::PolicyKind::kAc3;
  double static_g = 10.0;
  std::uint64_t seed = 1;
};
SystemConfig stationary_config(const StationaryParams& p);

/// §5.3 time-varying case: two simulated days, daily load/speed profiles,
/// blocked-call retries, T_int = 1 hour.
struct TimeVaryingParams {
  double voice_ratio = 1.0;
  admission::PolicyKind policy = admission::PolicyKind::kAc3;
  std::uint64_t seed = 1;
};
SystemConfig time_varying_config(const TimeVaryingParams& p);

/// Table 3 set-up: open (non-ring) road, all mobiles moving from cell <1>
/// toward cell <10>, high mobility.
struct DirectionalParams {
  double offered_load = 300.0;
  double voice_ratio = 1.0;
  admission::PolicyKind policy = admission::PolicyKind::kAc3;
  std::uint64_t seed = 1;
};
SystemConfig directional_config(const DirectionalParams& p);

}  // namespace pabr::core
