#include "core/system.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "mobility/linear_motion.h"
#include "util/check.h"
#include "util/log.h"

namespace pabr::core {
namespace {

traffic::WorkloadConfig effective_workload(const SystemConfig& cfg) {
  traffic::WorkloadConfig wl = cfg.workload;
  if (cfg.load_profile.has_value()) {
    // The generator runs at the rate of the profile's peak load; the
    // per-time scale factor brings it down to L_o(t).
    wl.arrival_rate_per_cell = traffic::arrival_rate_for_load(
        cfg.load_profile->max_value(), wl.voice_ratio, wl.mean_lifetime_s);
  }
  return wl;
}

}  // namespace

CellularSystem::CellularSystem(SystemConfig config)
    : config_(std::move(config)),
      rng_factory_(config_.seed),
      road_(config_.num_cells, config_.cell_diameter_km, config_.ring),
      interconnect_(config_.interconnect),
      accountant_(road_, &interconnect_),
      workload_(road_, effective_workload(config_),
                rng_factory_.make("workload")),
      retry_(config_.retry, rng_factory_.make("retry")),
      route_rng_(rng_factory_.make("route")),
      policy_(admission::make_policy(config_.policy, config_.static_g,
                                     &config_.ns)),
      reservation_engine_([this](geom::CellId cell, int direction) {
        return next_cell_in_direction(cell, direction);
      }),
      load_tracker_(config_.num_cells, config_.workload.mean_lifetime_s) {
  PABR_CHECK(config_.capacity_bu > 0.0, "non-positive capacity");
  PABR_CHECK(config_.time_origin >= 0.0, "negative time origin");
  // Start the event clock at the configured origin so every absolute
  // timestamp (arrivals, estimator periods, metric windows) is measured
  // from it.
  simulator_.restore_clock(config_.time_origin, 0);

  PABR_CHECK(
      config_.known_route_fraction >= 0.0 &&
          config_.known_route_fraction <= 1.0,
      "known_route_fraction out of [0,1]");

  reservation::TestWindowConfig twc;
  twc.phd_target = config_.phd_target;
  twc.t_start = config_.t_start;
  twc.step_policy = config_.t_est_step;

  cells_.reserve(static_cast<std::size_t>(config_.num_cells));
  stations_.reserve(static_cast<std::size_t>(config_.num_cells));
  metrics_.resize(static_cast<std::size_t>(config_.num_cells));
  for (geom::CellId c = 0; c < config_.num_cells; ++c) {
    cells_.emplace_back(c, config_.capacity_bu,
                        config_.soft_capacity_margin);
    stations_.emplace_back(c, config_.hoef, twc);
    auto& m = metrics_[static_cast<std::size_t>(c)];
    m.br_mean.update(config_.time_origin, 0.0);
    m.bu_mean.update(config_.time_origin, 0.0);
    m.overload.update(config_.time_origin, 0.0);
  }
  for (geom::CellId c : config_.traced_cells) {
    check_cell_id(c);
    traces_.emplace(c, CellTrace{});
  }

  if (config_.wired.has_value()) {
    backbone_ =
        std::make_unique<wired::Backbone>(config_.num_cells, *config_.wired);
  }

  if (config_.load_profile.has_value()) {
    const double peak = config_.load_profile->max_value();
    PABR_CHECK(peak > 0.0, "load profile peaks at zero");
    const traffic::DailyProfile profile = *config_.load_profile;
    workload_.set_rate_scale(
        [profile, peak](sim::Time t) { return profile.at(t) / peak; }, 1.0);
  }
  if (config_.speed_profile.has_value()) {
    const traffic::DailyProfile profile = *config_.speed_profile;
    const double half = config_.speed_half_range_kmh;
    workload_.set_speed_range([profile, half](sim::Time t) {
      const double s = profile.at(t);
      const double lo = std::max(1.0, s - half);
      return std::pair<double, double>{lo, std::max(lo, s + half)};
    });
  }

#ifdef PABR_FAULT_ENABLED
  if (config_.fault.enabled) {
    fault_ = std::make_unique<fault::FaultInjector>(config_.fault);
  }
#endif

  telemetry_.configure(config_.telemetry);
  if (telemetry_.enabled()) {
    tel_ = telemetry::make_sim_counters(telemetry_.registry(),
                                        config_.capacity_bu);
    reservation_engine_.bind_telemetry(tel_.terms_recomputed,
                                       tel_.terms_reused);
    accountant_.bind_telemetry(tel_.br_calculations);
    policy_->bind_telemetry(telemetry_.registry());
    for (auto& station : stations_) {
      station.estimator().bind_telemetry(tel_.quads_recorded,
                                         tel_.quads_evicted);
    }
    if (faults_on()) {
      // Registered only under fault injection so fault-free snapshots
      // keep their exact historical key set.
      fault_tel_ = telemetry::make_fault_counters(telemetry_.registry());
      accountant_.bind_fault_telemetry(fault_tel_.retries,
                                       fault_tel_.timeouts);
    }
  }

  schedule_next_arrival();
}

void CellularSystem::check_cell_id(geom::CellId cell) const {
  PABR_CHECK(cell >= 0 && cell < config_.num_cells, "cell id out of range");
}

void CellularSystem::run_for(sim::Duration duration) {
  PABR_CHECK(duration >= 0.0, "negative run duration");
  simulator_.run_until(simulator_.now() + duration);
}

void CellularSystem::run_until(sim::Time t) {
  PABR_CHECK(t >= simulator_.now(), "run_until into the past");
  simulator_.run_until(t);
}

void CellularSystem::reset_metrics() {
  const sim::Time t = simulator_.now();
  for (geom::CellId c = 0; c < config_.num_cells; ++c) {
    auto& m = metrics_[static_cast<std::size_t>(c)];
    m.pcb.reset();
    m.phd.reset();
    m.br_mean.reset(t);
    m.br_mean.update(
        t, stations_[static_cast<std::size_t>(c)].current_reservation());
    m.bu_mean.reset(t);
    m.bu_mean.update(t, cells_[static_cast<std::size_t>(c)].used());
    m.degrades.reset();
    m.upgrades.reset();
    m.soft_alloc.reset();
    m.soft_fallback.reset();
    m.overload.reset(t);
    m.overload.update(
        t, cells_[static_cast<std::size_t>(c)].overloaded() ? 1.0 : 0.0);
  }
  wired_blocks_.reset();
  wired_drops_.reset();
  accountant_.reset();
  interconnect_.reset();
  // Telemetry follows the same warm-up semantics: accumulators restart,
  // learned simulation state persists untouched.
  if (telemetry_.enabled()) {
    telemetry_.registry().reset();
    telemetry_.buffer().clear();
  }
}

// ---- AdmissionContext -----------------------------------------------------

double CellularSystem::capacity(geom::CellId cell) const {
  check_cell_id(cell);
  return cells_[static_cast<std::size_t>(cell)].capacity();
}

double CellularSystem::used_bandwidth(geom::CellId cell) const {
  check_cell_id(cell);
  return cells_[static_cast<std::size_t>(cell)].used();
}

const std::vector<geom::CellId>& CellularSystem::adjacent(
    geom::CellId cell) const {
  return road_.neighbors(cell);
}

double CellularSystem::recompute_reservation(geom::CellId cell) {
  check_cell_id(cell);
  const sim::Time t = simulator_.now();

  // Eq. (4) is evaluated with the *target* cell's estimation window
  // (T_est of "cell next", §4.1).
  const sim::Duration t_est =
      stations_[static_cast<std::size_t>(cell)].window().t_est();

  double br = 0.0;
#ifdef PABR_FAULT_ENABLED
  if (faults_on()) {
    // Degraded mode: each neighbour is consulted through the faulty
    // backhaul. Messages are billed per attempt by exchange(); the B_r
    // computation itself still counts once toward N_calc.
    accountant_.count_br_calculation();
    for (geom::CellId i : road_.neighbors(cell)) {
      const bool reachable = accountant_.exchange(
          cell, i, t, *fault_, backhaul::MessageType::kBandwidthQuery);
      if (!reachable) {
        // The neighbour's hand-in estimate is unavailable: substitute the
        // configured static floor (a per-neighbour guard-channel stand-in,
        // Hong & Rappaport style) and distrust the pair's cached terms.
        br += config_.fault.degraded_floor_bu;
        if (config_.incremental_reservation) {
          reservation_engine_.mark_stale(i, cell);
        }
        telemetry::bump(fault_tel_.floor_substitutions);
        continue;
      }
      if (config_.incremental_reservation) {
        const bool healing = reservation_engine_.is_stale(i, cell);
        const double before = br;
        br = reservation_engine_.accumulate(
            i, cell, cells_[static_cast<std::size_t>(i)].connections(),
            stations_[static_cast<std::size_t>(i)].estimator(), t, t_est,
            br);
        if (healing) {
          // Post-heal re-sync (invariant I9): the rebuilt pair cache must
          // reproduce the from-scratch Eq. (5) contribution bit-for-bit.
          PABR_CHECK(br == rescan_contribution(i, cell, t, t_est, before),
                     "post-heal pair re-sync diverged from scratch rescan");
          telemetry::bump(fault_tel_.pair_resyncs);
        }
      } else {
        br = rescan_contribution(i, cell, t, t_est, br);
      }
    }
  } else {
#else
  {
#endif
    accountant_.record_br_calculation(cell);
    if (config_.incremental_reservation) {
      for (geom::CellId i : road_.neighbors(cell)) {
        br = reservation_engine_.accumulate(
            i, cell, cells_[static_cast<std::size_t>(i)].connections(),
            stations_[static_cast<std::size_t>(i)].estimator(), t, t_est,
            br);
      }
    } else {
      br = reservation_rescan(cell, t, t_est);
    }
  }

  stations_[static_cast<std::size_t>(cell)].set_current_reservation(br);
  // §7: mirror the reservation onto the cell's wired access link — the
  // same expected hand-ins will need backbone capacity.
  if (backbone_ != nullptr) backbone_->set_reservation(cell, br);
  if (telemetry_.enabled()) {
    telemetry::bump(tel_.br_recomputes);
    tel_.br_value->add(br);
    telemetry_.emit(t, telemetry::EventKind::kBrRecompute, cell, 0, br);
  }
  metrics_[static_cast<std::size_t>(cell)].br_mean.update(t, br);
  if (auto it = traces_.find(cell); it != traces_.end()) {
    it->second.br.add(t, br);
  }
  return br;
}

double CellularSystem::reservation_rescan(geom::CellId cell, sim::Time t,
                                          sim::Duration t_est) const {
  double br = 0.0;
  for (geom::CellId i : road_.neighbors(cell)) {
    br = rescan_contribution(i, cell, t, t_est, br);
  }
  return br;
}

double CellularSystem::rescan_contribution(geom::CellId source,
                                           geom::CellId target, sim::Time t,
                                           sim::Duration t_est,
                                           double running) const {
  const Cell& neighbor = cells_[static_cast<std::size_t>(source)];
  const auto& estimator =
      stations_[static_cast<std::size_t>(source)].estimator();
  // Eq. (5): expected fractional hand-in bandwidth from cell `source`.
  // Under adaptive QoS, "bandwidth reservation is made on the basis of the
  // minimum QoS of each connection" (§1) — reserve_bandwidth carries the
  // minimum-QoS value in that mode.
  for (const traffic::ConnectionEntry& e : neighbor.connections()) {
    const sim::Duration extant = t - e.view.entered_cell_at;
    double ph;
    if (e.view.route_known) {
      // §7 ITS/GPS extension: the next cell is known, so the estimation
      // function only estimates the hand-off (sojourn) time.
      if (next_cell_in_direction(source, e.view.direction) != target) {
        continue;
      }
      ph = estimator.any_handoff_probability(t, e.view.prev_cell, extant,
                                             t_est);
    } else {
      ph = estimator.handoff_probability(t, e.view.prev_cell, target, extant,
                                         t_est);
    }
    running += static_cast<double>(e.view.reserve_bandwidth) * ph;
  }
  return running;
}

double CellularSystem::scratch_reservation(geom::CellId cell) {
  check_cell_id(cell);
  const sim::Time t = simulator_.now();
  const sim::Duration t_est =
      stations_[static_cast<std::size_t>(cell)].window().t_est();
#ifdef PABR_FAULT_ENABLED
  if (faults_on()) {
    // Mirror the degraded production path exactly — same reachability
    // verdicts (exchange_outcome is pure in (from, to, t)), same floor —
    // without any message or N_calc accounting.
    double br = 0.0;
    for (geom::CellId i : road_.neighbors(cell)) {
      br = fault_->exchange_outcome(cell, i, t).delivered
               ? rescan_contribution(i, cell, t, t_est, br)
               : br + config_.fault.degraded_floor_bu;
    }
    return br;
  }
#endif
  return reservation_rescan(cell, t, t_est);
}

bool CellularSystem::neighbor_reachable(geom::CellId cell,
                                        geom::CellId neighbor) {
#ifdef PABR_FAULT_ENABLED
  if (faults_on()) {
    const bool ok =
        accountant_.exchange(cell, neighbor, simulator_.now(), *fault_,
                             backhaul::MessageType::kReservationCheck);
    if (!ok) telemetry::bump(fault_tel_.ac_local_fallbacks);
    return ok;
  }
#endif
  (void)cell;
  (void)neighbor;
  return true;
}

double CellularSystem::current_reservation(geom::CellId cell) const {
  check_cell_id(cell);
  return stations_[static_cast<std::size_t>(cell)].current_reservation();
}

// ---- Arrival path ---------------------------------------------------------

void CellularSystem::schedule_next_arrival() {
  const sim::Time t = workload_.next_arrival_after(simulator_.now());
  if (!std::isfinite(t)) return;  // zero arrival rate
  schedule_arrival_at(t);
}

void CellularSystem::schedule_arrival_at(sim::Time t) {
  next_arrival_ = simulator_.schedule_at(t, [this, t] {
    traffic::ConnectionRequest req = workload_.make_request(t);
    schedule_next_arrival();
    handle_arrival(std::move(req));
    maybe_audit();
  });
}

bool CellularSystem::submit_request(const traffic::ConnectionRequest& req) {
  check_cell_id(req.cell);
  const bool admitted = handle_arrival(req);
  maybe_audit();
  return admitted;
}

bool CellularSystem::handle_arrival(traffic::ConnectionRequest request) {
  load_tracker_.on_request(simulator_.now(),
                           static_cast<double>(request.bandwidth()));
  bool admitted = false;
  bool wired_block = false;
  bool station_block = false;
#ifdef PABR_FAULT_ENABLED
  if (faults_on() && !fault_->station_up(request.cell, simulator_.now())) {
    // The serving BS is down: the request cannot even be signalled. It is
    // blocked without an admission test, so no N_calc sample is taken —
    // the complexity metric measures the algorithm, not the outage.
    station_block = true;
    telemetry::bump(fault_tel_.station_blocks);
  }
#endif
  if (!station_block) {
    admitted = try_admit(request);
    if (admitted && backbone_ != nullptr &&
        !backbone_->can_admit(request.cell, request.bandwidth())) {
      // The air interface admitted but the wired route cannot carry the
      // call (§2): blocked at the backbone.
      admitted = false;
      wired_block = true;
      wired_blocks_.add();
    }
  }
  if (telemetry_.enabled()) {
    // `blocked` counts every block; `blocked_wired` the backbone subset.
    telemetry::bump(admitted ? tel_.admitted : tel_.blocked);
    if (wired_block) telemetry::bump(tel_.blocked_wired);
    telemetry_.emit(simulator_.now(),
                    admitted      ? telemetry::EventKind::kAdmit
                    : wired_block ? telemetry::EventKind::kWiredBlock
                                  : telemetry::EventKind::kBlock,
                    request.cell, request.id,
                    static_cast<double>(request.bandwidth()));
  }
  metrics_[static_cast<std::size_t>(request.cell)].pcb.trial(!admitted);
  if (admitted) {
    start_connection(request);
  } else {
    maybe_schedule_retry(std::move(request));
  }
  return admitted;
}

bool CellularSystem::try_admit(const traffic::ConnectionRequest& request) {
  backhaul::AdmissionScope scope(accountant_);
  if (!telemetry_.time_admissions()) {
    return policy_->admit(*this, request.cell, request.bandwidth());
  }
  // Wall-clock sampling of the admission test. steady_clock never touches
  // simulation state, so determinism is unaffected.
  const auto t0 = std::chrono::steady_clock::now();
  const bool ok = policy_->admit(*this, request.cell, request.bandwidth());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  tel_.admission_ns->add(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
  return ok;
}

void CellularSystem::maybe_schedule_retry(traffic::ConnectionRequest request) {
  if (!retry_.enabled()) return;
  if (!retry_.should_retry(request.attempt)) return;

  const sim::Duration wait = retry_.wait();
  traffic::ConnectionRequest next = request;
  next.attempt = request.attempt + 1;
  next.requested_at = simulator_.now() + wait;
  // The (unconnected) user keeps moving while waiting to retry.
  next.position_km = request.position_km +
                     static_cast<double>(request.direction) *
                         (request.speed_kmh / 3600.0) * wait;
  const auto pos = road_.canonical_position(next.position_km);
  if (!pos.has_value()) return;  // drove off the open road; gives up
  next.position_km = *pos;
  next.cell = road_.cell_at(*pos);

  if (telemetry_.enabled()) {
    telemetry::bump(tel_.retries);
    telemetry_.emit(simulator_.now(), telemetry::EventKind::kRetry, next.cell,
                    next.id, static_cast<double>(next.attempt));
  }
  schedule_retry_event(next_retry_token_++, simulator_.now() + wait,
                       std::move(next));
}

void CellularSystem::schedule_retry_event(std::uint64_t token, sim::Time when,
                                          traffic::ConnectionRequest next) {
  const sim::EventHandle handle =
      simulator_.schedule_at(when, [this, token] {
        const auto it = pending_retries_.find(token);
        PABR_CHECK(it != pending_retries_.end(), "retry token vanished");
        traffic::ConnectionRequest req = std::move(it->second.request);
        pending_retries_.erase(it);
        handle_arrival(std::move(req));
        maybe_audit();
      });
  pending_retries_.emplace(token, PendingRetry{handle, std::move(next)});
}

void CellularSystem::start_connection(
    const traffic::ConnectionRequest& request) {
  const sim::Time t = simulator_.now();

  MobileRecord rec;
  rec.m.id = request.id;
  rec.m.service = request.service;
  rec.m.cell = request.cell;
  rec.m.prev_cell = request.cell;  // started here (paper's prev = 0)
  rec.m.entered_cell_at = t;
  rec.m.position_km = request.position_km;
  rec.m.position_at = t;
  rec.m.direction = request.direction;
  rec.m.speed_kmh = request.speed_kmh;
  rec.m.admitted_at = t;
  rec.m.expires_at = t + request.lifetime_s;
  rec.m.route_known = config_.known_route_fraction > 0.0 &&
                      route_rng_.bernoulli(config_.known_route_fraction);

  rec.m.current_bandwidth = request.bandwidth();  // new calls get full QoS

  cells_[static_cast<std::size_t>(request.cell)].attach(
      request.id, request.bandwidth(),
      reservation_view(rec.m, request.bandwidth()));
  if (backbone_ != nullptr) {
    backbone_->admit(request.cell, request.id, request.bandwidth());
  }
  record_bu(request.cell);

  const auto [it, inserted] = mobiles_.emplace(request.id, std::move(rec));
  PABR_CHECK(inserted, "duplicate connection id");
  MobileRecord& stored = it->second;

  stored.expiry = simulator_.schedule_at(
      stored.m.expires_at, [this, id = request.id] {
        handle_expiry(id);
        maybe_audit();
      });
  schedule_crossing(stored);
}

// ---- Motion / hand-off path -------------------------------------------------

void CellularSystem::schedule_crossing(MobileRecord& rec) {
  const auto crossing =
      mobility::next_crossing(road_, rec.m, simulator_.now());
  if (!crossing.has_value()) return;  // stationary mobile
  rec.crossing_to = crossing->to;
  rec.crossing_boundary_km = crossing->boundary_km;
  rec.crossing = simulator_.schedule_at(
      crossing->when, [this, id = rec.m.id] {
        handle_crossing(id);
        maybe_audit();
      });

  // CDMA soft hand-off (§7): pre-allocate the second leg when the mobile
  // enters the boundary zone. A single-cell ring wraps onto itself
  // (crossing->to == current cell) — there is no second cell to hold a
  // leg in, and a dual attach of the same id would corrupt the cell.
  if (config_.soft_handoff_zone_km > 0.0 &&
      crossing->to != geom::kNoCell && crossing->to != rec.m.cell) {
    const sim::Duration lead =
        config_.soft_handoff_zone_km / rec.m.speed_km_per_s();
    const sim::Time when =
        std::max(simulator_.now(), crossing->when - lead);
    rec.zone_entry = simulator_.schedule_at(
        when, [this, id = rec.m.id] {
          handle_zone_entry(id);
          maybe_audit();
        });
  }
}

void CellularSystem::handle_zone_entry(traffic::ConnectionId id) {
  const auto it = mobiles_.find(id);
  PABR_CHECK(it != mobiles_.end(), "zone entry for unknown mobile");
  MobileRecord& rec = it->second;
  if (rec.dual()) return;  // already holding a second leg
  const geom::CellId to = rec.crossing_to;
  PABR_CHECK(to != geom::kNoCell, "zone entry without a next cell");

  Cell& dst = cells_[static_cast<std::size_t>(to)];
  traffic::Bandwidth granted = grant_for_handoff(dst, rec.m);
#ifdef PABR_FAULT_ENABLED
  // A down destination BS cannot pre-allocate a soft leg; fall back to a
  // hard hand-off attempt at the boundary like any other full cell.
  if (granted > 0 && faults_on() &&
      !fault_->station_up(to, simulator_.now())) {
    granted = 0;
  }
#endif
  if (granted == 0) {
    // No room yet: fall back to a hard hand-off attempt at the boundary.
    metrics_[static_cast<std::size_t>(to)].soft_fallback.add();
    if (telemetry_.enabled()) {
      telemetry::bump(tel_.soft_fallbacks);
      telemetry_.emit(simulator_.now(), telemetry::EventKind::kSoftFallback,
                      to, id, static_cast<double>(rec.m.bandwidth()));
    }
    return;
  }
  dst.attach(id, granted, reservation_view(rec.m, granted));
  rec.dual_cell = to;
  rec.dual_bw = granted;
  metrics_[static_cast<std::size_t>(to)].soft_alloc.add();
  if (telemetry_.enabled()) {
    telemetry::bump(tel_.soft_allocs);
    telemetry_.emit(simulator_.now(), telemetry::EventKind::kSoftAlloc, to,
                    id, static_cast<double>(granted));
  }
  record_bu(to);
}

void CellularSystem::handle_crossing(traffic::ConnectionId id) {
  const auto it = mobiles_.find(id);
  PABR_CHECK(it != mobiles_.end(), "crossing for unknown mobile");
  MobileRecord& rec = it->second;
  const sim::Time t = simulator_.now();

  const geom::CellId from = rec.m.cell;
  const geom::CellId to = rec.crossing_to;
  const sim::Duration sojourn = rec.m.extant_sojourn(t);

  // Pin the mobile to the boundary (avoids floating-point drift).
  rec.m.position_km = rec.crossing_boundary_km;
  rec.m.position_at = t;

  if (to == geom::kNoCell) {
    // Drives off the open road: the connection ends without a hand-off
    // and without a quadruplet (no adjacent cell was entered).
    if (telemetry_.enabled()) {
      telemetry::bump(tel_.off_road);
      telemetry_.emit(t, telemetry::EventKind::kOffRoad, from, id,
                      static_cast<double>(rec.m.current_bandwidth));
    }
    terminate(rec, /*cancel_expiry=*/true, /*cancel_crossing=*/false);
    mobiles_.erase(it);
    return;
  }

  if (to == from) {
    // Single-cell ring: the boundary wraps straight back into the same
    // cell. Pure motion — no hand-off happened, no bandwidth moved, so
    // neither the estimator, the controller nor the backbone hears about
    // it; just book the next lap.
    schedule_crossing(rec);
    return;
  }

  // The departed cell caches the hand-off event quadruplet (§3.1) — the
  // mobile physically moved regardless of whether the hand-off survives.
  stations_[static_cast<std::size_t>(from)].estimator().record(
      hoef::Quadruplet{t, rec.m.prev_cell, to, sojourn});
  interconnect_.record(from, to, backhaul::MessageType::kHandoffSignal);
  if (telemetry_.enabled()) tel_.handoff_sojourn->add(sojourn);

  Cell& dst = cells_[static_cast<std::size_t>(to)];

  // A soft hand-off leg pre-allocated in the destination makes the
  // crossing drop-proof (make-before-break); otherwise grant full QoS if
  // it fits, or the adaptive-QoS minimum (§1), or drop.
  const bool via_dual = rec.dual() && rec.dual_cell == to;
  traffic::Bandwidth granted =
      via_dual ? rec.dual_bw : grant_for_handoff(dst, rec.m);
#ifdef PABR_FAULT_ENABLED
  if (granted > 0 && faults_on() && !fault_->station_up(to, t)) {
    // Destination BS is down: the hand-off has no one to signal to, so
    // the crossing drops even when radio capacity (or a pre-allocated
    // soft leg) would have carried it.
    granted = 0;
    telemetry::bump(fault_tel_.station_drops);
  }
#endif
  // §2/§7 wired leg: the new access link must also carry the call, and
  // the shared uplink must absorb any adaptive-QoS resize (the uplink leg
  // persists across the re-route, so only the delta over the currently
  // held bandwidth is new demand). The soft hand-off pre-allocation
  // covers the radio only — the wired re-route happens at the actual
  // crossing.
  bool wired_dropped = false;
  if (granted > 0 && backbone_ != nullptr &&
      !backbone_->can_handoff_into(to, id, granted)) {
    granted = 0;
    wired_dropped = true;
    wired_drops_.add();
  }
  const bool dropped = granted == 0;

  // Fig. 6 controller of the destination cell observes every hand-off.
  const sim::Duration t_est_before =
      stations_[static_cast<std::size_t>(to)].window().t_est();
  stations_[static_cast<std::size_t>(to)].window().on_handoff(
      dropped, t_soj_max_for(to));
  metrics_[static_cast<std::size_t>(to)].phd.trial(dropped);
  if (auto tr = traces_.find(to); tr != traces_.end()) {
    tr->second.t_est.add(
        t, stations_[static_cast<std::size_t>(to)].window().t_est());
    tr->second.phd.add(
        t, metrics_[static_cast<std::size_t>(to)].phd.value());
  }
  if (telemetry_.enabled()) {
    const sim::Duration t_est_after =
        stations_[static_cast<std::size_t>(to)].window().t_est();
    if (t_est_after != t_est_before) {
      telemetry_.emit(t, telemetry::EventKind::kTEstStep, to, 0, t_est_after);
    }
  }

  if (dropped) {
    if (telemetry_.enabled()) {
      // `handoff_dropped` counts every drop; `_wired` the backbone subset.
      telemetry::bump(tel_.handoff_dropped);
      if (wired_dropped) telemetry::bump(tel_.handoff_dropped_wired);
      telemetry_.emit(t,
                      wired_dropped ? telemetry::EventKind::kWiredDrop
                                    : telemetry::EventKind::kHandoffDrop,
                      to, id, static_cast<double>(rec.m.bandwidth()));
    }
    terminate(rec, /*cancel_expiry=*/true, /*cancel_crossing=*/false);
    mobiles_.erase(it);
    return;
  }

  if (granted < rec.m.bandwidth()) {
    metrics_[static_cast<std::size_t>(to)].degrades.add();
    if (telemetry_.enabled()) {
      telemetry::bump(tel_.handoff_degraded);
      telemetry_.emit(t, telemetry::EventKind::kDegrade, to, id,
                      static_cast<double>(granted));
    }
  } else if (rec.m.degraded()) {
    metrics_[static_cast<std::size_t>(to)].upgrades.add();
    if (telemetry_.enabled()) {
      telemetry::bump(tel_.handoff_upgraded);
      telemetry_.emit(t, telemetry::EventKind::kUpgrade, to, id,
                      static_cast<double>(granted));
    }
  }
  if (telemetry_.enabled()) {
    telemetry::bump(tel_.handoff_completed);
    telemetry_.emit(t, telemetry::EventKind::kHandoff, to, id,
                    static_cast<double>(granted));
  }

  cells_[static_cast<std::size_t>(from)].detach(id);
  record_bu(from);
  if (backbone_ != nullptr) backbone_->reroute(from, to, id, granted);
  rec.m.current_bandwidth = granted;

  rec.m.prev_cell = from;
  rec.m.cell = to;
  rec.m.entered_cell_at = t;
  if (via_dual) {
    // The second leg becomes the primary; nothing to allocate, but the
    // reservation-visible entry state must track the crossing.
    rec.dual_cell = geom::kNoCell;
    rec.dual_bw = 0;
    dst.set_view(id, reservation_view(rec.m, granted));
  } else {
    dst.attach(id, granted, reservation_view(rec.m, granted));
  }
  record_bu(to);
  schedule_crossing(rec);
}

void CellularSystem::handle_expiry(traffic::ConnectionId id) {
  const auto it = mobiles_.find(id);
  PABR_CHECK(it != mobiles_.end(), "expiry for unknown mobile");
  if (telemetry_.enabled()) {
    telemetry::bump(tel_.expiries);
    telemetry_.emit(simulator_.now(), telemetry::EventKind::kExpiry,
                    it->second.m.cell, id,
                    static_cast<double>(it->second.m.current_bandwidth));
  }
  terminate(it->second, /*cancel_expiry=*/false, /*cancel_crossing=*/true);
  mobiles_.erase(it);
}

void CellularSystem::terminate(MobileRecord& rec, bool cancel_expiry,
                               bool cancel_crossing) {
  if (cancel_expiry) simulator_.cancel(rec.expiry);
  if (cancel_crossing) simulator_.cancel(rec.crossing);
  simulator_.cancel(rec.zone_entry);  // inert if never scheduled/fired
  cells_[static_cast<std::size_t>(rec.m.cell)].detach(rec.m.id);
  if (backbone_ != nullptr) backbone_->release(rec.m.cell, rec.m.id);
  record_bu(rec.m.cell);
  if (rec.dual()) {
    cells_[static_cast<std::size_t>(rec.dual_cell)].detach(rec.m.id);
    record_bu(rec.dual_cell);
    rec.dual_cell = geom::kNoCell;
  }
}

traffic::Bandwidth CellularSystem::grant_for_handoff(
    const Cell& dst, const mobility::Mobile& m) const {
  const traffic::Bandwidth full = m.bandwidth();
  if (dst.can_fit(full)) return full;
  if (config_.adaptive_qos) {
    const traffic::Bandwidth floor = min_bandwidth(m);
    if (floor < full && dst.can_fit(floor)) return floor;
  }
  return 0;
}

// ---- Metrics ----------------------------------------------------------------

void CellularSystem::record_bu(geom::CellId cell) {
  auto& m = metrics_[static_cast<std::size_t>(cell)];
  const Cell& c = cells_[static_cast<std::size_t>(cell)];
  m.bu_mean.update(simulator_.now(), c.used());
  m.overload.update(simulator_.now(), c.overloaded() ? 1.0 : 0.0);
}

traffic::Bandwidth CellularSystem::min_bandwidth(
    const mobility::Mobile& m) const {
  if (m.service == traffic::ServiceClass::kVideo) {
    return std::min(config_.video_min_bu, m.bandwidth());
  }
  return m.bandwidth();
}

traffic::ReservationView CellularSystem::reservation_view(
    const mobility::Mobile& m, traffic::Bandwidth attached_bw) const {
  traffic::ReservationView v;
  v.reserve_bandwidth =
      config_.adaptive_qos ? min_bandwidth(m) : attached_bw;
  v.prev_cell = m.prev_cell;
  v.entered_cell_at = m.entered_cell_at;
  v.direction = static_cast<std::int8_t>(m.direction);
  v.route_known = m.route_known;
  return v;
}

geom::CellId CellularSystem::next_cell_in_direction(geom::CellId cell,
                                                    int direction) const {
  PABR_CHECK(direction == 1 || direction == -1, "bad direction");
  if (road_.wraps()) {
    const int n = config_.num_cells;
    return ((cell + direction) % n + n) % n;
  }
  const geom::CellId candidate = cell + direction;
  return (candidate < 0 || candidate >= config_.num_cells) ? geom::kNoCell
                                                           : candidate;
}

sim::Duration CellularSystem::t_soj_max_for(geom::CellId cell) const {
  // T_soj,max: "the maximum T_soj derived from the hand-off estimation
  // functions in adjacent cells" (§4.2).
  sim::Duration m = 0.0;
  for (geom::CellId i : road_.neighbors(cell)) {
    m = std::max(m, stations_[static_cast<std::size_t>(i)].estimator()
                        .max_sojourn(simulator_.now()));
  }
  return m;
}

const CellMetrics& CellularSystem::cell_metrics(geom::CellId cell) const {
  check_cell_id(cell);
  return metrics_[static_cast<std::size_t>(cell)];
}

CellStatus CellularSystem::cell_status(geom::CellId cell) const {
  check_cell_id(cell);
  const auto idx = static_cast<std::size_t>(cell);
  const sim::Time t = simulator_.now();
  CellStatus s;
  s.cell = cell + 1;  // the paper's 1-based numbering
  s.pcb = metrics_[idx].pcb.value();
  s.phd = metrics_[idx].phd.value();
  s.t_est = stations_[idx].window().t_est();
  s.br = stations_[idx].current_reservation();
  s.bu = cells_[idx].used();
  s.br_avg = metrics_[idx].br_mean.mean(t);
  s.bu_avg = metrics_[idx].bu_mean.mean(t);
  s.requests = metrics_[idx].pcb.trials();
  s.blocks = metrics_[idx].pcb.hits();
  s.handoffs = metrics_[idx].phd.trials();
  s.drops = metrics_[idx].phd.hits();
  return s;
}

SystemStatus CellularSystem::system_status() const {
  SystemStatus s;
  const sim::Time t = simulator_.now();
  double br_sum = 0.0;
  double bu_sum = 0.0;
  for (geom::CellId c = 0; c < config_.num_cells; ++c) {
    const auto idx = static_cast<std::size_t>(c);
    s.requests += metrics_[idx].pcb.trials();
    s.blocks += metrics_[idx].pcb.hits();
    s.handoffs += metrics_[idx].phd.trials();
    s.drops += metrics_[idx].phd.hits();
    s.degrades += metrics_[idx].degrades.count();
    s.upgrades += metrics_[idx].upgrades.count();
    s.soft_allocations += metrics_[idx].soft_alloc.count();
    s.soft_fallbacks += metrics_[idx].soft_fallback.count();
    s.overload_frac += metrics_[idx].overload.mean(t) /
                       static_cast<double>(config_.num_cells);
    br_sum += metrics_[idx].br_mean.mean(t);
    bu_sum += metrics_[idx].bu_mean.mean(t);
  }
  s.pcb = s.requests == 0 ? 0.0
                          : static_cast<double>(s.blocks) /
                                static_cast<double>(s.requests);
  s.phd = s.handoffs == 0 ? 0.0
                          : static_cast<double>(s.drops) /
                                static_cast<double>(s.handoffs);
  s.n_calc = accountant_.n_calc();
  s.br_avg = br_sum / static_cast<double>(config_.num_cells);
  s.bu_avg = bu_sum / static_cast<double>(config_.num_cells);
  s.br_calculations = accountant_.total_br_calculations();
  s.backhaul_messages = interconnect_.total_messages();
  return s;
}

const CellTrace* CellularSystem::trace(geom::CellId cell) const {
  const auto it = traces_.find(cell);
  return it == traces_.end() ? nullptr : &it->second;
}

telemetry::MetricsSnapshot CellularSystem::telemetry_snapshot() {
  if (telemetry_.enabled()) {
    auto& reg = telemetry_.registry();
    reg.gauge("signaling.n_calc")->set(accountant_.n_calc());
    reg.gauge("signaling.messages")
        ->set(static_cast<double>(interconnect_.total_messages()));
    reg.gauge("connections.active")
        ->set(static_cast<double>(mobiles_.size()));
    reg.gauge("trace.emitted")
        ->set(static_cast<double>(telemetry_.buffer().emitted()));
    reg.gauge("trace.rotated_out")
        ->set(static_cast<double>(telemetry_.buffer().rotated_out()));
    reg.gauge("trace.sampled_out")
        ->set(static_cast<double>(telemetry_.buffer().sampled_out()));
  }
  return telemetry_.snapshot();
}

Cell& CellularSystem::cell(geom::CellId id) {
  check_cell_id(id);
  return cells_[static_cast<std::size_t>(id)];
}

const Cell& CellularSystem::cell(geom::CellId id) const {
  check_cell_id(id);
  return cells_[static_cast<std::size_t>(id)];
}

BaseStation& CellularSystem::base_station(geom::CellId id) {
  check_cell_id(id);
  return stations_[static_cast<std::size_t>(id)];
}

const BaseStation& CellularSystem::base_station(geom::CellId id) const {
  check_cell_id(id);
  return stations_[static_cast<std::size_t>(id)];
}

}  // namespace pabr::core
