// CellularSystem — the full simulator of the paper's §5 evaluation
// environment: a linear road of cells with Poisson connection arrivals,
// admission control with predictive/adaptive bandwidth reservation,
// constant-velocity mobiles, hand-offs (with drops on insufficient
// capacity), hand-off event quadruplet collection, and metric recording.
//
// It also implements admission::AdmissionContext: the admission policies
// call back into the system for occupancy and on-demand B_r computation.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "admission/ns_policy.h"
#include "admission/policy.h"
#include "backhaul/network.h"
#include "backhaul/signaling.h"
#include "core/base_station.h"
#include "core/cell.h"
#include "core/metrics.h"
#include "fault/fault.h"
#include "geom/linear_topology.h"
#include "hoef/estimator.h"
#include "mobility/mobile.h"
#include "reservation/engine.h"
#include "reservation/test_window.h"
#include "sim/series.h"
#include "sim/simulator.h"
#include "telemetry/telemetry.h"
#include "traffic/profiles.h"
#include "traffic/retry.h"
#include "traffic/workload.h"
#include "wired/backbone.h"

namespace pabr::snapshot {
class Reader;
}  // namespace pabr::snapshot

namespace pabr::core {

struct SystemConfig {
  // Topology (assumption A1).
  int num_cells = 10;
  double cell_diameter_km = 1.0;
  /// Join the border cells into a ring (§5.1); Table 3 uses an open road.
  bool ring = true;
  /// C(i) = C for all i (assumption A6).
  double capacity_bu = 100.0;
  /// CDMA-style soft capacity for hand-offs (§7 future work): hand-offs
  /// may stretch occupancy to C * (1 + margin); new calls still see C.
  double soft_capacity_margin = 0.0;

  /// Adaptive-QoS integration (§1): a video hand-off that cannot get its
  /// full 4 BUs in the new cell is degraded to `video_min_bu` instead of
  /// dropped, and bandwidth reservation is computed from the minimum QoS.
  bool adaptive_qos = false;
  traffic::Bandwidth video_min_bu = 2;

  /// Wired backbone modelling (§2 / §7 future work): when set, every
  /// connection also occupies its serving BS's access link and the shared
  /// MSC uplink; admission requires wired capacity net of the access
  /// link's reservation target (kept equal to the cell's B_r), and a
  /// hand-off is dropped if the new access link cannot carry it.
  std::optional<wired::BackboneConfig> wired;

  /// CDMA soft hand-off (§7 future work): a mobile within this distance
  /// of the boundary pre-allocates bandwidth in the next cell and holds
  /// both legs until the crossing (make-before-break). A successful
  /// pre-allocation makes the hand-off drop-proof; a failed one falls
  /// back to the ordinary break-before-make attempt at the boundary.
  /// 0 disables the mechanism.
  double soft_handoff_zone_km = 0.0;

  // Admission control.
  admission::PolicyKind policy = admission::PolicyKind::kAc3;
  double static_g = 10.0;  ///< G for the static baseline
  /// Parameters of the NS-DCA baseline (used only when policy == kNsDca).
  admission::NsConfig ns;

  // Reservation / estimation parameters (§5.1).
  double phd_target = 0.01;
  sim::Duration t_start = 1.0;
  /// T_est adjustment step rule (§4.2 ablation; the paper uses kFixed).
  reservation::StepPolicy t_est_step = reservation::StepPolicy::kFixed;
  hoef::EstimatorConfig hoef;  ///< T_int, N_quad, weights, ...

  /// Fraction of mobiles whose travel direction is known to the network
  /// (the paper's §7 ITS/GPS extension: for such mobiles the estimation
  /// function only estimates the sojourn time — the next cell is known).
  double known_route_fraction = 0.0;

  // Workload (assumptions A2-A5).
  traffic::WorkloadConfig workload;
  traffic::RetryConfig retry;

  // Optional §5.3 time variation. When set, `load_profile` modulates the
  // arrival rate so the original offered load follows the profile, and
  // `speed_profile` drives the sampled speed range [S-half, S+half].
  std::optional<traffic::DailyProfile> load_profile;
  std::optional<traffic::DailyProfile> speed_profile;
  double speed_half_range_kmh = traffic::kPaperSpeedHalfRange;

  /// Serve recompute_reservation from the incremental per-(neighbor ->
  /// target) contribution caches (bit-identical to the from-scratch
  /// rescan; see reservation/engine.h). Off forces the scratch path on
  /// every call — only useful for the equivalence tests and the
  /// bench/micro_admission comparison.
  bool incremental_reservation = true;

  // Backhaul model.
  backhaul::InterconnectKind interconnect =
      backhaul::InterconnectKind::kFullyConnected;

  // Trace recording (Figs. 10-11): cells whose T_est / B_r / P_HD are
  // recorded as time series.
  std::vector<geom::CellId> traced_cells;

  /// Audit cadence: in builds with PABR_AUDIT on, run the full invariant
  /// sweep (audit_invariants) after every Nth handled simulation event.
  /// 0 disables the hook. Ignored entirely when PABR_AUDIT is off —
  /// audit_invariants() itself stays callable in every build.
  int audit_every = 0;

  /// Telemetry & trace collection (telemetry/telemetry.h). Default off;
  /// with PABR_TELEMETRY compiled out the field is inert. Purely
  /// observational either way: trajectories are byte-identical with
  /// telemetry on, off, or compiled out.
  telemetry::TelemetryConfig telemetry;

  /// Deterministic fault injection (fault/fault.h). Default disabled; with
  /// PABR_FAULT compiled out the field is inert. When disabled the fault
  /// branches are never taken and no injector RNG stream is created, so
  /// trajectories are byte-identical to builds/runs without fault support
  /// — the same contract as telemetry.
  fault::FaultConfig fault;

  /// Simulation clock value at construction. The system behaves as if it
  /// had been created at this instant: the event clock starts here and the
  /// time-weighted metric windows are anchored here. Used by the
  /// metamorphic time-origin-shift transform (DESIGN.md §14, M3) — a run
  /// whose scripted events are all shifted by Δ and whose time_origin is Δ
  /// must reproduce the original run exactly.
  sim::Time time_origin = 0.0;

  std::uint64_t seed = 1;
};

/// Per-cell trace bundle (only for cells listed in traced_cells).
struct CellTrace {
  sim::Series t_est{"t_est"};
  sim::Series br{"br"};
  sim::Series phd{"phd"};
};

class CellularSystem final : public admission::AdmissionContext {
 public:
  explicit CellularSystem(SystemConfig config);

  // ---- Run control ------------------------------------------------------
  void run_for(sim::Duration duration);
  /// Advances to the absolute sim time `t` (>= now()). Resumed runs use
  /// this rather than run_for so they stop at exactly the same clock
  /// value as the uninterrupted run (now() + (end - now()) can differ
  /// from `end` by an ulp, which the bitwise digest would notice).
  void run_until(sim::Time t);
  sim::Time now() const { return simulator_.now(); }

  /// Zeroes all probability/mean accumulators (used after a warm-up phase)
  /// while keeping learned state: estimation functions, T_est, and the
  /// radio occupancy all persist.
  void reset_metrics();

  // ---- AdmissionContext (called by the policies) -------------------------
  double capacity(geom::CellId cell) const override;
  double used_bandwidth(geom::CellId cell) const override;
  const std::vector<geom::CellId>& adjacent(geom::CellId cell) const override;
  double recompute_reservation(geom::CellId cell) override;
  double current_reservation(geom::CellId cell) const override;
  /// Reference from-scratch rescan (no caches, no side effects, not
  /// counted in N_calc) — must always equal recompute_reservation. Under
  /// fault injection it substitutes the same degraded floor for
  /// unreachable neighbours as the production path, so the equality
  /// holds in degraded mode too.
  double scratch_reservation(geom::CellId cell) override;
  /// Fault-aware backhaul probe (AC2/AC3 degraded fallback); always true
  /// without fault injection.
  bool neighbor_reachable(geom::CellId cell, geom::CellId neighbor) override;

  // ---- Metrics ------------------------------------------------------------
  const CellMetrics& cell_metrics(geom::CellId cell) const;
  CellStatus cell_status(geom::CellId cell) const;
  SystemStatus system_status() const;
  const OfferedLoadTracker& offered_load() const { return load_tracker_; }
  const CellTrace* trace(geom::CellId cell) const;

  // ---- Telemetry (src/telemetry/) ----------------------------------------
  telemetry::Collector& telemetry() { return telemetry_; }
  const telemetry::Collector& telemetry() const { return telemetry_; }
  /// Metrics snapshot with the polled gauges (N_calc, signalling message
  /// totals, active connections, trace-buffer health) synced first.
  /// Empty when telemetry is disabled or compiled out.
  telemetry::MetricsSnapshot telemetry_snapshot();

  // ---- Introspection ------------------------------------------------------
  const geom::LinearTopology& road() const { return road_; }
  const SystemConfig& config() const { return config_; }
  Cell& cell(geom::CellId id);
  const Cell& cell(geom::CellId id) const;
  BaseStation& base_station(geom::CellId id);
  const BaseStation& base_station(geom::CellId id) const;
  const backhaul::InterconnectModel& interconnect() const {
    return interconnect_;
  }
  const backhaul::SignalingAccountant& accountant() const {
    return accountant_;
  }
  std::size_t active_connections() const { return mobiles_.size(); }
  std::uint64_t events_executed() const {
    return simulator_.events_executed();
  }

  // ---- Fault injection (src/fault/) --------------------------------------
  /// True when fault hooks are compiled in AND this run enabled them
  /// (SystemConfig::fault.enabled). Constant false otherwise.
  bool faults_on() const {
#ifdef PABR_FAULT_ENABLED
    return fault_ != nullptr;
#else
    return false;
#endif
  }
  /// The run's injector (null without fault injection). Tests use this to
  /// query the sampled link/station timelines the simulation saw.
  fault::FaultInjector* fault_injector() { return fault_.get(); }

  /// Direct injection hooks used by unit/integration tests: bypasses the
  /// Poisson workload and submits one request now. Returns whether it was
  /// admitted.
  bool submit_request(const traffic::ConnectionRequest& request);

  // ---- Invariant audit (src/audit/system_audit.cc) ------------------------
  /// Full structural invariant sweep over the live system — the I1-I8
  /// catalogue of audit/invariants.h. Throws InvariantError naming the
  /// first violated invariant. Trajectory-transparent: nothing observable
  /// by the simulation (occupancy, reservations, metrics, RNG streams)
  /// changes. Available in every build; the per-event hook driven by
  /// SystemConfig::audit_every additionally needs PABR_AUDIT.
  void audit_invariants();

  // ---- Snapshot (src/core/system_snapshot.cc, format in src/snapshot/) ----
  /// Serializes the complete simulation state — event calendar, cells,
  /// mobiles, estimators, metrics, RNG streams, telemetry, faults — so
  /// that load() + run_for(rest) is bitwise identical to the
  /// uninterrupted run (audit invariant I10). Only legal between events
  /// (i.e. from outside run_for).
  void save(std::ostream& os);
  static std::unique_ptr<CellularSystem> load(std::istream& is);

 private:
  struct MobileRecord {
    mobility::Mobile m;
    sim::EventHandle expiry;
    sim::EventHandle crossing;
    sim::EventHandle zone_entry;
    geom::CellId crossing_to = geom::kNoCell;
    double crossing_boundary_km = 0.0;
    /// Soft hand-off: cell holding the pre-allocated second leg and the
    /// bandwidth granted there.
    geom::CellId dual_cell = geom::kNoCell;
    traffic::Bandwidth dual_bw = 0;

    bool dual() const { return dual_cell != geom::kNoCell; }
  };

  void schedule_next_arrival();
  /// Books the arrival event at absolute time `t` (split out of
  /// schedule_next_arrival so a snapshot load can re-create the pending
  /// arrival at its saved fire time).
  void schedule_arrival_at(sim::Time t);
  bool handle_arrival(traffic::ConnectionRequest request);
  bool try_admit(const traffic::ConnectionRequest& request);
  void maybe_schedule_retry(traffic::ConnectionRequest request);
  /// Books the retry event for `next` at absolute time `when` under the
  /// given token and tracks it in pending_retries_ (shared by the live
  /// path, which allocates a fresh token, and snapshot load, which
  /// replays the saved one).
  void schedule_retry_event(std::uint64_t token, sim::Time when,
                            traffic::ConnectionRequest next);
  /// Applies a parsed snapshot onto the freshly constructed system.
  void restore_from(const snapshot::Reader& reader);
  void start_connection(const traffic::ConnectionRequest& request);
  void schedule_crossing(MobileRecord& rec);
  void handle_crossing(traffic::ConnectionId id);
  void handle_zone_entry(traffic::ConnectionId id);
  void handle_expiry(traffic::ConnectionId id);
  void terminate(MobileRecord& rec, bool cancel_expiry, bool cancel_crossing);
  /// Bandwidth a hand-off into `dst` would be granted under the current
  /// QoS rules (full, degraded minimum, or 0 = drop).
  traffic::Bandwidth grant_for_handoff(const Cell& dst,
                                       const mobility::Mobile& m) const;

  void record_bu(geom::CellId cell);
  /// Minimum-QoS bandwidth of a connection (adaptive QoS, §1).
  traffic::Bandwidth min_bandwidth(const mobility::Mobile& m) const;
  /// The dense per-connection record the reservation hot loop reads,
  /// snapshotting the mobile's current cell-entry state. `attached_bw` is
  /// the bandwidth being attached (reservation uses the min-QoS bandwidth
  /// instead when adaptive QoS is on, §1).
  traffic::ReservationView reservation_view(
      const mobility::Mobile& m, traffic::Bandwidth attached_bw) const;
  /// Eq. (6) summed term-by-term from scratch over the dense connection
  /// tables (shared by the scratch path and the engine-off mode).
  double reservation_rescan(geom::CellId cell, sim::Time t,
                            sim::Duration t_est) const;
  /// One neighbour's Eq. (5) contribution of the from-scratch rescan,
  /// added term-by-term onto `running` in the exact association order of
  /// reservation_rescan (which is a loop of these). Degraded-mode code
  /// compares per-pair contributions against the incremental engine.
  double rescan_contribution(geom::CellId source, geom::CellId target,
                             sim::Time t, sim::Duration t_est,
                             double running) const;
  sim::Duration t_soj_max_for(geom::CellId cell) const;
  /// The cell a mobile in `cell` moving in `direction` will enter next
  /// (kNoCell past an open border).
  geom::CellId next_cell_in_direction(geom::CellId cell, int direction) const;
  void check_cell_id(geom::CellId cell) const;

  /// Per-event audit hook, called at the end of every event handler.
  /// Compiles to nothing without PABR_AUDIT; otherwise runs the full
  /// sweep every config_.audit_every events.
  void maybe_audit() {
#ifdef PABR_AUDIT_ENABLED
    if (config_.audit_every > 0 &&
        ++events_since_audit_ >= config_.audit_every) {
      events_since_audit_ = 0;
      audit_invariants();
    }
#endif
  }

  SystemConfig config_;
  sim::RngFactory rng_factory_;  ///< one factory, shared by all streams
  sim::Simulator simulator_;
  geom::LinearTopology road_;
  backhaul::InterconnectModel interconnect_;
  backhaul::SignalingAccountant accountant_;
  traffic::WorkloadGenerator workload_;
  traffic::RetryPolicy retry_;
  sim::Rng route_rng_;  ///< decides which mobiles have known routes (§7)
  std::unique_ptr<admission::AdmissionPolicy> policy_;
  reservation::IncrementalEngine reservation_engine_;

  std::vector<Cell> cells_;
  std::vector<BaseStation> stations_;
  std::vector<CellMetrics> metrics_;
  std::unordered_map<traffic::ConnectionId, MobileRecord> mobiles_;
  /// Handle of the one pending Poisson-arrival event (snapshot needs its
  /// fire time; inert when the arrival rate is zero).
  sim::EventHandle next_arrival_;
  /// Pending §5.3 retry events keyed by a monotone token: the scheduled
  /// request travels in this map — not in the event closure — so a
  /// snapshot can serialize and re-schedule it. Erased when the retry
  /// fires (retries are never cancelled).
  struct PendingRetry {
    sim::EventHandle handle;
    traffic::ConnectionRequest request;
  };
  std::map<std::uint64_t, PendingRetry> pending_retries_;
  std::uint64_t next_retry_token_ = 1;
  std::unordered_map<geom::CellId, CellTrace> traces_;
  OfferedLoadTracker load_tracker_;
  std::unique_ptr<wired::Backbone> backbone_;  // null unless config_.wired
  sim::Counter wired_blocks_;
  sim::Counter wired_drops_;
  int events_since_audit_ = 0;
  telemetry::Collector telemetry_;
  telemetry::SimCounters tel_;  ///< null instruments unless telemetry is on
  std::unique_ptr<fault::FaultInjector> fault_;  // null unless faults on
  telemetry::FaultCounters fault_tel_;  ///< bound only when faults are on

 public:
  const wired::Backbone* backbone() const { return backbone_.get(); }
  std::uint64_t wired_blocks() const { return wired_blocks_.count(); }
  std::uint64_t wired_drops() const { return wired_drops_.count(); }
};

}  // namespace pabr::core
