// CellularSystem::save/load — full simulator state capture into the
// src/snapshot container (DESIGN.md §13).
//
// Save serializes every state-bearing member plus the pending event
// calendar as (fire time, insertion seq) pairs. Load reconstructs the
// system from the embedded config, then re-schedules the saved events in
// ascending original-seq order: fresh consecutive seqs preserve the
// original relative order of time ties, which is all the event queue's
// comparator looks at, so the resumed trajectory is bitwise identical to
// the uninterrupted run (invariant I10).
#include <algorithm>
#include <functional>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/system.h"
#include "snapshot/format.h"
#include "snapshot/parts.h"
#include "util/check.h"

namespace pabr::core {

namespace {

/// Pending-event slot: presence flag + fire time + insertion seq.
void put_pending(snapshot::Encoder& e,
                 const std::optional<sim::EventQueue::PendingInfo>& p) {
  e.b(p.has_value());
  if (p.has_value()) {
    e.f64(p->when);
    e.u64(p->seq);
  }
}

std::optional<sim::EventQueue::PendingInfo> get_pending(snapshot::Decoder& d) {
  if (!d.b()) return std::nullopt;
  sim::EventQueue::PendingInfo p;
  p.when = d.f64();
  p.seq = d.u64();
  return p;
}

}  // namespace

void CellularSystem::save(std::ostream& os) {
  snapshot::Writer w(snapshot::SystemKind::kLinear,
                     snapshot::config_digest(config_), simulator_.now(),
                     config_.seed);

  {
    auto& e = w.begin_section("config");
    snapshot::put_config(e, config_);
  }
  {
    auto& e = w.begin_section("simulator");
    e.f64(simulator_.now());
    e.u64(simulator_.events_executed());
    e.u64(simulator_.queue_next_seq());
    e.u64(simulator_.queue_next_id());
    e.u64(static_cast<std::uint64_t>(events_since_audit_));
  }
  {
    auto& e = w.begin_section("rngs");
    e.str(workload_.rng_state());
    e.u64(workload_.next_id());
    e.str(retry_.rng_state());
    e.str(route_rng_.save_state());
  }
  {
    auto& e = w.begin_section("cells");
    for (const Cell& cell : cells_) snapshot::put_cell(e, cell);
  }
  {
    auto& e = w.begin_section("stations");
    for (const BaseStation& bs : stations_) snapshot::put_station(e, bs);
  }
  {
    auto& e = w.begin_section("metrics");
    for (const CellMetrics& m : metrics_) snapshot::put_cell_metrics(e, m);
  }
  {
    auto& e = w.begin_section("traces");
    e.u32(static_cast<std::uint32_t>(traces_.size()));
    // Global cell order, not map order, so the payload is deterministic.
    for (geom::CellId c = 0; c < config_.num_cells; ++c) {
      const auto it = traces_.find(c);
      if (it == traces_.end()) continue;
      e.i64(c);
      snapshot::put_series(e, it->second.t_est);
      snapshot::put_series(e, it->second.br);
      snapshot::put_series(e, it->second.phd);
    }
  }
  {
    auto& e = w.begin_section("mobiles");
    std::vector<const MobileRecord*> recs;
    recs.reserve(mobiles_.size());
    for (const auto& [id, rec] : mobiles_) recs.push_back(&rec);
    std::sort(recs.begin(), recs.end(),
              [](const MobileRecord* a, const MobileRecord* b) {
                return a->m.id < b->m.id;
              });
    e.u32(static_cast<std::uint32_t>(recs.size()));
    for (const MobileRecord* rec : recs) {
      snapshot::put_mobile(e, rec->m);
      e.i64(rec->crossing_to);
      e.f64(rec->crossing_boundary_km);
      e.i64(rec->dual_cell);
      e.i64(rec->dual_bw);
      put_pending(e, simulator_.pending(rec->expiry));
      put_pending(e, simulator_.pending(rec->crossing));
      put_pending(e, simulator_.pending(rec->zone_entry));
    }
  }
  {
    auto& e = w.begin_section("arrival");
    put_pending(e, simulator_.pending(next_arrival_));
  }
  {
    auto& e = w.begin_section("retries");
    e.u64(next_retry_token_);
    e.u32(static_cast<std::uint32_t>(pending_retries_.size()));
    for (const auto& [token, pr] : pending_retries_) {  // std::map: sorted
      const auto p = simulator_.pending(pr.handle);
      PABR_CHECK(p.has_value(), "tracked retry has no pending event");
      e.u64(token);
      e.f64(p->when);
      e.u64(p->seq);
      snapshot::put_request(e, pr.request);
    }
  }
  {
    auto& e = w.begin_section("accountant");
    snapshot::put_accountant(e, accountant_);
  }
  {
    auto& e = w.begin_section("interconnect");
    snapshot::put_interconnect(e, interconnect_);
  }
  {
    auto& e = w.begin_section("load");
    const auto& hours = load_tracker_.hourly_bandwidth();
    e.u32(static_cast<std::uint32_t>(hours.size()));
    for (double h : hours) e.f64(h);
  }
  {
    auto& e = w.begin_section("wired");
    e.b(backbone_ != nullptr);
    e.u64(wired_blocks_.count());
    e.u64(wired_drops_.count());
    if (backbone_ != nullptr) {
      snapshot::put_backbone(e, *backbone_, config_.num_cells);
    }
  }
  {
    auto& e = w.begin_section("engine");
    snapshot::put_engine(e, reservation_engine_);
  }
  {
    auto& e = w.begin_section("telemetry");
    e.b(telemetry_.enabled());
    if (telemetry_.enabled()) {
      // Raw registry snapshot: telemetry_snapshot() would sync gauges and
      // mutate state, which save() must never do.
      snapshot::put_metrics_snapshot(e, telemetry_.registry().snapshot());
      snapshot::put_trace_buffer(e, telemetry_.buffer());
    }
  }
  {
    auto& e = w.begin_section("fault");
    const bool present = fault_ != nullptr;
    e.b(present);
    if (present) fault_->save(e);
  }

  w.finish(os);
}

std::unique_ptr<CellularSystem> CellularSystem::load(std::istream& is) {
  snapshot::Reader reader(is);
  reader.require_kind(snapshot::SystemKind::kLinear);

  auto cfg_dec = reader.open("config");
  SystemConfig cfg = snapshot::get_linear_config(cfg_dec);
  cfg_dec.finish();
  PABR_CHECK(snapshot::config_digest(cfg) == reader.header().config_digest,
             "snapshot config digest mismatch");

  auto system = std::make_unique<CellularSystem>(std::move(cfg));
  system->restore_from(reader);
  return system;
}

void CellularSystem::restore_from(const snapshot::Reader& reader) {
  // Drop the constructor's bootstrap arrival event; every pending event
  // comes from the snapshot. The constructor's draw from the workload
  // stream is erased below when the RNG states are restored.
  simulator_.reset();
  next_arrival_ = sim::EventHandle{};
  PABR_CHECK(mobiles_.empty() && pending_retries_.empty(),
             "restore_from on a used system");

  double now = 0.0;
  std::uint64_t executed = 0;
  std::uint64_t saved_next_seq = 0;
  std::uint64_t saved_next_id = 0;
  {
    auto d = reader.open("simulator");
    now = d.f64();
    executed = d.u64();
    saved_next_seq = d.u64();
    saved_next_id = d.u64();
    events_since_audit_ = static_cast<int>(d.u64());
    d.finish();
  }
  {
    auto d = reader.open("rngs");
    const std::string workload_state = d.str();
    const traffic::ConnectionId next_id = d.u64();
    workload_.restore(workload_state, next_id);
    retry_.restore_rng(d.str());
    route_rng_.load_state(d.str());
    d.finish();
  }
  {
    auto d = reader.open("cells");
    for (Cell& cell : cells_) snapshot::restore_cell(d, cell);
    d.finish();
  }
  {
    auto d = reader.open("stations");
    for (BaseStation& bs : stations_) snapshot::restore_station(d, bs);
    d.finish();
  }
  {
    auto d = reader.open("metrics");
    for (CellMetrics& m : metrics_) snapshot::restore_cell_metrics(d, m);
    d.finish();
  }
  {
    auto d = reader.open("traces");
    const std::uint32_t n = d.u32();
    PABR_CHECK(n == traces_.size(), "snapshot trace-cell set mismatch");
    for (std::uint32_t i = 0; i < n; ++i) {
      const auto cell = static_cast<geom::CellId>(d.i64());
      const auto it = traces_.find(cell);
      PABR_CHECK(it != traces_.end(), "snapshot traces an untraced cell");
      snapshot::restore_series(d, it->second.t_est);
      snapshot::restore_series(d, it->second.br);
      snapshot::restore_series(d, it->second.phd);
    }
    d.finish();
  }

  // Saved live events, re-scheduled below in ascending original-seq
  // order so fresh consecutive seqs reproduce the original ordering.
  struct SavedEvent {
    std::uint64_t seq;
    std::function<void()> schedule;
  };
  std::vector<SavedEvent> events;

  {
    auto d = reader.open("mobiles");
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      MobileRecord rec;
      rec.m = snapshot::get_mobile(d);
      rec.crossing_to = static_cast<geom::CellId>(d.i64());
      rec.crossing_boundary_km = d.f64();
      rec.dual_cell = static_cast<geom::CellId>(d.i64());
      rec.dual_bw = static_cast<traffic::Bandwidth>(d.i64());
      const auto expiry = get_pending(d);
      const auto crossing = get_pending(d);
      const auto zone_entry = get_pending(d);
      const traffic::ConnectionId id = rec.m.id;
      auto [it, inserted] = mobiles_.emplace(id, std::move(rec));
      PABR_CHECK(inserted, "duplicate mobile id in snapshot");
      MobileRecord* r = &it->second;
      if (expiry.has_value()) {
        events.push_back({expiry->seq, [this, r, when = expiry->when, id] {
                            r->expiry = simulator_.schedule_at(when, [this, id] {
                              handle_expiry(id);
                              maybe_audit();
                            });
                          }});
      }
      if (crossing.has_value()) {
        events.push_back(
            {crossing->seq, [this, r, when = crossing->when, id] {
               r->crossing = simulator_.schedule_at(when, [this, id] {
                 handle_crossing(id);
                 maybe_audit();
               });
             }});
      }
      if (zone_entry.has_value()) {
        events.push_back(
            {zone_entry->seq, [this, r, when = zone_entry->when, id] {
               r->zone_entry = simulator_.schedule_at(when, [this, id] {
                 handle_zone_entry(id);
                 maybe_audit();
               });
             }});
      }
    }
    d.finish();
  }
  {
    auto d = reader.open("arrival");
    const auto arrival = get_pending(d);
    d.finish();
    if (arrival.has_value()) {
      events.push_back({arrival->seq, [this, when = arrival->when] {
                          schedule_arrival_at(when);
                        }});
    }
  }
  {
    auto d = reader.open("retries");
    next_retry_token_ = d.u64();
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t token = d.u64();
      const sim::Time when = d.f64();
      const std::uint64_t seq = d.u64();
      traffic::ConnectionRequest req = snapshot::get_request(d);
      events.push_back(
          {seq, [this, token, when, req = std::move(req)]() mutable {
             schedule_retry_event(token, when, std::move(req));
           }});
    }
    d.finish();
  }
  {
    auto d = reader.open("accountant");
    snapshot::restore_accountant(d, accountant_);
    d.finish();
  }
  {
    auto d = reader.open("interconnect");
    snapshot::restore_interconnect(d, interconnect_);
    d.finish();
  }
  {
    auto d = reader.open("load");
    const std::uint32_t n = d.u32();
    std::vector<double> hours(n);
    for (std::uint32_t i = 0; i < n; ++i) hours[i] = d.f64();
    load_tracker_.restore(std::move(hours));
    d.finish();
  }
  {
    auto d = reader.open("wired");
    const bool has_backbone = d.b();
    PABR_CHECK(has_backbone == (backbone_ != nullptr),
               "snapshot/config disagree on wired backbone");
    wired_blocks_.restore(d.u64());
    wired_drops_.restore(d.u64());
    if (backbone_ != nullptr) {
      snapshot::restore_backbone(d, *backbone_, config_.num_cells);
    }
    d.finish();
  }
  {
    auto d = reader.open("engine");
    snapshot::restore_engine(d, reservation_engine_);
    d.finish();
  }
  {
    auto d = reader.open("telemetry");
    const bool enabled = d.b();
    PABR_CHECK(enabled == telemetry_.enabled(),
               "snapshot/build disagree on telemetry");
    if (enabled) {
      const telemetry::MetricsSnapshot snap =
          snapshot::get_metrics_snapshot(d);
      telemetry_.registry().restore(snap);
      snapshot::restore_trace_buffer(d, telemetry_.buffer());
    }
    d.finish();
  }
  {
    auto d = reader.open("fault");
    const bool present = d.b();
    PABR_CHECK(present == (fault_ != nullptr),
               "snapshot/build disagree on fault injection");
    if (present) fault_->load(d);
    d.finish();
  }

  std::sort(events.begin(), events.end(),
            [](const SavedEvent& a, const SavedEvent& b) {
              return a.seq < b.seq;
            });
  for (SavedEvent& ev : events) ev.schedule();

  simulator_.advance_queue_counters(
      std::max(saved_next_seq, simulator_.queue_next_seq()),
      std::max(saved_next_id, simulator_.queue_next_id()));
  simulator_.restore_clock(now, executed);
}

}  // namespace pabr::core
