#include "fault/fault.h"

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

#include "snapshot/format.h"
#include "util/check.h"

namespace pabr::fault {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a stateless hash over the draw's full
/// identity — the message-fate primitive (header: pure, order-free).
double hash_uniform01(std::uint64_t seed, geom::CellId from, geom::CellId to,
                      sim::Time t, int attempt, std::uint32_t salt) {
  std::uint64_t h = splitmix64(seed ^ 0x6661756c74ull /* "fault" */);
  h = splitmix64(h ^ static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(from)));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(to))
                      << 1));
  h = splitmix64(h ^ std::bit_cast<std::uint64_t>(t));
  h = splitmix64(h ^ static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(attempt)));
  h = splitmix64(h ^ salt);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t link_key(geom::CellId a, geom::CellId b) {
  const geom::CellId lo = std::min(a, b);
  const geom::CellId hi = std::max(a, b);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(lo)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(hi));
}

}  // namespace

FaultInjector::FaultInjector(FaultConfig config) : config_(std::move(config)) {
  PABR_CHECK(config_.link_mtbf_s >= 0.0 && config_.link_mttr_s > 0.0,
             "fault: bad link MTBF/MTTR");
  PABR_CHECK(config_.station_mtbf_s >= 0.0 && config_.station_mttr_s > 0.0,
             "fault: bad station MTBF/MTTR");
  PABR_CHECK(config_.message_loss >= 0.0 && config_.message_loss <= 1.0,
             "fault: message_loss out of [0,1]");
  PABR_CHECK(config_.message_delay >= 0.0 && config_.message_delay <= 1.0,
             "fault: message_delay out of [0,1]");
  PABR_CHECK(config_.timeout_s > 0.0, "fault: non-positive timeout");
  PABR_CHECK(config_.max_retries >= 0, "fault: negative retry budget");
  PABR_CHECK(config_.backoff_base_s >= 0.0 &&
                 config_.backoff_max_s >= config_.backoff_base_s,
             "fault: bad back-off range");
  PABR_CHECK(config_.degraded_floor_bu >= 0.0,
             "fault: negative degraded reservation floor");
  for (const ScriptedOutage& o : config_.outages) {
    PABR_CHECK(o.until >= o.from, "fault: scripted outage ends before start");
    PABR_CHECK(o.a != geom::kNoCell, "fault: scripted outage without entity");
    PABR_CHECK(o.kind == ScriptedOutage::Kind::kStation ||
                   o.b != geom::kNoCell,
               "fault: scripted link outage without second endpoint");
  }
}

bool FaultInjector::Timeline::up_at(sim::Time t) {
  if (mtbf <= 0.0) return true;  // stochastic process disabled
  extend_past(t);
  // Up iff an even number of flips happened at or before t.
  const auto n = std::upper_bound(flips.begin(), flips.end(), t) -
                 flips.begin();
  return n % 2 == 0;
}

void FaultInjector::Timeline::extend_past(sim::Time t) {
  while (covered_until <= t) {
    // flips alternate up-end / down-end, starting in the up state.
    const bool ending_up = flips.size() % 2 == 0;
    covered_until += rng.exponential(ending_up ? mtbf : mttr);
    flips.push_back(covered_until);
  }
}

bool FaultInjector::scripted_link_down(geom::CellId a, geom::CellId b,
                                       sim::Time t) const {
  for (const ScriptedOutage& o : config_.outages) {
    if (o.kind != ScriptedOutage::Kind::kLink) continue;
    if (link_key(o.a, o.b) != link_key(a, b)) continue;
    if (t >= o.from && t < o.until) return true;
  }
  return false;
}

bool FaultInjector::scripted_station_down(geom::CellId cell,
                                          sim::Time t) const {
  for (const ScriptedOutage& o : config_.outages) {
    if (o.kind != ScriptedOutage::Kind::kStation || o.a != cell) continue;
    if (t >= o.from && t < o.until) return true;
  }
  return false;
}

FaultInjector::Timeline& FaultInjector::link_timeline(geom::CellId a,
                                                      geom::CellId b) {
  const std::uint64_t key = link_key(a, b);
  auto it = links_.find(key);
  if (it == links_.end()) {
    const std::string name = "fault-link-" +
                             std::to_string(std::min(a, b)) + "-" +
                             std::to_string(std::max(a, b));
    it = links_
             .emplace(key, Timeline(sim::derive_seed(config_.seed, name),
                                    config_.link_mtbf_s, config_.link_mttr_s))
             .first;
  }
  return it->second;
}

FaultInjector::Timeline& FaultInjector::station_timeline(geom::CellId cell) {
  auto it = stations_.find(cell);
  if (it == stations_.end()) {
    const std::string name = "fault-station-" + std::to_string(cell);
    it = stations_
             .emplace(cell,
                      Timeline(sim::derive_seed(config_.seed, name),
                               config_.station_mtbf_s, config_.station_mttr_s))
             .first;
  }
  return it->second;
}

bool FaultInjector::link_up(geom::CellId a, geom::CellId b, sim::Time t) {
  if (scripted_link_down(a, b, t)) return false;
  return link_timeline(a, b).up_at(t);
}

bool FaultInjector::station_up(geom::CellId cell, sim::Time t) {
  if (scripted_station_down(cell, t)) return false;
  return station_timeline(cell).up_at(t);
}

bool FaultInjector::message_lost(geom::CellId from, geom::CellId to,
                                 sim::Time t, int attempt, std::uint32_t salt,
                                 double probability) const {
  if (probability <= 0.0) return false;
  return hash_uniform01(config_.seed, from, to, t, attempt, salt) <
         probability;
}

sim::Duration FaultInjector::backoff_before_attempt(int attempt) const {
  PABR_CHECK(attempt >= 1, "backoff_before_attempt: attempt is 1-based");
  sim::Duration d = config_.backoff_base_s;
  for (int i = 1; i < attempt && d < config_.backoff_max_s; ++i) d *= 2.0;
  return std::min(d, config_.backoff_max_s);
}

ExchangeOutcome FaultInjector::exchange_outcome(geom::CellId from,
                                                geom::CellId to, sim::Time t) {
  ExchangeOutcome out;
  // Link/station state is sampled once: the whole virtual ladder spans an
  // instant of simulation time, so retries recover message-level losses
  // but not a down link or station.
  const bool path_up = link_up(from, to, t) && station_up(to, t);
  const int attempts = config_.max_retries + 1;
  for (int k = 0; k < attempts; ++k) {
    ++out.attempts;
    if (!path_up) continue;
    const bool request_lost =
        message_lost(from, to, t, k, 1, config_.message_loss) ||
        message_lost(from, to, t, k, 3, config_.message_delay);
    const bool reply_lost =
        message_lost(to, from, t, k, 2, config_.message_loss) ||
        message_lost(to, from, t, k, 4, config_.message_delay);
    if (!request_lost && !reply_lost) {
      out.delivered = true;
      break;
    }
  }
  return out;
}

void FaultInjector::save(snapshot::Encoder& enc) const {
  const auto put_timeline = [&enc](const Timeline& tl) {
    enc.str(tl.rng.save_state());
    enc.u32(static_cast<std::uint32_t>(tl.flips.size()));
    for (const sim::Time t : tl.flips) enc.f64(t);
    enc.f64(tl.covered_until);
  };

  std::vector<std::uint64_t> link_keys;
  link_keys.reserve(links_.size());
  for (const auto& [key, tl] : links_) link_keys.push_back(key);
  std::sort(link_keys.begin(), link_keys.end());
  enc.u32(static_cast<std::uint32_t>(link_keys.size()));
  for (const std::uint64_t key : link_keys) {
    enc.u64(key);
    put_timeline(links_.at(key));
  }

  std::vector<geom::CellId> station_keys;
  station_keys.reserve(stations_.size());
  for (const auto& [cell, tl] : stations_) station_keys.push_back(cell);
  std::sort(station_keys.begin(), station_keys.end());
  enc.u32(static_cast<std::uint32_t>(station_keys.size()));
  for (const geom::CellId cell : station_keys) {
    enc.u32(static_cast<std::uint32_t>(cell));
    put_timeline(stations_.at(cell));
  }
}

void FaultInjector::load(snapshot::Decoder& dec) {
  PABR_CHECK(links_.empty() && stations_.empty(),
             "fault injector load on a non-fresh injector");
  const auto get_timeline = [&dec](Timeline& tl) {
    tl.rng.load_state(dec.str());
    const std::uint32_t n_flips = dec.u32();
    tl.flips.clear();
    tl.flips.reserve(n_flips);
    for (std::uint32_t i = 0; i < n_flips; ++i) tl.flips.push_back(dec.f64());
    tl.covered_until = dec.f64();
  };

  const std::uint32_t n_links = dec.u32();
  for (std::uint32_t i = 0; i < n_links; ++i) {
    const std::uint64_t key = dec.u64();
    const auto lo = static_cast<geom::CellId>(
        static_cast<std::uint32_t>(key >> 32));
    const auto hi = static_cast<geom::CellId>(
        static_cast<std::uint32_t>(key & 0xffffffffu));
    // link_timeline creates the entry with its correctly derived stream
    // seed; the saved state then overwrites the lazily generated part.
    get_timeline(link_timeline(lo, hi));
  }
  const std::uint32_t n_stations = dec.u32();
  for (std::uint32_t i = 0; i < n_stations; ++i) {
    const auto cell = static_cast<geom::CellId>(dec.u32());
    get_timeline(station_timeline(cell));
  }
}

}  // namespace pabr::fault
