// Deterministic, seed-driven infrastructure fault injection (DESIGN.md
// §10): backhaul links fail and heal, individual signaling messages are
// dropped or delayed past their timeout, and base stations go down and
// come back mid-run.
//
// The injector is PASSIVE: it schedules no simulator events and owns no
// mutable simulation state the trajectory can observe. Every decision is
// a pure function of the fault seed and the query arguments:
//
//   * Link and station up/down states come from lazily extended,
//     memoized alternating up/down interval timelines, one per entity,
//     each generated from its own derived RNG stream
//     (derive_seed(fault_seed, "fault-link-a-b") etc). Extending a
//     timeline never changes the intervals already generated, so the
//     answer to up(t) is independent of the order (or number) of
//     queries — incremental and from-scratch reservation modes, and
//     1-vs-N-thread batches, see identical fault schedules.
//   * Per-message drop/delay decisions are stateless hashes of
//     (seed, from, to, time bit-pattern, attempt, salt): the same
//     exchange attempted at the same simulation time always meets the
//     same fate, no matter which code path asks.
//
// The exchange timeout + bounded-exponential-backoff retry ladder is
// *virtual*: signaling in this simulator is instantaneous in simulation
// time, so the ladder is the deterministic decision procedure for "did
// this request/reply survive, and after how many re-sends", not a source
// of simulated latency.
//
// Compile-time gating mirrors telemetry: this library is always built,
// but the simulators only construct an injector (and compile the fault
// branches of their hot paths) under PABR_FAULT; with the option off, or
// with FaultConfig::enabled false, trajectories are byte-identical to a
// build without the subsystem.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/topology.h"
#include "sim/random.h"
#include "sim/time.h"

namespace pabr::snapshot {
class Encoder;
class Decoder;
}  // namespace pabr::snapshot

namespace pabr::fault {

/// A deterministic outage window scripted directly in the config —
/// the test/bench counterpart of the stochastic MTBF/MTTR timelines.
struct ScriptedOutage {
  enum class Kind { kLink, kStation };
  Kind kind = Kind::kLink;
  geom::CellId a = geom::kNoCell;  ///< station, or one link endpoint
  geom::CellId b = geom::kNoCell;  ///< other link endpoint (kLink only)
  sim::Time from = 0.0;
  sim::Time until = 0.0;  ///< half-open [from, until)
};

struct FaultConfig {
  /// Master switch; with false the simulators never construct an
  /// injector and every fault branch is dead.
  bool enabled = false;
  /// Fault-process seed, independent of the simulation seed so the same
  /// traffic can be replayed under different fault schedules.
  std::uint64_t seed = 1;

  // Stochastic backhaul-link failures: mean up-time / mean repair time
  // of each (undirected) BS-BS link. 0 MTBF disables link faults.
  sim::Duration link_mtbf_s = 0.0;
  sim::Duration link_mttr_s = 30.0;

  // Per-message loss: probability that one signaling message (request or
  // reply, drawn independently) is dropped, and that it is delayed past
  // the receiver's timeout (equivalent to a loss for the sender).
  double message_loss = 0.0;
  double message_delay = 0.0;

  // Stochastic base-station outages. 0 MTBF disables them.
  sim::Duration station_mtbf_s = 0.0;
  sim::Duration station_mttr_s = 60.0;

  // Graceful-degradation knobs consumed by backhaul/signaling and the
  // reservation layer (documented in DESIGN.md §10).
  sim::Duration timeout_s = 0.05;   ///< per-request reply timeout
  int max_retries = 3;              ///< re-sends after the first attempt
  sim::Duration backoff_base_s = 0.05;  ///< first retry back-off
  sim::Duration backoff_max_s = 1.0;    ///< exponential back-off ceiling
  /// Static per-neighbour reservation floor substituted for the Eq. (5)
  /// contribution of an unreachable adjacent cell (Hong & Rappaport-style
  /// fallback, cf. ISSUE references).
  double degraded_floor_bu = 10.0;

  /// Deterministic outage windows OR-ed with the stochastic timelines.
  std::vector<ScriptedOutage> outages;
};

/// Outcome of one timeout+retry signaling exchange (see
/// FaultInjector::exchange_outcome).
struct ExchangeOutcome {
  bool delivered = false;
  int attempts = 0;  ///< total sends, 1..max_retries+1
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  const FaultConfig& config() const { return config_; }

  /// Whether the (undirected) backhaul link a<->b is up at `t`.
  bool link_up(geom::CellId a, geom::CellId b, sim::Time t);

  /// Whether the base station of `cell` is up at `t`.
  bool station_up(geom::CellId cell, sim::Time t);

  /// Replays the full request/reply exchange from `from` to `to` at
  /// simulation time `t` through the timeout + bounded-backoff retry
  /// ladder. Pure given (config, from, to, t): callers on any code path
  /// (admission, reservation, audit) see the same outcome. Attempt k is
  /// delivered iff the link and destination station are up and neither
  /// the request nor the reply is dropped or delayed past the timeout.
  ExchangeOutcome exchange_outcome(geom::CellId from, geom::CellId to,
                                   sim::Time t);

  /// The deterministic back-off inserted before re-send `attempt`
  /// (1-based): min(backoff_base * 2^(attempt-1), backoff_max). Exposed
  /// so the retry schedule itself is testable.
  sim::Duration backoff_before_attempt(int attempt) const;

  /// Stateless per-message loss/delay draw for attempt `attempt` of the
  /// exchange keyed by (from, to, t); `salt` separates the request,
  /// reply, and delay draws. Exposed for the determinism tests.
  bool message_lost(geom::CellId from, geom::CellId to, sim::Time t,
                    int attempt, std::uint32_t salt, double probability) const;

  /// Snapshot save/load (src/snapshot/) of the lazily materialized
  /// timelines: RNG stream position, flip list and coverage horizon per
  /// entity, written in sorted key order so the payload is deterministic.
  /// The timelines are reconstructable from the fault seed alone, but
  /// restoring them verbatim keeps a resumed run's memoization state —
  /// and therefore its RNG stream positions — bitwise identical. load()
  /// expects a freshly constructed injector with the same config.
  void save(snapshot::Encoder& enc) const;
  void load(snapshot::Decoder& dec);

 private:
  /// Alternating up/down interval timeline of one entity, generated
  /// lazily from its own derived stream. `flips[0]` is the end of the
  /// initial up interval, `flips[1]` the end of the following down
  /// interval, and so on; the state at `t` is up iff the number of flips
  /// at or before `t` is even.
  struct Timeline {
    Timeline(std::uint64_t stream_seed, sim::Duration mtbf_s,
             sim::Duration mttr_s)
        : mtbf(mtbf_s), mttr(mttr_s), rng(stream_seed) {}

    sim::Duration mtbf;
    sim::Duration mttr;
    sim::Rng rng;  ///< private stream; draws only ever append to `flips`
    std::vector<sim::Time> flips;
    sim::Time covered_until = 0.0;

    bool up_at(sim::Time t);

   private:
    void extend_past(sim::Time t);
  };

  bool scripted_link_down(geom::CellId a, geom::CellId b, sim::Time t) const;
  bool scripted_station_down(geom::CellId cell, sim::Time t) const;
  Timeline& link_timeline(geom::CellId a, geom::CellId b);
  Timeline& station_timeline(geom::CellId cell);

  FaultConfig config_;
  std::unordered_map<std::uint64_t, Timeline> links_;
  std::unordered_map<geom::CellId, Timeline> stations_;
};

}  // namespace pabr::fault
