#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace pabr::fuzz {

namespace fs = std::filesystem;

std::vector<Genome> load_corpus(const std::string& dir) {
  std::vector<Genome> corpus;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return corpus;

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".pabrfuzz") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  corpus.reserve(files.size());
  for (const fs::path& p : files) {
    std::ifstream in(p);
    if (!in) throw std::runtime_error("corpus: cannot open " + p.string());
    try {
      corpus.push_back(Genome::parse(in));
    } catch (const std::exception& e) {
      throw std::runtime_error("corpus: " + p.string() + ": " + e.what());
    }
  }
  return corpus;
}

std::string save_to_corpus(const std::string& dir, const Genome& g) {
  fs::create_directories(dir);
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.pabrfuzz",
                static_cast<unsigned long long>(g.digest()));
  const fs::path path = fs::path(dir) / name;
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("corpus: cannot write " + path.string());
  g.serialize(out);
  if (!out) throw std::runtime_error("corpus: write failed " + path.string());
  return path.string();
}

}  // namespace pabr::fuzz
