// On-disk corpus management for the guided fuzzer (DESIGN.md §15).
//
// A corpus directory is a flat set of `<digest>.pabrfuzz` files, one
// genome each, named by the 16-hex-digit content digest of the
// serialized text — so identical genomes dedup by construction and the
// directory is safe to merge across machines or CI cache restores. The
// coverage map is NOT persisted: replaying the corpus (cheap, a few
// hundred short runs) rebuilds it exactly, which keeps the on-disk
// format to one self-describing artifact kind.
#pragma once

#include <string>
#include <vector>

#include "fuzz/genome.h"

namespace pabr::fuzz {

/// Loads every `*.pabrfuzz` file under `dir`, sorted by filename so the
/// replay order — and therefore the rebuilt coverage map and every
/// digest derived from it — is identical on every filesystem. A missing
/// directory yields an empty corpus; a malformed file throws
/// std::runtime_error naming it.
std::vector<Genome> load_corpus(const std::string& dir);

/// Writes `g` to `dir/<%016x of g.digest()>.pabrfuzz` (creating `dir` if
/// needed) and returns the path. Overwrites an existing entry with the
/// same digest (same content by construction).
std::string save_to_corpus(const std::string& dir, const Genome& g);

}  // namespace pabr::fuzz
