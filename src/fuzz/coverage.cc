#include "fuzz/coverage.h"

#include <algorithm>

#include "admission/policy.h"

namespace pabr::fuzz {
namespace {

void add(std::vector<std::string>& out, std::string f) {
  out.push_back(std::move(f));
}

void add_bucketed(std::vector<std::string>& out, const std::string& name,
                  std::uint64_t n) {
  add(out, name + ":b" + std::to_string(magnitude_bucket(n)));
}

}  // namespace

std::uint64_t magnitude_bucket(std::uint64_t n) {
  if (n == 0) return 0;
  std::uint64_t b = 1;
  while (b * 2 <= n && b < (std::uint64_t{1} << 16)) b *= 2;
  return b;
}

Signature run_signature(const Genome& g, const core::SystemStatus& s,
                        const telemetry::MetricsSnapshot& m,
                        std::uint64_t wired_blocks,
                        std::uint64_t wired_drops) {
  std::vector<std::string> f;
  f.reserve(48);

  // ---- Structural genome features ----------------------------------------
  const std::string pol = admission::policy_kind_name(g.policy);
  add(f, g.hex ? "topo:hex" : "topo:linear");
  add(f, (g.hex ? g.wrap : g.ring) ? "topo:closed" : "topo:open");
  add_bucketed(f, "topo:cells", static_cast<std::uint64_t>(g.num_cells()));
  add(f, "policy:" + pol);
  if (!g.hex) {
    if (g.adaptive_qos) add(f, "cfg:adaptive");
    if (g.wired) add(f, "cfg:wired");
    if (g.soft_capacity_margin > 0.0) add(f, "cfg:softcap");
    if (g.soft_handoff_zone_km > 0.0) add(f, "cfg:softho");
    if (g.known_route_fraction > 0.0) add(f, "cfg:gps");
    if (g.retry) add(f, "cfg:retry");
    // Every distinct toggle COMBINATION is its own feature. Single-toggle
    // features saturate after a handful of runs; the set feature is the
    // retention ladder that lets mutation + crossover climb toward rare
    // conjunctions one new combination at a time (the planted-bug
    // self-check exercises exactly this dynamic).
    unsigned mask = 0;
    if (g.ring) mask |= 1u;
    if (g.adaptive_qos) mask |= 2u;
    if (g.wired) mask |= 4u;
    if (g.soft_capacity_margin > 0.0) mask |= 8u;
    if (g.soft_handoff_zone_km > 0.0) mask |= 16u;
    if (g.known_route_fraction > 0.0) mask |= 32u;
    if (g.retry) mask |= 64u;
    if (g.faults) mask |= 128u;
    add(f, "cfgset:" + std::to_string(mask));
    // ... and the combination crossed with the hand-off pressure regimes
    // actually reached, so "same toggles, now with contention" is new.
    if (s.soft_fallbacks > 0) add(f, "cfgset:" + std::to_string(mask) + ":fb");
    if (s.degrades > 0) add(f, "cfgset:" + std::to_string(mask) + ":dg");
    if (s.drops > 0) add(f, "cfgset:" + std::to_string(mask) + ":dr");
  }
  if (g.t_int != 0.0) add(f, "cfg:finite_tint");
  if (g.arrival_rate_per_cell == 0.0) add(f, "cfg:zero_arrivals");
  if (g.faults) {
    add(f, "fault:on");
    if (g.message_loss > 0.0) add(f, "fault:loss");
    if (g.message_delay > 0.0) add(f, "fault:delay");
    if (g.link_mtbf_s > 0.0) add(f, "fault:links");
    if (g.station_mtbf_s > 0.0) add(f, "fault:stations");
    add_bucketed(f, "fault:scripted", g.outages.size());
    // Overlapping scripted windows exercise the OR-ed outage logic; a
    // window wholly past the horizon must be inert (edge-case regime).
    for (std::size_t i = 0; i < g.outages.size(); ++i) {
      if (g.outages[i].from >= g.duration) add(f, "fault:outside_horizon");
      for (std::size_t j = i + 1; j < g.outages.size(); ++j) {
        const auto& a = g.outages[i];
        const auto& b = g.outages[j];
        if (a.from < b.until && b.from < a.until) add(f, "fault:overlap");
      }
    }
  }

  // ---- Resume-probe features ----------------------------------------------
  add_bucketed(f, "resume:points", g.snap_fractions.size());
  for (const double frac : g.snap_fractions) {
    if (frac <= 0.02 || frac >= 0.98) add(f, "resume:boundary");
  }

  // ---- SystemStatus regimes (available in every build) --------------------
  add_bucketed(f, "run:requests", s.requests);
  add_bucketed(f, "run:blocks", s.blocks);
  add_bucketed(f, "run:handoffs", s.handoffs);
  add_bucketed(f, "run:drops", s.drops);
  add_bucketed(f, "run:br_calcs", s.br_calculations);
  add_bucketed(f, "run:degrades", s.degrades);
  add_bucketed(f, "run:upgrades", s.upgrades);
  add_bucketed(f, "run:soft_allocs", s.soft_allocations);
  add_bucketed(f, "run:soft_fallbacks", s.soft_fallbacks);
  add_bucketed(f, "run:wired_blocks", wired_blocks);
  add_bucketed(f, "run:wired_drops", wired_drops);
  // Per-policy admit/reject/drop regimes — the cross products the
  // AC1/AC2/AC3 comparison paths care about.
  if (s.requests > s.blocks) add(f, pol + ":admit");
  if (s.blocks > 0) add(f, pol + ":block");
  if (s.handoffs > 0) add(f, pol + ":handoff");
  if (s.drops > 0) add(f, pol + ":drop");
  if (s.degrades > 0) add(f, pol + ":degrade");

  // ---- Telemetry counters (richer regimes when compiled in) ---------------
  // The retry ladder, degraded-mode substitutions and soft hand-off flows
  // only surface here; an empty snapshot (PABR_TELEMETRY=OFF) simply
  // contributes nothing.
  for (const auto& [name, value] : m.counters) {
    static const char* kGuided[] = {
        "admission.retries",        "handoff.off_road",
        "connection.expired",       "softho.alloc",
        "softho.fallback",          "fault.retries",
        "fault.timeouts",           "fault.ac_local_fallbacks",
        "fault.floor_substitutions","fault.station_blocks",
        "fault.station_drops",      "fault.pair_resyncs",
    };
    for (const char* want : kGuided) {
      if (name == want) {
        add_bucketed(f, name, value);
        if (value > 0 && name.rfind("fault.", 0) == 0) {
          add(f, pol + ":" + name);  // policy x degraded-mode cross regime
        }
        break;
      }
    }
  }

  std::sort(f.begin(), f.end());
  f.erase(std::unique(f.begin(), f.end()), f.end());
  Signature sig;
  sig.features = std::move(f);
  return sig;
}

std::size_t CoverageMap::merge(const Signature& sig) {
  std::size_t fresh = 0;
  for (const std::string& feat : sig.features) {
    if (seen_.insert(feat).second) ++fresh;
  }
  return fresh;
}

}  // namespace pabr::fuzz
