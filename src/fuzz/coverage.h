// Model-level coverage signatures for the guided fuzzer (DESIGN.md §15).
//
// Instead of branch coverage, a run's "coverage" is a set of regime
// features harvested from the end-of-run observables the repo already
// maintains: the SystemStatus counters, the telemetry registry (admission
// outcomes per policy, §5.3 retries, degraded-mode floor substitutions,
// soft hand-off traffic), and structural facts of the genome itself
// (topology shape, outage overlaps, resume-at-boundary probes). Counter
// magnitudes are bucketed into powers of two, AFL-style, so "this regime
// fired a lot" is a different feature from "this regime fired once".
//
// A genome earns a place in the corpus exactly when its run reaches at
// least one feature no earlier run reached — that set-cover dynamic is
// what walks the fuzzer into rare regime *combinations* that blind seed
// sampling only hits by luck.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/metrics.h"
#include "fuzz/genome.h"
#include "telemetry/metrics.h"

namespace pabr::fuzz {

/// The feature set of one run, as sorted unique strings (human-readable
/// on purpose: corpus metadata and --verbose logs print them directly).
struct Signature {
  std::vector<std::string> features;
};

/// Log2 magnitude bucket: 0, 1, 2, 4, 8, ... capped at 2^16. Exposed for
/// the unit tests.
std::uint64_t magnitude_bucket(std::uint64_t n);

/// Builds the feature set of a finished run. `status` comes from the
/// system's system_status(); `metrics` from telemetry_snapshot() (empty
/// when telemetry is compiled out — coverage degrades gracefully to the
/// SystemStatus features); `wired_blocks`/`wired_drops` from the linear
/// system's backbone counters (0 for hex runs).
Signature run_signature(const Genome& genome, const core::SystemStatus& status,
                        const telemetry::MetricsSnapshot& metrics,
                        std::uint64_t wired_blocks, std::uint64_t wired_drops);

/// The global feature map the guided loop accumulates into.
class CoverageMap {
 public:
  /// Merges a run's signature; returns how many features were new.
  std::size_t merge(const Signature& sig);
  bool contains(const std::string& feature) const {
    return seen_.count(feature) != 0;
  }
  std::size_t size() const { return seen_.size(); }

 private:
  std::unordered_set<std::string> seen_;
};

}  // namespace pabr::fuzz
