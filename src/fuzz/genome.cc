#include "fuzz/genome.h"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/random.h"
#include "traffic/workload.h"
#include "util/digest.h"

namespace pabr::fuzz {
namespace {

// Exploration bounds. Wider than the blind generator's draw ranges (so
// mutation can reach edges like zero arrivals and single-cell rings) but
// tight enough that one exec stays cheap: the guided loop budget assumes
// a run is tens of milliseconds, not seconds.
constexpr double kMinDuration = 20.0, kMaxDuration = 250.0;
constexpr double kMinCapacity = 5.0, kMaxCapacity = 120.0;
constexpr int kMinCells = 1, kMaxCells = 10;
constexpr int kMinHexSide = 2, kMaxHexSide = 4;
constexpr double kMaxArrivalRate = 1.5;
constexpr std::size_t kMaxOutages = 8;
constexpr std::size_t kMaxSnapPoints = 4;

double clampd(double v, double lo, double hi) {
  if (!(v >= lo)) return lo;  // also catches NaN
  return v > hi ? hi : v;
}

int clampi(int v, int lo, int hi) { return std::clamp(v, lo, hi); }

admission::PolicyKind policy_from_index(int i) {
  switch (((i % 5) + 5) % 5) {
    case 0: return admission::PolicyKind::kStatic;
    case 1: return admission::PolicyKind::kNsDca;
    case 2: return admission::PolicyKind::kAc1;
    case 3: return admission::PolicyKind::kAc2;
    default: return admission::PolicyKind::kAc3;
  }
}

admission::PolicyKind policy_from_name(const std::string& name) {
  for (int i = 0; i < 5; ++i) {
    const auto kind = policy_from_index(i);
    if (name == admission::policy_kind_name(kind)) return kind;
  }
  throw std::runtime_error("unknown admission policy: " + name);
}

std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

void Genome::canonicalize() {
  duration = clampd(duration, kMinDuration, kMaxDuration);
  capacity_bu = clampd(capacity_bu, kMinCapacity, kMaxCapacity);
  static_g = clampd(static_g, 0.5, capacity_bu * 0.5);
  phd_target = clampd(phd_target, 0.001, 0.2);
  t_start = clampd(t_start, 1.0, 5.0);  // TestWindowConfig: t_start >= t_min
  if (t_int != 0.0) t_int = clampd(t_int, 600.0, 7200.0);
  n_quad = clampi(n_quad, 5, 200);
  voice_ratio = clampd(voice_ratio, 0.0, 1.0);
  mean_lifetime_s = clampd(mean_lifetime_s, 5.0, 300.0);
  speed_min_kmh = clampd(speed_min_kmh, 1.0, 200.0);
  speed_max_kmh = clampd(speed_max_kmh, speed_min_kmh, speed_min_kmh + 100.0);
  arrival_rate_per_cell = clampd(arrival_rate_per_cell, 0.0, kMaxArrivalRate);

  cells = clampi(cells, kMinCells, kMaxCells);
  soft_capacity_margin = clampd(soft_capacity_margin, 0.0, 0.5);
  wired_access_bu = clampd(wired_access_bu, capacity_bu * 0.5,
                           capacity_bu * 2.0);
  wired_uplink_bu = clampd(wired_uplink_bu, capacity_bu,
                           capacity_bu * 2.0 * kMaxCells);
  soft_handoff_zone_km = clampd(soft_handoff_zone_km, 0.0, 0.5);
  known_route_fraction = clampd(known_route_fraction, 0.0, 1.0);

  rows = clampi(rows, kMinHexSide, kMaxHexSide);
  cols = clampi(cols, kMinHexSide, kMaxHexSide + 1);
  // The brick-wall torus embedding only closes with an even column count
  // (geom::HexTopology) — mirror random_scenario's fix-up.
  if (wrap && cols % 2 != 0) ++cols;

  message_loss = clampd(message_loss, 0.0, 0.9);
  message_delay = clampd(message_delay, 0.0, 0.9);
  if (link_mtbf_s != 0.0) link_mtbf_s = clampd(link_mtbf_s, 30.0, 2000.0);
  link_mttr_s = clampd(link_mttr_s, 1.0, 120.0);
  if (station_mtbf_s != 0.0)
    station_mtbf_s = clampd(station_mtbf_s, 30.0, 2000.0);
  station_mttr_s = clampd(station_mttr_s, 1.0, 120.0);
  max_retries = clampi(max_retries, 0, 6);
  backoff_base_s = clampd(backoff_base_s, 0.005, 0.2);
  backoff_max_s = clampd(backoff_max_s, backoff_base_s, backoff_base_s * 32.0);
  degraded_floor_bu = clampd(degraded_floor_bu, 0.0, 20.0);

  if (outages.size() > kMaxOutages) outages.resize(kMaxOutages);
  const int n = num_cells();
  for (OutageGene& o : outages) {
    o.a = clampi(o.a, 0, n - 1);
    o.b = clampi(o.b, 0, n - 1);
    // Windows may start past the horizon on purpose (the
    // wholly-outside-the-run edge case), just not unboundedly far.
    o.from = clampd(o.from, 0.0, duration * 2.0);
    o.until = clampd(o.until, o.from, o.from + 120.0);
  }

  for (double& f : snap_fractions) f = clampd(f, 0.0, 1.0);
  std::sort(snap_fractions.begin(), snap_fractions.end());
  if (snap_fractions.size() > kMaxSnapPoints)
    snap_fractions.resize(kMaxSnapPoints);
}

core::ScenarioSpec Genome::to_scenario() const {
  core::ScenarioSpec s;
  s.seed = sim_seed;
  s.hex = hex;
  s.duration = duration;

  fault::FaultConfig f;
  if (faults) {
    f.enabled = true;
    f.seed = fault_seed;
    f.message_loss = message_loss;
    f.message_delay = message_delay;
    f.link_mtbf_s = link_mtbf_s;
    f.link_mttr_s = link_mttr_s;
    f.station_mtbf_s = station_mtbf_s;
    f.station_mttr_s = station_mttr_s;
    f.max_retries = max_retries;
    f.backoff_base_s = backoff_base_s;
    f.backoff_max_s = backoff_max_s;
    f.degraded_floor_bu = degraded_floor_bu;
    for (const OutageGene& o : outages) {
      fault::ScriptedOutage so;
      so.kind = o.station ? fault::ScriptedOutage::Kind::kStation
                          : fault::ScriptedOutage::Kind::kLink;
      so.a = o.a;
      so.b = o.station ? geom::kNoCell : o.b;
      so.from = o.from;
      so.until = o.until;
      f.outages.push_back(so);
    }
  }

  hoef::EstimatorConfig hoef;
  if (t_int != 0.0) hoef.t_int = t_int;
  hoef.n_quad = n_quad;

  if (hex) {
    core::HexSystemConfig& g = s.grid;
    g.rows = rows;
    g.cols = cols;
    g.wrap = wrap;
    g.capacity_bu = capacity_bu;
    g.policy = policy;
    g.static_g = static_g;
    g.phd_target = phd_target;
    g.t_start = t_start;
    g.hoef = hoef;
    g.voice_ratio = voice_ratio;
    g.mean_lifetime_s = mean_lifetime_s;
    g.speed_min_kmh = speed_min_kmh;
    g.speed_max_kmh = speed_max_kmh;
    g.arrival_rate_per_cell = arrival_rate_per_cell;
    g.seed = sim_seed;
    g.fault = f;
    return s;
  }

  core::SystemConfig& c = s.linear;
  c.num_cells = cells;
  c.ring = ring;
  c.capacity_bu = capacity_bu;
  c.soft_capacity_margin = soft_capacity_margin;
  c.adaptive_qos = adaptive_qos;
  if (wired) {
    wired::BackboneConfig wb;
    wb.access_capacity_bu = wired_access_bu;
    wb.uplink_capacity_bu = wired_uplink_bu;
    c.wired = wb;
  }
  c.soft_handoff_zone_km = soft_handoff_zone_km;
  c.policy = policy;
  c.static_g = static_g;
  c.phd_target = phd_target;
  c.t_start = t_start;
  c.hoef = hoef;
  c.known_route_fraction = known_route_fraction;
  c.workload.voice_ratio = voice_ratio;
  c.workload.mean_lifetime_s = mean_lifetime_s;
  c.workload.speed_min_kmh = speed_min_kmh;
  c.workload.speed_max_kmh = speed_max_kmh;
  c.workload.bidirectional = bidirectional;
  c.workload.arrival_rate_per_cell = arrival_rate_per_cell;
  c.retry.enabled = retry;
  c.seed = sim_seed;
  c.fault = f;
  return s;
}

std::uint64_t Genome::digest() const {
  util::Fnv1a d;
  for (const char ch : serialize()) {
    d.add_u64(static_cast<unsigned char>(ch));
  }
  return d.value();
}

std::string Genome::summary() const {
  std::ostringstream os;
  os << "genome " << std::hex << digest() << std::dec;
  if (hex) {
    os << " hex " << rows << 'x' << cols << (wrap ? " torus" : " open");
  } else {
    os << " linear cells=" << cells << (ring ? " ring" : " open");
  }
  os << " policy=" << admission::policy_kind_name(policy)
     << " C=" << capacity_bu << " rate=" << arrival_rate_per_cell
     << " dur=" << duration << " seed=" << sim_seed;
  if (!hex) {
    if (adaptive_qos) os << " adaptive";
    if (wired) os << " wired";
    if (soft_capacity_margin > 0.0) os << " softcap";
    if (soft_handoff_zone_km > 0.0) os << " softho";
    if (known_route_fraction > 0.0) os << " gps";
    if (retry) os << " retry";
  }
  if (faults) os << " faults(" << outages.size() << " scripted)";
  if (!snap_fractions.empty()) os << " snaps=" << snap_fractions.size();
  return os.str();
}

void Genome::serialize(std::ostream& os) const {
  os << "pabrfuzz 1\n";
  os << "hex " << (hex ? 1 : 0) << '\n';
  os << "duration " << fmt(duration) << '\n';
  os << "sim_seed " << sim_seed << '\n';
  os << "capacity " << fmt(capacity_bu) << '\n';
  os << "policy " << admission::policy_kind_name(policy) << '\n';
  os << "static_g " << fmt(static_g) << '\n';
  os << "phd_target " << fmt(phd_target) << '\n';
  os << "t_start " << fmt(t_start) << '\n';
  os << "t_int " << fmt(t_int) << '\n';
  os << "n_quad " << n_quad << '\n';
  os << "voice_ratio " << fmt(voice_ratio) << '\n';
  os << "lifetime " << fmt(mean_lifetime_s) << '\n';
  os << "speed_min " << fmt(speed_min_kmh) << '\n';
  os << "speed_max " << fmt(speed_max_kmh) << '\n';
  os << "arrival_rate " << fmt(arrival_rate_per_cell) << '\n';
  os << "cells " << cells << '\n';
  os << "ring " << (ring ? 1 : 0) << '\n';
  os << "soft_capacity " << fmt(soft_capacity_margin) << '\n';
  os << "adaptive " << (adaptive_qos ? 1 : 0) << '\n';
  os << "wired " << (wired ? 1 : 0) << '\n';
  os << "wired_access " << fmt(wired_access_bu) << '\n';
  os << "wired_uplink " << fmt(wired_uplink_bu) << '\n';
  os << "soft_handoff_km " << fmt(soft_handoff_zone_km) << '\n';
  os << "known_routes " << fmt(known_route_fraction) << '\n';
  os << "bidirectional " << (bidirectional ? 1 : 0) << '\n';
  os << "retry " << (retry ? 1 : 0) << '\n';
  os << "rows " << rows << '\n';
  os << "cols " << cols << '\n';
  os << "wrap " << (wrap ? 1 : 0) << '\n';
  os << "faults " << (faults ? 1 : 0) << '\n';
  os << "fault_seed " << fault_seed << '\n';
  os << "message_loss " << fmt(message_loss) << '\n';
  os << "message_delay " << fmt(message_delay) << '\n';
  os << "link_mtbf " << fmt(link_mtbf_s) << '\n';
  os << "link_mttr " << fmt(link_mttr_s) << '\n';
  os << "station_mtbf " << fmt(station_mtbf_s) << '\n';
  os << "station_mttr " << fmt(station_mttr_s) << '\n';
  os << "max_retries " << max_retries << '\n';
  os << "backoff_base " << fmt(backoff_base_s) << '\n';
  os << "backoff_max " << fmt(backoff_max_s) << '\n';
  os << "degraded_floor " << fmt(degraded_floor_bu) << '\n';
  for (const OutageGene& o : outages) {
    os << "outage " << (o.station ? "station" : "link") << ' ' << o.a << ' '
       << o.b << ' ' << fmt(o.from) << ' ' << fmt(o.until) << '\n';
  }
  for (const double f : snap_fractions) {
    os << "snap " << fmt(f) << '\n';
  }
}

std::string Genome::serialize() const {
  std::ostringstream os;
  serialize(os);
  return os.str();
}

Genome Genome::parse(std::istream& is) {
  Genome g;
  g.outages.clear();
  g.snap_fractions.clear();
  std::string line;
  if (!std::getline(is, line) || line != "pabrfuzz 1") {
    throw std::runtime_error("not a pabrfuzz v1 genome: bad header line");
  }
  int lineno = 1;
  const auto fail = [&](const std::string& why) {
    throw std::runtime_error("genome line " + std::to_string(lineno) + ": " +
                             why + ": " + line);
  };
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    const auto rd = [&](double* out) {
      if (!(ls >> *out)) fail("expected a number");
    };
    const auto ri = [&](int* out) {
      if (!(ls >> *out)) fail("expected an integer");
    };
    const auto rb = [&](bool* out) {
      int v = 0;
      if (!(ls >> v)) fail("expected 0 or 1");
      *out = v != 0;
    };
    const auto ru = [&](std::uint64_t* out) {
      if (!(ls >> *out)) fail("expected an unsigned integer");
    };
    if (key == "hex") rb(&g.hex);
    else if (key == "duration") rd(&g.duration);
    else if (key == "sim_seed") ru(&g.sim_seed);
    else if (key == "capacity") rd(&g.capacity_bu);
    else if (key == "policy") {
      std::string name;
      if (!(ls >> name)) fail("expected a policy name");
      g.policy = policy_from_name(name);
    } else if (key == "static_g") rd(&g.static_g);
    else if (key == "phd_target") rd(&g.phd_target);
    else if (key == "t_start") rd(&g.t_start);
    else if (key == "t_int") rd(&g.t_int);
    else if (key == "n_quad") ri(&g.n_quad);
    else if (key == "voice_ratio") rd(&g.voice_ratio);
    else if (key == "lifetime") rd(&g.mean_lifetime_s);
    else if (key == "speed_min") rd(&g.speed_min_kmh);
    else if (key == "speed_max") rd(&g.speed_max_kmh);
    else if (key == "arrival_rate") rd(&g.arrival_rate_per_cell);
    else if (key == "cells") ri(&g.cells);
    else if (key == "ring") rb(&g.ring);
    else if (key == "soft_capacity") rd(&g.soft_capacity_margin);
    else if (key == "adaptive") rb(&g.adaptive_qos);
    else if (key == "wired") rb(&g.wired);
    else if (key == "wired_access") rd(&g.wired_access_bu);
    else if (key == "wired_uplink") rd(&g.wired_uplink_bu);
    else if (key == "soft_handoff_km") rd(&g.soft_handoff_zone_km);
    else if (key == "known_routes") rd(&g.known_route_fraction);
    else if (key == "bidirectional") rb(&g.bidirectional);
    else if (key == "retry") rb(&g.retry);
    else if (key == "rows") ri(&g.rows);
    else if (key == "cols") ri(&g.cols);
    else if (key == "wrap") rb(&g.wrap);
    else if (key == "faults") rb(&g.faults);
    else if (key == "fault_seed") ru(&g.fault_seed);
    else if (key == "message_loss") rd(&g.message_loss);
    else if (key == "message_delay") rd(&g.message_delay);
    else if (key == "link_mtbf") rd(&g.link_mtbf_s);
    else if (key == "link_mttr") rd(&g.link_mttr_s);
    else if (key == "station_mtbf") rd(&g.station_mtbf_s);
    else if (key == "station_mttr") rd(&g.station_mttr_s);
    else if (key == "max_retries") ri(&g.max_retries);
    else if (key == "backoff_base") rd(&g.backoff_base_s);
    else if (key == "backoff_max") rd(&g.backoff_max_s);
    else if (key == "degraded_floor") rd(&g.degraded_floor_bu);
    else if (key == "outage") {
      OutageGene o;
      std::string kind;
      if (!(ls >> kind)) fail("expected outage kind");
      if (kind == "station") o.station = true;
      else if (kind == "link") o.station = false;
      else fail("unknown outage kind");
      if (!(ls >> o.a >> o.b >> o.from >> o.until)) {
        fail("expected 'outage KIND a b from until'");
      }
      g.outages.push_back(o);
    } else if (key == "snap") {
      double f = 0.0;
      rd(&f);
      g.snap_fractions.push_back(f);
    } else {
      fail("unknown genome key '" + key + "'");
    }
  }
  g.canonicalize();
  return g;
}

Genome Genome::parse(const std::string& text) {
  std::istringstream is(text);
  return parse(is);
}

Genome random_genome(std::uint64_t seed, bool with_faults) {
  sim::Rng rng(sim::derive_seed(seed, "genome-generator"));
  Genome g;
  g.sim_seed = seed;
  g.duration = rng.uniform(60.0, 180.0);
  g.hex = rng.bernoulli(0.25);
  g.capacity_bu = static_cast<double>(rng.uniform_int(20, 60));
  g.policy = policy_from_index(rng.uniform_int(0, 9) < 6
                                   ? 4
                                   : rng.uniform_int(0, 3));
  g.static_g = rng.uniform(2.0, g.capacity_bu * 0.4);
  g.phd_target = rng.uniform(0.005, 0.05);
  g.t_start = rng.uniform(1.0, 2.0);
  g.t_int = rng.bernoulli(0.25) ? 3600.0 : 0.0;
  g.n_quad = rng.uniform_int(20, 100);
  g.voice_ratio = rng.uniform(0.3, 1.0);
  g.mean_lifetime_s = rng.uniform(40.0, 120.0);
  g.speed_min_kmh = rng.uniform(60.0, 100.0);
  g.speed_max_kmh = g.speed_min_kmh + rng.uniform(10.0, 60.0);
  const double load = rng.uniform(40.0, 150.0);
  g.arrival_rate_per_cell = traffic::arrival_rate_for_load(
      load, g.voice_ratio, g.mean_lifetime_s);

  g.cells = rng.uniform_int(3, 8);
  g.ring = rng.bernoulli(0.7);
  g.soft_capacity_margin =
      rng.bernoulli(0.3) ? rng.uniform(0.05, 0.2) : 0.0;
  g.adaptive_qos = rng.bernoulli(0.5);
  g.wired = rng.bernoulli(0.4);
  g.wired_access_bu = rng.uniform(g.capacity_bu * 0.8, g.capacity_bu * 1.5);
  g.wired_uplink_bu =
      rng.uniform(g.capacity_bu, g.capacity_bu * static_cast<double>(g.cells));
  g.soft_handoff_zone_km = rng.bernoulli(0.3) ? rng.uniform(0.05, 0.3) : 0.0;
  g.known_route_fraction = rng.bernoulli(0.3) ? rng.uniform01() : 0.0;
  g.bidirectional = rng.bernoulli(0.8);
  g.retry = rng.bernoulli(0.3);

  g.rows = rng.uniform_int(2, 4);
  g.cols = rng.uniform_int(2, 4);
  g.wrap = rng.bernoulli(0.5);

  if (with_faults) {
    g.faults = true;
    g.fault_seed = sim::derive_seed(seed, "genome-fault");
    g.message_loss = rng.bernoulli(0.7) ? rng.uniform(0.0, 0.3) : 0.0;
    g.message_delay = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.2) : 0.0;
    if (rng.bernoulli(0.6)) {
      g.link_mtbf_s = rng.uniform(60.0, 600.0);
      g.link_mttr_s = rng.uniform(5.0, 60.0);
    }
    if (rng.bernoulli(0.4)) {
      g.station_mtbf_s = rng.uniform(120.0, 1200.0);
      g.station_mttr_s = rng.uniform(5.0, 60.0);
    }
    g.max_retries = rng.uniform_int(0, 4);
    g.backoff_base_s = rng.uniform(0.01, 0.1);
    g.backoff_max_s = g.backoff_base_s * rng.uniform(1.0, 16.0);
    g.degraded_floor_bu = rng.uniform(0.0, 15.0);
    const int n_outages = rng.uniform_int(0, 2);
    for (int k = 0; k < n_outages; ++k) {
      OutageGene o;
      o.station = rng.bernoulli(0.5);
      o.a = rng.uniform_int(0, g.num_cells() - 1);
      o.b = rng.uniform_int(0, g.num_cells() - 1);
      o.from = rng.uniform(0.0, g.duration);
      o.until = o.from + rng.uniform(5.0, 60.0);
      g.outages.push_back(o);
    }
  }

  // One seed-derived I10 probe point, like the blind driver's default.
  g.snap_fractions.push_back(0.2 + 0.6 * rng.uniform01());
  g.canonicalize();
  return g;
}

}  // namespace pabr::fuzz
