// Scenario genome for the coverage-guided fuzzer (DESIGN.md §15).
//
// Where the blind differential fuzzer samples a bare RNG seed and expands
// it through core/random_scenario, the guided fuzzer works on an explicit,
// mutable representation of the scenario: every knob that shapes a run —
// topology, load mix, mobility, policy, feature toggles, fault script and
// the I10 snapshot/resume probe points — is a named field that mutators
// can tweak independently and the minimizer can shrink. A genome is
// serializable to a line-oriented text format (`.pabrfuzz`) so corpus
// entries and minimized reproducers are self-contained, diffable
// artifacts: parsing the file back and replaying it reproduces the exact
// trajectory (the simulation seed rides in the genome).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "admission/policy.h"
#include "core/random_scenario.h"
#include "fault/fault.h"

namespace pabr::fuzz {

/// One scripted outage window of the genome's fault script (mirrors
/// fault::ScriptedOutage, kept separate so the genome stays a plain
/// value type with its own serialization).
struct OutageGene {
  bool station = false;  ///< false = link outage
  int a = 0;
  int b = 0;  ///< second link endpoint (ignored for stations)
  double from = 0.0;
  double until = 0.0;
};

/// The full mutable scenario description. All fields are kept in
/// model-legal ranges by canonicalize(); mutators may write anything and
/// re-canonicalize afterwards.
struct Genome {
  // ---- Run shape ----------------------------------------------------------
  bool hex = false;
  double duration = 150.0;
  std::uint64_t sim_seed = 1;  ///< seeds every named RNG stream of the run

  // ---- Shared knobs -------------------------------------------------------
  double capacity_bu = 40.0;
  admission::PolicyKind policy = admission::PolicyKind::kAc3;
  double static_g = 10.0;
  double phd_target = 0.01;
  double t_start = 1.0;
  double t_int = 0.0;  ///< 0 = infinite T_int; finite disables probe caching
  int n_quad = 50;
  double voice_ratio = 0.7;
  double mean_lifetime_s = 80.0;
  double speed_min_kmh = 80.0;
  double speed_max_kmh = 120.0;
  double arrival_rate_per_cell = 0.5;  ///< 0 = a silent system (edge case)

  // ---- Linear-road fields (hex == false) ----------------------------------
  int cells = 5;
  bool ring = true;
  double soft_capacity_margin = 0.0;
  bool adaptive_qos = false;
  bool wired = false;
  double wired_access_bu = 60.0;
  double wired_uplink_bu = 400.0;
  double soft_handoff_zone_km = 0.0;
  double known_route_fraction = 0.0;
  bool bidirectional = true;
  bool retry = false;

  // ---- Hex-grid fields (hex == true) --------------------------------------
  int rows = 3;
  int cols = 4;
  bool wrap = true;

  // ---- Fault script -------------------------------------------------------
  bool faults = false;
  std::uint64_t fault_seed = 1;
  double message_loss = 0.0;
  double message_delay = 0.0;
  double link_mtbf_s = 0.0;  ///< 0 disables stochastic link faults
  double link_mttr_s = 30.0;
  double station_mtbf_s = 0.0;
  double station_mttr_s = 30.0;
  int max_retries = 3;
  double backoff_base_s = 0.05;
  double backoff_max_s = 0.5;
  double degraded_floor_bu = 10.0;
  std::vector<OutageGene> outages;

  // ---- I10 snapshot/resume probe points -----------------------------------
  /// Ascending fractions of the horizon at which the run is snapshotted,
  /// discarded and reloaded (audit::run_scenario_resume_digest). Empty =
  /// no resume probe.
  std::vector<double> snap_fractions;

  /// Number of radio cells in the active topology.
  int num_cells() const { return hex ? rows * cols : cells; }

  /// Clamps every field into the ranges the model accepts (and the fuzzer
  /// wants to explore), so any mutation or hand-edited corpus file yields
  /// a runnable scenario. Idempotent.
  void canonicalize();

  /// Expands into the ScenarioSpec the differential runners consume.
  /// Requires a canonical genome.
  core::ScenarioSpec to_scenario() const;

  /// Content digest over the serialized text — corpus filename and dedup
  /// key (identical genomes collide on purpose).
  std::uint64_t digest() const;

  /// Human-readable one-liner for progress / failure messages.
  std::string summary() const;

  // ---- Text round-trip (.pabrfuzz) ----------------------------------------
  void serialize(std::ostream& os) const;
  std::string serialize() const;
  /// Parses the serialize() format. Throws std::runtime_error naming the
  /// offending line on malformed input; the parsed genome is
  /// canonicalized before being returned.
  static Genome parse(std::istream& is);
  static Genome parse(const std::string& text);
};

/// Deterministic random genome for corpus bootstrap — the guided
/// counterpart of core/random_scenario (similar ranges, independent
/// implementation so both samplers keep their historical behavior).
Genome random_genome(std::uint64_t seed, bool with_faults);

}  // namespace pabr::fuzz
