#include "fuzz/minimize.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

namespace pabr::fuzz {
namespace {

/// Shared reduction state: the smallest failing genome so far plus the
/// predicate-call budget.
class Reducer {
 public:
  Reducer(const Genome& start, const FailurePredicate& pred, int max_evals,
          MinimizeStats* stats)
      : current_(start),
        current_text_(start.serialize()),
        pred_(pred),
        max_evals_(max_evals),
        stats_(stats) {}

  const Genome& current() const { return current_; }
  bool exhausted() const { return evals_ >= max_evals_; }

  /// Canonicalizes `candidate`, runs the predicate, and adopts the
  /// candidate if the violation survives. No-op (and no budget spent)
  /// when the candidate canonicalizes back to the current genome.
  bool try_accept(Genome candidate) {
    candidate.canonicalize();
    std::string text = candidate.serialize();
    if (text == current_text_) return false;
    if (exhausted()) return false;
    ++evals_;
    if (stats_ != nullptr) stats_->evaluations = evals_;
    if (!pred_(candidate)) return false;
    current_ = std::move(candidate);
    current_text_ = std::move(text);
    if (stats_ != nullptr) ++stats_->accepted;
    return true;
  }

  /// Like try_accept, but on rejection retries the same candidate under
  /// a few successor sim_seeds (deterministically: s0, s0+1, ...). A
  /// traffic-shape reduction resamples the whole arrival trajectory, so
  /// whether the violating event survives any single seed is a coin
  /// flip — the seed is part of the repro, so swapping it is fair game.
  bool try_accept_reseeded(const Genome& cand, int variants) {
    const std::uint64_t s0 = cand.sim_seed;
    for (int k = 0; k < variants && !exhausted(); ++k) {
      Genome c = cand;
      c.sim_seed = s0 + static_cast<std::uint64_t>(k);
      if (try_accept(std::move(c))) return true;
    }
    return false;
  }

 private:
  Genome current_;
  std::string current_text_;
  const FailurePredicate& pred_;
  int evals_ = 0;
  int max_evals_;
  MinimizeStats* stats_;
};

/// Classic ddmin over a list-valued field: removes chunks of halving
/// size while the violation survives.
template <typename T>
bool ddmin_list(Reducer& red, std::vector<T> Genome::* field) {
  bool any = false;
  std::size_t chunk = (red.current().*field).size();
  while (chunk >= 1) {
    bool removed = true;
    while (removed) {
      removed = false;
      const std::size_t size = (red.current().*field).size();
      for (std::size_t at = 0; at < size; at += chunk) {
        Genome cand = red.current();
        std::vector<T>& list = cand.*field;
        const std::size_t hi = std::min(at + chunk, list.size());
        list.erase(list.begin() + static_cast<std::ptrdiff_t>(at),
                   list.begin() + static_cast<std::ptrdiff_t>(hi));
        if (red.try_accept(std::move(cand))) {
          any = removed = true;
          break;  // indices shifted; rescan at this chunk size
        }
        if (red.exhausted()) return any;
      }
    }
    if (chunk == 1) break;
    chunk /= 2;
  }
  return any;
}

/// Bisects a scalar toward `floor`: first tries the floor outright, then
/// binary-searches the smallest still-failing value (a handful of steps
/// is plenty — the predicate is the expensive part).
template <typename Set>
bool shrink_scalar(Reducer& red, double hi, double floor, const Set& set) {
  if (hi <= floor) return false;
  {
    Genome cand = red.current();
    set(cand, floor);
    if (red.try_accept(std::move(cand))) return true;
  }
  double lo = floor;  // known-passing side
  bool any = false;
  for (int step = 0; step < 6 && !red.exhausted(); ++step) {
    const double mid = lo + (hi - lo) / 2.0;
    if (mid <= lo || mid >= hi) break;
    Genome cand = red.current();
    set(cand, mid);
    if (red.try_accept(std::move(cand))) {
      hi = mid;
      any = true;
    } else {
      lo = mid;
    }
  }
  return any;
}

template <typename Set>
bool shrink_int(Reducer& red, int hi, int floor, const Set& set) {
  if (hi <= floor) return false;
  {
    Genome cand = red.current();
    set(cand, floor);
    if (red.try_accept(std::move(cand))) return true;
  }
  int lo = floor;
  bool any = false;
  while (hi - lo > 1 && !red.exhausted()) {
    const int mid = lo + (hi - lo) / 2;
    Genome cand = red.current();
    set(cand, mid);
    if (red.try_accept(std::move(cand))) {
      hi = mid;
      any = true;
    } else {
      lo = mid;
    }
  }
  return any;
}

/// One sweep of wholesale simplifications: whole subsystems off, lists
/// cleared, booleans to their plain defaults.
bool simplify_pass(Reducer& red) {
  bool any = false;
  const auto drop = [&](auto&& edit) {
    Genome cand = red.current();
    edit(cand);
    if (red.try_accept(std::move(cand))) any = true;
  };
  drop([](Genome& g) {
    g.faults = false;
    g.outages.clear();
  });
  drop([](Genome& g) { g.outages.clear(); });
  drop([](Genome& g) {
    g.message_loss = 0.0;
    g.message_delay = 0.0;
  });
  drop([](Genome& g) {
    g.link_mtbf_s = 0.0;
    g.station_mtbf_s = 0.0;
  });
  drop([](Genome& g) { g.hex = false; });
  drop([](Genome& g) { g.adaptive_qos = false; });
  drop([](Genome& g) { g.wired = false; });
  drop([](Genome& g) { g.soft_capacity_margin = 0.0; });
  drop([](Genome& g) { g.soft_handoff_zone_km = 0.0; });
  drop([](Genome& g) { g.known_route_fraction = 0.0; });
  drop([](Genome& g) { g.retry = false; });
  drop([](Genome& g) { g.t_int = 0.0; });
  // Video-only first: at 4 BU per call a handful of connections already
  // saturates a small cell, so contention-class violations survive with
  // far fewer calls than the all-voice mix needs.
  drop([](Genome& g) { g.voice_ratio = 0.0; });
  drop([](Genome& g) { g.voice_ratio = 1.0; });
  drop([](Genome& g) { g.snap_fractions.clear(); });
  return any;
}

/// Fewer-but-longer connections: halving the arrival rate while doubling
/// lifetimes keeps the occupancy (rate x lifetime) that contention-class
/// violations need, with half the connection count. Runs after the
/// structural shrinks so thinning the traffic cannot block a topology
/// reduction; iterated across fixed-point rounds it drives the repro
/// toward a handful of calls.
bool thin_traffic_pass(Reducer& red) {
  static constexpr double kFactors[] = {0.4, 0.6, 0.8};
  bool any = false;
  for (const double f : kFactors) {
    if (red.exhausted()) break;
    Genome cand = red.current();
    cand.arrival_rate_per_cell *= f;
    cand.mean_lifetime_s = std::min(cand.mean_lifetime_s / f, 300.0);
    any |= red.try_accept_reseeded(cand, 4);
  }
  for (const double f : kFactors) {
    if (red.exhausted()) break;
    Genome cand = red.current();
    cand.arrival_rate_per_cell *= f;
    any |= red.try_accept_reseeded(cand, 4);
  }
  {
    // Video-only: at 4 BU per call a couple of connections already
    // saturate a small cell, so contention survives with far fewer calls.
    Genome cand = red.current();
    cand.voice_ratio = 0.0;
    any |= red.try_accept_reseeded(cand, 4);
  }
  {
    Genome cand = red.current();
    cand.duration *= 0.7;
    any |= red.try_accept_reseeded(cand, 4);
  }
  return any;
}

bool shrink_pass(Reducer& red) {
  bool any = false;
  any |= shrink_int(red, red.current().cells, 1,
                    [](Genome& g, int v) { g.cells = v; });
  if (red.current().hex) {
    any |= shrink_int(red, red.current().rows, 2,
                      [](Genome& g, int v) { g.rows = v; });
    any |= shrink_int(red, red.current().cols, 2,
                      [](Genome& g, int v) { g.cols = v; });
  }
  any |= shrink_scalar(red, red.current().duration, 20.0,
                       [](Genome& g, double v) { g.duration = v; });
  any |= shrink_scalar(red, red.current().arrival_rate_per_cell, 0.0,
                       [](Genome& g, double v) { g.arrival_rate_per_cell = v; });
  any |= shrink_scalar(red, red.current().capacity_bu, 5.0,
                       [](Genome& g, double v) { g.capacity_bu = v; });
  any |= shrink_scalar(red, red.current().mean_lifetime_s, 10.0,
                       [](Genome& g, double v) { g.mean_lifetime_s = v; });
  any |= shrink_int(red, red.current().n_quad, 5,
                    [](Genome& g, int v) { g.n_quad = v; });
  any |= shrink_int(red, red.current().max_retries, 0,
                    [](Genome& g, int v) { g.max_retries = v; });
  return any;
}

}  // namespace

Genome minimize(const Genome& failing, const FailurePredicate& still_fails,
                int max_evals, MinimizeStats* stats) {
  Genome start = failing;
  start.canonicalize();
  Reducer red(start, still_fails, max_evals, stats);
  {
    // Long-shot minimal-traffic template before the incremental passes:
    // a sparse video-only trickle of near-permanent calls reproduces
    // contention-class violations with a handful of connections, and one
    // accepted jump here replaces dozens of single-knob reductions.
    Genome cand = red.current();
    cand.arrival_rate_per_cell = std::min(cand.arrival_rate_per_cell, 0.1);
    cand.mean_lifetime_s = 300.0;
    cand.voice_ratio = 0.0;
    red.try_accept_reseeded(cand, 8);
  }
  bool progress = true;
  while (progress && !red.exhausted()) {
    progress = false;
    progress |= simplify_pass(red);
    progress |= ddmin_list(red, &Genome::outages);
    progress |= ddmin_list(red, &Genome::snap_fractions);
    progress |= shrink_pass(red);
    progress |= thin_traffic_pass(red);
  }
  return red.current();
}

}  // namespace pabr::fuzz
