// Delta-debugging repro minimization (DESIGN.md §15).
//
// Given a genome whose run violates an oracle and a predicate that
// re-checks "does it still violate?", shrinks the genome to a local
// minimum: feature toggles dropped, fault scripts and checkpoint lists
// ddmin-reduced, and every size-like scalar (duration, cells, arrival
// rate, capacity, ...) bisected toward its floor — each reduction kept
// only if the violation survives. The procedure is deterministic (no
// RNG anywhere), so the same failing genome always minimizes to the
// same reproducer.
#pragma once

#include <functional>

#include "fuzz/genome.h"

namespace pabr::fuzz {

/// Re-runs the candidate and reports whether it still violates the SAME
/// oracle (callers typically match the OracleResult stage, so the
/// minimizer cannot wander onto an unrelated failure).
using FailurePredicate = std::function<bool(const Genome&)>;

struct MinimizeStats {
  int evaluations = 0;  ///< predicate calls spent
  int accepted = 0;     ///< reductions that kept the violation
};

/// Shrinks `failing` (which must satisfy the predicate) to a 1-minimal
/// reproducer under at most `max_evals` predicate calls. Returns the
/// smallest still-failing genome found.
Genome minimize(const Genome& failing, const FailurePredicate& still_fails,
                int max_evals = 500, MinimizeStats* stats = nullptr);

}  // namespace pabr::fuzz
