#include "fuzz/mutate.h"

#include <algorithm>

namespace pabr::fuzz {
namespace {

/// Multiplies a value by a factor in [0.5, 2.0) — the workhorse numeric
/// perturbation (relative, so it works across magnitudes).
double scale(double v, sim::Rng& rng) {
  return v * rng.uniform(0.5, 2.0);
}

admission::PolicyKind random_policy(sim::Rng& rng) {
  switch (rng.uniform_int(0, 4)) {
    case 0: return admission::PolicyKind::kStatic;
    case 1: return admission::PolicyKind::kNsDca;
    case 2: return admission::PolicyKind::kAc1;
    case 3: return admission::PolicyKind::kAc2;
    default: return admission::PolicyKind::kAc3;
  }
}

}  // namespace

int mutation_operator_count() { return 24; }

Genome apply_mutation(const Genome& parent, int op, sim::Rng& rng) {
  Genome g = parent;
  switch (op) {
    case 0:  // arrival-rate tweak, occasionally all the way to silence
      g.arrival_rate_per_cell =
          rng.bernoulli(0.1) ? 0.0 : scale(std::max(0.05, g.arrival_rate_per_cell), rng);
      break;
    case 1:
      g.speed_min_kmh = scale(g.speed_min_kmh, rng);
      g.speed_max_kmh = g.speed_min_kmh + rng.uniform(0.0, 80.0);
      break;
    case 2:
      g.mean_lifetime_s = scale(g.mean_lifetime_s, rng);
      break;
    case 3:
      g.duration = scale(g.duration, rng);
      break;
    case 4:
      g.capacity_bu = scale(g.capacity_bu, rng);
      break;
    case 5:
      g.policy = random_policy(rng);
      break;
    case 6:
      g.voice_ratio = rng.uniform01();
      break;
    case 7:  // topology resize (also reaches the 1-cell edge)
      if (g.hex) {
        (rng.bernoulli(0.5) ? g.rows : g.cols) += rng.bernoulli(0.5) ? 1 : -1;
      } else {
        g.cells += rng.bernoulli(0.5) ? 1 : -1;
      }
      break;
    case 8:
      if (g.hex) g.wrap = !g.wrap;
      else g.ring = !g.ring;
      break;
    case 9:
      g.adaptive_qos = !g.adaptive_qos;
      break;
    case 10:
      g.wired = !g.wired;
      if (g.wired && rng.bernoulli(0.5)) {
        g.wired_access_bu = rng.uniform(g.capacity_bu * 0.5, g.capacity_bu * 2.0);
        g.wired_uplink_bu = rng.uniform(g.capacity_bu, g.capacity_bu * 8.0);
      }
      break;
    case 11:
      g.soft_capacity_margin =
          rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.02, 0.3);
      break;
    case 12:
      g.soft_handoff_zone_km =
          rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.02, 0.4);
      break;
    case 13:
      g.known_route_fraction = rng.bernoulli(0.3) ? 0.0 : rng.uniform01();
      break;
    case 14:
      g.retry = !g.retry;
      break;
    case 15:
      g.t_int = g.t_int == 0.0 ? rng.uniform(600.0, 7200.0) : 0.0;
      break;
    case 16:
      g.n_quad = rng.uniform_int(5, 150);
      break;
    case 17:  // fault master toggle
      g.faults = !g.faults;
      if (g.faults && rng.bernoulli(0.5)) g.fault_seed = rng.engine()();
      break;
    case 18:  // fault process intensity tweaks
      g.message_loss = rng.bernoulli(0.3) ? 0.0 : rng.uniform(0.0, 0.4);
      g.message_delay = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 0.25);
      g.link_mtbf_s = rng.bernoulli(0.4) ? 0.0 : rng.uniform(60.0, 900.0);
      g.station_mtbf_s = rng.bernoulli(0.6) ? 0.0 : rng.uniform(120.0, 1500.0);
      break;
    case 19: {  // splice / drop / shift a scripted outage window
      const int move = rng.uniform_int(0, 2);
      if (move == 0 || g.outages.empty()) {
        OutageGene o;
        o.station = rng.bernoulli(0.5);
        o.a = rng.uniform_int(0, std::max(0, g.num_cells() - 1));
        o.b = rng.uniform_int(0, std::max(0, g.num_cells() - 1));
        // Deliberately allow windows past the horizon (must be inert).
        o.from = rng.uniform(0.0, g.duration * 1.5);
        o.until = o.from + rng.uniform(2.0, 60.0);
        g.outages.push_back(o);
        g.faults = true;
      } else if (move == 1) {
        g.outages.erase(g.outages.begin() +
                        rng.uniform_int(0, static_cast<int>(g.outages.size()) - 1));
      } else {
        OutageGene& o = g.outages[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(g.outages.size()) - 1))];
        o.from = std::max(0.0, o.from + rng.uniform(-30.0, 30.0));
        o.until = o.from + rng.uniform(2.0, 60.0);
      }
      break;
    }
    case 20: {  // move / add / drop an I10 checkpoint fraction
      const int move = rng.uniform_int(0, 2);
      if (move == 0 || g.snap_fractions.empty()) {
        // Bias toward the boundaries — resume-at-t=0 / end-of-run probes.
        const double f = rng.bernoulli(0.25)
                             ? (rng.bernoulli(0.5) ? 0.0 : 1.0)
                             : rng.uniform01();
        g.snap_fractions.push_back(f);
      } else if (move == 1) {
        g.snap_fractions.erase(
            g.snap_fractions.begin() +
            rng.uniform_int(0, static_cast<int>(g.snap_fractions.size()) - 1));
      } else {
        g.snap_fractions[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(g.snap_fractions.size()) - 1))] =
            rng.uniform01();
      }
      break;
    }
    case 21:  // fresh traffic trajectory under the same shape
      g.sim_seed = rng.engine()();
      break;
    case 22:
      g.static_g = rng.uniform(0.5, g.capacity_bu * 0.5);
      g.phd_target = rng.uniform(0.002, 0.1);
      break;
    case 23:  // dimensionality flip: linear <-> hex
      g.hex = !g.hex;
      break;
    default:
      break;
  }
  g.canonicalize();
  return g;
}

Genome mutate(const Genome& parent, sim::Rng& rng) {
  Genome g = parent;
  const int n = rng.uniform_int(1, 3);
  for (int i = 0; i < n; ++i) {
    g = apply_mutation(g, rng.uniform_int(0, mutation_operator_count() - 1),
                       rng);
  }
  return g;
}

Genome crossover(const Genome& a, const Genome& b, sim::Rng& rng) {
  Genome g = a;
  const auto pick = [&](auto& dst, const auto& from_b) {
    if (rng.bernoulli(0.5)) dst = from_b;
  };
  pick(g.hex, b.hex);
  pick(g.duration, b.duration);
  pick(g.sim_seed, b.sim_seed);
  pick(g.capacity_bu, b.capacity_bu);
  pick(g.policy, b.policy);
  pick(g.static_g, b.static_g);
  pick(g.phd_target, b.phd_target);
  pick(g.t_int, b.t_int);
  pick(g.n_quad, b.n_quad);
  pick(g.voice_ratio, b.voice_ratio);
  pick(g.mean_lifetime_s, b.mean_lifetime_s);
  pick(g.speed_min_kmh, b.speed_min_kmh);
  pick(g.speed_max_kmh, b.speed_max_kmh);
  pick(g.arrival_rate_per_cell, b.arrival_rate_per_cell);
  pick(g.cells, b.cells);
  pick(g.ring, b.ring);
  pick(g.soft_capacity_margin, b.soft_capacity_margin);
  pick(g.adaptive_qos, b.adaptive_qos);
  pick(g.wired, b.wired);
  pick(g.wired_access_bu, b.wired_access_bu);
  pick(g.wired_uplink_bu, b.wired_uplink_bu);
  pick(g.soft_handoff_zone_km, b.soft_handoff_zone_km);
  pick(g.known_route_fraction, b.known_route_fraction);
  pick(g.bidirectional, b.bidirectional);
  pick(g.retry, b.retry);
  pick(g.rows, b.rows);
  pick(g.cols, b.cols);
  pick(g.wrap, b.wrap);
  pick(g.faults, b.faults);
  pick(g.fault_seed, b.fault_seed);
  pick(g.message_loss, b.message_loss);
  pick(g.message_delay, b.message_delay);
  pick(g.link_mtbf_s, b.link_mtbf_s);
  pick(g.link_mttr_s, b.link_mttr_s);
  pick(g.station_mtbf_s, b.station_mtbf_s);
  pick(g.station_mttr_s, b.station_mttr_s);
  pick(g.max_retries, b.max_retries);
  pick(g.backoff_base_s, b.backoff_base_s);
  pick(g.backoff_max_s, b.backoff_max_s);
  pick(g.degraded_floor_bu, b.degraded_floor_bu);
  pick(g.outages, b.outages);
  pick(g.snap_fractions, b.snap_fractions);
  g.canonicalize();
  return g;
}

}  // namespace pabr::fuzz
