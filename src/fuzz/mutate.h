// Structure-aware mutation and crossover over scenario genomes
// (DESIGN.md §15). Every operator is deterministic given the Rng stream
// handed in, and every result is re-canonicalized, so an arbitrary
// mutation chain always yields a runnable scenario. The catalogue is
// field-aware rather than byte-level: arrival-rate scaling, speed and
// lifetime perturbation, policy/feature toggling, fault-window splicing
// and checkpoint-fraction moves each touch one semantic knob — which is
// what lets the coverage loop compose rare regime conjunctions one
// feature at a time.
#pragma once

#include "fuzz/genome.h"
#include "sim/random.h"

namespace pabr::fuzz {

/// Applies 1-3 randomly chosen catalogue mutations and canonicalizes.
Genome mutate(const Genome& parent, sim::Rng& rng);

/// Field-wise uniform crossover of two parents (lists — outages, snap
/// fractions — are inherited whole from one side), canonicalized.
Genome crossover(const Genome& a, const Genome& b, sim::Rng& rng);

/// Number of distinct mutation operators (exposed for tests: the sweep
/// test applies each operator index explicitly).
int mutation_operator_count();

/// Applies mutation operator `op` (0 <= op < mutation_operator_count()).
/// Used by mutate() and directly by the exhaustive operator test.
Genome apply_mutation(const Genome& parent, int op, sim::Rng& rng);

}  // namespace pabr::fuzz
