#include "fuzz/runner.h"

#include <cstdio>
#include <exception>

#include "audit/differential.h"
#include "core/hex_system.h"
#include "core/system.h"

namespace pabr::fuzz {
namespace {

/// Everything the coverage signature needs from the primary run.
struct Harvest {
  std::uint64_t digest = 0;
  core::SystemStatus status;
  telemetry::MetricsSnapshot metrics;
  std::uint64_t wired_blocks = 0;
  std::uint64_t wired_drops = 0;
};

Harvest run_primary(const core::ScenarioSpec& spec) {
  Harvest h;
  if (spec.hex) {
    core::HexCellularSystem sys(spec.grid);
    sys.run_for(spec.duration);
    sys.audit_invariants();
    h.digest = audit::trajectory_digest(sys);
    h.status = sys.system_status();
    h.metrics = sys.telemetry_snapshot();
  } else {
    core::CellularSystem sys(spec.linear);
    sys.run_for(spec.duration);
    sys.audit_invariants();
    h.digest = audit::trajectory_digest(sys);
    h.status = sys.system_status();
    h.metrics = sys.telemetry_snapshot();
    h.wired_blocks = sys.wired_blocks();
    h.wired_drops = sys.wired_drops();
  }
  return h;
}

std::string digest_pair(const char* what, std::uint64_t a, std::uint64_t b) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s: %016llx != %016llx", what,
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  return buf;
}

}  // namespace

bool injected_bug_fires(const Genome& g, const core::SystemStatus& status) {
  return !g.hex && g.ring && g.adaptive_qos && g.retry && g.wired &&
         g.known_route_fraction > 0.0 && g.soft_handoff_zone_km > 0.0 &&
         status.soft_fallbacks > 0;
}

OracleResult run_oracles(const Genome& g, int audit_every,
                         const BugConfig& bug) {
  OracleResult r;
  core::ScenarioSpec spec = g.to_scenario();
  // Arm the per-event audit cadence and (trajectory-transparent)
  // telemetry on whichever config is live — the counters feed coverage.
  const auto arm = [&](auto& cfg) {
    cfg.incremental_reservation = true;
    cfg.audit_every = audit_every;
    cfg.telemetry.enabled = true;
    cfg.telemetry.trace = false;
    cfg.telemetry.time_admissions = false;
  };
  if (spec.hex) {
    arm(spec.grid);
  } else {
    arm(spec.linear);
  }

  Harvest h;
  try {
    h = run_primary(spec);
  } catch (const std::exception& e) {
    r.ok = false;
    r.stage = "run";
    r.violation = e.what();
    return r;
  }
  r.incremental = h.digest;
  r.requests = h.status.requests;
  r.signature =
      run_signature(g, h.status, h.metrics, h.wired_blocks, h.wired_drops);

  try {
    r.scratch =
        audit::run_scenario_digest(spec, /*incremental=*/false, audit_every);
  } catch (const std::exception& e) {
    r.ok = false;
    r.stage = "run";
    r.violation = std::string("scratch run: ") + e.what();
    return r;
  }
  if (r.scratch != r.incremental) {
    r.ok = false;
    r.stage = "scratch-diff";
    r.violation =
        digest_pair("incremental != scratch", r.incremental, r.scratch);
    return r;
  }

  if (g.snap_fractions.empty()) {
    r.resumed = r.incremental;
    return r;
  }
  try {
    r.resumed = audit::run_scenario_resume_digest(
        spec, /*incremental=*/true, audit_every, g.snap_fractions);
  } catch (const std::exception& e) {
    r.ok = false;
    r.stage = "run";
    r.violation = std::string("resume run: ") + e.what();
    return r;
  }
  if (bug.resumed_off_by_one && injected_bug_fires(g, h.status)) {
    r.resumed ^= 1;
  }
  if (r.resumed != r.incremental) {
    r.ok = false;
    r.stage = "resume-diff";
    r.violation = digest_pair("resumed != uninterrupted (I10)", r.resumed,
                              r.incremental);
    return r;
  }
  return r;
}

}  // namespace pabr::fuzz
