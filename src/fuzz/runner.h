// Oracle runner for the guided fuzzer (DESIGN.md §15): executes one
// genome under every differential oracle the repo maintains and harvests
// the coverage signature from the run's end-of-run observables.
//
// Oracles, in order:
//   1. the run itself completes with audit_invariants() clean (I1-I9 and
//      every PABR_CHECK rail) — a throw anywhere is a violation;
//   2. incremental vs from-scratch reservation digests agree;
//   3. the chained snapshot/discard/reload run at the genome's
//      snap_fractions digests equal to the uninterrupted run (I10).
// Thread-count equivalence (1 vs N) is the driver's job — it is a
// property of the harness, not of one run.
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/coverage.h"
#include "fuzz/genome.h"

namespace pabr::fuzz {

/// Debug-only planted defect for the mutation-testing self-check
/// (scripts/guided_fuzz_smoke.sh, --inject-bug). When armed, the resumed
/// trajectory digest is XOR-ed with 1 — an off-by-one in the lowest
/// bit — iff the run lands in the rare regime conjunction implemented by
/// injected_bug_fires(). Never enabled outside the self-check; the
/// default-constructed config is inert.
struct BugConfig {
  bool resumed_off_by_one = false;
};

/// True when the planted off-by-one perturbs this run: a linear ring
/// with adaptive QoS, §5.3 retries, a wired backbone and a soft
/// hand-off zone all enabled at once, under load that actually forced
/// at least one soft-handoff fallback. Exposed so tests can pin the
/// conjunction the self-check is calibrated against.
bool injected_bug_fires(const Genome& g, const core::SystemStatus& status);

/// Outcome of one genome execution under all oracles.
struct OracleResult {
  bool ok = true;
  /// Failing oracle stage when !ok: "run" (exception / invariant audit),
  /// "scratch-diff" (incremental vs scratch), "resume-diff" (I10).
  std::string stage;
  std::string violation;  ///< human-readable description when !ok
  std::uint64_t incremental = 0;
  std::uint64_t scratch = 0;
  std::uint64_t resumed = 0;
  /// Connection requests the run generated (minimizer's size measure).
  std::uint64_t requests = 0;
  /// Coverage features of the primary (incremental) run. Populated even
  /// for "scratch-diff"/"resume-diff" failures; empty for "run" failures.
  Signature signature;
};

/// Runs `g` under every oracle. `audit_every` is threaded into the
/// per-event invariant sweep cadence (0 disables; needs PABR_AUDIT to do
/// anything). Never throws: model exceptions become "run" violations.
OracleResult run_oracles(const Genome& g, int audit_every,
                         const BugConfig& bug = {});

}  // namespace pabr::fuzz
