#include "geom/hex_topology.h"

#include <sstream>

#include "util/check.h"

namespace pabr::geom {
namespace {

// Odd-q vertical offset deltas (flat-topped hexes, odd columns shifted
// down), indexed by Direction {N, S, NE, SE, NW, SW}. Even and odd
// columns use different (drow, dcol) for the diagonal directions.
constexpr std::array<std::pair<int, int>, 6> kEvenColDelta = {{
    {-1, 0},   // N
    {+1, 0},   // S
    {-1, +1},  // NE
    {0, +1},   // SE
    {-1, -1},  // NW
    {0, -1},   // SW
}};
constexpr std::array<std::pair<int, int>, 6> kOddColDelta = {{
    {-1, 0},  // N
    {+1, 0},  // S
    {0, +1},  // NE
    {+1, +1}, // SE
    {0, -1},  // NW
    {+1, -1}, // SW
}};

}  // namespace

HexTopology::HexTopology(int rows, int cols, bool wrap)
    : rows_(rows), cols_(cols), wrap_(wrap) {
  PABR_CHECK(rows >= 2 && cols >= 2, "HexTopology: need at least 2x2");
  // Wrapping an odd number of columns would misalign the hex offsets.
  PABR_CHECK(!wrap || cols % 2 == 0, "HexTopology: torus needs even cols");
  const auto n = static_cast<std::size_t>(num_cells());
  neighbors_.resize(n);
  by_direction_.resize(n);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      const auto id = static_cast<std::size_t>(cell_of(r, c));
      const auto& deltas = (c % 2 == 0) ? kEvenColDelta : kOddColDelta;
      for (int d = 0; d < kNumDirections; ++d) {
        auto [dr, dc] = deltas[static_cast<std::size_t>(d)];
        int nr = r + dr;
        int nc = c + dc;
        if (wrap_) {
          nr = (nr + rows_) % rows_;
          nc = (nc + cols_) % cols_;
        } else if (nr < 0 || nr >= rows_ || nc < 0 || nc >= cols_) {
          by_direction_[id][static_cast<std::size_t>(d)] = kNoCell;
          continue;
        }
        const CellId neighbor = cell_of(nr, nc);
        by_direction_[id][static_cast<std::size_t>(d)] = neighbor;
        neighbors_[id].push_back(neighbor);
      }
    }
  }
}

const std::vector<CellId>& HexTopology::neighbors(CellId cell) const {
  check_cell(cell);
  return neighbors_[static_cast<std::size_t>(cell)];
}

std::string HexTopology::describe() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " hex grid"
     << (wrap_ ? " (torus)" : " (bounded)");
  return os.str();
}

CellId HexTopology::cell_of(int row, int col) const {
  PABR_CHECK(row >= 0 && row < rows_ && col >= 0 && col < cols_,
             "cell_of: out of grid");
  return row * cols_ + col;
}

int HexTopology::row_of(CellId cell) const {
  check_cell(cell);
  return cell / cols_;
}

int HexTopology::col_of(CellId cell) const {
  check_cell(cell);
  return cell % cols_;
}

HexTopology::Direction HexTopology::opposite(Direction d) {
  switch (d) {
    case Direction::kN:
      return Direction::kS;
    case Direction::kS:
      return Direction::kN;
    case Direction::kNE:
      return Direction::kSW;
    case Direction::kSE:
      return Direction::kNW;
    case Direction::kNW:
      return Direction::kSE;
    case Direction::kSW:
      return Direction::kNE;
  }
  PABR_CHECK(false, "opposite: bad direction");
}

CellId HexTopology::neighbor_in(CellId cell, Direction d) const {
  check_cell(cell);
  return by_direction_[static_cast<std::size_t>(cell)]
                      [static_cast<std::size_t>(d)];
}

std::optional<HexTopology::Direction> HexTopology::direction_between(
    CellId from, CellId to) const {
  check_cell(from);
  check_cell(to);
  for (int d = 0; d < kNumDirections; ++d) {
    if (by_direction_[static_cast<std::size_t>(from)]
                     [static_cast<std::size_t>(d)] == to) {
      return static_cast<Direction>(d);
    }
  }
  return std::nullopt;
}

}  // namespace pabr::geom
