// 2-D hexagonal cell layout (paper Fig. 2(b); evaluation of 2-D systems is
// the paper's stated future work — provided here as the library's
// extension surface and exercised by the campus_2d example).
//
// Cells are hexagons arranged in an axial grid of `rows x cols` using
// odd-q offset coordinates; each interior cell has 6 neighbours, exactly
// the 1..6 adjacent-cell indexing of Fig. 2(b). The grid can optionally
// wrap in both axes (torus) to eliminate border effects like the paper's
// 1-D ring.
#pragma once

#include <array>

#include "geom/topology.h"

namespace pabr::geom {

class HexTopology final : public Topology {
 public:
  HexTopology(int rows, int cols, bool wrap);

  int num_cells() const override { return rows_ * cols_; }
  const std::vector<CellId>& neighbors(CellId cell) const override;
  std::string describe() const override;

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  bool wraps() const { return wrap_; }

  CellId cell_of(int row, int col) const;
  int row_of(CellId cell) const;
  int col_of(CellId cell) const;

  /// Hex directions in a fixed order; opposite(d) = the reverse direction.
  enum class Direction { kN = 0, kS, kNE, kSE, kNW, kSW };
  static constexpr int kNumDirections = 6;
  static Direction opposite(Direction d);

  /// Neighbour of `cell` in direction `d`; kNoCell at a non-wrapping
  /// border.
  CellId neighbor_in(CellId cell, Direction d) const;

  /// Direction such that neighbor_in(from, d) == to; nullopt when the
  /// cells are not adjacent.
  std::optional<Direction> direction_between(CellId from, CellId to) const;

 private:
  int rows_;
  int cols_;
  bool wrap_;
  std::vector<std::vector<CellId>> neighbors_;       // compact (existing only)
  std::vector<std::array<CellId, 6>> by_direction_;  // kNoCell when absent
};

}  // namespace pabr::geom
