#include "geom/linear_topology.h"

#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/mathx.h"

namespace pabr::geom {

LinearTopology::LinearTopology(int n, double cell_diameter_km, bool wrap)
    : n_(n), diameter_(cell_diameter_km), wrap_(wrap) {
  PABR_CHECK(n >= 1, "LinearTopology: need at least one cell");
  PABR_CHECK(cell_diameter_km > 0.0, "LinearTopology: non-positive diameter");
  neighbors_.resize(static_cast<std::size_t>(n));
  for (CellId c = 0; c < n; ++c) {
    auto& ns = neighbors_[static_cast<std::size_t>(c)];
    if (wrap_ && n > 1) {
      ns.push_back((c + n - 1) % n);
      ns.push_back((c + 1) % n);
    } else if (!wrap_) {
      if (c > 0) ns.push_back(c - 1);
      if (c < n - 1) ns.push_back(c + 1);
    }
  }
}

const std::vector<CellId>& LinearTopology::neighbors(CellId cell) const {
  check_cell(cell);
  return neighbors_[static_cast<std::size_t>(cell)];
}

std::string LinearTopology::describe() const {
  std::ostringstream os;
  os << n_ << "-cell linear road (" << diameter_ << " km cells, "
     << (wrap_ ? "ring" : "open") << ")";
  return os.str();
}

CellId LinearTopology::cell_at(double x_km) const {
  if (wrap_) x_km = mathx::positive_fmod(x_km, road_length_km());
  // Forgive only float round-off: positions within kCellAtEpsilonKm of a
  // road end clamp to the boundary cell; anything further out is a caller
  // bug (wrong topology, unclamped motion) and must fail loudly rather
  // than be silently folded into an end cell.
  if (x_km < 0.0 && x_km >= -kCellAtEpsilonKm) x_km = 0.0;
  PABR_CHECK(x_km >= 0.0 && x_km < road_length_km(),
             "cell_at: position outside open road");
  auto c = static_cast<CellId>(std::floor(x_km / diameter_));
  if (c >= n_) {
    PABR_CHECK(x_km >= road_length_km() - kCellAtEpsilonKm,
               "cell_at: interior position mapped past the last cell");
    c = n_ - 1;  // guard the x == length-epsilon float edge
  }
  return c;
}

std::optional<double> LinearTopology::canonical_position(double x_km) const {
  if (wrap_) return mathx::positive_fmod(x_km, road_length_km());
  if (x_km < 0.0 || x_km >= road_length_km()) return std::nullopt;
  return x_km;
}

LinearTopology::Boundary LinearTopology::next_boundary(double x_km,
                                                       int direction) const {
  PABR_CHECK(direction == 1 || direction == -1,
             "next_boundary: direction must be +/-1");
  const auto pos = canonical_position(x_km);
  PABR_CHECK(pos.has_value(), "next_boundary: position outside road");
  const double x = *pos;

  // Resolve the cell direction-sensitively: a mobile sitting exactly on a
  // boundary and moving backwards belongs to the lower cell.
  CellId cell = cell_at(x);
  double boundary;
  if (direction == 1) {
    boundary = diameter_ * static_cast<double>(cell + 1);
    if (boundary <= x) {  // x exactly on the upper boundary
      ++cell;
      boundary += diameter_;
    }
  } else {
    boundary = diameter_ * static_cast<double>(cell);
    if (boundary >= x) {  // x exactly on the lower boundary
      --cell;
      boundary -= diameter_;
    }
  }

  CellId next;
  CellId current;
  if (wrap_) {
    current = ((cell % n_) + n_) % n_;
    next = ((current + direction) % n_ + n_) % n_;
  } else {
    PABR_CHECK(cell >= 0 && cell < n_,
               "next_boundary: position sits at the road edge moving out");
    current = cell;
    const CellId candidate = cell + direction;
    next = (candidate < 0 || candidate >= n_) ? kNoCell : candidate;
  }
  return Boundary{boundary, current, next};
}

}  // namespace pabr::geom
