// 1-D road topology (paper Fig. 2(a) and §5.1 assumption A1):
// `n` cells of equal diameter laid along a straight road. With
// `wrap = true` the two border cells are joined into a ring — the paper
// connects cells <1> and <10> "so that the whole cellular system forms a
// ring architecture" to avoid border effects; Table 3 uses the open road.
//
// The topology also owns the road geometry: continuous positions in km,
// mapping positions to cells and distances to the next boundary.
#pragma once

#include "geom/topology.h"

namespace pabr::geom {

/// Round-off forgiveness band for cell_at(): positions within this of a
/// road end clamp to the boundary cell; anything further outside throws.
inline constexpr double kCellAtEpsilonKm = 1e-9;

class LinearTopology final : public Topology {
 public:
  /// `n` cells, each `cell_diameter_km` wide. Road spans
  /// [0, n * cell_diameter_km).
  LinearTopology(int n, double cell_diameter_km, bool wrap);

  int num_cells() const override { return n_; }
  const std::vector<CellId>& neighbors(CellId cell) const override;
  std::string describe() const override;

  bool wraps() const { return wrap_; }
  double cell_diameter_km() const { return diameter_; }
  double road_length_km() const { return diameter_ * n_; }

  /// Cell containing position x (km). On a ring, x is first wrapped into
  /// the road span; on an open road x must lie inside it.
  CellId cell_at(double x_km) const;

  /// Canonicalizes a position: wraps on a ring, returns nullopt when an
  /// open-road position lies outside the system (the mobile left).
  std::optional<double> canonical_position(double x_km) const;

  /// Boundary coordinate the mobile will hit next when moving in
  /// `direction` (+1 or -1) from x_km, the cell it is effectively moving
  /// through (which resolves on-boundary positions direction-sensitively),
  /// and the cell on the other side (kNoCell when the road ends there).
  struct Boundary {
    double position_km;  ///< raw (unwrapped) coordinate of the boundary
    CellId current_cell;
    CellId next_cell;
  };
  Boundary next_boundary(double x_km, int direction) const;

 private:
  int n_;
  double diameter_;
  bool wrap_;
  std::vector<std::vector<CellId>> neighbors_;
};

}  // namespace pabr::geom
