#include "geom/topology.h"

#include <algorithm>

#include "util/check.h"

namespace pabr::geom {

bool Topology::adjacent(CellId a, CellId b) const {
  const auto& ns = neighbors(a);
  return std::find(ns.begin(), ns.end(), b) != ns.end();
}

void Topology::check_cell(CellId cell) const {
  PABR_CHECK(cell >= 0 && cell < num_cells(), "cell id out of range");
}

}  // namespace pabr::geom
