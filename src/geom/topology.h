// Cell topology abstraction (paper Fig. 2).
//
// The paper evaluates a 1-D, 10-cell road (optionally closed into a ring)
// and sketches 2-D hexagonal layouts as future work. Both are provided.
// Cells carry global ids 0..n-1; per-cell "adjacent cell" lists implement
// the paper's cell-centric indexing (index 0 = the cell itself, 1..k = its
// neighbours).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pabr::geom {

/// Global cell identifier, 0-based. The paper's prose numbers cells
/// 1..10; printers add 1 when rendering tables.
using CellId = std::int32_t;

inline constexpr CellId kNoCell = -1;

class Topology {
 public:
  virtual ~Topology() = default;

  virtual int num_cells() const = 0;

  /// Adjacent cells of `cell` (the paper's A_i), in a stable order.
  virtual const std::vector<CellId>& neighbors(CellId cell) const = 0;

  /// True when a and b are adjacent.
  bool adjacent(CellId a, CellId b) const;

  /// Human-readable description for logs and table headers.
  virtual std::string describe() const = 0;

 protected:
  void check_cell(CellId cell) const;
};

}  // namespace pabr::geom
