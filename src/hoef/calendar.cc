#include "hoef/calendar.h"

#include <cmath>

#include "util/check.h"

namespace pabr::hoef {
namespace {

EstimatorConfig weekday_config(const CalendarConfig& c) {
  EstimatorConfig cfg;
  cfg.t_int = c.t_int;
  cfg.n_quad = c.n_quad;
  cfg.period = sim::kDay;
  cfg.n_win_periods = c.n_win_days;
  cfg.weights = c.weekday_weights;
  return cfg;
}

EstimatorConfig weekend_config(const CalendarConfig& c) {
  EstimatorConfig cfg;
  cfg.t_int = c.t_int;
  cfg.n_quad = c.n_quad;
  cfg.period = sim::kWeek;  // T_week replaces T_day (paper §3.1)
  cfg.n_win_periods = c.n_win_weeks;
  cfg.weights = c.weekend_weights;
  return cfg;
}

}  // namespace

CalendarEstimator::CalendarEstimator(geom::CellId self, CalendarConfig config)
    : config_(config),
      weekday_(self, weekday_config(config)),
      weekend_(self, weekend_config(config)) {
  PABR_CHECK(config.start_day_of_week >= 0 && config.start_day_of_week < 7,
             "start_day_of_week out of [0,7)");
}

bool CalendarEstimator::is_weekend(sim::Time t) const {
  PABR_CHECK(t >= 0.0, "negative time");
  const auto day =
      static_cast<long>(std::floor(t / sim::kDay)) + config_.start_day_of_week;
  const int dow = static_cast<int>(day % 7);
  return dow == 5 || dow == 6;  // Saturday, Sunday
}

void CalendarEstimator::record(const Quadruplet& q) {
  set_for(q.event_time).record(q);
}

double CalendarEstimator::handoff_probability(sim::Time t0, geom::CellId prev,
                                              geom::CellId next,
                                              sim::Duration extant_sojourn,
                                              sim::Duration t_est) const {
  return set_for(t0).handoff_probability(t0, prev, next, extant_sojourn,
                                         t_est);
}

double CalendarEstimator::any_handoff_probability(
    sim::Time t0, geom::CellId prev, sim::Duration extant_sojourn,
    sim::Duration t_est) const {
  return set_for(t0).any_handoff_probability(t0, prev, extant_sojourn,
                                             t_est);
}

sim::Duration CalendarEstimator::max_sojourn(sim::Time t0) const {
  return set_for(t0).max_sojourn(t0);
}

void CalendarEstimator::prune(sim::Time t0) {
  weekday_.prune(t0);
  // The weekend set ages with the week period: prune conservatively at the
  // same instant (its own config already uses T_week windows).
  weekend_.prune(t0);
}

std::size_t CalendarEstimator::cached_events() const {
  return weekday_.cached_events() + weekend_.cached_events();
}

}  // namespace pabr::hoef
