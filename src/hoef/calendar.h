// Calendar-aware estimation (paper §3.1, last paragraph): weekend and
// holiday mobility "will be significantly different from those during
// weekdays", so "another set of quadruplets will be cached for these
// special days" and their estimation functions are built with T_week = 7
// days and N_win-weeks in place of T_day and N_win-days.
//
// CalendarEstimator routes every record and query to one of two
// HandoffEstimators by the day class of its timestamp:
//   * weekday set — periodic windows every T_day, depth N_win-days;
//   * weekend set — periodic windows every T_week, depth N_win-weeks.
// Day 0 of simulation time is a Monday by default (configurable offset).
#pragma once

#include "hoef/estimator.h"

namespace pabr::hoef {

struct CalendarConfig {
  /// Shared window half-width T_int and per-pair cap N_quad.
  sim::Duration t_int = sim::kHour;
  int n_quad = 100;
  /// Weekday windows: period T_day, depth N_win-days, weights w_n.
  int n_win_days = 1;
  std::vector<double> weekday_weights = {1.0, 1.0};
  /// Weekend windows: period T_week, depth N_win-weeks, weights w_n.
  int n_win_weeks = 1;
  std::vector<double> weekend_weights = {1.0, 1.0};
  /// Day-of-week of simulation time 0 (0 = Monday ... 6 = Sunday).
  int start_day_of_week = 0;
};

class CalendarEstimator {
 public:
  CalendarEstimator(geom::CellId self, CalendarConfig config);

  /// True when `t` falls on a Saturday or Sunday.
  bool is_weekend(sim::Time t) const;

  /// Routes to the weekday or weekend quadruplet set by q.event_time.
  void record(const Quadruplet& q);

  /// Routes to the estimator matching t0's day class.
  double handoff_probability(sim::Time t0, geom::CellId prev,
                             geom::CellId next, sim::Duration extant_sojourn,
                             sim::Duration t_est) const;
  double any_handoff_probability(sim::Time t0, geom::CellId prev,
                                 sim::Duration extant_sojourn,
                                 sim::Duration t_est) const;
  sim::Duration max_sojourn(sim::Time t0) const;

  void prune(sim::Time t0);
  std::size_t cached_events() const;

  const HandoffEstimator& weekday_set() const { return weekday_; }
  const HandoffEstimator& weekend_set() const { return weekend_; }
  geom::CellId self() const { return weekday_.self(); }

 private:
  const HandoffEstimator& set_for(sim::Time t) const {
    return is_weekend(t) ? weekend_ : weekday_;
  }
  HandoffEstimator& set_for(sim::Time t) {
    return is_weekend(t) ? weekend_ : weekday_;
  }

  CalendarConfig config_;
  HandoffEstimator weekday_;
  HandoffEstimator weekend_;
};

}  // namespace pabr::hoef
