#include "hoef/estimator.h"

#include <algorithm>
#include <cmath>

#include "snapshot/format.h"
#include "util/check.h"

namespace pabr::hoef {
namespace {

bool is_finite_duration(sim::Duration d) { return d < sim::kInfiniteDuration; }

/// Weight of entries with sojourn <= x given a sojourn-sorted array
/// [begin, end) and its prefix-summed weights (parallel array starting at
/// `prefix`).
double prefix_weight_at(const double* begin, const double* end,
                        const double* prefix, double x) {
  const double* it = std::upper_bound(begin, end, x);
  const auto idx = static_cast<std::size_t>(it - begin);
  return idx == 0 ? 0.0 : prefix[idx - 1];
}

double prefix_weight_at(const std::vector<double>& sojourns,
                        const std::vector<double>& prefix, double x) {
  return prefix_weight_at(sojourns.data(), sojourns.data() + sojourns.size(),
                          prefix.data(), x);
}

/// Smallest sojourn value strictly greater than x (the next step
/// breakpoint of the prefix-weight function), or infinity when none.
double next_breakpoint_after(const double* begin, const double* end,
                             double x) {
  const double* it = std::upper_bound(begin, end, x);
  return it == end ? sim::kInfiniteDuration : *it;
}

double next_breakpoint_after(const std::vector<double>& sojourns, double x) {
  return next_breakpoint_after(sojourns.data(),
                               sojourns.data() + sojourns.size(), x);
}

}  // namespace

HandoffEstimator::HandoffEstimator(geom::CellId self, EstimatorConfig config)
    : self_(self), config_(std::move(config)) {
  PABR_CHECK(config_.n_quad > 0, "N_quad must be positive");
  PABR_CHECK(config_.n_win_periods >= 0, "negative N_win");
  PABR_CHECK(config_.period > 0.0, "non-positive window period");
  PABR_CHECK(config_.t_int > 0.0, "non-positive T_int");
  PABR_CHECK(!config_.weights.empty(), "no window weights");
  for (std::size_t i = 1; i < config_.weights.size(); ++i) {
    PABR_CHECK(config_.weights[i] <= config_.weights[i - 1],
               "window weights must be non-increasing (paper Eq. 3)");
  }
  PABR_CHECK(config_.weights.front() > 0.0, "w_0 must be positive");
}

double HandoffEstimator::window_weight(int n) const {
  if (n < 0 || n > config_.n_win_periods) return 0.0;
  const auto idx = static_cast<std::size_t>(n);
  if (idx >= config_.weights.size()) return 0.0;
  return config_.weights[idx];
}

void HandoffEstimator::record(const Quadruplet& q) {
  PABR_CHECK(q.event_time >= last_event_time_,
             "quadruplets must arrive in event-time order");
  PABR_CHECK(q.sojourn >= 0.0, "negative sojourn");
  PABR_CHECK(q.next != geom::kNoCell && q.next != self_,
             "quadruplet.next must be an adjacent cell");
  last_event_time_ = q.event_time;

  PrevHistory& h = by_prev_.find_or_insert(q.prev);
  auto& ring = h.by_next.find_or_insert(q.next);
  if (!is_finite_duration(config_.t_int)) {
    // The retention loop below keeps at most N_quad events, so the ring
    // peaks at N_quad + 1 elements; pre-sizing once pins the capacity to
    // the first power of two above that and the ring never grows again.
    ring.reserve(static_cast<std::size_t>(config_.n_quad) + 1);
  }
  ring.push_back(q);
  telemetry::bump(tel_recorded_);

  if (!is_finite_duration(config_.t_int)) {
    // With an infinite window the priority rule is pure recency, so only
    // the newest N_quad events per (prev, next) can ever be selected.
    while (ring.size() > static_cast<std::size_t>(config_.n_quad)) {
      ring.pop_front();
      telemetry::bump(tel_evicted_);
    }
  } else {
    // Out-of-date events (older than every remaining periodic window) can
    // never be selected again; drop them eagerly to bound memory.
    const sim::Time horizon =
        q.event_time - config_.t_int -
        config_.period * static_cast<double>(config_.n_win_periods);
    while (!ring.empty() && ring.front().event_time < horizon) {
      ring.pop_front();
      telemetry::bump(tel_evicted_);
    }
  }
  ++h.revision;
  ++state_version_;
}

void HandoffEstimator::audit() const {
  for (const auto& [prev, hist] : by_prev_) {
    for (const auto& [next, events] : hist.by_next) {
      PABR_CHECK(next != geom::kNoCell && next != self_,
                 "estimator audit: ring keyed by invalid next cell");
      sim::Time last = -sim::kInfiniteDuration;
      for (const Quadruplet& q : events) {
        PABR_CHECK(q.prev == prev,
                   "estimator audit: quadruplet in foreign prev ring");
        PABR_CHECK(q.next == next,
                   "estimator audit: quadruplet in foreign next ring");
        PABR_CHECK(q.sojourn >= 0.0, "estimator audit: negative sojourn");
        PABR_CHECK(q.event_time >= last,
                   "estimator audit: event times out of order");
        PABR_CHECK(q.event_time <= last_event_time_,
                   "estimator audit: event newer than the last recorded");
        last = q.event_time;
      }
      if (!is_finite_duration(config_.t_int)) {
        PABR_CHECK(events.size() <= static_cast<std::size_t>(config_.n_quad),
                   "estimator audit: ring exceeds N_quad");
      }
    }
  }
}

void HandoffEstimator::select(const util::Ring<Quadruplet>& events,
                              sim::Time t0) const {
  std::vector<Selected>& picked = select_scratch_;
  picked.clear();
  if (events.empty()) return;

  if (!is_finite_duration(config_.t_int)) {
    // Single window (n = 0) covering all of history; the ring is already
    // capped at N_quad newest events in record().
    const double w = window_weight(0);
    picked.reserve(events.size());
    for (const Quadruplet& q : events) {
      if (q.event_time > t0) continue;  // future events are meaningless
      picked.push_back(Selected{q.sojourn, w, 0, t0 - q.event_time});
    }
    return;
  }

  // When 2*T_int > period, consecutive windows overlap and an event can
  // satisfy Eq. (2) for several n; the priority rule assigns it the
  // smallest n only, so windows are scanned in ascending n and indices
  // already claimed by an earlier window are skipped. Because each
  // window's index range shifts monotonically toward older events as n
  // grows, the union of already-claimed ranges that can overlap the
  // current one is just [claimed_lo, end) — a single comparison per
  // event instead of a scan over all earlier windows.
  picked.reserve(static_cast<std::size_t>(config_.n_quad));
  std::ptrdiff_t claimed_lo = static_cast<std::ptrdiff_t>(events.size());
  for (int n = 0; n <= config_.n_win_periods; ++n) {
    const double w = window_weight(n);
    if (w <= 0.0) continue;
    const double shift = config_.period * static_cast<double>(n);
    const sim::Time lo = t0 - config_.t_int - shift;
    const sim::Time hi = t0 + config_.t_int - shift;
    const sim::Time center = t0 - shift;
    auto first = std::lower_bound(
        events.begin(), events.end(), lo,
        [](const Quadruplet& q, sim::Time v) { return q.event_time < v; });
    auto last = std::lower_bound(
        events.begin(), events.end(), hi,
        [](const Quadruplet& q, sim::Time v) { return q.event_time < v; });
    for (auto it = first; it != last; ++it) {
      if (it->event_time > t0) break;  // the [t0, t0+T_int) part is future
      if (it - events.begin() >= claimed_lo) continue;  // earlier window's
      picked.push_back(
          Selected{it->sojourn, w, n, std::fabs(it->event_time - center)});
    }
    claimed_lo = std::min(claimed_lo, first - events.begin());
  }

  // §3.1 priority rule: smaller n first, then closest to the window
  // centre; keep the top N_quad.
  if (picked.size() > static_cast<std::size_t>(config_.n_quad)) {
    std::sort(picked.begin(), picked.end(),
              [](const Selected& a, const Selected& b) {
                if (a.window != b.window) return a.window < b.window;
                return a.center_distance < b.center_distance;
              });
    picked.resize(static_cast<std::size_t>(config_.n_quad));
  }
}

bool HandoffEstimator::snapshot_fresh(const PrevHistory& h,
                                      sim::Time t0) const {
  const Snapshot& s = h.snapshot;
  if (!s.valid || s.revision != h.revision) return false;
  if (!is_finite_duration(config_.t_int)) return true;
  // One-sided: a snapshot is only reusable for queries at or after its
  // build time. fabs() here would also accept snapshots built *after* t0,
  // whose window [built_at, built_at + t_int) can extend past t0 + t_int
  // and leak future events into an earlier query.
  const sim::Duration age = t0 - s.built_at;
  return age >= 0.0 && age <= config_.snapshot_tolerance;
}

void HandoffEstimator::build_snapshot(const PrevHistory& h,
                                      sim::Time t0) const {
  Snapshot& s = h.snapshot;
  s.built_at = t0;
  s.revision = h.revision;
  s.valid = true;
  s.all_sojourn.clear();
  s.all_prefix.clear();
  s.by_next.clear();
  s.values.reset();
  s.raw.reset();
  s.all_total = 0.0;
  s.max_sojourn = 0.0;

  std::vector<std::pair<double, double>>& all = all_scratch_;  // (soj, w)
  all.clear();
  s.by_next.reserve(h.by_next.size());
  for (const auto& [next, events] : h.by_next) {
    select(events, t0);
    std::vector<Selected>& sel = select_scratch_;
    if (sel.empty()) continue;
    std::sort(sel.begin(), sel.end(),
              [](const Selected& a, const Selected& b) {
                return a.sojourn < b.sojourn;
              });
    NextSpan span;
    span.next = next;
    const std::uint32_t soj_mark = s.values.mark();
    for (const Selected& x : sel) {
      s.values.push_back(x.sojourn);
      all.emplace_back(x.sojourn, x.weight);
      s.max_sojourn = std::max(s.max_sojourn, x.sojourn);
    }
    span.sojourns = s.values.span_from(soj_mark);
    const std::uint32_t prefix_mark = s.values.mark();
    double acc = 0.0;
    for (const Selected& x : sel) {
      acc += x.weight;
      s.values.push_back(acc);
    }
    span.prefix = s.values.span_from(prefix_mark);
    const std::uint32_t raw_mark = s.raw.mark();
    for (const Selected& x : sel) s.raw.push_back(x);
    span.raw = s.raw.span_from(raw_mark);
    s.by_next.push_back(span);
  }

  std::sort(all.begin(), all.end());
  double acc = 0.0;
  s.all_sojourn.reserve(all.size());
  s.all_prefix.reserve(all.size());
  for (const auto& [soj, w] : all) {
    s.all_sojourn.push_back(soj);
    acc += w;
    s.all_prefix.push_back(acc);
  }
  s.all_total = acc;
}

const HandoffEstimator::NextSpan* HandoffEstimator::Snapshot::find_next(
    geom::CellId next) const {
  const auto it = std::lower_bound(
      by_next.begin(), by_next.end(), next,
      [](const NextSpan& s, geom::CellId id) { return s.next < id; });
  return (it != by_next.end() && it->next == next) ? &*it : nullptr;
}

const HandoffEstimator::Snapshot* HandoffEstimator::snapshot_for(
    geom::CellId prev, sim::Time t0) const {
  const auto it = by_prev_.find(prev);
  if (it == by_prev_.end()) return nullptr;
  const PrevHistory& h = it->second;
  if (!snapshot_fresh(h, t0)) build_snapshot(h, t0);
  return &h.snapshot;
}

// The Bayes posterior Pr[hand-off within T_est | survived `extant`] =
// numer / denom, hardened at the numeric boundaries. A zero-mass
// denominator — empty window, all-stale (pruned) quadruplets, all-zero
// weights — means "estimated stationary" (paper §4.1) and yields 0, and
// so does any non-finite intermediate: `NaN <= 0` comparisons are false
// and std::clamp passes NaN through, so without the isfinite gates a
// poisoned weight sum would leak NaN/Inf into every B_r term downstream.
// p_h is therefore always a finite value in [0, 1].
static double posterior(double numer, double denom) {
  if (!(denom > 0.0) || !std::isfinite(denom)) return 0.0;
  const double p = numer / denom;
  return std::isfinite(p) ? std::clamp(p, 0.0, 1.0) : 0.0;
}

/// True when the posterior denominator has usable mass; false is the
/// zero-mass/non-finite case where posterior() pins the probability at 0.
static bool posterior_mass(double denom) {
  return denom > 0.0 && std::isfinite(denom);
}

double HandoffEstimator::handoff_probability(sim::Time t0, geom::CellId prev,
                                             geom::CellId next,
                                             sim::Duration extant_sojourn,
                                             sim::Duration t_est) const {
  PABR_CHECK(extant_sojourn >= 0.0, "negative extant sojourn");
  PABR_CHECK(t_est >= 0.0, "negative T_est");
  const Snapshot* s = snapshot_for(prev, t0);
  if (s == nullptr) return 0.0;

  const double denom =
      s->all_total - prefix_weight_at(s->all_sojourn, s->all_prefix,
                                      extant_sojourn);
  if (!posterior_mass(denom)) return 0.0;

  const NextSpan* span = s->find_next(next);
  if (span == nullptr) return 0.0;
  const double* soj_b = s->values.begin(span->sojourns);
  const double* soj_e = s->values.end(span->sojourns);
  const double* pre_b = s->values.begin(span->prefix);
  const double numer =
      prefix_weight_at(soj_b, soj_e, pre_b, extant_sojourn + t_est) -
      prefix_weight_at(soj_b, soj_e, pre_b, extant_sojourn);
  return posterior(numer, denom);
}

double HandoffEstimator::any_handoff_probability(
    sim::Time t0, geom::CellId prev, sim::Duration extant_sojourn,
    sim::Duration t_est) const {
  const Snapshot* s = snapshot_for(prev, t0);
  if (s == nullptr) return 0.0;
  const double below =
      prefix_weight_at(s->all_sojourn, s->all_prefix, extant_sojourn);
  const double denom = s->all_total - below;
  if (!posterior_mass(denom)) return 0.0;
  const double numer =
      prefix_weight_at(s->all_sojourn, s->all_prefix,
                       extant_sojourn + t_est) -
      below;
  return posterior(numer, denom);
}

bool HandoffEstimator::supports_caching() const {
  return !is_finite_duration(config_.t_int);
}

ProbeResult HandoffEstimator::handoff_probability_probe(
    sim::Time t0, geom::CellId prev, geom::CellId next,
    sim::Duration extant_sojourn, sim::Duration t_est) const {
  PABR_CHECK(extant_sojourn >= 0.0, "negative extant sojourn");
  PABR_CHECK(t_est >= 0.0, "negative T_est");
  ProbeResult r;
  const Snapshot* s = snapshot_for(prev, t0);
  if (s == nullptr) return r;  // stays 0 until a record() bumps the version

  const double below_all =
      prefix_weight_at(s->all_sojourn, s->all_prefix, extant_sojourn);
  const double denom = s->all_total - below_all;
  if (!posterior_mass(denom)) {
    return r;  // estimated stationary — and stays so: the denominator
               // only shrinks as time passes
  }

  const NextSpan* span = s->find_next(next);
  if (span == nullptr) return r;  // no events toward `next` yet
  const double* soj_b = s->values.begin(span->sojourns);
  const double* soj_e = s->values.end(span->sojourns);
  const double* pre_b = s->values.begin(span->prefix);
  const double numer =
      prefix_weight_at(soj_b, soj_e, pre_b, extant_sojourn + t_est) -
      prefix_weight_at(soj_b, soj_e, pre_b, extant_sojourn);
  r.probability = posterior(numer, denom);

  // The value is a pure function of the step-function indices selected
  // above; it can only change when the extant sojourn (or sojourn + T_est)
  // crosses the next sample point of one of the three lookups.
  const double d1 =
      next_breakpoint_after(s->all_sojourn, extant_sojourn) - extant_sojourn;
  const double d2 =
      next_breakpoint_after(soj_b, soj_e, extant_sojourn) - extant_sojourn;
  const double d3 =
      next_breakpoint_after(soj_b, soj_e, extant_sojourn + t_est) -
      (extant_sojourn + t_est);
  const double delta = std::min({d1, d2, d3});
  r.valid_until =
      delta >= sim::kInfiniteDuration ? sim::kInfiniteDuration : t0 + delta;
  return r;
}

ProbeResult HandoffEstimator::any_handoff_probability_probe(
    sim::Time t0, geom::CellId prev, sim::Duration extant_sojourn,
    sim::Duration t_est) const {
  PABR_CHECK(extant_sojourn >= 0.0, "negative extant sojourn");
  PABR_CHECK(t_est >= 0.0, "negative T_est");
  ProbeResult r;
  const Snapshot* s = snapshot_for(prev, t0);
  if (s == nullptr) return r;
  const double below =
      prefix_weight_at(s->all_sojourn, s->all_prefix, extant_sojourn);
  const double denom = s->all_total - below;
  if (!posterior_mass(denom)) return r;
  const double numer =
      prefix_weight_at(s->all_sojourn, s->all_prefix,
                       extant_sojourn + t_est) -
      below;
  r.probability = posterior(numer, denom);

  const double d1 =
      next_breakpoint_after(s->all_sojourn, extant_sojourn) - extant_sojourn;
  const double d2 =
      next_breakpoint_after(s->all_sojourn, extant_sojourn + t_est) -
      (extant_sojourn + t_est);
  const double delta = std::min(d1, d2);
  r.valid_until =
      delta >= sim::kInfiniteDuration ? sim::kInfiniteDuration : t0 + delta;
  return r;
}

sim::Duration HandoffEstimator::max_sojourn(sim::Time t0) const {
  sim::Duration m = 0.0;
  for (const auto& [prev, h] : by_prev_) {
    if (!snapshot_fresh(h, t0)) build_snapshot(h, t0);
    m = std::max(m, h.snapshot.max_sojourn);
  }
  return m;
}

std::vector<FootprintPoint> HandoffEstimator::footprint(
    sim::Time t0, geom::CellId prev) const {
  std::vector<FootprintPoint> out;
  const Snapshot* s = snapshot_for(prev, t0);
  if (s == nullptr) return out;
  out.reserve(s->raw.size());
  for (const NextSpan& span : s->by_next) {
    for (const Selected* x = s->raw.begin(span.raw);
         x != s->raw.end(span.raw); ++x) {
      out.push_back(FootprintPoint{span.next, x->sojourn, x->weight,
                                   x->window});
    }
  }
  return out;
}

void HandoffEstimator::prune(sim::Time t0) {
  if (!is_finite_duration(config_.t_int)) return;
  const sim::Time horizon =
      t0 - config_.t_int -
      config_.period * static_cast<double>(config_.n_win_periods);
  for (auto& [prev, h] : by_prev_) {
    bool changed = false;
    for (auto& [next, ring] : h.by_next) {
      while (!ring.empty() && ring.front().event_time < horizon) {
        ring.pop_front();
        telemetry::bump(tel_evicted_);
        changed = true;
      }
    }
    if (changed) {
      ++h.revision;
      ++state_version_;
    }
  }
}

std::size_t HandoffEstimator::cached_events() const {
  std::size_t n = 0;
  for (const auto& [prev, h] : by_prev_) {
    for (const auto& [next, ring] : h.by_next) n += ring.size();
  }
  return n;
}

void HandoffEstimator::save(snapshot::Encoder& enc) const {
  enc.u64(state_version_);
  enc.f64(last_event_time_);
  enc.u32(static_cast<std::uint32_t>(by_prev_.size()));
  for (const auto& [prev, h] : by_prev_) {
    enc.u32(static_cast<std::uint32_t>(prev));
    enc.u64(h.revision);
    // A snapshot fresh by revision can be rebuilt bit-for-bit at its
    // recorded build time; anything else must stay invalid after load.
    const bool fresh =
        h.snapshot.valid && h.snapshot.revision == h.revision;
    enc.b(fresh);
    enc.f64(fresh ? h.snapshot.built_at : 0.0);
    enc.u32(static_cast<std::uint32_t>(h.by_next.size()));
    for (const auto& [next, ring] : h.by_next) {
      enc.u32(static_cast<std::uint32_t>(next));
      enc.u32(static_cast<std::uint32_t>(ring.size()));
      for (const Quadruplet& q : ring) {
        enc.f64(q.event_time);
        enc.f64(q.sojourn);
      }
    }
  }
}

void HandoffEstimator::load(snapshot::Decoder& dec) {
  PABR_CHECK(by_prev_.empty(), "estimator load on a non-fresh estimator");
  state_version_ = dec.u64();
  last_event_time_ = dec.f64();
  const std::uint32_t n_prev = dec.u32();
  by_prev_.reserve(n_prev);
  for (std::uint32_t i = 0; i < n_prev; ++i) {
    const auto prev = static_cast<geom::CellId>(dec.u32());
    PrevHistory& h = by_prev_.find_or_insert(prev);
    h.revision = dec.u64();
    const bool fresh = dec.b();
    const sim::Time built_at = dec.f64();
    const std::uint32_t n_next = dec.u32();
    h.by_next.reserve(n_next);
    for (std::uint32_t j = 0; j < n_next; ++j) {
      const auto next = static_cast<geom::CellId>(dec.u32());
      util::Ring<Quadruplet>& ring = h.by_next.find_or_insert(next);
      const std::uint32_t n_quads = dec.u32();
      ring.reserve(n_quads);
      for (std::uint32_t k = 0; k < n_quads; ++k) {
        Quadruplet q;
        q.event_time = dec.f64();
        q.sojourn = dec.f64();
        q.prev = prev;
        q.next = next;
        ring.push_back(q);
      }
    }
    if (fresh) build_snapshot(h, built_at);
  }
}

}  // namespace pabr::hoef
