// The hand-off estimation function F_HOE of §3.1 and the Bayes hand-off
// probability of §4.1 (paper Eq. 4).
//
// One HandoffEstimator lives in each cell's BS. It ingests hand-off event
// quadruplets and answers:
//
//   p_h(C -> next) = P[ mobile hands off to `next` within T_est
//                       | it has already stayed T_ext-soj ]
//
// computed over the quadruplets that fall into the periodic estimation
// windows  t0 - T_int - n*P <= T_event < t0 + T_int - n*P  (paper Eq. 2,
// P = T_day by default) with weight w_n per window, w_n non-increasing and
// 0 beyond N_win periods (Eq. 3). At most N_quad quadruplets are used per
// (prev, next) pair, picked by the §3.1 priority rule: smaller n first,
// then smallest distance |T_event - (t0 - n*P)| from the window centre.
//
// Lookups run on lazily built per-(prev) snapshots: sojourn-sorted arrays
// with prefix-summed weights, so p_h costs O(log N_quad). Snapshots are
// rebuilt when new events arrive or (for finite T_int) when t0 drifts past
// `snapshot_tolerance`.
//
// Data layout (DESIGN.md §11): this estimator sits on the reservation
// hot path — every B_r recomputation probes it per connection — so the
// event store and the snapshots are flat, cache-friendly structures
// rather than node-based containers. Histories live in a small sorted
// flat-map (util/flat_map.h) of fixed-retention ring buffers
// (util/ring.h); snapshots keep their per-next arrays as index spans
// into reusable arenas (util/arena.h), so a rebuild allocates nothing
// once warm. Iteration orders match the std::map/std::deque layout they
// replaced key-for-key, which keeps every float-accumulation order — and
// therefore every output bit — identical.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geom/topology.h"
#include "hoef/quadruplet.h"
#include "sim/time.h"
#include "telemetry/metrics.h"
#include "util/arena.h"
#include "util/flat_map.h"
#include "util/ring.h"

namespace pabr::snapshot {
class Encoder;
class Decoder;
}  // namespace pabr::snapshot

namespace pabr::hoef {

struct EstimatorConfig {
  /// T_int: half-width of each periodic estimation window. Stationary
  /// experiments use infinity ("T_int = inf is used since the speed range
  /// and the offered load do not vary", §5.2); the time-varying ones use
  /// 1 hour.
  sim::Duration t_int = sim::kInfiniteDuration;
  /// Window period P (T_day for weekday patterns, T_week for weekend
  /// sets, §3.1).
  sim::Duration period = sim::kDay;
  /// N_win-days: windows older than this many periods are out-of-date.
  int n_win_periods = 1;
  /// w_0..w_{N_win}: non-increasing window weights (paper uses w0=w1=1).
  std::vector<double> weights = {1.0, 1.0};
  /// N_quad: max quadruplets used per (prev, next) pair.
  int n_quad = 100;
  /// Rebuild horizon for snapshots under a finite T_int.
  sim::Duration snapshot_tolerance = 30.0;
};

/// One point of the estimation function's footprint (paper Fig. 4).
struct FootprintPoint {
  geom::CellId next = geom::kNoCell;
  sim::Duration sojourn = 0.0;
  double weight = 0.0;
  int window = 0;  ///< the n of the periodic window the event fell into
};

/// A probability sample bundled with its validity horizon: because the
/// estimation function is a step function of the extant sojourn, p_h as a
/// function of wall-clock time is piecewise constant. `valid_until` is the
/// earliest simulation time at which the value may change (the next step
/// breakpoint); until then — and as long as the estimator's state_version
/// is unchanged — the exact same double would be recomputed. This is what
/// makes the incremental reservation engine exact, not approximate.
struct ProbeResult {
  double probability = 0.0;
  sim::Time valid_until = sim::kInfiniteDuration;
};

class HandoffEstimator {
 public:
  /// `self` is the id of the owning cell (the paper's cell "0"-centric
  /// view); quadruplets with prev == self are starts-in-cell events.
  HandoffEstimator(geom::CellId self, EstimatorConfig config);

  /// Ingests one departure observation. Event times must be
  /// non-decreasing (simulation order).
  void record(const Quadruplet& q);

  /// Paper Eq. (4): probability that a mobile which entered from `prev`
  /// and has stayed `extant_sojourn` hands off into `next` within `t_est`.
  /// Returns 0 when the mobile is estimated stationary (no cached event
  /// outlasts its extant sojourn).
  double handoff_probability(sim::Time t0, geom::CellId prev,
                             geom::CellId next, sim::Duration extant_sojourn,
                             sim::Duration t_est) const;

  /// Probability that the mobile hands off *anywhere* within t_est — the
  /// same conditional with the numerator summed over all next cells.
  double any_handoff_probability(sim::Time t0, geom::CellId prev,
                                 sim::Duration extant_sojourn,
                                 sim::Duration t_est) const;

  /// handoff_probability plus the time horizon the returned value stays
  /// bitwise valid for (see ProbeResult). Only meaningful while
  /// state_version() is unchanged and supports_caching() holds.
  ProbeResult handoff_probability_probe(sim::Time t0, geom::CellId prev,
                                        geom::CellId next,
                                        sim::Duration extant_sojourn,
                                        sim::Duration t_est) const;

  /// any_handoff_probability with a validity horizon.
  ProbeResult any_handoff_probability_probe(sim::Time t0, geom::CellId prev,
                                            sim::Duration extant_sojourn,
                                            sim::Duration t_est) const;

  /// Monotonic counter bumped whenever a lookup after this moment could
  /// return a different value than before at the same (t0, sojourn)
  /// arguments: new quadruplets recorded and prunes that dropped events.
  std::uint64_t state_version() const { return state_version_; }

  /// True when probe results can be cached across time: with an infinite
  /// T_int, snapshots depend only on the recorded events (covered by
  /// state_version); with a finite T_int they also drift with t0, so
  /// callers must fall back to recomputation.
  bool supports_caching() const;

  /// Largest sojourn among currently-usable quadruplets, across all prev
  /// (feeds T_soj,max of the Fig. 6 controller). 0 when empty.
  sim::Duration max_sojourn(sim::Time t0) const;

  /// Footprint of the estimation function for one prev (paper Fig. 4).
  std::vector<FootprintPoint> footprint(sim::Time t0, geom::CellId prev) const;

  /// Drops quadruplets that can no longer enter any window at or after t0
  /// (T_event < t0 - T_int - N_win * P).
  void prune(sim::Time t0);

  /// Structural self-check of the event store (audit layer): every cached
  /// quadruplet lives in the ring matching its (prev, next), rings are
  /// event-time-sorted with nothing newer than the last recorded event,
  /// sojourns are non-negative, and with an infinite T_int no ring holds
  /// more than N_quad events. Throws InvariantError on violation.
  void audit() const;

  /// Total quadruplets currently cached (diagnostics).
  std::size_t cached_events() const;

  /// Mirrors quadruplet ingestion/eviction onto telemetry counters
  /// (telemetry/metrics.h). The owning system binds every station's
  /// estimator to the same pair; bumps are no-ops until bound and fold
  /// away when telemetry is compiled out.
  void bind_telemetry(telemetry::Counter* recorded,
                      telemetry::Counter* evicted) {
    tel_recorded_ = recorded;
    tel_evicted_ = evicted;
  }

  geom::CellId self() const { return self_; }
  const EstimatorConfig& config() const { return config_; }

  /// Snapshot save/load (src/snapshot/): serializes the quadruplet store
  /// and revision counters, plus — for each per-prev snapshot that was
  /// fresh by revision at save time — its build timestamp, so load()
  /// rebuilds the exact snapshot the uninterrupted run was consulting
  /// (build_snapshot is a pure function of the rings, the config and the
  /// build time). A stale saved snapshot stays invalid after load, so a
  /// finite-T_int freshness test cannot wrongly pass. load() expects a
  /// freshly constructed estimator with the same self/config.
  void save(snapshot::Encoder& enc) const;
  void load(snapshot::Decoder& dec);

 private:
  struct Selected {
    sim::Duration sojourn;
    double weight;
    int window;
    double center_distance;
  };
  /// One prev's estimation function, flattened: the per-next
  /// sojourn-sorted sample arrays and the raw selections live as index
  /// spans into the snapshot's arenas; the whole-prev arrays keep their
  /// own vectors (clear() retains capacity, so they churn nothing
  /// either). Rebuilds reset the arenas and refill — zero allocations
  /// once the arenas are warm.
  struct NextSpan {
    geom::CellId next = geom::kNoCell;
    util::ArenaSpan sojourns;  ///< into `values`, sorted ascending
    util::ArenaSpan prefix;    ///< into `values`, same length
    util::ArenaSpan raw;       ///< into `raw`, sojourn-sorted Selected
  };
  struct Snapshot {
    sim::Time built_at = -1.0;
    std::uint64_t revision = 0;
    bool valid = false;
    // All selected quadruplets of this prev, sorted by sojourn.
    std::vector<double> all_sojourn;
    std::vector<double> all_prefix;  // prefix-summed weights (same length)
    double all_total = 0.0;
    double max_sojourn = 0.0;
    // Per-next spans, sorted by next id (the iteration order of the
    // std::map this replaces).
    std::vector<NextSpan> by_next;
    util::Arena<double> values;  ///< per-next sojourn + prefix runs
    util::Arena<Selected> raw;   ///< per-next raw selections (footprint)

    const NextSpan* find_next(geom::CellId next) const;
  };
  struct PrevHistory {
    // Per-next event-time-ordered rings (append order == time order).
    util::FlatMap<geom::CellId, util::Ring<Quadruplet>> by_next;
    std::uint64_t revision = 0;
    mutable Snapshot snapshot;
  };

  double window_weight(int n) const;
  bool snapshot_fresh(const PrevHistory& h, sim::Time t0) const;
  void build_snapshot(const PrevHistory& h, sim::Time t0) const;
  /// Usable quadruplets of one ring at t0, with window index/weight,
  /// written into `select_scratch_`.
  void select(const util::Ring<Quadruplet>& events, sim::Time t0) const;
  const Snapshot* snapshot_for(geom::CellId prev, sim::Time t0) const;

  geom::CellId self_;
  EstimatorConfig config_;
  util::FlatMap<geom::CellId, PrevHistory> by_prev_;
  sim::Time last_event_time_ = 0.0;
  std::uint64_t state_version_ = 0;
  // Build-time scratch, reused across every snapshot rebuild of this
  // estimator (per-estimator arena of the hot path's temporaries).
  mutable std::vector<Selected> select_scratch_;
  mutable std::vector<std::pair<double, double>> all_scratch_;
  telemetry::Counter* tel_recorded_ = nullptr;
  telemetry::Counter* tel_evicted_ = nullptr;
};

}  // namespace pabr::hoef
