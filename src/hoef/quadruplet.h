// The hand-off event quadruplet of §3.1:
//   (T_event, prev, next, T_soj)
// cached by a cell's BS for each mobile that departs into an adjacent
// cell: when it left, where it had come from, where it went, and how long
// it stayed.
#pragma once

#include "geom/topology.h"
#include "sim/time.h"

namespace pabr::hoef {

struct Quadruplet {
  /// T_event: when the mobile departed the current cell.
  sim::Time event_time = 0.0;
  /// Cell the mobile resided in before entering the current cell. By the
  /// paper's convention prev = "0" (the current cell itself) means the
  /// connection started here; we encode that as prev == the owning cell's
  /// id.
  geom::CellId prev = geom::kNoCell;
  /// Cell the mobile entered on departure.
  geom::CellId next = geom::kNoCell;
  /// T_soj: time spent in the current cell (entry to departure).
  sim::Duration sojourn = 0.0;
};

}  // namespace pabr::hoef
