#include "mobility/hex_motion.h"

#include "util/check.h"

namespace pabr::mobility {

HexMotion::HexMotion(const geom::HexTopology& grid, HexMotionConfig config)
    : grid_(grid), config_(config) {
  PABR_CHECK(config.cell_diameter_km > 0.0, "HexMotion: bad cell diameter");
  PABR_CHECK(config.persistence >= 0.0 && config.persistence <= 1.0,
             "HexMotion: persistence out of [0,1]");
  PABR_CHECK(config.jitter >= 0.0 && config.jitter < 1.0,
             "HexMotion: jitter out of [0,1)");
}

geom::CellId HexMotion::straight_neighbor(geom::CellId prev,
                                          geom::CellId current,
                                          sim::Rng& rng) const {
  if (prev != current) {
    // The mobile entered `current` moving in direction d (prev -> current);
    // straight-through means leaving in the same direction d.
    const auto d = grid_.direction_between(prev, current);
    if (d.has_value()) {
      const geom::CellId ahead = grid_.neighbor_in(current, *d);
      if (ahead != geom::kNoCell) return ahead;
    }
  }
  // Fresh connection or blocked heading: pick uniformly.
  const auto& ns = grid_.neighbors(current);
  PABR_CHECK(!ns.empty(), "HexMotion: isolated cell");
  return ns[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<int>(ns.size()) - 1))];
}

geom::CellId HexMotion::next_cell(geom::CellId prev, geom::CellId current,
                                  sim::Rng& rng) const {
  const geom::CellId straight = straight_neighbor(prev, current, rng);
  if (rng.bernoulli(config_.persistence)) return straight;
  const auto& ns = grid_.neighbors(current);
  if (ns.size() == 1) return ns.front();
  // Uniform among the non-straight neighbours.
  for (;;) {
    const geom::CellId pick = ns[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(ns.size()) - 1))];
    if (pick != straight) return pick;
  }
}

sim::Duration HexMotion::sojourn(double speed_kmh, sim::Rng& rng) const {
  PABR_CHECK(speed_kmh > 0.0, "HexMotion: non-positive speed");
  const double nominal = config_.cell_diameter_km / (speed_kmh / 3600.0);
  const double factor =
      rng.uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
  return nominal * factor;
}

}  // namespace pabr::mobility
