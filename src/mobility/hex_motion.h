// 2-D hex-grid mobility (the paper's future-work extension, exercised by
// the campus_2d example).
//
// Mobiles perform a direction-persistent random walk over hexagonal cells:
// from (prev -> current) the next cell is the "straight-through" neighbour
// with probability `persistence`, otherwise a uniformly random other
// neighbour — capturing observation O4 of §3 ("the direction of a mobile
// can be predicted from the path the mobile has taken so far"). The cell
// sojourn time is cell_diameter / speed, jittered uniformly by ±`jitter`.
#pragma once

#include "geom/hex_topology.h"
#include "sim/random.h"
#include "sim/time.h"

namespace pabr::mobility {

struct HexMotionConfig {
  double cell_diameter_km = 1.0;
  /// Probability of continuing in the same grid direction.
  double persistence = 0.7;
  /// Multiplicative sojourn jitter: actual = nominal * U[1-j, 1+j].
  double jitter = 0.2;
};

class HexMotion {
 public:
  HexMotion(const geom::HexTopology& grid, HexMotionConfig config);

  /// Picks the next cell for a mobile that entered `current` from `prev`
  /// (prev == current for a fresh connection).
  geom::CellId next_cell(geom::CellId prev, geom::CellId current,
                         sim::Rng& rng) const;

  /// Sojourn time in a cell at the given speed (km/h).
  sim::Duration sojourn(double speed_kmh, sim::Rng& rng) const;

  const HexMotionConfig& config() const { return config_; }

 private:
  /// The neighbour of `current` most opposite to `prev` (straight-through
  /// heading); falls back to a uniform neighbour for fresh connections.
  geom::CellId straight_neighbor(geom::CellId prev, geom::CellId current,
                                 sim::Rng& rng) const;

  const geom::HexTopology& grid_;
  HexMotionConfig config_;
};

}  // namespace pabr::mobility
