#include "mobility/linear_motion.h"

#include <cmath>

#include "util/check.h"
#include "util/mathx.h"

namespace pabr::mobility {

double position_at(const Mobile& m, sim::Time t) {
  PABR_CHECK(t >= m.position_at, "position_at: time before cached position");
  return m.position_km +
         static_cast<double>(m.direction) * m.speed_km_per_s() *
             (t - m.position_at);
}

std::optional<Crossing> next_crossing(const geom::LinearTopology& road,
                                      const Mobile& m, sim::Time t) {
  if (m.speed_kmh <= 0.0) return std::nullopt;
  const double x_raw = position_at(m, t);
  const auto x = road.canonical_position(x_raw);
  PABR_CHECK(x.has_value(), "next_crossing: mobile is off the road");

  const auto boundary = road.next_boundary(*x, m.direction);
  const double distance = std::fabs(boundary.position_km - *x);
  PABR_CHECK(distance > 0.0, "next_boundary returned the current position");
  const sim::Duration travel = distance / m.speed_km_per_s();

  Crossing c;
  c.when = t + travel;
  c.boundary_km = road.wraps()
                      ? mathx::positive_fmod(boundary.position_km,
                                             road.road_length_km())
                      : boundary.position_km;
  c.from = boundary.current_cell;
  c.to = boundary.next_cell;
  return c;
}

void advance_to(const geom::LinearTopology& road, Mobile& m, sim::Time t) {
  const double x_raw = position_at(m, t);
  const auto x = road.canonical_position(x_raw);
  PABR_CHECK(x.has_value(), "advance_to: mobile moved off the road");
  m.position_km = *x;
  m.position_at = t;
}

}  // namespace pabr::mobility
