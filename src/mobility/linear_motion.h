// Constant-velocity kinematics on a linear road (assumption A4: "Each
// mobile will run straight through the road with the chosen speed").
#pragma once

#include <optional>

#include "geom/linear_topology.h"
#include "mobility/mobile.h"
#include "sim/time.h"

namespace pabr::mobility {

/// Raw (unwrapped) coordinate of `m` at time `t >= m.position_at`.
double position_at(const Mobile& m, sim::Time t);

/// The next cell-boundary crossing of `m` after time `t`.
struct Crossing {
  sim::Time when;            ///< absolute time of the crossing
  double boundary_km;        ///< wrapped road coordinate of the boundary
  geom::CellId from;         ///< cell being departed
  geom::CellId to;           ///< cell being entered; kNoCell = leaves road
};

/// Computes the crossing. Returns nullopt for a stationary mobile (speed
/// 0) which never crosses.
std::optional<Crossing> next_crossing(const geom::LinearTopology& road,
                                      const Mobile& m, sim::Time t);

/// Advances the mobile's cached position to time `t` (wrapping on rings).
void advance_to(const geom::LinearTopology& road, Mobile& m, sim::Time t);

}  // namespace pabr::mobility
