// Mobile (active-connection) state tracked by the simulator.
//
// The paper uses "connection" and "mobile" interchangeably (each mobile
// carries at most one connection, §2), so one struct holds both the radio
// resource state and the kinematic state.
#pragma once

#include "geom/topology.h"
#include "sim/time.h"
#include "traffic/connection.h"

namespace pabr::mobility {

struct Mobile {
  traffic::ConnectionId id = 0;
  traffic::ServiceClass service = traffic::ServiceClass::kVoice;

  geom::CellId cell = geom::kNoCell;
  /// Cell the mobile resided in before entering `cell`; equals `cell` when
  /// the connection started here (the paper's prev = 0 convention).
  geom::CellId prev_cell = geom::kNoCell;
  /// When the mobile entered `cell` — T_ext-soj(t) = t - entered_cell_at.
  sim::Time entered_cell_at = 0.0;

  /// 1-D kinematics (A4: constant speed, fixed direction).
  double position_km = 0.0;  ///< position at time `position_at`
  sim::Time position_at = 0.0;
  int direction = +1;
  double speed_kmh = 0.0;

  sim::Time admitted_at = 0.0;
  sim::Time expires_at = 0.0;  ///< lifetime end (absolute time)

  /// True when the network knows this mobile's route (the paper's §7
  /// ITS/GPS extension): its next cell is then deterministic and the
  /// estimation function is used for the sojourn time only.
  bool route_known = false;

  /// The service's full-QoS bandwidth (1 BU voice / 4 BU video).
  traffic::Bandwidth bandwidth() const {
    return traffic::bandwidth_of(service);
  }

  /// Bandwidth currently granted. Equals bandwidth() unless an
  /// adaptive-QoS hand-off (§1) degraded the connection in a congested
  /// cell; a later hand-off into a roomier cell restores it.
  traffic::Bandwidth current_bandwidth = 0;

  bool degraded() const { return current_bandwidth < bandwidth(); }

  double speed_km_per_s() const { return speed_kmh / 3600.0; }

  /// Extant sojourn time in the current cell at time t (paper §4.1).
  sim::Duration extant_sojourn(sim::Time t) const {
    return t - entered_cell_at;
  }

  bool started_here() const { return prev_cell == cell; }
};

}  // namespace pabr::mobility
