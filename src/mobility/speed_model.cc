#include "mobility/speed_model.h"

#include <algorithm>

#include "util/check.h"

namespace pabr::mobility {

double SpeedModel::sample(sim::Rng& rng, sim::Time t) const {
  const auto [lo, hi] = range(t);
  return rng.uniform(lo, hi);
}

UniformSpeedModel::UniformSpeedModel(double min_kmh, double max_kmh)
    : min_kmh_(min_kmh), max_kmh_(max_kmh) {
  PABR_CHECK(min_kmh > 0.0 && max_kmh >= min_kmh,
             "UniformSpeedModel: bad range");
}

std::pair<double, double> UniformSpeedModel::range(sim::Time) const {
  return {min_kmh_, max_kmh_};
}

ProfileSpeedModel::ProfileSpeedModel(traffic::DailyProfile profile,
                                     double half_range_kmh)
    : profile_(std::move(profile)), half_(half_range_kmh) {
  PABR_CHECK(half_range_kmh >= 0.0, "ProfileSpeedModel: negative half range");
}

std::pair<double, double> ProfileSpeedModel::range(sim::Time t) const {
  const double s = profile_.at(t);
  const double lo = std::max(1.0, s - half_);
  const double hi = std::max(lo, s + half_);
  return {lo, hi};
}

std::unique_ptr<SpeedModel> high_mobility() {
  return std::make_unique<UniformSpeedModel>(80.0, 120.0);
}

std::unique_ptr<SpeedModel> low_mobility() {
  return std::make_unique<UniformSpeedModel>(40.0, 60.0);
}

}  // namespace pabr::mobility
