// Speed sampling models.
//
// Stationary experiments draw uniformly from a fixed [SP_min, SP_max]
// (high mobility = [80,120] km/h, low = [40,60] km/h, §5.2). The
// time-varying experiments follow a daily average-speed profile S(t) and
// sample uniformly from [S-20, S+20] (§5.3, Fig. 14(a)).
#pragma once

#include <memory>
#include <utility>

#include "sim/random.h"
#include "sim/time.h"
#include "traffic/profiles.h"

namespace pabr::mobility {

class SpeedModel {
 public:
  virtual ~SpeedModel() = default;

  /// Speed bounds [lo, hi] (km/h) in force at time t.
  virtual std::pair<double, double> range(sim::Time t) const = 0;

  double sample(sim::Rng& rng, sim::Time t) const;
};

/// Fixed range, e.g. the paper's high-mobility [80, 120] km/h.
class UniformSpeedModel final : public SpeedModel {
 public:
  UniformSpeedModel(double min_kmh, double max_kmh);
  std::pair<double, double> range(sim::Time t) const override;

 private:
  double min_kmh_, max_kmh_;
};

/// [S(t) - half, S(t) + half] with S from a daily profile, floored so the
/// lower bound stays positive.
class ProfileSpeedModel final : public SpeedModel {
 public:
  ProfileSpeedModel(traffic::DailyProfile profile, double half_range_kmh);
  std::pair<double, double> range(sim::Time t) const override;

 private:
  traffic::DailyProfile profile_;
  double half_;
};

/// The paper's named presets.
std::unique_ptr<SpeedModel> high_mobility();  ///< [80, 120] km/h
std::unique_ptr<SpeedModel> low_mobility();   ///< [40, 60] km/h

}  // namespace pabr::mobility
