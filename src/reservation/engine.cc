#include "reservation/engine.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace pabr::reservation {
namespace {

std::uint64_t pair_key(geom::CellId source, geom::CellId target) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(target));
}

/// splitmix64 finalizer: the packed key's low bits are just the target
/// id, so masking it directly would collide every (s, t) with equal t.
std::uint64_t mix_key(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::size_t IncrementalEngine::PairTable::probe_start(
    std::uint64_t key) const {
  return static_cast<std::size_t>(mix_key(key)) & mask_;
}

void IncrementalEngine::PairTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  const std::size_t capacity = old.empty() ? 64 : old.size() * 2;
  slots_.clear();
  slots_.resize(capacity);
  mask_ = capacity - 1;
  for (Slot& s : old) {
    if (s.key == kEmptyKey) continue;
    std::size_t i = probe_start(s.key);
    while (slots_[i].key != kEmptyKey) i = (i + 1) & mask_;
    slots_[i].key = s.key;
    slots_[i].cache = std::move(s.cache);
  }
}

IncrementalEngine::PairCache& IncrementalEngine::PairTable::find_or_insert(
    std::uint64_t key) {
  PABR_CHECK(key != kEmptyKey, "pair key collides with the empty marker");
  // Grow at 70% load so probe runs stay short.
  if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) grow();
  std::size_t i = probe_start(key);
  while (slots_[i].key != kEmptyKey) {
    if (slots_[i].key == key) return slots_[i].cache;
    i = (i + 1) & mask_;
  }
  slots_[i].key = key;
  ++size_;
  return slots_[i].cache;
}

IncrementalEngine::PairCache* IncrementalEngine::PairTable::find(
    std::uint64_t key) {
  if (slots_.empty()) return nullptr;
  std::size_t i = probe_start(key);
  while (slots_[i].key != kEmptyKey) {
    if (slots_[i].key == key) return &slots_[i].cache;
    i = (i + 1) & mask_;
  }
  return nullptr;
}

const IncrementalEngine::PairCache* IncrementalEngine::PairTable::find(
    std::uint64_t key) const {
  return const_cast<PairTable*>(this)->find(key);
}

void IncrementalEngine::PairTable::erase(std::uint64_t key) {
  if (slots_.empty()) return;
  std::size_t i = probe_start(key);
  while (slots_[i].key != key) {
    if (slots_[i].key == kEmptyKey) return;  // absent
    i = (i + 1) & mask_;
  }
  // Backward-shift deletion: walk the probe run past the hole and pull
  // back every entry whose home slot precedes the hole, so lookups never
  // need a tombstone to bridge the gap.
  std::size_t hole = i;
  std::size_t j = (i + 1) & mask_;
  while (slots_[j].key != kEmptyKey) {
    const std::size_t home = probe_start(slots_[j].key);
    // `j`'s entry may fill the hole iff the hole lies within its probe
    // run, i.e. home..j (cyclically) covers the hole.
    if (((j - home) & mask_) >= ((j - hole) & mask_)) {
      slots_[hole].key = slots_[j].key;
      slots_[hole].cache = std::move(slots_[j].cache);
      hole = j;
    }
    j = (j + 1) & mask_;
  }
  slots_[hole].key = kEmptyKey;
  slots_[hole].cache = PairCache{};  // release the term vector
  --size_;
}

IncrementalEngine::TermEntry IncrementalEngine::make_term(
    geom::CellId source, geom::CellId target,
    const traffic::ConnectionEntry& entry,
    const hoef::HandoffEstimator& estimator, sim::Time now,
    sim::Duration t_est) const {
  TermEntry term;
  term.id = entry.id;
  term.reserve_bw = entry.view.reserve_bandwidth;
  term.prev = entry.view.prev_cell;
  term.entered_at = entry.view.entered_cell_at;

  const sim::Duration extant = now - entry.view.entered_cell_at;
  hoef::ProbeResult probe;
  if (entry.view.route_known) {
    // §7 ITS/GPS extension: the next cell is deterministic, the estimation
    // function only estimates the hand-off time. A mobile not headed for
    // `target` contributes 0 for as long as it stays camped in `source`.
    if (route_next_ != nullptr &&
        route_next_(source, entry.view.direction) == target) {
      probe = estimator.any_handoff_probability_probe(now, entry.view.prev_cell,
                                                      extant, t_est);
    } else {
      probe.probability = 0.0;
      probe.valid_until = sim::kInfiniteDuration;
    }
  } else {
    probe = estimator.handoff_probability_probe(
        now, entry.view.prev_cell, target, extant, t_est);
  }
  term.value =
      static_cast<double>(entry.view.reserve_bandwidth) * probe.probability;
  term.valid_until = probe.valid_until;
  return term;
}

double IncrementalEngine::accumulate(
    geom::CellId source, geom::CellId target,
    const std::vector<traffic::ConnectionEntry>& table,
    const hoef::HandoffEstimator& estimator, sim::Time now,
    sim::Duration t_est, double running) {
  const std::uint64_t key = pair_key(source, target);
  PairCache& pair = pairs_.find_or_insert(key);

  // A changed estimation function or a stepped T_est invalidates every
  // term of the pair; estimators with finite T_int drift with wall-clock
  // time and are never cached (see header).
  const std::uint64_t version = estimator.state_version();
  const bool reusable = estimator.supports_caching() &&
                        pair.estimator_version == version &&
                        pair.t_est == t_est;

  // All-hit fast path: in steady state the cached terms mirror the table
  // one-to-one and none has expired, so the walk below would copy every
  // term unchanged. Sum straight from the cache instead — same values
  // added in the same table order, so the result is bit-identical — and
  // fall back to the merge walk from the first index that diverges.
  std::size_t prefix = 0;
  if (reusable && pair.terms.size() == table.size()) {
    const std::size_t n = table.size();
    for (; prefix < n; ++prefix) {
      const TermEntry& c = pair.terms[prefix];
      const traffic::ConnectionEntry& entry = table[prefix];
      if (c.id != entry.id || now >= c.valid_until ||
          c.reserve_bw != entry.view.reserve_bandwidth ||
          c.prev != entry.view.prev_cell ||
          c.entered_at != entry.view.entered_cell_at) {
        break;
      }
      running += c.value;
    }
    if (prefix == n) {
      terms_reused_ += n;
      telemetry::bump(tel_reused_, n);
      // The cache equals what the walk would have rebuilt; nothing to
      // store. (A pair in degraded mode never reaches here: mark_stale
      // deleted its slot, so its next walk starts from an empty cache.)
      return running;
    }
  }

  scratch_.clear();
  if (max_table_seen_ < table.size()) max_table_seen_ = table.size();
  scratch_.reserve(max_table_seen_);
  // Terms [0, prefix) were validated as hits above; carry them over and
  // resume the merge walk at the divergence point.
  scratch_.insert(scratch_.end(), pair.terms.cbegin(),
                  pair.terms.cbegin() + static_cast<std::ptrdiff_t>(prefix));
  terms_reused_ += prefix;
  telemetry::bump(tel_reused_, prefix);

  auto cached = pair.terms.cbegin() + static_cast<std::ptrdiff_t>(prefix);
  const auto cached_end = pair.terms.cend();
  for (auto it = table.cbegin() + static_cast<std::ptrdiff_t>(prefix);
       it != table.cend(); ++it) {
    const traffic::ConnectionEntry& entry = *it;
    while (cached != cached_end && cached->id < entry.id) ++cached;
    const bool hit = reusable && cached != cached_end &&
                     cached->id == entry.id && now < cached->valid_until &&
                     cached->reserve_bw == entry.view.reserve_bandwidth &&
                     cached->prev == entry.view.prev_cell &&
                     cached->entered_at == entry.view.entered_cell_at;
    if (hit) {
      scratch_.push_back(*cached);
      ++terms_reused_;
      telemetry::bump(tel_reused_);
    } else {
      scratch_.push_back(
          make_term(source, target, entry, estimator, now, t_est));
      ++terms_recomputed_;
      telemetry::bump(tel_recomputed_);
    }
    // Accumulate in table order onto the caller's running sum — the exact
    // association order of the scratch rescan, so the cached path is
    // bit-identical, not approximately equal.
    running += scratch_.back().value;
  }
  pair.terms.swap(scratch_);
  pair.estimator_version = version;
  pair.t_est = t_est;
  // A completed walk re-derived every term from the live table, so any
  // degraded-mode stale mark is now discharged (post-heal re-sync).
  const auto stale = std::lower_bound(stale_keys_.begin(), stale_keys_.end(),
                                      key);
  if (stale != stale_keys_.end() && *stale == key) stale_keys_.erase(stale);
  return running;
}

void IncrementalEngine::mark_stale(geom::CellId source, geom::CellId target) {
  const std::uint64_t key = pair_key(source, target);
  // Tombstone-free: the pair's slot is removed outright (backward-shift)
  // rather than flagged; the next accumulate() over the pair starts from
  // an empty cache, which recomputes every term — exactly the re-sync the
  // audit layer then checks bitwise.
  pairs_.erase(key);
  const auto it = std::lower_bound(stale_keys_.begin(), stale_keys_.end(),
                                   key);
  if (it == stale_keys_.end() || *it != key) {
    stale_keys_.insert(it, key);
    ++pairs_invalidated_;
  }
}

bool IncrementalEngine::is_stale(geom::CellId source,
                                 geom::CellId target) const {
  const std::uint64_t key = pair_key(source, target);
  return std::binary_search(stale_keys_.begin(), stale_keys_.end(), key);
}

}  // namespace pabr::reservation
