#include "reservation/engine.h"

#include "util/check.h"

namespace pabr::reservation {
namespace {

std::uint64_t pair_key(geom::CellId source, geom::CellId target) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(source))
          << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(target));
}

}  // namespace

IncrementalEngine::TermEntry IncrementalEngine::make_term(
    geom::CellId source, geom::CellId target,
    const traffic::ConnectionEntry& entry,
    const hoef::HandoffEstimator& estimator, sim::Time now,
    sim::Duration t_est) const {
  TermEntry term;
  term.id = entry.id;
  term.reserve_bw = entry.view.reserve_bandwidth;
  term.prev = entry.view.prev_cell;
  term.entered_at = entry.view.entered_cell_at;

  const sim::Duration extant = now - entry.view.entered_cell_at;
  hoef::ProbeResult probe;
  if (entry.view.route_known) {
    // §7 ITS/GPS extension: the next cell is deterministic, the estimation
    // function only estimates the hand-off time. A mobile not headed for
    // `target` contributes 0 for as long as it stays camped in `source`.
    if (route_next_ != nullptr &&
        route_next_(source, entry.view.direction) == target) {
      probe = estimator.any_handoff_probability_probe(now, entry.view.prev_cell,
                                                      extant, t_est);
    } else {
      probe.probability = 0.0;
      probe.valid_until = sim::kInfiniteDuration;
    }
  } else {
    probe = estimator.handoff_probability_probe(
        now, entry.view.prev_cell, target, extant, t_est);
  }
  term.value =
      static_cast<double>(entry.view.reserve_bandwidth) * probe.probability;
  term.valid_until = probe.valid_until;
  return term;
}

double IncrementalEngine::accumulate(
    geom::CellId source, geom::CellId target,
    const std::vector<traffic::ConnectionEntry>& table,
    const hoef::HandoffEstimator& estimator, sim::Time now,
    sim::Duration t_est, double running) {
  PairCache& pair = pairs_[pair_key(source, target)];

  // A changed estimation function or a stepped T_est invalidates every
  // term of the pair; estimators with finite T_int drift with wall-clock
  // time and are never cached (see header).
  const std::uint64_t version = estimator.state_version();
  const bool reusable = estimator.supports_caching() &&
                        pair.estimator_version == version &&
                        pair.t_est == t_est;

  scratch_.clear();
  scratch_.reserve(table.size());
  auto cached = pair.terms.cbegin();
  const auto cached_end = pair.terms.cend();
  for (const traffic::ConnectionEntry& entry : table) {
    while (cached != cached_end && cached->id < entry.id) ++cached;
    const bool hit = reusable && cached != cached_end &&
                     cached->id == entry.id && now < cached->valid_until &&
                     cached->reserve_bw == entry.view.reserve_bandwidth &&
                     cached->prev == entry.view.prev_cell &&
                     cached->entered_at == entry.view.entered_cell_at;
    if (hit) {
      scratch_.push_back(*cached);
      ++terms_reused_;
      telemetry::bump(tel_reused_);
    } else {
      scratch_.push_back(
          make_term(source, target, entry, estimator, now, t_est));
      ++terms_recomputed_;
      telemetry::bump(tel_recomputed_);
    }
    // Accumulate in table order onto the caller's running sum — the exact
    // association order of the scratch rescan, so the cached path is
    // bit-identical, not approximately equal.
    running += scratch_.back().value;
  }
  pair.terms.swap(scratch_);
  pair.estimator_version = version;
  pair.t_est = t_est;
  // A completed walk re-derived every term from the live table, so any
  // degraded-mode stale mark is now discharged (post-heal re-sync).
  pair.stale = false;
  return running;
}

void IncrementalEngine::mark_stale(geom::CellId source, geom::CellId target) {
  PairCache& pair = pairs_[pair_key(source, target)];
  if (!pair.stale) {
    pair.stale = true;
    ++pairs_invalidated_;
  }
  pair.terms.clear();
}

bool IncrementalEngine::is_stale(geom::CellId source,
                                 geom::CellId target) const {
  const auto it = pairs_.find(pair_key(source, target));
  return it != pairs_.end() && it->second.stale;
}

}  // namespace pabr::reservation
