// Incremental target-reservation engine — the fast path behind
// AdmissionContext::recompute_reservation.
//
// Every AC1/AC2/AC3 admission test evaluates Eq. (6): for the target cell,
// each adjacent cell contributes Eq. (5), a sum of b * p_h over ALL of its
// active connections. Done from scratch (the paper's §6.2 complexity
// concern, bench/fig13_ncalc_complexity), each term costs a per-connection
// record fetch plus two or three binary searches into the estimation
// function — O(adjacent x connections x log N_quad) per admission test.
//
// The engine exploits two facts:
//
//   1. p_h is a ratio of step-function lookups, so each term b * p_h is
//      piecewise CONSTANT in simulation time: it can only change when the
//      connection's extant sojourn (or sojourn + T_est) crosses the next
//      sample point of the estimation function
//      (hoef::ProbeResult::valid_until), when the estimation function
//      itself changes (hoef::HandoffEstimator::state_version), when the
//      target's T_est steps, or when the connection moves or changes QoS.
//
//   2. Between admissions only a handful of connections change state, so
//      almost every cached term is still bitwise-exact.
//
// Each (source cell -> target cell) pair keeps a term cache mirroring the
// source cell's id-sorted connection table. A recomputation first tries
// the all-hit fast path: when the cached terms mirror the live table
// one-to-one and none has expired, it sums the cached values in table
// order with no copying at all — the steady-state case. On the first
// divergence it falls back to the merge walk: unchanged, unexpired terms
// are reused verbatim; new/expired/changed ones are recomputed via the
// estimator probes. Either way the returned B_r accumulates term-by-term
// in table order into the caller's running sum — the exact association
// order of the scratch rescan — so the fast path is bit-identical to
// recomputing from scratch, not merely close
// (tests/reservation_incremental_test.cc asserts this).
//
// Estimators with a finite T_int drift with wall-clock time (their
// snapshots are rebuilt as t0 advances), so their terms are never cached
// (supports_caching() == false) — the walk then degrades gracefully to a
// dense-table rescan, still avoiding the per-connection hash lookups the
// scratch path of old performed.
//
// Pair caches live in an open-addressed, linearly probed hash table
// (power-of-two capacity, key = packed source<<32|target mixed through a
// splitmix64 finalizer) instead of a std::unordered_map: one predictable
// probe sequence over a dense slot array per accumulate() call, no
// per-node allocation. Degraded-mode invalidation (mark_stale) DELETES
// the pair's slot via backward-shift, so the table never accumulates
// tombstones; staleness itself is tracked in a small sorted key set that
// the next completed accumulate() discharges (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/topology.h"
#include "hoef/estimator.h"
#include "sim/time.h"
#include "telemetry/metrics.h"
#include "traffic/connection.h"

namespace pabr::reservation {

class IncrementalEngine {
 public:
  /// Next cell a route-known mobile camped in `cell` and moving in
  /// `direction` will enter (the §7 ITS/GPS extension); may be null when
  /// the deployment has no route-known mobiles (e.g. the hex grid).
  using RouteNextFn = std::function<geom::CellId(geom::CellId cell,
                                                 int direction)>;

  explicit IncrementalEngine(RouteNextFn route_next = nullptr)
      : route_next_(std::move(route_next)) {}

  /// Adds Eq. (5) — the expected hand-in bandwidth from `source` into
  /// `target` within the target's `t_est` — onto `running`, term by term
  /// in connection-id order, and returns the new running sum. `table` and
  /// `estimator` belong to the source cell. Served from the pair's term
  /// cache; bitwise-identical to a from-scratch rescan.
  double accumulate(geom::CellId source, geom::CellId target,
                    const std::vector<traffic::ConnectionEntry>& table,
                    const hoef::HandoffEstimator& estimator, sim::Time now,
                    sim::Duration t_est, double running);

  /// Degraded mode (fault injection): declares the (source -> target)
  /// pair's cached terms untrusted — the source cell could not be
  /// consulted, so the terms no longer track its table. Deletes the
  /// pair's table slot (backward-shift, no tombstone); the stale mark
  /// stays up until the next successful accumulate() over the pair (the
  /// post-heal re-sync), which the core system audits bitwise against a
  /// from-scratch rescan.
  void mark_stale(geom::CellId source, geom::CellId target);
  bool is_stale(geom::CellId source, geom::CellId target) const;
  /// Pairs ever marked stale (monotone; telemetry/diagnostics).
  std::uint64_t pairs_invalidated() const { return pairs_invalidated_; }

  // Diagnostics: how many per-connection terms were recomputed vs served
  // from cache since construction.
  std::uint64_t terms_recomputed() const { return terms_recomputed_; }
  std::uint64_t terms_reused() const { return terms_reused_; }

  /// Sorted keys of pairs currently marked stale (snapshot payload).
  const std::vector<std::uint64_t>& stale_keys() const { return stale_keys_; }

  /// Snapshot restore onto a freshly constructed engine: reinstates the
  /// degraded-mode marks and the monotone tallies but NOT the pair term
  /// caches — accumulate() is bitwise-identical to a from-scratch rescan,
  /// so a resumed run repopulates the caches on first use and every
  /// post-heal audit still passes. Only terms_reused/terms_recomputed
  /// diverge from the uninterrupted run (documented in DESIGN.md §13).
  void restore(std::vector<std::uint64_t> stale_keys,
               std::uint64_t pairs_invalidated, std::uint64_t terms_recomputed,
               std::uint64_t terms_reused) {
    stale_keys_ = std::move(stale_keys);
    pairs_invalidated_ = pairs_invalidated;
    terms_recomputed_ = terms_recomputed;
    terms_reused_ = terms_reused;
  }

  /// Mirrors the per-term recompute/reuse tallies onto telemetry counters
  /// (telemetry/metrics.h). Null pointers detach; bumps are no-ops until
  /// bound and fold away entirely when telemetry is compiled out.
  void bind_telemetry(telemetry::Counter* recomputed,
                      telemetry::Counter* reused) {
    tel_recomputed_ = recomputed;
    tel_reused_ = reused;
  }

 private:
  struct TermEntry {
    traffic::ConnectionId id = 0;
    double value = 0.0;  ///< b * p_h, bitwise what the scratch path yields
    sim::Time valid_until = 0.0;  ///< first time the value may change
    // Change fingerprint: any difference means the connection moved,
    // re-entered, or changed its reservation bandwidth since caching.
    traffic::Bandwidth reserve_bw = 0;
    geom::CellId prev = geom::kNoCell;
    sim::Time entered_at = 0.0;
  };

  struct PairCache {
    std::uint64_t estimator_version = ~std::uint64_t{0};
    sim::Duration t_est = -1.0;
    std::vector<TermEntry> terms;  // id-sorted, mirrors the source table
  };

  /// Open-addressed (source -> target) pair table: linear probing over a
  /// power-of-two slot array, no tombstones (erase backward-shifts the
  /// probe run). The packed pair key reserves ~0 (kNoCell twice) as the
  /// empty-slot marker; valid cell ids never produce it.
  class PairTable {
   public:
    static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

    PairCache& find_or_insert(std::uint64_t key);
    PairCache* find(std::uint64_t key);
    const PairCache* find(std::uint64_t key) const;
    void erase(std::uint64_t key);
    std::size_t size() const { return size_; }

   private:
    struct Slot {
      std::uint64_t key = kEmptyKey;
      PairCache cache;
    };

    std::size_t probe_start(std::uint64_t key) const;
    void grow();

    std::vector<Slot> slots_;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;  // slots_.size() - 1 (power of two)
  };

  TermEntry make_term(geom::CellId source, geom::CellId target,
                      const traffic::ConnectionEntry& entry,
                      const hoef::HandoffEstimator& estimator, sim::Time now,
                      sim::Duration t_est) const;

  PairTable pairs_;
  /// Sorted keys of pairs in degraded mode (mark_stale .. next completed
  /// accumulate). Tiny: only faulted pairs ever enter.
  std::vector<std::uint64_t> stale_keys_;
  std::vector<TermEntry> scratch_;  // reused merge buffer
  std::size_t max_table_seen_ = 0;  // pre-sizes scratch_ across pairs
  RouteNextFn route_next_;
  std::uint64_t terms_recomputed_ = 0;
  std::uint64_t terms_reused_ = 0;
  std::uint64_t pairs_invalidated_ = 0;
  telemetry::Counter* tel_recomputed_ = nullptr;
  telemetry::Counter* tel_reused_ = nullptr;
};

}  // namespace pabr::reservation
