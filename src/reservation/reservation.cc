#include "reservation/reservation.h"

#include "util/check.h"

namespace pabr::reservation {

double expected_handin_bandwidth(
    const hoef::HandoffEstimator& estimator,
    const std::vector<ActiveConnectionView>& connections,
    geom::CellId target, sim::Time now, sim::Duration t_est_target) {
  PABR_CHECK(t_est_target >= 0.0, "negative estimation window");
  double sum = 0.0;
  for (const ActiveConnectionView& c : connections) {
    const double ph = estimator.handoff_probability(
        now, c.prev, target, c.extant_sojourn, t_est_target);
    sum += static_cast<double>(c.bandwidth) * ph;
  }
  return sum;
}

}  // namespace pabr::reservation
