// Target-reservation bandwidth computation (paper §4.1, Eqs. 5-6).
//
// For a target cell 0 with adjacent cells A_0, each adjacent cell i
// contributes
//
//   B_{i,0} = sum_{j in C_i} b(C_{i,j}) * p_h(C_{i,j} -> 0)      (Eq. 5)
//
// and the target reservation bandwidth of cell 0 is
//
//   B_{r,0} = sum_{i in A_0} B_{i,0}                              (Eq. 6)
//
// where p_h is evaluated with the *target* cell's estimation window
// T_est,0 (§4.1: "the estimation time T_est of cell next ... will be used
// in Eq. (4)").
#pragma once

#include <vector>

#include "geom/topology.h"
#include "hoef/estimator.h"
#include "sim/time.h"
#include "traffic/connection.h"

namespace pabr::reservation {

/// What the reservation maths needs to know about one active connection in
/// an adjacent cell.
struct ActiveConnectionView {
  geom::CellId prev = geom::kNoCell;      ///< cell resided in before current
  sim::Duration extant_sojourn = 0.0;     ///< time spent in current cell
  traffic::Bandwidth bandwidth = 0;
};

/// Eq. (5): expected hand-in bandwidth into `target` from the cell whose
/// estimator and active connections are given, within `t_est_target`.
double expected_handin_bandwidth(
    const hoef::HandoffEstimator& estimator,
    const std::vector<ActiveConnectionView>& connections,
    geom::CellId target, sim::Time now, sim::Duration t_est_target);

}  // namespace pabr::reservation
