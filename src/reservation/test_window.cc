#include "reservation/test_window.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pabr::reservation {

const char* step_policy_name(StepPolicy p) {
  switch (p) {
    case StepPolicy::kFixed:
      return "fixed";
    case StepPolicy::kAdditive:
      return "additive";
    case StepPolicy::kMultiplicative:
      return "multiplicative";
  }
  return "?";
}

TestWindowController::TestWindowController(TestWindowConfig config)
    : config_(config) {
  PABR_CHECK(config.phd_target > 0.0 && config.phd_target <= 1.0,
             "P_HD,target out of (0,1]");
  PABR_CHECK(config.t_start >= config.t_min, "T_start below T_min");
  PABR_CHECK(config.t_max >= config.t_start, "T_max below T_start");
  w_ = static_cast<std::uint64_t>(std::ceil(1.0 / config.phd_target));
  PABR_CHECK(w_ >= 1, "degenerate observation window");
  w_obs_ = w_;
  t_est_ = config.t_start;
}

sim::Duration TestWindowController::next_step(int direction) {
  if (direction == last_direction_) {
    ++streak_;
  } else {
    last_direction_ = direction;
    streak_ = 1;
  }
  switch (config_.step_policy) {
    case StepPolicy::kFixed:
      return 1.0;
    case StepPolicy::kAdditive:
      return static_cast<double>(streak_);
    case StepPolicy::kMultiplicative:
      return std::ldexp(1.0, std::min(streak_ - 1, 30));
  }
  return 1.0;
}

void TestWindowController::on_handoff(bool dropped,
                                      sim::Duration t_soj_max) {
  ++n_h_;  // line 05
  if (dropped) {
    ++n_hd_;                      // line 07
    if (n_hd_ > w_obs_ / w_) {    // line 08 (quota = W_obs / W)
      w_obs_ += w_;               // line 09
      // Line 10, with the widening rail at min(T_soj,max, t_max): the
      // dynamic bound from the estimation functions and the configured
      // ceiling both pin T_est.
      const sim::Duration cap = std::min(t_soj_max, config_.t_max);
      if (t_est_ < cap) {
        t_est_ = std::min(t_est_ + next_step(+1), cap);
      }
    }
  } else if (n_h_ > w_obs_) {     // line 13
    if (n_hd_ < w_obs_ / w_ && t_est_ > config_.t_min) {  // line 14
      t_est_ = std::max(t_est_ - next_step(-1), config_.t_min);  // line 15
    }
    w_obs_ = w_;                  // line 16
    n_h_ = 0;
    n_hd_ = 0;
  }
}

}  // namespace pabr::reservation
