// The mobility-estimation time window controller of §4.2 — a line-for-line
// transcription of the paper's Fig. 6 pseudocode.
//
//   01. W := ceil(1 / P_HD,target); W_obs := W
//   02. T_est := T_start; n_H := 0; n_HD := 0
//   03. while (time increases) {
//   04.   if (hand-off into the current cell happens) then {
//   05.     n_H := n_H + 1
//   06.     if (it is dropped) then {
//   07.       n_HD := n_HD + 1
//   08.       if (n_HD > W_obs / W) then {
//   09.         W_obs := W_obs + W
//   10.         if (T_est < T_soj,max) then T_est := T_est + 1
//   11.       }
//   12.     }
//   13.     else if (n_H > W_obs) then {
//   14.       if (n_HD < W_obs / W and T_est > 1) then
//   15.         T_est := T_est - 1
//   16.       W_obs := W; n_H := 0; n_HD := 0
//   17.     }
//   18.   }
//   19. }
//
// The controller widens T_est by 1 s on every hand-off drop beyond the
// permitted quota (growing the observation window so repeated drops keep
// pushing), and narrows it by 1 s when a full window of W_obs hand-offs
// completes with fewer than the permitted drops. T_est never exceeds
// min(T_soj,max, t_max) — T_soj,max is the largest sojourn seen by the
// adjacent cells' estimation functions (larger values are meaningless)
// and t_max is the configured ceiling — and never goes below t_min
// ("our scheme will reserve virtually no bandwidth" otherwise).
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace pabr::reservation {

/// How far T_est moves per adjustment. The paper fixed both step sizes at
/// 1 s after experimenting with additive (1,2,3,...) and multiplicative
/// (1,2,4,...) growth for consecutive same-direction steps and finding
/// they "cause over-reactions, and make the reserved bandwidth fluctuate
/// severely" (§4.2). The alternatives are kept for the ablation bench.
enum class StepPolicy {
  kFixed,           ///< always 1 s (the paper's choice)
  kAdditive,        ///< 1, 2, 3, ... for consecutive same-direction steps
  kMultiplicative,  ///< 1, 2, 4, ... for consecutive same-direction steps
};

const char* step_policy_name(StepPolicy p);

struct TestWindowConfig {
  /// P_HD,target.
  double phd_target = 0.01;
  /// T_start: initial estimation window (seconds).
  sim::Duration t_start = 1.0;
  /// Lower clamp for T_est (the paper fixes it to 1 s).
  sim::Duration t_min = 1.0;
  /// Configured upper clamp for T_est, applied on top of the dynamic
  /// T_soj,max bound. The paper relies on T_soj,max alone; a finite t_max
  /// caps the controller when the observed sojourns are unbounded (e.g.
  /// heavy-tailed dwell times) so a drop burst cannot ratchet T_est — and
  /// with it the reserved bandwidth — without limit.
  sim::Duration t_max = sim::kInfiniteDuration;
  /// Step-size growth rule (see above).
  StepPolicy step_policy = StepPolicy::kFixed;
};

class TestWindowController {
 public:
  explicit TestWindowController(TestWindowConfig config);

  /// Feeds one observed hand-off into the cell. `dropped` flags a hand-off
  /// drop; `t_soj_max` is the current T_soj,max bound from the adjacent
  /// cells' estimation functions.
  void on_handoff(bool dropped, sim::Duration t_soj_max);

  sim::Duration t_est() const { return t_est_; }

  // Introspection for tests and traces.
  std::uint64_t window_size() const { return w_obs_; }
  std::uint64_t handoffs_in_window() const { return n_h_; }
  std::uint64_t drops_in_window() const { return n_hd_; }
  std::uint64_t base_window() const { return w_; }

  /// Snapshot save/restore of the full controller state. W itself is
  /// derived from the config and not part of the state.
  struct State {
    std::uint64_t w_obs = 0;
    std::uint64_t n_h = 0;
    std::uint64_t n_hd = 0;
    sim::Duration t_est = 0.0;
    int last_direction = 0;
    int streak = 0;
  };
  State state() const {
    return State{w_obs_, n_h_, n_hd_, t_est_, last_direction_, streak_};
  }
  void restore(const State& s) {
    w_obs_ = s.w_obs;
    n_h_ = s.n_h;
    n_hd_ = s.n_hd;
    t_est_ = s.t_est;
    last_direction_ = s.last_direction;
    streak_ = s.streak;
  }

 private:
  /// Step size for the next move in `direction` (+1 = widen, -1 =
  /// narrow), growing per the configured policy on consecutive
  /// same-direction moves.
  sim::Duration next_step(int direction);

  TestWindowConfig config_;
  std::uint64_t w_;      // W  = ceil(1 / P_HD,target)
  std::uint64_t w_obs_;  // W_obs
  std::uint64_t n_h_ = 0;
  std::uint64_t n_hd_ = 0;
  sim::Duration t_est_;
  int last_direction_ = 0;
  int streak_ = 0;
};

}  // namespace pabr::reservation
