#include "sim/event_queue.h"

#include "util/check.h"

namespace pabr::sim {

EventHandle EventQueue::schedule(Time when, Callback cb) {
  PABR_CHECK(cb != nullptr, "scheduling a null callback");
  const std::uint64_t id = next_id_++;
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, id, std::move(cb)});
  live_ids_.emplace(id, PendingInfo{when, seq});
  ++live_count_;
  return EventHandle{id};
}

bool EventQueue::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (live_ids_.erase(handle.id_) == 0) return false;  // fired or cancelled
  cancelled_.insert(handle.id_);
  PABR_CHECK(live_count_ > 0, "cancel with no live events");
  --live_count_;
  return true;
}

bool EventQueue::is_dead(const Entry& e) const {
  return cancelled_.count(e.id) != 0;
}

void EventQueue::drop_dead() {
  while (!heap_.empty() && is_dead(heap_.top())) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  drop_dead();
  PABR_CHECK(!heap_.empty(), "next_time on empty queue");
  return heap_.top().when;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  drop_dead();
  PABR_CHECK(!heap_.empty(), "pop on empty queue");
  Entry top = heap_.top();
  heap_.pop();
  live_ids_.erase(top.id);
  PABR_CHECK(live_count_ > 0, "pop with live_count_ == 0");
  --live_count_;
  return {top.when, std::move(top.cb)};
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  live_ids_.clear();
  cancelled_.clear();
  live_count_ = 0;
}

std::optional<EventQueue::PendingInfo> EventQueue::pending(
    EventHandle handle) const {
  if (!handle.valid()) return std::nullopt;
  const auto it = live_ids_.find(handle.id_);
  if (it == live_ids_.end()) return std::nullopt;
  return it->second;
}

void EventQueue::advance_counters(std::uint64_t next_seq,
                                  std::uint64_t next_id) {
  PABR_CHECK(next_seq >= next_seq_ && next_id >= next_id_,
             "counters may only advance");
  next_seq_ = next_seq;
  next_id_ = next_id;
}

}  // namespace pabr::sim
