// A cancellable priority queue of timestamped events.
//
// Ties are broken by insertion sequence number so that runs are fully
// deterministic: two events scheduled for the same instant fire in the
// order they were scheduled.
//
// Cancellation is lazy: `cancel` marks the entry dead and the queue drops
// dead entries when they surface, which keeps `schedule` and `pop` at
// O(log n) without a secondary index.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace pabr::sim {

/// Identifies a scheduled event for cancellation. Default-constructed
/// handles are inert.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return id_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Fire time and insertion sequence of a still-pending event
  /// (snapshot introspection: the sequence is what reproduces same-time
  /// tie-break order across a save/restore cycle).
  struct PendingInfo {
    Time when = 0.0;
    std::uint64_t seq = 0;
  };

  /// Schedules `cb` to fire at absolute time `when`.
  EventHandle schedule(Time when, Callback cb);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a no-op. Returns true when the event was
  /// still pending.
  bool cancel(EventHandle handle);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Timestamp of the earliest pending event; undefined when empty.
  Time next_time();

  /// Removes and returns the earliest pending event.
  /// Precondition: !empty().
  std::pair<Time, Callback> pop();

  /// Drops every pending event.
  void clear();

  /// Fire time + insertion sequence of a pending event; nullopt when the
  /// handle is inert, fired or cancelled.
  std::optional<PendingInfo> pending(EventHandle handle) const;

  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t next_id() const { return next_id_; }

  /// Fast-forwards the sequence/id counters to the values a saved run
  /// had reached (monotone only). Restoring a snapshot re-schedules the
  /// pending events in ascending original-sequence order — which gives
  /// them fresh consecutive sequences preserving their relative order,
  /// all below the saved next_seq — and then advances the counters here
  /// so post-resume events sort exactly as in the uninterrupted run.
  void advance_counters(std::uint64_t next_seq, std::uint64_t next_id);

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    std::uint64_t id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void drop_dead();
  bool is_dead(const Entry& e) const;

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids still pending in the heap mapped to their fire time + insertion
  // sequence; an id leaves this map when it fires or is cancelled.
  // Bounded by the number of pending events.
  std::unordered_map<std::uint64_t, PendingInfo> live_ids_;
  // Cancelled ids whose heap entries have not surfaced yet.
  std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace pabr::sim
