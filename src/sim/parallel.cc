#include "sim/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace pabr::sim {

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const std::size_t workers =
      std::min(static_cast<std::size_t>(threads), n);
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (i < error_index) {
          error_index = i;
          error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (std::thread& t : pool) t.join();

  if (error) std::rethrow_exception(error);
}

}  // namespace pabr::sim
