// Deterministic fork-join parallelism for the experiment drivers.
//
// Replications and sweep points are embarrassingly parallel — each one
// owns its own CellularSystem seeded independently — but the paper's
// tables must stay byte-identical whatever the thread count. The helpers
// here guarantee that by construction:
//
//   * every task index runs exactly once, against its own slot of the
//     result vector (no shared accumulator, no reduction ordering);
//   * tasks are handed out by a single atomic counter — no work stealing,
//     no per-thread queues — so which *thread* runs a task is the only
//     nondeterminism, and it is unobservable;
//   * callers aggregate the slotted results in index order afterwards,
//     which is exactly the sequential order.
//
// `threads <= 1` (or n <= 1) runs inline on the calling thread with no
// pool at all, keeping the sequential path allocation-identical to the
// pre-parallel code. Exceptions thrown by tasks are captured and the
// first (lowest-index) one is rethrown on the calling thread after join.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace pabr::sim {

/// Number of hardware threads, at least 1 (0 from the runtime maps to 1).
int hardware_threads();

/// Runs fn(i) for every i in [0, n) using up to `threads` OS threads
/// (including the calling thread). fn must be safe to call concurrently
/// for distinct i. Blocks until all n calls finished; rethrows the
/// lowest-index exception if any task threw.
void parallel_for(int threads, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// parallel_for that collects fn(i) into a vector indexed by i — the
/// result is independent of the thread count and equals the sequential
/// {fn(0), fn(1), ...}.
template <typename T, typename Fn>
std::vector<T> parallel_map(int threads, std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(threads, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace pabr::sim
