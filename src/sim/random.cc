#include "sim/random.h"

#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/digest.h"

namespace pabr::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

double Rng::uniform01() {
  // 53-bit mantissa construction keeps the stream platform-stable.
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PABR_CHECK(lo <= hi, "uniform: inverted bounds");
  return lo + (hi - lo) * uniform01();
}

int Rng::uniform_int(int lo, int hi) {
  PABR_CHECK(lo <= hi, "uniform_int: inverted bounds");
  const auto span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1;
  return lo + static_cast<int>(engine_() % span);
}

double Rng::exponential(double mean) {
  PABR_CHECK(mean > 0.0, "exponential: non-positive mean");
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::bernoulli(double p) {
  PABR_CHECK(p >= 0.0 && p <= 1.0, "bernoulli: p out of [0,1]");
  return uniform01() < p;
}

std::uint64_t derive_seed(std::uint64_t run_seed,
                          std::string_view stream_name) {
  const std::uint64_t h =
      util::fnv1a_bytes(stream_name.data(), stream_name.size());
  return splitmix64(h ^ splitmix64(run_seed));
}

std::string Rng::save_state() const {
  // mt19937_64's stream inserter is standard-mandated to be an exact
  // textual encoding of the engine state (classic locale, decimal),
  // round-tripping bit-for-bit through the extractor on any platform.
  std::ostringstream os;
  os.imbue(std::locale::classic());
  os << engine_;
  return os.str();
}

void Rng::load_state(const std::string& state) {
  std::istringstream is(state);
  is.imbue(std::locale::classic());
  is >> engine_;
  PABR_CHECK(!is.fail(), "malformed mt19937_64 state string");
}

}  // namespace pabr::sim
