// Seeded random number streams for the simulation.
//
// Each stochastic process (arrivals, lifetimes, speeds, ...) draws from
// its own named stream derived from the run seed, so adding a new consumer
// does not perturb the samples seen by existing ones — this keeps paired
// comparisons between admission-control schemes low-variance.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

namespace pabr::sim {

/// One PRNG stream (xoshiro-quality via std::mt19937_64) with the
/// distributions the paper's workload model needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform01();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// True with probability p in [0, 1].
  bool bernoulli(double p);

  std::mt19937_64& engine() { return engine_; }

  /// Full engine state as the standard's exact textual encoding
  /// (value-serializable; load_state() restores it so the next N draws
  /// are identical on any platform — snapshot/restore contract).
  std::string save_state() const;
  void load_state(const std::string& state);

 private:
  std::mt19937_64 engine_;
};

/// Derives a child seed for a named stream from a run seed; stable across
/// platforms (FNV-1a over the name mixed with the seed, splitmix64 finisher).
std::uint64_t derive_seed(std::uint64_t run_seed, std::string_view stream_name);

/// Factory for named, independent streams of one simulation run.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t run_seed) : run_seed_(run_seed) {}

  Rng make(std::string_view stream_name) const {
    return Rng{derive_seed(run_seed_, stream_name)};
  }

  std::uint64_t run_seed() const { return run_seed_; }

 private:
  std::uint64_t run_seed_;
};

}  // namespace pabr::sim
