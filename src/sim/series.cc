#include "sim/series.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pabr::sim {

void Series::add(Time t, double v) {
  PABR_CHECK(points_.empty() || t >= points_.back().t,
             "Series: time went backwards");
  points_.push_back(Point{t, v});
}

double Series::value_at(Time t, double fallback) const {
  if (points_.empty() || t < points_.front().t) return fallback;
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](Time lhs, const Point& rhs) { return lhs < rhs.t; });
  return std::prev(it)->v;
}

std::vector<Series::Point> Series::thinned(std::size_t max_points) const {
  PABR_CHECK(max_points >= 2, "thinned: need at least two points");
  if (points_.size() <= max_points) return points_;
  std::vector<Point> out;
  const std::size_t stride =
      (points_.size() + max_points - 1) / max_points;
  for (std::size_t i = 0; i < points_.size(); i += stride) {
    out.push_back(points_[i]);
  }
  if (out.back().t != points_.back().t) out.push_back(points_.back());
  return out;
}

BucketedSeries::BucketedSeries(std::string name, Duration bucket_width)
    : name_(std::move(name)), width_(bucket_width) {
  PABR_CHECK(bucket_width > 0.0, "BucketedSeries: non-positive width");
}

void BucketedSeries::add(Time t, double v) {
  PABR_CHECK(t >= 0.0, "BucketedSeries: negative time");
  const auto idx = static_cast<std::size_t>(std::floor(t / width_));
  if (idx >= sums_.size()) sums_.resize(idx + 1, {0.0, 0});
  sums_[idx].first += v;
  sums_[idx].second += 1;
}

std::vector<BucketedSeries::Bucket> BucketedSeries::buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < sums_.size(); ++i) {
    const auto& [sum, n] = sums_[i];
    if (n == 0) continue;
    out.push_back(Bucket{width_ * static_cast<double>(i),
                         sum / static_cast<double>(n), n});
  }
  return out;
}

}  // namespace pabr::sim
