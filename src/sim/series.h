// Time-series recording for the paper's trace figures (Figs. 10, 11, 14).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace pabr::sim {

/// An append-only (time, value) series.
class Series {
 public:
  struct Point {
    Time t;
    double v;
  };

  explicit Series(std::string name) : name_(std::move(name)) {}

  void add(Time t, double v);
  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Last value at or before t; `fallback` when the series is empty or t
  /// precedes the first sample.
  double value_at(Time t, double fallback = 0.0) const;

  /// Downsamples to at most `max_points` by keeping every k-th sample
  /// (always keeping the last). Used when printing long traces.
  std::vector<Point> thinned(std::size_t max_points) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

/// Aggregates samples into fixed-duration buckets and reports per-bucket
/// means — the paper's Fig. 14(b) reports hourly-averaged probabilities.
class BucketedSeries {
 public:
  BucketedSeries(std::string name, Duration bucket_width);

  void add(Time t, double v);

  struct Bucket {
    Time start;
    double mean;
    std::uint64_t samples;
  };
  std::vector<Bucket> buckets() const;
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Duration width_;
  // bucket index -> (sum, count); indices are non-negative.
  std::vector<std::pair<double, std::uint64_t>> sums_;
};

}  // namespace pabr::sim
