// Per-shard event calendar for the sharded executor (DESIGN.md §12).
//
// Every future simulation event is keyed by the composite
// (time, kind, cell, connection id) and popped in strictly ascending key
// order. The key is a TOTAL order — no two live events ever share all
// four fields — so the pop sequence is the sorted sequence regardless of
// insertion order. That property is what makes cross-shard message
// drains safe: a transfer inserted at a slot barrier lands in exactly
// the position it would have occupied had it been scheduled locally.
//
// Unlike sim::Simulator's handle-based queue, events here are
// self-contained: each carries the full mobile snapshot it operates on,
// so a mobile IS its next event and no shared mobile table (or
// cross-shard cancellation protocol) exists. Exactly one future event
// exists per mobile at any time — the expiry-vs-crossing race is decided
// at attach time, when both times are already known.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geom/topology.h"
#include "sim/time.h"
#include "traffic/connection.h"

namespace pabr::sim::sharded {

/// Kind tags double as tie-break priorities at equal times (departures
/// before arrivals before expiries; arrival ticks first).
enum class EventKind : std::uint8_t {
  kArrivalTick = 0,  ///< next Poisson arrival of a cell's own process
  kDepart = 1,       ///< mobile leaves `cell` (source half of a crossing)
  kArrive = 2,       ///< mobile hands into `cell` (target half)
  kExpiry = 3,       ///< connection lifetime ends in `cell`
};

/// Everything the owning shard needs to act on a mobile: its identity,
/// service, kinematics, and the current stay (prev cell + entry time).
struct MobileSnapshot {
  traffic::ConnectionId id = 0;
  traffic::ServiceClass service = traffic::ServiceClass::kVoice;
  double speed_kmh = 0.0;
  geom::CellId prev = geom::kNoCell;  ///< cell resided in before this stay
  sim::Time entered_at = 0.0;         ///< start of the current stay
  sim::Time expires_at = 0.0;         ///< absolute lifetime deadline

  traffic::Bandwidth bandwidth() const {
    return traffic::bandwidth_of(service);
  }
};

struct PendingEvent {
  sim::Time time = 0.0;
  EventKind kind = EventKind::kArrivalTick;
  geom::CellId cell = geom::kNoCell;  ///< cell whose state the event mutates
  traffic::ConnectionId id = 0;       ///< 0 for arrival ticks
  MobileSnapshot mobile;              ///< valid for depart/arrive/expiry
  geom::CellId to = geom::kNoCell;    ///< crossing destination (kDepart)
};

/// Strict (time, kind, cell, id) ordering; `a` fires before `b`.
inline bool event_before(const PendingEvent& a, const PendingEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  if (a.cell != b.cell) return a.cell < b.cell;
  return a.id < b.id;
}

/// Binary min-heap over the composite key.
class EventCalendar {
 public:
  void push(PendingEvent e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), after_);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Heap array in storage (not pop) order — checkpoint writers sort a
  /// copy by event_before, which is total, so the result is canonical.
  const std::vector<PendingEvent>& raw() const { return heap_; }
  void clear() { heap_.clear(); }

  const PendingEvent& top() const { return heap_.front(); }

  PendingEvent pop() {
    std::pop_heap(heap_.begin(), heap_.end(), after_);
    PendingEvent e = heap_.back();
    heap_.pop_back();
    return e;
  }

 private:
  // std::*_heap keep the MAX element at front, so the comparator is the
  // reverse of event_before.
  static bool after_(const PendingEvent& a, const PendingEvent& b) {
    return event_before(b, a);
  }

  std::vector<PendingEvent> heap_;
};

}  // namespace pabr::sim::sharded
