// Configuration of the sharded hex-grid executor (DESIGN.md §12).
#pragma once

#include <string>

#include "core/hex_system.h"
#include "sim/time.h"

namespace pabr::sim::sharded {

struct ShardedConfig {
  /// The simulated system. The sharded executor reuses the hex system's
  /// components (cells, base stations, reservation engine, admission
  /// policies, fault injector, telemetry registry) but NOT its event
  /// loop; see DESIGN.md §12 for the documented semantic divergences
  /// (frozen neighbour state, per-cell RNG streams, barrier-time B_r).
  core::HexSystemConfig system;

  /// Worker/shard count. Results are bitwise-identical for ANY value;
  /// 1 <= shards <= rows*cols.
  int shards = 1;

  /// Simulated horizon (seconds) and measurement warm-up. Metrics are
  /// reset at the first slot boundary at or after `warmup_s` (slot-
  /// aligned so every shard count resets at the same instant).
  sim::Duration duration_s = 3600.0;
  sim::Duration warmup_s = 0.0;

  /// Conservative-lookahead override. 0 = derive the slot length from
  /// the mobility model: 3600 * cell_diameter / speed_max * (1 - jitter),
  /// the minimum possible cell traversal time, which guarantees every
  /// cross-shard hand-off is announced at least one barrier before it
  /// fires. A positive override must not exceed that bound.
  sim::Duration slot_override_s = 0.0;

  /// Run the per-shard invariant audit at every slot barrier (the
  /// sharded counterpart of HexSystemConfig::audit_every; that field is
  /// ignored here because event-count cadences are not shard-invariant).
  bool audit_at_barriers = false;

  /// Checkpoint cadence in simulated seconds (0 = never). Snapped to the
  /// slot grid: a snapshot is written at every slot-start barrier whose
  /// index is a multiple of ceil(checkpoint_every_s / slot). The state is
  /// serialized in global cell order at a barrier, so any shard count
  /// produces the identical file; checkpoint_path is overwritten each
  /// time (DESIGN.md §13).
  sim::Duration checkpoint_every_s = 0.0;
  std::string checkpoint_path;

  /// Path of a sharded snapshot to resume from ("" = fresh run). The
  /// snapshot's config digest and slot grid must match this config; the
  /// shard count is free to differ.
  std::string resume_from;
};

}  // namespace pabr::sim::sharded
