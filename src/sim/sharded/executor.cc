#include "sim/sharded/executor.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <cmath>
#include <exception>
#include <fstream>
#include <memory>
#include <thread>

#include "util/check.h"
#include "util/digest.h"

namespace pabr::sim::sharded {

namespace {

double ratio_of(std::uint64_t hits, std::uint64_t trials) {
  return trials == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(trials);
}

}  // namespace

ShardedExecutor::ShardedExecutor(ShardedConfig config)
    : config_(std::move(config)),
      grid_(config_.system.rows, config_.system.cols, config_.system.wrap),
      motion_(grid_, config_.system.motion),
      partition_(grid_.num_cells(), config_.shards) {
  PABR_CHECK(config_.system.capacity_bu > 0.0, "non-positive capacity");
  PABR_CHECK(config_.system.arrival_rate_per_cell >= 0.0,
             "negative arrival rate");
  PABR_CHECK(config_.system.voice_ratio >= 0.0 &&
                 config_.system.voice_ratio <= 1.0,
             "voice ratio out of [0,1]");
  PABR_CHECK(config_.system.speed_min_kmh > 0.0 &&
                 config_.system.speed_max_kmh >= config_.system.speed_min_kmh,
             "bad speed range");
  PABR_CHECK(config_.duration_s >= 0.0, "negative run duration");
  PABR_CHECK(config_.warmup_s >= 0.0 && config_.warmup_s <= config_.duration_s,
             "warm-up outside the run horizon");

  // Conservative lookahead: the fastest possible cell traversal.
  const auto& mc = config_.system.motion;
  const double min_traversal = 3600.0 * mc.cell_diameter_km /
                               config_.system.speed_max_kmh *
                               (1.0 - mc.jitter);
  PABR_CHECK(min_traversal > 0.0, "degenerate mobility: zero lookahead");
  slot_ = min_traversal;
  if (config_.slot_override_s > 0.0) {
    PABR_CHECK(config_.slot_override_s <= min_traversal,
               "slot override exceeds the conservative lookahead");
    slot_ = config_.slot_override_s;
  }

  num_slots_ = static_cast<std::uint64_t>(
      std::ceil(config_.duration_s / slot_));
  PABR_CHECK(num_slots_ == 0 ||
                 slot_ * static_cast<double>(num_slots_ - 1) <
                     config_.duration_s,
             "slot grid overshoots the horizon");
  if (config_.warmup_s > 0.0) {
    // Slot-aligned so every shard count resets at the same instant.
    reset_slot_ = static_cast<std::uint64_t>(
        std::ceil(config_.warmup_s / slot_));
    PABR_CHECK(reset_slot_ >= 1 && reset_slot_ < num_slots_,
               "warm-up leaves no measurement slots");
  }

  if (config_.checkpoint_every_s > 0.0) {
    PABR_CHECK(!config_.checkpoint_path.empty(),
               "checkpoint cadence set without a checkpoint path");
    checkpoint_period_ = static_cast<std::uint64_t>(
        std::ceil(config_.checkpoint_every_s / slot_));
  }

  const auto n = static_cast<std::size_t>(grid_.num_cells());
  shared_.grid = &grid_;
  shared_.motion = &motion_;
  shared_.partition = &partition_;
  shared_.frozen_used.assign(n, 0.0);
  shared_.frozen_t_est.assign(n, 0.0);
  shared_.frozen_max_soj.assign(n, 0.0);
  shared_.frozen_br.assign(n, 0.0);
  shared_.contrib_offset.reserve(n);
  std::size_t total_pairs = 0;
  for (geom::CellId c = 0; c < grid_.num_cells(); ++c) {
    shared_.contrib_offset.push_back(total_pairs);
    total_pairs += grid_.neighbors(c).size();
  }
  shared_.contrib.assign(total_pairs, 0.0);
  const auto s = static_cast<std::size_t>(partition_.shards());
  shared_.outbox.assign(s, std::vector<std::vector<PendingEvent>>(s));
}

ShardedResult ShardedExecutor::run() {
  const int num_shards = partition_.shards();
  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards.push_back(std::make_unique<Shard>(config_, shared_, s));
  }

  std::uint64_t start_slot = 0;
  if (!config_.resume_from.empty()) {
    std::ifstream is(config_.resume_from, std::ios::binary);
    PABR_CHECK(is.good(), "cannot open the resume snapshot");
    start_slot = restore_checkpoint(is, shards);
  }

  std::barrier sync(num_shards);
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(num_shards));
  std::atomic<bool> abort{false};

  const auto worker = [&](int s) {
    Shard& shard = *shards[static_cast<std::size_t>(s)];
    auto& error = errors[static_cast<std::size_t>(s)];
    // Each phase body is guarded so a throwing shard still reaches every
    // barrier of its slot; all workers then observe `abort` at the SAME
    // barrier (the flag is set before the thrower arrives, and the
    // barrier orders that store before the others' loads) and break
    // together.
    const auto guarded = [&](auto&& phase) {
      if (!abort.load(std::memory_order_relaxed)) {
        try {
          phase();
        } catch (...) {
          error = std::current_exception();
          abort.store(true, std::memory_order_relaxed);
        }
      }
      sync.arrive_and_wait();
      return !abort.load(std::memory_order_relaxed);
    };
    for (std::uint64_t k = start_slot; k < num_slots_; ++k) {
      const sim::Time t0 = slot_ * static_cast<double>(k);
      const sim::Time t1 =
          std::min(slot_ * static_cast<double>(k + 1), config_.duration_s);
      // Checkpoint barrier: every shard finished the previous slot's P4
      // (the trailing barrier provides the happens-before), so shard 0
      // can serialize the whole quiesced state before anyone moves on.
      if (checkpoint_period_ != 0 && k != start_slot &&
          k % checkpoint_period_ == 0) {
        const bool ok = guarded([&] {
          if (s == 0) {
            std::ofstream os(config_.checkpoint_path,
                             std::ios::binary | std::ios::trunc);
            PABR_CHECK(os.good(), "cannot open the checkpoint path");
            write_checkpoint(os, k, shards);
            PABR_CHECK(os.good(), "checkpoint write failed");
          }
        });
        if (!ok) break;
      }
      const bool ok =
          guarded([&] {
            shard.drain_and_publish(t0);
            if (reset_slot_ != 0 && k == reset_slot_) {
              shard.reset_measurements(t0);
            }
            if (config_.audit_at_barriers) shard.audit(t0);
          }) &&
          guarded([&] { shard.compute_contributions(t0); }) &&
          guarded([&] { shard.finalize_reservations(t0); }) &&
          guarded([&] { shard.process_events(t1); });
      if (!ok) break;
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_shards) - 1);
  for (int s = 1; s < num_shards; ++s) {
    threads.emplace_back(worker, s);
  }
  worker(0);
  for (auto& t : threads) t.join();
  const auto wall_end = std::chrono::steady_clock::now();

  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  const sim::Time end = config_.duration_s;
  if (config_.audit_at_barriers) {
    for (const auto& shard : shards) shard->audit(end);
  }

  ShardedResult result;
  result.wall_seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();

  core::SystemStatus st;
  double br_sum = 0.0;
  double bu_sum = 0.0;
  util::Fnv1a digest;
  const int n = grid_.num_cells();
  result.cells.reserve(static_cast<std::size_t>(n));
  for (geom::CellId c = 0; c < n; ++c) {
    const Shard& shard = *shards[static_cast<std::size_t>(partition_.owner(c))];
    const core::Cell& cell = shard.cell_state(c);
    const core::BaseStation& station = shard.station_state(c);
    const core::CellMetrics& m = shard.cell_metrics(c);

    core::CellStatus row;
    row.cell = c + 1;
    row.pcb = ratio_of(m.pcb.hits(), m.pcb.trials());
    row.phd = ratio_of(m.phd.hits(), m.phd.trials());
    row.t_est = station.window().t_est();
    row.br = station.current_reservation();
    row.bu = cell.used();
    row.br_avg = m.br_mean.mean(end);
    row.bu_avg = m.bu_mean.mean(end);
    row.requests = m.pcb.trials();
    row.blocks = m.pcb.hits();
    row.handoffs = m.phd.trials();
    row.drops = m.phd.hits();
    result.cells.push_back(row);

    st.requests += row.requests;
    st.blocks += row.blocks;
    st.handoffs += row.handoffs;
    st.drops += row.drops;
    br_sum += row.br_avg;
    bu_sum += row.bu_avg;

    digest.add_double(row.bu);
    digest.add_u64(static_cast<std::uint64_t>(cell.connection_count()));
    digest.add_double(row.br);
    digest.add_double(row.t_est);
    digest.add_u64(row.blocks);
    digest.add_u64(row.requests);
    digest.add_u64(row.drops);
    digest.add_u64(row.handoffs);
    digest.add_double(row.br_avg);
    digest.add_double(row.bu_avg);
  }
  st.pcb = ratio_of(st.blocks, st.requests);
  st.phd = ratio_of(st.drops, st.handoffs);
  st.br_avg = br_sum / static_cast<double>(n);
  st.bu_avg = bu_sum / static_cast<double>(n);

  // N_calc is a mean of integer per-admission counts: recover the exact
  // sums (integers, exact in double) and re-divide, so the merged value
  // is independent of how admissions were spread across shards.
  double calc_sum = 0.0;
  double admissions = 0.0;
  std::vector<telemetry::MetricsSnapshot> snaps;
  for (auto& shard : shards) {
    const auto& acc = shard->accountant();
    calc_sum +=
        acc.n_calc() * static_cast<double>(acc.admissions_observed());
    admissions += static_cast<double>(acc.admissions_observed());
    st.br_calculations += acc.total_br_calculations();
    result.events += shard->events_processed();
    result.active_connections += shard->active_connections();
    if (shard->telemetry().enabled()) {
      snaps.push_back(shard->telemetry().snapshot());
    }
  }
  st.n_calc = admissions == 0.0 ? 0.0 : calc_sum / admissions;
  result.status = st;
  if (!snaps.empty()) result.telemetry = telemetry::merge_snapshots(snaps);

  digest.add_u64(result.events);
  result.digest = digest.value();
  result.events_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(result.events) / result.wall_seconds
          : 0.0;
  return result;
}

}  // namespace pabr::sim::sharded
