// Deterministic cell-partitioned execution of the hex simulation
// (DESIGN.md §12).
//
// The executor partitions the grid into contiguous shards, runs one
// worker thread per shard, and advances simulated time in conservative
// slots of length
//
//   slot = 3600 * cell_diameter_km / speed_max_kmh * (1 - jitter)
//
// — the minimum possible cell traversal time. A mobile's crossing is
// scheduled (and its cross-shard arrival announced) the moment it
// attaches, so every inter-shard event is in its receiver's calendar at
// least one full slot before it can fire: no shard ever needs to roll
// back. Within a slot the four phases (drain/publish, Eq. 5
// contributions, Eq. 6 reservations, event processing) are separated by
// barriers; see shard.h for the phase contract and the determinism
// argument. Results are bitwise-identical for every shard count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/metrics.h"
#include "geom/hex_topology.h"
#include "mobility/hex_motion.h"
#include "sim/sharded/config.h"
#include "sim/sharded/partition.h"
#include "sim/sharded/shard.h"
#include "telemetry/metrics.h"

namespace pabr::sim::sharded {

struct ShardedResult {
  core::SystemStatus status;             ///< paper metrics, all cells
  std::vector<core::CellStatus> cells;   ///< per-cell rows, cell order
  /// FNV-1a over every cell's end state (occupancy, connection count,
  /// B_r^curr, T_est, P_CB / P_HD tallies, time-averaged B_r / B_u) and
  /// the event total. Equal digests <=> equal trajectories; this is the
  /// value the shard-count equivalence suite compares.
  std::uint64_t digest = 0;
  std::uint64_t events = 0;              ///< simulation events processed
  std::size_t active_connections = 0;    ///< mobiles alive at the horizon
  double wall_seconds = 0.0;             ///< host time inside the slot loop
  double events_per_second = 0.0;        ///< events / wall_seconds
  /// Per-shard registries merged via telemetry::merge_snapshots
  /// (counters sum, histograms merge bucket-wise). Empty when telemetry
  /// is disabled. Polled gauges are not synced and tracing is forced off
  /// — per-shard trace rings have no meaningful global order.
  telemetry::MetricsSnapshot telemetry;
};

class ShardedExecutor {
 public:
  explicit ShardedExecutor(ShardedConfig config);

  /// Runs the full horizon and returns the aggregated result. One-shot:
  /// construct a fresh executor per run.
  ShardedResult run();

  /// The conservative lookahead actually in force.
  sim::Duration slot_length() const { return slot_; }
  const geom::HexTopology& grid() const { return grid_; }
  const Partition& partition() const { return partition_; }

  /// Digest of everything that pins the trajectory: the hex system
  /// config plus the slot grid (duration, warm-up, slot override). The
  /// shard count is deliberately excluded — any count produces the same
  /// trajectory, the same checkpoint file, and may resume any file.
  static std::uint64_t config_digest(const ShardedConfig& config);

 private:
  /// Serializes the global state at the start of slot `slot` (all shards
  /// quiesced at the barrier; only shard 0's worker calls this). The
  /// payload is in global cell order / canonical event order, so it is
  /// byte-identical for every shard count. sharded/snapshot.cc.
  void write_checkpoint(std::ostream& os, std::uint64_t slot,
                        const std::vector<std::unique_ptr<Shard>>& shards);
  /// Restores a checkpoint onto freshly constructed shards and returns
  /// the slot index to resume at. sharded/snapshot.cc.
  std::uint64_t restore_checkpoint(
      std::istream& is, std::vector<std::unique_ptr<Shard>>& shards);

  ShardedConfig config_;
  geom::HexTopology grid_;
  mobility::HexMotion motion_;
  Partition partition_;
  SharedState shared_;
  sim::Duration slot_ = 0.0;
  std::uint64_t num_slots_ = 0;
  std::uint64_t reset_slot_ = 0;  ///< slot index of the warm-up reset (0 = none)
  std::uint64_t checkpoint_period_ = 0;  ///< in slots; 0 = never
};

}  // namespace pabr::sim::sharded
