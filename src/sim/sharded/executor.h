// Deterministic cell-partitioned execution of the hex simulation
// (DESIGN.md §12).
//
// The executor partitions the grid into contiguous shards, runs one
// worker thread per shard, and advances simulated time in conservative
// slots of length
//
//   slot = 3600 * cell_diameter_km / speed_max_kmh * (1 - jitter)
//
// — the minimum possible cell traversal time. A mobile's crossing is
// scheduled (and its cross-shard arrival announced) the moment it
// attaches, so every inter-shard event is in its receiver's calendar at
// least one full slot before it can fire: no shard ever needs to roll
// back. Within a slot the four phases (drain/publish, Eq. 5
// contributions, Eq. 6 reservations, event processing) are separated by
// barriers; see shard.h for the phase contract and the determinism
// argument. Results are bitwise-identical for every shard count.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.h"
#include "geom/hex_topology.h"
#include "mobility/hex_motion.h"
#include "sim/sharded/config.h"
#include "sim/sharded/partition.h"
#include "sim/sharded/shard.h"
#include "telemetry/metrics.h"

namespace pabr::sim::sharded {

struct ShardedResult {
  core::SystemStatus status;             ///< paper metrics, all cells
  std::vector<core::CellStatus> cells;   ///< per-cell rows, cell order
  /// FNV-1a over every cell's end state (occupancy, connection count,
  /// B_r^curr, T_est, P_CB / P_HD tallies, time-averaged B_r / B_u) and
  /// the event total. Equal digests <=> equal trajectories; this is the
  /// value the shard-count equivalence suite compares.
  std::uint64_t digest = 0;
  std::uint64_t events = 0;              ///< simulation events processed
  std::size_t active_connections = 0;    ///< mobiles alive at the horizon
  double wall_seconds = 0.0;             ///< host time inside the slot loop
  double events_per_second = 0.0;        ///< events / wall_seconds
  /// Per-shard registries merged via telemetry::merge_snapshots
  /// (counters sum, histograms merge bucket-wise). Empty when telemetry
  /// is disabled. Polled gauges are not synced and tracing is forced off
  /// — per-shard trace rings have no meaningful global order.
  telemetry::MetricsSnapshot telemetry;
};

class ShardedExecutor {
 public:
  explicit ShardedExecutor(ShardedConfig config);

  /// Runs the full horizon and returns the aggregated result. One-shot:
  /// construct a fresh executor per run.
  ShardedResult run();

  /// The conservative lookahead actually in force.
  sim::Duration slot_length() const { return slot_; }
  const geom::HexTopology& grid() const { return grid_; }
  const Partition& partition() const { return partition_; }

 private:
  ShardedConfig config_;
  geom::HexTopology grid_;
  mobility::HexMotion motion_;
  Partition partition_;
  SharedState shared_;
  sim::Duration slot_ = 0.0;
  std::uint64_t num_slots_ = 0;
  std::uint64_t reset_slot_ = 0;  ///< slot index of the warm-up reset (0 = none)
};

}  // namespace pabr::sim::sharded
