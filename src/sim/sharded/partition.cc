#include "sim/sharded/partition.h"

#include "util/check.h"

namespace pabr::sim::sharded {

Partition::Partition(int num_cells, int shards)
    : num_cells_(num_cells), shards_(shards) {
  PABR_CHECK(num_cells >= 1, "partition over empty cell set");
  PABR_CHECK(shards >= 1 && shards <= num_cells,
             "shard count out of [1, num_cells]");
  base_ = num_cells / shards;
  wide_ = num_cells % shards;
  starts_.reserve(static_cast<std::size_t>(shards) + 1);
  geom::CellId at = 0;
  for (int s = 0; s < shards; ++s) {
    starts_.push_back(at);
    at += base_ + (s < wide_ ? 1 : 0);
  }
  starts_.push_back(at);
  PABR_CHECK(at == num_cells, "partition fenceposts do not cover the grid");
}

int Partition::owner(geom::CellId cell) const {
  PABR_CHECK(cell >= 0 && cell < num_cells_, "cell id out of range");
  const int wide_span = wide_ * (base_ + 1);
  if (cell < wide_span) return cell / (base_ + 1);
  return wide_ + (cell - wide_span) / base_;
}

}  // namespace pabr::sim::sharded
