// Contiguous cell partition for the sharded executor (DESIGN.md §12).
//
// Cells 0..n-1 are split into `shards` contiguous ranges whose sizes
// differ by at most one. Contiguity keeps each shard's working set — the
// connection tables, estimators and metrics of its owned cells — dense in
// memory, and makes ownership a two-branch computation instead of a table
// lookup on the hand-off hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/topology.h"

namespace pabr::sim::sharded {

class Partition {
 public:
  /// Splits `num_cells` cells into `shards` contiguous ranges. Requires
  /// 1 <= shards <= num_cells.
  Partition(int num_cells, int shards);

  int shards() const { return shards_; }
  int num_cells() const { return num_cells_; }

  /// Owned range of shard `s`: [first(s), last(s)).
  geom::CellId first(int s) const {
    return starts_[static_cast<std::size_t>(s)];
  }
  geom::CellId last(int s) const {
    return starts_[static_cast<std::size_t>(s) + 1];
  }
  int size(int s) const { return last(s) - first(s); }

  /// Shard owning `cell`. O(1): every shard owns either `base` or
  /// `base + 1` cells, the wide ones first.
  int owner(geom::CellId cell) const;

 private:
  int num_cells_;
  int shards_;
  int base_;  ///< floor(num_cells / shards)
  int wide_;  ///< number of leading shards owning base_ + 1 cells
  std::vector<geom::CellId> starts_;  ///< shards + 1 fenceposts
};

}  // namespace pabr::sim::sharded
