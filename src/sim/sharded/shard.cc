#include "sim/sharded/shard.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "snapshot/parts.h"
#include "util/check.h"

namespace pabr::sim::sharded {

namespace {

std::string stream_name(const char* prefix, geom::CellId cell) {
  return std::string(prefix) + std::to_string(cell);
}

}  // namespace

Shard::Shard(const ShardedConfig& config, SharedState& shared, int index)
    : config_(config),
      shared_(shared),
      index_(index),
      accountant_(*shared.grid, nullptr),
      policy_(admission::make_policy(config_.system.policy,
                                     config_.system.static_g,
                                     &config_.system.ns)) {
  first_ = shared_.partition->first(index);
  end_ = shared_.partition->last(index);

  reservation::TestWindowConfig twc;
  twc.phd_target = config_.system.phd_target;
  twc.t_start = config_.system.t_start;

  const sim::RngFactory factory(config_.system.seed);

  const auto span = static_cast<std::size_t>(end_ - first_);
  cells_.reserve(span);
  stations_.reserve(span);
  metrics_.resize(span);
  arrival_rng_.reserve(span);
  motion_rng_.reserve(span);
  ordinal_.assign(span, 0);
  out_slots_.resize(span);

  for (geom::CellId c = first_; c < end_; ++c) {
    const auto li = static_cast<std::size_t>(c - first_);
    cells_.emplace_back(c, config_.system.capacity_bu);
    stations_.emplace_back(c, config_.system.hoef, twc);
    metrics_[li].br_mean.update(0.0, 0.0);
    metrics_[li].bu_mean.update(0.0, 0.0);
    // One arrival and one mobility stream per CELL (not per shard): the
    // draw sequence each cell sees is then independent of the partition,
    // which is what makes trajectories shard-count invariant.
    arrival_rng_.emplace_back(
        factory.make(stream_name("sharded-arrivals-", c)));
    motion_rng_.emplace_back(factory.make(stream_name("sharded-motion-", c)));

    // P2 write plan: the contrib slot of pair (c -> target) is the
    // position of c inside the target's adjacency list.
    for (const geom::CellId target : shared_.grid->neighbors(c)) {
      const auto& back = shared_.grid->neighbors(target);
      for (std::size_t j = 0; j < back.size(); ++j) {
        if (back[j] == c) {
          out_slots_[li].push_back(
              OutSlot{target, shared_.contrib_offset[static_cast<std::size_t>(
                                  target)] +
                                  j});
          break;
        }
      }
    }
  }

#ifdef PABR_FAULT_ENABLED
  if (config_.system.fault.enabled) {
    // Each shard holds its own injector REPLICA. All decisions are pure
    // functions of (fault seed, query args) and timeline memoization is
    // query-order independent, so replicas agree bitwise.
    fault_ = std::make_unique<fault::FaultInjector>(config_.system.fault);
  }
#endif

  telemetry::TelemetryConfig tcfg = config_.system.telemetry;
  tcfg.trace = false;  // per-shard trace rings are not merge-ordered
  telemetry_.configure(tcfg);
  if (telemetry_.enabled()) {
    tel_ = telemetry::make_sim_counters(telemetry_.registry(),
                                        config_.system.capacity_bu);
    engine_.bind_telemetry(tel_.terms_recomputed, tel_.terms_reused);
    accountant_.bind_telemetry(tel_.br_calculations);
    policy_->bind_telemetry(telemetry_.registry());
    for (auto& station : stations_) {
      station.estimator().bind_telemetry(tel_.quads_recorded,
                                         tel_.quads_evicted);
    }
    if (faults_on()) {
      fault_tel_ = telemetry::make_fault_counters(telemetry_.registry());
      accountant_.bind_fault_telemetry(fault_tel_.retries,
                                       fault_tel_.timeouts);
    }
  }

  // Prime each cell's Poisson process. The first draw of the arrival
  // stream is the first interarrival gap, matching the per-tick order
  // (gap first, then the request attributes).
  const double rate = config_.system.arrival_rate_per_cell;
  if (rate > 0.0) {
    for (geom::CellId c = first_; c < end_; ++c) {
      const auto li = static_cast<std::size_t>(c - first_);
      PendingEvent tick;
      tick.time = arrival_rng_[li].exponential(1.0 / rate);
      tick.kind = EventKind::kArrivalTick;
      tick.cell = c;
      calendar_.push(tick);
    }
  }
}

std::size_t Shard::local(geom::CellId cell) const {
  PABR_CHECK(owned(cell), "cell not owned by this shard");
  return static_cast<std::size_t>(cell - first_);
}

// ---- slot protocol ----------------------------------------------------------

void Shard::drain_and_publish(sim::Time slot_start) {
  for (std::size_t s = 0; s < shared_.outbox.size(); ++s) {
    auto& box = shared_.outbox[s][static_cast<std::size_t>(index_)];
    for (const PendingEvent& e : box) calendar_.push(e);
    box.clear();
  }
  for (geom::CellId c = first_; c < end_; ++c) {
    const auto li = static_cast<std::size_t>(c - first_);
    const auto ci = static_cast<std::size_t>(c);
    shared_.frozen_used[ci] = cells_[li].used();
    shared_.frozen_t_est[ci] = stations_[li].window().t_est();
    shared_.frozen_max_soj[ci] =
        stations_[li].estimator().max_sojourn(slot_start);
  }
}

void Shard::compute_contributions(sim::Time slot_start) {
  for (geom::CellId i = first_; i < end_; ++i) {
    const auto li = static_cast<std::size_t>(i - first_);
    const auto& table = cells_[li].connections();
    const auto& estimator = stations_[li].estimator();
    for (const OutSlot& os : out_slots_[li]) {
      const geom::CellId c = os.target;
#ifdef PABR_FAULT_ENABLED
      if (faults_on() &&
          !fault_->exchange_outcome(c, i, slot_start).delivered) {
        // The target could not consult us this slot; it substitutes the
        // degraded floor (in finalize_reservations, same pure verdict).
        if (config_.system.incremental_reservation) engine_.mark_stale(i, c);
        shared_.contrib[os.slot] = 0.0;
        continue;
      }
#endif
      const sim::Duration t_est =
          shared_.frozen_t_est[static_cast<std::size_t>(c)];
      double s = 0.0;
      if (config_.system.incremental_reservation) {
        const bool healing = faults_on() && engine_.is_stale(i, c);
        s = engine_.accumulate(i, c, table, estimator, slot_start, t_est,
                               0.0);
        if (healing) {
          PABR_CHECK(s == scratch_contribution(i, c, slot_start, t_est),
                     "post-heal pair re-sync diverged from scratch rescan");
          telemetry::bump(fault_tel_.pair_resyncs);
        }
      } else {
        s = scratch_contribution(i, c, slot_start, t_est);
      }
      shared_.contrib[os.slot] = s;
    }
  }
}

void Shard::finalize_reservations(sim::Time slot_start) {
  for (geom::CellId c = first_; c < end_; ++c) {
    const auto li = static_cast<std::size_t>(c - first_);
    const auto& neighbors = shared_.grid->neighbors(c);
    const std::size_t off = shared_.contrib_offset[static_cast<std::size_t>(c)];
    double br = 0.0;
    for (std::size_t j = 0; j < neighbors.size(); ++j) {
#ifdef PABR_FAULT_ENABLED
      if (faults_on() &&
          !fault_->exchange_outcome(c, neighbors[j], slot_start).delivered) {
        br += config_.system.fault.degraded_floor_bu;
        telemetry::bump(fault_tel_.floor_substitutions);
        continue;
      }
#endif
      br += shared_.contrib[off + j];
    }
    stations_[li].set_current_reservation(br);
    shared_.frozen_br[static_cast<std::size_t>(c)] = br;
    metrics_[li].br_mean.update(slot_start, br);
    if (telemetry_.enabled()) {
      telemetry::bump(tel_.br_recomputes);
      tel_.br_value->add(br);
    }
  }
}

void Shard::process_events(sim::Time slot_end) {
  while (!calendar_.empty() && calendar_.top().time < slot_end) {
    const PendingEvent e = calendar_.pop();
    now_ = e.time;
    switch (e.kind) {
      case EventKind::kArrivalTick:
        handle_arrival_tick(e);
        break;
      case EventKind::kDepart:
        handle_depart(e);
        break;
      case EventKind::kArrive:
        handle_arrive(e);
        break;
      case EventKind::kExpiry:
        handle_expiry(e);
        break;
    }
    ++events_;
  }
  now_ = slot_end;
}

void Shard::reset_measurements(sim::Time t) {
  for (geom::CellId c = first_; c < end_; ++c) {
    const auto li = static_cast<std::size_t>(c - first_);
    auto& m = metrics_[li];
    m.pcb.reset();
    m.phd.reset();
    m.br_mean.reset(t);
    m.br_mean.update(t, stations_[li].current_reservation());
    m.bu_mean.reset(t);
    m.bu_mean.update(t, cells_[li].used());
  }
  accountant_.reset();
  if (telemetry_.enabled()) telemetry_.registry().reset();
}

void Shard::audit(sim::Time t) const {
  PABR_CHECK(!accountant_.admission_open(),
             "admission left open across a slot barrier");
  for (geom::CellId c = first_; c < end_; ++c) {
    const auto li = static_cast<std::size_t>(c - first_);
    const core::Cell& cell = cells_[li];
    // I1: occupancy equals the table sum exactly (integral bandwidths).
    double sum = 0.0;
    traffic::ConnectionId prev_id = 0;
    for (const auto& entry : cell.connections()) {
      PABR_CHECK(prev_id == 0 || entry.id > prev_id,
                 "connection table not strictly id-sorted");
      prev_id = entry.id;
      // Compare against bandwidth_of(), not the raw constants: under the
      // metamorphic BU-rescaling transform (DESIGN.md §14, M4) every
      // catalogue bandwidth carries the active scale factor.
      PABR_CHECK(
          entry.bandwidth ==
                  traffic::bandwidth_of(traffic::ServiceClass::kVoice) ||
              entry.bandwidth ==
                  traffic::bandwidth_of(traffic::ServiceClass::kVideo),
          "non-catalogue bandwidth attached");
      PABR_CHECK(entry.view.reserve_bandwidth == entry.bandwidth,
                 "reserve bandwidth diverged from attachment");
      PABR_CHECK(entry.view.entered_cell_at <= t,
                 "connection entered its cell in the future");
      PABR_CHECK(entry.view.prev_cell == c ||
                     shared_.grid->adjacent(entry.view.prev_cell, c),
                 "previous cell not adjacent");
      sum += static_cast<double>(entry.bandwidth);
    }
    PABR_CHECK(sum == cell.used(), "occupancy diverged from table sum");
    PABR_CHECK(cell.used() >= 0.0 &&
                   !admission::exceeds_budget(cell.used(), 0.0,
                                              cell.soft_capacity(), 0.0),
               "occupancy outside [0, soft capacity]");
    // I2: control-plane state is finite and within its rails; the frozen
    // mirror matches the live value at every barrier.
    const double br = stations_[li].current_reservation();
    PABR_CHECK(std::isfinite(br) && br >= 0.0, "B_r not finite or negative");
    PABR_CHECK(br == shared_.frozen_br[static_cast<std::size_t>(c)],
               "frozen B_r mirror diverged from the base station");
    const double t_est = stations_[li].window().t_est();
    PABR_CHECK(std::isfinite(t_est) && t_est > 0.0, "T_est not positive");
  }
}

// ---- AdmissionContext -------------------------------------------------------

double Shard::capacity(geom::CellId cell) const {
  (void)cell;
  return config_.system.capacity_bu;  // uniform FCA capacity
}

double Shard::used_bandwidth(geom::CellId cell) const {
  // Frozen-neighbour semantics: the admission test sees the requesting
  // cell live and every other cell as of the slot boundary, so the
  // decision cannot depend on which shard the neighbours landed in.
  if (cell == admission_self_) return cells_[local(cell)].used();
  return shared_.frozen_used[static_cast<std::size_t>(cell)];
}

const std::vector<geom::CellId>& Shard::adjacent(geom::CellId cell) const {
  return shared_.grid->neighbors(cell);
}

double Shard::recompute_reservation(geom::CellId cell) {
  // Serves the slot-frozen Eq. (6) value; the actual recomputation ran
  // at the barrier. Signalling is still billed per admission-time call,
  // preserving the paper's N_calc semantics (AC1 = 1, AC2 = |A|+1).
#ifdef PABR_FAULT_ENABLED
  if (faults_on()) {
    accountant_.count_br_calculation();
    for (const geom::CellId i : shared_.grid->neighbors(cell)) {
      accountant_.exchange(cell, i, now_, *fault_,
                           backhaul::MessageType::kBandwidthQuery);
    }
    return shared_.frozen_br[static_cast<std::size_t>(cell)];
  }
#endif
  accountant_.record_br_calculation(cell);
  return shared_.frozen_br[static_cast<std::size_t>(cell)];
}

double Shard::current_reservation(geom::CellId cell) const {
  return shared_.frozen_br[static_cast<std::size_t>(cell)];
}

double Shard::scratch_reservation(geom::CellId cell) {
  return shared_.frozen_br[static_cast<std::size_t>(cell)];
}

bool Shard::neighbor_reachable(geom::CellId cell, geom::CellId neighbor) {
#ifdef PABR_FAULT_ENABLED
  if (faults_on()) {
    const bool ok =
        accountant_.exchange(cell, neighbor, now_, *fault_,
                             backhaul::MessageType::kReservationCheck);
    if (!ok) telemetry::bump(fault_tel_.ac_local_fallbacks);
    return ok;
  }
#endif
  (void)cell;
  (void)neighbor;
  return true;
}

// ---- event handlers ---------------------------------------------------------

void Shard::handle_arrival_tick(const PendingEvent& e) {
  const geom::CellId c = e.cell;
  const auto li = local(c);
  sim::Rng& rng = arrival_rng_[li];
  // Next tick first, then the request attributes — one fixed draw order.
  PendingEvent next;
  next.time =
      e.time + rng.exponential(1.0 / config_.system.arrival_rate_per_cell);
  next.kind = EventKind::kArrivalTick;
  next.cell = c;
  calendar_.push(next);

  const auto service = rng.bernoulli(config_.system.voice_ratio)
                           ? traffic::ServiceClass::kVoice
                           : traffic::ServiceClass::kVideo;
  const double speed = rng.uniform(config_.system.speed_min_kmh,
                                   config_.system.speed_max_kmh);
  const double lifetime =
      rng.exponential(config_.system.mean_lifetime_s);
  handle_arrival(c, service, speed, lifetime);
}

void Shard::handle_arrival(geom::CellId cell, traffic::ServiceClass service,
                           double speed_kmh, sim::Duration lifetime_s) {
  const traffic::Bandwidth bw = traffic::bandwidth_of(service);
  const auto li = local(cell);
#ifdef PABR_FAULT_ENABLED
  if (faults_on() && !fault_->station_up(cell, now_)) {
    telemetry::bump(fault_tel_.station_blocks);
    metrics_[li].pcb.trial(true);
    telemetry::bump(tel_.blocked);
    return;
  }
#endif
  bool admitted;
  {
    backhaul::AdmissionScope scope(accountant_);
    admission_self_ = cell;
    if (telemetry_.time_admissions()) {
      const auto t0 = std::chrono::steady_clock::now();
      admitted = policy_->admit(*this, cell, bw);
      const auto elapsed = std::chrono::steady_clock::now() - t0;
      tel_.admission_ns->add(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()));
    } else {
      admitted = policy_->admit(*this, cell, bw);
    }
    admission_self_ = geom::kNoCell;
  }
  admitted = admitted && cells_[li].can_fit(bw);
  metrics_[li].pcb.trial(!admitted);
  if (telemetry_.enabled()) {
    telemetry::bump(admitted ? tel_.admitted : tel_.blocked);
  }
  if (!admitted) return;

  MobileSnapshot m;
  m.id = (static_cast<traffic::ConnectionId>(cell) + 1) << 40 |
         ordinal_[li]++;
  m.service = service;
  m.speed_kmh = speed_kmh;
  m.prev = cell;  // started here (the paper's prev = 0)
  m.entered_at = now_;
  m.expires_at = now_ + lifetime_s;

  traffic::ReservationView view;
  view.reserve_bandwidth = bw;
  view.prev_cell = m.prev;
  view.entered_cell_at = m.entered_at;
  cells_[li].attach(m.id, bw, view);
  record_bu(cell);
  plan_next_leg(m, cell, now_);
}

void Shard::plan_next_leg(MobileSnapshot m, geom::CellId cell, sim::Time t) {
  sim::Rng& rng = motion_rng_[local(cell)];
  // Both the sojourn and the destination are drawn at cell ENTRY (the
  // serial loop draws the destination at crossing time): the departure
  // is then fully announced one conservative lookahead ahead of time.
  const sim::Duration stay = shared_.motion->sojourn(m.speed_kmh, rng);
  const geom::CellId to = shared_.motion->next_cell(m.prev, cell, rng);
  const sim::Time crossing_at = t + stay;

  if (m.expires_at <= crossing_at) {
    PendingEvent expiry;
    expiry.time = m.expires_at;
    expiry.kind = EventKind::kExpiry;
    expiry.cell = cell;
    expiry.id = m.id;
    expiry.mobile = m;
    calendar_.push(expiry);
    return;
  }

  PendingEvent depart;
  depart.time = crossing_at;
  depart.kind = EventKind::kDepart;
  depart.cell = cell;
  depart.id = m.id;
  depart.mobile = m;
  depart.to = to;
  calendar_.push(depart);

  PendingEvent arrive;
  arrive.time = crossing_at;
  arrive.kind = EventKind::kArrive;
  arrive.cell = to;
  arrive.id = m.id;
  arrive.mobile = m;
  arrive.mobile.prev = cell;
  arrive.mobile.entered_at = crossing_at;
  route(arrive);
}

void Shard::route(PendingEvent e) {
  if (owned(e.cell)) {
    calendar_.push(e);
    return;
  }
  const int dest = shared_.partition->owner(e.cell);
  shared_.outbox[static_cast<std::size_t>(index_)]
                [static_cast<std::size_t>(dest)]
                    .push_back(e);
}

void Shard::handle_depart(const PendingEvent& e) {
  const auto li = local(e.cell);
  stations_[li].estimator().record(hoef::Quadruplet{
      e.time, e.mobile.prev, e.to, e.time - e.mobile.entered_at});
  if (telemetry_.enabled()) {
    tel_.handoff_sojourn->add(e.time - e.mobile.entered_at);
  }
  cells_[li].detach(e.id);
  record_bu(e.cell);
}

void Shard::handle_arrive(const PendingEvent& e) {
  const geom::CellId c = e.cell;
  const auto li = local(c);
  const traffic::Bandwidth bw = e.mobile.bandwidth();
  bool dropped = !cells_[li].can_fit(bw);
#ifdef PABR_FAULT_ENABLED
  if (!dropped && faults_on() && !fault_->station_up(c, e.time)) {
    dropped = true;
    telemetry::bump(fault_tel_.station_drops);
  }
#endif
  // The T_soj,max bound comes from the slot-frozen estimator snapshots —
  // live neighbour estimators may belong to other shards mid-slot.
  stations_[li].window().on_handoff(dropped, frozen_t_soj_max(c));
  metrics_[li].phd.trial(dropped);
  if (telemetry_.enabled()) {
    telemetry::bump(dropped ? tel_.handoff_dropped : tel_.handoff_completed);
  }
  if (dropped) return;  // the mobile dies with its only pending event

  traffic::ReservationView view;
  view.reserve_bandwidth = bw;
  view.prev_cell = e.mobile.prev;
  view.entered_cell_at = e.time;
  cells_[li].attach(e.id, bw, view);
  record_bu(c);
  plan_next_leg(e.mobile, c, e.time);
}

void Shard::handle_expiry(const PendingEvent& e) {
  const auto li = local(e.cell);
  if (telemetry_.enabled()) telemetry::bump(tel_.expiries);
  cells_[li].detach(e.id);
  record_bu(e.cell);
}

// ---- helpers ----------------------------------------------------------------

void Shard::record_bu(geom::CellId cell) {
  const auto li = local(cell);
  metrics_[li].bu_mean.update(now_, cells_[li].used());
}

sim::Duration Shard::frozen_t_soj_max(geom::CellId cell) const {
  sim::Duration m = 0.0;
  for (const geom::CellId i : shared_.grid->neighbors(cell)) {
    m = std::max(m, shared_.frozen_max_soj[static_cast<std::size_t>(i)]);
  }
  return m;
}

double Shard::scratch_contribution(geom::CellId source, geom::CellId target,
                                   sim::Time t, sim::Duration t_est) const {
  const auto li = local(source);
  const auto& estimator = stations_[li].estimator();
  double running = 0.0;
  for (const auto& e : cells_[li].connections()) {
    running += static_cast<double>(e.view.reserve_bandwidth) *
               estimator.handoff_probability(t, e.view.prev_cell, target,
                                             t - e.view.entered_cell_at,
                                             t_est);
  }
  return running;
}

// ---- snapshot hooks ---------------------------------------------------------

void Shard::save_cell_state(snapshot::Encoder& e, geom::CellId cell) const {
  const auto li = local(cell);
  snapshot::put_cell(e, cells_[li]);
  snapshot::put_station(e, stations_[li]);
  snapshot::put_cell_metrics(e, metrics_[li]);
  e.str(arrival_rng_[li].save_state());
  e.str(motion_rng_[li].save_state());
  e.u64(ordinal_[li]);
}

void Shard::restore_cell_state(snapshot::Decoder& d, geom::CellId cell) {
  const auto li = local(cell);
  snapshot::restore_cell(d, cells_[li]);
  snapshot::restore_station(d, stations_[li]);
  snapshot::restore_cell_metrics(d, metrics_[li]);
  arrival_rng_[li].load_state(d.str());
  motion_rng_[li].load_state(d.str());
  ordinal_[li] = d.u64();
}

std::size_t Shard::active_connections() const {
  std::size_t n = 0;
  for (const auto& cell : cells_) {
    n += static_cast<std::size_t>(cell.connection_count());
  }
  return n;
}

}  // namespace pabr::sim::sharded
