// One worker's slice of the sharded hex simulation (DESIGN.md §12).
//
// A Shard owns a contiguous range of cells — their radio state
// (core::Cell), control plane (core::BaseStation: estimator + T_est
// controller + B_r^curr), metrics, per-cell RNG streams, an incremental
// reservation engine for the (owned source -> any target) pairs, a
// signaling accountant, a fault injector replica, and an event calendar.
//
// Cross-cell coupling goes EXCLUSIVELY through the slot-frozen arrays in
// SharedState, written and read under the executor's barrier protocol:
//
//   P1  drain_and_publish      — ingest cross-shard transfers, publish
//                                {used, T_est, max_sojourn} of owned cells
//   P2  compute_contributions  — Eq. (5) boundary-pair sums from owned
//                                sources into every adjacent target
//   P3  finalize_reservations  — Eq. (6) frozen B_r of owned targets
//   P4  process_events         — the slot's arrivals/hand-offs/expiries
//
// Each frozen slot is written by exactly one shard per phase and read
// only in later phases (the barrier provides the happens-before), so the
// arrays need no locks. Because every cell's live state is touched only
// by that cell's own events — processed in composite-key order by its
// owner — and all remote reads see slot-frozen values, per-cell
// trajectories are bitwise-independent of the shard count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "admission/policy.h"
#include "backhaul/signaling.h"
#include "core/base_station.h"
#include "core/cell.h"
#include "core/metrics.h"
#include "fault/fault.h"
#include "geom/hex_topology.h"
#include "mobility/hex_motion.h"
#include "reservation/engine.h"
#include "sim/random.h"
#include "sim/sharded/calendar.h"
#include "sim/sharded/config.h"
#include "sim/sharded/partition.h"
#include "telemetry/telemetry.h"

namespace pabr::snapshot {
class Encoder;
class Decoder;
}  // namespace pabr::snapshot

namespace pabr::sim::sharded {

/// Global slot-frozen state plus the cross-shard mailboxes. Writes and
/// reads are phase-exclusive under the executor's barriers.
struct SharedState {
  const geom::HexTopology* grid = nullptr;
  const mobility::HexMotion* motion = nullptr;
  const Partition* partition = nullptr;

  // Slot-boundary snapshots, indexed by cell; owner-written in P1.
  std::vector<double> frozen_used;
  std::vector<double> frozen_t_est;
  std::vector<double> frozen_max_soj;
  // Frozen Eq. (6) targets, owner-written in P3; serves
  // recompute_reservation / current_reservation for the whole slot.
  std::vector<double> frozen_br;

  // Boundary-pair mirror: contrib[contrib_offset[c] + j] holds Eq. (5)
  // from neighbors(c)[j] into c, written by the neighbour's owner in P2
  // and summed by c's owner in P3 — one float association order for
  // every shard count.
  std::vector<std::size_t> contrib_offset;
  std::vector<double> contrib;

  // outbox[from_shard][to_shard]: cross-shard hand-off announcements,
  // written during P4, drained and cleared by the receiver at P1.
  std::vector<std::vector<std::vector<PendingEvent>>> outbox;
};

class Shard final : public admission::AdmissionContext {
 public:
  Shard(const ShardedConfig& config, SharedState& shared, int index);

  // ---- slot protocol (executor worker loop) -------------------------------
  void drain_and_publish(sim::Time slot_start);
  void compute_contributions(sim::Time slot_start);
  void finalize_reservations(sim::Time slot_start);
  void process_events(sim::Time slot_end);
  /// Slot-aligned warm-up reset (the sharded reset_metrics).
  void reset_measurements(sim::Time t);
  /// Per-barrier invariant sweep over owned cells; throws InvariantError.
  void audit(sim::Time t) const;

  // ---- AdmissionContext ---------------------------------------------------
  double capacity(geom::CellId cell) const override;
  double used_bandwidth(geom::CellId cell) const override;
  const std::vector<geom::CellId>& adjacent(geom::CellId cell) const override;
  double recompute_reservation(geom::CellId cell) override;
  double current_reservation(geom::CellId cell) const override;
  double scratch_reservation(geom::CellId cell) override;
  bool neighbor_reachable(geom::CellId cell, geom::CellId neighbor) override;

  // ---- results ------------------------------------------------------------
  int index() const { return index_; }
  geom::CellId first_cell() const { return first_; }
  geom::CellId end_cell() const { return end_; }
  const core::Cell& cell_state(geom::CellId cell) const {
    return cells_[local(cell)];
  }
  const core::BaseStation& station_state(geom::CellId cell) const {
    return stations_[local(cell)];
  }
  const core::CellMetrics& cell_metrics(geom::CellId cell) const {
    return metrics_[local(cell)];
  }
  const backhaul::SignalingAccountant& accountant() const {
    return accountant_;
  }
  telemetry::Collector& telemetry() { return telemetry_; }
  std::uint64_t events_processed() const { return events_; }
  std::size_t active_connections() const;

  // ---- snapshot hooks (executor checkpoint/resume; sharded/snapshot.cc) ---
  /// Serializes / restores one owned cell's complete state: radio table,
  /// base station, metrics, both RNG streams and the id ordinal. The
  /// executor drives these in GLOBAL cell order so the payload is
  /// independent of the partition.
  void save_cell_state(snapshot::Encoder& e, geom::CellId cell) const;
  void restore_cell_state(snapshot::Decoder& d, geom::CellId cell);
  const EventCalendar& calendar() const { return calendar_; }
  /// Drops the constructor's primed arrival ticks ahead of a restore.
  void clear_calendar() { calendar_.clear(); }
  void push_event(const PendingEvent& e) { route(e); }
  backhaul::SignalingAccountant& accountant_mutable() { return accountant_; }
  /// Overwrites the event tally and clock after a restore (the aggregate
  /// tally lands on shard 0; every other shard restarts from zero).
  void restore_progress(std::uint64_t events, sim::Time now) {
    events_ = events;
    now_ = now;
  }

 private:
  bool owned(geom::CellId cell) const {
    return cell >= first_ && cell < end_;
  }
  std::size_t local(geom::CellId cell) const;
  bool faults_on() const {
#ifdef PABR_FAULT_ENABLED
    return fault_ != nullptr;
#else
    return false;
#endif
  }

  void handle_arrival_tick(const PendingEvent& e);
  void handle_arrival(geom::CellId cell, traffic::ServiceClass service,
                      double speed_kmh, sim::Duration lifetime_s);
  void handle_depart(const PendingEvent& e);
  void handle_arrive(const PendingEvent& e);
  void handle_expiry(const PendingEvent& e);
  /// Draws the next stay (sojourn + destination) from the cell's motion
  /// stream and schedules whichever of crossing/expiry comes first.
  void plan_next_leg(MobileSnapshot m, geom::CellId cell, sim::Time t);
  void route(PendingEvent e);
  void record_bu(geom::CellId cell);
  /// max over adjacent cells of the slot-frozen estimator max_sojourn —
  /// the T_soj,max bound fed to the Fig. 6 controller.
  sim::Duration frozen_t_soj_max(geom::CellId cell) const;
  /// From-scratch Eq. (5) for the post-heal cache re-sync audit.
  double scratch_contribution(geom::CellId source, geom::CellId target,
                              sim::Time t, sim::Duration t_est) const;

  ShardedConfig config_;
  SharedState& shared_;
  int index_;
  geom::CellId first_ = 0;
  geom::CellId end_ = 0;

  std::vector<core::Cell> cells_;            // owned range, dense
  std::vector<core::BaseStation> stations_;  // parallel to cells_
  std::vector<core::CellMetrics> metrics_;
  std::vector<sim::Rng> arrival_rng_;  ///< per-cell arrival stream
  std::vector<sim::Rng> motion_rng_;   ///< per-cell mobility stream
  std::vector<std::uint64_t> ordinal_; ///< per-cell connection counter

  /// Precomputed P2 write plan: for each owned source cell, the global
  /// contrib slots of its (source -> target) boundary pairs.
  struct OutSlot {
    geom::CellId target = geom::kNoCell;
    std::size_t slot = 0;
  };
  std::vector<std::vector<OutSlot>> out_slots_;

  reservation::IncrementalEngine engine_;
  backhaul::SignalingAccountant accountant_;
  std::unique_ptr<admission::AdmissionPolicy> policy_;
  std::unique_ptr<fault::FaultInjector> fault_;  // replica; pure queries
  telemetry::Collector telemetry_;
  telemetry::SimCounters tel_;
  telemetry::FaultCounters fault_tel_;

  EventCalendar calendar_;
  sim::Time now_ = 0.0;
  geom::CellId admission_self_ = geom::kNoCell;
  std::uint64_t events_ = 0;
};

}  // namespace pabr::sim::sharded
