// Sharded checkpoint/resume (DESIGN.md §13).
//
// A checkpoint is taken at a slot-start barrier, when every shard has
// finished the previous slot's P4 and nothing is in flight. The payload
// is written in global cell order and canonical event order, so any
// shard count produces the identical file, and a file written under one
// shard count resumes under any other. Rebuilt rather than saved:
// slot-frozen mirrors (overwritten at the resume slot's P1-P3),
// reservation-engine pair caches (accumulate() on a cold cache is
// bitwise identical to the warm path), and fault-injector timelines
// (pure functions of the fault seed, materialized on demand).
#include <algorithm>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "sim/sharded/executor.h"
#include "snapshot/format.h"
#include "snapshot/parts.h"
#include "telemetry/metrics.h"
#include "util/check.h"
#include "util/digest.h"

namespace pabr::sim::sharded {

namespace {

void put_event(snapshot::Encoder& e, const PendingEvent& ev) {
  e.f64(ev.time);
  e.u32(static_cast<std::uint32_t>(ev.kind));
  e.i64(ev.cell);
  e.u64(ev.id);
  e.u64(ev.mobile.id);
  e.u32(static_cast<std::uint32_t>(ev.mobile.service));
  e.f64(ev.mobile.speed_kmh);
  e.i64(ev.mobile.prev);
  e.f64(ev.mobile.entered_at);
  e.f64(ev.mobile.expires_at);
  e.i64(ev.to);
}

PendingEvent get_event(snapshot::Decoder& d) {
  PendingEvent ev;
  ev.time = d.f64();
  ev.kind = static_cast<EventKind>(d.u32());
  ev.cell = static_cast<geom::CellId>(d.i64());
  ev.id = d.u64();
  ev.mobile.id = d.u64();
  ev.mobile.service = static_cast<traffic::ServiceClass>(d.u32());
  ev.mobile.speed_kmh = d.f64();
  ev.mobile.prev = static_cast<geom::CellId>(d.i64());
  ev.mobile.entered_at = d.f64();
  ev.mobile.expires_at = d.f64();
  ev.to = static_cast<geom::CellId>(d.i64());
  return ev;
}

}  // namespace

std::uint64_t ShardedExecutor::config_digest(const ShardedConfig& config) {
  snapshot::Encoder e;
  snapshot::put_config(e, config.system);
  e.f64(config.duration_s);
  e.f64(config.warmup_s);
  e.f64(config.slot_override_s);
  return util::fnv1a_bytes(e.bytes().data(), e.bytes().size());
}

void ShardedExecutor::write_checkpoint(
    std::ostream& os, std::uint64_t slot,
    const std::vector<std::unique_ptr<Shard>>& shards) {
  const sim::Time t0 = slot_ * static_cast<double>(slot);
  snapshot::Writer w(snapshot::SystemKind::kSharded, config_digest(config_),
                     t0, config_.system.seed);

  {
    auto& e = w.begin_section("config");
    snapshot::put_config(e, config_.system);
    e.f64(config_.duration_s);
    e.f64(config_.warmup_s);
    e.f64(config_.slot_override_s);
  }
  {
    auto& e = w.begin_section("slot");
    e.u64(slot);
    e.f64(slot_);
    e.u64(num_slots_);
    e.u64(reset_slot_);
    std::uint64_t events = 0;
    for (const auto& shard : shards) events += shard->events_processed();
    e.u64(events);
  }
  {
    auto& e = w.begin_section("cells");
    for (geom::CellId c = 0; c < grid_.num_cells(); ++c) {
      const Shard& owner =
          *shards[static_cast<std::size_t>(partition_.owner(c))];
      owner.save_cell_state(e, c);
    }
  }
  {
    // Union of every calendar AND every undrained mailbox (events routed
    // during the previous slot's P4 still sit in the outboxes at a
    // slot-start barrier), sorted by the total composite key.
    auto& e = w.begin_section("calendar");
    std::vector<PendingEvent> events;
    for (const auto& shard : shards) {
      const auto& heap = shard->calendar().raw();
      events.insert(events.end(), heap.begin(), heap.end());
    }
    for (const auto& from : shared_.outbox) {
      for (const auto& box : from) {
        events.insert(events.end(), box.begin(), box.end());
      }
    }
    std::sort(events.begin(), events.end(), event_before);
    e.u32(static_cast<std::uint32_t>(events.size()));
    for (const PendingEvent& ev : events) put_event(e, ev);
  }
  {
    // Per-shard accumulators merged into exact global sums (the summands
    // are integer-valued, so the order of addition cannot matter).
    auto& e = w.begin_section("accountant");
    double per_admission_sum = 0.0;
    std::uint64_t admissions = 0;
    std::uint64_t total = 0;
    for (const auto& shard : shards) {
      const auto& acc = shard->accountant();
      per_admission_sum += acc.per_admission_sum();
      admissions += acc.admissions_observed();
      total += acc.total_br_calculations();
    }
    e.f64(per_admission_sum);
    e.u64(admissions);
    e.u64(total);
  }
  {
    // Counters only: u64 sums are exact and shard-order independent.
    // Histogram sums are floating-point merges whose value depends on
    // the partition, so they are excluded from the checkpoint (DESIGN.md
    // §13 documents the resulting post-resume histogram divergence).
    auto& e = w.begin_section("telemetry");
    const bool enabled = shards.front()->telemetry().enabled();
    e.b(enabled);
    if (enabled) {
      std::vector<telemetry::MetricsSnapshot> snaps;
      for (const auto& shard : shards) {
        snaps.push_back(shard->telemetry().snapshot());
      }
      const telemetry::MetricsSnapshot merged =
          telemetry::merge_snapshots(snaps);
      e.u32(static_cast<std::uint32_t>(merged.counters.size()));
      for (const auto& [name, value] : merged.counters) {
        e.str(name);
        e.u64(value);
      }
    }
  }

  w.finish(os);
}

std::uint64_t ShardedExecutor::restore_checkpoint(
    std::istream& is, std::vector<std::unique_ptr<Shard>>& shards) {
  snapshot::Reader reader(is);
  reader.require_kind(snapshot::SystemKind::kSharded);
  PABR_CHECK(reader.header().config_digest == config_digest(config_),
             "snapshot config digest mismatch");

  std::uint64_t slot = 0;
  {
    auto d = reader.open("slot");
    slot = d.u64();
    const double saved_slot_len = d.f64();
    PABR_CHECK(saved_slot_len == slot_, "snapshot slot length mismatch");
    PABR_CHECK(d.u64() == num_slots_, "snapshot slot count mismatch");
    PABR_CHECK(d.u64() == reset_slot_, "snapshot warm-up slot mismatch");
    const std::uint64_t events = d.u64();
    d.finish();
    const sim::Time t0 = slot_ * static_cast<double>(slot);
    for (std::size_t s = 0; s < shards.size(); ++s) {
      shards[s]->clear_calendar();
      shards[s]->restore_progress(s == 0 ? events : 0, t0);
    }
  }
  {
    auto d = reader.open("cells");
    for (geom::CellId c = 0; c < grid_.num_cells(); ++c) {
      Shard& owner = *shards[static_cast<std::size_t>(partition_.owner(c))];
      owner.restore_cell_state(d, c);
    }
    d.finish();
  }
  {
    auto d = reader.open("calendar");
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const PendingEvent ev = get_event(d);
      shards[static_cast<std::size_t>(partition_.owner(ev.cell))]->push_event(
          ev);
    }
    d.finish();
  }
  {
    auto d = reader.open("accountant");
    const double per_admission_sum = d.f64();
    const std::uint64_t admissions = d.u64();
    const std::uint64_t total = d.u64();
    d.finish();
    // The aggregate lands on shard 0 (the others start from zero): the
    // end-of-run merge only ever reads the cross-shard sums.
    shards.front()->accountant_mutable().restore(per_admission_sum,
                                                 admissions, total);
  }
  {
    auto d = reader.open("telemetry");
    const bool enabled = d.b();
    PABR_CHECK(enabled == shards.front()->telemetry().enabled(),
               "snapshot/build disagree on telemetry");
    if (enabled) {
      telemetry::MetricsSnapshot snap;
      const std::uint32_t n = d.u32();
      snap.counters.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::string name = d.str();
        const std::uint64_t value = d.u64();
        snap.counters.emplace_back(name, value);
      }
      shards.front()->telemetry().registry().restore(snap);
    }
    d.finish();
  }

  return slot;
}

}  // namespace pabr::sim::sharded
