#include "sim/simulator.h"

#include "util/check.h"

namespace pabr::sim {

EventHandle Simulator::schedule_in(Duration delay, EventQueue::Callback cb) {
  PABR_CHECK(delay >= 0.0, "negative scheduling delay");
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventHandle Simulator::schedule_at(Time when, EventQueue::Callback cb) {
  PABR_CHECK(when >= now_, "scheduling into the past");
  return queue_.schedule(when, std::move(cb));
}

void Simulator::run_until(Time until) {
  PABR_CHECK(until >= now_, "run_until into the past");
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [when, cb] = queue_.pop();
    PABR_CHECK(when >= now_, "event queue returned a past event");
    now_ = when;
    ++executed_;
    cb();
  }
  now_ = until;
}

bool Simulator::step(Time limit) {
  if (queue_.empty() || queue_.next_time() > limit) return false;
  auto [when, cb] = queue_.pop();
  PABR_CHECK(when >= now_, "event queue returned a past event");
  now_ = when;
  ++executed_;
  cb();
  return true;
}

void Simulator::reset() {
  queue_.clear();
  now_ = 0.0;
  executed_ = 0;
}

}  // namespace pabr::sim
