// The discrete-event simulator: a clock plus an event queue.
//
// All model code schedules callbacks against a Simulator and reads the
// current time through `now()`. The simulator never moves time backwards
// and fires events in (time, scheduling order).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "sim/event_queue.h"
#include "sim/time.h"
#include "util/check.h"

namespace pabr::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }

  /// Schedules `cb` after `delay` seconds (>= 0).
  EventHandle schedule_in(Duration delay, EventQueue::Callback cb);

  /// Schedules `cb` at absolute time `when` (>= now()).
  EventHandle schedule_at(Time when, EventQueue::Callback cb);

  bool cancel(EventHandle handle) { return queue_.cancel(handle); }

  /// Runs events until the queue is empty or the next event is strictly
  /// after `until`; the clock is then advanced to `until`.
  void run_until(Time until);

  /// Runs a single event if one is pending before `limit`; returns whether
  /// an event fired.
  bool step(Time limit = kInfiniteDuration);

  /// Drops all pending events and resets the clock to 0.
  void reset();

  std::size_t pending_events() const { return queue_.size(); }

  // ---- snapshot/restore hooks (src/snapshot/) -----------------------------
  /// Fire time + insertion sequence of a pending event.
  std::optional<EventQueue::PendingInfo> pending(EventHandle handle) const {
    return queue_.pending(handle);
  }
  std::uint64_t queue_next_seq() const { return queue_.next_seq(); }
  std::uint64_t queue_next_id() const { return queue_.next_id(); }
  /// See EventQueue::advance_counters.
  void advance_queue_counters(std::uint64_t next_seq, std::uint64_t next_id) {
    queue_.advance_counters(next_seq, next_id);
  }
  /// Restores the clock and event total of a saved run. The clock may
  /// only move forward; pending events must be re-scheduled separately.
  void restore_clock(Time now, std::uint64_t executed) {
    PABR_CHECK(now >= now_, "snapshot clock behind the simulator");
    now_ = now;
    executed_ = executed;
  }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t executed_ = 0;
};

}  // namespace pabr::sim
