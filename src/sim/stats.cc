#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pabr::sim {

void TimeWeightedMean::update(Time t, double value) {
  PABR_CHECK(t >= last_time_, "TimeWeightedMean: time went backwards");
  if (has_value_) {
    integral_ += current_ * (t - last_time_);
  } else {
    // The signal is considered undefined before its first sample; start
    // integrating from the first update so early zeros do not bias B_r.
    start_ = t;
    has_value_ = true;
  }
  last_time_ = t;
  current_ = value;
}

double TimeWeightedMean::mean(Time t) const {
  if (!has_value_) return 0.0;
  PABR_CHECK(t >= start_, "TimeWeightedMean: mean() before window start");
  if (t <= start_) return 0.0;
  PABR_CHECK(t >= last_time_, "TimeWeightedMean: mean() before last update");
  const double total = integral_ + current_ * (t - last_time_);
  return total / (t - start_);
}

void TimeWeightedMean::reset(Time t) {
  // A reset may only move the window forward (warm-up end); a backwards
  // reset would let the next update() integrate a segment that overlaps
  // already-accounted time.
  PABR_CHECK(t >= last_time_, "TimeWeightedMean: reset into the past");
  integral_ = 0.0;
  current_ = 0.0;
  last_time_ = t;
  start_ = t;
  has_value_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  PABR_CHECK(hi > lo, "Histogram: empty range");
  PABR_CHECK(bins > 0, "Histogram: zero bins");
}

void Histogram::add(double x) {
  if (std::isnan(x)) {
    ++nan_dropped_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  // Clamp before the integer cast: casting an out-of-range double (e.g.
  // +/-inf from an out-of-range sample) to an integer is undefined.
  double idx = std::floor((x - lo_) / width);
  idx = std::clamp(idx, 0.0, static_cast<double>(bins_.size() - 1));
  ++bins_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_high(std::size_t i) const {
  return bin_low(i + 1);
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  const auto idx = static_cast<std::size_t>((x - lo_) / width);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < idx; ++i) below += bins_[i];
  const double frac = (x - bin_low(idx)) / width;
  const double inside = static_cast<double>(bins_[idx]) * frac;
  return (static_cast<double>(below) + inside) / static_cast<double>(total_);
}

}  // namespace pabr::sim
