// Statistics primitives used to measure the paper's metrics:
//   P_CB  — new-connection blocking probability   (RatioEstimator)
//   P_HD  — hand-off dropping probability         (RatioEstimator)
//   B_r   — average target reservation bandwidth  (TimeWeightedMean)
//   B_u   — average bandwidth in use              (TimeWeightedMean)
//   N_calc— mean B_r calculations per admission   (MeanAccumulator)
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace pabr::sim {

/// Counts events of a named kind.
class Counter {
 public:
  void add(std::uint64_t n = 1) { count_ += n; }
  std::uint64_t count() const { return count_; }
  void reset() { count_ = 0; }
  /// Snapshot restore: overwrites the tally with a saved value.
  void restore(std::uint64_t count) { count_ = count; }

 private:
  std::uint64_t count_ = 0;
};

/// Estimates P(event) = hits / trials. `value()` is 0 when no trials have
/// been observed (matching how the paper's plots omit empty samples).
class RatioEstimator {
 public:
  void trial(bool hit) {
    ++trials_;
    if (hit) ++hits_;
  }
  void add(std::uint64_t hits, std::uint64_t trials) {
    hits_ += hits;
    trials_ += trials;
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t trials() const { return trials_; }
  double value() const {
    return trials_ == 0 ? 0.0
                        : static_cast<double>(hits_) /
                              static_cast<double>(trials_);
  }
  void reset() { hits_ = trials_ = 0; }
  /// Snapshot restore.
  void restore(std::uint64_t hits, std::uint64_t trials) {
    hits_ = hits;
    trials_ = trials;
  }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t trials_ = 0;
};

/// Running mean of a sampled quantity.
class MeanAccumulator {
 public:
  void add(double x) {
    sum_ += x;
    ++n_;
  }
  std::uint64_t samples() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double sum() const { return sum_; }
  void reset() {
    sum_ = 0.0;
    n_ = 0;
  }
  /// Snapshot restore.
  void restore(double sum, std::uint64_t n) {
    sum_ = sum;
    n_ = n;
  }

 private:
  double sum_ = 0.0;
  std::uint64_t n_ = 0;
};

/// Integrates a piecewise-constant signal over simulated time and reports
/// its time-weighted average. Call `update(t, v)` whenever the signal
/// changes to value `v` at time `t`; `mean(t)` closes the last segment at
/// `t`.
class TimeWeightedMean {
 public:
  explicit TimeWeightedMean(Time start = 0.0)
      : last_time_(start), start_(start) {}

  void update(Time t, double value);

  /// Time-weighted mean over [start, t]. 0 before any update.
  double mean(Time t) const;

  /// Current (last written) value of the signal.
  double current() const { return current_; }

  void reset(Time t);

  // Snapshot save/restore of the full integrator state.
  struct State {
    double integral = 0.0;
    double current = 0.0;
    Time last_time = 0.0;
    Time start = 0.0;
    bool has_value = false;
  };
  State state() const {
    return State{integral_, current_, last_time_, start_, has_value_};
  }
  void restore(const State& s) {
    integral_ = s.integral;
    current_ = s.current;
    last_time_ = s.last_time;
    start_ = s.start;
    has_value_ = s.has_value;
  }

 private:
  double integral_ = 0.0;
  double current_ = 0.0;
  Time last_time_;
  Time start_;
  bool has_value_ = false;
};

/// Histogram with fixed-width bins over [lo, hi); out-of-range samples are
/// clamped into the edge bins. NaN samples (e.g. a sojourn computed from a
/// degenerate zero-length segment) fail every range comparison, so they are
/// dropped into a dedicated tally instead of landing in an arbitrary edge
/// bin — the same design as the telemetry histograms' overflow buckets.
/// Used for sojourn-time distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  /// Samples binned (NaN drops are excluded).
  std::uint64_t total() const { return total_; }
  /// NaN samples dropped by add(); never part of total() or cdf().
  std::uint64_t nan_dropped() const { return nan_dropped_; }
  const std::vector<std::uint64_t>& bins() const { return bins_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;
  /// Fraction of samples at or below x (linear interpolation inside bins).
  double cdf(double x) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t nan_dropped_ = 0;
};

}  // namespace pabr::sim
