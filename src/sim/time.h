// Simulation time. The paper's quantities are all expressed in seconds
// (sojourn times, T_est, connection lifetimes) so simulation time is a
// double count of seconds since the start of the run.
#pragma once

namespace pabr::sim {

/// Seconds since simulation start.
using Time = double;

/// A span of simulated seconds.
using Duration = double;

inline constexpr Duration kSecond = 1.0;
inline constexpr Duration kMinute = 60.0;
inline constexpr Duration kHour = 3600.0;
/// T_day in the paper: the period of the daily traffic cycle.
inline constexpr Duration kDay = 24.0 * kHour;
inline constexpr Duration kWeek = 7.0 * kDay;

/// Sentinel for "no deadline"/"infinite window" (T_int = inf in the
/// stationary experiments of §5.2).
inline constexpr Duration kInfiniteDuration = 1e300;

}  // namespace pabr::sim
