#include "snapshot/format.h"

#include <bit>
#include <istream>
#include <limits>
#include <ostream>

#include "util/buildinfo.h"
#include "util/check.h"
#include "util/digest.h"

namespace pabr::snapshot {

namespace {

// Hard ceilings against malformed length fields: no legitimate snapshot
// section name or string exceeds these, and a corrupted length must not
// drive a multi-gigabyte allocation before the checksum can reject it.
constexpr std::uint32_t kMaxStringLen = 1u << 20;
constexpr std::uint64_t kMaxSectionBytes = 1ull << 32;
constexpr std::uint32_t kMaxSections = 1u << 16;

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

[[noreturn]] void fail(const std::string& what) { throw FormatError(what); }

class StreamCursor {
 public:
  explicit StreamCursor(std::istream& is) : is_(is) {}

  void bytes(void* out, std::size_t n, const char* what) {
    is_.read(static_cast<char*>(out), static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(is_.gcount()) != n) {
      fail(std::string("truncated snapshot: while reading ") + what);
    }
  }
  std::uint32_t u32(const char* what) {
    unsigned char b[4];
    bytes(b, 4, what);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[i]} << (8 * i);
    return v;
  }
  std::uint64_t u64(const char* what) {
    unsigned char b[8];
    bytes(b, 8, what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
    return v;
  }
  double f64(const char* what) { return std::bit_cast<double>(u64(what)); }
  std::string str(const char* what) {
    const std::uint32_t n = u32(what);
    if (n > kMaxStringLen) {
      fail(std::string("implausible string length in ") + what);
    }
    std::string s(n, '\0');
    if (n != 0) bytes(s.data(), n, what);
    return s;
  }

 private:
  std::istream& is_;
};

}  // namespace

// ---- Encoder ----------------------------------------------------------------

void Encoder::u32(std::uint32_t v) { put_u32(buf_, v); }
void Encoder::u64(std::uint64_t v) { put_u64(buf_, v); }
void Encoder::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::str(std::string_view s) {
  PABR_CHECK(s.size() <= kMaxStringLen, "snapshot string too long");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

// ---- Decoder ----------------------------------------------------------------

const unsigned char* Decoder::take(std::size_t n) {
  if (pos_ + n > payload_.size()) {
    fail("section '" + name_ + "': read past the end of the payload");
  }
  const auto* p =
      reinterpret_cast<const unsigned char*>(payload_.data()) + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Decoder::u8() { return *take(1); }

std::uint32_t Decoder::u32() {
  const unsigned char* b = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[i]} << (8 * i);
  return v;
}

std::uint64_t Decoder::u64() {
  const unsigned char* b = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
  return v;
}

double Decoder::f64() { return std::bit_cast<double>(u64()); }

std::string Decoder::str() {
  const std::uint32_t n = u32();
  if (n > kMaxStringLen) {
    fail("section '" + name_ + "': implausible string length");
  }
  const unsigned char* b = take(n);
  return std::string(reinterpret_cast<const char*>(b), n);
}

void Decoder::finish() const {
  if (pos_ != payload_.size()) {
    fail("section '" + name_ + "': " + std::to_string(remaining()) +
         " unread payload byte(s) — writer/reader layout mismatch");
  }
}

// ---- Writer -----------------------------------------------------------------

Writer::Writer(SystemKind kind, std::uint64_t config_digest, double sim_time,
               std::uint64_t run_seed) {
  header_.kind = kind;
  header_.git_sha = buildinfo::git_sha();
  header_.build_type = buildinfo::build_type();
  header_.config_digest = config_digest;
  header_.sim_time = sim_time;
  header_.run_seed = run_seed;
}

Encoder& Writer::begin_section(std::string name) {
  PABR_CHECK(!finished_, "begin_section after finish");
  for (const auto& [existing, enc] : sections_) {
    PABR_CHECK(existing != name, "duplicate snapshot section name");
  }
  sections_.emplace_back(std::move(name), Encoder{});
  return sections_.back().second;
}

Encoder& Writer::cur() {
  PABR_CHECK(!sections_.empty(), "encoding outside any section");
  return sections_.back().second;
}

void Writer::finish(std::ostream& os) {
  PABR_CHECK(!finished_, "finish called twice");
  finished_ = true;

  std::string out;
  out.append(kMagic.data(), kMagic.size());
  put_u32(out, header_.format_version);
  put_u32(out, static_cast<std::uint32_t>(header_.kind));
  put_u32(out, static_cast<std::uint32_t>(header_.git_sha.size()));
  out.append(header_.git_sha);
  put_u32(out, static_cast<std::uint32_t>(header_.build_type.size()));
  out.append(header_.build_type);
  put_u64(out, header_.config_digest);
  put_u64(out, std::bit_cast<std::uint64_t>(header_.sim_time));
  put_u64(out, header_.run_seed);
  put_u32(out, static_cast<std::uint32_t>(sections_.size()));

  for (const auto& [name, enc] : sections_) {
    const std::string& payload = enc.bytes();
    put_u32(out, static_cast<std::uint32_t>(name.size()));
    out.append(name);
    put_u64(out, payload.size());
    put_u64(out, util::fnv1a_bytes(payload.data(), payload.size()));
    out.append(payload);
  }

  os.write(out.data(), static_cast<std::streamsize>(out.size()));
  PABR_CHECK(os.good(), "snapshot write failed");
}

// ---- Reader -----------------------------------------------------------------

Reader::Reader(std::istream& is) {
  StreamCursor in(is);

  char magic[8];
  in.bytes(magic, sizeof(magic), "magic");
  if (std::string_view(magic, sizeof(magic)) != kMagic) {
    fail("not a PABR snapshot (bad magic)");
  }
  header_.format_version = in.u32("format version");
  if (header_.format_version != kFormatVersion) {
    fail("unsupported snapshot format version " +
         std::to_string(header_.format_version) + " (this build reads " +
         std::to_string(kFormatVersion) + ")");
  }
  const std::uint32_t kind = in.u32("system kind");
  if (kind < 1 || kind > 3) {
    fail("unknown system kind " + std::to_string(kind));
  }
  header_.kind = static_cast<SystemKind>(kind);
  header_.git_sha = in.str("git sha");
  header_.build_type = in.str("build type");
  header_.config_digest = in.u64("config digest");
  header_.sim_time = in.f64("sim time");
  header_.run_seed = in.u64("run seed");

  const std::uint32_t n_sections = in.u32("section count");
  if (n_sections > kMaxSections) {
    fail("implausible section count " + std::to_string(n_sections));
  }
  sections_.reserve(n_sections);
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    Section s;
    s.name = in.str("section name");
    const std::uint64_t size = in.u64("section size");
    if (size > kMaxSectionBytes) {
      fail("section '" + s.name + "': implausible payload size");
    }
    s.checksum = in.u64("section checksum");
    s.payload.resize(static_cast<std::size_t>(size));
    if (size != 0) {
      in.bytes(s.payload.data(), s.payload.size(),
               ("payload of section '" + s.name + "'").c_str());
    }
    const std::uint64_t actual =
        util::fnv1a_bytes(s.payload.data(), s.payload.size());
    if (actual != s.checksum) {
      fail("section '" + s.name + "': checksum mismatch (file corrupted?)");
    }
    for (const Section& prev : sections_) {
      if (prev.name == s.name) fail("duplicate section '" + s.name + "'");
    }
    sections_.push_back(std::move(s));
  }
  // Anything after the last section is framing corruption, not slack.
  char extra;
  if (is.read(&extra, 1).gcount() != 0) {
    fail("trailing bytes after the last section");
  }
}

bool Reader::has_section(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

Decoder Reader::open(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return Decoder(s.name, s.payload);
  }
  fail("missing required section '" + std::string(name) + "'");
}

void Reader::require_kind(SystemKind kind) const {
  if (header_.kind != kind) {
    fail("snapshot was written by a different simulator kind (file kind " +
         std::to_string(static_cast<std::uint32_t>(header_.kind)) +
         ", expected " + std::to_string(static_cast<std::uint32_t>(kind)) +
         ")");
  }
}

}  // namespace pabr::snapshot
