// Versioned, endian-stable binary snapshot container (DESIGN.md §13).
//
// A snapshot file is a header followed by named sections:
//
//   header   magic "PABRSNAP" | u32 format_version | u32 system kind |
//            str git_sha | str build_type | u64 config digest |
//            f64 sim_time | u64 run_seed | u32 section count
//   section  str name | u64 payload size | u64 FNV-1a checksum | payload
//
// Every integer is written as explicit little-endian bytes and every
// double as the little-endian bytes of its IEEE-754 bit pattern, so a
// snapshot written on any host loads bit-for-bit on any other. Strings
// are u32 length + raw bytes. Section payloads are self-describing only
// to their producer — the container just frames, checksums and names
// them, which is what lets `pabr-snapshot` validate and diff files
// without instantiating a simulator.
//
// Readers are strict: bad magic, an unknown format version, a checksum
// mismatch, a truncated payload or an over-read all throw FormatError
// with a message naming the offending section. The load path never
// constructs simulation state from an unvalidated byte.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pabr::snapshot {

inline constexpr std::string_view kMagic = "PABRSNAP";
// Version history:
//   1 — initial format.
//   2 — SystemConfig gained `time_origin` (appended after `seed`).
inline constexpr std::uint32_t kFormatVersion = 2;

/// Which simulator wrote the file; a loader refuses a mismatched kind.
enum class SystemKind : std::uint32_t {
  kLinear = 1,   ///< core::CellularSystem (1-D road)
  kHex = 2,      ///< core::HexCellularSystem
  kSharded = 3,  ///< sim::sharded::ShardedExecutor
};

/// Malformed, truncated or corrupted snapshot input.
class FormatError : public std::runtime_error {
 public:
  explicit FormatError(const std::string& what) : std::runtime_error(what) {}
};

/// Accumulates one section's payload with explicit little-endian
/// encoding.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view s);

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian decoding of one section's payload.
class Decoder {
 public:
  Decoder(std::string_view name, std::string_view payload)
      : name_(name), payload_(payload) {}

  std::uint8_t u8();
  bool b() { return u8() != 0; }
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();

  std::size_t remaining() const { return payload_.size() - pos_; }
  /// Every payload byte must be consumed — a partial read means the
  /// writer and reader disagree about the section layout.
  void finish() const;

 private:
  const unsigned char* take(std::size_t n);

  std::string name_;
  std::string_view payload_;
  std::size_t pos_ = 0;
};

struct Header {
  std::uint32_t format_version = kFormatVersion;
  SystemKind kind = SystemKind::kLinear;
  std::string git_sha;
  std::string build_type;
  std::uint64_t config_digest = 0;
  double sim_time = 0.0;
  std::uint64_t run_seed = 0;
};

/// Builds a snapshot in memory section by section; finish() frames and
/// checksums everything into the output stream.
class Writer {
 public:
  Writer(SystemKind kind, std::uint64_t config_digest, double sim_time,
         std::uint64_t run_seed);

  /// Starts a new section; all encoding calls go to it until the next
  /// begin_section()/finish(). Names must be unique within a file.
  Encoder& begin_section(std::string name);

  // Convenience forwarders into the current section.
  void u8(std::uint8_t v) { cur().u8(v); }
  void b(bool v) { cur().b(v); }
  void u32(std::uint32_t v) { cur().u32(v); }
  void u64(std::uint64_t v) { cur().u64(v); }
  void i64(std::int64_t v) { cur().i64(v); }
  void f64(double v) { cur().f64(v); }
  void str(std::string_view s) { cur().str(s); }

  void finish(std::ostream& os);

 private:
  Encoder& cur();

  Header header_;
  std::vector<std::pair<std::string, Encoder>> sections_;
  bool finished_ = false;
};

struct Section {
  std::string name;
  std::uint64_t checksum = 0;
  std::string payload;
};

/// Parses and validates a whole snapshot stream (header, framing, every
/// section checksum). Throws FormatError on any defect.
class Reader {
 public:
  explicit Reader(std::istream& is);

  const Header& header() const { return header_; }
  const std::vector<Section>& sections() const { return sections_; }

  bool has_section(std::string_view name) const;
  /// Decoder over a named section; throws FormatError when absent.
  Decoder open(std::string_view name) const;

  /// Refuses files written by a different simulator kind.
  void require_kind(SystemKind kind) const;

 private:
  Header header_;
  std::vector<Section> sections_;
};

}  // namespace pabr::snapshot
