#include "snapshot/parts.h"

#include <array>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/digest.h"

namespace pabr::snapshot {
namespace {

// ---- Small shared pieces -------------------------------------------------

void put_cell_id(Encoder& e, geom::CellId c) {
  e.i64(static_cast<std::int64_t>(c));
}
geom::CellId get_cell_id(Decoder& d) {
  return static_cast<geom::CellId>(d.i64());
}

void put_ratio(Encoder& e, const sim::RatioEstimator& r) {
  e.u64(r.hits());
  e.u64(r.trials());
}
void restore_ratio(Decoder& d, sim::RatioEstimator& r) {
  const std::uint64_t hits = d.u64();
  const std::uint64_t trials = d.u64();
  r.restore(hits, trials);
}

void put_ns(Encoder& e, const admission::NsConfig& c) {
  e.f64(c.estimation_interval_s);
  e.f64(c.overload_target);
  e.f64(c.mean_sojourn_s);
  e.f64(c.mean_lifetime_s);
}
admission::NsConfig get_ns(Decoder& d) {
  admission::NsConfig c;
  c.estimation_interval_s = d.f64();
  c.overload_target = d.f64();
  c.mean_sojourn_s = d.f64();
  c.mean_lifetime_s = d.f64();
  return c;
}

void put_hoef(Encoder& e, const hoef::EstimatorConfig& c) {
  e.f64(c.t_int);
  e.f64(c.period);
  e.u32(static_cast<std::uint32_t>(c.n_win_periods));
  e.u32(static_cast<std::uint32_t>(c.weights.size()));
  for (const double w : c.weights) e.f64(w);
  e.u32(static_cast<std::uint32_t>(c.n_quad));
  e.f64(c.snapshot_tolerance);
}
hoef::EstimatorConfig get_hoef(Decoder& d) {
  hoef::EstimatorConfig c;
  c.t_int = d.f64();
  c.period = d.f64();
  c.n_win_periods = static_cast<int>(d.u32());
  c.weights.clear();
  const std::uint32_t n = d.u32();
  c.weights.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) c.weights.push_back(d.f64());
  c.n_quad = static_cast<int>(d.u32());
  c.snapshot_tolerance = d.f64();
  return c;
}

void put_telemetry_config(Encoder& e, const telemetry::TelemetryConfig& c) {
  e.b(c.enabled);
  e.b(c.trace);
  e.u64(static_cast<std::uint64_t>(c.trace_capacity));
  e.u32(c.trace_sample_every);
  e.b(c.time_admissions);
}
telemetry::TelemetryConfig get_telemetry_config(Decoder& d) {
  telemetry::TelemetryConfig c;
  c.enabled = d.b();
  c.trace = d.b();
  c.trace_capacity = static_cast<std::size_t>(d.u64());
  c.trace_sample_every = d.u32();
  c.time_admissions = d.b();
  return c;
}

void put_fault_config(Encoder& e, const fault::FaultConfig& c) {
  e.b(c.enabled);
  e.u64(c.seed);
  e.f64(c.link_mtbf_s);
  e.f64(c.link_mttr_s);
  e.f64(c.message_loss);
  e.f64(c.message_delay);
  e.f64(c.station_mtbf_s);
  e.f64(c.station_mttr_s);
  e.f64(c.timeout_s);
  e.u32(static_cast<std::uint32_t>(c.max_retries));
  e.f64(c.backoff_base_s);
  e.f64(c.backoff_max_s);
  e.f64(c.degraded_floor_bu);
  e.u32(static_cast<std::uint32_t>(c.outages.size()));
  for (const fault::ScriptedOutage& o : c.outages) {
    e.u32(static_cast<std::uint32_t>(o.kind));
    put_cell_id(e, o.a);
    put_cell_id(e, o.b);
    e.f64(o.from);
    e.f64(o.until);
  }
}
fault::FaultConfig get_fault_config(Decoder& d) {
  fault::FaultConfig c;
  c.enabled = d.b();
  c.seed = d.u64();
  c.link_mtbf_s = d.f64();
  c.link_mttr_s = d.f64();
  c.message_loss = d.f64();
  c.message_delay = d.f64();
  c.station_mtbf_s = d.f64();
  c.station_mttr_s = d.f64();
  c.timeout_s = d.f64();
  c.max_retries = static_cast<int>(d.u32());
  c.backoff_base_s = d.f64();
  c.backoff_max_s = d.f64();
  c.degraded_floor_bu = d.f64();
  const std::uint32_t n = d.u32();
  c.outages.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    fault::ScriptedOutage o;
    o.kind = static_cast<fault::ScriptedOutage::Kind>(d.u32());
    o.a = get_cell_id(d);
    o.b = get_cell_id(d);
    o.from = d.f64();
    o.until = d.f64();
    c.outages.push_back(o);
  }
  return c;
}

void put_profile(Encoder& e, const std::optional<traffic::DailyProfile>& p) {
  e.b(p.has_value());
  if (!p) return;
  const auto& knots = p->knots();
  e.u32(static_cast<std::uint32_t>(knots.size()));
  for (const auto& [hour, value] : knots) {
    e.f64(hour);
    e.f64(value);
  }
}
std::optional<traffic::DailyProfile> get_profile(Decoder& d) {
  if (!d.b()) return std::nullopt;
  const std::uint32_t n = d.u32();
  std::vector<std::pair<double, double>> knots;
  knots.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const double hour = d.f64();
    const double value = d.f64();
    knots.emplace_back(hour, value);
  }
  return traffic::DailyProfile(std::move(knots));
}

void put_histogram_summary(Encoder& e, const telemetry::HistogramSummary& h) {
  e.str(h.name);
  e.f64(h.lo);
  e.f64(h.hi);
  e.u64(h.count);
  e.f64(h.sum);
  e.f64(h.min);
  e.f64(h.max);
  e.f64(h.p50);
  e.f64(h.p99);
  e.u64(h.underflow);
  e.u64(h.overflow);
  e.u32(static_cast<std::uint32_t>(h.buckets.size()));
  for (const std::uint64_t b : h.buckets) e.u64(b);
}
telemetry::HistogramSummary get_histogram_summary(Decoder& d) {
  telemetry::HistogramSummary h;
  h.name = d.str();
  h.lo = d.f64();
  h.hi = d.f64();
  h.count = d.u64();
  h.sum = d.f64();
  h.min = d.f64();
  h.max = d.f64();
  h.p50 = d.f64();
  h.p99 = d.f64();
  h.underflow = d.u64();
  h.overflow = d.u64();
  const std::uint32_t n = d.u32();
  h.buckets.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) h.buckets.push_back(d.u64());
  return h;
}

}  // namespace

// ---- Configs -------------------------------------------------------------

void put_config(Encoder& e, const core::SystemConfig& c) {
  e.u32(static_cast<std::uint32_t>(c.num_cells));
  e.f64(c.cell_diameter_km);
  e.b(c.ring);
  e.f64(c.capacity_bu);
  e.f64(c.soft_capacity_margin);
  e.b(c.adaptive_qos);
  e.u32(static_cast<std::uint32_t>(c.video_min_bu));
  e.b(c.wired.has_value());
  if (c.wired) {
    e.f64(c.wired->access_capacity_bu);
    e.f64(c.wired->uplink_capacity_bu);
  }
  e.f64(c.soft_handoff_zone_km);
  e.u32(static_cast<std::uint32_t>(c.policy));
  e.f64(c.static_g);
  put_ns(e, c.ns);
  e.f64(c.phd_target);
  e.f64(c.t_start);
  e.u32(static_cast<std::uint32_t>(c.t_est_step));
  put_hoef(e, c.hoef);
  e.f64(c.known_route_fraction);
  e.f64(c.workload.arrival_rate_per_cell);
  e.f64(c.workload.voice_ratio);
  e.f64(c.workload.mean_lifetime_s);
  e.f64(c.workload.speed_min_kmh);
  e.f64(c.workload.speed_max_kmh);
  e.b(c.workload.bidirectional);
  e.b(c.retry.enabled);
  e.f64(c.retry.wait_s);
  e.f64(c.retry.giveup_step);
  put_profile(e, c.load_profile);
  put_profile(e, c.speed_profile);
  e.f64(c.speed_half_range_kmh);
  e.b(c.incremental_reservation);
  e.u32(static_cast<std::uint32_t>(c.interconnect));
  e.u32(static_cast<std::uint32_t>(c.traced_cells.size()));
  for (const geom::CellId cell : c.traced_cells) put_cell_id(e, cell);
  e.u32(static_cast<std::uint32_t>(c.audit_every));
  put_telemetry_config(e, c.telemetry);
  put_fault_config(e, c.fault);
  e.u64(c.seed);
  e.f64(c.time_origin);  // appended in format version 2
}

core::SystemConfig get_linear_config(Decoder& d) {
  core::SystemConfig c;
  c.num_cells = static_cast<int>(d.u32());
  c.cell_diameter_km = d.f64();
  c.ring = d.b();
  c.capacity_bu = d.f64();
  c.soft_capacity_margin = d.f64();
  c.adaptive_qos = d.b();
  c.video_min_bu = static_cast<traffic::Bandwidth>(d.u32());
  if (d.b()) {
    wired::BackboneConfig w;
    w.access_capacity_bu = d.f64();
    w.uplink_capacity_bu = d.f64();
    c.wired = w;
  } else {
    c.wired.reset();
  }
  c.soft_handoff_zone_km = d.f64();
  c.policy = static_cast<admission::PolicyKind>(d.u32());
  c.static_g = d.f64();
  c.ns = get_ns(d);
  c.phd_target = d.f64();
  c.t_start = d.f64();
  c.t_est_step = static_cast<reservation::StepPolicy>(d.u32());
  c.hoef = get_hoef(d);
  c.known_route_fraction = d.f64();
  c.workload.arrival_rate_per_cell = d.f64();
  c.workload.voice_ratio = d.f64();
  c.workload.mean_lifetime_s = d.f64();
  c.workload.speed_min_kmh = d.f64();
  c.workload.speed_max_kmh = d.f64();
  c.workload.bidirectional = d.b();
  c.retry.enabled = d.b();
  c.retry.wait_s = d.f64();
  c.retry.giveup_step = d.f64();
  c.load_profile = get_profile(d);
  c.speed_profile = get_profile(d);
  c.speed_half_range_kmh = d.f64();
  c.incremental_reservation = d.b();
  c.interconnect = static_cast<backhaul::InterconnectKind>(d.u32());
  const std::uint32_t n_traced = d.u32();
  c.traced_cells.clear();
  c.traced_cells.reserve(n_traced);
  for (std::uint32_t i = 0; i < n_traced; ++i) {
    c.traced_cells.push_back(get_cell_id(d));
  }
  c.audit_every = static_cast<int>(d.u32());
  c.telemetry = get_telemetry_config(d);
  c.fault = get_fault_config(d);
  c.seed = d.u64();
  c.time_origin = d.f64();
  return c;
}

std::uint64_t config_digest(const core::SystemConfig& c) {
  Encoder e;
  put_config(e, c);
  return util::fnv1a_bytes(e.bytes().data(), e.bytes().size());
}

void put_config(Encoder& e, const core::HexSystemConfig& c) {
  e.u32(static_cast<std::uint32_t>(c.rows));
  e.u32(static_cast<std::uint32_t>(c.cols));
  e.b(c.wrap);
  e.f64(c.capacity_bu);
  e.u32(static_cast<std::uint32_t>(c.policy));
  e.f64(c.static_g);
  put_ns(e, c.ns);
  e.f64(c.phd_target);
  e.f64(c.t_start);
  put_hoef(e, c.hoef);
  e.f64(c.arrival_rate_per_cell);
  e.f64(c.voice_ratio);
  e.f64(c.mean_lifetime_s);
  e.f64(c.speed_min_kmh);
  e.f64(c.speed_max_kmh);
  e.f64(c.motion.cell_diameter_km);
  e.f64(c.motion.persistence);
  e.f64(c.motion.jitter);
  e.b(c.incremental_reservation);
  e.u32(static_cast<std::uint32_t>(c.audit_every));
  put_telemetry_config(e, c.telemetry);
  put_fault_config(e, c.fault);
  e.u64(c.seed);
}

core::HexSystemConfig get_hex_config(Decoder& d) {
  core::HexSystemConfig c;
  c.rows = static_cast<int>(d.u32());
  c.cols = static_cast<int>(d.u32());
  c.wrap = d.b();
  c.capacity_bu = d.f64();
  c.policy = static_cast<admission::PolicyKind>(d.u32());
  c.static_g = d.f64();
  c.ns = get_ns(d);
  c.phd_target = d.f64();
  c.t_start = d.f64();
  c.hoef = get_hoef(d);
  c.arrival_rate_per_cell = d.f64();
  c.voice_ratio = d.f64();
  c.mean_lifetime_s = d.f64();
  c.speed_min_kmh = d.f64();
  c.speed_max_kmh = d.f64();
  c.motion.cell_diameter_km = d.f64();
  c.motion.persistence = d.f64();
  c.motion.jitter = d.f64();
  c.incremental_reservation = d.b();
  c.audit_every = static_cast<int>(d.u32());
  c.telemetry = get_telemetry_config(d);
  c.fault = get_fault_config(d);
  c.seed = d.u64();
  return c;
}

std::uint64_t config_digest(const core::HexSystemConfig& c) {
  Encoder e;
  put_config(e, c);
  return util::fnv1a_bytes(e.bytes().data(), e.bytes().size());
}

// ---- Statistics accumulators --------------------------------------------

void put_twm(Encoder& e, const sim::TimeWeightedMean& m) {
  const sim::TimeWeightedMean::State s = m.state();
  e.f64(s.integral);
  e.f64(s.current);
  e.f64(s.last_time);
  e.f64(s.start);
  e.b(s.has_value);
}

void restore_twm(Decoder& d, sim::TimeWeightedMean& m) {
  sim::TimeWeightedMean::State s;
  s.integral = d.f64();
  s.current = d.f64();
  s.last_time = d.f64();
  s.start = d.f64();
  s.has_value = d.b();
  m.restore(s);
}

void put_cell_metrics(Encoder& e, const core::CellMetrics& m) {
  put_ratio(e, m.pcb);
  put_ratio(e, m.phd);
  put_twm(e, m.br_mean);
  put_twm(e, m.bu_mean);
  e.u64(m.degrades.count());
  e.u64(m.upgrades.count());
  put_twm(e, m.overload);
  e.u64(m.soft_alloc.count());
  e.u64(m.soft_fallback.count());
}

void restore_cell_metrics(Decoder& d, core::CellMetrics& m) {
  restore_ratio(d, m.pcb);
  restore_ratio(d, m.phd);
  restore_twm(d, m.br_mean);
  restore_twm(d, m.bu_mean);
  m.degrades.restore(d.u64());
  m.upgrades.restore(d.u64());
  restore_twm(d, m.overload);
  m.soft_alloc.restore(d.u64());
  m.soft_fallback.restore(d.u64());
}

void put_series(Encoder& e, const sim::Series& s) {
  const auto& points = s.points();
  e.u32(static_cast<std::uint32_t>(points.size()));
  for (const sim::Series::Point& p : points) {
    e.f64(p.t);
    e.f64(p.v);
  }
}

void restore_series(Decoder& d, sim::Series& s) {
  PABR_CHECK(s.empty(), "series restore on a non-empty series");
  const std::uint32_t n = d.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const double t = d.f64();
    const double v = d.f64();
    s.add(t, v);
  }
}

// ---- Radio / control-plane state ----------------------------------------

void put_cell(Encoder& e, const core::Cell& cell) {
  const auto& entries = cell.connections();
  e.u32(static_cast<std::uint32_t>(entries.size()));
  for (const traffic::ConnectionEntry& entry : entries) {
    e.u64(entry.id);
    e.i64(entry.bandwidth);
    e.i64(entry.view.reserve_bandwidth);
    put_cell_id(e, entry.view.prev_cell);
    e.f64(entry.view.entered_cell_at);
    e.i64(entry.view.direction);
    e.b(entry.view.route_known);
  }
}

void restore_cell(Decoder& d, core::Cell& cell) {
  PABR_CHECK(cell.connection_count() == 0,
             "cell restore on a non-empty cell");
  const std::uint32_t n = d.u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    const traffic::ConnectionId id = d.u64();
    const auto bw = static_cast<traffic::Bandwidth>(d.i64());
    traffic::ReservationView view;
    view.reserve_bandwidth = static_cast<traffic::Bandwidth>(d.i64());
    view.prev_cell = get_cell_id(d);
    view.entered_cell_at = d.f64();
    view.direction = static_cast<std::int8_t>(d.i64());
    view.route_known = d.b();
    cell.attach(id, bw, view);
  }
}

void put_station(Encoder& e, const core::BaseStation& bs) {
  bs.estimator().save(e);
  const reservation::TestWindowController::State w = bs.window().state();
  e.u64(w.w_obs);
  e.u64(w.n_h);
  e.u64(w.n_hd);
  e.f64(w.t_est);
  e.i64(w.last_direction);
  e.i64(w.streak);
  e.f64(bs.current_reservation());
}

void restore_station(Decoder& d, core::BaseStation& bs) {
  bs.estimator().load(d);
  reservation::TestWindowController::State w;
  w.w_obs = d.u64();
  w.n_h = d.u64();
  w.n_hd = d.u64();
  w.t_est = d.f64();
  w.last_direction = static_cast<int>(d.i64());
  w.streak = static_cast<int>(d.i64());
  bs.window().restore(w);
  bs.set_current_reservation(d.f64());
}

// ---- Traffic entities ----------------------------------------------------

void put_request(Encoder& e, const traffic::ConnectionRequest& r) {
  e.u64(r.id);
  put_cell_id(e, r.cell);
  e.f64(r.position_km);
  e.i64(r.direction);
  e.f64(r.speed_kmh);
  e.u32(static_cast<std::uint32_t>(r.service));
  e.f64(r.lifetime_s);
  e.f64(r.requested_at);
  e.i64(r.attempt);
}

traffic::ConnectionRequest get_request(Decoder& d) {
  traffic::ConnectionRequest r;
  r.id = d.u64();
  r.cell = get_cell_id(d);
  r.position_km = d.f64();
  r.direction = static_cast<int>(d.i64());
  r.speed_kmh = d.f64();
  r.service = static_cast<traffic::ServiceClass>(d.u32());
  r.lifetime_s = d.f64();
  r.requested_at = d.f64();
  r.attempt = static_cast<int>(d.i64());
  return r;
}

void put_mobile(Encoder& e, const mobility::Mobile& m) {
  e.u64(m.id);
  e.u32(static_cast<std::uint32_t>(m.service));
  put_cell_id(e, m.cell);
  put_cell_id(e, m.prev_cell);
  e.f64(m.entered_cell_at);
  e.f64(m.position_km);
  e.f64(m.position_at);
  e.i64(m.direction);
  e.f64(m.speed_kmh);
  e.f64(m.admitted_at);
  e.f64(m.expires_at);
  e.b(m.route_known);
  e.i64(m.current_bandwidth);
}

mobility::Mobile get_mobile(Decoder& d) {
  mobility::Mobile m;
  m.id = d.u64();
  m.service = static_cast<traffic::ServiceClass>(d.u32());
  m.cell = get_cell_id(d);
  m.prev_cell = get_cell_id(d);
  m.entered_cell_at = d.f64();
  m.position_km = d.f64();
  m.position_at = d.f64();
  m.direction = static_cast<int>(d.i64());
  m.speed_kmh = d.f64();
  m.admitted_at = d.f64();
  m.expires_at = d.f64();
  m.route_known = d.b();
  m.current_bandwidth = static_cast<traffic::Bandwidth>(d.i64());
  return m;
}

// ---- Backhaul ------------------------------------------------------------

void put_accountant(Encoder& e, const backhaul::SignalingAccountant& a) {
  PABR_CHECK(!a.admission_open(),
             "snapshot inside an open admission bracket");
  e.f64(a.per_admission_sum());
  e.u64(a.admissions_observed());
  e.u64(a.total_br_calculations());
}

void restore_accountant(Decoder& d, backhaul::SignalingAccountant& a) {
  const double sum = d.f64();
  const std::uint64_t admissions = d.u64();
  const std::uint64_t total = d.u64();
  a.restore(sum, admissions, total);
}

void put_interconnect(Encoder& e, const backhaul::InterconnectModel& ic) {
  constexpr auto kCount =
      static_cast<std::size_t>(backhaul::MessageType::kCount);
  for (std::size_t t = 0; t < kCount; ++t) {
    e.u64(ic.messages(static_cast<backhaul::MessageType>(t)));
  }
  e.u64(ic.total_hops());
}

void restore_interconnect(Decoder& d, backhaul::InterconnectModel& ic) {
  constexpr auto kCount =
      static_cast<std::size_t>(backhaul::MessageType::kCount);
  std::array<std::uint64_t, kCount> by_type{};
  for (std::size_t t = 0; t < kCount; ++t) by_type[t] = d.u64();
  const std::uint64_t total_hops = d.u64();
  ic.restore(by_type, total_hops);
}

void put_backbone(Encoder& e, const wired::Backbone& b, int num_cells) {
  for (geom::CellId c = 0; c < num_cells; ++c) {
    const auto& attached = b.access(c).attachments();
    e.u32(static_cast<std::uint32_t>(attached.size()));
    for (const auto& [id, bw] : attached) {
      e.u64(id);
      e.i64(bw);
    }
    e.f64(b.reservation(c));
  }
}

void restore_backbone(Decoder& d, wired::Backbone& b, int num_cells) {
  for (geom::CellId c = 0; c < num_cells; ++c) {
    const std::uint32_t n = d.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      const traffic::ConnectionId id = d.u64();
      const auto bw = static_cast<traffic::Bandwidth>(d.i64());
      b.admit(c, id, bw);
    }
    b.set_reservation(c, d.f64());
  }
}

// ---- Reservation engine --------------------------------------------------

void put_engine(Encoder& e, const reservation::IncrementalEngine& eng) {
  const auto& stale = eng.stale_keys();
  e.u32(static_cast<std::uint32_t>(stale.size()));
  for (const std::uint64_t key : stale) e.u64(key);
  e.u64(eng.pairs_invalidated());
  e.u64(eng.terms_recomputed());
  e.u64(eng.terms_reused());
}

void restore_engine(Decoder& d, reservation::IncrementalEngine& eng) {
  const std::uint32_t n = d.u32();
  std::vector<std::uint64_t> stale;
  stale.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) stale.push_back(d.u64());
  const std::uint64_t invalidated = d.u64();
  const std::uint64_t recomputed = d.u64();
  const std::uint64_t reused = d.u64();
  eng.restore(std::move(stale), invalidated, recomputed, reused);
}

// ---- Telemetry -----------------------------------------------------------

void put_metrics_snapshot(Encoder& e, const telemetry::MetricsSnapshot& s) {
  e.u32(static_cast<std::uint32_t>(s.counters.size()));
  for (const auto& [name, v] : s.counters) {
    e.str(name);
    e.u64(v);
  }
  e.u32(static_cast<std::uint32_t>(s.gauges.size()));
  for (const auto& [name, v] : s.gauges) {
    e.str(name);
    e.f64(v);
  }
  e.u32(static_cast<std::uint32_t>(s.histograms.size()));
  for (const telemetry::HistogramSummary& h : s.histograms) {
    put_histogram_summary(e, h);
  }
}

telemetry::MetricsSnapshot get_metrics_snapshot(Decoder& d) {
  telemetry::MetricsSnapshot s;
  std::uint32_t n = d.u32();
  s.counters.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = d.str();
    const std::uint64_t v = d.u64();
    s.counters.emplace_back(std::move(name), v);
  }
  n = d.u32();
  s.gauges.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name = d.str();
    const double v = d.f64();
    s.gauges.emplace_back(std::move(name), v);
  }
  n = d.u32();
  s.histograms.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    s.histograms.push_back(get_histogram_summary(d));
  }
  return s;
}

void put_trace_buffer(Encoder& e, const telemetry::TraceBuffer& b) {
  const std::vector<telemetry::TraceRecord> records = b.records();
  e.u32(static_cast<std::uint32_t>(records.size()));
  for (const telemetry::TraceRecord& r : records) {
    e.f64(r.t);
    e.i64(r.cell);
    e.u32(r.kind);
    e.u32(r.stream);
    e.u64(r.mobile);
    e.f64(r.payload);
  }
  e.u64(b.emitted());
  e.u64(b.sampled_out());
  e.u64(b.rotated_out());
  e.u64(b.sample_seq());
}

void restore_trace_buffer(Decoder& d, telemetry::TraceBuffer& b) {
  const std::uint32_t n = d.u32();
  std::vector<telemetry::TraceRecord> records;
  records.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    telemetry::TraceRecord r;
    r.t = d.f64();
    r.cell = static_cast<std::int32_t>(d.i64());
    r.kind = static_cast<std::uint16_t>(d.u32());
    r.stream = static_cast<std::uint16_t>(d.u32());
    r.mobile = d.u64();
    r.payload = d.f64();
    records.push_back(r);
  }
  const std::uint64_t emitted = d.u64();
  const std::uint64_t sampled_out = d.u64();
  const std::uint64_t rotated_out = d.u64();
  const std::uint64_t sample_seq = d.u64();
  b.restore(records, emitted, sampled_out, rotated_out, sample_seq);
}

}  // namespace pabr::snapshot
