// Shared snapshot serializers for the pieces both simulators are built
// from (DESIGN.md §13): full configs (and their FNV-1a digests, stamped
// into the container header), statistics accumulators, cell tables, base
// stations, telemetry, the signalling accountant, the wired backbone and
// the incremental reservation engine.
//
// Conventions: integers that can hold geom::kNoCell (-1) travel as i64;
// enums as u32; optionals as a presence flag followed by the payload.
// Every get_/restore_ function consumes exactly what its put_ counterpart
// wrote — Decoder::finish() in the callers enforces it.
#pragma once

#include <cstdint>

#include "backhaul/network.h"
#include "backhaul/signaling.h"
#include "core/base_station.h"
#include "core/cell.h"
#include "core/hex_system.h"
#include "core/metrics.h"
#include "core/system.h"
#include "mobility/mobile.h"
#include "reservation/engine.h"
#include "sim/series.h"
#include "sim/stats.h"
#include "snapshot/format.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "traffic/connection.h"
#include "wired/backbone.h"

namespace pabr::snapshot {

// ---- Configs -------------------------------------------------------------
// The serialized config is both the "config" section payload and the
// input of the header's config digest, so a resume can refuse a snapshot
// taken under different parameters before touching any state.
void put_config(Encoder& e, const core::SystemConfig& c);
core::SystemConfig get_linear_config(Decoder& d);
std::uint64_t config_digest(const core::SystemConfig& c);

void put_config(Encoder& e, const core::HexSystemConfig& c);
core::HexSystemConfig get_hex_config(Decoder& d);
std::uint64_t config_digest(const core::HexSystemConfig& c);

// ---- Statistics accumulators --------------------------------------------
void put_twm(Encoder& e, const sim::TimeWeightedMean& m);
void restore_twm(Decoder& d, sim::TimeWeightedMean& m);

void put_cell_metrics(Encoder& e, const core::CellMetrics& m);
void restore_cell_metrics(Decoder& d, core::CellMetrics& m);

void put_series(Encoder& e, const sim::Series& s);
void restore_series(Decoder& d, sim::Series& s);

// ---- Radio / control-plane state ----------------------------------------
/// The id-sorted connection table with each entry's reservation view;
/// restore_cell re-attaches in saved order onto a freshly built cell, so
/// occupancy is rebuilt by the production attach path (integral BUs make
/// the resulting used() float exact).
void put_cell(Encoder& e, const core::Cell& cell);
void restore_cell(Decoder& d, core::Cell& cell);

void put_station(Encoder& e, const core::BaseStation& bs);
void restore_station(Decoder& d, core::BaseStation& bs);

// ---- Traffic entities ----------------------------------------------------
void put_request(Encoder& e, const traffic::ConnectionRequest& r);
traffic::ConnectionRequest get_request(Decoder& d);

void put_mobile(Encoder& e, const mobility::Mobile& m);
mobility::Mobile get_mobile(Decoder& d);

// ---- Backhaul ------------------------------------------------------------
void put_accountant(Encoder& e, const backhaul::SignalingAccountant& a);
void restore_accountant(Decoder& d, backhaul::SignalingAccountant& a);

void put_interconnect(Encoder& e, const backhaul::InterconnectModel& ic);
void restore_interconnect(Decoder& d, backhaul::InterconnectModel& ic);

/// Per-access-link attachment tables + wired reservations; the uplink is
/// rebuilt implicitly because restore replays Backbone::admit per leg.
void put_backbone(Encoder& e, const wired::Backbone& b, int num_cells);
void restore_backbone(Decoder& d, wired::Backbone& b, int num_cells);

// ---- Reservation engine --------------------------------------------------
void put_engine(Encoder& e, const reservation::IncrementalEngine& eng);
void restore_engine(Decoder& d, reservation::IncrementalEngine& eng);

// ---- Telemetry -----------------------------------------------------------
void put_metrics_snapshot(Encoder& e, const telemetry::MetricsSnapshot& s);
telemetry::MetricsSnapshot get_metrics_snapshot(Decoder& d);

void put_trace_buffer(Encoder& e, const telemetry::TraceBuffer& b);
void restore_trace_buffer(Decoder& d, telemetry::TraceBuffer& b);

}  // namespace pabr::snapshot
