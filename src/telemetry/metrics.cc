#include "telemetry/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pabr::telemetry {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      buckets_(buckets, 0) {
  PABR_CHECK(hi > lo, "histogram range must be non-empty");
  PABR_CHECK(buckets > 0, "histogram needs at least one bucket");
}

void Histogram::add(double x) {
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  std::size_t idx = static_cast<std::size_t>((x - lo_) / width_);
  idx = std::min(idx, buckets_.size() - 1);  // fp edge at hi
  ++buckets_[idx];
}

double Histogram::bucket_low(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_high(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  // Underflow mass sits below the range: any quantile inside it reports
  // the lower edge (the tightest bound the bucket layout can give).
  double seen = static_cast<double>(underflow_);
  if (seen >= target && underflow_ > 0) return lo_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (seen + in_bucket >= target && in_bucket > 0.0) {
      const double frac = in_bucket == 0.0
                              ? 0.0
                              : std::clamp((target - seen) / in_bucket, 0.0,
                                           1.0);
      return bucket_low(i) + frac * width_;
    }
    seen += in_bucket;
  }
  return hi_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  underflow_ = 0;
  overflow_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void Histogram::restore(const HistogramSummary& s) {
  PABR_CHECK(s.lo == lo_ && s.hi == hi_ && s.buckets.size() == buckets_.size(),
             "histogram restore with a different bucket layout");
  buckets_ = s.buckets;
  underflow_ = s.underflow;
  overflow_ = s.overflow;
  count_ = s.count;
  sum_ = s.sum;
  if (count_ == 0) {
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
  } else {
    min_ = s.min;
    max_ = s.max;
  }
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

Counter* Registry::counter(const std::string& name) {
  if (const auto it = counter_index_.find(name);
      it != counter_index_.end()) {
    return &counters_[it->second];
  }
  counter_index_.emplace(name, counters_.size());
  counter_names_.push_back(name);
  counters_.emplace_back();
  return &counters_.back();
}

Gauge* Registry::gauge(const std::string& name) {
  if (const auto it = gauge_index_.find(name); it != gauge_index_.end()) {
    return &gauges_[it->second];
  }
  gauge_index_.emplace(name, gauges_.size());
  gauge_names_.push_back(name);
  gauges_.emplace_back();
  return &gauges_.back();
}

Histogram* Registry::histogram(const std::string& name, double lo, double hi,
                               std::size_t buckets) {
  if (const auto it = histogram_index_.find(name);
      it != histogram_index_.end()) {
    return &histograms_[it->second];
  }
  histogram_index_.emplace(name, histograms_.size());
  histogram_names_.push_back(name);
  histograms_.emplace_back(lo, hi, buckets);
  return &histograms_.back();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    s.counters.emplace_back(counter_names_[i], counters_[i].count());
  }
  s.gauges.reserve(gauges_.size());
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    s.gauges.emplace_back(gauge_names_[i], gauges_[i].value());
  }
  s.histograms.reserve(histograms_.size());
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    const Histogram& h = histograms_[i];
    HistogramSummary hs;
    hs.name = histogram_names_[i];
    hs.lo = h.lo();
    hs.hi = h.hi();
    hs.count = h.count();
    hs.sum = h.sum();
    hs.min = h.min();
    hs.max = h.max();
    hs.p50 = h.quantile(0.50);
    hs.p99 = h.quantile(0.99);
    hs.underflow = h.underflow();
    hs.overflow = h.overflow();
    hs.buckets = h.buckets();
    s.histograms.push_back(std::move(hs));
  }
  return s;
}

void Registry::reset() {
  for (Counter& c : counters_) c.reset();
  for (Gauge& g : gauges_) g.reset();
  for (Histogram& h : histograms_) h.reset();
}

void Registry::restore(const MetricsSnapshot& snap) {
  for (const auto& [name, v] : snap.counters) counter(name)->restore(v);
  for (const auto& [name, v] : snap.gauges) gauge(name)->set(v);
  for (const HistogramSummary& h : snap.histograms) {
    histogram(h.name, h.lo, h.hi,
              h.buckets.empty() ? 1 : h.buckets.size())
        ->restore(h);
  }
}

namespace {

/// Quantile over a merged HistogramSummary — same linear interpolation as
/// Histogram::quantile, but driven by the summary's bucket vector.
double summary_quantile(const HistogramSummary& h, double q) {
  if (h.count == 0 || h.buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double width =
      (h.hi - h.lo) / static_cast<double>(h.buckets.size());
  const double target = q * static_cast<double>(h.count);
  double seen = static_cast<double>(h.underflow);
  if (seen >= target && h.underflow > 0) return h.lo;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    const double in_bucket = static_cast<double>(h.buckets[i]);
    if (seen + in_bucket >= target && in_bucket > 0.0) {
      const double frac = std::clamp((target - seen) / in_bucket, 0.0, 1.0);
      return h.lo + width * (static_cast<double>(i) + frac);
    }
    seen += in_bucket;
  }
  return h.hi;
}

}  // namespace

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& snaps) {
  MetricsSnapshot out;
  std::unordered_map<std::string, std::size_t> counter_idx, gauge_idx,
      histo_idx;
  std::vector<std::uint64_t> gauge_samples;  // per-gauge sample counts

  // Snapshots from the same registry layout share one instrument set, so
  // the first snapshot's sizes are the merged sizes almost always.
  if (!snaps.empty()) {
    out.counters.reserve(snaps.front().counters.size());
    out.gauges.reserve(snaps.front().gauges.size());
    out.histograms.reserve(snaps.front().histograms.size());
    gauge_samples.reserve(snaps.front().gauges.size());
  }

  for (const MetricsSnapshot& s : snaps) {
    for (const auto& [name, v] : s.counters) {
      const auto [it, fresh] = counter_idx.emplace(name, out.counters.size());
      if (fresh) {
        out.counters.emplace_back(name, v);
      } else {
        out.counters[it->second].second += v;
      }
    }
    for (const auto& [name, v] : s.gauges) {
      const auto [it, fresh] = gauge_idx.emplace(name, out.gauges.size());
      if (fresh) {
        out.gauges.emplace_back(name, v);
        gauge_samples.push_back(1);
      } else {
        out.gauges[it->second].second += v;
        ++gauge_samples[it->second];
      }
    }
    for (const HistogramSummary& h : s.histograms) {
      const auto [it, fresh] = histo_idx.emplace(h.name,
                                                 out.histograms.size());
      if (fresh) {
        out.histograms.push_back(h);
        continue;
      }
      HistogramSummary& m = out.histograms[it->second];
      if (m.lo != h.lo || m.hi != h.hi ||
          m.buckets.size() != h.buckets.size()) {
        continue;  // layouts drifted — keep the first occurrence as-is
      }
      if (h.count == 0) continue;
      m.min = m.count == 0 ? h.min : std::min(m.min, h.min);
      m.max = m.count == 0 ? h.max : std::max(m.max, h.max);
      m.count += h.count;
      m.sum += h.sum;
      m.underflow += h.underflow;
      m.overflow += h.overflow;
      for (std::size_t i = 0; i < m.buckets.size(); ++i) {
        m.buckets[i] += h.buckets[i];
      }
    }
  }
  for (std::size_t i = 0; i < out.gauges.size(); ++i) {
    out.gauges[i].second /= static_cast<double>(gauge_samples[i]);
  }
  for (HistogramSummary& h : out.histograms) {
    h.p50 = summary_quantile(h, 0.50);
    h.p99 = summary_quantile(h, 0.99);
  }
  return out;
}

}  // namespace pabr::telemetry
