// Low-overhead metrics primitives for the telemetry subsystem: named
// counters, gauges, and fixed-bucket histograms collected in a Registry.
//
// Design constraints (see DESIGN.md §9):
//   * a bump is one u64 increment behind a raw pointer — components hold
//     Counter* handed out by the registry and never look names up on the
//     hot path;
//   * each simulator instance owns its own Registry, so the parallel
//     replication driver (sim/parallel.h) needs no locks: one registry is
//     only ever touched by the thread running its system;
//   * snapshots iterate in registration order, so two runs that register
//     the same instruments in the same order serialize identically —
//     keeping --json reports diffable across runs.
//
// The registry is always compiled (the pabr-trace tool and the snapshot
// plumbing need it even in PABR_TELEMETRY=OFF builds); only the emission
// hooks in the simulators are compile-gated.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

namespace pabr::telemetry {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { count_ += n; }
  std::uint64_t count() const { return count_; }
  void reset() { count_ = 0; }
  /// Snapshot restore: overwrites the tally with a saved value.
  void restore(std::uint64_t count) { count_ = count; }

 private:
  std::uint64_t count_ = 0;
};

/// Last-written value of a polled quantity.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

struct HistogramSummary;

/// Fixed-width-bucket histogram over [lo, hi). Out-of-range samples are
/// NOT clamped into the edge buckets: they land in explicit underflow
/// (x < lo) and overflow (x >= hi) counts, so a saturated edge bucket is
/// distinguishable from a mis-sized range while count()/sum()/min()/max()
/// still cover every sample (count == underflow + in-range + overflow).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  double bucket_low(std::size_t i) const;
  double bucket_high(std::size_t i) const;

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  /// Value at quantile q in [0, 1], linearly interpolated inside the
  /// bucket that crosses it. 0 when empty.
  double quantile(double q) const;

  void reset();
  /// Snapshot restore from a summary with the same bucket layout. An
  /// empty summary (count == 0) resets min/max to their sentinels.
  void restore(const HistogramSummary& s);

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A point-in-time copy of every instrument, in registration order.
struct HistogramSummary {
  std::string name;
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  std::uint64_t underflow = 0;  ///< samples below lo
  std::uint64_t overflow = 0;   ///< samples at or above hi
  std::vector<std::uint64_t> buckets;
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSummary> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  /// Counter value by name; 0 when absent (snapshot convenience for tests
  /// and report writers, not a hot path).
  std::uint64_t counter(const std::string& name) const;
};

/// Owns the instruments. Lookups by name happen once, at wiring time;
/// instrument pointers stay valid for the registry's lifetime (deque
/// storage, no reallocation).
class Registry {
 public:
  /// Returns the named counter, creating it on first use. Re-requesting a
  /// name returns the same object.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// First use fixes the bucket layout; later calls with the same name
  /// ignore lo/hi/buckets and return the existing histogram.
  Histogram* histogram(const std::string& name, double lo, double hi,
                       std::size_t buckets);

  MetricsSnapshot snapshot() const;
  void reset();  ///< zeroes every instrument, keeps registrations

  /// Snapshot restore: walks `snap` in order, find-or-creating each
  /// instrument and overwriting its state. Replaying the saved
  /// registration order reproduces instrument order exactly, and
  /// instruments wired up before the restore (e.g. the simulators'
  /// pre-registered counters) keep their pointers — deque storage never
  /// reallocates.
  void restore(const MetricsSnapshot& snap);

  std::size_t instruments() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  // registration-ordered names, parallel to the deques
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
};

/// Merges snapshots from independent runs (replications, sweep points)
/// into one: counters sum; gauges average (they are polled levels, not
/// totals); histograms with the same name and bucket layout merge
/// bucket-wise, with p50/p99 recomputed from the merged buckets.
/// Instruments appear in the order of their first occurrence, so merged
/// reports stay diffable.
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& snaps);

/// Null-safe bump used by instrumented components that may run without a
/// bound registry. Compiles to nothing when the telemetry hooks are
/// compiled out.
inline void bump(Counter* c, std::uint64_t n = 1) {
#ifdef PABR_TELEMETRY_ENABLED
  if (c != nullptr) c->add(n);
#else
  (void)c;
  (void)n;
#endif
}

}  // namespace pabr::telemetry
