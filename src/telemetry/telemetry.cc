#include "telemetry/telemetry.h"

namespace pabr::telemetry {

void Collector::configure(const TelemetryConfig& cfg) {
#ifdef PABR_TELEMETRY_ENABLED
  enabled_ = cfg.enabled;
  tracing_ = cfg.enabled && cfg.trace && cfg.trace_capacity > 0;
  time_admissions_ = cfg.enabled && cfg.time_admissions;
  if (tracing_) {
    buffer_ = TraceBuffer(cfg.trace_capacity, cfg.trace_sample_every);
  }
#else
  (void)cfg;
#endif
}

SimCounters make_sim_counters(Registry& r, double capacity_bu) {
  SimCounters c;
  c.admitted = r.counter("admission.admitted");
  c.blocked = r.counter("admission.blocked");
  c.blocked_wired = r.counter("admission.blocked_wired");
  c.retries = r.counter("admission.retries");
  c.handoff_completed = r.counter("handoff.completed");
  c.handoff_dropped = r.counter("handoff.dropped");
  c.handoff_dropped_wired = r.counter("handoff.dropped_wired");
  c.handoff_degraded = r.counter("handoff.degraded");
  c.handoff_upgraded = r.counter("handoff.upgraded");
  c.off_road = r.counter("handoff.off_road");
  c.expiries = r.counter("connection.expired");
  c.soft_allocs = r.counter("softho.alloc");
  c.soft_fallbacks = r.counter("softho.fallback");
  c.br_recomputes = r.counter("reservation.recomputes");
  c.terms_recomputed = r.counter("reservation.terms_recomputed");
  c.terms_reused = r.counter("reservation.terms_reused");
  c.quads_recorded = r.counter("hoef.quads_recorded");
  c.quads_evicted = r.counter("hoef.quads_evicted");
  c.br_calculations = r.counter("signaling.br_calculations");
  // ns/admission: sub-100ns to 1ms in 50 buckets covers the engine-on and
  // scratch paths alike; out-of-range samples clamp to the edge buckets.
  c.admission_ns = r.histogram("admission.ns", 0.0, 1.0e6, 50);
  const double hi = capacity_bu > 0.0 ? capacity_bu : 100.0;
  c.br_value = r.histogram("reservation.br", 0.0, hi, 32);
  c.handoff_sojourn = r.histogram("handoff.sojourn_s", 0.0, 300.0, 30);
  return c;
}

FaultCounters make_fault_counters(Registry& r) {
  FaultCounters c;
  c.retries = r.counter("fault.retries");
  c.timeouts = r.counter("fault.timeouts");
  c.ac_local_fallbacks = r.counter("fault.ac_local_fallbacks");
  c.floor_substitutions = r.counter("fault.floor_substitutions");
  c.station_blocks = r.counter("fault.station_blocks");
  c.station_drops = r.counter("fault.station_drops");
  c.pair_resyncs = r.counter("fault.pair_resyncs");
  return c;
}

}  // namespace pabr::telemetry
