// The per-system telemetry collector: one metrics Registry plus one
// TraceBuffer behind a single runtime switch, and the canonical
// instrument set the two simulators (core/system, core/hex_system) wire
// into their event handlers and subcomponents.
//
// Cost model:
//   * compiled out (PABR_TELEMETRY=OFF): enabled() is a constant false,
//     every hook folds away, telemetry::bump() is empty — the simulators
//     carry only an inert member;
//   * compiled in, runtime-disabled (the default TelemetryConfig): one
//     predictable branch per hook site; no instrument is ever registered
//     and no record allocated — bench numbers are unchanged;
//   * enabled: counter bumps are single u64 increments, trace emits are
//     one 32-byte store into a preallocated ring. The acceptance budget
//     is < 5% on bench/micro_admission's ns/admission.
//
// Determinism: the collector is write-only from the simulation's point of
// view — nothing it records feeds back into admission decisions, RNG
// draws, or event ordering, so trajectories are byte-identical with
// telemetry on, off, or compiled out.
#pragma once

#include <cstdint>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace pabr::telemetry {

struct TelemetryConfig {
  /// Master runtime switch; everything below is ignored when false.
  bool enabled = false;
  /// Collect trace records (counters/histograms are always collected when
  /// enabled).
  bool trace = true;
  /// Ring slots per run (32 bytes each; 2^20 = 32 MiB). 0 disables the
  /// trace while keeping the metrics.
  std::size_t trace_capacity = std::size_t{1} << 20;
  /// Keep every Nth eligible trace record (deterministic sampler, 1 = all).
  std::uint32_t trace_sample_every = 1;
  /// Wrap each admission test in a steady_clock pair feeding the
  /// "admission.ns" histogram. Wall-clock readings never touch simulation
  /// state, so this does not perturb determinism — only the trace/metrics
  /// content varies across hosts.
  bool time_admissions = true;
};

class Collector {
 public:
  Collector() = default;

  /// Applies `cfg`; called once from the owning system's constructor.
  void configure(const TelemetryConfig& cfg);

  bool enabled() const {
#ifdef PABR_TELEMETRY_ENABLED
    return enabled_;
#else
    return false;
#endif
  }
  bool tracing() const { return enabled() && tracing_; }
  bool time_admissions() const { return enabled() && time_admissions_; }

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }
  TraceBuffer& buffer() { return buffer_; }
  const TraceBuffer& buffer() const { return buffer_; }

  void emit(double t, EventKind kind, std::int32_t cell, std::uint64_t mobile,
            double payload) {
    if (tracing()) buffer_.emit(t, kind, cell, mobile, payload);
  }

  MetricsSnapshot snapshot() const { return registry_.snapshot(); }
  std::vector<TraceRecord> drain_trace() { return buffer_.drain(); }

 private:
  bool enabled_ = false;
  bool tracing_ = false;
  bool time_admissions_ = false;
  Registry registry_;
  TraceBuffer buffer_;
};

/// The canonical simulator instrument set, registered in one fixed order
/// so snapshots from different runs line up. Null pointers (when
/// telemetry is disabled) are tolerated everywhere via telemetry::bump.
struct SimCounters {
  // Admission outcomes (new connections).
  Counter* admitted = nullptr;
  Counter* blocked = nullptr;
  Counter* blocked_wired = nullptr;
  Counter* retries = nullptr;
  // Hand-off outcomes.
  Counter* handoff_completed = nullptr;
  Counter* handoff_dropped = nullptr;
  Counter* handoff_dropped_wired = nullptr;
  Counter* handoff_degraded = nullptr;
  Counter* handoff_upgraded = nullptr;
  Counter* off_road = nullptr;
  Counter* expiries = nullptr;
  Counter* soft_allocs = nullptr;
  Counter* soft_fallbacks = nullptr;
  // Reservation engine.
  Counter* br_recomputes = nullptr;
  Counter* terms_recomputed = nullptr;
  Counter* terms_reused = nullptr;
  // Hand-off estimation functions.
  Counter* quads_recorded = nullptr;
  Counter* quads_evicted = nullptr;
  // Signaling.
  Counter* br_calculations = nullptr;
  // Distributions.
  Histogram* admission_ns = nullptr;   ///< wall ns per admission test
  Histogram* br_value = nullptr;       ///< computed B_r values (BU)
  Histogram* handoff_sojourn = nullptr;///< sojourn at crossing (s)
};

/// Registers (or re-fetches) the canonical instruments on `registry`.
/// `capacity_bu` sizes the B_r histogram's range.
SimCounters make_sim_counters(Registry& registry, double capacity_bu);

/// Degraded-mode instruments, registered only when fault injection is
/// active (so fault-free snapshots keep their exact historical key set).
struct FaultCounters {
  Counter* retries = nullptr;             ///< signalling retransmissions
  Counter* timeouts = nullptr;            ///< retry budget exhausted
  Counter* ac_local_fallbacks = nullptr;  ///< AC2/AC3 -> AC1-local decisions
  Counter* floor_substitutions = nullptr; ///< static floor used for a p_h term
  Counter* station_blocks = nullptr;      ///< new calls refused, BS down
  Counter* station_drops = nullptr;       ///< hand-ins dropped, BS down
  Counter* pair_resyncs = nullptr;        ///< post-heal audited cache re-syncs
};

/// Registers (or re-fetches) the fault instruments on `registry`.
FaultCounters make_fault_counters(Registry& registry);

}  // namespace pabr::telemetry
