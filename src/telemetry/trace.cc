#include "telemetry/trace.h"

#include <cstring>
#include <fstream>
#include <iostream>

#include "util/digest.h"

namespace pabr::telemetry {
namespace {

constexpr char kMagic[8] = {'P', 'A', 'B', 'R', 'T', 'R', 'C', '1'};
// v2 appends an FNV-1a checksum of the record body after the records, so
// pabr-trace can tell a truncated/corrupted body from a well-formed one.
constexpr std::uint32_t kVersion = 2;
// A corrupt header must not drive a multi-gigabyte allocation.
constexpr std::uint64_t kMaxRecords = 1ull << 32;
constexpr std::uint32_t kMaxMetaEntries = 1u << 16;
constexpr std::uint32_t kMaxStringLen = 1u << 20;

void put_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_u64(std::ostream& out, std::uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void put_string(std::ostream& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool get_u32(std::istream& in, std::uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool get_u64(std::istream& in, std::uint64_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

bool get_string(std::istream& in, std::string* s) {
  std::uint32_t len = 0;
  if (!get_u32(in, &len) || len > kMaxStringLen) return false;
  s->resize(len);
  in.read(s->data(), static_cast<std::streamsize>(len));
  return in.good();
}

bool write_streams(const std::string& path, const TraceMeta& meta,
                   const std::vector<std::vector<TraceRecord>>& streams,
                   std::uint64_t rotated_out) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "warning: cannot write trace to " << path << '\n';
    return false;
  }
  out.write(kMagic, sizeof(kMagic));
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(meta.entries.size()));
  for (const auto& [key, value] : meta.entries) {
    put_string(out, key);
    put_string(out, value);
  }
  std::uint64_t total = 0;
  for (const auto& s : streams) total += s.size();
  put_u64(out, total);
  put_u64(out, rotated_out);
  util::Fnv1a body_digest;
  for (std::size_t slot = 0; slot < streams.size(); ++slot) {
    for (TraceRecord rec : streams[slot]) {
      rec.stream = static_cast<std::uint16_t>(slot);
      out.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
      body_digest.add_bytes(&rec, sizeof(rec));
    }
  }
  put_u64(out, body_digest.value());
  if (!out) {
    std::cerr << "warning: short write while tracing to " << path << '\n';
    return false;
  }
  return true;
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kAdmit: return "admit";
    case EventKind::kBlock: return "block";
    case EventKind::kWiredBlock: return "wired_block";
    case EventKind::kHandoff: return "handoff";
    case EventKind::kHandoffDrop: return "handoff_drop";
    case EventKind::kWiredDrop: return "wired_drop";
    case EventKind::kDegrade: return "degrade";
    case EventKind::kUpgrade: return "upgrade";
    case EventKind::kExpiry: return "expiry";
    case EventKind::kOffRoad: return "off_road";
    case EventKind::kBrRecompute: return "br_recompute";
    case EventKind::kQuadRecord: return "quad_record";
    case EventKind::kQuadEvict: return "quad_evict";
    case EventKind::kSoftAlloc: return "soft_alloc";
    case EventKind::kSoftFallback: return "soft_fallback";
    case EventKind::kRetry: return "retry";
    case EventKind::kTEstStep: return "t_est_step";
  }
  return "unknown";
}

TraceBuffer::TraceBuffer(std::size_t capacity, std::uint32_t sample_every)
    : capacity_(capacity),
      sample_every_(sample_every == 0 ? 1 : sample_every) {
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void TraceBuffer::emit(double t, EventKind kind, std::int32_t cell,
                       std::uint64_t mobile, double payload) {
  if (capacity_ == 0) return;
  ++emitted_;
  if (sample_every_ > 1 && (sample_seq_++ % sample_every_) != 0) {
    ++sampled_out_;
    return;
  }
  TraceRecord rec;
  rec.t = t;
  rec.cell = cell;
  rec.kind = static_cast<std::uint16_t>(kind);
  rec.mobile = mobile;
  rec.payload = payload;
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
    return;
  }
  // Ring full: overwrite the oldest slot.
  ring_[head_] = rec;
  head_ = (head_ + 1) % capacity_;
  wrapped_ = true;
  ++rotated_out_;
}

std::vector<TraceRecord> TraceBuffer::records() const {
  if (!wrapped_) return ring_;
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

std::vector<TraceRecord> TraceBuffer::drain() {
  std::vector<TraceRecord> out = records();
  ring_.clear();
  head_ = 0;
  wrapped_ = false;
  return out;
}

void TraceBuffer::clear() {
  ring_.clear();
  head_ = 0;
  wrapped_ = false;
  emitted_ = sampled_out_ = rotated_out_ = 0;
  sample_seq_ = 0;
}

void TraceBuffer::restore(const std::vector<TraceRecord>& records,
                          std::uint64_t emitted, std::uint64_t sampled_out,
                          std::uint64_t rotated_out,
                          std::uint64_t sample_seq) {
  ring_.assign(records.begin(), records.end());
  if (capacity_ != 0 && ring_.size() > capacity_) {
    // A snapshot from a larger ring: keep the newest records, as the
    // smaller ring itself would have.
    ring_.erase(ring_.begin(),
                ring_.begin() +
                    static_cast<std::ptrdiff_t>(ring_.size() - capacity_));
  }
  head_ = 0;
  wrapped_ = false;
  emitted_ = emitted;
  sampled_out_ = sampled_out;
  rotated_out_ = rotated_out;
  sample_seq_ = sample_seq;
}

void TraceMeta::set(const std::string& key, const std::string& value) {
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = value;
      return;
    }
  }
  entries.emplace_back(key, value);
}

std::string TraceMeta::get(const std::string& key) const {
  for (const auto& [k, v] : entries) {
    if (k == key) return v;
  }
  return {};
}

bool write_trace(const std::string& path, const TraceMeta& meta,
                 const std::vector<TraceRecord>& records,
                 std::uint64_t rotated_out) {
  return write_streams(path, meta, {records}, rotated_out);
}

bool write_merged_trace(const std::string& path, const TraceMeta& meta,
                        const std::vector<std::vector<TraceRecord>>& streams,
                        std::uint64_t rotated_out) {
  return write_streams(path, meta, streams, rotated_out);
}

std::optional<TraceFile> read_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot open trace " << path << '\n';
    return std::nullopt;
  }
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::cerr << "error: " << path << " is not a pabr trace\n";
    return std::nullopt;
  }
  std::uint32_t version = 0;
  if (!get_u32(in, &version)) {
    std::cerr << "error: truncated trace header in " << path << '\n';
    return std::nullopt;
  }
  if (version != kVersion) {
    std::cerr << "error: " << path << " has trace format version " << version
              << "; this build reads version " << kVersion << '\n';
    return std::nullopt;
  }
  TraceFile file;
  std::uint32_t meta_count = 0;
  if (!get_u32(in, &meta_count) || meta_count > kMaxMetaEntries) {
    std::cerr << "error: corrupt trace header in " << path << '\n';
    return std::nullopt;
  }
  for (std::uint32_t i = 0; i < meta_count; ++i) {
    std::string key, value;
    if (!get_string(in, &key) || !get_string(in, &value)) {
      std::cerr << "error: corrupt trace metadata in " << path << '\n';
      return std::nullopt;
    }
    file.meta.entries.emplace_back(std::move(key), std::move(value));
  }
  std::uint64_t count = 0;
  if (!get_u64(in, &count) || !get_u64(in, &file.rotated_out) ||
      count > kMaxRecords) {
    std::cerr << "error: corrupt trace header in " << path << '\n';
    return std::nullopt;
  }
  file.records.resize(count);
  in.read(reinterpret_cast<char*>(file.records.data()),
          static_cast<std::streamsize>(count * sizeof(TraceRecord)));
  if (!in.good() && count != 0) {
    std::cerr << "error: truncated trace body in " << path << '\n';
    return std::nullopt;
  }
  std::uint64_t checksum = 0;
  if (!get_u64(in, &checksum)) {
    std::cerr << "error: trace checksum missing in " << path << '\n';
    return std::nullopt;
  }
  const std::uint64_t actual = util::fnv1a_bytes(
      file.records.data(), file.records.size() * sizeof(TraceRecord));
  if (actual != checksum) {
    std::cerr << "error: trace body checksum mismatch in " << path
              << " (file corrupted?)\n";
    return std::nullopt;
  }
  return file;
}

}  // namespace pabr::telemetry
