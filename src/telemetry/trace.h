// Structured binary event trace: compact fixed-size records appended to a
// per-system ring buffer, serialized to a single `.pabrtrace` file, and
// read back by the bench/pabr_trace inspection tool.
//
// Determinism contract: tracing observes the simulation and never feeds
// back into it — no RNG draws, no event (re)ordering, no admission-visible
// state. Fuzz digests and figure CSVs are byte-identical with tracing on,
// off, or compiled out (tests/telemetry_determinism_test.cc).
//
// Threading: one TraceBuffer belongs to one simulator instance, and the
// deterministic parallel driver (sim/parallel.h) gives every replication
// its own system — so buffers are single-writer by construction. The
// merged file writer stamps each run's records with its slot index as the
// `stream` id, which is the replication index, not the OS thread — hence
// the file contents are independent of the thread count.
//
// Boundedness: the buffer is a ring of `capacity` records. When a run
// emits more, the oldest records rotate out (dropped_ counts them), so a
// million-event run costs a fixed 32 MiB at the default capacity. An
// optional deterministic sampler keeps every Nth eligible record instead
// of all of them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace pabr::telemetry {

/// What happened. Payload semantics per kind are documented inline; the
/// pabr-trace tool prints these names.
enum class EventKind : std::uint16_t {
  kAdmit = 1,        ///< new connection admitted; payload = bandwidth (BU)
  kBlock = 2,        ///< new connection blocked;  payload = bandwidth (BU)
  kWiredBlock = 3,   ///< admitted on air, blocked at backbone; payload = bw
  kHandoff = 4,      ///< hand-off survived; payload = granted bandwidth
  kHandoffDrop = 5,  ///< hand-off dropped; payload = requested bandwidth
  kWiredDrop = 6,    ///< dropped by the wired access link; payload = bw
  kDegrade = 7,      ///< adaptive-QoS degradation; payload = granted bw
  kUpgrade = 8,      ///< restored to full QoS; payload = granted bw
  kExpiry = 9,       ///< connection lifetime ended; payload = bandwidth
  kOffRoad = 10,     ///< mobile drove off the open road; payload = bw
  kBrRecompute = 11, ///< B_r recomputed for `cell`; payload = new B_r
  kQuadRecord = 12,  ///< quadruplet cached by `cell`; payload = sojourn (s)
  kQuadEvict = 13,   ///< quadruplet aged/rotated out; payload = count
  kSoftAlloc = 14,   ///< soft hand-off leg pre-allocated; payload = bw
  kSoftFallback = 15,///< zone entry found no room; payload = bw
  kRetry = 16,       ///< blocked request re-submitted; payload = attempt
  kTEstStep = 17,    ///< T_est adapted; payload = new T_est (s)
};

/// Stable display name ("admit", "handoff_drop", ...).
const char* event_kind_name(EventKind kind);

/// One trace record. 32 bytes, fixed layout, written to disk verbatim.
struct TraceRecord {
  double t = 0.0;             ///< simulation time (s)
  std::int32_t cell = -1;     ///< acting cell, -1 when not cell-scoped
  std::uint16_t kind = 0;     ///< EventKind
  std::uint16_t stream = 0;   ///< replication slot (assigned at merge)
  std::uint64_t mobile = 0;   ///< connection id, 0 when not per-mobile
  double payload = 0.0;       ///< kind-specific value
};
static_assert(sizeof(TraceRecord) == 32, "trace record layout drifted");

/// Single-writer bounded ring of TraceRecords with deterministic 1-in-N
/// sampling.
class TraceBuffer {
 public:
  /// `capacity` ring slots; `sample_every` keeps every Nth emitted record
  /// (1 = all). capacity 0 disables collection entirely.
  explicit TraceBuffer(std::size_t capacity = 0,
                       std::uint32_t sample_every = 1);

  void emit(double t, EventKind kind, std::int32_t cell, std::uint64_t mobile,
            double payload);

  /// Records currently held, oldest first (the ring unrolled).
  std::vector<TraceRecord> records() const;
  /// records() + clears the buffer (keeps capacity and counters).
  std::vector<TraceRecord> drain();

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  std::uint64_t emitted() const { return emitted_; }       ///< offered
  std::uint64_t sampled_out() const { return sampled_out_; }
  std::uint64_t rotated_out() const { return rotated_out_; }

  void clear();

  std::uint64_t sample_seq() const { return sample_seq_; }

  /// Snapshot restore: re-fills the ring (oldest first) and overwrites
  /// the counters. The restored ring starts unwrapped at slot 0 — an
  /// equivalent unrolling of the saved state, since records() is the only
  /// way the ring's internal rotation is observable.
  void restore(const std::vector<TraceRecord>& records, std::uint64_t emitted,
               std::uint64_t sampled_out, std::uint64_t rotated_out,
               std::uint64_t sample_seq);

 private:
  std::size_t capacity_;
  std::uint32_t sample_every_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  ///< next write slot once the ring is full
  bool wrapped_ = false;
  std::uint64_t emitted_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t rotated_out_ = 0;
  std::uint64_t sample_seq_ = 0;
};

/// Run-scoped key/value metadata persisted in the trace header (bench
/// name, seed, git sha, build type, thread count, ...).
struct TraceMeta {
  std::vector<std::pair<std::string, std::string>> entries;

  void set(const std::string& key, const std::string& value);
  /// Value for `key`, or empty when absent.
  std::string get(const std::string& key) const;
};

/// A parsed trace file.
struct TraceFile {
  TraceMeta meta;
  std::uint64_t rotated_out = 0;  ///< records lost to ring rotation
  std::vector<TraceRecord> records;
};

/// Writes one stream of records. Returns false (with a stderr warning) on
/// I/O failure — best-effort like csv::Writer.
bool write_trace(const std::string& path, const TraceMeta& meta,
                 const std::vector<TraceRecord>& records,
                 std::uint64_t rotated_out = 0);

/// Merges per-run record vectors into one file, stamping each run's
/// records with its slot index as `stream`. Slot order — not thread
/// schedule — determines file order, so the output is byte-identical
/// whatever --threads was.
bool write_merged_trace(const std::string& path, const TraceMeta& meta,
                        const std::vector<std::vector<TraceRecord>>& streams,
                        std::uint64_t rotated_out = 0);

/// Reads a trace file back; nullopt on missing/corrupt input (with a
/// stderr diagnostic).
std::optional<TraceFile> read_trace(const std::string& path);

}  // namespace pabr::telemetry
