#include "traffic/profiles.h"

#include <algorithm>

#include "util/check.h"
#include "util/mathx.h"

namespace pabr::traffic {

DailyProfile::DailyProfile(std::vector<std::pair<double, double>> knots)
    : knots_(std::move(knots)) {
  PABR_CHECK(!knots_.empty(), "DailyProfile: no knots");
  for (const auto& [h, v] : knots_) {
    PABR_CHECK(h >= 0.0 && h < 24.0, "DailyProfile: hour out of [0,24)");
    (void)v;
  }
  std::sort(knots_.begin(), knots_.end());
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    PABR_CHECK(knots_[i].first > knots_[i - 1].first,
               "DailyProfile: duplicate knot hour");
  }
}

double DailyProfile::at_hour(double hour) const {
  hour = mathx::positive_fmod(hour, 24.0);
  if (knots_.size() == 1) return knots_.front().second;

  // Find the knot interval containing `hour`, wrapping across midnight.
  auto it = std::upper_bound(
      knots_.begin(), knots_.end(), hour,
      [](double h, const std::pair<double, double>& k) { return h < k.first; });
  const auto& hi = (it == knots_.end()) ? knots_.front() : *it;
  const auto& lo = (it == knots_.begin()) ? knots_.back() : *std::prev(it);

  double span = hi.first - lo.first;
  double offset = hour - lo.first;
  if (span <= 0.0) span += 24.0;    // wrapped interval
  if (offset < 0.0) offset += 24.0;
  const double frac = offset / span;
  return lo.second + (hi.second - lo.second) * frac;
}

double DailyProfile::at(sim::Time t) const {
  return at_hour(t / sim::kHour);
}

double DailyProfile::max_value() const {
  double m = knots_.front().second;
  for (const auto& [h, v] : knots_) m = std::max(m, v);
  return m;
}

double DailyProfile::min_value() const {
  double m = knots_.front().second;
  for (const auto& [h, v] : knots_) m = std::min(m, v);
  return m;
}

DailyProfile paper_load_profile() {
  // Knots traced from Fig. 14(a): off-peak base load with three rush-hour
  // peaks at 9:00, 13:00 and 17:30.
  return DailyProfile({
      {0.0, 20.0},
      {6.0, 30.0},
      {8.0, 100.0},
      {9.0, 150.0},
      {10.0, 80.0},
      {12.0, 90.0},
      {13.0, 120.0},
      {14.0, 70.0},
      {16.5, 110.0},
      {17.5, 160.0},
      {19.0, 70.0},
      {22.0, 30.0},
  });
}

DailyProfile paper_speed_profile() {
  // Speeds dip when the road is congested (rush hours) and recover at
  // night: O3 of §3 ("the speeds of all mobiles ... are closely
  // correlated" during rush hours).
  return DailyProfile({
      {0.0, 110.0},
      {6.0, 100.0},
      {8.0, 60.0},
      {9.0, 40.0},
      {10.0, 80.0},
      {12.0, 70.0},
      {13.0, 50.0},
      {14.0, 80.0},
      {16.5, 60.0},
      {17.5, 40.0},
      {19.0, 90.0},
      {22.0, 110.0},
  });
}

}  // namespace pabr::traffic
