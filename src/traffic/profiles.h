// Time-of-day traffic/mobility profiles for the §5.3 time-varying
// experiments (paper Fig. 14(a)): the offered load peaks during rush hours
// (~9:00, ~13:00 and ~17-18:00) while average speeds dip, and both follow
// a daily cycle.
//
// A DailyProfile is a piecewise-linear, 24h-periodic curve defined by
// (hour, value) knots. The paper's published curve is provided as
// `paper_load_profile()` / `paper_speed_profile()`.
#pragma once

#include <utility>
#include <vector>

#include "sim/time.h"

namespace pabr::traffic {

class DailyProfile {
 public:
  /// Knots are (hour-of-day in [0,24), value); they are sorted on
  /// construction and interpolated linearly with wrap-around midnight.
  explicit DailyProfile(std::vector<std::pair<double, double>> knots);

  /// Value at absolute simulation time t (seconds), applying the 24 h
  /// period.
  double at(sim::Time t) const;

  /// Value at an hour-of-day in [0, 24).
  double at_hour(double hour) const;

  double max_value() const;
  double min_value() const;

  /// The sorted knot list (snapshot/config serialization).
  const std::vector<std::pair<double, double>>& knots() const {
    return knots_;
  }

 private:
  std::vector<std::pair<double, double>> knots_;
};

/// The original offered load L_o(t) of Fig. 14(a): base ~40 BU off-peak,
/// rush-hour peaks of ~140-160 BU at 9:00, 13:00 and 17:30.
DailyProfile paper_load_profile();

/// Average mobile speed S(t) of Fig. 14(a): ~100 km/h off-peak dropping to
/// ~40 km/h in rush hours; the sampled range is [S-20, S+20].
DailyProfile paper_speed_profile();

/// Half-width of the speed range around S(t) (paper: 20 km/h).
inline constexpr double kPaperSpeedHalfRange = 20.0;

}  // namespace pabr::traffic
