#include "traffic/retry.h"

#include <algorithm>

#include "util/check.h"

namespace pabr::traffic {

double RetryPolicy::retry_probability(int attempt) const {
  PABR_CHECK(attempt >= 1, "attempt counter is 1-based");
  if (!config_.enabled) return 0.0;
  // §5.3: p = 1 - giveup_step * N_ret, clamped at the 0 rail — with the
  // paper's 0.1 step the raw expression goes negative past N_ret = 10,
  // and a negative p would poison the bernoulli draw below.
  return std::max(0.0, 1.0 - config_.giveup_step * attempt);
}

bool RetryPolicy::validate_config(const RetryConfig& config) {
  PABR_CHECK(config.wait_s >= 0.0, "negative retry wait");
  PABR_CHECK(config.giveup_step >= 0.0, "negative give-up step");
  return true;
}

bool RetryPolicy::should_retry(int attempt) {
  const double p = retry_probability(attempt);
  if (p <= 0.0) return false;
  return rng_.bernoulli(p);
}

}  // namespace pabr::traffic
