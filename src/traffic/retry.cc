#include "traffic/retry.h"

#include <algorithm>

#include "util/check.h"

namespace pabr::traffic {

double RetryPolicy::retry_probability(int attempt) const {
  PABR_CHECK(attempt >= 1, "attempt counter is 1-based");
  if (!config_.enabled) return 0.0;
  return std::max(0.0, 1.0 - config_.giveup_step * attempt);
}

bool RetryPolicy::should_retry(int attempt) {
  const double p = retry_probability(attempt);
  if (p <= 0.0) return false;
  return rng_.bernoulli(p);
}

}  // namespace pabr::traffic
