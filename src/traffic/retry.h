// Blocked-call retry model of §5.3: "a blocked connection request will be
// re-requested with probability 1 − 0.1·N_ret after waiting 5 seconds,
// where N_ret is the number of times a connection request has been made."
//
// This creates the paper's positive-feedback effect: blocking inflates the
// actual offered load L_a above the original load L_o.
#pragma once

#include "sim/random.h"
#include "sim/time.h"

namespace pabr::traffic {

struct RetryConfig {
  bool enabled = false;
  sim::Duration wait_s = 5.0;
  /// Per-attempt decrement of the retry probability (0.1 in the paper).
  double giveup_step = 0.1;
};

class RetryPolicy {
 public:
  RetryPolicy(RetryConfig config, sim::Rng rng)
      : config_((validate_config(config), config)), rng_(rng) {}

  /// Decides whether a request blocked on its `attempt`-th try (1-based)
  /// is re-issued. Draws from this policy's RNG stream.
  bool should_retry(int attempt);

  /// Probability that the `attempt`-th blocked try is re-issued.
  double retry_probability(int attempt) const;

  sim::Duration wait() const { return config_.wait_s; }
  bool enabled() const { return config_.enabled; }

  /// Rejects negative waits and give-up steps (PABR_CHECK); returns true
  /// so it can run inside the constructor's initializer list.
  static bool validate_config(const RetryConfig& config);

  // Snapshot save/restore of the policy's RNG stream position.
  std::string rng_state() const { return rng_.save_state(); }
  void restore_rng(const std::string& state) { rng_.load_state(state); }

 private:
  RetryConfig config_;
  sim::Rng rng_;
};

}  // namespace pabr::traffic
