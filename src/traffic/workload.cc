#include "traffic/workload.h"

#include <limits>

#include "util/check.h"

namespace pabr::traffic {

double WorkloadConfig::mean_bandwidth() const {
  return voice_ratio * kVoiceBandwidth +
         (1.0 - voice_ratio) * kVideoBandwidth;
}

double WorkloadConfig::offered_load() const {
  return arrival_rate_per_cell * mean_bandwidth() * mean_lifetime_s;
}

double arrival_rate_for_load(double offered_load, double voice_ratio,
                             sim::Duration mean_lifetime_s) {
  PABR_CHECK(offered_load >= 0.0, "negative offered load");
  PABR_CHECK(voice_ratio >= 0.0 && voice_ratio <= 1.0,
             "voice ratio out of [0,1]");
  PABR_CHECK(mean_lifetime_s > 0.0, "non-positive lifetime");
  const double mean_bw =
      voice_ratio * kVoiceBandwidth + (1.0 - voice_ratio) * kVideoBandwidth;
  return offered_load / (mean_bw * mean_lifetime_s);
}

WorkloadGenerator::WorkloadGenerator(const geom::LinearTopology& road,
                                     WorkloadConfig config, sim::Rng rng)
    : road_(road), config_(config), rng_(rng) {
  PABR_CHECK(config_.arrival_rate_per_cell >= 0.0, "negative arrival rate");
  PABR_CHECK(config_.voice_ratio >= 0.0 && config_.voice_ratio <= 1.0,
             "voice ratio out of [0,1]");
  PABR_CHECK(config_.speed_min_kmh > 0.0 &&
                 config_.speed_max_kmh >= config_.speed_min_kmh,
             "bad speed range");
}

void WorkloadGenerator::set_rate_scale(RateScale scale,
                                       double max_rate_scale) {
  PABR_CHECK(max_rate_scale > 0.0, "non-positive max rate scale");
  rate_scale_ = std::move(scale);
  max_rate_scale_ = max_rate_scale;
}

void WorkloadGenerator::set_speed_range(SpeedRange range) {
  speed_range_ = std::move(range);
}

sim::Time WorkloadGenerator::next_arrival_after(sim::Time after) {
  const double base_rate =
      config_.arrival_rate_per_cell * static_cast<double>(road_.num_cells());
  if (base_rate <= 0.0) return std::numeric_limits<double>::infinity();
  if (!rate_scale_) return after + rng_.exponential(1.0 / base_rate);

  // Poisson thinning against the envelope rate base*max_scale: propose at
  // the envelope rate, accept with probability scale(t)/max_scale.
  const double envelope = base_rate * max_rate_scale_;
  sim::Time t = after;
  for (;;) {
    t += rng_.exponential(1.0 / envelope);
    const double scale = rate_scale_(t);
    PABR_CHECK(scale >= 0.0 && scale <= max_rate_scale_ + 1e-9,
               "rate scale escaped its declared envelope");
    if (rng_.uniform01() < scale / max_rate_scale_) return t;
  }
}

ConnectionRequest WorkloadGenerator::make_request(sim::Time t) {
  ConnectionRequest req;
  req.id = next_id_++;
  req.requested_at = t;
  req.position_km = rng_.uniform(0.0, road_.road_length_km());
  req.cell = road_.cell_at(req.position_km);
  req.direction =
      (config_.bidirectional && rng_.bernoulli(0.5)) ? -1 : +1;
  double lo = config_.speed_min_kmh;
  double hi = config_.speed_max_kmh;
  if (speed_range_) std::tie(lo, hi) = speed_range_(t);
  PABR_CHECK(lo > 0.0 && hi >= lo, "speed range degenerated");
  req.speed_kmh = rng_.uniform(lo, hi);
  req.service = rng_.bernoulli(config_.voice_ratio) ? ServiceClass::kVoice
                                                    : ServiceClass::kVideo;
  req.lifetime_s = rng_.exponential(config_.mean_lifetime_s);
  req.attempt = 1;
  return req;
}

}  // namespace pabr::traffic
