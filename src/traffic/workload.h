// Workload generation per §5.1 assumptions A2-A5:
//   A2: Poisson arrivals, rate lambda per cell, uniform position in cell
//   A3: voice (1 BU) w.p. R_vo, video (4 BU) otherwise
//   A4: direction +/-1 equiprobable, speed uniform in [SP_min, SP_max]
//   A5: exponential lifetime, mean 120 s
//
// The offered load per cell (paper Eq. 7) is
//   L = lambda * E[bandwidth] * mean_lifetime.
#pragma once

#include <functional>

#include "geom/linear_topology.h"
#include "sim/random.h"
#include "sim/time.h"
#include "traffic/connection.h"

namespace pabr::traffic {

struct WorkloadConfig {
  /// Connection generation rate per cell (connections/second/cell).
  double arrival_rate_per_cell = 0.0;
  /// R_vo: fraction of voice connections. Must lie in [0, 1].
  double voice_ratio = 1.0;
  /// Mean connection lifetime in seconds (A5).
  sim::Duration mean_lifetime_s = 120.0;
  /// Speed range [SP_min, SP_max] in km/h (A4).
  double speed_min_kmh = 80.0;
  double speed_max_kmh = 120.0;
  /// When true mobiles pick +/- direction equiprobably; when false all
  /// mobiles move in +1 direction (the Table 3 one-directional scenario).
  bool bidirectional = true;

  /// Mean bandwidth E[b] = R_vo*1 + (1-R_vo)*4 in BUs.
  double mean_bandwidth() const;
  /// Offered load per cell, Eq. (7).
  double offered_load() const;
};

/// Solves Eq. (7) for lambda given a target offered load.
double arrival_rate_for_load(double offered_load, double voice_ratio,
                             sim::Duration mean_lifetime_s = 120.0);

/// Draws connection requests on a linear road. Arrivals form one Poisson
/// process of rate n*lambda with the cell chosen uniformly — statistically
/// identical to independent per-cell processes and cheaper to simulate.
class WorkloadGenerator {
 public:
  /// `rate_scale(t)` (optional) multiplies the base arrival rate at time t
  /// — used by the time-varying scenario; must be bounded by
  /// `max_rate_scale` for thinning to stay exact.
  using RateScale = std::function<double(sim::Time)>;
  /// `speed_range(t)` (optional) overrides the speed bounds at time t.
  using SpeedRange = std::function<std::pair<double, double>(sim::Time)>;

  WorkloadGenerator(const geom::LinearTopology& road, WorkloadConfig config,
                    sim::Rng rng);

  /// Installs a time-varying arrival-rate multiplier (Poisson thinning).
  void set_rate_scale(RateScale scale, double max_rate_scale);
  void set_speed_range(SpeedRange range);

  /// Time of the next arrival strictly after `after`, or infinity when the
  /// base rate is zero.
  sim::Time next_arrival_after(sim::Time after);

  /// Materializes the request arriving at time `t`.
  ConnectionRequest make_request(sim::Time t);

  const WorkloadConfig& config() const { return config_; }

  // Snapshot save/restore: the RNG stream position plus the id counter
  // are the generator's only mutable state (the installed profiles are
  // pure functions reinstalled from the config on load).
  std::string rng_state() const { return rng_.save_state(); }
  ConnectionId next_id() const { return next_id_; }
  void restore(const std::string& rng_state, ConnectionId next_id) {
    rng_.load_state(rng_state);
    next_id_ = next_id;
  }

 private:
  const geom::LinearTopology& road_;
  WorkloadConfig config_;
  sim::Rng rng_;
  RateScale rate_scale_;
  double max_rate_scale_ = 1.0;
  SpeedRange speed_range_;
  ConnectionId next_id_ = 1;
};

}  // namespace pabr::traffic
