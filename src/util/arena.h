// A typed bump arena with index-based spans — the backing store for
// estimator snapshots, replacing the per-rebuild heap churn of one
// std::map node plus two std::vector allocations per (prev, next) pair.
//
// An Arena<T> is one contiguous std::vector<T> that only ever grows.
// Writers append with push_back() and delimit their run with mark():
//
//   arena.reset();
//   auto begin = arena.mark();
//   ... arena.push_back(x) ...
//   Span s{begin, arena.mark()};
//
// Spans are (begin, end) INDEX pairs, not pointers, so appends that
// reallocate the underlying vector never invalidate a span — readers
// resolve through arena.data() at lookup time. reset() rewinds the write
// cursor but keeps the capacity: after a warm-up rebuild or two the arena
// stops touching the allocator entirely, which is the point — snapshot
// rebuilds happen on the reservation hot path (every estimator
// state-version bump), and "rebuild" must not mean "reallocate".
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace pabr::util {

/// Half-open index range into an Arena<T>.
struct ArenaSpan {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::uint32_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

template <typename T>
class Arena {
 public:
  void reset() { items_.clear(); }  // keeps capacity
  void reserve(std::size_t n) { items_.reserve(n); }

  /// Current write cursor; pair two marks into an ArenaSpan.
  std::uint32_t mark() const { return static_cast<std::uint32_t>(items_.size()); }

  void push_back(const T& value) { items_.push_back(value); }
  template <typename... Args>
  void emplace_back(Args&&... args) {
    items_.emplace_back(std::forward<Args>(args)...);
  }

  /// Closes the span opened at `begin` (a prior mark()).
  ArenaSpan span_from(std::uint32_t begin) const {
    PABR_CHECK(begin <= mark(), "ArenaSpan begins past the write cursor");
    return ArenaSpan{begin, mark()};
  }

  const T* data() const { return items_.data(); }
  T* data() { return items_.data(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return items_.capacity(); }

  const T* begin(const ArenaSpan& s) const { return items_.data() + s.begin; }
  const T* end(const ArenaSpan& s) const { return items_.data() + s.end; }

  /// Mutable access within a span (sorting a freshly written run).
  T* begin(const ArenaSpan& s) { return items_.data() + s.begin; }
  T* end(const ArenaSpan& s) { return items_.data() + s.end; }

 private:
  std::vector<T> items_;
};

}  // namespace pabr::util
