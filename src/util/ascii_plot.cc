#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace pabr::plot {
namespace {

struct Range {
  double lo = 0.0;
  double hi = 1.0;
};

Range x_range(const std::vector<Point>& pts) {
  Range r{pts.front().x, pts.front().x};
  for (const auto& p : pts) {
    r.lo = std::min(r.lo, p.x);
    r.hi = std::max(r.hi, p.x);
  }
  if (r.hi == r.lo) r.hi = r.lo + 1.0;
  return r;
}

Range y_range(const std::vector<Point>& pts) {
  Range r{pts.front().y, pts.front().y};
  for (const auto& p : pts) {
    r.lo = std::min(r.lo, p.y);
    r.hi = std::max(r.hi, p.y);
  }
  if (r.hi == r.lo) r.hi = r.lo + 1.0;
  return r;
}

std::string render(const std::vector<Point>& pts, const Canvas& canvas) {
  PABR_CHECK(canvas.width >= 8 && canvas.height >= 4, "canvas too small");
  if (pts.empty()) return "(no data)\n";

  const Range xr = x_range(pts);
  const Range yr = y_range(pts);
  std::vector<std::string> grid(
      static_cast<std::size_t>(canvas.height),
      std::string(static_cast<std::size_t>(canvas.width), ' '));

  for (const auto& p : pts) {
    const double fx = (p.x - xr.lo) / (xr.hi - xr.lo);
    const double fy = (p.y - yr.lo) / (yr.hi - yr.lo);
    auto col = static_cast<long>(std::lround(fx * (canvas.width - 1)));
    auto row = static_cast<long>(
        std::lround((1.0 - fy) * (canvas.height - 1)));
    col = std::clamp(col, 0L, static_cast<long>(canvas.width) - 1);
    row = std::clamp(row, 0L, static_cast<long>(canvas.height) - 1);
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
        p.glyph;
  }

  std::ostringstream os;
  char buf[32];
  if (!canvas.y_label.empty()) os << canvas.y_label << "\n";
  for (int row = 0; row < canvas.height; ++row) {
    if (row == 0) {
      std::snprintf(buf, sizeof(buf), "%9.3g", yr.hi);
      os << buf << " |";
    } else if (row == canvas.height - 1) {
      std::snprintf(buf, sizeof(buf), "%9.3g", yr.lo);
      os << buf << " |";
    } else {
      os << "          |";
    }
    os << grid[static_cast<std::size_t>(row)] << "\n";
  }
  os << "          +" << std::string(static_cast<std::size_t>(canvas.width),
                                     '-')
     << "\n";
  std::snprintf(buf, sizeof(buf), "%-.3g", xr.lo);
  std::string footer = "          ";
  footer += buf;
  std::snprintf(buf, sizeof(buf), "%.3g", xr.hi);
  const std::string hi_str = buf;
  const std::size_t pad_to =
      10 + static_cast<std::size_t>(canvas.width) - hi_str.size();
  if (footer.size() < pad_to) footer += std::string(pad_to - footer.size(), ' ');
  footer += hi_str;
  os << footer;
  if (!canvas.x_label.empty()) os << "  (" << canvas.x_label << ")";
  os << "\n";
  return os.str();
}

}  // namespace

std::string scatter(const std::vector<Point>& points, const Canvas& canvas) {
  return render(points, canvas);
}

std::string staircase(const std::vector<std::vector<Point>>& series,
                      const Canvas& canvas) {
  std::vector<Point> expanded;
  for (const auto& s : series) {
    if (s.empty()) continue;
    // Densify each step so held values draw as horizontal runs.
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
      const int steps = 8;
      for (int k = 0; k < steps; ++k) {
        const double f = static_cast<double>(k) / steps;
        expanded.push_back(Point{
            s[i].x + f * (s[i + 1].x - s[i].x), s[i].y, s[i].glyph});
      }
    }
    expanded.push_back(s.back());
  }
  return render(expanded, canvas);
}

}  // namespace pabr::plot
