// Tiny ASCII scatter/staircase renderer so the trace benches (Figs. 4,
// 10, 11, 14) can show shapes directly in the terminal, not just tables.
#pragma once

#include <string>
#include <vector>

namespace pabr::plot {

struct Point {
  double x = 0.0;
  double y = 0.0;
  char glyph = '*';
};

struct Canvas {
  int width = 72;   ///< plot columns (excluding the axis gutter)
  int height = 16;  ///< plot rows
  std::string x_label;
  std::string y_label;
};

/// Renders points into a framed ASCII plot. Axis ranges come from the
/// data (with optional overrides); y rows are labelled with min/max.
/// Returns the plot as one newline-joined string.
std::string scatter(const std::vector<Point>& points, const Canvas& canvas);

/// Like scatter, but each series' points are connected as a staircase
/// (previous value held until the next sample) before rendering — the
/// natural rendering for T_est / B_r traces.
std::string staircase(const std::vector<std::vector<Point>>& series,
                      const Canvas& canvas);

}  // namespace pabr::plot
