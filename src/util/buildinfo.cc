#include "util/buildinfo.h"

// PABR_GIT_SHA / PABR_BUILD_TYPE are injected per-source by
// src/CMakeLists.txt at configure time.
#ifndef PABR_GIT_SHA
#define PABR_GIT_SHA "unknown"
#endif
#ifndef PABR_BUILD_TYPE
#define PABR_BUILD_TYPE "unknown"
#endif

namespace pabr::buildinfo {

const char* git_sha() { return PABR_GIT_SHA; }

const char* build_type() { return PABR_BUILD_TYPE; }

bool audit_enabled() {
#ifdef PABR_AUDIT_ENABLED
  return true;
#else
  return false;
#endif
}

bool telemetry_enabled() {
#ifdef PABR_TELEMETRY_ENABLED
  return true;
#else
  return false;
#endif
}

bool fault_enabled() {
#ifdef PABR_FAULT_ENABLED
  return true;
#else
  return false;
#endif
}

}  // namespace pabr::buildinfo
