// Build provenance for machine-readable reports: the git revision and
// build type captured at configure time, plus which compile-time feature
// gates (PABR_AUDIT, PABR_TELEMETRY) this binary was built with. Bench
// --json reports and trace file headers embed these so a result can
// always be traced back to the code and configuration that produced it.
#pragma once

namespace pabr::buildinfo {

/// Abbreviated git commit sha at configure time ("unknown" outside a git
/// checkout). A trailing "+" marks configure-time uncommitted changes.
const char* git_sha();

/// CMAKE_BUILD_TYPE of this binary ("RelWithDebInfo", "Release", ...).
const char* build_type();

/// True when per-event invariant audit hooks are compiled in.
bool audit_enabled();

/// True when telemetry/trace hooks are compiled in.
bool telemetry_enabled();

/// True when fault-injection hooks are compiled in.
bool fault_enabled();

}  // namespace pabr::buildinfo
