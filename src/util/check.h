// Assertion helpers used throughout the pabr library.
//
// PABR_CHECK(cond, msg) raises std::logic_error on violation; it is active
// in all build types because the simulator's correctness (event ordering,
// bandwidth accounting) must never silently degrade in release runs.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pabr {

/// Thrown when an internal invariant of the library is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PABR_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace pabr

#define PABR_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::pabr::detail::check_failed(#cond, __FILE__, __LINE__, (msg));      \
    }                                                                      \
  } while (false)

#define PABR_CHECK_OK(cond) PABR_CHECK(cond, std::string{})
