#include "util/cli.h"

#include <cstdlib>
#include <iostream>
#include <set>
#include <sstream>

#include "util/check.h"

namespace pabr::cli {
namespace {

std::string bool_repr(bool v) { return v ? "true" : "false"; }

}  // namespace

Parser::Parser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void Parser::add_bool(const std::string& name, bool* target, std::string help) {
  PABR_CHECK(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{Flag::Kind::kBool, target, std::move(help),
                      bool_repr(*target)};
}

void Parser::add_int(const std::string& name, int* target, std::string help) {
  PABR_CHECK(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] =
      Flag{Flag::Kind::kInt, target, std::move(help), std::to_string(*target)};
}

void Parser::add_uint64(const std::string& name, unsigned long long* target,
                        std::string help) {
  PABR_CHECK(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{Flag::Kind::kUint64, target, std::move(help),
                      std::to_string(*target)};
}

void Parser::add_double(const std::string& name, double* target,
                        std::string help) {
  PABR_CHECK(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{Flag::Kind::kDouble, target, std::move(help),
                      std::to_string(*target)};
}

void Parser::add_string(const std::string& name, std::string* target,
                        std::string help) {
  PABR_CHECK(!flags_.count(name), "duplicate flag: " + name);
  flags_[name] = Flag{Flag::Kind::kString, target, std::move(help), *target};
}

bool Parser::assign(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    std::cerr << program_ << ": unknown flag --" << name << "\n";
    return false;
  }
  Flag& flag = it->second;
  try {
    switch (flag.kind) {
      case Flag::Kind::kBool: {
        bool* t = static_cast<bool*>(flag.target);
        if (value == "" || value == "true" || value == "1") {
          *t = true;
        } else if (value == "false" || value == "0") {
          *t = false;
        } else {
          std::cerr << program_ << ": bad boolean for --" << name << ": '"
                    << value << "'\n";
          return false;
        }
        break;
      }
      case Flag::Kind::kInt:
        *static_cast<int*>(flag.target) = std::stoi(value);
        break;
      case Flag::Kind::kUint64:
        *static_cast<unsigned long long*>(flag.target) = std::stoull(value);
        break;
      case Flag::Kind::kDouble:
        *static_cast<double*>(flag.target) = std::stod(value);
        break;
      case Flag::Kind::kString:
        *static_cast<std::string*>(flag.target) = value;
        break;
    }
  } catch (const std::exception&) {
    std::cerr << program_ << ": bad value for --" << name << ": '" << value
              << "'\n";
    return false;
  }
  return true;
}

bool Parser::parse(int argc, const char* const* argv) {
  // Flags already assigned in this parse: a repeated flag (in either the
  // `--name=value` or the split `--name value` form) is an error, not a
  // silent last-wins — scripted bench invocations that concatenate flag
  // lists must fail loudly instead of dropping the first value.
  std::set<std::string> seen;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cerr << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool have_value = false;
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      have_value = true;
    }
    const auto it = flags_.find(body);
    if (it == flags_.end()) {
      std::cerr << program_ << ": unknown flag --" << body << "\n";
      return false;
    }
    if (!seen.insert(body).second) {
      std::cerr << program_ << ": duplicate flag --" << body
                << " (each flag may be given at most once)\n";
      return false;
    }
    if (!have_value) {
      // "--name value" or bare boolean "--name".
      if (it->second.kind == Flag::Kind::kBool) {
        if (!assign(body, "")) return false;
        continue;
      }
      if (i + 1 >= argc) {
        std::cerr << program_ << ": --" << body << " requires a value\n";
        return false;
      }
      value = argv[++i];
    }
    if (!assign(body, value)) return false;
  }
  return true;
}

std::string Parser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << "  (default: " << flag.default_repr << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace pabr::cli
