// A tiny command-line flag parser used by the bench and example binaries.
//
// Flags are declared up front (`add_flag`), then `parse` consumes
// `--name=value`, `--name value` and bare boolean `--name` forms.
// Unknown flags are an error so that typos in experiment sweeps fail loudly.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pabr::cli {

/// Declarative command-line parser. Example:
///
///   cli::Parser p("fig08", "AC3 load sweep");
///   double load = 100.0;
///   bool full = false;
///   p.add_double("load", &load, "offered load per cell (BU)");
///   p.add_bool("full", &full, "run the paper-scale configuration");
///   if (!p.parse(argc, argv)) return 1;
class Parser {
 public:
  Parser(std::string program, std::string description);

  void add_bool(const std::string& name, bool* target, std::string help);
  void add_int(const std::string& name, int* target, std::string help);
  void add_uint64(const std::string& name, unsigned long long* target,
                  std::string help);
  void add_double(const std::string& name, double* target, std::string help);
  void add_string(const std::string& name, std::string* target,
                  std::string help);

  /// Parses argv. Returns false (after printing usage or an error to
  /// stderr) when parsing fails or `--help` was requested.
  bool parse(int argc, const char* const* argv);

  /// Positional arguments left over after flag parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the usage/help text.
  std::string usage() const;

 private:
  struct Flag {
    enum class Kind { kBool, kInt, kUint64, kDouble, kString };
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  bool assign(const std::string& name, const std::string& value);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pabr::cli
