#include "util/csv.h"

#include <sstream>

#include "util/log.h"

namespace pabr::csv {

std::string escape(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string join(const std::vector<std::string>& fields) {
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i) line += ',';
    line += escape(fields[i]);
  }
  return line;
}

Writer::Writer(const std::string& path) {
  if (path.empty()) return;
  out_.open(path);
  if (!out_) PABR_WARN << "csv: could not open " << path << " for writing";
}

void Writer::header(const std::vector<std::string>& names) {
  if (!out_) return;
  out_ << join(names) << '\n';
}

void Writer::row(const std::vector<std::string>& fields) {
  if (!out_) return;
  out_ << join(fields) << '\n';
}

std::string Writer::format(double v) {
  std::ostringstream os;
  os.precision(10);
  os << v;
  return os.str();
}

}  // namespace pabr::csv
