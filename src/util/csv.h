// CSV emission for experiment results. Bench binaries print tables on
// stdout; optionally they also mirror rows into a CSV file so that plots
// can be regenerated offline.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace pabr::csv {

/// Escapes a single field per RFC 4180 (quotes fields containing commas,
/// quotes or newlines; doubles embedded quotes).
std::string escape(const std::string& field);

/// Joins pre-escaped or raw fields into one CSV line (no trailing newline).
std::string join(const std::vector<std::string>& fields);

/// Buffered CSV writer bound to a file. Writing is best-effort: a writer
/// constructed with an empty path becomes a no-op sink so callers can
/// unconditionally stream rows.
class Writer {
 public:
  Writer() = default;
  explicit Writer(const std::string& path);

  /// True when rows are actually being persisted.
  bool active() const { return out_.is_open(); }

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic values with full precision.
  template <typename... Ts>
  void row_values(const Ts&... values) {
    std::vector<std::string> fields;
    (fields.push_back(format(values)), ...);
    row(fields);
  }

  static std::string format(double v);
  static std::string format(int v) { return std::to_string(v); }
  static std::string format(long v) { return std::to_string(v); }
  static std::string format(unsigned long v) { return std::to_string(v); }
  static std::string format(unsigned long long v) { return std::to_string(v); }
  static std::string format(const std::string& v) { return v; }
  static std::string format(const char* v) { return v; }

 private:
  std::ofstream out_;
};

}  // namespace pabr::csv
