// Order-sensitive FNV-1a 64 — the one digest primitive every consumer
// shares: trajectory digests (audit/differential), the sharded
// executor's end-state digest, snapshot section checksums
// (snapshot/format) and the .pabrtrace payload checksum.
//
// Words are folded low byte first, so the digest of a u64 stream is
// identical to the digest of its little-endian byte stream — which is
// what lets add_bytes() over a serialized section and add_u64() over the
// values it contains agree on the same constants.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace pabr::util {

inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

class Fnv1a {
 public:
  void add_byte(std::uint8_t b) {
    h_ ^= b;
    h_ *= kFnv1aPrime;
  }
  void add_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      add_byte(static_cast<std::uint8_t>((v >> (8 * i)) & 0xffu));
    }
  }
  void add_double(double v) { add_u64(std::bit_cast<std::uint64_t>(v)); }
  void add_bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) add_byte(p[i]);
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = kFnv1aOffset;
};

/// One-shot convenience for contiguous buffers.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t n) {
  Fnv1a d;
  d.add_bytes(data, n);
  return d.value();
}

}  // namespace pabr::util
