// A small sorted flat map: key-ordered `std::vector<std::pair<K, V>>`
// behind a `std::map`-shaped interface — the replacement for the
// node-based maps on the estimator/reservation hot path.
//
// The maps this replaces (estimator `by_prev_`, per-prev `by_next`) hold
// a handful of entries — one per adjacent cell, so ≲ 7 on the hex grid —
// but are probed on every p_h lookup. A red-black tree pays a pointer
// chase and a likely cache miss per comparison; a sorted vector finds the
// same key with a branch-light binary search over one cache line or two,
// and iteration (snapshot builds, audits, prunes) walks contiguous
// memory in exactly the same key order as std::map, which keeps every
// float-accumulation order — and therefore every output bit — unchanged.
//
// Inserts are O(n) (shift the tail); that is the right trade for
// read-mostly maps whose size is bounded by the cell adjacency degree.
// References are invalidated by insertions (vector reallocation/shift),
// unlike std::map — callers must not hold references across find_or_insert.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace pabr::util {

template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  iterator find(const K& key) {
    const auto it = lower(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  const_iterator find(const K& key) const {
    const auto it = lower(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  bool contains(const K& key) const { return find(key) != end(); }

  /// std::map::operator[]: returns the mapped value, default-constructing
  /// (and inserting in key order) when absent.
  V& find_or_insert(const K& key) {
    auto it = lower(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.emplace(it, key, V{});
    }
    return it->second;
  }

  iterator erase(iterator pos) { return entries_.erase(pos); }

 private:
  iterator lower(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  const_iterator lower(const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;  // sorted by key, unique
};

}  // namespace pabr::util
