#include "util/log.h"

#include <algorithm>
#include <cctype>
#include <iostream>

namespace pabr::log {
namespace {

Level g_level = Level::kWarn;

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level = level; }

Level level() { return g_level; }

bool set_level_by_name(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") {
    g_level = Level::kTrace;
  } else if (lower == "debug") {
    g_level = Level::kDebug;
  } else if (lower == "info") {
    g_level = Level::kInfo;
  } else if (lower == "warn") {
    g_level = Level::kWarn;
  } else if (lower == "error") {
    g_level = Level::kError;
  } else if (lower == "off") {
    g_level = Level::kOff;
  } else {
    return false;
  }
  return true;
}

void write(Level lvl, const std::string& message) {
  if (lvl < g_level || g_level == Level::kOff) return;
  std::cerr << '[' << level_name(lvl) << "] " << message << '\n';
}

}  // namespace pabr::log
