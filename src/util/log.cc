#include "util/log.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>

namespace pabr::log {
namespace {

std::atomic<Level> g_level{Level::kWarn};

// Serializes line emission (and guards the sink) across the parallel
// experiment drivers' worker threads.
std::mutex& output_mutex() {
  static std::mutex m;
  return m;
}

Sink& sink_slot() {
  static Sink sink;
  return sink;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kTrace:
      return "TRACE";
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) {
  g_level.store(level, std::memory_order_relaxed);
}

Level level() { return g_level.load(std::memory_order_relaxed); }

bool set_level_by_name(const std::string& name) {
  std::string lower(name.size(), '\0');
  std::transform(name.begin(), name.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") {
    set_level(Level::kTrace);
  } else if (lower == "debug") {
    set_level(Level::kDebug);
  } else if (lower == "info") {
    set_level(Level::kInfo);
  } else if (lower == "warn") {
    set_level(Level::kWarn);
  } else if (lower == "error") {
    set_level(Level::kError);
  } else if (lower == "off") {
    set_level(Level::kOff);
  } else {
    return false;
  }
  return true;
}

void set_sink(Sink sink) {
  const std::lock_guard<std::mutex> lock(output_mutex());
  sink_slot() = std::move(sink);
}

void write(Level lvl, const std::string& message) {
  const Level threshold = level();
  if (lvl < threshold || threshold == Level::kOff) return;
  const std::lock_guard<std::mutex> lock(output_mutex());
  if (Sink& sink = sink_slot(); sink) {
    sink(lvl, message);
    return;
  }
  std::cerr << '[' << level_name(lvl) << "] " << message << '\n';
}

}  // namespace pabr::log
