// Minimal leveled logger, safe under the parallel experiment drivers
// (sim/parallel.h): the threshold is an atomic, each emitted line is
// written to stderr under a mutex (so concurrent replications never
// interleave characters), and an optional sink hook captures lines for
// tests. Output goes to stderr so that bench binaries can print
// machine-readable tables on stdout.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace pabr::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; messages below it are discarded.
/// Thread-safe (atomic store) — but call it from one thread at startup;
/// flipping it mid-run races benignly with the PABR_LOG fast path.
void set_level(Level level);
Level level();

/// Parses "trace|debug|info|warn|error|off" (case-insensitive).
/// Returns false and leaves the level untouched on unknown names.
bool set_level_by_name(const std::string& name);

/// Emits one line "[LEVEL] message" to stderr if `level` passes the
/// threshold. Lines from concurrent threads are serialized whole, never
/// interleaved mid-line.
void write(Level level, const std::string& message);

/// Redirects formatted lines ("[LEVEL] message") to `sink` instead of
/// stderr; pass nullptr to restore stderr. Used by tests to capture
/// output; the sink runs under the logger's mutex, so it may append to a
/// plain container but must not log re-entrantly.
using Sink = std::function<void(Level, const std::string&)>;
void set_sink(Sink sink);

namespace detail {

class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { write(level_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace pabr::log

#define PABR_LOG(lvl)                                      \
  if (::pabr::log::level() <= ::pabr::log::Level::lvl)     \
  ::pabr::log::detail::LineBuilder(::pabr::log::Level::lvl)

#define PABR_TRACE PABR_LOG(kTrace)
#define PABR_DEBUG PABR_LOG(kDebug)
#define PABR_INFO PABR_LOG(kInfo)
#define PABR_WARN PABR_LOG(kWarn)
#define PABR_ERROR PABR_LOG(kError)
