// Minimal leveled logger. The simulator is deterministic and single
// threaded, so the logger keeps no locks; output goes to stderr so that
// bench binaries can print machine-readable tables on stdout.
#pragma once

#include <sstream>
#include <string>

namespace pabr::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; messages below it are discarded.
void set_level(Level level);
Level level();

/// Parses "trace|debug|info|warn|error|off" (case-insensitive).
/// Returns false and leaves the level untouched on unknown names.
bool set_level_by_name(const std::string& name);

/// Emits one line "[LEVEL] message" to stderr if `level` passes the
/// threshold.
void write(Level level, const std::string& message);

namespace detail {

class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { write(level_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace pabr::log

#define PABR_LOG(lvl)                                      \
  if (::pabr::log::level() <= ::pabr::log::Level::lvl)     \
  ::pabr::log::detail::LineBuilder(::pabr::log::Level::lvl)

#define PABR_TRACE PABR_LOG(kTrace)
#define PABR_DEBUG PABR_LOG(kDebug)
#define PABR_INFO PABR_LOG(kInfo)
#define PABR_WARN PABR_LOG(kWarn)
#define PABR_ERROR PABR_LOG(kError)
