#include "util/mathx.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace pabr::mathx {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  PABR_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(std::floor(rank));
  const auto hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double ci95_halfwidth(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

bool near(double a, double b, double tol) { return std::fabs(a - b) <= tol; }

double clamp(double v, double lo, double hi) {
  PABR_CHECK(lo <= hi, "clamp: inverted bounds");
  return std::min(std::max(v, lo), hi);
}

double positive_fmod(double x, double m) {
  PABR_CHECK(m > 0.0, "positive_fmod: modulus must be positive");
  double r = std::fmod(x, m);
  if (r < 0.0) {
    r += m;
    // A tiny negative remainder (|r| below half an ULP of m) makes r + m
    // round up to exactly m, escaping the documented [0, m) range; such a
    // value sits at the wrap point, so it canonicalizes to 0.
    if (r >= m) r = 0.0;
  }
  // Normalize fmod's signed zero so callers comparing against +0.0 (or
  // hashing the result) never observe -0.0.
  return r == 0.0 ? 0.0 : r;
}

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double inverse_normal_cdf(double p) {
  PABR_CHECK(p > 0.0 && p < 1.0, "inverse_normal_cdf: p out of (0,1)");

  // Peter Acklam's rational approximation with central/tail regions.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
         c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
         a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step against the true CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

}  // namespace pabr::mathx
