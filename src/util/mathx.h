// Small numeric helpers shared by the statistics and estimation code.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pabr::mathx {

/// Arithmetic mean; 0 for an empty range.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0,100]. Input need not be sorted
/// (a sorted copy is made); 0 for an empty range.
double percentile(std::span<const double> xs, double p);

/// Half-width of the 95% normal-approximation confidence interval of the
/// mean. 0 for fewer than 2 samples.
double ci95_halfwidth(std::span<const double> xs);

/// True when |a-b| <= tol, with tol interpreted absolutely.
bool near(double a, double b, double tol);

/// Clamps v into [lo, hi].
double clamp(double v, double lo, double hi);

/// x mod m with the result always in [0, m) even for negative x.
double positive_fmod(double x, double m);

/// Standard normal CDF Phi(x).
double normal_cdf(double x);

/// Inverse standard normal CDF (quantile function), p in (0, 1).
/// Acklam's rational approximation, |relative error| < 1.2e-9.
double inverse_normal_cdf(double p);

}  // namespace pabr::mathx
