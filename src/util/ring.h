// A growable circular buffer (FIFO ring) with contiguous-power-of-two
// storage and random-access iterators — the flat replacement for the
// `std::deque<Quadruplet>` event histories on the estimator hot path.
//
// Why not std::deque: libstdc++ deques allocate one ~512-byte node per
// chunk and chase a map of chunk pointers on every index, so the
// estimator's select() walk (binary searches + linear scans over event
// history) touches scattered cache lines and the per-(prev, next) history
// costs at least two allocations even when it holds three events. Ring
// keeps all elements in one power-of-two array addressed modulo capacity:
// push_back/pop_front are O(1) with no allocation in steady state, and
// iteration walks (at most two) contiguous runs.
//
// Capacity grows by doubling when full; under the estimator's
// N_quad-style retention (record() pops the oldest element once the ring
// exceeds N_quad) the capacity settles at the first power of two >
// N_quad and never reallocates again.
//
// Iterators are random-access so std::lower_bound over event times stays
// O(log n). They are invalidated by push_back (growth may linearize) —
// same contract callers already honoured for deque + pop_front.
#pragma once

#include <cstddef>
#include <iterator>
#include <memory>
#include <utility>

#include "util/check.h"

namespace pabr::util {

template <typename T>
class Ring {
 public:
  Ring() = default;

  /// Pre-sizes storage for at least `capacity` elements (rounded up to a
  /// power of two). Never shrinks.
  explicit Ring(std::size_t capacity) { grow_to(round_up(capacity)); }

  Ring(const Ring& other) { *this = other; }
  Ring& operator=(const Ring& other) {
    if (this == &other) return *this;
    clear();
    if (other.size_ > capacity_) grow_to(round_up(other.size_));
    for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
    return *this;
  }
  Ring(Ring&&) noexcept = default;
  Ring& operator=(Ring&&) noexcept = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

  T& operator[](std::size_t i) { return slot(i); }
  const T& operator[](std::size_t i) const { return slot(i); }

  T& front() {
    PABR_CHECK(size_ > 0, "Ring::front on empty ring");
    return slot(0);
  }
  const T& front() const {
    PABR_CHECK(size_ > 0, "Ring::front on empty ring");
    return slot(0);
  }
  T& back() {
    PABR_CHECK(size_ > 0, "Ring::back on empty ring");
    return slot(size_ - 1);
  }
  const T& back() const {
    PABR_CHECK(size_ > 0, "Ring::back on empty ring");
    return slot(size_ - 1);
  }

  /// Ensures room for at least `n` elements without further growth.
  void reserve(std::size_t n) {
    if (n > capacity_) grow_to(round_up(n));
  }

  void push_back(const T& value) {
    if (size_ == capacity_) grow_to(capacity_ == 0 ? 4 : capacity_ * 2);
    data_[(head_ + size_) & mask_] = value;
    ++size_;
  }

  void pop_front() {
    PABR_CHECK(size_ > 0, "Ring::pop_front on empty ring");
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

  /// Random-access iterator over [oldest, newest]. Template over
  /// constness so `iterator` converts to `const_iterator`.
  template <bool Const>
  class Iter {
   public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = std::conditional_t<Const, const T*, T*>;
    using reference = std::conditional_t<Const, const T&, T&>;

    Iter() = default;
    Iter(std::conditional_t<Const, const Ring*, Ring*> ring,
         std::size_t index)
        : ring_(ring), index_(static_cast<difference_type>(index)) {}
    /// iterator -> const_iterator.
    template <bool C = Const, typename = std::enable_if_t<C>>
    Iter(const Iter<false>& other)  // NOLINT(google-explicit-constructor)
        : ring_(other.ring_), index_(other.index_) {}

    reference operator*() const {
      return (*ring_)[static_cast<std::size_t>(index_)];
    }
    pointer operator->() const { return &**this; }
    reference operator[](difference_type n) const {
      return (*ring_)[static_cast<std::size_t>(index_ + n)];
    }

    Iter& operator++() { ++index_; return *this; }
    Iter operator++(int) { Iter t = *this; ++index_; return t; }
    Iter& operator--() { --index_; return *this; }
    Iter operator--(int) { Iter t = *this; --index_; return t; }
    Iter& operator+=(difference_type n) { index_ += n; return *this; }
    Iter& operator-=(difference_type n) { index_ -= n; return *this; }
    friend Iter operator+(Iter it, difference_type n) { return it += n; }
    friend Iter operator+(difference_type n, Iter it) { return it += n; }
    friend Iter operator-(Iter it, difference_type n) { return it -= n; }
    friend difference_type operator-(const Iter& a, const Iter& b) {
      return a.index_ - b.index_;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.index_ == b.index_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) { return !(a == b); }
    friend bool operator<(const Iter& a, const Iter& b) {
      return a.index_ < b.index_;
    }
    friend bool operator>(const Iter& a, const Iter& b) { return b < a; }
    friend bool operator<=(const Iter& a, const Iter& b) { return !(b < a); }
    friend bool operator>=(const Iter& a, const Iter& b) { return !(a < b); }

   private:
    friend class Iter<true>;
    std::conditional_t<Const, const Ring*, Ring*> ring_ = nullptr;
    difference_type index_ = 0;
  };

  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, size_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }
  const_iterator cbegin() const { return begin(); }
  const_iterator cend() const { return end(); }

 private:
  static std::size_t round_up(std::size_t n) {
    std::size_t c = 4;
    while (c < n) c *= 2;
    return c;
  }

  T& slot(std::size_t i) { return data_[(head_ + i) & mask_]; }
  const T& slot(std::size_t i) const { return data_[(head_ + i) & mask_]; }

  void grow_to(std::size_t new_capacity) {
    std::unique_ptr<T[]> next(new T[new_capacity]);
    for (std::size_t i = 0; i < size_; ++i) next[i] = std::move(slot(i));
    data_ = std::move(next);
    capacity_ = new_capacity;
    mask_ = new_capacity - 1;
    head_ = 0;
  }

  std::unique_ptr<T[]> data_;
  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;   // capacity - 1 (capacity is a power of two)
  std::size_t head_ = 0;   // physical index of the oldest element
  std::size_t size_ = 0;
};

}  // namespace pabr::util
