#include "wired/backbone.h"

#include "util/check.h"

namespace pabr::wired {

Backbone::Backbone(int num_cells, BackboneConfig config)
    : uplink_(-1, "msc-uplink", config.uplink_capacity_bu) {
  PABR_CHECK(num_cells >= 1, "Backbone: no cells");
  access_.reserve(static_cast<std::size_t>(num_cells));
  reservation_.assign(static_cast<std::size_t>(num_cells), 0.0);
  for (int c = 0; c < num_cells; ++c) {
    access_.emplace_back(c, "access-" + std::to_string(c + 1),
                         config.access_capacity_bu);
  }
}

void Backbone::check_cell(geom::CellId cell) const {
  PABR_CHECK(cell >= 0 &&
                 cell < static_cast<geom::CellId>(access_.size()),
             "Backbone: cell out of range");
}

bool Backbone::can_admit(geom::CellId cell, traffic::Bandwidth b) const {
  check_cell(cell);
  const Link& acc = access_[static_cast<std::size_t>(cell)];
  const double br = reservation_[static_cast<std::size_t>(cell)];
  // Eq. (1) on the wired access leg + plain fit on the shared uplink,
  // phrased through the shared boundary helper so the wired decision
  // cannot disagree with the air-interface one at the same occupancy.
  return admission::fits_budget(acc.used(), static_cast<double>(b),
                                acc.capacity(), br) &&
         uplink_.can_fit(b);
}

bool Backbone::can_handoff_into(geom::CellId cell, traffic::ConnectionId id,
                                traffic::Bandwidth b) const {
  check_cell(cell);
  // Hand-offs may use the reserved wired bandwidth on the new access leg.
  // The uplink leg persists across the re-route but its held bandwidth may
  // change under adaptive QoS, so the uplink is tested for the *net*
  // demand after giving back the connection's current leg.
  return access_[static_cast<std::size_t>(cell)].can_fit(b) &&
         uplink_.can_refit(uplink_.held(id), b);
}

void Backbone::admit(geom::CellId cell, traffic::ConnectionId id,
                     traffic::Bandwidth b) {
  check_cell(cell);
  access_[static_cast<std::size_t>(cell)].attach(id, b);
  uplink_.attach(id, b);
}

void Backbone::reroute(geom::CellId from, geom::CellId to,
                       traffic::ConnectionId id, traffic::Bandwidth b) {
  check_cell(from);
  check_cell(to);
  access_[static_cast<std::size_t>(from)].detach(id);
  access_[static_cast<std::size_t>(to)].attach(id, b);
  // The uplink leg persists across the hand-off, but the held bandwidth
  // may change under adaptive QoS.
  uplink_.detach(id);
  uplink_.attach(id, b);
}

void Backbone::release(geom::CellId cell, traffic::ConnectionId id) {
  check_cell(cell);
  access_[static_cast<std::size_t>(cell)].detach(id);
  uplink_.detach(id);
}

void Backbone::set_reservation(geom::CellId cell, double br) {
  check_cell(cell);
  PABR_CHECK(br >= 0.0, "Backbone: negative reservation");
  reservation_[static_cast<std::size_t>(cell)] = br;
}

double Backbone::reservation(geom::CellId cell) const {
  check_cell(cell);
  return reservation_[static_cast<std::size_t>(cell)];
}

const Link& Backbone::access(geom::CellId cell) const {
  check_cell(cell);
  return access_[static_cast<std::size_t>(cell)];
}

}  // namespace pabr::wired
