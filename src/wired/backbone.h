// The wired backbone of the star-MSC deployment (paper Fig. 1(a)): one
// access link per base station up to the MSC, plus a shared MSC uplink to
// the wide-area gateway. A connection served by cell c occupies the route
// [access_c, uplink]; a hand-off from c to c' is re-routed by swapping
// the access leg (the uplink leg is unchanged).
//
// The §7 integration point: "bandwidth reservation in the wired links
// along the routes of hand-off connections" — the backbone accepts a
// reservation target per access link (mirroring the cell's B_r, since the
// same expected hand-ins will need wired capacity) which constrains NEW
// admissions only, exactly like Eq. (1) on the air interface.
#pragma once

#include <vector>

#include "geom/topology.h"
#include "wired/link.h"

namespace pabr::wired {

struct BackboneConfig {
  /// Capacity of each BS-to-MSC access link (BUs).
  double access_capacity_bu = 100.0;
  /// Capacity of the shared MSC uplink. Large by default: the paper's
  /// bottleneck of interest is the access leg.
  double uplink_capacity_bu = 1e9;
};

class Backbone {
 public:
  Backbone(int num_cells, BackboneConfig config);

  /// Admission test for a NEW connection in cell c: both route legs must
  /// fit after setting aside the access link's reservation target.
  bool can_admit(geom::CellId cell, traffic::Bandwidth b) const;

  /// Fit test for a HAND-OFF into cell c (reservation does not apply).
  /// `b` is the bandwidth the hand-off will hold after the re-route and
  /// `id` the connection being re-routed: its current uplink leg is given
  /// back before testing the shared uplink, so an adaptive-QoS upgrade
  /// (degraded 2 BU -> full 4 BU) is charged only for the delta — and a
  /// full uplink rejects the hand-off here instead of tripping the
  /// occupancy invariant inside reroute().
  bool can_handoff_into(geom::CellId cell, traffic::ConnectionId id,
                        traffic::Bandwidth b) const;

  /// Occupies the route for a newly admitted connection.
  void admit(geom::CellId cell, traffic::ConnectionId id,
             traffic::Bandwidth b);

  /// Re-routes a hand-off from `from` to `to` (access-leg swap).
  void reroute(geom::CellId from, geom::CellId to, traffic::ConnectionId id,
               traffic::Bandwidth b);

  /// Releases the route of a departing/dropped/completed connection.
  void release(geom::CellId cell, traffic::ConnectionId id);

  /// Updates the wired reservation target of cell c's access link.
  void set_reservation(geom::CellId cell, double br);
  double reservation(geom::CellId cell) const;

  const Link& access(geom::CellId cell) const;
  const Link& uplink() const { return uplink_; }

 private:
  void check_cell(geom::CellId cell) const;

  std::vector<Link> access_;
  std::vector<double> reservation_;
  Link uplink_;
};

}  // namespace pabr::wired
