#include "wired/link.h"

#include "util/check.h"

namespace pabr::wired {

Link::Link(LinkId id, std::string name, double capacity_bu)
    : id_(id), name_(std::move(name)), capacity_(capacity_bu) {
  PABR_CHECK(capacity_bu > 0.0, "Link: non-positive capacity");
}

void Link::attach(traffic::ConnectionId id, traffic::Bandwidth b) {
  PABR_CHECK(b > 0, "Link: non-positive bandwidth");
  PABR_CHECK(can_fit(b), "Link: attach exceeds capacity");
  const auto [it, inserted] = by_id_.emplace(id, b);
  PABR_CHECK(inserted, "Link: connection already attached");
  (void)it;
  used_ += static_cast<double>(b);
}

double Link::attached_sum() const {
  double sum = 0.0;
  for (const auto& [id, b] : by_id_) sum += static_cast<double>(b);
  return sum;
}

traffic::Bandwidth Link::held(traffic::ConnectionId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? 0 : it->second;
}

void Link::detach(traffic::ConnectionId id) {
  const auto it = by_id_.find(id);
  PABR_CHECK(it != by_id_.end(), "Link: detaching unknown connection");
  used_ -= static_cast<double>(it->second);
  PABR_CHECK(used_ >= -1e-9, "Link: negative used bandwidth");
  if (used_ < 0.0) used_ = 0.0;
  by_id_.erase(it);
}

}  // namespace pabr::wired
