// A wired backbone link with per-connection bandwidth accounting —
// the wired-side counterpart of core::Cell. §2: "A connection runs
// through multiple wired and wireless links, and hence, we need to
// consider bandwidth reservation on both wireless and wired links for
// hand-offs"; the paper confines its evaluation to the wireless link and
// plans the wired part as future work (§7) — this module implements it.
#pragma once

#include <map>
#include <string>

#include "admission/policy.h"
#include "traffic/connection.h"

namespace pabr::wired {

using LinkId = int;

class Link {
 public:
  Link(LinkId id, std::string name, double capacity_bu);

  LinkId id() const { return id_; }
  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }
  double used() const { return used_; }
  double free() const { return capacity_ - used_; }

  bool can_fit(traffic::Bandwidth b) const {
    return admission::fits_budget(used_, static_cast<double>(b), capacity_,
                                  0.0);
  }

  /// can_fit after first giving back `released` BUs the caller already
  /// holds on this link (a hand-off re-route swaps, it does not stack).
  bool can_refit(traffic::Bandwidth released, traffic::Bandwidth b) const {
    return admission::fits_budget(used_ - static_cast<double>(released),
                                  static_cast<double>(b), capacity_, 0.0);
  }

  void attach(traffic::ConnectionId id, traffic::Bandwidth b);
  void detach(traffic::ConnectionId id);
  bool carries(traffic::ConnectionId id) const {
    return by_id_.count(id) != 0;
  }
  int connection_count() const { return static_cast<int>(by_id_.size()); }

  /// Sum of the attached per-connection bandwidths — must always equal
  /// used() (the audit layer cross-checks the two).
  double attached_sum() const;
  /// Bandwidth held by one attached connection (0 when not carried).
  traffic::Bandwidth held(traffic::ConnectionId id) const;

  /// The attachment table, id-ordered (snapshot payload; restore goes
  /// through Backbone::admit so the link bookkeeping is rebuilt by the
  /// same code path as the live run).
  const std::map<traffic::ConnectionId, traffic::Bandwidth>& attachments()
      const {
    return by_id_;
  }

 private:
  LinkId id_;
  std::string name_;
  double capacity_;
  double used_ = 0.0;
  std::map<traffic::ConnectionId, traffic::Bandwidth> by_id_;
};

}  // namespace pabr::wired
