// The Naghshineh-Schwartz distributed admission baseline (ref. [10]).
#include "admission/ns_policy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "util/check.h"
#include "util/mathx.h"

namespace pabr::admission {
namespace {

/// 3-cell line 0 - 1 - 2 with scripted occupancy.
class FakeContext final : public AdmissionContext {
 public:
  FakeContext() {
    neighbors_[0] = {1};
    neighbors_[1] = {0, 2};
    neighbors_[2] = {1};
    for (geom::CellId c : {0, 1, 2}) {
      capacity_[c] = 100.0;
      used_[c] = 0.0;
    }
  }
  double capacity(geom::CellId c) const override { return capacity_.at(c); }
  double used_bandwidth(geom::CellId c) const override {
    return used_.at(c);
  }
  const std::vector<geom::CellId>& adjacent(geom::CellId c) const override {
    return neighbors_.at(c);
  }
  double recompute_reservation(geom::CellId) override { return 0.0; }
  double current_reservation(geom::CellId) const override { return 0.0; }

  std::map<geom::CellId, double> capacity_;
  std::map<geom::CellId, double> used_;
  std::map<geom::CellId, std::vector<geom::CellId>> neighbors_;
};

NsConfig test_config() {
  NsConfig cfg;
  cfg.estimation_interval_s = 10.0;
  cfg.overload_target = 0.01;
  cfg.mean_sojourn_s = 36.0;
  cfg.mean_lifetime_s = 120.0;
  return cfg;
}

TEST(NsPolicyTest, ProbabilitiesFollowExponentialModel) {
  NsPolicy p(test_config());
  // p_stay = exp(-10/36) * exp(-10/120), p_move = (1 - exp(-10/36)) *
  // exp(-10/120).
  const double survive = std::exp(-10.0 / 120.0);
  EXPECT_NEAR(p.p_stay(), std::exp(-10.0 / 36.0) * survive, 1e-12);
  EXPECT_NEAR(p.p_move(), (1.0 - std::exp(-10.0 / 36.0)) * survive, 1e-12);
  EXPECT_NEAR(p.p_stay() + p.p_move(), survive, 1e-12);
  EXPECT_NEAR(p.z_score(), mathx::inverse_normal_cdf(0.99), 1e-12);
}

TEST(NsPolicyTest, EmptySystemAdmits) {
  NsPolicy p(test_config());
  FakeContext ctx;
  EXPECT_TRUE(p.admit(ctx, 1, 4));
}

TEST(NsPolicyTest, EstimateCountsResidentsAndNeighbors) {
  NsPolicy p(test_config());
  FakeContext ctx;
  ctx.used_[1] = 50.0;
  ctx.used_[0] = 40.0;
  ctx.used_[2] = 20.0;
  const auto e = p.estimate(ctx, 1);
  // Cells 0 and 2 have one neighbour each (cell 1), so their full p_move
  // flows toward cell 1.
  const double expected_mean =
      50.0 * p.p_stay() + (40.0 + 20.0) * p.p_move();
  EXPECT_NEAR(e.mean, expected_mean, 1e-9);
  EXPECT_GT(e.variance, 0.0);
}

TEST(NsPolicyTest, RejectsWhenNeighborhoodSaturated) {
  NsPolicy p(test_config());
  FakeContext ctx;
  ctx.used_[0] = 100.0;
  ctx.used_[1] = 98.0;
  ctx.used_[2] = 100.0;
  EXPECT_FALSE(p.admit(ctx, 1, 4));
}

TEST(NsPolicyTest, RejectsWhenAdmissionWouldSwampNeighbor) {
  NsPolicy p(test_config());
  FakeContext ctx;
  // Cell 0 is fine on its own, but its only neighbour cell 1 is loaded
  // and fed by a loaded cell 2.
  ctx.used_[0] = 10.0;
  ctx.used_[1] = 96.0;
  ctx.used_[2] = 100.0;
  EXPECT_FALSE(p.admit(ctx, 0, 4));
}

TEST(NsPolicyTest, SafetyMarginScalesWithTarget) {
  NsConfig strict = test_config();
  strict.overload_target = 1e-4;
  NsConfig loose = test_config();
  loose.overload_target = 0.1;
  NsPolicy p_strict(strict);
  NsPolicy p_loose(loose);
  EXPECT_GT(p_strict.z_score(), p_loose.z_score());

  // A mid-loaded system: the strict policy rejects first.
  FakeContext ctx;
  ctx.used_[0] = 75.0;
  ctx.used_[1] = 75.0;
  ctx.used_[2] = 75.0;
  const bool loose_admits = p_loose.admit(ctx, 1, 4);
  const bool strict_admits = p_strict.admit(ctx, 1, 4);
  EXPECT_TRUE(loose_admits || !strict_admits);
  EXPECT_TRUE(loose_admits);
  EXPECT_FALSE(strict_admits);
}

TEST(NsPolicyTest, LongerIntervalIsMoreConservative) {
  NsConfig short_t = test_config();
  short_t.estimation_interval_s = 2.0;
  NsConfig long_t = test_config();
  long_t.estimation_interval_s = 30.0;
  // More of the neighbours' mass is expected to arrive over a longer T.
  EXPECT_GT(NsPolicy(long_t).p_move(), NsPolicy(short_t).p_move());
}

TEST(NsPolicyTest, ConfigValidation) {
  NsConfig bad = test_config();
  bad.estimation_interval_s = 0.0;
  EXPECT_THROW(NsPolicy{bad}, InvariantError);
  NsConfig bad2 = test_config();
  bad2.overload_target = 1.0;
  EXPECT_THROW(NsPolicy{bad2}, InvariantError);
}

TEST(NsPolicyTest, FactoryIntegration) {
  NsConfig cfg = test_config();
  auto p = make_policy(PolicyKind::kNsDca, 0.0, &cfg);
  EXPECT_EQ(p->name(), "NS-DCA");
  EXPECT_STREQ(policy_kind_name(PolicyKind::kNsDca), "NS-DCA");
}

}  // namespace
}  // namespace pabr::admission
