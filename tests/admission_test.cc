// Admission policies exercised against a scripted fake AdmissionContext,
// verifying both the accept/reject decisions (Table 1) and exactly which
// cells are asked to recompute B_r (the N_calc cost model of Fig. 13).
#include "admission/policy.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "admission/static_policy.h"
#include "util/check.h"

namespace pabr::admission {
namespace {

/// A 3-cell line: 0 - 1 - 2 with cell 1 in the middle; capacities and
/// occupancies are scripted, and recompute_reservation returns a scripted
/// fresh value while current_reservation returns a scripted stale value.
class FakeContext final : public AdmissionContext {
 public:
  FakeContext() {
    neighbors_[0] = {1};
    neighbors_[1] = {0, 2};
    neighbors_[2] = {1};
  }

  double capacity(geom::CellId cell) const override {
    return capacity_.at(cell);
  }
  double used_bandwidth(geom::CellId cell) const override {
    return used_.at(cell);
  }
  const std::vector<geom::CellId>& adjacent(
      geom::CellId cell) const override {
    return neighbors_.at(cell);
  }
  double recompute_reservation(geom::CellId cell) override {
    recomputed.push_back(cell);
    stale_[cell] = fresh_.at(cell);
    return fresh_.at(cell);
  }
  double current_reservation(geom::CellId cell) const override {
    return stale_.at(cell);
  }

  void set(geom::CellId cell, double cap, double used, double fresh_br,
           double stale_br) {
    capacity_[cell] = cap;
    used_[cell] = used;
    fresh_[cell] = fresh_br;
    stale_[cell] = stale_br;
  }

  std::vector<geom::CellId> recomputed;

 private:
  std::map<geom::CellId, double> capacity_;
  std::map<geom::CellId, double> used_;
  std::map<geom::CellId, double> fresh_;
  std::map<geom::CellId, double> stale_;
  std::map<geom::CellId, std::vector<geom::CellId>> neighbors_;
};

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionTest() {
    // Default: plenty of room everywhere, B_r = 10 fresh and stale.
    ctx_.set(0, 100, 50, 10, 10);
    ctx_.set(1, 100, 50, 10, 10);
    ctx_.set(2, 100, 50, 10, 10);
  }
  FakeContext ctx_;
};

// ---- AC1 --------------------------------------------------------------

TEST_F(AdmissionTest, Ac1AdmitsWhenEq1Holds) {
  auto p = make_policy(PolicyKind::kAc1);
  // 50 + 4 <= 100 - 10.
  EXPECT_TRUE(p->admit(ctx_, 1, 4));
  EXPECT_EQ(ctx_.recomputed, (std::vector<geom::CellId>{1}));
}

TEST_F(AdmissionTest, Ac1RejectsWhenReservationSqueezes) {
  ctx_.set(1, 100, 88, 10, 0);
  auto p = make_policy(PolicyKind::kAc1);
  // 88 + 4 > 100 - 10.
  EXPECT_FALSE(p->admit(ctx_, 1, 4));
}

TEST_F(AdmissionTest, Ac1BoundaryExactFitAdmits) {
  ctx_.set(1, 100, 86, 10, 10);
  auto p = make_policy(PolicyKind::kAc1);
  // 86 + 4 == 100 - 10: Eq. (1) is <=, so admit.
  EXPECT_TRUE(p->admit(ctx_, 1, 4));
}

TEST_F(AdmissionTest, Ac1IgnoresNeighborsEntirely) {
  ctx_.set(0, 100, 100, 50, 50);  // neighbour saturated
  ctx_.set(2, 100, 100, 50, 50);
  auto p = make_policy(PolicyKind::kAc1);
  EXPECT_TRUE(p->admit(ctx_, 1, 1));
  EXPECT_EQ(ctx_.recomputed, (std::vector<geom::CellId>{1}));
}

// ---- AC2 --------------------------------------------------------------

TEST_F(AdmissionTest, Ac2RecomputesAllNeighborsAlways) {
  auto p = make_policy(PolicyKind::kAc2);
  EXPECT_TRUE(p->admit(ctx_, 1, 4));
  EXPECT_EQ(ctx_.recomputed, (std::vector<geom::CellId>{0, 2, 1}));
}

TEST_F(AdmissionTest, Ac2RejectsWhenNeighborCannotReserve) {
  // Neighbour 0 cannot hold its fresh target: used 95 > 100 - 10.
  ctx_.set(0, 100, 95, 10, 10);
  auto p = make_policy(PolicyKind::kAc2);
  EXPECT_FALSE(p->admit(ctx_, 1, 1));
  // Still recomputed everything (messaging happens upfront).
  EXPECT_EQ(ctx_.recomputed.size(), 3u);
}

TEST_F(AdmissionTest, Ac2RejectsOnOwnCellToo) {
  ctx_.set(1, 100, 96, 10, 10);
  auto p = make_policy(PolicyKind::kAc2);
  EXPECT_FALSE(p->admit(ctx_, 1, 4));
}

TEST_F(AdmissionTest, Ac2NeighborExactFitPasses) {
  ctx_.set(0, 100, 90, 10, 10);  // 90 <= 100 - 10 exactly
  auto p = make_policy(PolicyKind::kAc2);
  EXPECT_TRUE(p->admit(ctx_, 1, 1));
}

// ---- AC3 --------------------------------------------------------------

TEST_F(AdmissionTest, Ac3SkipsHealthyNeighbors) {
  auto p = make_policy(PolicyKind::kAc3);
  // Stale targets fit: used 50 + stale 10 <= 100 in both neighbours, so
  // only the current cell recomputes (N_calc = 1).
  EXPECT_TRUE(p->admit(ctx_, 1, 4));
  EXPECT_EQ(ctx_.recomputed, (std::vector<geom::CellId>{1}));
}

TEST_F(AdmissionTest, Ac3RecomputesOnlySuspectNeighbors) {
  // Neighbour 0 appears over-committed: used 95 + stale 10 > 100. Fresh
  // recomputation says B_r = 3, and 95 <= 100 - 3 fails -> reject? 95 >
  // 97 is false, so it passes.
  ctx_.set(0, 100, 95, 3.0, 10.0);
  auto p = make_policy(PolicyKind::kAc3);
  EXPECT_TRUE(p->admit(ctx_, 1, 4));
  EXPECT_EQ(ctx_.recomputed, (std::vector<geom::CellId>{0, 1}));
}

TEST_F(AdmissionTest, Ac3RejectsWhenSuspectNeighborConfirmedOverloaded) {
  // Neighbour 0: used 95 + stale 10 > 100, fresh B_r = 8 -> 95 > 92.
  ctx_.set(0, 100, 95, 8.0, 10.0);
  auto p = make_policy(PolicyKind::kAc3);
  EXPECT_FALSE(p->admit(ctx_, 1, 4));
}

TEST_F(AdmissionTest, Ac3ParticipationUsesStaleNotFresh) {
  // Stale B_r = 0 hides neighbour 0's pressure (used 99, fresh 20): the
  // participation test (99 + 0 <= 100) passes, so it is NOT recomputed.
  ctx_.set(0, 100, 99, 20.0, 0.0);
  auto p = make_policy(PolicyKind::kAc3);
  EXPECT_TRUE(p->admit(ctx_, 1, 1));
  EXPECT_EQ(ctx_.recomputed, (std::vector<geom::CellId>{1}));
}

TEST_F(AdmissionTest, Ac3UpdatesStaleTargetWhenRecomputing) {
  ctx_.set(0, 100, 95, 3.0, 10.0);
  auto p = make_policy(PolicyKind::kAc3);
  EXPECT_TRUE(p->admit(ctx_, 1, 1));
  // B_r^curr of neighbour 0 was refreshed to 3 by the recomputation.
  EXPECT_DOUBLE_EQ(ctx_.current_reservation(0), 3.0);
}

TEST_F(AdmissionTest, Ac3OwnCellTestStillApplies) {
  ctx_.set(1, 100, 96, 10, 10);
  auto p = make_policy(PolicyKind::kAc3);
  EXPECT_FALSE(p->admit(ctx_, 1, 4));
}

// ---- Static -------------------------------------------------------------

TEST_F(AdmissionTest, StaticUsesFixedG) {
  auto p = make_policy(PolicyKind::kStatic, 10.0);
  ctx_.set(1, 100, 86, 0, 0);
  EXPECT_TRUE(p->admit(ctx_, 1, 4));   // 86 + 4 <= 90
  ctx_.set(1, 100, 87, 0, 0);
  EXPECT_FALSE(p->admit(ctx_, 1, 4));  // 87 + 4 > 90
  EXPECT_TRUE(ctx_.recomputed.empty());
}

TEST_F(AdmissionTest, StaticZeroGReservesNothing) {
  auto p = make_policy(PolicyKind::kStatic, 0.0);
  ctx_.set(1, 100, 99, 0, 0);
  EXPECT_TRUE(p->admit(ctx_, 1, 1));
}

TEST(StaticPolicyTest, NameIncludesG) {
  StaticPolicy p(10.0);
  EXPECT_NE(p.name().find("10"), std::string::npos);
  EXPECT_THROW(StaticPolicy(-1.0), InvariantError);
}

// ---- Boundary helper -------------------------------------------------------

TEST(AdmissionBoundaryTest, ExactBoundaryAdmits) {
  // Eq. (1) with equality: used + b == C - B_r must admit, in the single
  // associativity the helper fixes.
  EXPECT_TRUE(fits_budget(86.0, 4.0, 100.0, 10.0));
  EXPECT_FALSE(fits_budget(86.0 + 1e-6, 4.0, 100.0, 10.0));
  EXPECT_FALSE(exceeds_budget(86.0, 4.0, 100.0, 10.0));
}

TEST(AdmissionBoundaryTest, ToleranceAbsorbsRoundingDust) {
  // A reservation carrying accumulated floating-point dust (B_r summed
  // over many Eq. (5) terms) must not flip a decision that is exact in
  // real arithmetic. Pre-helper, `used > cap - br` and `used + b > cap -
  // br` style rewrites disagreed on exactly these inputs.
  const double br = 10.0 + 4e-10;  // 10 + dust, within tolerance
  EXPECT_TRUE(fits_budget(86.0, 4.0, 100.0, br));
  // Beyond the tolerance the boundary is real and must reject.
  EXPECT_FALSE(fits_budget(86.0, 4.0, 100.0, 10.0 + 1e-8));
}

TEST(AdmissionBoundaryTest, ParticipationAndReserveFormsAgree) {
  // AC3's participation test and AC2's reserve check are the same
  // predicate (is cell i at or over its budget with no new demand); both
  // route through exceeds_budget so no algebraic rewrite can split them.
  const double used = 90.0, cap = 100.0, br = 10.0;
  EXPECT_FALSE(exceeds_budget(used, 0.0, cap, br));       // exactly at budget
  EXPECT_TRUE(exceeds_budget(used + 1e-6, 0.0, cap, br));
}

// ---- Factory --------------------------------------------------------------

TEST(PolicyFactoryTest, NamesAndKinds) {
  EXPECT_EQ(make_policy(PolicyKind::kAc1)->name(), "AC1");
  EXPECT_EQ(make_policy(PolicyKind::kAc2)->name(), "AC2");
  EXPECT_EQ(make_policy(PolicyKind::kAc3)->name(), "AC3");
  EXPECT_STREQ(policy_kind_name(PolicyKind::kAc3), "AC3");
  EXPECT_STREQ(policy_kind_name(PolicyKind::kStatic), "Static");
}

}  // namespace
}  // namespace pabr::admission
