#include "analysis/guard_channel.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/check.h"

namespace pabr::analysis {
namespace {

TEST(ErlangBTest, KnownTableValues) {
  // Classic Erlang-B table entries.
  EXPECT_NEAR(erlang_b(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(2, 1.0), 0.2, 1e-12);
  EXPECT_NEAR(erlang_b(5, 3.0), 0.11005, 1e-4);
  EXPECT_NEAR(erlang_b(10, 5.0), 0.018385, 1e-5);
}

TEST(ErlangBTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(erlang_b(0, 5.0), 1.0);   // no servers: always blocked
  EXPECT_DOUBLE_EQ(erlang_b(10, 0.0), 0.0);  // no traffic: never blocked
  EXPECT_THROW(erlang_b(-1, 1.0), InvariantError);
}

TEST(ErlangBTest, MonotoneInLoadAndServers) {
  double last = 0.0;
  for (double a : {1.0, 5.0, 20.0, 50.0, 100.0}) {
    const double b = erlang_b(20, a);
    EXPECT_GE(b, last);
    last = b;
  }
  EXPECT_LT(erlang_b(30, 20.0), erlang_b(20, 20.0));
}

TEST(BirthDeathTest, DistributionSumsToOne) {
  const auto pi = birth_death_distribution(100, 90, 2.0, 0.5, 0.04);
  EXPECT_EQ(pi.size(), 101u);
  const double sum = std::accumulate(pi.begin(), pi.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (double x : pi) EXPECT_GE(x, 0.0);
}

TEST(BirthDeathTest, ZeroHandoffRateTruncatesAtThreshold) {
  const auto pi = birth_death_distribution(10, 5, 1.0, 0.0, 1.0);
  for (int n = 6; n <= 10; ++n) {
    EXPECT_DOUBLE_EQ(pi[static_cast<std::size_t>(n)], 0.0);
  }
  EXPECT_GT(pi[5], 0.0);
}

TEST(BirthDeathTest, NoThresholdReducesToErlangDistribution) {
  // threshold == servers: a plain M/M/C/C chain; blocking state mass
  // equals Erlang-B.
  const int c = 20;
  const double lambda = 0.8;
  const double mu = 0.05;
  const auto pi = birth_death_distribution(c, c, lambda, lambda, mu);
  EXPECT_NEAR(pi[static_cast<std::size_t>(c)], erlang_b(c, lambda / mu),
              1e-10);
}

TEST(ResidenceTest, HandoffResidenceIsTwiceNewResidence) {
  GuardChannelParams p;
  EXPECT_NEAR(mean_residence_handoff_s(p), 2.0 * mean_residence_new_s(p),
              1e-12);
}

TEST(ResidenceTest, PaperHighMobilityNumbers) {
  GuardChannelParams p;  // [80,120] km/h, 1 km cell
  // E[1/V] = ln(120/80)/40 h/km = 36.486 s/km -> full cell ~36.5 s.
  EXPECT_NEAR(mean_residence_handoff_s(p), 36.486, 0.01);
}

TEST(GuardChannelTest, FixedPointConverges) {
  GuardChannelParams p;
  p.lambda_new = 100.0 / 120.0;  // offered load 100 (voice-only)
  const auto r = evaluate(p);
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.lambda_h, 0.0);
  EXPECT_GE(r.pcb, 0.0);
  EXPECT_LE(r.pcb, 1.0);
  EXPECT_LE(r.phd, r.pcb);  // guard channels prioritize hand-offs
}

TEST(GuardChannelTest, GuardChannelsTradeBlockingForDrops) {
  GuardChannelParams base;
  base.lambda_new = 150.0 / 120.0;
  base.guard_bu = 0.0;
  const auto no_guard = evaluate(base);
  base.guard_bu = 10.0;
  const auto guarded = evaluate(base);
  EXPECT_LT(guarded.phd, no_guard.phd);  // fewer hand-off drops
  EXPECT_GT(guarded.pcb, no_guard.pcb);  // more new-call blocking
}

TEST(GuardChannelTest, ZeroGuardEqualizesBlockingAndDropping) {
  GuardChannelParams p;
  p.guard_bu = 0.0;
  p.lambda_new = 120.0 / 120.0;
  const auto r = evaluate(p);
  EXPECT_NEAR(r.pcb, r.phd, 1e-9);
}

TEST(GuardChannelTest, BlockingGrowsWithLoad) {
  GuardChannelParams p;
  double last_pcb = -1.0;
  for (double load : {60.0, 100.0, 150.0, 200.0, 300.0}) {
    p.lambda_new = load / 120.0;
    const auto r = evaluate(p);
    EXPECT_GT(r.pcb, last_pcb) << "load " << load;
    last_pcb = r.pcb;
  }
}

TEST(GuardChannelTest, LowMobilityDropsLessThanHighMobility) {
  GuardChannelParams p;
  p.lambda_new = 200.0 / 120.0;
  const auto high = evaluate(p);
  p.speed_min_kmh = 40.0;
  p.speed_max_kmh = 60.0;
  const auto low = evaluate(p);
  // Slower mobiles hand off less often -> lower hand-off pressure.
  EXPECT_LT(low.lambda_h, high.lambda_h);
  EXPECT_LT(low.phd, high.phd);
}

TEST(GuardChannelTest, ParameterValidation) {
  GuardChannelParams p;
  p.guard_bu = 200.0;
  EXPECT_THROW(evaluate(p), InvariantError);
  GuardChannelParams p2;
  p2.lambda_new = -1.0;
  EXPECT_THROW(evaluate(p2), InvariantError);
}

TEST(GuardChannelTest, SolverParameterValidation) {
  GuardChannelParams p;
  p.lambda_new = 100.0 / 120.0;
  EXPECT_THROW(evaluate(p, 0), InvariantError);       // no iterations
  EXPECT_THROW(evaluate(p, 200, 0.0), InvariantError);  // tolerance <= 0
  EXPECT_THROW(evaluate(p, 200, -1e-9), InvariantError);
}

// Regression: a run that exhausts the iteration cap used to return a
// half-baked result with converged = false that callers could silently
// consume. Non-convergence is now an error.
TEST(GuardChannelTest, NonConvergenceThrowsInsteadOfReturningStale) {
  GuardChannelParams p;
  p.lambda_new = 150.0 / 120.0;
  // One iteration at an unreachable tolerance cannot converge.
  EXPECT_THROW(evaluate(p, 1, 1e-30), InvariantError);
  // The same setting with a sane budget converges fine.
  EXPECT_TRUE(evaluate(p).converged);
}

}  // namespace
}  // namespace pabr::analysis
