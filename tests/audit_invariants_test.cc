// The invariant-audit subsystem (src/audit/): primitive checks, the
// system-level sweeps on clean runs with every extension enabled, and
// negative tests proving the sweep actually detects corrupted state.
#include <gtest/gtest.h>

#include "audit/invariants.h"
#include "core/hex_system.h"
#include "core/system.h"
#include "hoef/estimator.h"
#include "traffic/workload.h"
#include "util/check.h"

namespace pabr {
namespace {

TEST(AuditPrimitivesTest, CleanCellPasses) {
  core::Cell cell(0, 20.0);
  cell.attach(3, 4);
  cell.attach(1, 1);
  cell.attach(7, 1);
  EXPECT_NO_THROW(audit::audit_cell(cell));
  EXPECT_EQ(audit::held_bandwidth(cell, 3), 4);
  EXPECT_EQ(audit::held_bandwidth(cell, 1), 1);
  EXPECT_EQ(audit::held_bandwidth(cell, 2), -1);
  EXPECT_EQ(audit::held_bandwidth(cell, 99), -1);
}

TEST(AuditPrimitivesTest, CleanLinkPasses) {
  wired::Link link(0, "access-1", 10.0);
  link.attach(1, 4);
  link.attach(2, 1);
  EXPECT_NO_THROW(audit::audit_link(link));
  EXPECT_DOUBLE_EQ(link.attached_sum(), 5.0);
  EXPECT_EQ(link.held(1), 4);
  EXPECT_EQ(link.held(9), 0);
}

TEST(AuditPrimitivesTest, EstimatorAuditAcceptsRecordedHistory) {
  hoef::HandoffEstimator est(0, hoef::EstimatorConfig{});
  for (int i = 0; i < 50; ++i) {
    est.record(hoef::Quadruplet{static_cast<double>(i), 0, 1,
                                30.0 + static_cast<double>(i % 7)});
  }
  EXPECT_NO_THROW(est.audit());
}

core::SystemConfig everything_on_config() {
  core::SystemConfig cfg;
  cfg.num_cells = 5;
  cfg.capacity_bu = 30.0;
  cfg.soft_capacity_margin = 0.1;
  cfg.adaptive_qos = true;
  cfg.wired = wired::BackboneConfig{35.0, 120.0};
  cfg.soft_handoff_zone_km = 0.15;
  cfg.known_route_fraction = 0.3;
  cfg.retry.enabled = true;
  cfg.workload.voice_ratio = 0.5;
  cfg.workload.mean_lifetime_s = 60.0;
  cfg.workload.arrival_rate_per_cell =
      traffic::arrival_rate_for_load(70.0, 0.5, 60.0);
  cfg.audit_every = 1;  // per-event sweep in PABR_AUDIT builds
  cfg.seed = 11;
  return cfg;
}

TEST(SystemAuditTest, LinearCleanRunPassesEveryEvent) {
  core::CellularSystem sys(everything_on_config());
  sys.run_for(200.0);
  // The scenario must actually exercise the machinery for the audit to
  // mean anything.
  const core::SystemStatus s = sys.system_status();
  EXPECT_GT(s.requests, 0u);
  EXPECT_GT(s.handoffs, 0u);
  EXPECT_GT(sys.active_connections(), 0u);
  // Explicit checkpoint works in every build, audited or not.
  EXPECT_NO_THROW(sys.audit_invariants());
}

TEST(SystemAuditTest, HexCleanRunPassesEveryEvent) {
  core::HexSystemConfig cfg;
  cfg.rows = 3;
  cfg.cols = 4;
  cfg.capacity_bu = 30.0;
  cfg.voice_ratio = 0.5;
  cfg.mean_lifetime_s = 60.0;
  cfg.set_offered_load(70.0);
  cfg.audit_every = 1;
  cfg.seed = 11;
  core::HexCellularSystem sys(cfg);
  sys.run_for(200.0);
  EXPECT_GT(sys.system_status().handoffs, 0u);
  EXPECT_NO_THROW(sys.audit_invariants());
}

TEST(SystemAuditTest, DetectsForeignCellEntry) {
  core::SystemConfig cfg = everything_on_config();
  cfg.audit_every = 0;  // corrupt first, audit by hand
  core::CellularSystem sys(cfg);
  sys.run_for(50.0);
  // A cell entry no mobile owns breaks the residency bijection (I4).
  sys.cell(0).attach(999999, 1);
  EXPECT_THROW(sys.audit_invariants(), InvariantError);
}

TEST(SystemAuditTest, DetectsBandwidthMismatch) {
  core::SystemConfig cfg = everything_on_config();
  cfg.audit_every = 0;
  cfg.wired.reset();  // keep the corruption on the radio side only
  core::CellularSystem sys(cfg);
  sys.run_for(80.0);
  ASSERT_GT(sys.active_connections(), 0u);
  // Shrink some resident video connection behind the system's back: B_u
  // still sums (I2), but the entry no longer matches the mobile record
  // (I4). Shrinking always fits, so the corruption itself cannot throw.
  bool corrupted = false;
  for (geom::CellId c = 0; c < cfg.num_cells && !corrupted; ++c) {
    for (const auto& e : sys.cell(c).connections()) {
      if (e.bandwidth > 1) {
        sys.cell(c).reassign(e.id, e.bandwidth - 1);
        corrupted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(corrupted) << "no multi-BU connection to corrupt";
  EXPECT_THROW(sys.audit_invariants(), InvariantError);
}

TEST(SystemAuditTest, HexDetectsForeignCellEntry) {
  core::HexSystemConfig cfg;
  cfg.rows = 2;
  cfg.cols = 4;
  cfg.set_offered_load(60.0);
  core::HexCellularSystem sys(cfg);
  sys.run_for(50.0);
  sys.cell(0).attach(999999, 1);
  EXPECT_THROW(sys.audit_invariants(), InvariantError);
}

}  // namespace
}  // namespace pabr
